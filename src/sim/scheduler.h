// The iteration-level scheduling interface. At the start of every inference
// iteration the simulator asks the scheduler for a batch plan: which
// requests run (prefill chunk or decode step), which get preempted, and
// which cache type each scheduled/requeued request uses. This is the seam
// where vLLM-style FCFS, Sarathi-style coalescing and Apt-Serve's adaptive
// policy plug in.
#pragma once

#include <string>
#include <vector>

#include "cache/block_pool.h"
#include "cache/cache_types.h"
#include "cache/hybrid_assigner.h"
#include "common/types.h"
#include "sim/cost_model.h"
#include "sim/sim_request.h"

namespace aptserve {

/// Read-only view handed to the scheduler each iteration.
struct SchedulerInput {
  TimePoint now = 0.0;
  /// Waiting queue W_e in arrival order (includes preempted requests).
  std::vector<const SimRequest*> waiting;
  /// Running queue R_e in arrival order.
  std::vector<const SimRequest*> running;
  const BlockPool* pool = nullptr;
  const HybridCacheAssigner* assigner = nullptr;
  const CostModel* cost_model = nullptr;
};

/// One scheduled request in the upcoming iteration.
struct ScheduledItem {
  RequestId id = kInvalidRequestId;
  /// Cache type the request runs with. For decode items this must match the
  /// request's current type (type switches go through `preempt` with a new
  /// resume type, per the paper's discard-and-recompute rule).
  CacheType cache_type = CacheType::kKV;
  /// 0 => decode step; >0 => prefill this many new prompt/context tokens
  /// (chunked prefill schedulers pass partial counts).
  int32_t prefill_chunk = 0;
};

/// A running request to evict before executing the batch. Its cache is
/// freed and it re-enters the waiting queue; `resume_cache_type` is the
/// type its future re-prefill will use (differing from the current type
/// makes this a cache-type conversion).
struct PreemptionItem {
  RequestId id = kInvalidRequestId;
  CacheType resume_cache_type = CacheType::kKV;
};

struct BatchPlan {
  std::vector<ScheduledItem> items;
  std::vector<PreemptionItem> preempt;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual BatchPlan PlanIteration(const SchedulerInput& input) = 0;
  virtual std::string name() const = 0;
};

}  // namespace aptserve
