// GPU / cluster hardware description (paper §6.2: A100-40GB, NVLink,
// tensor parallelism for the larger models per Table 2).
#pragma once

#include <cmath>
#include <cstdint>

#include "common/status.h"
#include "sim/model_spec.h"

namespace aptserve {

struct GpuSpec {
  double mem_bytes = 40e9;        ///< A100 40GB HBM2e.
  double peak_flops = 312e12;     ///< fp16 tensor-core peak.
  double mem_bandwidth = 1.555e12;  ///< bytes/s HBM bandwidth.
  /// Effective host<->device bandwidth for KV swap traffic (PCIe 4.0 x16
  /// achieves ~25 GB/s in practice).
  double pcie_bandwidth = 25e9;
  /// Effective instance-to-instance bandwidth for live-migration cache
  /// transfers (NIC/NVLink class; a conservative 200 Gb/s datacenter NIC).
  double interconnect_bandwidth = 25e9;
  /// Effective bandwidth for migrations that cross a *cell* boundary in a
  /// hierarchical fleet: cells map to racks/pods, so the transfer leaves
  /// the rack fabric and rides the (oversubscribed) aggregation tier —
  /// a conservative 40 Gb/s effective.
  double cross_cell_bandwidth = 5e9;

  static GpuSpec A100_40G() { return GpuSpec{}; }
};

struct ClusterSpec {
  GpuSpec gpu = GpuSpec::A100_40G();
  int32_t n_gpus = 1;
  /// Fraction of GPU memory usable (vLLM's gpu_memory_utilization default).
  double mem_utilization = 0.9;
  /// Achieved fraction of peak FLOPs for large fused kernels. Calibrated so
  /// simulated vLLM's effective throughput knee on ShareGPT/OPT-13B lands
  /// near the paper's ~2.6 req/s (Figure 2a).
  double compute_efficiency = 0.55;
  /// Achieved fraction of peak bandwidth for cache/weight streaming.
  double memory_efficiency = 0.75;
  /// Per-layer-shard scaling penalty of tensor parallelism (NCCL all-reduce
  /// etc.): effective speedup = n_gpus * tp_efficiency^log2(n_gpus).
  double tp_efficiency = 0.92;

  double EffectiveFlops() const {
    return gpu.peak_flops * compute_efficiency * TpScale();
  }
  double EffectiveBandwidth() const {
    return gpu.mem_bandwidth * memory_efficiency * TpScale();
  }
  double TpScale() const {
    return n_gpus * std::pow(tp_efficiency, std::log2(double(n_gpus)));
  }

  /// Bytes of pooled cache memory after loading weights (paper Table 2).
  StatusOr<double> CacheBytes(const ModelSpec& model) const {
    const double usable = gpu.mem_bytes * n_gpus * mem_utilization;
    const double cache = usable - model.WeightBytes();
    if (cache <= 0) {
      return Status::InvalidArgument(model.name +
                                     " does not fit on this cluster");
    }
    return cache;
  }

  /// Table 2 hardware pairings.
  static ClusterSpec ForModel(const ModelSpec& model) {
    ClusterSpec c;
    if (model.n_params > 40'000'000'000LL) {
      c.n_gpus = 4;
    } else if (model.n_params > 15'000'000'000LL) {
      c.n_gpus = 2;
    } else {
      c.n_gpus = 1;
    }
    return c;
  }
};

}  // namespace aptserve
