#include "sim/metrics.h"

#include <algorithm>

#include "common/logging.h"

namespace aptserve {

double RequestRecord::P99Tbt() const {
  if (tbt_samples.empty()) return 0.0;
  SampleSet s;
  for (double v : tbt_samples) s.Add(v);
  return s.P99();
}

void MetricsCollector::RegisterRequest(const Request& spec) {
  RequestRecord rec;
  rec.spec = spec;
  records_[spec.id] = std::move(rec);
}

void MetricsCollector::OnToken(RequestId id, TimePoint now) {
  auto it = records_.find(id);
  APT_CHECK_MSG(it != records_.end(), "token for unregistered request");
  RequestRecord& rec = it->second;
  auto last = last_token_.find(id);
  if (rec.ttft < 0) {
    rec.ttft = now - rec.spec.arrival;
  } else {
    APT_CHECK(last != last_token_.end());
    rec.tbt_samples.push_back(now - last->second);
  }
  last_token_[id] = now;
}

void MetricsCollector::OnFinish(RequestId id, TimePoint now) {
  auto it = records_.find(id);
  APT_CHECK_MSG(it != records_.end(), "finish for unregistered request");
  it->second.finish_time = now;
}

void MetricsCollector::OnIteration(double seconds, int32_t batch_size,
                                   bool at_batch_limit) {
  total_time_ += seconds;
  if (at_batch_limit) batch_limit_time_ += seconds;
  ++iterations_;
  batch_size_weighted_ += static_cast<double>(batch_size);
}

void WallClockMetrics::OnArrival(RequestId id, double now) {
  WallRequestRecord& rec = inflight_[id];
  rec.arrival = now;
  if (first_arrival_ < 0 || now < first_arrival_) first_arrival_ = now;
}

void WallClockMetrics::OnToken(RequestId id, double now) {
  auto it = inflight_.find(id);
  APT_CHECK_MSG(it != inflight_.end(), "wall token for unknown request");
  WallRequestRecord& rec = it->second;
  if (rec.first_token < 0) {
    rec.first_token = now;
    if (rec.arrival >= 0) ttft_.Add(now - rec.arrival);
  } else {
    tbt_.Add(now - rec.last_token);
  }
  rec.last_token = now;
  ++rec.tokens;
  ++tokens_;
}

void WallClockMetrics::OnFinish(RequestId id, double now) {
  auto it = inflight_.find(id);
  APT_CHECK_MSG(it != inflight_.end(), "wall finish for unknown request");
  WallRequestRecord& rec = it->second;
  rec.finish = now;
  if (rec.arrival >= 0) e2e_.Add(now - rec.arrival);
  ++finished_requests_;
  if (now > last_finish_) last_finish_ = now;
  inflight_.erase(it);
}

WallRequestRecord WallClockMetrics::ExtractRecord(RequestId id) {
  auto it = inflight_.find(id);
  APT_CHECK_MSG(it != inflight_.end(), "extracting unknown wall record");
  WallRequestRecord rec = it->second;
  inflight_.erase(it);
  return rec;
}

void WallClockMetrics::AdoptRecord(RequestId id,
                                   const WallRequestRecord& record) {
  APT_CHECK_MSG(inflight_.count(id) == 0, "adopting a duplicate wall record");
  inflight_[id] = record;
}

void WallClockMetrics::Merge(const WallClockMetrics& other) {
  ttft_.Merge(other.ttft_);
  tbt_.Merge(other.tbt_);
  e2e_.Merge(other.e2e_);
  finished_requests_ += other.finished_requests_;
  tokens_ += other.tokens_;
  if (other.first_arrival_ >= 0 &&
      (first_arrival_ < 0 || other.first_arrival_ < first_arrival_)) {
    first_arrival_ = other.first_arrival_;
  }
  if (other.last_finish_ > last_finish_) last_finish_ = other.last_finish_;
}

WallLatencyReport WallClockMetrics::Report() const {
  WallLatencyReport r;
  r.requests = finished_requests_;
  r.tokens = tokens_;
  r.ttft = ttft_;
  r.tbt = tbt_;
  r.e2e = e2e_;
  if (first_arrival_ >= 0 && last_finish_ > first_arrival_) {
    r.duration_s = last_finish_ - first_arrival_;
    r.throughput_tok_s = static_cast<double>(tokens_) / r.duration_s;
    r.throughput_req_s = static_cast<double>(finished_requests_) / r.duration_s;
  }
  return r;
}

const char* FleetScaleEventKindName(FleetScaleEvent::Kind kind) {
  switch (kind) {
    case FleetScaleEvent::Kind::kAdd:
      return "add";
    case FleetScaleEvent::Kind::kLive:
      return "live";
    case FleetScaleEvent::Kind::kDrainStart:
      return "drain-start";
    case FleetScaleEvent::Kind::kRetire:
      return "retire";
  }
  return "?";
}

RequestRecord MetricsCollector::ExtractRecord(RequestId id,
                                              bool* has_last_token,
                                              TimePoint* last_token) {
  auto it = records_.find(id);
  APT_CHECK_MSG(it != records_.end(), "extracting an unregistered request");
  RequestRecord record = std::move(it->second);
  records_.erase(it);
  auto last = last_token_.find(id);
  *has_last_token = last != last_token_.end();
  *last_token = *has_last_token ? last->second : 0.0;
  last_token_.erase(id);
  return record;
}

void MetricsCollector::AdoptRecord(RequestRecord record, bool has_last_token,
                                   TimePoint last_token) {
  const RequestId id = record.spec.id;
  APT_CHECK_MSG(records_.count(id) == 0, "adopting a duplicate request");
  records_[id] = std::move(record);
  if (has_last_token) last_token_[id] = last_token;
}

SloReport MetricsCollector::Report(const SloSpec& slo) const {
  SloReport r;
  if (records_.empty()) return r;
  int64_t meets_both = 0, meets_ttft = 0, meets_tbt = 0;
  int64_t eligible = 0;
  SampleSet ttft_mean_acc;
  for (const auto& [id, rec] : records_) {
    (void)id;
    // Latency samples cover every served request; attainment counts only
    // eligible (non-best-effort) ones.
    if (rec.ttft >= 0) {
      r.ttfts.Add(rec.ttft);
      ttft_mean_acc.Add(rec.ttft);
    }
    if (!rec.tbt_samples.empty()) r.p99_tbts.Add(rec.P99Tbt());
    if (rec.spec.best_effort) {
      ++r.best_effort_requests;
      continue;
    }
    ++eligible;
    if (rec.MeetsSlo(slo)) ++meets_both;
    if (rec.MeetsTtft(slo)) ++meets_ttft;
    if (rec.MeetsTbt(slo)) ++meets_tbt;
  }
  r.eligible_requests = eligible;
  r.slo_met_requests = meets_both;
  const double n = static_cast<double>(eligible);
  if (eligible > 0) {
    r.slo_attainment = meets_both / n;
    r.ttft_attainment = meets_ttft / n;
    r.tbt_attainment = meets_tbt / n;
  }
  r.total_serving_time = total_time_;
  r.batch_limit_time_ratio =
      total_time_ > 0 ? batch_limit_time_ / total_time_ : 0.0;
  r.iterations = iterations_;
  r.mean_batch_size =
      iterations_ > 0 ? batch_size_weighted_ / iterations_ : 0.0;
  r.preemptions = preemptions_;
  r.conversions = conversions_;
  r.mean_ttft = ttft_mean_acc.Mean();
  r.p99_ttft = ttft_mean_acc.P99();
  r.jain_fairness_ttft = JainFairnessIndex(r.ttfts.samples());
  r.goodput_rps = total_time_ > 0 ? meets_both / total_time_ : 0.0;
  return r;
}

void FoldRejectedIntoReport(int64_t rejected, SloReport* report) {
  APT_CHECK(report != nullptr);
  if (rejected <= 0) return;
  // Attainment is met / (eligible + previously folded rejects); re-base the
  // denominator to include the new rejects. All-rejected runs keep zero.
  const double prev =
      static_cast<double>(report->eligible_requests +
                          report->rejected_requests);
  report->rejected_requests += rejected;
  const double denom = prev + rejected;
  const double scale = denom > 0 ? prev / denom : 0.0;
  report->slo_attainment *= scale;
  report->ttft_attainment *= scale;
  report->tbt_attainment *= scale;
}

double JainFairnessIndex(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0, sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;  // all-zero: perfectly equal
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

}  // namespace aptserve
