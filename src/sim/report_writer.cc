#include "sim/report_writer.h"

#include <algorithm>
#include <fstream>

namespace aptserve {

void WriteRequestRecordsCsv(
    const std::unordered_map<RequestId, RequestRecord>& records,
    const SloSpec& slo, std::ostream* out) {
  out->precision(12);
  *out << "id,arrival,prompt_len,output_len,ttft,p99_tbt,finish,"
          "ttft_bound,tbt_bound,best_effort,meets_ttft,meets_tbt\n";
  std::vector<const RequestRecord*> rows;
  rows.reserve(records.size());
  for (const auto& [id, rec] : records) rows.push_back(&rec);
  std::sort(rows.begin(), rows.end(),
            [](const RequestRecord* a, const RequestRecord* b) {
              return a->spec.id < b->spec.id;
            });
  for (const RequestRecord* rec : rows) {
    *out << rec->spec.id << ',' << rec->spec.arrival << ','
         << rec->spec.prompt_len << ',' << rec->spec.output_len << ','
         << rec->ttft << ',' << rec->P99Tbt() << ',' << rec->finish_time
         << ',' << rec->TtftBound(slo) << ',' << rec->TbtBound(slo) << ','
         << (rec->spec.best_effort ? 1 : 0) << ','
         << (rec->MeetsTtft(slo) ? 1 : 0) << ','
         << (rec->MeetsTbt(slo) ? 1 : 0) << '\n';
  }
}

void WriteSweepCsv(const std::vector<SweepRow>& rows, std::ostream* out) {
  *out << "system,rate,slo_attainment,ttft_attainment,tbt_attainment,"
          "goodput_rps,rejected\n";
  for (const SweepRow& r : rows) {
    *out << r.system << ',' << r.rate << ',' << r.slo_attainment << ','
         << r.ttft_attainment << ',' << r.tbt_attainment << ','
         << r.goodput_rps << ',' << r.rejected << '\n';
  }
}

void WriteFleetCsv(const std::vector<SloReport>& per_instance,
                   const std::vector<int32_t>& requests_per_instance,
                   std::ostream* out) {
  *out << "instance,requests,slo_attainment,goodput_rps,mean_ttft,"
          "preemptions\n";
  for (size_t i = 0; i < per_instance.size(); ++i) {
    const SloReport& r = per_instance[i];
    const int32_t n = i < requests_per_instance.size()
                          ? requests_per_instance[i]
                          : 0;
    *out << i << ',' << n << ',' << r.slo_attainment << ','
         << r.goodput_rps << ',' << r.mean_ttft << ',' << r.preemptions
         << '\n';
  }
}

void WriteWallLatencyCsv(
    const std::vector<std::pair<std::string, WallLatencyReport>>& rows,
    std::ostream* out) {
  *out << "mode,requests,tokens,duration_s,throughput_tok_s,"
          "throughput_req_s,ttft_p50,ttft_p95,ttft_p99,ttft_mean,"
          "tbt_p50,tbt_p95,tbt_p99,tbt_mean,e2e_p50,e2e_p95,e2e_p99\n";
  for (const auto& [mode, r] : rows) {
    *out << mode << ',' << r.requests << ',' << r.tokens << ','
         << r.duration_s << ',' << r.throughput_tok_s << ','
         << r.throughput_req_s << ',' << r.ttft.P50() << ',' << r.ttft.P95()
         << ',' << r.ttft.P99() << ',' << r.ttft.mean() << ',' << r.tbt.P50()
         << ',' << r.tbt.P95() << ',' << r.tbt.P99() << ',' << r.tbt.mean()
         << ',' << r.e2e.P50() << ',' << r.e2e.P95() << ',' << r.e2e.P99()
         << '\n';
  }
}

void WriteCdfCsv(const SampleSet& samples, std::ostream* out,
                 size_t max_points) {
  *out << "value,cum_fraction\n";
  for (const auto& [v, f] : samples.Cdf(max_points)) {
    *out << v << ',' << f << '\n';
  }
}

Status WriteFile(const std::string& path,
                 const std::function<void(std::ostream*)>& content_writer) {
  std::ofstream f(path);
  if (!f.is_open()) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  content_writer(&f);
  if (!f.good()) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

}  // namespace aptserve
