#include "sim/report_writer.h"

#include <algorithm>
#include <fstream>

namespace aptserve {

void WriteRequestRecordsCsv(
    const std::unordered_map<RequestId, RequestRecord>& records,
    const SloSpec& slo, std::ostream* out) {
  out->precision(12);
  *out << "id,arrival,prompt_len,output_len,ttft,p99_tbt,finish,"
          "meets_ttft,meets_tbt\n";
  std::vector<const RequestRecord*> rows;
  rows.reserve(records.size());
  for (const auto& [id, rec] : records) rows.push_back(&rec);
  std::sort(rows.begin(), rows.end(),
            [](const RequestRecord* a, const RequestRecord* b) {
              return a->spec.id < b->spec.id;
            });
  for (const RequestRecord* rec : rows) {
    *out << rec->spec.id << ',' << rec->spec.arrival << ','
         << rec->spec.prompt_len << ',' << rec->spec.output_len << ','
         << rec->ttft << ',' << rec->P99Tbt() << ',' << rec->finish_time
         << ',' << (rec->MeetsTtft(slo) ? 1 : 0) << ','
         << (rec->MeetsTbt(slo) ? 1 : 0) << '\n';
  }
}

void WriteSweepCsv(const std::vector<SweepRow>& rows, std::ostream* out) {
  *out << "system,rate,slo_attainment,ttft_attainment,tbt_attainment\n";
  for (const SweepRow& r : rows) {
    *out << r.system << ',' << r.rate << ',' << r.slo_attainment << ','
         << r.ttft_attainment << ',' << r.tbt_attainment << '\n';
  }
}

void WriteCdfCsv(const SampleSet& samples, std::ostream* out,
                 size_t max_points) {
  *out << "value,cum_fraction\n";
  for (const auto& [v, f] : samples.Cdf(max_points)) {
    *out << v << ',' << f << '\n';
  }
}

Status WriteFile(const std::string& path,
                 const std::function<void(std::ostream*)>& content_writer) {
  std::ofstream f(path);
  if (!f.is_open()) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  content_writer(&f);
  if (!f.good()) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

}  // namespace aptserve
