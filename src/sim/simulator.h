// Simulator: the analytic serving simulator (paper §2.2). A thin facade
// over the shared ServingLoop (serve/serving_loop.h) running on a
// CostModelBackend: admission, scheduling, preemption/conversion and swap
// semantics live in the loop; this class only derives the pool size from
// the cluster spec and repackages the result. PreemptionMode lives in
// serve/serving_loop.h and is re-exported here for compatibility.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "runtime/runtime_config.h"
#include "serve/cost_model_backend.h"
#include "serve/serving_loop.h"
#include "sim/cost_model.h"
#include "sim/metrics.h"
#include "sim/scheduler.h"
#include "sim/sim_request.h"

namespace aptserve {

struct SimulatorConfig {
  /// Token positions per cache block.
  int32_t block_size = 16;
  /// Hard cap on scheduled items per iteration (vLLM max_num_seqs).
  int32_t max_batch_size = 256;
  /// Safety valve: abort after this many iterations.
  int64_t max_iterations = 5'000'000;
  /// Override the pool size (blocks). <= 0 derives it from the cost model's
  /// cluster memory minus weights (Table 2 accounting).
  int32_t pool_blocks_override = -1;
  PreemptionMode preemption_mode = PreemptionMode::kRecompute;
  /// Host swap capacity in blocks; <= 0 defaults to 4x the GPU pool
  /// (vLLM's swap_space default is of that order).
  int32_t swap_blocks = -1;
  /// Parallel runtime. The analytic backend has no compute to spread, so a
  /// single Simulator ignores the thread count; the field exists so fleet
  /// facades (MultiInstanceSimulator) and future parallel sweeps share one
  /// knob. Default: serial.
  RuntimeConfig runtime;
  /// Prefix sharing over the analytic pool (see CostModelBackend::Options):
  /// matched prefill positions are adopted instead of priced. Off keeps
  /// the operation sequence bit-identical to the pre-sharing simulator.
  bool enable_prefix_sharing = false;
  /// Seed/vocab for synthesizing token ids of requests that carry none
  /// (match the engine facade's prompt_seed/vocab_size when comparing hit
  /// accounting across backends on a length-only trace).
  uint64_t token_seed = 7;
  int32_t token_vocab = 50272;
};

struct SimulationResult {
  SloReport report;
  /// Iterations that were prefill / decode / mixed.
  int64_t prefill_iterations = 0;
  int64_t decode_iterations = 0;
  int64_t mixed_iterations = 0;
  int32_t pool_blocks = 0;
  int32_t peak_blocks = 0;
  int64_t swap_outs = 0;
  int64_t swap_ins = 0;
  /// Prefill positions computed vs. adopted from the prefix index.
  int64_t prefill_tokens_computed = 0;
  int64_t prefill_tokens_skipped = 0;
  /// Prefix-sharing hit accounting (all zeros when sharing is off).
  PrefixStats prefix;
  /// Per-request latency records (TTFT, TBT samples, finish time), keyed by
  /// request id — the raw data behind the paper's scatter/CDF figures.
  std::unordered_map<RequestId, RequestRecord> records;
};

/// Shared facade translations (also used by MultiInstanceSimulator), so a
/// new SimulatorConfig field has exactly one mapping site.
CostModelBackend::Options ToCostModelBackendOptions(
    const SimulatorConfig& config);
ServingLoopConfig ToServingLoopConfig(const SimulatorConfig& config);

class Simulator {
 public:
  Simulator(const CostModel& cost_model, const SimulatorConfig& config);

  /// Serves `trace` to completion under `scheduler` and reports metrics
  /// against `slo`.
  StatusOr<SimulationResult> Run(const std::vector<Request>& trace,
                                 Scheduler* scheduler, const SloSpec& slo);

  /// Number of pool blocks the configuration yields (for tests/benches).
  StatusOr<int32_t> DerivePoolBlocks() const;

 private:
  CostModel cost_model_;
  SimulatorConfig config_;
};

}  // namespace aptserve
