// Simulator: the iteration-level serving loop (paper §2.2). Each iteration
// it (1) admits newly arrived requests into the waiting queue, (2) asks the
// scheduler for a batch plan, (3) applies preemptions/conversions and cache
// allocation against the unified block pool, (4) advances the clock by the
// cost model's iteration latency, and (5) emits tokens / completes
// requests, collecting TTFT/TBT/SLO metrics.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/block_pool.h"
#include "cache/hybrid_assigner.h"
#include "common/status.h"
#include "sim/cost_model.h"
#include "sim/metrics.h"
#include "sim/scheduler.h"
#include "sim/sim_request.h"

namespace aptserve {

/// How the simulator evicts a preempted request's cache (vLLM's two modes).
enum class PreemptionMode {
  /// Discard the cache; the request re-prefills later (the mode the
  /// paper's experiments use).
  kRecompute,
  /// Copy the cache to host memory over PCIe and copy it back on resume.
  /// Falls back to recompute when the swap space is full or the resume
  /// changes cache type.
  kSwap,
};

struct SimulatorConfig {
  /// Token positions per cache block.
  int32_t block_size = 16;
  /// Hard cap on scheduled items per iteration (vLLM max_num_seqs).
  int32_t max_batch_size = 256;
  /// Safety valve: abort after this many iterations.
  int64_t max_iterations = 5'000'000;
  /// Override the pool size (blocks). <= 0 derives it from the cost model's
  /// cluster memory minus weights (Table 2 accounting).
  int32_t pool_blocks_override = -1;
  PreemptionMode preemption_mode = PreemptionMode::kRecompute;
  /// Host swap capacity in blocks; <= 0 defaults to 4x the GPU pool
  /// (vLLM's swap_space default is of that order).
  int32_t swap_blocks = -1;
};

struct SimulationResult {
  SloReport report;
  /// Iterations that were prefill / decode / mixed.
  int64_t prefill_iterations = 0;
  int64_t decode_iterations = 0;
  int64_t mixed_iterations = 0;
  int32_t pool_blocks = 0;
  int32_t peak_blocks = 0;
  int64_t swap_outs = 0;
  int64_t swap_ins = 0;
  /// Per-request latency records (TTFT, TBT samples, finish time), keyed by
  /// request id — the raw data behind the paper's scatter/CDF figures.
  std::unordered_map<RequestId, RequestRecord> records;
};

class Simulator {
 public:
  Simulator(const CostModel& cost_model, const SimulatorConfig& config);

  /// Serves `trace` to completion under `scheduler` and reports metrics
  /// against `slo`.
  StatusOr<SimulationResult> Run(const std::vector<Request>& trace,
                                 Scheduler* scheduler, const SloSpec& slo);

  /// Number of pool blocks the configuration yields (for tests/benches).
  StatusOr<int32_t> DerivePoolBlocks() const;

 private:
  CostModel cost_model_;
  SimulatorConfig config_;
};

}  // namespace aptserve
