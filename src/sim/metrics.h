// Serving metrics: per-request TTFT / TBT records, SLO attainment, and the
// system-level "time at batch-size limit" ratio of paper Figure 2.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/types.h"
#include "workload/request.h"

namespace aptserve {

/// Latency Service-Level Objectives (paper Table 3): TTFT bound and the
/// bound on each request's 99th-percentile TBT.
struct SloSpec {
  double ttft_s = 1.0;
  double tbt_p99_s = 1.0;
};

struct RequestRecord {
  Request spec;
  double ttft = -1.0;                ///< seconds; -1 if no token emitted.
  std::vector<double> tbt_samples;   ///< gaps between consecutive tokens.
  TimePoint finish_time = -1.0;

  double P99Tbt() const;
  /// Effective deadlines: the request's own SLO when set (>= 0), else the
  /// run-level spec. A deadline exactly met (ttft == bound) counts as met.
  double TtftBound(const SloSpec& slo) const {
    return spec.slo_ttft_s >= 0 ? spec.slo_ttft_s : slo.ttft_s;
  }
  double TbtBound(const SloSpec& slo) const {
    return spec.slo_tbt_p99_s >= 0 ? spec.slo_tbt_p99_s : slo.tbt_p99_s;
  }
  bool MeetsTtft(const SloSpec& slo) const {
    return ttft >= 0 && ttft <= TtftBound(slo);
  }
  bool MeetsTbt(const SloSpec& slo) const {
    // Requests with a single output token have no TBT; vacuously met.
    return tbt_samples.empty() || P99Tbt() <= TbtBound(slo);
  }
  bool MeetsSlo(const SloSpec& slo) const {
    return MeetsTtft(slo) && MeetsTbt(slo);
  }
};

/// Aggregate report produced after a simulation run. Attainment fractions
/// are over *eligible* requests (served and not best-effort); rejected
/// requests are folded in at the fleet layer via FoldRejectedIntoReport.
struct SloReport {
  double slo_attainment = 0.0;    ///< fraction meeting both SLOs.
  double ttft_attainment = 0.0;
  double tbt_attainment = 0.0;
  double batch_limit_time_ratio = 0.0;  ///< Figure 2's right axis.
  double total_serving_time = 0.0;
  int64_t iterations = 0;
  double mean_batch_size = 0.0;
  int64_t preemptions = 0;
  int64_t conversions = 0;
  SampleSet ttfts;
  SampleSet p99_tbts;
  double mean_ttft = 0.0;
  double p99_ttft = 0.0;
  /// Jain's fairness index over per-request TTFTs, in (0, 1]: 1 when every
  /// request waited equally, 1/n when one request absorbed all the delay.
  /// Quantifies the §6.6 starvation observation as a single number.
  double jain_fairness_ttft = 0.0;
  /// Requests counted toward attainment: served and not best-effort.
  int64_t eligible_requests = 0;
  /// Eligible requests that met both SLOs (the goodput numerator; exact,
  /// so fleet merges need no floating-point reconstruction).
  int64_t slo_met_requests = 0;
  /// Served requests excluded from attainment (admission deprioritized).
  int64_t best_effort_requests = 0;
  /// Requests admission control turned away (never served). Zero in
  /// per-instance reports; the fleet layer folds them into the combined
  /// report's attainment denominators.
  int64_t rejected_requests = 0;
  /// SLO-met eligible requests per second of serving time — the goodput
  /// readout SLO-aware routing optimizes for.
  double goodput_rps = 0.0;
};

/// Jain's fairness index (sum x)^2 / (n * sum x^2); 0 for empty input.
double JainFairnessIndex(const std::vector<double>& values);

/// Accounts `rejected` admission-rejected requests into `report`: they
/// enter every attainment denominator as misses (scaling the fractions by
/// eligible / (eligible + rejected)) and are recorded in
/// rejected_requests. Goodput is unchanged — rejected requests consume no
/// serving time and meet no SLO. No-op for rejected <= 0.
void FoldRejectedIntoReport(int64_t rejected, SloReport* report);

// ---- Fleet elasticity metrics (serve/fleet_controller.h) -------------------

/// One scaling action of the event-driven fleet controller, in virtual time.
struct FleetScaleEvent {
  enum class Kind {
    kAdd,         ///< instance spawned (cold start; serving begins at warmup)
    kLive,        ///< warmup finished; the router now targets the instance
    kDrainStart,  ///< scale-down chose the instance; no new routes
    kRetire,      ///< drain complete; the instance left the fleet
  };
  double time = 0.0;
  int32_t instance = -1;
  Kind kind = Kind::kAdd;
};

const char* FleetScaleEventKindName(FleetScaleEvent::Kind kind);

/// Aggregate elasticity accounting of one fleet-controller run.
struct FleetMetrics {
  std::vector<FleetScaleEvent> scale_events;
  /// (tick time, instances alive) — the per-epoch fleet size timeline.
  std::vector<std::pair<double, int32_t>> size_timeline;
  int64_t ticks = 0;
  int64_t migrations = 0;             ///< requests moved between instances
  int64_t migrations_with_cache = 0;  ///< of which carried cache state
  int64_t migration_deduped_tokens = 0;  ///< re-resolved via the dest index
  int64_t migration_copied_tokens = 0;   ///< actually transferred
  double migration_bytes = 0.0;
  double migration_seconds = 0.0;  ///< virtual interconnect time charged
  /// Integral of fleet size over virtual time — what an operator pays for.
  double instance_seconds = 0.0;
  int32_t peak_instances = 0;
  int32_t cold_starts = 0;
  // ---- Hierarchical (fleet-of-fleets) topology ----
  /// Cells in the two-level topology (1 = flat fleet).
  int32_t num_cells = 1;
  /// Cell of each spawned instance, indexed by lifetime-unique id.
  std::vector<int32_t> instance_cell;
  /// Migrations whose source and destination live in different cells
  /// (priced on the slower cross-cell interconnect tier).
  int64_t cross_cell_migrations = 0;
  double cross_cell_migration_bytes = 0.0;
};

// ---- Wall-clock metrics (async serving mode) -------------------------------

/// Real-time stamps of one in-flight request, carried across live
/// migrations so a moved request's TTFT/TBT history survives the hop.
struct WallRequestRecord {
  double arrival = -1.0;      ///< wall time the feeder released the request
  double first_token = -1.0;  ///< wall time of the first emitted token
  double last_token = -1.0;   ///< wall time of the latest emitted token
  double finish = -1.0;
  int64_t tokens = 0;
};

/// Aggregate wall-clock latency/throughput readout of an async serving run.
/// Percentiles come from log-bucketed LatencyHistograms (bounded memory at
/// any request volume); mean/min/max are exact.
struct WallLatencyReport {
  int64_t requests = 0;  ///< requests that finished
  int64_t tokens = 0;    ///< tokens emitted
  double duration_s = 0.0;  ///< first arrival to last finish, wall seconds
  double throughput_tok_s = 0.0;
  double throughput_req_s = 0.0;
  LatencyHistogram ttft;  ///< arrival -> first token, per request
  LatencyHistogram tbt;   ///< consecutive-token gaps, per token
  LatencyHistogram e2e;   ///< arrival -> finish, per request
};

/// Collects wall-clock timestamps for the async serving mode. One collector
/// per worker thread (single-threaded access, like MetricsCollector);
/// records migrate with their requests via Extract/Adopt and per-worker
/// collectors fold together with Merge at shutdown. Purely observational:
/// nothing here feeds back into scheduling, so wall jitter cannot perturb
/// the deterministic token streams.
class WallClockMetrics {
 public:
  void OnArrival(RequestId id, double now);
  /// Stamps a token; the first for `id` records TTFT, later ones add a TBT
  /// gap sample measured from the previous token (possibly on another
  /// instance, via the migrated record).
  void OnToken(RequestId id, double now);
  void OnFinish(RequestId id, double now);

  WallRequestRecord ExtractRecord(RequestId id);
  void AdoptRecord(RequestId id, const WallRequestRecord& record);

  /// Folds `other`'s finished-request aggregates into this collector.
  /// In-flight records stay with their owner.
  void Merge(const WallClockMetrics& other);

  WallLatencyReport Report() const;
  int64_t finished_requests() const { return finished_requests_; }

 private:
  std::unordered_map<RequestId, WallRequestRecord> inflight_;
  LatencyHistogram ttft_;
  LatencyHistogram tbt_;
  LatencyHistogram e2e_;
  int64_t finished_requests_ = 0;
  int64_t tokens_ = 0;
  double first_arrival_ = -1.0;
  double last_finish_ = -1.0;
};

class MetricsCollector {
 public:
  void RegisterRequest(const Request& spec);

  /// Records a token for `id` at time `now`. The first token sets TTFT;
  /// later tokens append a TBT sample measured from the previous token.
  void OnToken(RequestId id, TimePoint now);

  void OnFinish(RequestId id, TimePoint now);

  /// Accounts one iteration of duration `seconds` executing `batch_size`
  /// scheduled items; `at_batch_limit` marks iterations during which the
  /// batch could not grow further under the memory constraint.
  void OnIteration(double seconds, int32_t batch_size, bool at_batch_limit);

  void OnPreemption() { ++preemptions_; }
  void OnConversion() { ++conversions_; }

  /// Removes and returns the request's record for live migration-out; the
  /// destination collector re-adopts it so TTFT/TBT history survives the
  /// move. `has_last_token`/`last_token` carry the inter-token clock.
  RequestRecord ExtractRecord(RequestId id, bool* has_last_token,
                              TimePoint* last_token);

  /// Adopts a migrated-in record (the counterpart of ExtractRecord).
  void AdoptRecord(RequestRecord record, bool has_last_token,
                   TimePoint last_token);

  SloReport Report(const SloSpec& slo) const;
  const std::unordered_map<RequestId, RequestRecord>& records() const {
    return records_;
  }

 private:
  std::unordered_map<RequestId, RequestRecord> records_;
  std::unordered_map<RequestId, TimePoint> last_token_;
  double total_time_ = 0.0;
  double batch_limit_time_ = 0.0;
  int64_t iterations_ = 0;
  double batch_size_weighted_ = 0.0;
  int64_t preemptions_ = 0;
  int64_t conversions_ = 0;
};

}  // namespace aptserve
