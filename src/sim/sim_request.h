// Mutable per-request state tracked by the serving simulator.
#pragma once

#include "cache/cache_types.h"
#include "common/types.h"
#include "workload/request.h"

namespace aptserve {

enum class RequestPhase {
  kWaiting,  ///< no cache on GPU: either never prefilled, or preempted.
  kRunning,  ///< in decode phase with cache resident.
  kFinished,
};

struct SimRequest {
  Request spec;
  RequestPhase phase = RequestPhase::kWaiting;
  /// Cache type currently held (running) or to be used at the next prefill
  /// (waiting). Conversions set this before requeueing (paper §5).
  CacheType cache_type = CacheType::kKV;
  /// Output tokens produced so far.
  int32_t generated = 0;
  /// Cached token positions currently resident.
  int32_t cached_tokens = 0;
  /// Tokens of the current (possibly chunked) prefill pass already
  /// processed; reset on preemption.
  int32_t prefill_progress = 0;
  bool has_first_token = false;
  /// Timestamp of the most recent emitted token.
  TimePoint last_token_time = 0.0;
  int32_t preemptions = 0;
  int32_t conversions = 0;
  /// True when the request is waiting with its cache swapped out to host
  /// memory (swap-based preemption); scheduling it for "prefill" performs a
  /// swap-in instead of a recompute.
  bool swapped = false;

  /// Tokens the request's next decode step attends over (prompt plus all
  /// generated tokens; the latest token is processed, earlier ones cached).
  int32_t context_len() const { return spec.prompt_len + generated; }

  /// Cache positions a (re-)prefill must cover: the prompt plus any tokens
  /// generated before preemption (paper footnote 2).
  int32_t PrefillTarget() const { return spec.prompt_len + generated; }

  bool IsFinished() const { return generated >= spec.output_len; }

  /// The paper's pending time p_i (§4.2): time since arrival if no token
  /// was ever produced, else time since the last emitted token.
  Duration PendingTime(TimePoint now) const {
    return has_first_token ? now - last_token_time : now - spec.arrival;
  }
};

}  // namespace aptserve
