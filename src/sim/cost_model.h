// CostModel: analytic iteration-latency model for the serving simulator.
// Roofline-style: an iteration takes max(compute time, memory time) plus a
// fixed launch/scheduling overhead. Decode iterations are memory-bound
// (weights + cache streaming); prefill iterations are compute-bound; hidden
// cache shifts cost from memory (half the cache bytes) to compute (K/V
// re-projection, linear in context — paper §3.1 and Eq. 6).
#pragma once

#include "common/status.h"
#include "sim/cluster_spec.h"
#include "sim/model_spec.h"

namespace aptserve {

/// Aggregate description of the work in one iteration, produced by the
/// simulator from the scheduler's batch plan.
struct BatchWorkload {
  /// New tokens processed in prefill this iteration (full or chunked).
  int64_t prefill_tokens = 0;
  /// Sum over prefill tokens of the number of context tokens each attends
  /// to (for a fresh full prefill of length n this is n(n+1)/2).
  int64_t prefill_attend_tokens = 0;
  /// Number of requests taking a decode step.
  int32_t decode_reqs = 0;
  /// Sum of context lengths of decode requests using KV cache.
  int64_t decode_kv_context_tokens = 0;
  /// Sum of context lengths of decode requests using hidden cache.
  int64_t decode_hidden_context_tokens = 0;
  /// Bytes moved over PCIe this iteration (swap-based preemption traffic,
  /// out + in).
  double swap_bytes = 0.0;

  bool Empty() const {
    return prefill_tokens == 0 && decode_reqs == 0 && swap_bytes == 0.0;
  }
  BatchWorkload& operator+=(const BatchWorkload& o) {
    prefill_tokens += o.prefill_tokens;
    prefill_attend_tokens += o.prefill_attend_tokens;
    decode_reqs += o.decode_reqs;
    decode_kv_context_tokens += o.decode_kv_context_tokens;
    decode_hidden_context_tokens += o.decode_hidden_context_tokens;
    swap_bytes += o.swap_bytes;
    return *this;
  }
};

class CostModel {
 public:
  CostModel(const ModelSpec& model, const ClusterSpec& cluster,
            double iteration_overhead_s = 0.003)
      : model_(model), cluster_(cluster), overhead_(iteration_overhead_s) {}

  /// Wall-clock seconds for one iteration executing `w`.
  double IterationSeconds(const BatchWorkload& w) const;

  /// Seconds to move `bytes` of cache state between two fleet instances
  /// (live request migration), including the fixed coordination overhead.
  /// 0 for an empty (cold/deduped) transfer. `cross_cell` prices the
  /// transfer over the slower aggregation tier a hierarchical fleet
  /// crosses between cells instead of the intra-cell interconnect.
  double MigrationSeconds(double bytes, bool cross_cell = false) const;

  /// The scheduler's rho (paper Eq. 6): extra iteration seconds per cached
  /// token of a hidden-cache request, derived from the recompute FLOPs at
  /// the cluster's effective compute rate. The paper measures this with a
  /// ~30 s offline profiling pass; the analytic value plays that role here
  /// (the mini engine's RhoCalibrator demonstrates the measured variant).
  double RhoSecondsPerToken() const;

  const ModelSpec& model() const { return model_; }
  const ClusterSpec& cluster() const { return cluster_; }
  double overhead() const { return overhead_; }

  /// Replaces the analytic rho with a measured value (e.g. from the mini
  /// engine's RhoCalibrator), mirroring the paper's offline profiling pass.
  void SetRhoOverride(double rho_seconds_per_token) {
    rho_override_ = rho_seconds_per_token;
  }

 private:
  ModelSpec model_;
  ClusterSpec cluster_;
  double overhead_;
  double rho_override_ = -1.0;
};

}  // namespace aptserve
