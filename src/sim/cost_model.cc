#include "sim/cost_model.h"

#include <algorithm>

namespace aptserve {

double CostModel::IterationSeconds(const BatchWorkload& w) const {
  if (w.Empty()) return overhead_;

  const int64_t processed = w.prefill_tokens + w.decode_reqs;
  const int64_t attended = w.prefill_attend_tokens +
                           w.decode_kv_context_tokens +
                           w.decode_hidden_context_tokens;

  // Compute: full forward for every processed token, attention context
  // terms, plus the hidden-cache K/V re-projection (the paper's extra
  // linear-complexity cost, Figure 3b).
  double flops = model_.FlopsPerToken() * static_cast<double>(processed);
  flops += model_.AttentionFlopsPerContextToken() *
           static_cast<double>(attended);
  flops += model_.HiddenRecomputeFlopsPerToken() *
           static_cast<double>(w.decode_hidden_context_tokens);
  const double compute_s = flops / cluster_.EffectiveFlops();

  // Memory: one pass over the weights, plus cache streaming. Hidden-cache
  // requests read half the bytes per context token.
  double bytes = model_.WeightBytes();
  bytes += model_.KvBytesPerToken() *
           static_cast<double>(w.decode_kv_context_tokens);
  bytes += model_.HiddenBytesPerToken() *
           static_cast<double>(w.decode_hidden_context_tokens);
  // Prefill writes its cache once per token (component bytes ~ KV).
  bytes += model_.KvBytesPerToken() * static_cast<double>(w.prefill_tokens);
  const double memory_s = bytes / cluster_.EffectiveBandwidth();

  // PCIe swap traffic does not overlap usefully with the iteration's
  // compute in practice (blocking cudaMemcpy in vLLM's swap path), so it
  // adds serially.
  const double swap_s = w.swap_bytes / cluster_.gpu.pcie_bandwidth;

  return std::max(compute_s, memory_s) + swap_s + overhead_;
}

double CostModel::MigrationSeconds(double bytes, bool cross_cell) const {
  if (bytes <= 0.0) return 0.0;
  const double bandwidth = cross_cell ? cluster_.gpu.cross_cell_bandwidth
                                      : cluster_.gpu.interconnect_bandwidth;
  return bytes / bandwidth + overhead_;
}

double CostModel::RhoSecondsPerToken() const {
  if (rho_override_ >= 0.0) return rho_override_;
  return model_.HiddenRecomputeFlopsPerToken() / cluster_.EffectiveFlops();
}

}  // namespace aptserve
