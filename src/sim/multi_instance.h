// Multi-instance serving (the paper's §8 future work: "generalize
// Apt-Serve's designs to the multi-instance scenario"). A dispatcher
// assigns each arriving request to one of N independent serving instances
// (each with its own GPU pool, scheduler and iteration loop); instances
// then run to completion and the reports are merged.
//
// The dispatcher sees only what a real front-end would: arrival times and
// prompt lengths. Load estimates use a sliding window of recently assigned
// prompt tokens as the backlog proxy (Llumnix-style least-loaded routing
// without cross-instance migration).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.h"

namespace aptserve {

enum class DispatchPolicy {
  kRoundRobin,
  /// Assign to the instance with the least prompt tokens dispatched within
  /// the trailing window (a backlog proxy).
  kLeastLoaded,
  /// Pick two instances uniformly at random, assign to the less loaded —
  /// the classic power-of-two-choices balancer.
  kPowerOfTwo,
};

const char* DispatchPolicyName(DispatchPolicy p);

struct MultiInstanceConfig {
  int32_t n_instances = 2;
  DispatchPolicy policy = DispatchPolicy::kLeastLoaded;
  /// Sliding window (seconds) over which dispatched prompt tokens count as
  /// backlog.
  double load_window_s = 30.0;
  uint64_t dispatch_seed = 99;
  SimulatorConfig sim;
};

struct MultiInstanceResult {
  SloReport combined;
  std::vector<SloReport> per_instance;
  std::vector<int32_t> requests_per_instance;
};

/// Creates one scheduler per instance (each instance needs its own
/// stateful scheduler object).
using SchedulerFactory = std::function<std::unique_ptr<Scheduler>()>;

class MultiInstanceSimulator {
 public:
  MultiInstanceSimulator(const CostModel& cost_model,
                         const MultiInstanceConfig& config);

  StatusOr<MultiInstanceResult> Run(const std::vector<Request>& trace,
                                    const SchedulerFactory& make_scheduler,
                                    const SloSpec& slo);

  /// Exposed for tests: the dispatch assignment for a trace.
  std::vector<int32_t> Dispatch(const std::vector<Request>& trace) const;

 private:
  CostModel cost_model_;
  MultiInstanceConfig config_;
};

/// Merges per-instance reports into a fleet-level report: attainment is
/// request-weighted, latency sample sets are unioned, serving time is the
/// parallel maximum, counters are summed.
SloReport MergeReports(const std::vector<SloReport>& reports,
                       const std::vector<int32_t>& request_counts);

}  // namespace aptserve
