// Multi-instance *simulation*: a compatibility facade over the generic
// MultiInstanceRunner (serve/multi_instance.h) with one CostModelBackend
// per instance. Dispatch policies, report merging, and the per-instance
// serving loops all live in the serve layer and are shared with the real
// inference engine; this header re-exports them for existing users.
#pragma once

#include <vector>

#include "serve/multi_instance.h"
#include "sim/simulator.h"

namespace aptserve {

struct MultiInstanceConfig {
  int32_t n_instances = 2;
  DispatchPolicy policy = DispatchPolicy::kLeastLoaded;
  /// Sliding window (seconds) over which dispatched prompt tokens count as
  /// backlog.
  double load_window_s = 30.0;
  uint64_t dispatch_seed = 99;
  SimulatorConfig sim;
  /// Fleet runtime: instances run concurrently on up to this many threads
  /// (merged reports are bit-identical to the serial run). Default: serial.
  RuntimeConfig runtime;
};

class MultiInstanceSimulator {
 public:
  MultiInstanceSimulator(const CostModel& cost_model,
                         const MultiInstanceConfig& config);

  StatusOr<MultiInstanceResult> Run(const std::vector<Request>& trace,
                                    const SchedulerFactory& make_scheduler,
                                    const SloSpec& slo);

  /// Exposed for tests: the dispatch assignment for a trace.
  std::vector<int32_t> Dispatch(const std::vector<Request>& trace) const;

 private:
  CostModel cost_model_;
  MultiInstanceConfig config_;
};

}  // namespace aptserve
