// Multi-instance *simulation*: a compatibility facade over the generic
// FleetController (serve/fleet_controller.h) with one CostModelBackend per
// instance. Routing policies, scaling, migration, report merging, and the
// per-instance serving loops all live in the serve layer and are shared
// with the real inference engine; this header re-exports them for existing
// users.
//
// Fleet options live in exactly one place — serve::FleetConfig (`fleet`
// below). The old duplicated surface (n_instances / policy /
// load_window_s / dispatch_seed mirrored between MultiInstanceConfig and
// DispatchConfig) is gone; `MultiInstanceConfig` survives as a deprecation
// alias for this struct.
#pragma once

#include <vector>

#include "serve/fleet_controller.h"
#include "serve/multi_instance.h"
#include "sim/simulator.h"

namespace aptserve {

struct MultiInstanceSimConfig {
  /// The single home of fleet options: initial size and routing policy
  /// (fleet.router), elasticity rules, migration, and the fleet runtime.
  /// The serving-loop knobs (batch cap, preemption mode) are derived from
  /// `sim` below, which also configures each instance's analytic backend.
  FleetConfig fleet;
  SimulatorConfig sim;

  MultiInstanceSimConfig() {
    // The historical facade default (DispatchPolicy::kLeastLoaded).
    fleet.router.policy = RoutePolicy::kLeastLoaded;
  }
};

/// Deprecated name; use MultiInstanceSimConfig (or serve::FleetConfig
/// directly with FleetController).
using MultiInstanceConfig = MultiInstanceSimConfig;

class MultiInstanceSimulator {
 public:
  MultiInstanceSimulator(const CostModel& cost_model,
                         const MultiInstanceSimConfig& config);

  StatusOr<MultiInstanceResult> Run(const std::vector<Request>& trace,
                                    const SchedulerFactory& make_scheduler,
                                    const SloSpec& slo);

  /// Elastic runs want the scaling/migration metrics too.
  StatusOr<FleetResult> RunFleet(const std::vector<Request>& trace,
                                 const SchedulerFactory& make_scheduler,
                                 const SloSpec& slo);

  /// Exposed for tests: the dispatch assignment for a trace.
  std::vector<int32_t> Dispatch(const std::vector<Request>& trace) const;

 private:
  FleetConfig EffectiveFleetConfig() const;

  CostModel cost_model_;
  MultiInstanceSimConfig config_;
};

}  // namespace aptserve
