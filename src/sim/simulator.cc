#include "sim/simulator.h"

#include "cache/swap_space.h"

#include <algorithm>

#include "common/logging.h"

namespace aptserve {

Simulator::Simulator(const CostModel& cost_model,
                     const SimulatorConfig& config)
    : cost_model_(cost_model), config_(config) {}

StatusOr<int32_t> Simulator::DerivePoolBlocks() const {
  if (config_.pool_blocks_override > 0) return config_.pool_blocks_override;
  APT_ASSIGN_OR_RETURN(double cache_bytes, cost_model_.cluster().CacheBytes(
                                               cost_model_.model()));
  const double block_bytes =
      config_.block_size * cost_model_.model().HiddenBytesPerToken();
  const int32_t blocks = static_cast<int32_t>(cache_bytes / block_bytes);
  if (blocks <= 0) return Status::InvalidArgument("no cache memory available");
  return blocks;
}

StatusOr<SimulationResult> Simulator::Run(const std::vector<Request>& trace,
                                          Scheduler* scheduler,
                                          const SloSpec& slo) {
  APT_CHECK(scheduler != nullptr);
  APT_ASSIGN_OR_RETURN(int32_t pool_blocks, DerivePoolBlocks());
  BlockPool pool(pool_blocks, config_.block_size);
  HybridCacheAssigner assigner(&pool);
  MetricsCollector metrics;
  const bool swap_mode = config_.preemption_mode == PreemptionMode::kSwap;
  SwapSpace swap(config_.swap_blocks > 0 ? config_.swap_blocks
                                         : 4 * pool_blocks);
  const double block_bytes =
      config_.block_size * cost_model_.model().HiddenBytesPerToken();
  // Swap traffic generated between executed iterations is charged to the
  // next iteration that actually runs.
  double carry_swap_bytes = 0.0;

  // Requests in arrival order (the trace builder guarantees sorted output;
  // re-sort defensively for hand-built traces).
  std::vector<SimRequest> reqs;
  reqs.reserve(trace.size());
  for (const Request& r : trace) {
    SimRequest sr;
    sr.spec = r;
    if (r.prompt_len <= 0 || r.output_len <= 0) {
      return Status::InvalidArgument("request lengths must be positive");
    }
    reqs.push_back(sr);
    metrics.RegisterRequest(r);
  }
  std::sort(reqs.begin(), reqs.end(),
            [](const SimRequest& a, const SimRequest& b) {
              return a.spec.arrival < b.spec.arrival;
            });
  // Verify every request can ever fit (hidden cache in an empty pool).
  for (const SimRequest& sr : reqs) {
    const int32_t need = assigner.BlocksNeeded(
        CacheType::kHidden, sr.spec.total_len());
    if (need > pool_blocks) {
      return Status::InvalidArgument(
          "request " + std::to_string(sr.spec.id) +
          " cannot fit in the cache pool even with hidden cache");
    }
  }
  std::unordered_map<RequestId, size_t> index;
  for (size_t i = 0; i < reqs.size(); ++i) index[reqs[i].spec.id] = i;

  SimulationResult result;
  result.pool_blocks = pool_blocks;

  TimePoint now = 0.0;
  size_t next_arrival = 0;   // first request not yet arrived
  size_t finished = 0;
  int32_t consecutive_idle = 0;

  for (int64_t iter = 0; iter < config_.max_iterations; ++iter) {
    if (finished == reqs.size()) break;
    // 1. Admit arrivals.
    while (next_arrival < reqs.size() &&
           reqs[next_arrival].spec.arrival <= now) {
      ++next_arrival;
    }

    // 2. Build queues.
    SchedulerInput input;
    input.now = now;
    input.pool = &pool;
    input.assigner = &assigner;
    input.cost_model = &cost_model_;
    for (size_t i = 0; i < next_arrival; ++i) {
      SimRequest& sr = reqs[i];
      if (sr.phase == RequestPhase::kWaiting) {
        input.waiting.push_back(&sr);
      } else if (sr.phase == RequestPhase::kRunning) {
        input.running.push_back(&sr);
      }
    }
    if (input.waiting.empty() && input.running.empty()) {
      if (next_arrival < reqs.size()) {
        now = std::max(now, reqs[next_arrival].spec.arrival);
        continue;
      }
      break;  // all done
    }

    // 3. Plan.
    BatchPlan plan = scheduler->PlanIteration(input);

    // 4a. Preemptions / conversions.
    for (const PreemptionItem& p : plan.preempt) {
      auto it = index.find(p.id);
      if (it == index.end()) {
        return Status::Internal("scheduler preempted unknown request");
      }
      SimRequest& sr = reqs[it->second];
      // Preemption targets are running requests or waiting requests that
      // hold a partial (chunked-prefill) cache; both free their blocks and
      // restart their prefill pass later.
      const bool preemptible =
          assigner.Has(p.id) && (sr.phase == RequestPhase::kRunning ||
                                 sr.phase == RequestPhase::kWaiting);
      if (!preemptible) {
        return Status::Internal(
            "scheduler preempted a request holding no cache");
      }
      const bool is_conversion = p.resume_cache_type != sr.cache_type;
      if (is_conversion) {
        APT_RETURN_NOT_OK(assigner.DiscardForConversion(p.id));
        ++sr.conversions;
        metrics.OnConversion();
      } else if (swap_mode && sr.phase == RequestPhase::kRunning &&
                 swap.SwapOut(p.id, sr.cache_type, sr.cached_tokens,
                              assigner.Find(p.id)->TotalBlocks())
                     .ok()) {
        // Swap-based preemption: the cache moves to host memory; the
        // request keeps its logical progress and resumes via a swap-in
        // instead of a recompute prefill.
        carry_swap_bytes +=
            assigner.Find(p.id)->TotalBlocks() * block_bytes;
        APT_RETURN_NOT_OK(assigner.Release(p.id));
        metrics.OnPreemption();
        ++sr.preemptions;
        sr.phase = RequestPhase::kWaiting;
        sr.swapped = true;
        sr.prefill_progress = sr.cached_tokens;
        continue;
      } else {
        APT_RETURN_NOT_OK(assigner.Release(p.id));
        metrics.OnPreemption();
      }
      ++sr.preemptions;
      sr.phase = RequestPhase::kWaiting;
      sr.cache_type = p.resume_cache_type;
      sr.cached_tokens = 0;
      sr.prefill_progress = 0;
    }

    // 4b. Apply scheduled items with memory allocation.
    struct Applied {
      SimRequest* req;
      int32_t chunk;       // 0 => decode, -1 => swap-in (no token)
      int32_t prior_progress;
    };
    std::vector<Applied> applied;
    bool hit_memory_wall = false;
    double iter_swap_bytes = 0.0;
    int32_t accepted = 0;
    for (const ScheduledItem& item : plan.items) {
      if (accepted >= config_.max_batch_size) break;
      auto it = index.find(item.id);
      if (it == index.end()) {
        return Status::Internal("scheduler scheduled unknown request");
      }
      SimRequest& sr = reqs[it->second];
      if (sr.phase == RequestPhase::kFinished) {
        return Status::Internal("scheduler scheduled a finished request");
      }
      if (item.prefill_chunk == 0) {
        // Decode step.
        if (sr.phase != RequestPhase::kRunning || sr.cached_tokens < 1) {
          return Status::Internal("decode scheduled for non-running request");
        }
        if (item.cache_type != sr.cache_type) {
          return Status::Internal(
              "decode cache type mismatch; use preemption to convert");
        }
        Status st = assigner.Append(item.id, 1);
        if (st.IsOutOfMemory()) {
          // vLLM-style recompute preemption: this request yields its memory
          // and re-enters the waiting queue.
          APT_RETURN_NOT_OK(assigner.Release(item.id));
          metrics.OnPreemption();
          ++sr.preemptions;
          sr.phase = RequestPhase::kWaiting;
          sr.cached_tokens = 0;
          sr.prefill_progress = 0;
          hit_memory_wall = true;
          continue;
        }
        APT_RETURN_NOT_OK(st);
        applied.push_back({&sr, 0, 0});
        ++accepted;
      } else {
        // Prefill chunk.
        if (sr.phase != RequestPhase::kWaiting) {
          return Status::Internal("prefill scheduled for running request");
        }
        if (sr.swapped) {
          // A scheduled swapped request performs a swap-in instead of a
          // recompute: restore its blocks on the GPU and resume decoding.
          const SwapSpace::Entry* entry = swap.Find(item.id);
          APT_CHECK(entry != nullptr);
          const int32_t need =
              assigner.BlocksNeeded(entry->type, entry->tokens);
          if (need > pool.num_free()) {
            hit_memory_wall = true;
            continue;  // stays swapped; retried later
          }
          APT_ASSIGN_OR_RETURN(SwapSpace::Entry e, swap.SwapIn(item.id));
          APT_RETURN_NOT_OK(
              assigner.CreateFilled(item.id, e.type, e.tokens));
          iter_swap_bytes +=
              assigner.Find(item.id)->TotalBlocks() * block_bytes;
          sr.swapped = false;
          sr.phase = RequestPhase::kRunning;
          applied.push_back({&sr, -1, 0});
          ++accepted;
          continue;
        }
        const int32_t remaining = sr.PrefillTarget() - sr.prefill_progress;
        const int32_t chunk = std::min(item.prefill_chunk, remaining);
        if (chunk <= 0) {
          return Status::Internal("empty prefill chunk scheduled");
        }
        Status st;
        if (!assigner.Has(item.id)) {
          // A request that already produced tokens and resumes with a
          // different cache type is an effective conversion (paper §5's
          // discard-and-recompute, with the recompute folded into this
          // resume prefill).
          if (sr.has_first_token && sr.cache_type != item.cache_type) {
            metrics.OnConversion();
            ++sr.conversions;
          }
          sr.cache_type = item.cache_type;
          st = assigner.CreateFilled(item.id, item.cache_type, chunk);
        } else {
          if (item.cache_type != sr.cache_type) {
            return Status::Internal(
                "chunked prefill cannot switch cache type mid-pass");
          }
          st = assigner.Append(item.id, chunk);
        }
        if (st.IsOutOfMemory()) {
          hit_memory_wall = true;
          continue;  // stays waiting; retried in a later iteration
        }
        APT_RETURN_NOT_OK(st);
        applied.push_back({&sr, chunk, sr.prefill_progress});
        ++accepted;
      }
    }

    if (applied.empty()) {
      // No work executed. Advance to the next arrival if any; repeated
      // no-progress iterations with work at hand indicate a scheduler bug.
      ++consecutive_idle;
      if (consecutive_idle > 1000) {
        return Status::Internal("scheduler made no progress for 1000 "
                                "iterations with requests pending");
      }
      if (next_arrival < reqs.size()) {
        now = std::max(now + cost_model_.overhead(),
                       reqs[next_arrival].spec.arrival);
      } else {
        now += cost_model_.overhead();
      }
      continue;
    }
    consecutive_idle = 0;

    // 5. Cost.
    BatchWorkload w;
    w.swap_bytes = carry_swap_bytes + iter_swap_bytes;
    carry_swap_bytes = 0.0;
    for (const Applied& a : applied) {
      if (a.chunk < 0) continue;  // swap-in: costed via swap_bytes
      if (a.chunk == 0) {
        ++w.decode_reqs;
        // sr.cached_tokens is updated in step 6, so here it still holds the
        // pre-growth count == number of past context tokens.
        const int64_t ctx = a.req->cached_tokens;
        if (a.req->cache_type == CacheType::kHidden) {
          w.decode_hidden_context_tokens += ctx;
        } else {
          w.decode_kv_context_tokens += ctx;
        }
      } else {
        w.prefill_tokens += a.chunk;
        const int64_t k = a.prior_progress;
        const int64_t c = a.chunk;
        w.prefill_attend_tokens += c * k + c * (c + 1) / 2;
      }
    }
    const double latency = cost_model_.IterationSeconds(w);
    const bool is_prefill_iter = w.prefill_tokens > 0 && w.decode_reqs == 0;
    const bool is_decode_iter = w.prefill_tokens == 0 && w.decode_reqs > 0;
    if (is_prefill_iter) {
      ++result.prefill_iterations;
    } else if (is_decode_iter) {
      ++result.decode_iterations;
    } else {
      ++result.mixed_iterations;
    }
    now += latency;

    // 6. Emit tokens / finish requests.
    for (const Applied& a : applied) {
      SimRequest& sr = *a.req;
      if (a.chunk < 0) continue;  // swap-in emits no token
      if (a.chunk == 0) {
        sr.cached_tokens += 1;  // mirror of assigner.Append above
        ++sr.generated;
        metrics.OnToken(sr.spec.id, now);
        sr.last_token_time = now;
      } else {
        sr.prefill_progress += a.chunk;
        sr.cached_tokens += a.chunk;
        if (sr.prefill_progress < sr.PrefillTarget()) continue;  // more chunks
        sr.phase = RequestPhase::kRunning;
        ++sr.generated;
        metrics.OnToken(sr.spec.id, now);
        sr.has_first_token = true;
        sr.last_token_time = now;
      }
      if (sr.IsFinished()) {
        sr.phase = RequestPhase::kFinished;
        metrics.OnFinish(sr.spec.id, now);
        APT_RETURN_NOT_OK(assigner.Release(sr.spec.id));
        ++finished;
      }
    }

    // 7. Batch-limit accounting (Figure 2): the batch could not be grown —
    // either an allocation failed above, or unscheduled waiting work exists
    // that would not fit in the remaining pool space.
    bool at_limit = hit_memory_wall;
    if (!at_limit) {
      for (size_t i = 0; i < next_arrival && !at_limit; ++i) {
        const SimRequest& sr = reqs[i];
        if (sr.phase != RequestPhase::kWaiting) continue;
        bool scheduled_now = false;
        for (const Applied& a : applied) {
          if (a.req == &sr) {
            scheduled_now = true;
            break;
          }
        }
        if (!scheduled_now &&
            assigner.BlocksNeeded(CacheType::kKV, sr.PrefillTarget()) >
                pool.num_free()) {
          at_limit = true;
        }
      }
    }
    metrics.OnIteration(latency, static_cast<int32_t>(applied.size()),
                        at_limit);
    result.peak_blocks = std::max(result.peak_blocks, pool.peak_allocated());
  }

  if (finished != reqs.size()) {
    return Status::Internal("simulation hit the iteration cap with " +
                            std::to_string(reqs.size() - finished) +
                            " unfinished requests");
  }
  APT_CHECK_MSG(swap.used_blocks() == 0,
                "swap space must drain by the end of the run");
  result.swap_outs = swap.total_swap_outs();
  result.swap_ins = swap.total_swap_ins();
  result.report = metrics.Report(slo);
  result.records = metrics.records();
  return result;
}

}  // namespace aptserve
