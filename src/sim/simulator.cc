#include "sim/simulator.h"

#include <utility>

#include "common/logging.h"

namespace aptserve {

CostModelBackend::Options ToCostModelBackendOptions(
    const SimulatorConfig& config) {
  CostModelBackend::Options opts;
  opts.block_size = config.block_size;
  opts.pool_blocks_override = config.pool_blocks_override;
  opts.swap_blocks = config.swap_blocks;
  opts.enable_prefix_sharing = config.enable_prefix_sharing;
  opts.token_seed = config.token_seed;
  opts.token_vocab = config.token_vocab;
  return opts;
}

ServingLoopConfig ToServingLoopConfig(const SimulatorConfig& config) {
  ServingLoopConfig loop;
  loop.max_batch_size = config.max_batch_size;
  loop.max_iterations = config.max_iterations;
  loop.preemption_mode = config.preemption_mode;
  return loop;
}

Simulator::Simulator(const CostModel& cost_model,
                     const SimulatorConfig& config)
    : cost_model_(cost_model), config_(config) {}

StatusOr<int32_t> Simulator::DerivePoolBlocks() const {
  return CostModelBackend::DerivePoolBlocks(
      cost_model_, ToCostModelBackendOptions(config_));
}

StatusOr<SimulationResult> Simulator::Run(const std::vector<Request>& trace,
                                          Scheduler* scheduler,
                                          const SloSpec& slo) {
  APT_ASSIGN_OR_RETURN(std::unique_ptr<CostModelBackend> backend,
                       CostModelBackend::Create(
                           cost_model_, ToCostModelBackendOptions(config_)));

  ServingLoop loop(backend.get(), ToServingLoopConfig(config_));
  APT_ASSIGN_OR_RETURN(ServingLoopResult r, loop.Run(trace, scheduler, slo));

  SimulationResult result;
  result.report = std::move(r.report);
  result.records = std::move(r.records);
  result.prefill_iterations = r.prefill_iterations;
  result.decode_iterations = r.decode_iterations;
  result.mixed_iterations = r.mixed_iterations;
  result.pool_blocks = backend->pool_blocks();
  result.peak_blocks = r.peak_blocks;
  result.swap_outs = r.swap_outs;
  result.swap_ins = r.swap_ins;
  result.prefill_tokens_computed = r.prefill_tokens_computed;
  result.prefill_tokens_skipped = r.prefill_tokens_skipped;
  result.prefix = r.prefix;
  return result;
}

}  // namespace aptserve
