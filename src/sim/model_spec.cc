#include "sim/model_spec.h"

namespace aptserve {

ModelSpec ModelSpec::Opt13B() {
  ModelSpec s;
  s.name = "OPT-13B";
  s.n_params = 13'000'000'000LL;
  s.n_layers = 40;
  s.d_model = 5120;
  s.n_heads = 40;
  s.d_ff = 20480;
  s.max_seq_len = 2048;
  return s;
}

ModelSpec ModelSpec::Opt30B() {
  ModelSpec s;
  s.name = "OPT-30B";
  s.n_params = 30'000'000'000LL;
  s.n_layers = 48;
  s.d_model = 7168;
  s.n_heads = 56;
  s.d_ff = 28672;
  s.max_seq_len = 2048;
  return s;
}

ModelSpec ModelSpec::Opt66B() {
  ModelSpec s;
  s.name = "OPT-66B";
  s.n_params = 66'000'000'000LL;
  s.n_layers = 64;
  s.d_model = 9216;
  s.n_heads = 72;
  s.d_ff = 36864;
  s.max_seq_len = 2048;
  return s;
}

ModelSpec ModelSpec::Llama3_8B_262K() {
  ModelSpec s;
  s.name = "LLaMA3-8B-Instruct262K";
  s.n_params = 8'000'000'000LL;
  s.n_layers = 32;
  s.d_model = 4096;
  s.n_heads = 32;
  s.d_ff = 14336;
  s.max_seq_len = 262'144;
  return s;
}

ModelSpec ModelSpec::Yi6B_200K() {
  ModelSpec s;
  s.name = "Yi-6B-200K";
  s.n_params = 6'000'000'000LL;
  s.n_layers = 32;
  s.d_model = 4096;
  s.n_heads = 32;
  s.d_ff = 11008;
  s.max_seq_len = 200'000;
  return s;
}

StatusOr<ModelSpec> ModelSpec::ByName(const std::string& name) {
  if (name == "OPT-13B") return Opt13B();
  if (name == "OPT-30B") return Opt30B();
  if (name == "OPT-66B") return Opt66B();
  if (name == "LLaMA3-8B-Instruct262K") return Llama3_8B_262K();
  if (name == "Yi-6B-200K") return Yi6B_200K();
  return Status::NotFound("unknown model spec: " + name);
}

}  // namespace aptserve
