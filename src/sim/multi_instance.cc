#include "sim/multi_instance.h"

#include <memory>
#include <utility>

#include "common/logging.h"
#include "serve/cost_model_backend.h"

namespace aptserve {

MultiInstanceSimulator::MultiInstanceSimulator(
    const CostModel& cost_model, const MultiInstanceSimConfig& config)
    : cost_model_(cost_model), config_(config) {
  APT_CHECK(config.fleet.router.n_instances >= 1);
}

FleetConfig MultiInstanceSimulator::EffectiveFleetConfig() const {
  FleetConfig fleet = config_.fleet;
  // The simulator facade derives the per-instance loop from its
  // SimulatorConfig, so batch caps and preemption mode have one knob.
  fleet.loop = ToServingLoopConfig(config_.sim);
  return fleet;
}

std::vector<int32_t> MultiInstanceSimulator::Dispatch(
    const std::vector<Request>& trace) const {
  return Router(config_.fleet.router).Route(trace).assignment;
}

StatusOr<FleetResult> MultiInstanceSimulator::RunFleet(
    const std::vector<Request>& trace, const SchedulerFactory& make_scheduler,
    const SloSpec& slo) {
  const CostModelBackend::Options opts =
      ToCostModelBackendOptions(config_.sim);
  FleetController controller(EffectiveFleetConfig(), &cost_model_);
  return controller.Run(
      trace, make_scheduler,
      [&](int32_t) -> StatusOr<std::unique_ptr<ExecutionBackend>> {
        APT_ASSIGN_OR_RETURN(std::unique_ptr<CostModelBackend> backend,
                             CostModelBackend::Create(cost_model_, opts));
        return std::unique_ptr<ExecutionBackend>(std::move(backend));
      },
      slo);
}

StatusOr<MultiInstanceResult> MultiInstanceSimulator::Run(
    const std::vector<Request>& trace, const SchedulerFactory& make_scheduler,
    const SloSpec& slo) {
  APT_ASSIGN_OR_RETURN(FleetResult result,
                       RunFleet(trace, make_scheduler, slo));
  return std::move(result.serve);
}

}  // namespace aptserve
