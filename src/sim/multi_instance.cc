#include "sim/multi_instance.h"

#include <memory>

#include "common/logging.h"
#include "serve/cost_model_backend.h"

namespace aptserve {

namespace {

DispatchConfig ToDispatchConfig(const MultiInstanceConfig& config) {
  DispatchConfig d;
  d.n_instances = config.n_instances;
  d.policy = config.policy;
  d.load_window_s = config.load_window_s;
  d.dispatch_seed = config.dispatch_seed;
  return d;
}

}  // namespace

MultiInstanceSimulator::MultiInstanceSimulator(
    const CostModel& cost_model, const MultiInstanceConfig& config)
    : cost_model_(cost_model), config_(config) {
  APT_CHECK(config.n_instances >= 1);
}

std::vector<int32_t> MultiInstanceSimulator::Dispatch(
    const std::vector<Request>& trace) const {
  return DispatchTrace(trace, ToDispatchConfig(config_));
}

StatusOr<MultiInstanceResult> MultiInstanceSimulator::Run(
    const std::vector<Request>& trace, const SchedulerFactory& make_scheduler,
    const SloSpec& slo) {
  const CostModelBackend::Options opts =
      ToCostModelBackendOptions(config_.sim);

  MultiInstanceRunner runner(ToDispatchConfig(config_),
                             ToServingLoopConfig(config_.sim),
                             config_.runtime);
  return runner.Run(
      trace, make_scheduler,
      [&](int32_t) -> StatusOr<std::unique_ptr<ExecutionBackend>> {
        APT_ASSIGN_OR_RETURN(std::unique_ptr<CostModelBackend> backend,
                             CostModelBackend::Create(cost_model_, opts));
        return std::unique_ptr<ExecutionBackend>(std::move(backend));
      },
      slo);
}

}  // namespace aptserve
