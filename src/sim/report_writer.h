// CSV export of simulation results, so the bench binaries' tables can be
// re-plotted with external tooling (the paper's figures are line plots /
// scatters over exactly this data).
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sim/metrics.h"

namespace aptserve {

/// One row of a rate-sweep series: (system, rate) -> attainments.
struct SweepRow {
  std::string system;
  double rate = 0.0;
  double slo_attainment = 0.0;
  double ttft_attainment = 0.0;
  double tbt_attainment = 0.0;
};

/// Writes per-request records as CSV:
/// id,arrival,prompt_len,output_len,ttft,p99_tbt,finish,meets_ttft,
/// meets_tbt. Rows are sorted by request id (arrival order).
void WriteRequestRecordsCsv(
    const std::unordered_map<RequestId, RequestRecord>& records,
    const SloSpec& slo, std::ostream* out);

/// Writes sweep rows as CSV: system,rate,slo,ttft,tbt.
void WriteSweepCsv(const std::vector<SweepRow>& rows, std::ostream* out);

/// Writes a (value, cum_fraction) CDF as CSV.
void WriteCdfCsv(const SampleSet& samples, std::ostream* out,
                 size_t max_points = 200);

/// Convenience: writes `content_writer`'s output to `path`, creating the
/// file. Returns an error when the file cannot be opened.
Status WriteFile(const std::string& path,
                 const std::function<void(std::ostream*)>& content_writer);

}  // namespace aptserve
