// CSV export of simulation results, so the bench binaries' tables can be
// re-plotted with external tooling (the paper's figures are line plots /
// scatters over exactly this data).
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sim/metrics.h"

namespace aptserve {

/// One row of a rate-sweep series: (system, rate) -> attainments plus the
/// SLO-aware routing readouts (goodput, admission rejects).
struct SweepRow {
  std::string system;
  double rate = 0.0;
  double slo_attainment = 0.0;
  double ttft_attainment = 0.0;
  double tbt_attainment = 0.0;
  double goodput_rps = 0.0;
  int64_t rejected = 0;
};

/// Writes per-request records as CSV:
/// id,arrival,prompt_len,output_len,ttft,p99_tbt,finish,ttft_bound,
/// tbt_bound,best_effort,meets_ttft,meets_tbt. The bounds are the
/// effective per-request deadlines (own SLO when set, else `slo`). Rows
/// are sorted by request id (arrival order).
void WriteRequestRecordsCsv(
    const std::unordered_map<RequestId, RequestRecord>& records,
    const SloSpec& slo, std::ostream* out);

/// Writes sweep rows as CSV:
/// system,rate,slo_attainment,ttft_attainment,tbt_attainment,goodput_rps,
/// rejected.
void WriteSweepCsv(const std::vector<SweepRow>& rows, std::ostream* out);

/// Writes per-instance fleet reports as CSV:
/// instance,requests,slo_attainment,goodput_rps,mean_ttft,preemptions.
void WriteFleetCsv(const std::vector<SloReport>& per_instance,
                   const std::vector<int32_t>& requests_per_instance,
                   std::ostream* out);

/// Writes wall-clock latency reports as CSV, one labelled row per run
/// (e.g. "epoch-barrier" vs "async" for the same trace):
/// mode,requests,tokens,duration_s,throughput_tok_s,throughput_req_s,
/// ttft_p50,ttft_p95,ttft_p99,ttft_mean,tbt_p50,tbt_p95,tbt_p99,tbt_mean,
/// e2e_p50,e2e_p95,e2e_p99. Latencies in seconds.
void WriteWallLatencyCsv(
    const std::vector<std::pair<std::string, WallLatencyReport>>& rows,
    std::ostream* out);

/// Writes a (value, cum_fraction) CDF as CSV.
void WriteCdfCsv(const SampleSet& samples, std::ostream* out,
                 size_t max_points = 200);

/// Convenience: writes `content_writer`'s output to `path`, creating the
/// file. Returns an error when the file cannot be opened.
Status WriteFile(const std::string& path,
                 const std::function<void(std::ostream*)>& content_writer);

}  // namespace aptserve
