// Analytic descriptions of the LLMs the paper serves. These drive the cost
// model and memory accounting of the serving simulator (the mini engine in
// src/engine/ is a separate, executable model).
//
// NOTE on cache accounting: the paper's hybrid scheme assumes KV cache is
// exactly twice the hidden cache per token (2 vectors vs 1 of dimension
// d_model per layer), which holds for the multi-head-attention OPT family.
// We keep that 2:1 accounting for all specs, matching the paper's unified
// block pool where every block holds one component of equal footprint.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace aptserve {

struct ModelSpec {
  std::string name;
  int64_t n_params = 0;
  int32_t n_layers = 0;
  int32_t d_model = 0;
  int32_t n_heads = 0;
  int32_t d_ff = 0;
  int32_t max_seq_len = 2048;
  double bytes_per_value = 2.0;  ///< fp16 weights and cache.

  /// Bytes of weights resident in GPU memory.
  double WeightBytes() const { return n_params * bytes_per_value; }

  /// Hidden-cache bytes per token: one d_model vector per layer.
  double HiddenBytesPerToken() const {
    return static_cast<double>(n_layers) * d_model * bytes_per_value;
  }

  /// KV-cache bytes per token: K and V vectors per layer (2x hidden).
  double KvBytesPerToken() const { return 2.0 * HiddenBytesPerToken(); }

  /// Hidden-cache bytes per token under int8 block encoding: one code byte
  /// per value plus a scale/zero pair (8 bytes) per layer vector. This is
  /// the transport/interconnect unit for quantized migration payloads; the
  /// pool's block-count accounting instead uses the engine's fixed
  /// kInt8SlotPack packing (int8 tiers hold 4x the tokens per block).
  double Int8HiddenBytesPerToken() const {
    return static_cast<double>(n_layers) * (d_model + 8.0);
  }

  /// FLOPs to process one token through the full model (2 * params rule of
  /// thumb for matmul-dominated transformers), excluding attention context
  /// terms which the cost model adds separately.
  double FlopsPerToken() const { return 2.0 * static_cast<double>(n_params); }

  /// Extra FLOPs per *cached token* per decode step when a request uses
  /// hidden cache: re-projecting K and V at every layer (two d x d matvecs
  /// per layer; paper Figure 3b's yellow path).
  double HiddenRecomputeFlopsPerToken() const {
    return 4.0 * static_cast<double>(d_model) * d_model * n_layers;
  }

  /// Attention FLOPs per processed token per token of attended context
  /// (QK^T dot products plus the value-weighted sum, over all layers).
  double AttentionFlopsPerContextToken() const {
    return 4.0 * static_cast<double>(d_model) * n_layers;
  }

  static ModelSpec Opt13B();
  static ModelSpec Opt30B();
  static ModelSpec Opt66B();
  static ModelSpec Llama3_8B_262K();
  static ModelSpec Yi6B_200K();
  static StatusOr<ModelSpec> ByName(const std::string& name);
};

}  // namespace aptserve
