// Shared-prefix workload generator: the traffic shape prefix sharing is
// built for. Real serving load (multi-turn chat, few-shot templates, agent
// DAG loops) is dominated by requests whose prompts share long prefixes:
//
//   - every request starts with one global *system prompt*;
//   - requests group into *conversations* (the fan-out knob): turn k of a
//     conversation repeats turn k-1's full context and appends fresh turn
//     tokens, so consecutive turns share a growing prefix.
//
// Turn prompts model context as deterministic synthetic tokens (the
// trace's stand-in for user text plus prior assistant output — real
// generated ids are unknowable at trace-build time and identical for both
// execution backends this way). Every request carries concrete token_ids,
// so prefix matching works on real content on the engine and the analytic
// backend alike.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "workload/request.h"

namespace aptserve {

struct SharedPrefixConfig {
  /// Tokens of the global system prompt every request starts with. The
  /// prefix-length axis of the bench sweep.
  int32_t system_prompt_len = 256;
  /// Concurrent conversations (the fan-out / hit-rate axis: all of them
  /// share the system prompt; each shares its own history across turns).
  int32_t num_conversations = 8;
  /// Requests per conversation.
  int32_t turns_per_conversation = 4;
  /// Fresh context tokens appended by each turn.
  int32_t tokens_per_turn = 64;
  /// Mean generated tokens per turn; actual lengths jitter deterministically
  /// in [mean*(1-jitter), mean*(1+jitter)].
  int32_t output_len_mean = 32;
  double output_jitter = 0.25;
  /// Gap between consecutive turns of one conversation (user think time).
  double think_time_s = 2.0;
  /// Arrival offset between conversation starts.
  double conversation_stagger_s = 0.25;
  int32_t vocab_size = 50272;
  uint64_t seed = 42;
};

/// Builds the trace sorted by arrival with ids 0..n-1 in arrival order.
/// The fraction of prompt tokens covered by some earlier request's prompt
/// grows with turns and fan-out; at the defaults well over half of all
/// prompt positions are shared.
StatusOr<std::vector<Request>> BuildSharedPrefixTrace(
    const SharedPrefixConfig& config);

}  // namespace aptserve
