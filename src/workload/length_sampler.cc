#include "workload/length_sampler.h"

#include <algorithm>
#include <cmath>

namespace aptserve {

int32_t LengthDistribution::Sample(Rng* rng) const {
  double x = 0.0;
  switch (kind) {
    case Kind::kLogNormal:
      x = rng->LogNormal(a, b);
      break;
    case Kind::kNormal:
      x = rng->Normal(a, b);
      break;
    case Kind::kReflectedLogNormal:
      x = cap - rng->LogNormal(a, b);
      break;
  }
  const int32_t v = static_cast<int32_t>(std::llround(x));
  return std::clamp(v, min_len, max_len);
}

LengthDistribution LengthDistribution::LogNormalByMedianMean(double median,
                                                             double mean,
                                                             int32_t min_len,
                                                             int32_t max_len) {
  // For LogNormal(mu, sigma): median = e^mu, mean = e^{mu + sigma^2/2}.
  LengthDistribution d;
  d.kind = Kind::kLogNormal;
  d.a = std::log(median);
  d.b = mean > median ? std::sqrt(2.0 * std::log(mean / median)) : 0.25;
  d.min_len = min_len;
  d.max_len = max_len;
  return d;
}

LengthDistribution LengthDistribution::NormalByMeanStd(double mean,
                                                       double stddev,
                                                       int32_t min_len,
                                                       int32_t max_len) {
  LengthDistribution d;
  d.kind = Kind::kNormal;
  d.a = mean;
  d.b = stddev;
  d.min_len = min_len;
  d.max_len = max_len;
  return d;
}

LengthDistribution LengthDistribution::ReflectedByMedianMean(double median,
                                                             double mean,
                                                             double cap,
                                                             int32_t min_len,
                                                             int32_t max_len) {
  // x = cap - LogNormal(mu, sigma): median(x) = cap - e^mu,
  // mean(x) = cap - e^{mu + sigma^2/2}; requires mean < median (left skew).
  LengthDistribution d;
  d.kind = Kind::kReflectedLogNormal;
  d.cap = cap;
  const double med_ln = cap - median;
  const double mean_ln = cap - mean;
  d.a = std::log(med_ln);
  d.b = mean_ln > med_ln ? std::sqrt(2.0 * std::log(mean_ln / med_ln)) : 0.25;
  d.min_len = min_len;
  d.max_len = max_len;
  return d;
}

DatasetProfile DatasetProfile::ShareGpt() {
  DatasetProfile p;
  p.name = "ShareGPT";
  // Moderate prompts, long high-variance outputs (longest mean output of
  // the three main datasets; total capped by OPT's 2048 context).
  p.input = LengthDistribution::LogNormalByMedianMean(150, 225, 4, 1024);
  p.output = LengthDistribution::LogNormalByMedianMean(165, 245, 1, 1024);
  return p;
}

DatasetProfile DatasetProfile::HumanEval() {
  DatasetProfile p;
  p.name = "HumanEval";
  // Function signatures + docstrings in, short completions out; low variance
  // in both (Figure 7).
  p.input = LengthDistribution::LogNormalByMedianMean(140, 160, 16, 512);
  p.output = LengthDistribution::LogNormalByMedianMean(60, 75, 4, 300);
  return p;
}

DatasetProfile DatasetProfile::LongBench() {
  DatasetProfile p;
  p.name = "LongBench";
  // Long summarization prompts (limited to OPT's 2048-token context per the
  // paper's footnote 5), moderate outputs.
  p.input = LengthDistribution::LogNormalByMedianMean(1350, 1450, 256, 1900);
  p.output = LengthDistribution::LogNormalByMedianMean(150, 200, 8, 600);
  return p;
}

DatasetProfile DatasetProfile::WikiText() {
  DatasetProfile p;
  p.name = "WikiText";
  // Table 7: input max 1840 / median 871 / mean 914; output max 992 /
  // median 552 / mean 521 (mean < median => left-skewed).
  p.input = LengthDistribution::LogNormalByMedianMean(871, 914, 32, 1840);
  p.output = LengthDistribution::ReflectedByMedianMean(552, 521, 1000, 8, 992);
  return p;
}

DatasetProfile DatasetProfile::Arxiv() {
  DatasetProfile p;
  p.name = "Arxiv";
  // Table 7: input max 19600 / median 6853 / mean 7812; output max 9754 /
  // median 226 / mean 420.
  p.input =
      LengthDistribution::LogNormalByMedianMean(6853, 7812, 512, 19600);
  p.output = LengthDistribution::LogNormalByMedianMean(226, 420, 16, 9754);
  return p;
}

DatasetProfile DatasetProfile::BookCorpus() {
  DatasetProfile p;
  p.name = "BookCorpus";
  // Table 7: input max 23706 / median 14781 / mean 16944... the reported
  // mean exceeds the median, so a right-skewed lognormal fits; output max
  // 299 / median 221 / mean 185 (left-skewed).
  p.input =
      LengthDistribution::LogNormalByMedianMean(14781, 16944, 1024, 23706);
  p.output = LengthDistribution::ReflectedByMedianMean(221, 185, 305, 8, 299);
  return p;
}

StatusOr<DatasetProfile> DatasetProfile::ByName(const std::string& name) {
  if (name == "ShareGPT") return ShareGpt();
  if (name == "HumanEval") return HumanEval();
  if (name == "LongBench") return LongBench();
  if (name == "WikiText") return WikiText();
  if (name == "Arxiv") return Arxiv();
  if (name == "BookCorpus") return BookCorpus();
  return Status::NotFound("unknown dataset profile: " + name);
}

}  // namespace aptserve
