// Request arrival processes (paper §6.2: Poisson for the main experiments,
// §6.4: Gamma inter-arrivals with a coefficient-of-variation knob for
// burstiness).
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"

namespace aptserve {

/// Generates `n` arrival timestamps with exponential inter-arrival gaps of
/// mean 1/rate (a Poisson process).
StatusOr<std::vector<TimePoint>> PoissonArrivals(double rate_per_sec,
                                                 int32_t n, Rng* rng);

/// Generates `n` arrival timestamps with Gamma-distributed inter-arrival
/// gaps: mean 1/rate, coefficient of variation `cv`. cv = 1 reduces to a
/// Poisson process; larger cv means burstier arrivals (paper Figure 9).
StatusOr<std::vector<TimePoint>> GammaArrivals(double rate_per_sec, double cv,
                                               int32_t n, Rng* rng);

/// Diurnal (time-varying) traffic: the sinusoidal day/night rate profile of
/// production serving, oscillating between `base_rate` (trough) and
/// `peak_rate` over `period_s` virtual seconds. `phase` shifts where in the
/// cycle the trace starts (0 = trough).
struct DiurnalProfile {
  double base_rate = 1.0;
  double peak_rate = 4.0;
  double period_s = 600.0;
  double phase = 0.0;

  /// Instantaneous arrival rate at time `t`.
  double RateAt(double t) const;
};

/// A flash crowd: a multiplicative rate spike (breaking news, a viral
/// prompt) over [start_s, start_s + duration_s). Spikes compose — they
/// multiply on top of the diurnal profile and each other.
struct FlashCrowd {
  double start_s = 0.0;
  double duration_s = 30.0;
  double multiplier = 3.0;
};

/// Generates `n` arrivals from a nonhomogeneous process whose rate follows
/// `profile` scaled by any active `crowds`, via thinning over the existing
/// Gamma/Poisson sampler: candidates are drawn at the envelope (maximum)
/// rate with burstiness `cv` and accepted with probability rate(t)/max —
/// so the diurnal/flash shape composes with the paper's burstiness knob
/// (cv = 1 gives an exact nonhomogeneous Poisson process).
StatusOr<std::vector<TimePoint>> DiurnalArrivals(
    const DiurnalProfile& profile, const std::vector<FlashCrowd>& crowds,
    double cv, int32_t n, Rng* rng);

}  // namespace aptserve
