// Request arrival processes (paper §6.2: Poisson for the main experiments,
// §6.4: Gamma inter-arrivals with a coefficient-of-variation knob for
// burstiness).
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"

namespace aptserve {

/// Generates `n` arrival timestamps with exponential inter-arrival gaps of
/// mean 1/rate (a Poisson process).
StatusOr<std::vector<TimePoint>> PoissonArrivals(double rate_per_sec,
                                                 int32_t n, Rng* rng);

/// Generates `n` arrival timestamps with Gamma-distributed inter-arrival
/// gaps: mean 1/rate, coefficient of variation `cv`. cv = 1 reduces to a
/// Poisson process; larger cv means burstier arrivals (paper Figure 9).
StatusOr<std::vector<TimePoint>> GammaArrivals(double rate_per_sec, double cv,
                                               int32_t n, Rng* rng);

}  // namespace aptserve
