// The immutable description of one serving request in a trace.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace aptserve {

struct Request {
  RequestId id = kInvalidRequestId;
  /// Number of prompt tokens (known to the scheduler on arrival).
  int32_t prompt_len = 0;
  /// Number of output tokens until EOS. Ground truth used by the simulator
  /// to decide when the request finishes; schedulers never read it (the
  /// paper stresses output lengths are unpredictable).
  int32_t output_len = 0;
  /// Arrival time in seconds from the start of the trace.
  TimePoint arrival = 0.0;
  /// Optional prompt token ids (exactly `prompt_len` entries when present).
  /// Prefix sharing matches on real token content, so traces that exercise
  /// it carry ids (the shared-prefix workload generator fills them; plain
  /// length-only traces leave this empty and backends synthesize
  /// deterministically — workload/token_ids.h).
  std::vector<int32_t> token_ids;

  int32_t total_len() const { return prompt_len + output_len; }
  bool has_token_ids() const { return !token_ids.empty(); }
};

}  // namespace aptserve
