// The immutable description of one serving request in a trace.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace aptserve {

struct Request {
  RequestId id = kInvalidRequestId;
  /// Number of prompt tokens (known to the scheduler on arrival).
  int32_t prompt_len = 0;
  /// Number of output tokens until EOS. Ground truth used by the simulator
  /// to decide when the request finishes; schedulers never read it (the
  /// paper stresses output lengths are unpredictable).
  int32_t output_len = 0;
  /// Arrival time in seconds from the start of the trace.
  TimePoint arrival = 0.0;
  /// Optional prompt token ids (exactly `prompt_len` entries when present).
  /// Prefix sharing matches on real token content, so traces that exercise
  /// it carry ids (the shared-prefix workload generator fills them; plain
  /// length-only traces leave this empty and backends synthesize
  /// deterministically — workload/token_ids.h).
  std::vector<int32_t> token_ids;
  /// Per-request SLO deadlines in seconds; negative inherits the run-level
  /// SloSpec. The fleet router's admission control evaluates requests
  /// against these, and metrics resolve them per record.
  double slo_ttft_s = -1.0;
  double slo_tbt_p99_s = -1.0;
  /// Admission control deprioritized this request: it is still served, but
  /// excluded from SLO attainment and goodput (best-effort traffic).
  bool best_effort = false;

  int32_t total_len() const { return prompt_len + output_len; }
  bool has_token_ids() const { return !token_ids.empty(); }
  bool has_own_slo() const { return slo_ttft_s >= 0 || slo_tbt_p99_s >= 0; }
};

}  // namespace aptserve
