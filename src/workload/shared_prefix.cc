#include "workload/shared_prefix.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace aptserve {

StatusOr<std::vector<Request>> BuildSharedPrefixTrace(
    const SharedPrefixConfig& config) {
  if (config.system_prompt_len < 0 || config.tokens_per_turn <= 0) {
    return Status::InvalidArgument("prompt token counts must be positive");
  }
  if (config.num_conversations <= 0 || config.turns_per_conversation <= 0) {
    return Status::InvalidArgument("need at least one conversation and turn");
  }
  if (config.output_len_mean <= 0 || config.vocab_size <= 0) {
    return Status::InvalidArgument("output length and vocab must be positive");
  }
  if (config.output_jitter < 0.0 || config.output_jitter >= 1.0) {
    return Status::InvalidArgument("output_jitter must be in [0, 1)");
  }

  Rng rng(config.seed);
  std::vector<int32_t> system_prompt(config.system_prompt_len);
  for (int32_t& t : system_prompt) {
    t = static_cast<int32_t>(rng.UniformInt(0, config.vocab_size - 1));
  }

  std::vector<Request> trace;
  trace.reserve(static_cast<size_t>(config.num_conversations) *
                config.turns_per_conversation);
  for (int32_t c = 0; c < config.num_conversations; ++c) {
    // One RNG per conversation, seeded off the trace seed, so adding a
    // conversation never perturbs the others' content.
    Rng conv_rng(config.seed ^
                 (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(c + 1)));
    std::vector<int32_t> history = system_prompt;
    for (int32_t k = 0; k < config.turns_per_conversation; ++k) {
      for (int32_t i = 0; i < config.tokens_per_turn; ++i) {
        history.push_back(static_cast<int32_t>(
            conv_rng.UniformInt(0, config.vocab_size - 1)));
      }
      Request r;
      r.prompt_len = static_cast<int32_t>(history.size());
      r.token_ids = history;
      const double jitter =
          conv_rng.Uniform(-config.output_jitter, config.output_jitter);
      r.output_len = std::max(
          1, static_cast<int32_t>(std::lround(config.output_len_mean *
                                              (1.0 + jitter))));
      r.arrival = c * config.conversation_stagger_s + k * config.think_time_s;
      trace.push_back(std::move(r));
    }
  }

  std::stable_sort(trace.begin(), trace.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival < b.arrival;
                   });
  for (size_t i = 0; i < trace.size(); ++i) {
    trace[i].id = static_cast<RequestId>(i);
  }
  return trace;
}

}  // namespace aptserve
