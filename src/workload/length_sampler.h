// Length distributions for the paper's datasets. The datasets themselves
// (ShareGPT, HumanEval, LongBench, WikiText, Arxiv, BookCorpus) are not
// available offline, so each is modeled by a parametric distribution
// calibrated to the statistics the paper reports: Figure 7's qualitative
// shapes for the three main datasets, Table 7's exact max/median/mean for
// the ultra-long ones. DESIGN.md §2 documents this substitution.
#pragma once

#include <string>

#include "common/rng.h"
#include "common/status.h"

namespace aptserve {

/// A bounded positive-integer length distribution.
struct LengthDistribution {
  enum class Kind {
    kLogNormal,           ///< exp(N(mu, sigma)), right-skewed.
    kNormal,              ///< N(a, b), truncated.
    kReflectedLogNormal,  ///< cap - exp(N(mu, sigma)), left-skewed.
  };

  Kind kind = Kind::kLogNormal;
  double a = 0.0;  ///< mu (lognormal kinds) or mean (normal).
  double b = 1.0;  ///< sigma (lognormal kinds) or stddev (normal).
  double cap = 0.0;  ///< reflection point for kReflectedLogNormal.
  int32_t min_len = 1;
  int32_t max_len = 2048;

  /// Draws one length, clamped to [min_len, max_len].
  int32_t Sample(Rng* rng) const;

  static LengthDistribution LogNormalByMedianMean(double median, double mean,
                                                  int32_t min_len,
                                                  int32_t max_len);
  static LengthDistribution NormalByMeanStd(double mean, double stddev,
                                            int32_t min_len, int32_t max_len);
  static LengthDistribution ReflectedByMedianMean(double median, double mean,
                                                  double cap, int32_t min_len,
                                                  int32_t max_len);
};

/// Input/output length model for one dataset.
struct DatasetProfile {
  std::string name;
  LengthDistribution input;
  LengthDistribution output;

  /// Chatbot: moderate prompts, the longest and most variable outputs of the
  /// three main datasets (Figure 7).
  static DatasetProfile ShareGpt();
  /// Code completion: short, low-variance prompts and outputs.
  static DatasetProfile HumanEval();
  /// Summarization: long prompts (capped at OPT's 2048 context), moderate
  /// outputs.
  static DatasetProfile LongBench();
  /// Ultra-long context datasets (Table 7 statistics).
  static DatasetProfile WikiText();
  static DatasetProfile Arxiv();
  static DatasetProfile BookCorpus();

  static StatusOr<DatasetProfile> ByName(const std::string& name);
};

}  // namespace aptserve
