#include "workload/trace_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace aptserve {

namespace {
constexpr char kHeader[] = "id,arrival,prompt_len,output_len";
// v2 adds an optional trailing column: prompt token ids, space-separated
// inside the CSV field (empty when a request carries none). Written only
// when some request has token ids, so length-only traces round-trip
// byte-identically to the original format.
constexpr char kHeaderV2[] = "id,arrival,prompt_len,output_len,token_ids";
}  // namespace

void WriteTraceCsv(const std::vector<Request>& trace, std::ostream* out) {
  bool any_tokens = false;
  for (const Request& r : trace) any_tokens |= r.has_token_ids();
  // Full round-trip precision for arrival timestamps.
  out->precision(17);
  *out << (any_tokens ? kHeaderV2 : kHeader) << '\n';
  for (const Request& r : trace) {
    *out << r.id << ',' << r.arrival << ',' << r.prompt_len << ','
         << r.output_len;
    if (any_tokens) {
      *out << ',';
      for (size_t i = 0; i < r.token_ids.size(); ++i) {
        if (i > 0) *out << ' ';
        *out << r.token_ids[i];
      }
    }
    *out << '\n';
  }
}

StatusOr<std::vector<Request>> ReadTraceCsv(std::istream* in) {
  std::string line;
  if (!std::getline(*in, line) || (line != kHeader && line != kHeaderV2)) {
    return Status::InvalidArgument("missing or malformed trace CSV header");
  }
  const bool v2 = line == kHeaderV2;
  std::vector<Request> trace;
  int line_no = 1;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string field;
    Request r;
    try {
      if (!std::getline(row, field, ',')) throw std::invalid_argument("id");
      r.id = std::stoll(field);
      if (!std::getline(row, field, ',')) {
        throw std::invalid_argument("arrival");
      }
      r.arrival = std::stod(field);
      if (!std::getline(row, field, ',')) {
        throw std::invalid_argument("prompt");
      }
      r.prompt_len = std::stoi(field);
      if (!std::getline(row, field, ',')) {
        throw std::invalid_argument("output");
      }
      r.output_len = std::stoi(field);
      if (v2 && std::getline(row, field, ',')) {
        std::istringstream ids(field);
        std::string tok;
        while (ids >> tok) {
          const int32_t t = std::stoi(tok);
          if (t < 0) throw std::invalid_argument("negative token id");
          r.token_ids.push_back(t);
        }
      }
    } catch (const std::exception&) {
      return Status::InvalidArgument("trace CSV parse error at line " +
                                     std::to_string(line_no));
    }
    if (std::getline(row, field, ',')) {
      return Status::InvalidArgument("too many fields at line " +
                                     std::to_string(line_no));
    }
    if (r.prompt_len <= 0 || r.output_len <= 0 || r.arrival < 0) {
      return Status::InvalidArgument("invalid request values at line " +
                                     std::to_string(line_no));
    }
    if (r.has_token_ids() &&
        static_cast<int32_t>(r.token_ids.size()) != r.prompt_len) {
      return Status::InvalidArgument(
          "token_ids count does not match prompt_len at line " +
          std::to_string(line_no));
    }
    trace.push_back(std::move(r));
  }
  std::sort(trace.begin(), trace.end(),
            [](const Request& a, const Request& b) {
              return a.arrival < b.arrival;
            });
  return trace;
}

Status SaveTrace(const std::vector<Request>& trace, const std::string& path) {
  std::ofstream f(path);
  if (!f.is_open()) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  WriteTraceCsv(trace, &f);
  if (!f.good()) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

StatusOr<std::vector<Request>> LoadTrace(const std::string& path) {
  std::ifstream f(path);
  if (!f.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  return ReadTraceCsv(&f);
}

}  // namespace aptserve
