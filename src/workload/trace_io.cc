#include "workload/trace_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace aptserve {

namespace {
constexpr char kHeader[] = "id,arrival,prompt_len,output_len";
}

void WriteTraceCsv(const std::vector<Request>& trace, std::ostream* out) {
  // Full round-trip precision for arrival timestamps.
  out->precision(17);
  *out << kHeader << '\n';
  for (const Request& r : trace) {
    *out << r.id << ',' << r.arrival << ',' << r.prompt_len << ','
         << r.output_len << '\n';
  }
}

StatusOr<std::vector<Request>> ReadTraceCsv(std::istream* in) {
  std::string line;
  if (!std::getline(*in, line) || line != kHeader) {
    return Status::InvalidArgument("missing or malformed trace CSV header");
  }
  std::vector<Request> trace;
  int line_no = 1;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string field;
    Request r;
    try {
      if (!std::getline(row, field, ',')) throw std::invalid_argument("id");
      r.id = std::stoll(field);
      if (!std::getline(row, field, ',')) {
        throw std::invalid_argument("arrival");
      }
      r.arrival = std::stod(field);
      if (!std::getline(row, field, ',')) {
        throw std::invalid_argument("prompt");
      }
      r.prompt_len = std::stoi(field);
      if (!std::getline(row, field, ',')) {
        throw std::invalid_argument("output");
      }
      r.output_len = std::stoi(field);
    } catch (const std::exception&) {
      return Status::InvalidArgument("trace CSV parse error at line " +
                                     std::to_string(line_no));
    }
    if (std::getline(row, field, ',')) {
      return Status::InvalidArgument("too many fields at line " +
                                     std::to_string(line_no));
    }
    if (r.prompt_len <= 0 || r.output_len <= 0 || r.arrival < 0) {
      return Status::InvalidArgument("invalid request values at line " +
                                     std::to_string(line_no));
    }
    trace.push_back(r);
  }
  std::sort(trace.begin(), trace.end(),
            [](const Request& a, const Request& b) {
              return a.arrival < b.arrival;
            });
  return trace;
}

Status SaveTrace(const std::vector<Request>& trace, const std::string& path) {
  std::ofstream f(path);
  if (!f.is_open()) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  WriteTraceCsv(trace, &f);
  if (!f.good()) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

StatusOr<std::vector<Request>> LoadTrace(const std::string& path) {
  std::ifstream f(path);
  if (!f.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  return ReadTraceCsv(&f);
}

}  // namespace aptserve
