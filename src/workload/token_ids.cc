#include "workload/token_ids.h"

#include "common/logging.h"
#include "common/rng.h"

namespace aptserve {

std::vector<int32_t> DeterministicPromptTokens(RequestId id, uint64_t seed,
                                               int32_t prompt_len,
                                               int32_t vocab_size) {
  APT_CHECK(prompt_len >= 0 && vocab_size > 0);
  // Mix the id into the seed (splitmix-style multiplier) so consecutive
  // request ids get uncorrelated streams.
  Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(id + 1)));
  std::vector<int32_t> tokens(prompt_len);
  for (int32_t& t : tokens) {
    t = static_cast<int32_t>(rng.UniformInt(0, vocab_size - 1));
  }
  return tokens;
}

void EnsureTokenIds(std::vector<Request>* trace, uint64_t seed,
                    int32_t vocab_size) {
  APT_CHECK(trace != nullptr);
  for (Request& r : *trace) {
    if (!r.has_token_ids()) {
      r.token_ids =
          DeterministicPromptTokens(r.id, seed, r.prompt_len, vocab_size);
    }
  }
}

}  // namespace aptserve
