// Trace persistence: save and reload serving traces as CSV so experiments
// can be replayed bit-identically across machines and against external
// systems (the paper's methodology fixes "identical request arrival
// sequences" when comparing policies, §3.2).
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "workload/request.h"

namespace aptserve {

/// Writes `trace` as CSV with header `id,arrival,prompt_len,output_len`.
/// When any request carries token ids (prefix-sharing traces), a fifth
/// `token_ids` column is added holding the ids space-separated; plain
/// length-only traces keep the original four-column format byte-for-byte.
void WriteTraceCsv(const std::vector<Request>& trace, std::ostream* out);

/// Parses a trace written by WriteTraceCsv (either header version).
/// Validates the header, field counts, value ranges, and that token_ids —
/// when present — match prompt_len; returns the requests sorted by arrival.
StatusOr<std::vector<Request>> ReadTraceCsv(std::istream* in);

/// File-path conveniences.
Status SaveTrace(const std::vector<Request>& trace, const std::string& path);
StatusOr<std::vector<Request>> LoadTrace(const std::string& path);

}  // namespace aptserve
