// Serving trace construction: sample request lengths from a dataset profile
// and attach synthetic arrival timestamps (paper §6.2 samples 1000 requests
// per dataset and generates Poisson arrivals; §6.4 uses Gamma arrivals).
#pragma once

#include <vector>

#include "common/status.h"
#include "workload/length_sampler.h"
#include "workload/request.h"

namespace aptserve {

struct TraceConfig {
  DatasetProfile profile;
  int32_t num_requests = 1000;
  double rate_per_sec = 1.0;
  /// Coefficient of variation of inter-arrival gaps; 1.0 = Poisson.
  double cv = 1.0;
  uint64_t seed = 42;
  /// Cap on prompt_len + output_len (model context window); output is
  /// truncated to fit, mirroring the paper's footnote 5 length limiting.
  int32_t max_total_len = 2048;
};

/// Builds a trace sorted by arrival time with ids 0..n-1.
StatusOr<std::vector<Request>> BuildTrace(const TraceConfig& config);

/// Summary statistics of a trace (used by the Figure 7 / Table 7 benches).
struct TraceStats {
  double input_mean = 0, input_median = 0, input_max = 0;
  double output_mean = 0, output_median = 0, output_max = 0;
};
TraceStats ComputeTraceStats(const std::vector<Request>& trace);

}  // namespace aptserve
