// Deterministic prompt-token synthesis for traces that only carry lengths.
//
// Prefix matching needs real token content. Traces from the length
// samplers (ShareGPT/LMSYS profiles) describe only prompt_len; this
// synthesizer expands such a request into concrete ids as a pure function
// of (seed, request id) — order-independent, so every backend, instance
// and replay derives the same content for the same request without
// coordinating. Random content shares essentially no prefixes, which is
// exactly right: sharing must be earned by the workload (see
// workload/shared_prefix.h), never conjured by the synthesizer.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/request.h"

namespace aptserve {

/// Token ids for request `id`: `prompt_len` draws from [0, vocab_size),
/// seeded by (seed, id) only.
std::vector<int32_t> DeterministicPromptTokens(RequestId id, uint64_t seed,
                                               int32_t prompt_len,
                                               int32_t vocab_size);

/// Fills token_ids for every request of `trace` that lacks them.
void EnsureTokenIds(std::vector<Request>* trace, uint64_t seed,
                    int32_t vocab_size);

}  // namespace aptserve
