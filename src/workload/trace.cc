#include "workload/trace.h"

#include <algorithm>

#include "common/stats.h"
#include "workload/arrival.h"

namespace aptserve {

StatusOr<std::vector<Request>> BuildTrace(const TraceConfig& config) {
  if (config.num_requests < 0) {
    return Status::InvalidArgument("negative request count");
  }
  if (config.max_total_len < 2) {
    return Status::InvalidArgument("max_total_len too small");
  }
  Rng rng(config.seed);
  APT_ASSIGN_OR_RETURN(
      std::vector<TimePoint> arrivals,
      GammaArrivals(config.rate_per_sec, config.cv, config.num_requests,
                    &rng));
  std::vector<Request> trace;
  trace.reserve(config.num_requests);
  for (int32_t i = 0; i < config.num_requests; ++i) {
    Request r;
    r.id = i;
    r.arrival = arrivals[i];
    r.prompt_len = std::min(config.profile.input.Sample(&rng),
                            config.max_total_len - 1);
    r.output_len = std::max(
        1, std::min(config.profile.output.Sample(&rng),
                    config.max_total_len - r.prompt_len));
    trace.push_back(r);
  }
  return trace;
}

TraceStats ComputeTraceStats(const std::vector<Request>& trace) {
  SampleSet in, out;
  for (const Request& r : trace) {
    in.Add(r.prompt_len);
    out.Add(r.output_len);
  }
  TraceStats s;
  s.input_mean = in.Mean();
  s.input_median = in.Median();
  s.input_max = in.Max();
  s.output_mean = out.Mean();
  s.output_median = out.Median();
  s.output_max = out.Max();
  return s;
}

}  // namespace aptserve
