#include "workload/arrival.h"

#include <cmath>

namespace aptserve {

StatusOr<std::vector<TimePoint>> PoissonArrivals(double rate_per_sec,
                                                 int32_t n, Rng* rng) {
  return GammaArrivals(rate_per_sec, 1.0, n, rng);
}

StatusOr<std::vector<TimePoint>> GammaArrivals(double rate_per_sec, double cv,
                                               int32_t n, Rng* rng) {
  if (rate_per_sec <= 0) return Status::InvalidArgument("rate must be > 0");
  if (cv <= 0) return Status::InvalidArgument("cv must be > 0");
  if (n < 0) return Status::InvalidArgument("negative request count");
  // Gamma(shape k, scale s): mean = k*s, CV = 1/sqrt(k).
  const double shape = 1.0 / (cv * cv);
  const double scale = 1.0 / (rate_per_sec * shape);
  std::vector<TimePoint> out;
  out.reserve(n);
  TimePoint t = 0.0;
  for (int32_t i = 0; i < n; ++i) {
    t += rng->Gamma(shape, scale);
    out.push_back(t);
  }
  return out;
}

double DiurnalProfile::RateAt(double t) const {
  const double mid = 0.5 * (base_rate + peak_rate);
  const double amp = 0.5 * (peak_rate - base_rate);
  // Trough at phase 0: rate = mid - amp * cos(2*pi*(t/period + phase)).
  const double two_pi = 6.283185307179586;
  return mid - amp * std::cos(two_pi * (t / period_s + phase));
}

StatusOr<std::vector<TimePoint>> DiurnalArrivals(
    const DiurnalProfile& profile, const std::vector<FlashCrowd>& crowds,
    double cv, int32_t n, Rng* rng) {
  if (profile.base_rate <= 0 || profile.peak_rate < profile.base_rate) {
    return Status::InvalidArgument(
        "diurnal rates need 0 < base_rate <= peak_rate");
  }
  if (profile.period_s <= 0) {
    return Status::InvalidArgument("diurnal period must be > 0");
  }
  if (cv <= 0) return Status::InvalidArgument("cv must be > 0");
  if (n < 0) return Status::InvalidArgument("negative request count");
  double crowd_envelope = 1.0;
  for (const FlashCrowd& c : crowds) {
    if (c.duration_s <= 0 || c.multiplier <= 0) {
      return Status::InvalidArgument(
          "flash crowds need positive duration and multiplier");
    }
    crowd_envelope *= std::max(1.0, c.multiplier);
  }
  const auto rate_at = [&](double t) {
    double rate = profile.RateAt(t);
    for (const FlashCrowd& c : crowds) {
      if (t >= c.start_s && t < c.start_s + c.duration_s) {
        rate *= c.multiplier;
      }
    }
    return rate;
  };
  // Thinning (Lewis–Shedler): candidates at the envelope rate, accepted
  // with probability rate(t)/envelope. The candidate stream reuses the
  // Gamma inter-arrival sampler so the burstiness knob composes.
  const double envelope = profile.peak_rate * crowd_envelope;
  const double shape = 1.0 / (cv * cv);
  const double scale = 1.0 / (envelope * shape);
  std::vector<TimePoint> out;
  out.reserve(n);
  TimePoint t = 0.0;
  while (static_cast<int32_t>(out.size()) < n) {
    t += rng->Gamma(shape, scale);
    if (rng->Uniform() * envelope <= rate_at(t)) out.push_back(t);
  }
  return out;
}

}  // namespace aptserve
