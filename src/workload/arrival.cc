#include "workload/arrival.h"

namespace aptserve {

StatusOr<std::vector<TimePoint>> PoissonArrivals(double rate_per_sec,
                                                 int32_t n, Rng* rng) {
  return GammaArrivals(rate_per_sec, 1.0, n, rng);
}

StatusOr<std::vector<TimePoint>> GammaArrivals(double rate_per_sec, double cv,
                                               int32_t n, Rng* rng) {
  if (rate_per_sec <= 0) return Status::InvalidArgument("rate must be > 0");
  if (cv <= 0) return Status::InvalidArgument("cv must be > 0");
  if (n < 0) return Status::InvalidArgument("negative request count");
  // Gamma(shape k, scale s): mean = k*s, CV = 1/sqrt(k).
  const double shape = 1.0 / (cv * cv);
  const double scale = 1.0 / (rate_per_sec * shape);
  std::vector<TimePoint> out;
  out.reserve(n);
  TimePoint t = 0.0;
  for (int32_t i = 0; i < n; ++i) {
    t += rng->Gamma(shape, scale);
    out.push_back(t);
  }
  return out;
}

}  // namespace aptserve
