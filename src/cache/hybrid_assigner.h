// HybridCacheAssigner: owns the per-request cache maps over the unified
// block pool (paper §4.3). It grants/extends/releases cache for scheduled
// requests and implements cache-type switches, which per §5 discard the old
// cache (the request must then re-run a prefill to rebuild it in the new
// type).
#pragma once

#include <unordered_map>

#include "cache/block_pool.h"
#include "cache/cache_map.h"
#include "common/status.h"
#include "common/types.h"

namespace aptserve {

class HybridCacheAssigner {
 public:
  /// The assigner borrows the pool; the pool must outlive it.
  explicit HybridCacheAssigner(BlockPool* pool);

  /// Blocks required to cache `num_tokens` tokens with the given type:
  /// 2*ceil(t/B) for KV, ceil(t/B) for hidden.
  int32_t BlocksNeeded(CacheType type, int32_t num_tokens) const;

  /// Additional blocks needed to grow request `id`'s existing cache to
  /// `num_tokens` total tokens. 0 when already within capacity.
  int32_t BlocksToGrow(RequestId id, int32_t num_tokens) const;

  /// Creates a cache of `type` for request `id` able to hold `num_tokens`
  /// tokens and marks all of them filled (a completed prefill).
  /// AlreadyExists if the request already has a cache; OutOfMemory if blocks
  /// are unavailable (the pool is left unchanged).
  Status CreateFilled(RequestId id, CacheType type, int32_t num_tokens);

  /// Extends request `id`'s cache by `extra_tokens` filled positions,
  /// allocating blocks on demand (decode growth, one token per iteration in
  /// steady state). OutOfMemory leaves the existing cache intact.
  Status Append(RequestId id, int32_t extra_tokens);

  /// Releases all blocks of request `id` (finish or preemption).
  Status Release(RequestId id);

  /// Discards request `id`'s cache so it can be rebuilt with `new_type`
  /// by a subsequent prefill (paper §5: a type switch recomputes the cache).
  /// Equivalent to Release; provided as a named operation for clarity and
  /// stats.
  Status DiscardForConversion(RequestId id);

  bool Has(RequestId id) const { return maps_.count(id) > 0; }
  const CacheMap* Find(RequestId id) const;
  CacheMap* FindMutable(RequestId id);

  BlockPool* pool() const { return pool_; }
  int64_t num_conversions() const { return num_conversions_; }
  size_t num_requests() const { return maps_.size(); }

 private:
  Status AllocateFor(CacheMap* map, int32_t new_blocks_per_component);

  BlockPool* pool_;
  std::unordered_map<RequestId, CacheMap> maps_;
  int64_t num_conversions_ = 0;
};

}  // namespace aptserve
