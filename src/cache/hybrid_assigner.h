// HybridCacheAssigner: owns the per-request cache maps over the unified
// block pool (paper §4.3). It grants/extends/releases cache for scheduled
// requests and implements cache-type switches, which per §5 discard the old
// cache (the request must then re-run a prefill to rebuild it in the new
// type).
#pragma once

#include <functional>
#include <unordered_map>

#include "cache/block_pool.h"
#include "cache/cache_map.h"
#include "common/status.h"
#include "common/types.h"
#include "prefix/prefix_index.h"

namespace aptserve {

/// Result of seeding a cache map from a prefix match. When the match ended
/// mid-block the assigner allocated a private tail pair (`dst_*`) whose
/// first `tokens` slots must be populated from the shared source pair
/// (`src_*`) — the engine copies real payload, the analytic backend only
/// accounts. The caller must invoke ReleaseCowSource() once done (the
/// sources stay pinned until then so eviction cannot free them mid-copy).
struct CowSeed {
  BlockId src_k = kInvalidBlock;
  BlockId src_v = kInvalidBlock;
  BlockId dst_k = kInvalidBlock;
  BlockId dst_v = kInvalidBlock;
  int32_t tokens = 0;
};

/// Logical snapshot of one request's cache map for live migration: type and
/// filled positions only — block ids are pool-local and never travel (the
/// destination re-resolves shared prefixes through its own index and
/// allocates the rest via BlockPool::ImportBlocks).
struct RequestCacheImage {
  CacheType type = CacheType::kKV;
  int32_t num_tokens = 0;
};

class HybridCacheAssigner {
 public:
  /// The assigner borrows the pool; the pool must outlive it.
  explicit HybridCacheAssigner(BlockPool* pool);

  /// Installs a last-resort block reclaimer (the prefix index's LRU
  /// eviction): when an allocation comes up short, the assigner asks the
  /// reclaimer to free at least the deficit and retries once. The callback
  /// returns the number of blocks it freed.
  void SetReclaimer(std::function<int32_t(int32_t)> reclaimer) {
    reclaimer_ = std::move(reclaimer);
  }

  /// Selects the per-tier block encoding for caches created from now on
  /// (existing maps keep the encoding they were built with). Int8 tiers
  /// pack kInt8SlotPack times the tokens into each pool block, which every
  /// BlocksNeeded/BlocksToGrow caller (admission, scheduling, growth)
  /// inherits automatically.
  void SetEncodingPolicy(const CacheEncodingPolicy& policy) {
    policy_ = policy;
  }
  const CacheEncodingPolicy& encoding_policy() const { return policy_; }
  BlockEncoding EncodingFor(CacheType type) const { return policy_.For(type); }
  /// Token slots one pool block holds for caches of `type` under the
  /// current policy.
  int32_t SlotsPerBlockFor(CacheType type) const {
    return SlotsPerBlock(EncodingFor(type), pool_->block_size());
  }

  /// Blocks required to cache `num_tokens` tokens with the given type:
  /// 2*ceil(t/S) for KV, ceil(t/S) for hidden, where S is the tier's
  /// slots-per-block (the pool block size, times kInt8SlotPack for an int8
  /// tier).
  int32_t BlocksNeeded(CacheType type, int32_t num_tokens) const;

  /// Additional blocks needed to grow request `id`'s existing cache to
  /// `num_tokens` total tokens. 0 when already within capacity.
  int32_t BlocksToGrow(RequestId id, int32_t num_tokens) const;

  /// Creates a cache of `type` for request `id` able to hold `num_tokens`
  /// tokens and marks all of them filled (a completed prefill).
  /// AlreadyExists if the request already has a cache; OutOfMemory if blocks
  /// are unavailable (the pool is left unchanged).
  Status CreateFilled(RequestId id, CacheType type, int32_t num_tokens);

  /// Creates a kKV cache for request `id` seeded from a prefix-index match:
  /// the match's fully shared blocks join the map (one pool reference per
  /// block is taken for the request, so releasing the map later just drops
  /// that reference) and, when the match ends mid-block, a private tail
  /// pair is allocated for copy-on-write population. Marks all
  /// `match.tokens` positions filled. References are taken *before* the
  /// tail allocation so the reclaimer's eviction can never free matched
  /// blocks. OutOfMemory (tail pair unavailable even after reclaim) leaves
  /// the pool and the request unchanged.
  StatusOr<CowSeed> CreateSeeded(RequestId id, const PrefixMatch& match);

  /// Drops the transient pin CreateSeeded kept on the COW source pair.
  /// No-op for a seed without a COW tail.
  void ReleaseCowSource(const CowSeed& seed);

  /// Extends request `id`'s cache by `extra_tokens` filled positions,
  /// allocating blocks on demand (decode growth, one token per iteration in
  /// steady state). OutOfMemory leaves the existing cache intact.
  Status Append(RequestId id, int32_t extra_tokens);

  /// Releases all blocks of request `id` (finish or preemption).
  Status Release(RequestId id);

  // ---- Live migration (cache-state handoff) -------------------------------

  /// Snapshot of request `id`'s cache for migration. The map stays intact —
  /// the engine gathers the payload next; ReleaseExported() then drops the
  /// source's blocks.
  StatusOr<RequestCacheImage> SerializeRequestCache(RequestId id) const;

  /// Releases a migrated-out request's blocks through
  /// BlockPool::ExportBlocks: shared prefix blocks stay resident for their
  /// remaining owners (the index, sharing siblings); the rest return to the
  /// free list.
  Status ReleaseExported(RequestId id);

  /// Rebuilds a migrated-in request's cache map from its image. Shared
  /// prefix blocks are adopted from `match` (the caller matched the prompt
  /// against *this* pool's index — dedupe, not copy), a mid-block COW tail
  /// pair is allocated exactly as in CreateSeeded (the caller must populate
  /// it and then ReleaseCowSource), and the remaining
  /// `image.num_tokens - match.tokens` positions get fresh blocks through
  /// BlockPool::ImportBlocks. Pass an empty match for a dedupe-free
  /// restore. OutOfMemory leaves the pool and the request unchanged (the
  /// caller falls back to a cold import).
  StatusOr<CowSeed> RestoreRequestCache(RequestId id,
                                        const RequestCacheImage& image,
                                        const PrefixMatch& match);

  /// Discards request `id`'s cache so it can be rebuilt with `new_type`
  /// by a subsequent prefill (paper §5: a type switch recomputes the cache).
  /// Equivalent to Release; provided as a named operation for clarity and
  /// stats.
  Status DiscardForConversion(RequestId id);

  bool Has(RequestId id) const { return maps_.count(id) > 0; }
  const CacheMap* Find(RequestId id) const;
  CacheMap* FindMutable(RequestId id);

  BlockPool* pool() const { return pool_; }
  int64_t num_conversions() const { return num_conversions_; }
  int64_t num_seeded() const { return num_seeded_; }
  size_t num_requests() const { return maps_.size(); }

 private:
  Status AllocateFor(CacheMap* map, int32_t new_blocks_per_component);
  /// AllocateMany with one reclaim-and-retry round on OutOfMemory. Routes
  /// through ImportBlocks while a RestoreRequestCache is in flight so
  /// migration allocations show up in the pool's lifetime totals.
  Status AllocateWithReclaim(int32_t n, std::vector<BlockId>* out);

  BlockPool* pool_;
  CacheEncodingPolicy policy_;
  std::unordered_map<RequestId, CacheMap> maps_;
  std::function<int32_t(int32_t)> reclaimer_;
  int64_t num_conversions_ = 0;
  int64_t num_seeded_ = 0;
  bool importing_ = false;
};

}  // namespace aptserve
