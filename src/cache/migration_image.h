// MigrationImage: the serialized, pool-independent form of one in-flight
// request's hybrid cache + token state, used for live request migration
// between fleet instances (serve/fleet_controller.h).
//
// The image is deliberately *logical*: it names no BlockIds — block ids are
// per-pool, and the destination re-resolves shared prefix blocks through
// its own PrefixIndex so shared content dedupes instead of copying. Only
// the engine backend fills `payload` (real float vectors gathered through
// BlockStorage); the analytic backend migrates accounting state alone.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache_types.h"

namespace aptserve {

struct MigrationImage {
  /// Token ids: the prompt (first `prompt_len` entries) followed by any
  /// tokens generated before migration. The accounting backend may carry
  /// only the prompt; `prompt_len` delimits shareable content either way.
  std::vector<int32_t> tokens;
  int32_t prompt_len = 0;
  CacheType cache_type = CacheType::kKV;
  /// Cached positions travelling with the request; 0 = the request
  /// migrates cold (it re-prefills at the destination).
  int32_t cached_tokens = 0;
  /// Engine payload for the cached positions, gathered per component and
  /// layer: [component][layer][pos][dim] in CacheMap::Components() order.
  /// Empty on the accounting backend.
  std::vector<float> payload;

  /// Transport encoding of the payload. kInt8 payloads travel as raw codes
  /// plus per-vector scale/zero — exact for int8-encoded source blocks,
  /// lossy (one extra quantization) when a source opted into
  /// quantize_migration_payload for fp32 blocks. Either way the
  /// interconnect moves ~4x fewer bytes, which the CostModel prices.
  BlockEncoding payload_encoding = BlockEncoding::kFp32;
  /// Codes, [component][layer][pos][dim]; used when payload_encoding is
  /// kInt8 (payload is then empty).
  std::vector<uint8_t> qpayload;
  /// Per-vector quant params, [component][layer][pos].
  std::vector<float> qscale;
  std::vector<float> qzero;

  bool carries_cache() const { return cached_tokens > 0; }

  /// Transport bytes per cached vector of dimension `dim` under this
  /// image's payload encoding (codes + scale/zero for int8, raw floats for
  /// fp32) — the unit the CostModel's interconnect term prices.
  double BytesPerVector(int32_t dim) const {
    return payload_encoding == BlockEncoding::kInt8
               ? static_cast<double>(dim) + 2.0 * sizeof(float)
               : static_cast<double>(dim) * sizeof(float);
  }
};

/// Outcome of importing a MigrationImage into a destination backend.
struct MigrationImport {
  /// False when the destination could not allocate the cache (it imported
  /// the request cold instead; the request re-prefills there).
  bool cache_restored = false;
  /// Cached positions re-resolved through the destination's PrefixIndex —
  /// already resident there, so they never cross the interconnect.
  int32_t deduped_tokens = 0;
  /// Cached positions whose state actually transferred.
  int32_t copied_tokens = 0;
  /// Accounting bytes of the transfer (the interconnect term's input).
  double bytes = 0.0;
};

}  // namespace aptserve
