#include "cache/block_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace aptserve {

BlockPool::BlockPool(int32_t num_blocks, int32_t block_size)
    : num_blocks_(num_blocks), block_size_(block_size),
      allocated_(num_blocks, false) {
  APT_CHECK_MSG(num_blocks >= 0, "negative pool size");
  APT_CHECK_MSG(block_size > 0, "block size must be positive");
  free_list_.reserve(num_blocks);
  // Push in reverse so blocks are handed out in ascending id order, which
  // makes tests deterministic and debugging output readable.
  for (int32_t i = num_blocks - 1; i >= 0; --i) free_list_.push_back(i);
}

StatusOr<BlockId> BlockPool::Allocate() {
  if (free_list_.empty()) {
    return Status::OutOfMemory("block pool exhausted");
  }
  const BlockId id = free_list_.back();
  free_list_.pop_back();
  allocated_[id] = true;
  ++total_allocations_;
  peak_allocated_ = std::max(peak_allocated_, num_allocated());
  return id;
}

Status BlockPool::AllocateMany(int32_t n, std::vector<BlockId>* out) {
  APT_CHECK(out != nullptr);
  if (n < 0) return Status::InvalidArgument("negative block count");
  if (n > num_free()) {
    return Status::OutOfMemory("pool has " + std::to_string(num_free()) +
                               " free blocks, need " + std::to_string(n));
  }
  out->reserve(out->size() + n);
  for (int32_t i = 0; i < n; ++i) {
    auto r = Allocate();
    APT_CHECK(r.ok());  // Guaranteed by the capacity check above.
    out->push_back(*r);
  }
  return Status::OK();
}

Status BlockPool::Free(BlockId id) {
  if (id < 0 || id >= num_blocks_) {
    return Status::InvalidArgument("block id out of range: " +
                                   std::to_string(id));
  }
  if (!allocated_[id]) {
    return Status::InvalidArgument("double free of block " +
                                   std::to_string(id));
  }
  allocated_[id] = false;
  free_list_.push_back(id);
  return Status::OK();
}

void BlockPool::FreeMany(const std::vector<BlockId>& ids) {
  for (BlockId id : ids) {
    Status s = Free(id);
    APT_CHECK_MSG(s.ok(), s.ToString());
  }
}

}  // namespace aptserve
