#include "cache/block_pool.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace aptserve {

BlockPool::BlockPool(int32_t num_blocks, int32_t block_size)
    : num_blocks_(num_blocks), block_size_(block_size),
      ref_count_(num_blocks, 0) {
  APT_CHECK_MSG(num_blocks >= 0, "negative pool size");
  APT_CHECK_MSG(block_size > 0, "block size must be positive");
  free_list_.reserve(num_blocks);
  // Push in reverse so blocks are handed out in ascending id order, which
  // makes tests deterministic and debugging output readable.
  for (int32_t i = num_blocks - 1; i >= 0; --i) free_list_.push_back(i);
}

StatusOr<BlockId> BlockPool::Allocate() {
  if (free_list_.empty()) {
    return Status::OutOfMemory("block pool exhausted");
  }
  const BlockId id = free_list_.back();
  free_list_.pop_back();
  ref_count_[id] = 1;
  ++total_allocations_;
  peak_allocated_ = std::max(peak_allocated_, num_allocated());
  PublishOccupancy();
  return id;
}

Status BlockPool::AllocateMany(int32_t n, std::vector<BlockId>* out) {
  APT_CHECK(out != nullptr);
  if (n < 0) return Status::InvalidArgument("negative block count");
  if (n > num_free()) {
    return Status::OutOfMemory("pool has " + std::to_string(num_free()) +
                               " free blocks, need " + std::to_string(n));
  }
  out->reserve(out->size() + n);
  for (int32_t i = 0; i < n; ++i) {
    auto r = Allocate();
    APT_CHECK(r.ok());  // Guaranteed by the capacity check above.
    out->push_back(*r);
  }
  return Status::OK();
}

Status BlockPool::Ref(BlockId id) {
  if (id < 0 || id >= num_blocks_) {
    return Status::InvalidArgument("block id out of range: " +
                                   std::to_string(id));
  }
  if (ref_count_[id] == 0) {
    return Status::InvalidArgument("cannot ref free block " +
                                   std::to_string(id));
  }
  ++ref_count_[id];
  return Status::OK();
}

Status BlockPool::Free(BlockId id) {
  if (id < 0 || id >= num_blocks_) {
    return Status::InvalidArgument("block id out of range: " +
                                   std::to_string(id));
  }
  if (ref_count_[id] == 0) {
    return Status::InvalidArgument(
        "double free of block " + std::to_string(id) + " (refcount 0; " +
        std::to_string(num_free()) + "/" + std::to_string(num_blocks_) +
        " blocks on the free list)");
  }
  if (--ref_count_[id] == 0) {
    free_list_.push_back(id);
    PublishOccupancy();
  }
  return Status::OK();
}

void BlockPool::FreeMany(const std::vector<BlockId>& ids) {
  for (BlockId id : ids) {
    Status s = Free(id);
    APT_CHECK_MSG(s.ok(), s.ToString());
  }
}

StatusOr<int32_t> BlockPool::ExportBlocks(const std::vector<BlockId>& ids) {
  int32_t still_resident = 0;
  for (BlockId id : ids) {
    if (id >= 0 && id < num_blocks_ && ref_count_[id] > 1) ++still_resident;
    APT_RETURN_NOT_OK(Free(id));
  }
  total_exported_blocks_ += static_cast<int64_t>(ids.size());
  return still_resident;
}

Status BlockPool::ImportBlocks(int32_t n, std::vector<BlockId>* out) {
  APT_RETURN_NOT_OK(AllocateMany(n, out));
  total_imported_blocks_ += n;
  return Status::OK();
}

int32_t BlockPool::num_shared() const {
  int32_t n = 0;
  for (int32_t c : ref_count_) n += c > 1 ? 1 : 0;
  return n;
}

std::string BlockPool::DebugString() const {
  // Refcount histogram: how many blocks sit at each owner count.
  std::map<int32_t, int32_t> histogram;
  int32_t max_ref = 0;
  for (int32_t c : ref_count_) {
    ++histogram[c];
    max_ref = std::max(max_ref, c);
  }
  std::string out = "BlockPool{blocks=" + std::to_string(num_blocks_) +
                    ", block_size=" + std::to_string(block_size_) +
                    ", free=" + std::to_string(num_free()) +
                    ", allocated=" + std::to_string(num_allocated()) +
                    ", shared=" + std::to_string(num_shared()) +
                    ", max_refcount=" + std::to_string(max_ref) +
                    ", peak=" + std::to_string(peak_allocated_) +
                    ", total_allocations=" +
                    std::to_string(total_allocations_) +
                    ", exported=" + std::to_string(total_exported_blocks_) +
                    ", imported=" + std::to_string(total_imported_blocks_) +
                    ", refcounts={";
  bool first = true;
  for (const auto& [refs, count] : histogram) {
    if (!first) out += ", ";
    first = false;
    out += std::to_string(refs) + "x" + std::to_string(count);
  }
  out += "}}";
  return out;
}

}  // namespace aptserve
