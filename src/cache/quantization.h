// Asymmetric uint8 quantization for int8-encoded cache blocks: one
// scale/zero-point pair per cached vector (block-local metadata — it lives
// in the storage arena's side arrays, never in the pool's accounting).
//
//   encode: q = round((x - zero) / scale), clamped to [0, 255]
//   decode: x' = zero + scale * q
//
// with zero = min(x) and scale = (max(x) - min(x)) / 255, so the round-trip
// error is at most scale/2 per value and constant vectors (scale == 0)
// reproduce exactly. Re-quantizing a dequantized vector reproduces the same
// codes (idempotence, pinned by tests/quantized_cache_test.cc), which makes
// fp32 staging round-trips (swap out/in) stable.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace aptserve {

struct QuantParams {
  float scale = 0.0f;
  float zero = 0.0f;
};

inline QuantParams ComputeQuantParams(const float* x, int32_t n) {
  QuantParams p;
  if (n <= 0) return p;
  float mn = x[0], mx = x[0];
  for (int32_t i = 1; i < n; ++i) {
    mn = std::min(mn, x[i]);
    mx = std::max(mx, x[i]);
  }
  p.zero = mn;
  p.scale = (mx - mn) / 255.0f;
  return p;
}

inline void QuantizeVector(const float* x, int32_t n, const QuantParams& p,
                           uint8_t* out) {
  if (p.scale <= 0.0f) {
    for (int32_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  const float inv = 1.0f / p.scale;
  for (int32_t i = 0; i < n; ++i) {
    const float q = std::nearbyintf((x[i] - p.zero) * inv);
    out[i] = static_cast<uint8_t>(std::min(255.0f, std::max(0.0f, q)));
  }
}

inline void DequantizeVector(const uint8_t* codes, int32_t n,
                             const QuantParams& p, float* out) {
  for (int32_t i = 0; i < n; ++i) {
    out[i] = p.zero + p.scale * static_cast<float>(codes[i]);
  }
}

}  // namespace aptserve
