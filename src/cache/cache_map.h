// CacheMap: per-request mapping from token positions to physical cache
// blocks (paper §4.3 "cache map c_i"). A KV-cached request owns two block
// lists (K and V); a hidden-cached request owns one. Blocks need not be
// contiguous in the pool; positions within one block are contiguous.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "cache/cache_types.h"
#include "common/logging.h"

namespace aptserve {

/// Physical location of one token position's cached vector.
struct BlockSlot {
  BlockId block = kInvalidBlock;
  int32_t offset = 0;  ///< token slot within the block, in [0, block_size).
};

class CacheMap {
 public:
  CacheMap() = default;
  /// `block_size` is this map's *slots per block* — the pool's block size
  /// for fp32 maps, kInt8SlotPack times that for int8 maps (same physical
  /// block bytes, denser token packing).
  CacheMap(CacheType type, int32_t block_size,
           BlockEncoding encoding = BlockEncoding::kFp32)
      : type_(type), block_size_(block_size), encoding_(encoding) {}

  CacheType type() const { return type_; }
  int32_t block_size() const { return block_size_; }
  BlockEncoding encoding() const { return encoding_; }

  /// Number of token positions currently cached.
  int32_t num_tokens() const { return num_tokens_; }

  /// Number of token positions the owned blocks can hold.
  int32_t capacity() const {
    return static_cast<int32_t>(PrimaryBlocks().size()) * block_size_;
  }

  /// Components this map uses: {K, V} for kKV, {Hidden} for kHidden.
  std::vector<CacheComponent> Components() const;

  /// Appends `blocks` as the next blocks of `component`. The caller (the
  /// hybrid cache assigner) owns allocation; the map only records layout.
  void AppendBlocks(CacheComponent component,
                    const std::vector<BlockId>& blocks);

  /// Marks `n` more token positions as filled. Requires capacity.
  void AdvanceTokens(int32_t n);

  /// Location of token position `pos` for `component`.
  BlockSlot Slot(CacheComponent component, int32_t pos) const;

  const std::vector<BlockId>& blocks(CacheComponent component) const {
    return blocks_[static_cast<size_t>(component)];
  }

  /// All blocks across components (for release).
  std::vector<BlockId> AllBlocks() const;

  /// Total number of blocks owned.
  int32_t TotalBlocks() const {
    int32_t n = 0;
    for (const auto& v : blocks_) n += static_cast<int32_t>(v.size());
    return n;
  }

 private:
  /// The component whose block list defines token capacity (K for KV,
  /// Hidden for hidden). K and V lists are kept in lockstep.
  const std::vector<BlockId>& PrimaryBlocks() const {
    return type_ == CacheType::kKV
               ? blocks_[static_cast<size_t>(CacheComponent::kKey)]
               : blocks_[static_cast<size_t>(CacheComponent::kHidden)];
  }

  CacheType type_ = CacheType::kKV;
  int32_t block_size_ = 1;
  BlockEncoding encoding_ = BlockEncoding::kFp32;
  int32_t num_tokens_ = 0;
  std::array<std::vector<BlockId>, 3> blocks_;
};

}  // namespace aptserve
