// BlockPool: the unified block-wise memory pool of paper §4.3. The pool is a
// flat array of fixed-size blocks; each block can hold K, V or hidden
// vectors for `block_size` token positions (across all layers), so KV and
// hidden caches space-share freely with no pre-partitioning.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache_types.h"
#include "common/status.h"

namespace aptserve {

/// Fixed-size block allocator with O(1) allocate/free via a free list.
///
/// The pool only tracks ownership; actual payload storage (for the real
/// inference engine) lives in BlockStorage, keyed by BlockId. The serving
/// simulator uses the pool alone, since it only needs memory accounting.
class BlockPool {
 public:
  /// `num_blocks` blocks, each covering `block_size` token positions.
  BlockPool(int32_t num_blocks, int32_t block_size);

  /// Allocates one block; OutOfMemory when the pool is exhausted.
  StatusOr<BlockId> Allocate();

  /// Allocates `n` blocks all-or-nothing; on failure the pool is unchanged.
  Status AllocateMany(int32_t n, std::vector<BlockId>* out);

  /// Returns a block to the free list. InvalidArgument on double free or an
  /// out-of-range id.
  Status Free(BlockId id);

  /// Frees every block in `ids` (asserts each free succeeds).
  void FreeMany(const std::vector<BlockId>& ids);

  int32_t num_blocks() const { return num_blocks_; }
  int32_t block_size() const { return block_size_; }
  int32_t num_free() const { return static_cast<int32_t>(free_list_.size()); }
  int32_t num_allocated() const { return num_blocks_ - num_free(); }

  /// Fraction of blocks currently allocated, in [0, 1].
  double utilization() const {
    return num_blocks_ == 0
               ? 0.0
               : static_cast<double>(num_allocated()) / num_blocks_;
  }

  /// High-water mark of allocated blocks since construction.
  int32_t peak_allocated() const { return peak_allocated_; }
  int64_t total_allocations() const { return total_allocations_; }

  bool IsAllocated(BlockId id) const {
    return id >= 0 && id < num_blocks_ && allocated_[id];
  }

 private:
  int32_t num_blocks_;
  int32_t block_size_;
  std::vector<BlockId> free_list_;
  std::vector<bool> allocated_;
  int32_t peak_allocated_ = 0;
  int64_t total_allocations_ = 0;
};

}  // namespace aptserve
