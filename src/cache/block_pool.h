// BlockPool: the unified block-wise memory pool of paper §4.3. The pool is a
// flat array of fixed-size blocks; each block can hold K, V or hidden
// vectors for `block_size` token positions (across all layers), so KV and
// hidden caches space-share freely with no pre-partitioning.
//
// Blocks are reference-counted so the prefix-sharing layer (src/prefix/)
// can let several requests — and the prefix index itself — hold the same
// physical block. Allocate() hands out a block with one reference; Ref()
// adds owners; Free() drops one reference and only returns the block to
// the free list when the count reaches zero. Code that never calls Ref()
// sees the exact one-owner allocate/free semantics the pool always had.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache_types.h"
#include "common/status.h"
#include "obs/metrics_registry.h"

namespace aptserve {

/// Fixed-size block allocator with O(1) allocate/free via a free list.
///
/// The pool only tracks ownership; actual payload storage (for the real
/// inference engine) lives in BlockStorage, keyed by BlockId. The serving
/// simulator uses the pool alone, since it only needs memory accounting.
class BlockPool {
 public:
  /// `num_blocks` blocks, each covering `block_size` token positions.
  BlockPool(int32_t num_blocks, int32_t block_size);

  /// Allocates one block (reference count 1); OutOfMemory when the pool is
  /// exhausted.
  StatusOr<BlockId> Allocate();

  /// Allocates `n` blocks all-or-nothing; on failure the pool is unchanged.
  Status AllocateMany(int32_t n, std::vector<BlockId>* out);

  /// Adds one reference to an allocated block (prefix sharing: the block
  /// gains another owner). InvalidArgument for a free or out-of-range id.
  Status Ref(BlockId id);

  /// Drops one reference; the block returns to the free list when the last
  /// owner releases it. InvalidArgument on double free (a free block) or an
  /// out-of-range id.
  Status Free(BlockId id);

  /// Frees every block in `ids` (asserts each free succeeds).
  void FreeMany(const std::vector<BlockId>& ids);

  /// Releases the blocks of a request migrating *out* of this pool: drops
  /// one reference per id, like FreeMany, but tracks the export in the
  /// lifetime counters and returns how many blocks stayed resident because
  /// another owner (the prefix index, a sharing request) still holds them.
  /// Only the remainder physically left the pool. InvalidArgument if any
  /// id is free or out of range (the pool is modified up to that id).
  StatusOr<int32_t> ExportBlocks(const std::vector<BlockId>& ids);

  /// Allocates `n` blocks to receive a migrating request's cache
  /// (all-or-nothing; on failure the pool is unchanged). Identical
  /// allocation behavior to AllocateMany, tracked separately so migration
  /// traffic shows up in DebugString's lifetime totals.
  Status ImportBlocks(int32_t n, std::vector<BlockId>* out);

  int64_t total_exported_blocks() const { return total_exported_blocks_; }
  int64_t total_imported_blocks() const { return total_imported_blocks_; }

  int32_t num_blocks() const { return num_blocks_; }
  int32_t block_size() const { return block_size_; }
  int32_t num_free() const { return static_cast<int32_t>(free_list_.size()); }
  int32_t num_allocated() const { return num_blocks_ - num_free(); }

  /// Fraction of blocks currently allocated, in [0, 1].
  double utilization() const {
    return num_blocks_ == 0
               ? 0.0
               : static_cast<double>(num_allocated()) / num_blocks_;
  }

  /// High-water mark of allocated blocks since construction.
  int32_t peak_allocated() const { return peak_allocated_; }
  int64_t total_allocations() const { return total_allocations_; }

  bool IsAllocated(BlockId id) const {
    return id >= 0 && id < num_blocks_ && ref_count_[id] > 0;
  }

  /// Current owner count of a block (0 = free). Out-of-range ids return 0.
  int32_t RefCount(BlockId id) const {
    return id >= 0 && id < num_blocks_ ? ref_count_[id] : 0;
  }

  /// Blocks currently held by more than one owner (prefix-shared blocks).
  int32_t num_shared() const;

  /// One-line dump of the pool's sharing invariants: free-list size,
  /// allocated/shared counts, the refcount histogram, and lifetime totals.
  std::string DebugString() const;

  /// Attaches live occupancy gauges (optional, borrowed; null detaches).
  /// `occupancy` tracks the allocated-block count after every mutation and
  /// `peak` its high-water mark. Purely observational.
  void AttachMetrics(obs::Gauge* occupancy, obs::Gauge* peak) {
    obs_occupancy_ = occupancy;
    obs_peak_ = peak;
    PublishOccupancy();
  }

 private:
  void PublishOccupancy() {
    if (obs_occupancy_ != nullptr) obs_occupancy_->Set(num_allocated());
    if (obs_peak_ != nullptr) obs_peak_->SetMax(num_allocated());
  }

  int32_t num_blocks_;
  int32_t block_size_;
  std::vector<BlockId> free_list_;
  /// Owners per block; 0 = on the free list.
  std::vector<int32_t> ref_count_;
  int32_t peak_allocated_ = 0;
  int64_t total_allocations_ = 0;
  int64_t total_exported_blocks_ = 0;
  int64_t total_imported_blocks_ = 0;
  obs::Gauge* obs_occupancy_ = nullptr;
  obs::Gauge* obs_peak_ = nullptr;
};

}  // namespace aptserve
