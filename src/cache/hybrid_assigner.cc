#include "cache/hybrid_assigner.h"

#include "common/logging.h"

namespace aptserve {

namespace {
int32_t CeilDiv(int32_t a, int32_t b) { return (a + b - 1) / b; }
}  // namespace

HybridCacheAssigner::HybridCacheAssigner(BlockPool* pool) : pool_(pool) {
  APT_CHECK(pool != nullptr);
}

int32_t HybridCacheAssigner::BlocksNeeded(CacheType type,
                                          int32_t num_tokens) const {
  if (num_tokens <= 0) return 0;
  const int32_t per_component = CeilDiv(num_tokens, SlotsPerBlockFor(type));
  return type == CacheType::kKV ? 2 * per_component : per_component;
}

int32_t HybridCacheAssigner::BlocksToGrow(RequestId id,
                                          int32_t num_tokens) const {
  auto it = maps_.find(id);
  if (it == maps_.end()) return BlocksNeeded(CacheType::kKV, num_tokens);
  const CacheMap& map = it->second;
  const int32_t have = map.capacity();
  if (num_tokens <= have) return 0;
  // Grow at the map's own density (it may predate a policy change).
  const int32_t extra = CeilDiv(num_tokens - have, map.block_size());
  return map.type() == CacheType::kKV ? 2 * extra : extra;
}

Status HybridCacheAssigner::AllocateWithReclaim(int32_t n,
                                                std::vector<BlockId>* out) {
  const auto allocate = [&] {
    return importing_ ? pool_->ImportBlocks(n, out)
                      : pool_->AllocateMany(n, out);
  };
  Status st = allocate();
  if (st.IsOutOfMemory() && reclaimer_) {
    // Ask the prefix index to evict unreferenced cached prefixes, then
    // retry once. The reclaimer may free fewer than asked (pinned leaves
    // are skipped); the retry surfaces the remaining deficit as OOM.
    reclaimer_(n - pool_->num_free());
    st = allocate();
  }
  return st;
}

Status HybridCacheAssigner::AllocateFor(CacheMap* map,
                                        int32_t new_blocks_per_component) {
  if (new_blocks_per_component <= 0) return Status::OK();
  const auto components = map->Components();
  const int32_t total =
      new_blocks_per_component * static_cast<int32_t>(components.size());
  std::vector<BlockId> blocks;
  APT_RETURN_NOT_OK(AllocateWithReclaim(total, &blocks));
  size_t cursor = 0;
  for (CacheComponent c : components) {
    std::vector<BlockId> slice(blocks.begin() + cursor,
                               blocks.begin() + cursor +
                                   new_blocks_per_component);
    map->AppendBlocks(c, slice);
    cursor += new_blocks_per_component;
  }
  return Status::OK();
}

Status HybridCacheAssigner::CreateFilled(RequestId id, CacheType type,
                                         int32_t num_tokens) {
  if (num_tokens <= 0) {
    return Status::InvalidArgument("cache must hold at least one token");
  }
  if (Has(id)) {
    return Status::AlreadyExists("request " + std::to_string(id) +
                                 " already has a cache");
  }
  CacheMap map(type, SlotsPerBlockFor(type), EncodingFor(type));
  const int32_t per_component = CeilDiv(num_tokens, map.block_size());
  APT_RETURN_NOT_OK(AllocateFor(&map, per_component));
  map.AdvanceTokens(num_tokens);
  maps_.emplace(id, std::move(map));
  return Status::OK();
}

StatusOr<CowSeed> HybridCacheAssigner::CreateSeeded(RequestId id,
                                                    const PrefixMatch& match) {
  if (!match.hit()) {
    return Status::InvalidArgument("cannot seed from an empty match");
  }
  if (EncodingFor(CacheType::kKV) != BlockEncoding::kFp32) {
    // Shared prefix blocks must be exact across adopters; the match sites
    // (engine prepare, analytic backend, migration import) gate themselves
    // off under an int8 KV tier, so this is a misuse guard.
    return Status::FailedPrecondition(
        "prefix seeding requires an fp32 KV tier");
  }
  if (Has(id)) {
    return Status::AlreadyExists("request " + std::to_string(id) +
                                 " already has a cache");
  }
  const int32_t full = static_cast<int32_t>(match.k_blocks.size());
  APT_CHECK(static_cast<int32_t>(match.v_blocks.size()) == full);
  APT_CHECK(match.tokens == full * pool_->block_size() + match.cow_tokens);

  // 1. Pin everything the match refers to before any allocation below can
  // run the reclaimer: the full blocks become the request's owned
  // references; the COW sources are pinned transiently until the caller's
  // ReleaseCowSource (so eviction cannot free them before the payload
  // copy happens).
  for (BlockId b : match.k_blocks) APT_CHECK(pool_->Ref(b).ok());
  for (BlockId b : match.v_blocks) APT_CHECK(pool_->Ref(b).ok());
  CowSeed seed;
  if (match.cow_tokens > 0) {
    APT_CHECK(pool_->Ref(match.cow_src_k).ok());
    APT_CHECK(pool_->Ref(match.cow_src_v).ok());
    std::vector<BlockId> tail;
    Status st = AllocateWithReclaim(2, &tail);
    if (!st.ok()) {
      // Unwind: the pool must end exactly as it started.
      APT_CHECK(pool_->Free(match.cow_src_k).ok());
      APT_CHECK(pool_->Free(match.cow_src_v).ok());
      for (BlockId b : match.k_blocks) APT_CHECK(pool_->Free(b).ok());
      for (BlockId b : match.v_blocks) APT_CHECK(pool_->Free(b).ok());
      return st;
    }
    seed.src_k = match.cow_src_k;
    seed.src_v = match.cow_src_v;
    seed.dst_k = tail[0];
    seed.dst_v = tail[1];
    seed.tokens = match.cow_tokens;
  }

  // 2. Build the map: shared full blocks, then the private COW tail.
  CacheMap map(CacheType::kKV, pool_->block_size(), BlockEncoding::kFp32);
  std::vector<BlockId> k_list = match.k_blocks;
  std::vector<BlockId> v_list = match.v_blocks;
  if (match.cow_tokens > 0) {
    k_list.push_back(seed.dst_k);
    v_list.push_back(seed.dst_v);
  }
  map.AppendBlocks(CacheComponent::kKey, k_list);
  map.AppendBlocks(CacheComponent::kValue, v_list);
  map.AdvanceTokens(match.tokens);
  maps_.emplace(id, std::move(map));
  ++num_seeded_;
  return seed;
}

void HybridCacheAssigner::ReleaseCowSource(const CowSeed& seed) {
  if (seed.tokens <= 0) return;
  APT_CHECK(pool_->Free(seed.src_k).ok());
  APT_CHECK(pool_->Free(seed.src_v).ok());
}

Status HybridCacheAssigner::Append(RequestId id, int32_t extra_tokens) {
  auto it = maps_.find(id);
  if (it == maps_.end()) {
    return Status::NotFound("request " + std::to_string(id) + " has no cache");
  }
  if (extra_tokens < 0) return Status::InvalidArgument("negative growth");
  CacheMap& map = it->second;
  const int32_t target = map.num_tokens() + extra_tokens;
  if (target > map.capacity()) {
    const int32_t extra_blocks =
        CeilDiv(target - map.capacity(), map.block_size());
    APT_RETURN_NOT_OK(AllocateFor(&map, extra_blocks));
  }
  map.AdvanceTokens(extra_tokens);
  return Status::OK();
}

Status HybridCacheAssigner::Release(RequestId id) {
  auto it = maps_.find(id);
  if (it == maps_.end()) {
    return Status::NotFound("request " + std::to_string(id) + " has no cache");
  }
  pool_->FreeMany(it->second.AllBlocks());
  maps_.erase(it);
  return Status::OK();
}

StatusOr<RequestCacheImage> HybridCacheAssigner::SerializeRequestCache(
    RequestId id) const {
  auto it = maps_.find(id);
  if (it == maps_.end()) {
    return Status::NotFound("request " + std::to_string(id) + " has no cache");
  }
  RequestCacheImage image;
  image.type = it->second.type();
  image.num_tokens = it->second.num_tokens();
  return image;
}

Status HybridCacheAssigner::ReleaseExported(RequestId id) {
  auto it = maps_.find(id);
  if (it == maps_.end()) {
    return Status::NotFound("request " + std::to_string(id) + " has no cache");
  }
  APT_RETURN_NOT_OK(pool_->ExportBlocks(it->second.AllBlocks()).status());
  maps_.erase(it);
  return Status::OK();
}

StatusOr<CowSeed> HybridCacheAssigner::RestoreRequestCache(
    RequestId id, const RequestCacheImage& image, const PrefixMatch& match) {
  if (image.num_tokens <= 0) {
    return Status::InvalidArgument("cannot restore an empty cache image");
  }
  if (match.hit() && (image.type != CacheType::kKV ||
                      match.tokens > image.num_tokens)) {
    return Status::InvalidArgument(
        "prefix match incompatible with the cache image");
  }
  importing_ = true;
  StatusOr<CowSeed> result = [&]() -> StatusOr<CowSeed> {
    if (!match.hit()) {
      APT_RETURN_NOT_OK(CreateFilled(id, image.type, image.num_tokens));
      return CowSeed{};
    }
    auto seeded = CreateSeeded(id, match);
    if (!seeded.ok()) return seeded.status();
    const int32_t remainder = image.num_tokens - match.tokens;
    if (remainder > 0) {
      Status st = Append(id, remainder);
      if (!st.ok()) {
        // Unwind to the pre-call pool state; the transient COW pin must
        // drop too (the caller never sees the seed).
        ReleaseCowSource(*seeded);
        APT_CHECK(Release(id).ok());
        return st;
      }
    }
    return seeded;
  }();
  importing_ = false;
  return result;
}

Status HybridCacheAssigner::DiscardForConversion(RequestId id) {
  APT_RETURN_NOT_OK(Release(id));
  ++num_conversions_;
  return Status::OK();
}

const CacheMap* HybridCacheAssigner::Find(RequestId id) const {
  auto it = maps_.find(id);
  return it == maps_.end() ? nullptr : &it->second;
}

CacheMap* HybridCacheAssigner::FindMutable(RequestId id) {
  auto it = maps_.find(id);
  return it == maps_.end() ? nullptr : &it->second;
}

}  // namespace aptserve
