#include "cache/swap_space.h"

namespace aptserve {

Status SwapSpace::SwapOut(RequestId id, CacheType type, int32_t tokens,
                          int32_t blocks) {
  if (blocks <= 0 || tokens <= 0) {
    return Status::InvalidArgument("swap entry must hold data");
  }
  if (entries_.count(id)) {
    return Status::AlreadyExists("request " + std::to_string(id) +
                                 " already swapped");
  }
  if (used_ + blocks > capacity_) {
    return Status::OutOfMemory("swap space full: " + std::to_string(used_) +
                               "/" + std::to_string(capacity_) + " blocks");
  }
  entries_[id] = Entry{type, tokens, blocks};
  used_ += blocks;
  ++total_swap_outs_;
  return Status::OK();
}

StatusOr<SwapSpace::Entry> SwapSpace::SwapIn(RequestId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return Status::NotFound("request " + std::to_string(id) +
                            " is not swapped");
  }
  Entry e = it->second;
  used_ -= e.blocks;
  entries_.erase(it);
  ++total_swap_ins_;
  return e;
}

Status SwapSpace::Drop(RequestId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return Status::NotFound("request " + std::to_string(id) +
                            " is not swapped");
  }
  used_ -= it->second.blocks;
  entries_.erase(it);
  return Status::OK();
}

const SwapSpace::Entry* SwapSpace::Find(RequestId id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

}  // namespace aptserve
