// SwapSpace: host-memory staging area for preempted requests' caches.
// vLLM offers two preemption modes: *recompute* (discard the cache and
// re-prefill later — the mode the paper's experiments use) and *swap*
// (copy the cache to CPU memory over PCIe and copy it back on resume).
// This models the swap side: capacity accounting in blocks plus per-request
// swapped-cache bookkeeping. Payload movement is costed by the simulator's
// cost model (PCIe bandwidth); the real engine path keeps payloads in
// BlockStorage, so only accounting lives here.
#pragma once

#include <unordered_map>

#include "cache/cache_types.h"
#include "common/status.h"
#include "common/types.h"

namespace aptserve {

class SwapSpace {
 public:
  /// `capacity_blocks` of host memory, in units of GPU cache blocks.
  explicit SwapSpace(int32_t capacity_blocks)
      : capacity_(capacity_blocks) {}

  struct Entry {
    CacheType type = CacheType::kKV;
    int32_t tokens = 0;
    int32_t blocks = 0;
  };

  /// Records request `id`'s cache (`blocks` blocks holding `tokens` tokens
  /// of `type`) as swapped out. OutOfMemory when host capacity is
  /// exhausted; AlreadyExists if the request is already swapped.
  Status SwapOut(RequestId id, CacheType type, int32_t tokens,
                 int32_t blocks);

  /// Removes and returns the entry for `id` (the caller re-allocates GPU
  /// blocks and restores the cache). NotFound when not swapped.
  StatusOr<Entry> SwapIn(RequestId id);

  /// Drops a swapped entry without restoring it (request aborted, or a
  /// cache-type conversion invalidated the swapped copy).
  Status Drop(RequestId id);

  bool Contains(RequestId id) const { return entries_.count(id) > 0; }
  const Entry* Find(RequestId id) const;
  int32_t used_blocks() const { return used_; }
  int32_t capacity_blocks() const { return capacity_; }
  int32_t free_blocks() const { return capacity_ - used_; }
  int64_t total_swap_outs() const { return total_swap_outs_; }
  int64_t total_swap_ins() const { return total_swap_ins_; }

 private:
  int32_t capacity_;
  int32_t used_ = 0;
  std::unordered_map<RequestId, Entry> entries_;
  int64_t total_swap_outs_ = 0;
  int64_t total_swap_ins_ = 0;
};

}  // namespace aptserve
