// Core vocabulary of the hybrid cache scheme (paper §3.1 / §4.3).
#pragma once

#include <cstdint>

namespace aptserve {

/// Which reusable computation result is cached for a request.
///  - kKV: key and value vectors per layer (2 vectors per token) — O(1)
///    extra work per decode step, 2x memory.
///  - kHidden: layer-input hidden state vectors (1 vector per token) — K/V
///    are re-projected on the fly each decode step (O(n) extra linear work),
///    half the memory.
enum class CacheType : uint8_t { kKV = 0, kHidden = 1 };

inline const char* CacheTypeName(CacheType t) {
  return t == CacheType::kKV ? "KV" : "Hidden";
}

/// The vector species stored in one cache block. In the unified memory pool
/// (paper §4.3) every block holds exactly one component for a fixed number
/// of token positions across all layers; K, V and hidden vectors share the
/// same per-token footprint, so any block can hold any component.
enum class CacheComponent : uint8_t { kKey = 0, kValue = 1, kHidden = 2 };

/// Index of a fixed-size block in the unified pool.
using BlockId = int32_t;
inline constexpr BlockId kInvalidBlock = -1;

/// Physical payload encoding of a cache block. The pool's blocks are
/// byte-homogeneous (one fp32 block's worth of arena bytes each); the
/// encoding decides how many token slots those bytes hold:
///  - kFp32: `block_size` slots of dim fp32 values — exact, the default.
///  - kInt8: `kInt8SlotPack * block_size` slots of dim uint8 codes with a
///    per-vector scale/zero-point (asymmetric, x ~ zero + scale*q) — ~4x
///    density, bounded error of scale/2 per value on write, dequantized on
///    read so the compute contract is unchanged.
enum class BlockEncoding : uint8_t { kFp32 = 0, kInt8 = 1 };

inline const char* BlockEncodingName(BlockEncoding e) {
  return e == BlockEncoding::kFp32 ? "fp32" : "int8";
}

/// Token slots an int8 block packs into the arena bytes of one fp32 block
/// (sizeof(float) codes per value byte).
inline constexpr int32_t kInt8SlotPack = 4;

/// Token slots one physical pool block holds under `encoding`, given the
/// pool's fp32 block size.
inline int32_t SlotsPerBlock(BlockEncoding encoding,
                             int32_t pool_block_size) {
  return encoding == BlockEncoding::kInt8 ? kInt8SlotPack * pool_block_size
                                          : pool_block_size;
}

/// Per-tier encoding selection for the hybrid assigner (the third cache
/// representation next to the paper's KV-vs-hidden split): each tier's
/// blocks can be held fp32 or int8 independently. Prefix sharing requires
/// fp32 KV blocks (shared block content must be exact across adopters), so
/// match/insert sites gate themselves off when `kv` is kInt8.
struct CacheEncodingPolicy {
  BlockEncoding kv = BlockEncoding::kFp32;
  BlockEncoding hidden = BlockEncoding::kFp32;
  /// Quantize fp32 migration payloads in transit (lossy transport that
  /// shrinks interconnect bytes ~4x; int8 blocks always travel as raw
  /// codes, which is exact).
  bool quantize_migration_payload = false;

  BlockEncoding For(CacheType t) const {
    return t == CacheType::kKV ? kv : hidden;
  }
  bool any_int8() const {
    return kv == BlockEncoding::kInt8 || hidden == BlockEncoding::kInt8;
  }
};

}  // namespace aptserve
