// Core vocabulary of the hybrid cache scheme (paper §3.1 / §4.3).
#pragma once

#include <cstdint>

namespace aptserve {

/// Which reusable computation result is cached for a request.
///  - kKV: key and value vectors per layer (2 vectors per token) — O(1)
///    extra work per decode step, 2x memory.
///  - kHidden: layer-input hidden state vectors (1 vector per token) — K/V
///    are re-projected on the fly each decode step (O(n) extra linear work),
///    half the memory.
enum class CacheType : uint8_t { kKV = 0, kHidden = 1 };

inline const char* CacheTypeName(CacheType t) {
  return t == CacheType::kKV ? "KV" : "Hidden";
}

/// The vector species stored in one cache block. In the unified memory pool
/// (paper §4.3) every block holds exactly one component for a fixed number
/// of token positions across all layers; K, V and hidden vectors share the
/// same per-token footprint, so any block can hold any component.
enum class CacheComponent : uint8_t { kKey = 0, kValue = 1, kHidden = 2 };

/// Index of a fixed-size block in the unified pool.
using BlockId = int32_t;
inline constexpr BlockId kInvalidBlock = -1;

}  // namespace aptserve
