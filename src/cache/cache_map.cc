#include "cache/cache_map.h"

namespace aptserve {

std::vector<CacheComponent> CacheMap::Components() const {
  if (type_ == CacheType::kKV) {
    return {CacheComponent::kKey, CacheComponent::kValue};
  }
  return {CacheComponent::kHidden};
}

void CacheMap::AppendBlocks(CacheComponent component,
                            const std::vector<BlockId>& blocks) {
  auto& list = blocks_[static_cast<size_t>(component)];
  list.insert(list.end(), blocks.begin(), blocks.end());
}

void CacheMap::AdvanceTokens(int32_t n) {
  APT_CHECK_MSG(num_tokens_ + n <= capacity(),
                "advancing past allocated cache capacity");
  if (type_ == CacheType::kKV) {
    // K and V block lists must stay in lockstep.
    APT_CHECK(blocks_[static_cast<size_t>(CacheComponent::kKey)].size() ==
              blocks_[static_cast<size_t>(CacheComponent::kValue)].size());
  }
  num_tokens_ += n;
}

BlockSlot CacheMap::Slot(CacheComponent component, int32_t pos) const {
  APT_CHECK_MSG(pos >= 0 && pos < num_tokens_, "token position out of range");
  const auto& list = blocks_[static_cast<size_t>(component)];
  const int32_t idx = pos / block_size_;
  APT_CHECK_MSG(idx < static_cast<int32_t>(list.size()),
                "cache map missing block for position");
  return BlockSlot{list[idx], pos % block_size_};
}

std::vector<BlockId> CacheMap::AllBlocks() const {
  std::vector<BlockId> out;
  out.reserve(TotalBlocks());
  for (const auto& v : blocks_) out.insert(out.end(), v.begin(), v.end());
  return out;
}

}  // namespace aptserve
