// CellRouter: the hierarchical front tier of a two-level (fleet-of-fleets)
// topology. The fleet's instances are partitioned into *cells*; the front
// tier consistent-hashes each request's leading prefix block chunk(s) onto
// a cell, and the existing Router then routes within that cell's members
// unchanged. The front tier keeps only a hash ring plus per-cell load
// summaries — no radix mirrors — so its per-decision cost is O(1) in both
// the instance count and the cell count:
//   - cell choice: one ring lookup (binary search over virtual nodes),
//   - imbalance check / fallback: one read of the least-loaded live cell,
//     maintained as an ordered (busy_until, cell) set updated on commit.
// Requests with no usable prefix chunk (no token ids, or a prompt shorter
// than one full block) fall back to the least-loaded cell, and a hashed
// cell whose outstanding work exceeds the fleet minimum by more than
// `cell_max_imbalance_s` also falls back — mirroring the flat
// kPrefixAffinity load-imbalance semantics one level up.
//
// Determinism: RouteOne/Commit are called on the fleet controller's serial
// routing path only, use no wall clock or RNG, and break ties by lowest
// cell id, so hierarchical fleets stay bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "workload/request.h"

namespace aptserve {

struct CellRouterConfig {
  /// 1 = flat fleet (the front tier is bypassed entirely; bit-identical
  /// to a fleet built before cells existed).
  int32_t num_cells = 1;
  /// Virtual nodes per cell on the consistent-hash ring. More replicas
  /// smooth the keyspace share per cell; 64 keeps the ring a few KB at
  /// 128 cells while bounding share skew to a few percent.
  int32_t ring_replicas = 64;
  /// Leading full block chunks hashed into the ring key. One chunk pins a
  /// conversation's turns (same system prompt + opening) to one cell;
  /// more chunks spread distinct conversations of one template wider.
  int32_t hash_chunks = 1;
  /// Chunk granularity in tokens; 0 inherits the intra-cell router's
  /// block_size so cell keys align with the affinity mirrors.
  int32_t block_size = 0;
  /// Load-imbalance cap (seconds of per-instance-normalized outstanding
  /// work): the hashed cell is used only while its summary exceeds the
  /// minimum live cell by at most this much, else least-loaded wins.
  double cell_max_imbalance_s = 10.0;
  /// Ring/key hash seed (splitmix64-style mixing).
  uint64_t hash_seed = 0x9e3779b97f4a7c15ull;
};

/// Front-tier decision counters; deterministic, merged into RouteCostStats
/// by the fleet controller. hash_routed + fallback_routed == decisions.
struct CellRouteStats {
  int64_t decisions = 0;
  int64_t hash_routed = 0;
  int64_t fallback_routed = 0;
  /// Cell-summary examinations (ring lookup + min-load reads); the
  /// hierarchical analogue of RouteCostStats::instance_probes.
  int64_t cell_probes = 0;
};

class CellRouter {
 public:
  /// `block_size_fallback` resolves config.block_size == 0 (the intra-cell
  /// router's block size). All cells start live.
  CellRouter(const CellRouterConfig& config, int32_t block_size_fallback);

  /// Picks the serving cell for `req` at time `now` among live cells.
  /// Pure choice — commit separately so rejected requests leave no trace.
  int32_t RouteOne(const Request& req, double now);

  /// Commits an admitted request's predicted service time to `cell`'s
  /// load summary. `cell_width` (live instances in the cell) normalizes
  /// the summary to per-instance seconds so the imbalance cap is
  /// comparable to the intra-cell affinity_max_imbalance_s scale.
  void Commit(int32_t cell, double now, double service_seconds,
              int32_t cell_width);

  /// Marks a cell (un)routable; at least one cell must stay live. An
  /// elastic fleet retires a cell when its last instance drains.
  void SetLive(int32_t cell, bool live);

  /// Per-instance-normalized outstanding work of `cell` at `now`.
  double Outstanding(int32_t cell, double now) const;

  /// The consistent-hash key for `req`'s leading chunks, or 0 when the
  /// request has no usable full chunk (the fallback path). Exposed so
  /// tests can pin ring placement.
  uint64_t PrefixKey(const Request& req) const;
  /// The cell the ring maps `key` to (ignores liveness and imbalance).
  int32_t RingCell(uint64_t key) const;

  int32_t num_cells() const { return config_.num_cells; }
  const CellRouterConfig& config() const { return config_; }
  const CellRouteStats& stats() const { return stats_; }

 private:
  CellRouterConfig config_;
  int32_t block_size_;
  /// (ring point, cell), sorted by point; lookup = upper_bound + wrap.
  std::vector<std::pair<uint64_t, int32_t>> ring_;
  std::vector<double> busy_until_;
  std::vector<uint8_t> live_;
  /// (busy_until, cell) of live cells; begin() is the least-loaded live
  /// cell with deterministic lowest-id tie-break.
  std::set<std::pair<double, int32_t>> loads_;
  CellRouteStats stats_;
};

}  // namespace aptserve
