#include "serve/serving_loop.h"

#include <algorithm>
#include <string>

#include "common/logging.h"

namespace aptserve {

ServingLoop::ServingLoop(ExecutionBackend* backend,
                         const ServingLoopConfig& config)
    : backend_(backend), config_(config) {
  APT_CHECK(backend != nullptr);
}

StatusOr<ServingLoopResult> ServingLoop::Run(const std::vector<Request>& trace,
                                             Scheduler* scheduler,
                                             const SloSpec& slo) {
  APT_CHECK(scheduler != nullptr);
  MetricsCollector metrics;
  const bool swap_mode = config_.preemption_mode == PreemptionMode::kSwap;

  // Requests in arrival order (the trace builder guarantees sorted output;
  // re-sort defensively for hand-built traces).
  std::vector<SimRequest> reqs;
  reqs.reserve(trace.size());
  for (const Request& r : trace) {
    SimRequest sr;
    sr.spec = r;
    if (r.prompt_len <= 0 || r.output_len <= 0) {
      return Status::InvalidArgument("request lengths must be positive");
    }
    reqs.push_back(sr);
    metrics.RegisterRequest(r);
  }
  std::sort(reqs.begin(), reqs.end(),
            [](const SimRequest& a, const SimRequest& b) {
              return a.spec.arrival < b.spec.arrival;
            });
  APT_RETURN_NOT_OK(backend_->Prepare(reqs));
  std::unordered_map<RequestId, size_t> index;
  for (size_t i = 0; i < reqs.size(); ++i) index[reqs[i].spec.id] = i;

  ServingLoopResult result;

  TimePoint now = 0.0;
  size_t next_arrival = 0;  // first request not yet arrived
  size_t finished = 0;
  int32_t consecutive_idle = 0;

  for (int64_t iter = 0; iter < config_.max_iterations; ++iter) {
    if (finished == reqs.size()) break;
    // 1. Admit arrivals.
    while (next_arrival < reqs.size() &&
           reqs[next_arrival].spec.arrival <= now) {
      ++next_arrival;
    }

    // 2. Build queues.
    SchedulerInput input;
    input.now = now;
    input.pool = backend_->pool();
    input.assigner = backend_->assigner();
    input.cost_model = backend_->cost_model();
    for (size_t i = 0; i < next_arrival; ++i) {
      SimRequest& sr = reqs[i];
      if (sr.phase == RequestPhase::kWaiting) {
        input.waiting.push_back(&sr);
      } else if (sr.phase == RequestPhase::kRunning) {
        input.running.push_back(&sr);
      }
    }
    if (input.waiting.empty() && input.running.empty()) {
      if (next_arrival < reqs.size()) {
        now = std::max(now, reqs[next_arrival].spec.arrival);
        continue;
      }
      break;  // all done
    }

    // 3. Plan.
    BatchPlan plan = scheduler->PlanIteration(input);

    // Backends start their iteration clock here so that preemption work —
    // in particular real swap-out payload copies — is charged to the
    // iteration that caused it.
    backend_->BeginIteration();

    // 4a. Preemptions / conversions / swap-outs.
    for (const PreemptionItem& p : plan.preempt) {
      auto it = index.find(p.id);
      if (it == index.end()) {
        return Status::Internal("scheduler preempted unknown request");
      }
      SimRequest& sr = reqs[it->second];
      // Preemption targets are running requests or waiting requests that
      // hold a partial (chunked-prefill) cache; both free their blocks and
      // restart their prefill pass later.
      const bool preemptible =
          backend_->assigner()->Has(p.id) &&
          (sr.phase == RequestPhase::kRunning ||
           sr.phase == RequestPhase::kWaiting);
      if (!preemptible) {
        return Status::Internal(
            "scheduler preempted a request holding no cache");
      }
      const bool is_conversion = p.resume_cache_type != sr.cache_type;
      if (is_conversion) {
        // Type-conversion fallback: even in swap mode a conversion discards
        // the cache — a swapped copy of the old type would be useless.
        APT_RETURN_NOT_OK(backend_->Convert(sr, p.resume_cache_type));
        ++sr.conversions;
        metrics.OnConversion();
      } else if (swap_mode && sr.phase == RequestPhase::kRunning) {
        APT_ASSIGN_OR_RETURN(const bool swapped_out,
                             backend_->TrySwapOut(sr));
        if (swapped_out) {
          // Swap-based preemption: the cache moves to host memory; the
          // request keeps its logical progress and resumes via a swap-in
          // instead of a recompute prefill.
          metrics.OnPreemption();
          ++sr.preemptions;
          sr.phase = RequestPhase::kWaiting;
          sr.swapped = true;
          sr.prefill_progress = sr.cached_tokens;
          continue;
        }
        // Full-swap-space fallback: recompute preemption.
        APT_RETURN_NOT_OK(backend_->Release(sr));
        metrics.OnPreemption();
      } else {
        APT_RETURN_NOT_OK(backend_->Release(sr));
        metrics.OnPreemption();
      }
      ++sr.preemptions;
      sr.phase = RequestPhase::kWaiting;
      sr.cache_type = p.resume_cache_type;
      sr.cached_tokens = 0;
      sr.prefill_progress = 0;
    }

    // 4b. Execute scheduled items with memory allocation.
    enum class StepKind { kDecode, kPrefill, kSwapIn };
    struct Applied {
      SimRequest* req;
      StepKind kind;
      int32_t chunk = 0;  // prefill only
      bool token = false;
    };
    std::vector<Applied> applied;
    bool hit_memory_wall = false;
    int32_t accepted = 0;
    for (const ScheduledItem& item : plan.items) {
      if (accepted >= config_.max_batch_size) break;
      auto it = index.find(item.id);
      if (it == index.end()) {
        return Status::Internal("scheduler scheduled unknown request");
      }
      SimRequest& sr = reqs[it->second];
      if (sr.phase == RequestPhase::kFinished) {
        return Status::Internal("scheduler scheduled a finished request");
      }
      if (item.prefill_chunk == 0) {
        // Decode step.
        if (sr.phase != RequestPhase::kRunning || sr.cached_tokens < 1) {
          return Status::Internal("decode scheduled for non-running request");
        }
        if (item.cache_type != sr.cache_type) {
          return Status::Internal(
              "decode cache type mismatch; use preemption to convert");
        }
        APT_ASSIGN_OR_RETURN(ExecutionBackend::StepOutcome out,
                             backend_->ExecuteDecode(sr));
        if (out.out_of_memory) {
          // vLLM-style recompute preemption: this request yields its memory
          // and re-enters the waiting queue.
          APT_RETURN_NOT_OK(backend_->Release(sr));
          metrics.OnPreemption();
          ++sr.preemptions;
          sr.phase = RequestPhase::kWaiting;
          sr.cached_tokens = 0;
          sr.prefill_progress = 0;
          hit_memory_wall = true;
          continue;
        }
        applied.push_back({&sr, StepKind::kDecode, 0, out.token});
        ++accepted;
      } else {
        // Prefill chunk (or swap-in for a swapped request).
        if (sr.phase != RequestPhase::kWaiting) {
          return Status::Internal("prefill scheduled for running request");
        }
        if (sr.swapped) {
          // A scheduled swapped request performs a swap-in instead of a
          // recompute: restore its blocks and resume decoding.
          APT_ASSIGN_OR_RETURN(const bool swapped_in,
                               backend_->TrySwapIn(sr));
          if (!swapped_in) {
            hit_memory_wall = true;
            continue;  // stays swapped; retried later
          }
          sr.swapped = false;
          sr.phase = RequestPhase::kRunning;
          applied.push_back({&sr, StepKind::kSwapIn, 0, false});
          ++accepted;
          continue;
        }
        const int32_t remaining = sr.PrefillTarget() - sr.prefill_progress;
        const int32_t chunk = std::min(item.prefill_chunk, remaining);
        if (chunk <= 0) {
          return Status::Internal("empty prefill chunk scheduled");
        }
        if (!backend_->assigner()->Has(item.id)) {
          // A request that already produced tokens and resumes with a
          // different cache type is an effective conversion (paper §5's
          // discard-and-recompute, with the recompute folded into this
          // resume prefill).
          if (sr.has_first_token && sr.cache_type != item.cache_type) {
            metrics.OnConversion();
            ++sr.conversions;
          }
          sr.cache_type = item.cache_type;
        } else if (item.cache_type != sr.cache_type) {
          return Status::Internal(
              "chunked prefill cannot switch cache type mid-pass");
        }
        APT_ASSIGN_OR_RETURN(
            ExecutionBackend::StepOutcome out,
            backend_->ExecutePrefillChunk(sr, item.cache_type, chunk));
        if (out.out_of_memory) {
          hit_memory_wall = true;
          continue;  // stays waiting; retried in a later iteration
        }
        // A prefix-sharing backend may process fewer positions than the
        // scheduled chunk (matched positions are adopted, not computed);
        // the request still advances past both.
        const int32_t computed = out.computed > 0 ? out.computed : chunk;
        result.prefill_tokens_computed += computed;
        result.prefill_tokens_skipped += out.prefix_skipped;
        applied.push_back({&sr, StepKind::kPrefill,
                           computed + out.prefix_skipped, out.token});
        ++accepted;
      }
    }

    if (applied.empty()) {
      // No work executed. Advance to the next arrival if any; repeated
      // no-progress iterations with work at hand indicate a scheduler bug.
      ++consecutive_idle;
      if (consecutive_idle > 1000) {
        return Status::Internal("scheduler made no progress for 1000 "
                                "iterations with requests pending");
      }
      const double step = backend_->IdleAdvanceSeconds();
      if (next_arrival < reqs.size()) {
        now = std::max(now + step, reqs[next_arrival].spec.arrival);
      } else {
        now += step;
      }
      continue;
    }
    consecutive_idle = 0;

    // 5. Cost: the backend prices (or measured) the batch it just ran.
    APT_ASSIGN_OR_RETURN(const double latency, backend_->EndIteration());
    int32_t prefill_steps = 0;
    int32_t decode_steps = 0;
    for (const Applied& a : applied) {
      if (a.kind == StepKind::kPrefill) ++prefill_steps;
      if (a.kind == StepKind::kDecode) ++decode_steps;
    }
    const bool is_prefill_iter = prefill_steps > 0 && decode_steps == 0;
    const bool is_decode_iter = prefill_steps == 0 && decode_steps > 0;
    if (is_prefill_iter) {
      ++result.prefill_iterations;
    } else if (is_decode_iter) {
      ++result.decode_iterations;
    } else {
      ++result.mixed_iterations;
    }
    now += latency;
    result.compute_seconds += latency;

    // 6. Emit tokens / finish requests.
    for (const Applied& a : applied) {
      SimRequest& sr = *a.req;
      if (a.kind == StepKind::kSwapIn) continue;  // swap-in emits no token
      if (a.kind == StepKind::kDecode) {
        sr.cached_tokens += 1;  // mirror of the backend's cache growth
        ++sr.generated;
        metrics.OnToken(sr.spec.id, now);
        ++result.tokens_generated;
        sr.last_token_time = now;
      } else {
        sr.prefill_progress += a.chunk;
        sr.cached_tokens += a.chunk;
        const bool completes = sr.prefill_progress >= sr.PrefillTarget();
        APT_CHECK_MSG(completes == a.token,
                      "backend and loop disagree on prefill completion");
        if (!completes) continue;  // more chunks
        sr.phase = RequestPhase::kRunning;
        ++sr.generated;
        metrics.OnToken(sr.spec.id, now);
        ++result.tokens_generated;
        sr.has_first_token = true;
        sr.last_token_time = now;
      }
      if (sr.IsFinished()) {
        sr.phase = RequestPhase::kFinished;
        metrics.OnFinish(sr.spec.id, now);
        APT_RETURN_NOT_OK(backend_->OnFinish(sr));
        ++finished;
      }
    }

    // 7. Batch-limit accounting (Figure 2): the batch could not be grown —
    // either an allocation failed above, or unscheduled waiting work exists
    // that would not fit in the remaining pool space.
    bool at_limit = hit_memory_wall;
    if (!at_limit) {
      for (size_t i = 0; i < next_arrival && !at_limit; ++i) {
        const SimRequest& sr = reqs[i];
        if (sr.phase != RequestPhase::kWaiting) continue;
        bool scheduled_now = false;
        for (const Applied& a : applied) {
          if (a.req == &sr) {
            scheduled_now = true;
            break;
          }
        }
        if (!scheduled_now &&
            backend_->assigner()->BlocksNeeded(CacheType::kKV,
                                               sr.PrefillTarget()) >
                backend_->pool()->num_free()) {
          at_limit = true;
        }
      }
    }
    metrics.OnIteration(latency, static_cast<int32_t>(applied.size()),
                        at_limit);
    result.peak_blocks =
        std::max(result.peak_blocks, backend_->pool()->peak_allocated());
  }

  if (finished != reqs.size()) {
    return Status::Internal("serving loop hit the iteration cap with " +
                            std::to_string(reqs.size() - finished) +
                            " unfinished requests");
  }
  APT_RETURN_NOT_OK(backend_->Finalize());
  result.swap_outs = backend_->swap_outs();
  result.swap_ins = backend_->swap_ins();
  if (const PrefixStats* ps = backend_->prefix_stats()) result.prefix = *ps;
  result.report = metrics.Report(slo);
  result.records = metrics.records();
  return result;
}

}  // namespace aptserve
