#include "serve/serving_loop.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.h"

namespace aptserve {

ServingLoopState::ServingLoopState(ExecutionBackend* backend,
                                   const ServingLoopConfig& config)
    : backend_(backend), config_(config) {
  APT_CHECK(backend != nullptr);
}

Status ServingLoopState::Start(const std::vector<Request>& trace,
                               Scheduler* scheduler, const SloSpec& slo) {
  APT_CHECK_MSG(!started_, "Start() called twice");
  APT_CHECK(scheduler != nullptr);
  scheduler_ = scheduler;
  slo_ = slo;
  started_ = true;

  // Requests in arrival order (the trace builder guarantees sorted output;
  // re-sort defensively for hand-built traces).
  std::vector<SimRequest> reqs;
  reqs.reserve(trace.size());
  for (const Request& r : trace) {
    SimRequest sr;
    sr.spec = r;
    if (r.prompt_len <= 0 || r.output_len <= 0) {
      return Status::InvalidArgument("request lengths must be positive");
    }
    reqs.push_back(sr);
    metrics_.RegisterRequest(r);
  }
  std::sort(reqs.begin(), reqs.end(),
            [](const SimRequest& a, const SimRequest& b) {
              return a.spec.arrival < b.spec.arrival;
            });
  APT_RETURN_NOT_OK(backend_->Prepare(reqs));
  slots_.reserve(reqs.size());
  for (const SimRequest& sr : reqs) {
    auto slot = std::make_unique<Slot>();
    slot->sr = sr;
    slot->available_at = sr.spec.arrival;
    slot->obs_enqueued_at = sr.spec.arrival;
    slot->seq = next_seq_++;
    index_[sr.spec.id] = slot.get();
    pending_.push_back(slot.get());  // sorted input => sorted pending
    slots_.push_back(std::move(slot));
  }
  if (trace_) {
    for (const auto& slot : slots_) {
      trace_.Instant(obs::TraceOp::kArrival, slot->available_at,
                     slot->sr.spec.id);
    }
  }
  return Status::OK();
}

void ServingLoopState::InsertPending(Slot* slot) {
  const auto before = [](const Slot* a, const Slot* b) {
    if (a->available_at != b->available_at) {
      return a->available_at < b->available_at;
    }
    return a->seq < b->seq;
  };
  pending_.insert(
      std::upper_bound(pending_.begin(), pending_.end(), slot, before), slot);
}

Status ServingLoopState::Register(const Request& r, double available_at,
                                  bool admit_backend) {
  if (r.prompt_len <= 0 || r.output_len <= 0) {
    return Status::InvalidArgument("request lengths must be positive");
  }
  if (index_.count(r.id)) {
    return Status::AlreadyExists("request " + std::to_string(r.id) +
                                 " already registered with this instance");
  }
  auto slot = std::make_unique<Slot>();
  slot->sr.spec = r;
  slot->available_at = available_at;
  slot->seq = next_seq_++;
  Slot* raw = slot.get();
  metrics_.RegisterRequest(r);
  if (admit_backend) APT_RETURN_NOT_OK(backend_->Admit(raw->sr));
  index_[r.id] = raw;
  InsertPending(raw);
  slots_.push_back(std::move(slot));
  return Status::OK();
}

Status ServingLoopState::Inject(const Request& r, double available_at,
                                double wall_arrival) {
  APT_CHECK_MSG(started_ && !finished_run_, "Inject outside a live run");
  APT_RETURN_NOT_OK(
      Register(r, std::max(available_at, r.arrival), /*admit_backend=*/true));
  if (wall_clock_ != nullptr) {
    wall_metrics_.OnArrival(
        r.id, wall_arrival >= 0 ? wall_arrival : wall_clock_->Now());
  }
  Slot* slot = index_.at(r.id);
  slot->obs_enqueued_at =
      wall_clock_ != nullptr
          ? (wall_arrival >= 0 ? wall_arrival : wall_clock_->Now())
          : slot->available_at;
  trace_.Instant(obs::TraceOp::kArrival, slot->obs_enqueued_at, r.id);
  return Status::OK();
}

void ServingLoopState::AttachObservability(obs::TraceSink sink,
                                           obs::MetricsRegistry* metrics,
                                           int32_t instance_id) {
  trace_ = sink;
  obs_metrics_ = metrics;
  if (metrics == nullptr) return;
  // Handles resolve once here; every update below is a null check plus a
  // relaxed atomic.
  const std::string inst =
      "instance=\"" + std::to_string(instance_id) + "\"";
  const auto by_reason = [&inst](const char* reason) {
    return inst + ",reason=\"" + reason + "\"";
  };
  obs_.preempt_scheduler =
      metrics->GetCounter("aptserve_preemptions_total", by_reason("scheduler"));
  obs_.preempt_memory_wall = metrics->GetCounter("aptserve_preemptions_total",
                                                 by_reason("memory_wall"));
  obs_.preempt_swap_out =
      metrics->GetCounter("aptserve_preemptions_total", by_reason("swap_out"));
  obs_.preempt_conversion = metrics->GetCounter("aptserve_preemptions_total",
                                                by_reason("conversion"));
  obs_.tokens = metrics->GetCounter("aptserve_tokens_generated_total", inst);
  obs_.swap_outs = metrics->GetCounter("aptserve_swap_outs_total", inst);
  obs_.swap_ins = metrics->GetCounter("aptserve_swap_ins_total", inst);
  obs_.prefix_hit_tokens =
      metrics->GetCounter("aptserve_prefix_hit_tokens_total", inst);
  obs_.queue_high_water =
      metrics->GetGauge("aptserve_queue_depth_high_water", inst);
  obs_.pool_peak = metrics->GetGauge("aptserve_pool_blocks_peak", inst);
  obs_.iteration_seconds =
      metrics->GetHistogram("aptserve_iteration_seconds", inst);
}

void ServingLoopState::AttachWallClock(const runtime::Clock* clock) {
  APT_CHECK(clock != nullptr);
  wall_clock_ = clock;
}

std::vector<std::pair<RequestId, double>> ServingLoopState::TakeRecentFinishes() {
  std::vector<std::pair<RequestId, double>> out;
  out.swap(recent_finishes_);
  return out;
}

StatusOr<MigratedRequest> ServingLoopState::Extract(RequestId id) {
  APT_CHECK_MSG(started_ && !finished_run_, "Extract outside a live run");
  auto it = index_.find(id);
  if (it == index_.end()) {
    return Status::NotFound("request " + std::to_string(id) +
                            " is not live on this instance");
  }
  Slot* slot = it->second;
  SimRequest& sr = slot->sr;
  if (sr.phase != RequestPhase::kWaiting || sr.swapped) {
    return Status::FailedPrecondition(
        "only queued or preempted (non-swapped) requests are migratable");
  }
  MigratedRequest m;
  m.spec = sr.spec;
  m.cache_type = sr.cache_type;
  m.generated = sr.generated;
  m.cached_tokens = sr.cached_tokens;
  m.prefill_progress = sr.prefill_progress;
  m.has_first_token = sr.has_first_token;
  m.last_token_time = sr.last_token_time;
  m.preemptions = sr.preemptions;
  m.conversions = sr.conversions;
  m.available_at = slot->available_at;
  APT_ASSIGN_OR_RETURN(m.image, backend_->ExportRequest(sr));
  m.record = metrics_.ExtractRecord(id, &m.has_last_token, &m.last_token);
  if (wall_clock_ != nullptr) {
    m.has_wall_record = true;
    m.wall_record = wall_metrics_.ExtractRecord(id);
  }
  if (trace_) {
    // Flow-begin half of the cross-track migration arrow; the id and stamp
    // travel with the request so the destination can terminate it.
    m.obs_export_ts = ObsNow();
    m.obs_flow =
        trace_.FlowBegin(obs::TraceOp::kMigrationExport, m.obs_export_ts, id,
                         static_cast<double>(m.cached_tokens));
  }
  slot->migrated_out = true;
  ++migrated_out_;
  index_.erase(it);
  active_.erase(std::remove(active_.begin(), active_.end(), slot),
                active_.end());
  pending_.erase(std::remove(pending_.begin(), pending_.end(), slot),
                 pending_.end());
  return m;
}

StatusOr<MigrationImport> ServingLoopState::Receive(
    MigratedRequest m, double base_available_at,
    const std::function<double(const MigrationImport&)>& transfer_delay) {
  APT_CHECK_MSG(started_ && !finished_run_, "Receive outside a live run");
  if (index_.count(m.spec.id)) {
    return Status::AlreadyExists("request " + std::to_string(m.spec.id) +
                                 " already live on this instance");
  }
  auto slot = std::make_unique<Slot>();
  SimRequest& sr = slot->sr;
  sr.spec = m.spec;
  sr.phase = RequestPhase::kWaiting;
  sr.cache_type = m.cache_type;
  sr.generated = m.generated;
  sr.has_first_token = m.has_first_token;
  sr.last_token_time = m.last_token_time;
  sr.preemptions = m.preemptions;
  sr.conversions = m.conversions;
  APT_ASSIGN_OR_RETURN(MigrationImport import,
                       backend_->ImportRequest(sr, m.image));
  if (import.cache_restored) {
    sr.cached_tokens = m.cached_tokens;
    sr.prefill_progress = m.prefill_progress;
  } else {
    // Cold import (destination pool full): the request re-prefills here,
    // the migration analogue of a recompute preemption.
    sr.cached_tokens = 0;
    sr.prefill_progress = 0;
  }
  metrics_.AdoptRecord(std::move(m.record), m.has_last_token, m.last_token);
  if (wall_clock_ != nullptr && m.has_wall_record) {
    wall_metrics_.AdoptRecord(sr.spec.id, m.wall_record);
  }
  slot->available_at =
      base_available_at + (transfer_delay ? transfer_delay(import) : 0.0);
  slot->obs_enqueued_at =
      wall_clock_ != nullptr ? ObsNow() : slot->available_at;
  if (trace_) {
    // Terminate the arrow no earlier than its export stamp — the
    // destination's virtual clock may lag the source's by a fraction of an
    // iteration, and flow ends must not precede their begins.
    trace_.FlowEnd(obs::TraceOp::kMigrationImport,
                   std::max(ObsNow(), m.obs_export_ts), sr.spec.id,
                   m.obs_flow, import.cache_restored ? 1.0 : 0.0,
                   static_cast<double>(import.copied_tokens));
  }
  slot->seq = next_seq_++;
  index_[sr.spec.id] = slot.get();
  InsertPending(slot.get());
  slots_.push_back(std::move(slot));
  return import;
}

int32_t ServingLoopState::NumWaiting() const {
  int32_t n = 0;
  for (const auto& slot : slots_) {
    if (!slot->migrated_out && slot->sr.phase == RequestPhase::kWaiting) ++n;
  }
  return n;
}

int32_t ServingLoopState::NumRunning() const {
  int32_t n = 0;
  for (const auto& slot : slots_) {
    if (!slot->migrated_out && slot->sr.phase == RequestPhase::kRunning) ++n;
  }
  return n;
}

std::vector<RequestId> ServingLoopState::MigratableWaiting() const {
  std::vector<RequestId> ids;
  for (const auto& slot : slots_) {
    const SimRequest& sr = slot->sr;
    if (!slot->migrated_out && sr.phase == RequestPhase::kWaiting &&
        !sr.swapped) {
      ids.push_back(sr.spec.id);
    }
  }
  return ids;
}

std::pair<int64_t, int64_t> ServingLoopState::TtftFinishesSince(
    double since) const {
  int64_t met = 0, total = 0;
  for (auto it = finish_log_.rbegin(); it != finish_log_.rend(); ++it) {
    if (it->first < since) break;  // finish times are nondecreasing
    ++total;
    if (it->second) ++met;
  }
  return {met, total};
}

StatusOr<ServingLoopState::Progress> ServingLoopState::Step() {
  APT_CHECK_MSG(started_ && !finished_run_, "Step outside a live run");
  const bool swap_mode = config_.preemption_mode == PreemptionMode::kSwap;

  // 1. Admit requests whose availability the clock reached.
  while (!pending_.empty() && pending_.front()->available_at <= now_) {
    active_.push_back(pending_.front());
    pending_.pop_front();
  }

  // 2. Build queues.
  SchedulerInput input;
  input.now = now_;
  input.pool = backend_->pool();
  input.assigner = backend_->assigner();
  input.cost_model = backend_->cost_model();
  for (Slot* s : active_) {
    SimRequest& sr = s->sr;
    if (sr.phase == RequestPhase::kWaiting) {
      input.waiting.push_back(&sr);
    } else if (sr.phase == RequestPhase::kRunning) {
      input.running.push_back(&sr);
    }
  }
  if (obs_.queue_high_water != nullptr) {
    obs_.queue_high_water->SetMax(static_cast<double>(input.waiting.size()));
  }
  if (input.waiting.empty() && input.running.empty()) {
    if (!pending_.empty()) {
      now_ = std::max(now_, pending_.front()->available_at);
      ++iterations_done_;
      return Progress::kFastForward;
    }
    return Progress::kDrained;  // parked; no iteration consumed
  }

  // 3. Plan.
  BatchPlan plan = scheduler_->PlanIteration(input);

  // Backends start their iteration clock here so that preemption work —
  // in particular real swap-out payload copies — is charged to the
  // iteration that caused it.
  const double obs_iter_start = trace_ ? ObsNow() : 0.0;
  backend_->BeginIteration();

  // 4a. Preemptions / conversions / swap-outs.
  for (const PreemptionItem& p : plan.preempt) {
    auto it = index_.find(p.id);
    if (it == index_.end()) {
      return Status::Internal("scheduler preempted unknown request");
    }
    SimRequest& sr = it->second->sr;
    // Preemption targets are running requests or waiting requests that
    // hold a partial (chunked-prefill) cache; both free their blocks and
    // restart their prefill pass later.
    const bool preemptible =
        backend_->assigner()->Has(p.id) &&
        (sr.phase == RequestPhase::kRunning ||
         sr.phase == RequestPhase::kWaiting);
    if (!preemptible) {
      return Status::Internal(
          "scheduler preempted a request holding no cache");
    }
    const bool is_conversion = p.resume_cache_type != sr.cache_type;
    if (is_conversion) {
      // Type-conversion fallback: even in swap mode a conversion discards
      // the cache — a swapped copy of the old type would be useless.
      APT_RETURN_NOT_OK(backend_->Convert(sr, p.resume_cache_type));
      ++sr.conversions;
      metrics_.OnConversion();
      if (obs_.preempt_conversion != nullptr) obs_.preempt_conversion->Inc();
      trace_.Instant(obs::TraceOp::kPreempt, obs_iter_start, p.id, 3.0);
    } else if (swap_mode && sr.phase == RequestPhase::kRunning) {
      APT_ASSIGN_OR_RETURN(const bool swapped_out, backend_->TrySwapOut(sr));
      if (swapped_out) {
        // Swap-based preemption: the cache moves to host memory; the
        // request keeps its logical progress and resumes via a swap-in
        // instead of a recompute prefill.
        metrics_.OnPreemption();
        if (obs_.preempt_swap_out != nullptr) obs_.preempt_swap_out->Inc();
        trace_.Instant(obs::TraceOp::kPreempt, obs_iter_start, p.id, 2.0);
        ++sr.preemptions;
        sr.phase = RequestPhase::kWaiting;
        sr.swapped = true;
        sr.prefill_progress = sr.cached_tokens;
        continue;
      }
      // Full-swap-space fallback: recompute preemption.
      APT_RETURN_NOT_OK(backend_->Release(sr));
      metrics_.OnPreemption();
      if (obs_.preempt_scheduler != nullptr) obs_.preempt_scheduler->Inc();
      trace_.Instant(obs::TraceOp::kPreempt, obs_iter_start, p.id, 0.0);
    } else {
      APT_RETURN_NOT_OK(backend_->Release(sr));
      metrics_.OnPreemption();
      if (obs_.preempt_scheduler != nullptr) obs_.preempt_scheduler->Inc();
      trace_.Instant(obs::TraceOp::kPreempt, obs_iter_start, p.id, 0.0);
    }
    ++sr.preemptions;
    sr.phase = RequestPhase::kWaiting;
    sr.cache_type = p.resume_cache_type;
    sr.cached_tokens = 0;
    sr.prefill_progress = 0;
  }

  // 4b. Execute scheduled items with memory allocation.
  enum class StepKind { kDecode, kPrefill, kSwapIn };
  struct Applied {
    SimRequest* req;
    StepKind kind;
    int32_t chunk = 0;  // prefill only
    bool token = false;
  };
  std::vector<Applied> applied;
  bool hit_memory_wall = false;
  int32_t accepted = 0;
  for (const ScheduledItem& item : plan.items) {
    if (accepted >= config_.max_batch_size) break;
    auto it = index_.find(item.id);
    if (it == index_.end()) {
      return Status::Internal("scheduler scheduled unknown request");
    }
    SimRequest& sr = it->second->sr;
    if (sr.phase == RequestPhase::kFinished) {
      return Status::Internal("scheduler scheduled a finished request");
    }
    if (item.prefill_chunk == 0) {
      // Decode step.
      if (sr.phase != RequestPhase::kRunning || sr.cached_tokens < 1) {
        return Status::Internal("decode scheduled for non-running request");
      }
      if (item.cache_type != sr.cache_type) {
        return Status::Internal(
            "decode cache type mismatch; use preemption to convert");
      }
      APT_ASSIGN_OR_RETURN(ExecutionBackend::StepOutcome out,
                           backend_->ExecuteDecode(sr));
      if (out.out_of_memory) {
        // vLLM-style recompute preemption: this request yields its memory
        // and re-enters the waiting queue.
        APT_RETURN_NOT_OK(backend_->Release(sr));
        metrics_.OnPreemption();
        if (obs_.preempt_memory_wall != nullptr) {
          obs_.preempt_memory_wall->Inc();
        }
        trace_.Instant(obs::TraceOp::kPreempt, obs_iter_start, item.id, 1.0);
        ++sr.preemptions;
        sr.phase = RequestPhase::kWaiting;
        sr.cached_tokens = 0;
        sr.prefill_progress = 0;
        hit_memory_wall = true;
        continue;
      }
      applied.push_back({&sr, StepKind::kDecode, 0, out.token});
      ++accepted;
    } else {
      // Prefill chunk (or swap-in for a swapped request).
      if (sr.phase != RequestPhase::kWaiting) {
        return Status::Internal("prefill scheduled for running request");
      }
      if (sr.swapped) {
        // A scheduled swapped request performs a swap-in instead of a
        // recompute: restore its blocks and resume decoding.
        APT_ASSIGN_OR_RETURN(const bool swapped_in, backend_->TrySwapIn(sr));
        if (!swapped_in) {
          hit_memory_wall = true;
          continue;  // stays swapped; retried later
        }
        sr.swapped = false;
        sr.phase = RequestPhase::kRunning;
        trace_.Instant(obs::TraceOp::kSwapIn, obs_iter_start, item.id);
        applied.push_back({&sr, StepKind::kSwapIn, 0, false});
        ++accepted;
        continue;
      }
      const int32_t remaining = sr.PrefillTarget() - sr.prefill_progress;
      const int32_t chunk = std::min(item.prefill_chunk, remaining);
      if (chunk <= 0) {
        return Status::Internal("empty prefill chunk scheduled");
      }
      if (!backend_->assigner()->Has(item.id)) {
        // A request that already produced tokens and resumes with a
        // different cache type is an effective conversion (paper §5's
        // discard-and-recompute, with the recompute folded into this
        // resume prefill).
        if (sr.has_first_token && sr.cache_type != item.cache_type) {
          metrics_.OnConversion();
          ++sr.conversions;
        }
        sr.cache_type = item.cache_type;
      } else if (item.cache_type != sr.cache_type) {
        return Status::Internal(
            "chunked prefill cannot switch cache type mid-pass");
      }
      APT_ASSIGN_OR_RETURN(
          ExecutionBackend::StepOutcome out,
          backend_->ExecutePrefillChunk(sr, item.cache_type, chunk));
      if (out.out_of_memory) {
        hit_memory_wall = true;
        continue;  // stays waiting; retried in a later iteration
      }
      // A prefix-sharing backend may process fewer positions than the
      // scheduled chunk (matched positions are adopted, not computed);
      // the request still advances past both.
      const int32_t computed = out.computed > 0 ? out.computed : chunk;
      result_.prefill_tokens_computed += computed;
      result_.prefill_tokens_skipped += out.prefix_skipped;
      applied.push_back({&sr, StepKind::kPrefill,
                         computed + out.prefix_skipped, out.token});
      ++accepted;
    }
  }

  if (applied.empty()) {
    // No work executed. Advance to the next availability if any; repeated
    // no-progress iterations with work at hand indicate a scheduler bug.
    ++consecutive_idle_;
    if (consecutive_idle_ > 1000) {
      return Status::Internal("scheduler made no progress for 1000 "
                              "iterations with requests pending");
    }
    // No-progress memory pressure: evict cold prefix-index blocks so the
    // schedulers' free-block gates can see them. Index blocks are normally
    // reclaimed inside allocations — but a gated scheduler never attempts
    // one, so a pool filled with indexed prefixes would otherwise livelock
    // the queue. No-op for backends without an index (bit-identical).
    for (Slot* s : active_) {
      const SimRequest& sr = s->sr;
      if (sr.phase != RequestPhase::kWaiting || sr.swapped) continue;
      const int32_t deficit =
          backend_->assigner()->BlocksNeeded(CacheType::kKV,
                                             sr.PrefillTarget()) -
          backend_->pool()->num_free();
      if (deficit > 0) backend_->ReclaimCache(deficit);
      break;  // the head of the queue is what gates progress
    }
    const double step = backend_->IdleAdvanceSeconds();
    if (!pending_.empty()) {
      now_ = std::max(now_ + step, pending_.front()->available_at);
    } else {
      now_ += step;
    }
    ++iterations_done_;
    return Progress::kIdle;
  }
  consecutive_idle_ = 0;

  // 5. Cost: the backend prices (or measured) the batch it just ran.
  APT_ASSIGN_OR_RETURN(const double latency, backend_->EndIteration());
  int32_t prefill_steps = 0;
  int32_t decode_steps = 0;
  for (const Applied& a : applied) {
    if (a.kind == StepKind::kPrefill) ++prefill_steps;
    if (a.kind == StepKind::kDecode) ++decode_steps;
  }
  const bool is_prefill_iter = prefill_steps > 0 && decode_steps == 0;
  const bool is_decode_iter = prefill_steps == 0 && decode_steps > 0;
  if (is_prefill_iter) {
    ++result_.prefill_iterations;
  } else if (is_decode_iter) {
    ++result_.decode_iterations;
  } else {
    ++result_.mixed_iterations;
  }
  now_ += latency;
  result_.compute_seconds += latency;

  // 6. Emit tokens / finish requests. With an attached wall clock every
  // emission is additionally stamped in real time — one reading per
  // iteration, shared by the batch, exactly like the virtual timeline.
  const double wall_now = wall_clock_ != nullptr ? wall_clock_->Now() : 0.0;
  const double obs_iter_end = wall_clock_ != nullptr ? wall_now : now_;
  if (obs_.iteration_seconds != nullptr) {
    obs_.iteration_seconds->Observe(latency);
  }
  trace_.Span(obs::TraceOp::kIteration, obs_iter_start,
              obs_iter_end - obs_iter_start, /*id=*/-1,
              static_cast<double>(applied.size()),
              static_cast<double>(decode_steps));
  for (const Applied& a : applied) {
    SimRequest& sr = *a.req;
    if (a.kind == StepKind::kSwapIn) continue;  // swap-in emits no token
    if (a.kind == StepKind::kDecode) {
      sr.cached_tokens += 1;  // mirror of the backend's cache growth
      ++sr.generated;
      metrics_.OnToken(sr.spec.id, now_);
      ++result_.tokens_generated;
      sr.last_token_time = now_;
      if (obs_.tokens != nullptr) obs_.tokens->Inc();
      trace_.Instant(obs::TraceOp::kDecodeStep, obs_iter_end, sr.spec.id,
                     static_cast<double>(sr.generated));
    } else {
      sr.prefill_progress += a.chunk;
      sr.cached_tokens += a.chunk;
      if (trace_) {
        Slot* slot = index_.at(sr.spec.id);
        if (!slot->obs_first_run) {
          // First scheduled work closes the queue-wait span, which started
          // back when the request joined this instance's queue.
          slot->obs_first_run = true;
          trace_.Span(obs::TraceOp::kQueueWait, slot->obs_enqueued_at,
                      obs_iter_start - slot->obs_enqueued_at, sr.spec.id);
        }
        trace_.Span(obs::TraceOp::kPrefill, obs_iter_start,
                    obs_iter_end - obs_iter_start, sr.spec.id,
                    static_cast<double>(a.chunk));
      }
      const bool completes = sr.prefill_progress >= sr.PrefillTarget();
      APT_CHECK_MSG(completes == a.token,
                    "backend and loop disagree on prefill completion");
      if (!completes) continue;  // more chunks
      sr.phase = RequestPhase::kRunning;
      ++sr.generated;
      metrics_.OnToken(sr.spec.id, now_);
      ++result_.tokens_generated;
      sr.has_first_token = true;
      sr.last_token_time = now_;
      if (obs_.tokens != nullptr) obs_.tokens->Inc();
    }
    if (wall_clock_ != nullptr) wall_metrics_.OnToken(sr.spec.id, wall_now);
    if (sr.IsFinished()) {
      sr.phase = RequestPhase::kFinished;
      metrics_.OnFinish(sr.spec.id, now_);
      APT_RETURN_NOT_OK(backend_->OnFinish(sr));
      ++finished_;
      const RequestRecord& rec = metrics_.records().at(sr.spec.id);
      finish_log_.emplace_back(now_, rec.MeetsTtft(slo_));
      trace_.Instant(obs::TraceOp::kCompletion, obs_iter_end, sr.spec.id,
                     rec.ttft, now_ - sr.spec.arrival);
      if (wall_clock_ != nullptr) {
        wall_metrics_.OnFinish(sr.spec.id, wall_now);
        recent_finishes_.emplace_back(sr.spec.id, now_);
      }
    }
  }

  // 7. Batch-limit accounting (Figure 2): the batch could not be grown —
  // either an allocation failed above, or unscheduled waiting work exists
  // that would not fit in the remaining pool space.
  bool at_limit = hit_memory_wall;
  if (!at_limit) {
    for (Slot* s : active_) {
      const SimRequest& sr = s->sr;
      if (sr.phase != RequestPhase::kWaiting) continue;
      bool scheduled_now = false;
      for (const Applied& a : applied) {
        if (a.req == &sr) {
          scheduled_now = true;
          break;
        }
      }
      if (!scheduled_now &&
          backend_->assigner()->BlocksNeeded(CacheType::kKV,
                                             sr.PrefillTarget()) >
              backend_->pool()->num_free()) {
        at_limit = true;
        break;
      }
    }
  }
  metrics_.OnIteration(latency, static_cast<int32_t>(applied.size()),
                       at_limit);
  result_.peak_blocks =
      std::max(result_.peak_blocks, backend_->pool()->peak_allocated());
  ++iterations_done_;
  return Progress::kExecuted;
}

StatusOr<ServingLoopResult> ServingLoopState::Finish() {
  APT_CHECK_MSG(started_ && !finished_run_, "Finish outside a live run");
  finished_run_ = true;
  if (!AllServed()) {
    return Status::Internal("serving loop hit the iteration cap with " +
                            std::to_string(NumUnfinished()) +
                            " unfinished requests");
  }
  APT_RETURN_NOT_OK(backend_->Finalize());
  result_.swap_outs = backend_->swap_outs();
  result_.swap_ins = backend_->swap_ins();
  if (const PrefixStats* ps = backend_->prefix_stats()) result_.prefix = *ps;
  if (obs_metrics_ != nullptr) {
    // Pull-style publication of the run totals the loop only knows at the
    // end (live counters above cover the per-event series).
    obs_.pool_peak->SetMax(static_cast<double>(result_.peak_blocks));
    obs_.swap_outs->Inc(result_.swap_outs);
    obs_.swap_ins->Inc(result_.swap_ins);
    obs_.prefix_hit_tokens->Inc(result_.prefix.matched_tokens);
  }
  result_.report = metrics_.Report(slo_);
  result_.records = metrics_.records();
  result_.wall_metrics = std::move(wall_metrics_);
  return std::move(result_);
}

ServingLoop::ServingLoop(ExecutionBackend* backend,
                         const ServingLoopConfig& config)
    : backend_(backend), config_(config) {
  APT_CHECK(backend != nullptr);
}

StatusOr<ServingLoopResult> ServingLoop::Run(const std::vector<Request>& trace,
                                             Scheduler* scheduler,
                                             const SloSpec& slo) {
  ServingLoopState state(backend_, config_);
  APT_RETURN_NOT_OK(state.Start(trace, scheduler, slo));
  while (state.iterations() < config_.max_iterations) {
    if (state.AllServed()) break;
    APT_ASSIGN_OR_RETURN(const ServingLoopState::Progress progress,
                         state.Step());
    if (progress == ServingLoopState::Progress::kDrained) break;
  }
  return state.Finish();
}

}  // namespace aptserve
