#include "serve/cell_router.h"

#include <algorithm>

#include "common/logging.h"

namespace aptserve {

namespace {

/// splitmix64 finalizer: cheap, well-mixed, and stable across platforms —
/// ring placement and key hashing must never change between builds or the
/// cell assignment of every committed trace changes with them.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

CellRouter::CellRouter(const CellRouterConfig& config,
                       int32_t block_size_fallback)
    : config_(config),
      block_size_(config.block_size > 0 ? config.block_size
                                        : block_size_fallback) {
  APT_CHECK_MSG(config_.num_cells >= 1, "a fleet needs at least one cell");
  APT_CHECK(config_.ring_replicas >= 1);
  APT_CHECK(config_.hash_chunks >= 1);
  APT_CHECK(block_size_ >= 1);

  ring_.reserve(static_cast<size_t>(config_.num_cells) *
                config_.ring_replicas);
  for (int32_t c = 0; c < config_.num_cells; ++c) {
    for (int32_t r = 0; r < config_.ring_replicas; ++r) {
      const uint64_t point =
          Mix64(config_.hash_seed ^ Mix64((static_cast<uint64_t>(c) << 20) +
                                          static_cast<uint64_t>(r)));
      ring_.emplace_back(point, c);
    }
  }
  std::sort(ring_.begin(), ring_.end());

  busy_until_.assign(config_.num_cells, 0.0);
  live_.assign(config_.num_cells, 1);
  for (int32_t c = 0; c < config_.num_cells; ++c) loads_.emplace(0.0, c);
}

uint64_t CellRouter::PrefixKey(const Request& req) const {
  if (!req.has_token_ids()) return 0;
  // Same usable-positions rule as the affinity mirrors: a chunk counts
  // only when fully contained in the first prompt_len - 1 positions.
  const int32_t usable = static_cast<int32_t>(req.token_ids.size()) - 1;
  const int32_t full_chunks = usable / block_size_;
  if (full_chunks < 1) return 0;
  const int32_t chunks = std::min(config_.hash_chunks, full_chunks);
  uint64_t h = Mix64(config_.hash_seed);
  for (int32_t i = 0; i < chunks * block_size_; ++i) {
    h = Mix64(h ^ static_cast<uint64_t>(
                      static_cast<uint32_t>(req.token_ids[i])));
  }
  // Reserve 0 as the "no usable chunk" sentinel.
  return h != 0 ? h : 1;
}

int32_t CellRouter::RingCell(uint64_t key) const {
  auto it = std::upper_bound(ring_.begin(), ring_.end(),
                             std::make_pair(key, INT32_MAX));
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->second;
}

double CellRouter::Outstanding(int32_t cell, double now) const {
  APT_CHECK(cell >= 0 && cell < config_.num_cells);
  return std::max(0.0, busy_until_[cell] - now);
}

int32_t CellRouter::RouteOne(const Request& req, double now) {
  ++stats_.decisions;
  APT_CHECK_MSG(!loads_.empty(), "routing with no live cells");
  if (config_.num_cells == 1) {
    // Flat fleet: no ring, no summaries — the front tier is free.
    ++stats_.hash_routed;
    return 0;
  }

  // Least-loaded live cell: busy_until is time-independent, so the argmin
  // of outstanding(c) = max(0, busy_until[c] - now) is the ordered set's
  // first element — one read, not a scan.
  const auto [min_busy, min_cell] = *loads_.begin();
  const double min_out = std::max(0.0, min_busy - now);
  ++stats_.cell_probes;

  const uint64_t key = PrefixKey(req);
  if (key != 0) {
    const int32_t hashed = RingCell(key);
    ++stats_.cell_probes;  // the ring lookup + hashed-cell summary read
    if (live_[hashed] &&
        Outstanding(hashed, now) - min_out <= config_.cell_max_imbalance_s) {
      ++stats_.hash_routed;
      return hashed;
    }
  }
  ++stats_.fallback_routed;
  return min_cell;
}

void CellRouter::Commit(int32_t cell, double now, double service_seconds,
                        int32_t cell_width) {
  APT_CHECK(cell >= 0 && cell < config_.num_cells);
  APT_CHECK(service_seconds >= 0.0);
  const double per_instance =
      service_seconds / static_cast<double>(std::max(1, cell_width));
  const double start = std::max(now, busy_until_[cell]);
  if (live_[cell]) loads_.erase({busy_until_[cell], cell});
  busy_until_[cell] = start + per_instance;
  if (live_[cell]) loads_.emplace(busy_until_[cell], cell);
}

void CellRouter::SetLive(int32_t cell, bool live) {
  APT_CHECK(cell >= 0 && cell < config_.num_cells);
  if (static_cast<bool>(live_[cell]) == live) return;
  if (live) {
    live_[cell] = 1;
    loads_.emplace(busy_until_[cell], cell);
  } else {
    loads_.erase({busy_until_[cell], cell});
    APT_CHECK_MSG(!loads_.empty(), "retiring the last live cell");
    live_[cell] = 0;
  }
}

}  // namespace aptserve
