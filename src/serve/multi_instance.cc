#include "serve/multi_instance.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "runtime/thread_pool.h"

namespace aptserve {

const char* DispatchPolicyName(DispatchPolicy p) {
  switch (p) {
    case DispatchPolicy::kRoundRobin:
      return "round-robin";
    case DispatchPolicy::kLeastLoaded:
      return "least-loaded";
    case DispatchPolicy::kPowerOfTwo:
      return "power-of-two";
  }
  return "?";
}

std::vector<int32_t> DispatchTrace(const std::vector<Request>& trace,
                                   const DispatchConfig& config) {
  const int32_t n = config.n_instances;
  std::vector<int32_t> assignment(trace.size(), 0);
  if (n == 1) return assignment;

  // Per-instance sliding-window backlog of dispatched prompt tokens.
  std::vector<std::deque<std::pair<TimePoint, int64_t>>> window(n);
  std::vector<int64_t> backlog(n, 0);
  Rng rng(config.dispatch_seed);

  auto expire = [&](TimePoint now) {
    for (int32_t i = 0; i < n; ++i) {
      while (!window[i].empty() &&
             window[i].front().first < now - config.load_window_s) {
        backlog[i] -= window[i].front().second;
        window[i].pop_front();
      }
    }
  };
  auto assign = [&](size_t req_idx, int32_t inst) {
    assignment[req_idx] = inst;
    window[inst].emplace_back(trace[req_idx].arrival,
                              trace[req_idx].prompt_len);
    backlog[inst] += trace[req_idx].prompt_len;
  };

  for (size_t r = 0; r < trace.size(); ++r) {
    expire(trace[r].arrival);
    switch (config.policy) {
      case DispatchPolicy::kRoundRobin:
        assign(r, static_cast<int32_t>(r % n));
        break;
      case DispatchPolicy::kLeastLoaded: {
        int32_t best = 0;
        for (int32_t i = 1; i < n; ++i) {
          if (backlog[i] < backlog[best]) best = i;
        }
        assign(r, best);
        break;
      }
      case DispatchPolicy::kPowerOfTwo: {
        const int32_t a = static_cast<int32_t>(rng.UniformInt(0, n - 1));
        int32_t b = static_cast<int32_t>(rng.UniformInt(0, n - 2));
        if (b >= a) ++b;
        assign(r, backlog[a] <= backlog[b] ? a : b);
        break;
      }
    }
  }
  return assignment;
}

MultiInstanceRunner::MultiInstanceRunner(const DispatchConfig& dispatch,
                                         const ServingLoopConfig& loop,
                                         const RuntimeConfig& runtime)
    : dispatch_(dispatch), loop_(loop), runtime_(runtime) {
  APT_CHECK(dispatch.n_instances >= 1);
}

std::vector<int32_t> MultiInstanceRunner::Dispatch(
    const std::vector<Request>& trace) const {
  return DispatchTrace(trace, dispatch_);
}

StatusOr<MultiInstanceResult> MultiInstanceRunner::Run(
    const std::vector<Request>& trace, const SchedulerFactory& make_scheduler,
    const BackendFactory& make_backend, const SloSpec& slo) {
  const std::vector<int32_t> assignment = Dispatch(trace);
  const int32_t n = dispatch_.n_instances;
  MultiInstanceResult result;
  result.per_instance.resize(n);
  result.requests_per_instance.assign(n, 0);

  // Per-instance serving state. Shards and the scheduler/backend objects
  // are built serially in instance order — factories may capture shared
  // state — so only the independent serving loops run on the fleet pool.
  struct InstanceRun {
    std::vector<Request> sub;
    std::unique_ptr<Scheduler> scheduler;
    std::unique_ptr<ExecutionBackend> backend;
    Status status = Status::OK();
  };
  std::vector<InstanceRun> runs(n);
  for (int32_t inst = 0; inst < n; ++inst) {
    for (size_t r = 0; r < trace.size(); ++r) {
      if (assignment[r] == inst) runs[inst].sub.push_back(trace[r]);
    }
    result.requests_per_instance[inst] =
        static_cast<int32_t>(runs[inst].sub.size());
    if (runs[inst].sub.empty()) continue;
    runs[inst].scheduler = make_scheduler();
    APT_ASSIGN_OR_RETURN(runs[inst].backend, make_backend(inst));
  }

  auto run_instance = [&](int32_t inst) {
    InstanceRun& run = runs[inst];
    if (run.sub.empty()) return;
    ServingLoop loop(run.backend.get(), loop_);
    StatusOr<ServingLoopResult> r = loop.Run(run.sub, run.scheduler.get(),
                                             slo);
    if (!r.ok()) {
      run.status = r.status();
      return;
    }
    result.per_instance[inst] = std::move(r->report);
  };

  const int32_t threads = std::min(runtime_.ResolvedNumThreads(), n);
  if (threads > 1) {
    // One task per instance epoch; the ParallelFor join is the epoch
    // barrier behind which reports merge in instance order.
    RuntimeConfig fleet_config = runtime_;
    fleet_config.num_threads = threads;
    runtime::ThreadPool fleet_pool(fleet_config);
    fleet_pool.ParallelForEach(0, n, 1, [&](int64_t inst) {
      run_instance(static_cast<int32_t>(inst));
    });
  } else {
    for (int32_t inst = 0; inst < n; ++inst) {
      run_instance(inst);
      if (!runs[inst].status.ok()) break;  // fail fast, as before
    }
  }
  // First failure in instance order, matching the serial runner's report.
  for (const InstanceRun& run : runs) {
    if (!run.status.ok()) return run.status;
  }

  result.combined =
      MergeReports(result.per_instance, result.requests_per_instance);
  return result;
}

SloReport MergeReports(const std::vector<SloReport>& reports,
                       const std::vector<int32_t>& request_counts) {
  APT_CHECK(reports.size() == request_counts.size());
  SloReport out;
  int64_t total_requests = 0;
  double limit_time = 0.0;
  double batch_weighted = 0.0;
  for (size_t i = 0; i < reports.size(); ++i) {
    const SloReport& r = reports[i];
    const int64_t n = request_counts[i];
    total_requests += n;
    out.slo_attainment += r.slo_attainment * n;
    out.ttft_attainment += r.ttft_attainment * n;
    out.tbt_attainment += r.tbt_attainment * n;
    out.total_serving_time = std::max(out.total_serving_time,
                                      r.total_serving_time);
    limit_time += r.batch_limit_time_ratio * r.total_serving_time;
    out.iterations += r.iterations;
    batch_weighted += r.mean_batch_size * static_cast<double>(r.iterations);
    out.preemptions += r.preemptions;
    out.conversions += r.conversions;
    for (double v : r.ttfts.samples()) out.ttfts.Add(v);
    for (double v : r.p99_tbts.samples()) out.p99_tbts.Add(v);
  }
  if (total_requests > 0) {
    out.slo_attainment /= total_requests;
    out.ttft_attainment /= total_requests;
    out.tbt_attainment /= total_requests;
  }
  double summed_time = 0.0;
  for (const SloReport& r : reports) summed_time += r.total_serving_time;
  out.batch_limit_time_ratio =
      summed_time > 0 ? limit_time / summed_time : 0.0;
  out.mean_batch_size =
      out.iterations > 0 ? batch_weighted / out.iterations : 0.0;
  out.mean_ttft = out.ttfts.Mean();
  out.p99_ttft = out.ttfts.P99();
  return out;
}

}  // namespace aptserve
