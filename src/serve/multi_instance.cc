#include "serve/multi_instance.h"

#include <utility>

#include "common/logging.h"
#include "serve/fleet_controller.h"

namespace aptserve {

const char* DispatchPolicyName(DispatchPolicy p) {
  switch (p) {
    case DispatchPolicy::kRoundRobin:
      return "round-robin";
    case DispatchPolicy::kLeastLoaded:
      return "least-loaded";
    case DispatchPolicy::kPowerOfTwo:
      return "power-of-two";
  }
  return "?";
}

RouterConfig ToRouterConfig(const DispatchConfig& config) {
  RouterConfig r;
  r.n_instances = config.n_instances;
  switch (config.policy) {
    case DispatchPolicy::kRoundRobin:
      r.policy = RoutePolicy::kRoundRobin;
      break;
    case DispatchPolicy::kLeastLoaded:
      r.policy = RoutePolicy::kLeastLoaded;
      break;
    case DispatchPolicy::kPowerOfTwo:
      r.policy = RoutePolicy::kPowerOfTwo;
      break;
  }
  r.load_window_s = config.load_window_s;
  r.dispatch_seed = config.dispatch_seed;
  r.admission = AdmissionMode::kNone;
  return r;
}

std::vector<int32_t> DispatchTrace(const std::vector<Request>& trace,
                                   const DispatchConfig& config) {
  return Router(ToRouterConfig(config)).Route(trace).assignment;
}

MultiInstanceRunner::MultiInstanceRunner(const Router& router,
                                         const ServingLoopConfig& loop,
                                         const RuntimeConfig& runtime,
                                         const CellRouterConfig& cells)
    : router_(router), loop_(loop), runtime_(runtime), cells_(cells) {}

MultiInstanceRunner::MultiInstanceRunner(const DispatchConfig& dispatch,
                                         const ServingLoopConfig& loop,
                                         const RuntimeConfig& runtime)
    : router_(Router(ToRouterConfig(dispatch))),
      loop_(loop),
      runtime_(runtime) {
  APT_CHECK(dispatch.n_instances >= 1);
}

StatusOr<MultiInstanceResult> MultiInstanceRunner::Run(
    const std::vector<Request>& trace, const SchedulerFactory& make_scheduler,
    const BackendFactory& make_backend, const SloSpec& slo) {
  // The static fleet is the FleetController's degenerate case: no scaling
  // rules, no migration — one infinite window that routes everything and
  // runs every instance to completion, bit-identical to the historical
  // shard-and-run runner.
  FleetConfig config;
  config.router = router_.config();
  config.loop = loop_;
  config.runtime = runtime_;
  config.cells = cells_;
  FleetController controller(config, router_);
  APT_ASSIGN_OR_RETURN(FleetResult result,
                       controller.Run(trace, make_scheduler, make_backend,
                                      slo));
  return std::move(result.serve);
}

}  // namespace aptserve
