#include "serve/multi_instance.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "runtime/thread_pool.h"

namespace aptserve {

const char* DispatchPolicyName(DispatchPolicy p) {
  switch (p) {
    case DispatchPolicy::kRoundRobin:
      return "round-robin";
    case DispatchPolicy::kLeastLoaded:
      return "least-loaded";
    case DispatchPolicy::kPowerOfTwo:
      return "power-of-two";
  }
  return "?";
}

RouterConfig ToRouterConfig(const DispatchConfig& config) {
  RouterConfig r;
  r.n_instances = config.n_instances;
  switch (config.policy) {
    case DispatchPolicy::kRoundRobin:
      r.policy = RoutePolicy::kRoundRobin;
      break;
    case DispatchPolicy::kLeastLoaded:
      r.policy = RoutePolicy::kLeastLoaded;
      break;
    case DispatchPolicy::kPowerOfTwo:
      r.policy = RoutePolicy::kPowerOfTwo;
      break;
  }
  r.load_window_s = config.load_window_s;
  r.dispatch_seed = config.dispatch_seed;
  r.admission = AdmissionMode::kNone;
  return r;
}

std::vector<int32_t> DispatchTrace(const std::vector<Request>& trace,
                                   const DispatchConfig& config) {
  return Router(ToRouterConfig(config)).Route(trace).assignment;
}

namespace {

void AddPrefixStats(const PrefixStats& from, PrefixStats* into) {
  into->lookups += from.lookups;
  into->hits += from.hits;
  into->matched_tokens += from.matched_tokens;
  into->shared_blocks += from.shared_blocks;
  into->cow_matches += from.cow_matches;
  into->inserted_blocks += from.inserted_blocks;
  into->evicted_blocks += from.evicted_blocks;
}

}  // namespace

MultiInstanceRunner::MultiInstanceRunner(const Router& router,
                                         const ServingLoopConfig& loop,
                                         const RuntimeConfig& runtime)
    : router_(router), loop_(loop), runtime_(runtime) {}

MultiInstanceRunner::MultiInstanceRunner(const DispatchConfig& dispatch,
                                         const ServingLoopConfig& loop,
                                         const RuntimeConfig& runtime)
    : router_(Router(ToRouterConfig(dispatch))),
      loop_(loop),
      runtime_(runtime) {
  APT_CHECK(dispatch.n_instances >= 1);
}

StatusOr<MultiInstanceResult> MultiInstanceRunner::Run(
    const std::vector<Request>& trace, const SchedulerFactory& make_scheduler,
    const BackendFactory& make_backend, const SloSpec& slo) {
  const RouteDecision decision = router_.Route(trace);
  const int32_t n = router_.config().n_instances;
  MultiInstanceResult result;
  result.per_instance.resize(n);
  result.requests_per_instance = decision.admitted_per_instance;
  result.rejected_requests = decision.rejected;
  result.deprioritized_requests = decision.deprioritized;
  result.prefill_computed_per_instance.assign(n, 0);
  result.prefill_skipped_per_instance.assign(n, 0);
  result.prefix_per_instance.resize(n);

  // Per-instance serving state. Shards and the scheduler/backend objects
  // are built serially in instance order — factories may capture shared
  // state — so only the independent serving loops run on the fleet pool.
  struct InstanceRun {
    std::vector<Request> sub;
    std::unique_ptr<Scheduler> scheduler;
    std::unique_ptr<ExecutionBackend> backend;
    ServingLoopResult out;
    Status status = Status::OK();
  };
  std::vector<InstanceRun> runs(n);
  for (size_t r = 0; r < trace.size(); ++r) {
    const int32_t inst = decision.assignment[r];
    if (inst == RouteDecision::kRejected) continue;
    Request req = trace[r];
    if (decision.best_effort[r]) req.best_effort = true;
    runs[inst].sub.push_back(std::move(req));
  }
  for (int32_t inst = 0; inst < n; ++inst) {
    APT_CHECK(static_cast<int32_t>(runs[inst].sub.size()) ==
              decision.admitted_per_instance[inst]);
    if (runs[inst].sub.empty()) continue;
    runs[inst].scheduler = make_scheduler();
    APT_ASSIGN_OR_RETURN(runs[inst].backend, make_backend(inst));
  }

  auto run_instance = [&](int32_t inst) {
    InstanceRun& run = runs[inst];
    if (run.sub.empty()) return;
    ServingLoop loop(run.backend.get(), loop_);
    StatusOr<ServingLoopResult> r = loop.Run(run.sub, run.scheduler.get(),
                                             slo);
    if (!r.ok()) {
      run.status = r.status();
      return;
    }
    run.out = std::move(*r);
  };

  const int32_t threads = std::min(runtime_.ResolvedNumThreads(), n);
  if (threads > 1) {
    // One task per instance epoch; the ParallelFor join is the epoch
    // barrier behind which reports merge in instance order.
    RuntimeConfig fleet_config = runtime_;
    fleet_config.num_threads = threads;
    runtime::ThreadPool fleet_pool(fleet_config);
    fleet_pool.ParallelForEach(0, n, 1, [&](int64_t inst) {
      run_instance(static_cast<int32_t>(inst));
    });
  } else {
    for (int32_t inst = 0; inst < n; ++inst) {
      run_instance(inst);
      if (!runs[inst].status.ok()) break;  // fail fast, as before
    }
  }
  // First failure in instance order, matching the serial runner's report.
  for (const InstanceRun& run : runs) {
    if (!run.status.ok()) return run.status;
  }

  for (int32_t inst = 0; inst < n; ++inst) {
    const ServingLoopResult& out = runs[inst].out;
    result.per_instance[inst] = out.report;
    result.prefill_computed_per_instance[inst] = out.prefill_tokens_computed;
    result.prefill_skipped_per_instance[inst] = out.prefill_tokens_skipped;
    result.prefix_per_instance[inst] = out.prefix;
    result.prefill_tokens_computed += out.prefill_tokens_computed;
    result.prefill_tokens_skipped += out.prefill_tokens_skipped;
    result.tokens_generated += out.tokens_generated;
    AddPrefixStats(out.prefix, &result.prefix);
  }

  result.combined =
      MergeReports(result.per_instance, result.requests_per_instance);
  FoldRejectedIntoReport(decision.rejected, &result.combined);
  return result;
}

SloReport MergeReports(const std::vector<SloReport>& reports,
                       const std::vector<int32_t>& request_counts) {
  APT_CHECK(reports.size() == request_counts.size());
  SloReport out;
  int64_t eligible_total = 0;
  double limit_time = 0.0;
  double batch_weighted = 0.0;
  for (size_t i = 0; i < reports.size(); ++i) {
    const SloReport& r = reports[i];
    // Attainment weight: eligible requests. Hand-built reports may not
    // fill best_effort_requests; counts minus best-effort equals eligible
    // for real reports and the raw count otherwise — bit-identical to the
    // pre-SLO-routing merge whenever no best-effort traffic exists.
    const int64_t n = request_counts[i] - r.best_effort_requests;
    eligible_total += n;
    out.slo_attainment += r.slo_attainment * n;
    out.ttft_attainment += r.ttft_attainment * n;
    out.tbt_attainment += r.tbt_attainment * n;
    out.total_serving_time = std::max(out.total_serving_time,
                                      r.total_serving_time);
    limit_time += r.batch_limit_time_ratio * r.total_serving_time;
    out.iterations += r.iterations;
    batch_weighted += r.mean_batch_size * static_cast<double>(r.iterations);
    out.preemptions += r.preemptions;
    out.conversions += r.conversions;
    out.eligible_requests += r.eligible_requests;
    out.slo_met_requests += r.slo_met_requests;
    out.best_effort_requests += r.best_effort_requests;
    out.rejected_requests += r.rejected_requests;
    for (double v : r.ttfts.samples()) out.ttfts.Add(v);
    for (double v : r.p99_tbts.samples()) out.p99_tbts.Add(v);
  }
  if (eligible_total > 0) {
    out.slo_attainment /= eligible_total;
    out.ttft_attainment /= eligible_total;
    out.tbt_attainment /= eligible_total;
  }
  double summed_time = 0.0;
  for (const SloReport& r : reports) summed_time += r.total_serving_time;
  out.batch_limit_time_ratio =
      summed_time > 0 ? limit_time / summed_time : 0.0;
  out.mean_batch_size =
      out.iterations > 0 ? batch_weighted / out.iterations : 0.0;
  out.mean_ttft = out.ttfts.Mean();
  out.p99_ttft = out.ttfts.P99();
  out.goodput_rps = out.total_serving_time > 0
                        ? out.slo_met_requests / out.total_serving_time
                        : 0.0;
  return out;
}

}  // namespace aptserve
