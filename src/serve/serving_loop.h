// ServingLoop: THE iteration-level serving loop (paper §2.2), shared by
// every execution path in the repo. Each iteration it (1) admits newly
// arrived requests, (2) asks the Scheduler for a batch plan, (3) applies
// preemptions/conversions/swaps against the backend's block pool,
// (4) executes the scheduled items through the ExecutionBackend, (5)
// advances the clock by the backend's iteration latency, and (6) emits
// tokens / completes requests, collecting TTFT/TBT/SLO metrics.
//
// Simulator (analytic), ServingEngine (real transformer) and the
// multi-instance fleet are all thin wrappers over this loop with different
// backends; preemption and swap semantics live here, once.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "serve/execution_backend.h"
#include "sim/metrics.h"
#include "sim/scheduler.h"
#include "sim/sim_request.h"
#include "workload/request.h"

namespace aptserve {

/// How a preempted request's cache is evicted (vLLM's two modes).
enum class PreemptionMode {
  /// Discard the cache; the request re-prefills later (the mode the
  /// paper's experiments use).
  kRecompute,
  /// Move the cache to host memory and move it back on resume. Falls back
  /// to recompute when the swap space is full, and to discard-and-recompute
  /// when the resume changes cache type (a swapped copy of the old type is
  /// useless after a conversion).
  kSwap,
};

struct ServingLoopConfig {
  /// Hard cap on scheduled items per iteration (vLLM max_num_seqs).
  int32_t max_batch_size = 256;
  /// Safety valve: abort after this many iterations.
  int64_t max_iterations = 5'000'000;
  PreemptionMode preemption_mode = PreemptionMode::kRecompute;
};

struct ServingLoopResult {
  SloReport report;
  /// Per-request latency records (TTFT, TBT samples, finish time).
  std::unordered_map<RequestId, RequestRecord> records;
  /// Iterations that were pure-prefill / pure-decode / mixed.
  int64_t prefill_iterations = 0;
  int64_t decode_iterations = 0;
  int64_t mixed_iterations = 0;
  int32_t peak_blocks = 0;
  int64_t swap_outs = 0;
  int64_t swap_ins = 0;
  int64_t tokens_generated = 0;
  /// Sum of executed-iteration latencies (the busy part of the timeline).
  double compute_seconds = 0.0;
  /// Prefill positions the backend actually processed vs. adopted from its
  /// prefix index (both zero-cost identical to pre-sharing accounting when
  /// the backend has no index).
  int64_t prefill_tokens_computed = 0;
  int64_t prefill_tokens_skipped = 0;
  /// Prefix-sharing hit accounting (all zeros without an index).
  PrefixStats prefix;
};

class ServingLoop {
 public:
  /// The backend must outlive the loop.
  ServingLoop(ExecutionBackend* backend, const ServingLoopConfig& config);

  /// Serves `trace` to completion under `scheduler` and reports metrics
  /// against `slo`.
  StatusOr<ServingLoopResult> Run(const std::vector<Request>& trace,
                                  Scheduler* scheduler, const SloSpec& slo);

 private:
  ExecutionBackend* backend_;
  ServingLoopConfig config_;
};

}  // namespace aptserve
