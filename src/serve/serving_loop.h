// ServingLoop: THE iteration-level serving loop (paper §2.2), shared by
// every execution path in the repo. Each iteration it (1) admits newly
// arrived requests, (2) asks the Scheduler for a batch plan, (3) applies
// preemptions/conversions/swaps against the backend's block pool,
// (4) executes the scheduled items through the ExecutionBackend, (5)
// advances the clock by the backend's iteration latency, and (6) emits
// tokens / completes requests, collecting TTFT/TBT/SLO metrics.
//
// Simulator (analytic), ServingEngine (real transformer) and the
// multi-instance fleet are all thin wrappers over this loop with different
// backends; preemption and swap semantics live here, once.
//
// The loop body is a resumable state machine (ServingLoopState): Start()
// registers a trace, Step() runs exactly one classic loop iteration, and
// Finish() produces the report. ServingLoop::Run composes them and is
// bit-identical to the historical monolithic loop. The event-driven
// FleetController (serve/fleet_controller.h) drives states directly,
// injecting live-routed arrivals mid-run (Inject) and moving queued or
// preempted requests between instances with their cache state
// (Extract/Receive — live migration).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "runtime/clock.h"
#include "serve/execution_backend.h"
#include "sim/metrics.h"
#include "sim/scheduler.h"
#include "sim/sim_request.h"
#include "workload/request.h"

namespace aptserve {

/// How a preempted request's cache is evicted (vLLM's two modes).
enum class PreemptionMode {
  /// Discard the cache; the request re-prefills later (the mode the
  /// paper's experiments use).
  kRecompute,
  /// Move the cache to host memory and move it back on resume. Falls back
  /// to recompute when the swap space is full, and to discard-and-recompute
  /// when the resume changes cache type (a swapped copy of the old type is
  /// useless after a conversion).
  kSwap,
};

struct ServingLoopConfig {
  /// Hard cap on scheduled items per iteration (vLLM max_num_seqs).
  int32_t max_batch_size = 256;
  /// Safety valve: abort after this many iterations.
  int64_t max_iterations = 5'000'000;
  PreemptionMode preemption_mode = PreemptionMode::kRecompute;
};

struct ServingLoopResult {
  SloReport report;
  /// Per-request latency records (TTFT, TBT samples, finish time).
  std::unordered_map<RequestId, RequestRecord> records;
  /// Iterations that were pure-prefill / pure-decode / mixed.
  int64_t prefill_iterations = 0;
  int64_t decode_iterations = 0;
  int64_t mixed_iterations = 0;
  int32_t peak_blocks = 0;
  int64_t swap_outs = 0;
  int64_t swap_ins = 0;
  int64_t tokens_generated = 0;
  /// Sum of executed-iteration latencies (the busy part of the timeline).
  double compute_seconds = 0.0;
  /// Prefill positions the backend actually processed vs. adopted from its
  /// prefix index (both zero-cost identical to pre-sharing accounting when
  /// the backend has no index).
  int64_t prefill_tokens_computed = 0;
  int64_t prefill_tokens_skipped = 0;
  /// Prefix-sharing hit accounting (all zeros without an index).
  PrefixStats prefix;
  /// Wall-clock timestamps (async serving mode; empty without an attached
  /// wall clock). The fleet layer Merge()s per-instance collectors and
  /// reports once.
  WallClockMetrics wall_metrics;
};

/// Everything that travels when a request migrates between instances: its
/// immutable spec, the loop's mirrored progress, the backend cache image
/// (cache/migration_image.h), and its metrics record so TTFT/TBT history
/// survives the move.
struct MigratedRequest {
  Request spec;
  CacheType cache_type = CacheType::kKV;
  int32_t generated = 0;
  int32_t cached_tokens = 0;
  int32_t prefill_progress = 0;
  bool has_first_token = false;
  TimePoint last_token_time = 0.0;
  int32_t preemptions = 0;
  int32_t conversions = 0;
  /// When the request had (or would have) become schedulable at the source.
  double available_at = 0.0;
  MigrationImage image;
  RequestRecord record;
  bool has_last_token = false;
  TimePoint last_token = 0.0;
  /// Wall-clock stamps (async mode only), so real TTFT/TBT survive the hop.
  bool has_wall_record = false;
  WallRequestRecord wall_record;
  /// Trace linkage (zero when the source had no trace sink): the flow id of
  /// the export event and its timestamp, so the import event can terminate
  /// the cross-track arrow at a stamp >= the export's even when the
  /// destination's virtual clock lags the source's.
  uint64_t obs_flow = 0;
  double obs_export_ts = 0.0;
};

/// The serving loop as a resumable state machine. One instance == one
/// serving instance's timeline; the fleet controller interleaves many of
/// these in virtual time.
class ServingLoopState {
 public:
  /// What one Step() did with its iteration.
  enum class Progress {
    kExecuted,     ///< at least one scheduled item ran
    kFastForward,  ///< queues empty; clock jumped to the next availability
    kIdle,         ///< work exists but nothing executed (memory wall etc.)
    kDrained,      ///< nothing runnable and nothing pending; no iteration
                   ///< was consumed — the instance is parked
  };

  /// The backend and scheduler must outlive the state.
  ServingLoopState(ExecutionBackend* backend, const ServingLoopConfig& config);

  /// Registers `trace` (re-sorted by arrival defensively) and prepares the
  /// backend. Must be called exactly once, before Step/Inject.
  Status Start(const std::vector<Request>& trace, Scheduler* scheduler,
               const SloSpec& slo);

  /// Runs exactly one iteration of the classic serving loop (admission,
  /// plan, preempt, execute, price, emit). kDrained consumes no iteration.
  StatusOr<Progress> Step();

  /// Registers one more request mid-run (live routing): it becomes
  /// schedulable once the clock reaches `available_at` (>= its arrival).
  /// `wall_arrival` (with an attached wall clock) stamps the request's
  /// real arrival time for wall metrics; < 0 reads the clock now.
  Status Inject(const Request& r, double available_at,
                double wall_arrival = -1.0);

  /// Removes a queued/preempted request for migration: its cache state is
  /// exported from the backend (shared prefix blocks stay for their other
  /// owners) and its metrics record extracted. Only kWaiting, non-swapped
  /// requests are migratable — running decodes drain in place.
  StatusOr<MigratedRequest> Extract(RequestId id);

  /// Installs a migrated request: imports its cache into the backend
  /// (dedupe via this instance's prefix index; cold fallback when the pool
  /// is full) and re-adopts its metrics record. It becomes schedulable at
  /// `base_available_at` plus `transfer_delay(import)` — the delay runs
  /// after the import so only bytes that actually crossed the interconnect
  /// (post-dedupe) are priced. Null delay = instantaneous.
  StatusOr<MigrationImport> Receive(
      MigratedRequest m, double base_available_at,
      const std::function<double(const MigrationImport&)>& transfer_delay =
          nullptr);

  /// Closes the run: drain checks, backend Finalize, report. The state is
  /// unusable afterwards.
  StatusOr<ServingLoopResult> Finish();

  // ---- Wall-clock seam (async serving mode) --------------------------------

  /// Attaches a real-time clock: from now on every emitted token and finish
  /// is additionally wall-stamped into the result's WallClockMetrics, and
  /// finishes are logged for TakeRecentFinishes. Purely observational — the
  /// virtual timeline, scheduling, and token streams are unaffected, which
  /// is exactly the async mode's determinism contract. Call before Step.
  void AttachWallClock(const runtime::Clock* clock);

  /// Advances the virtual clock to (at least) `wall_now`, so injected
  /// requests whose availability was stamped in wall time become admissible
  /// as real time passes. Monotone; no-op when behind now(). The async
  /// worker calls this before each Step, fusing the two timelines.
  void SyncClock(double wall_now) {
    if (wall_now > now_) now_ = wall_now;
  }

  /// Drains the (id, virtual finish time) log of requests finished since
  /// the last call. Empty unless a wall clock is attached — the async
  /// worker's completion feed back to the controller.
  std::vector<std::pair<RequestId, double>> TakeRecentFinishes();

  // ---- Observability seam (src/obs/) ---------------------------------------

  /// Attaches a trace sink (on this instance's track) and/or a metrics
  /// registry; either may be empty/null. Purely observational, same
  /// contract as AttachWallClock: scheduling, the virtual timeline, and
  /// token streams are bit-identical with or without it. Events are
  /// stamped in wall time when a wall clock is attached (attach it first
  /// in async mode) and in virtual seconds otherwise. Call before Step.
  void AttachObservability(obs::TraceSink sink,
                           obs::MetricsRegistry* metrics = nullptr,
                           int32_t instance_id = 0);

  /// The attached sink (empty when tracing is off). The async worker
  /// borrows it to emit shed events on this instance's track.
  const obs::TraceSink& trace_sink() const { return trace_; }

  // ---- Introspection (fleet controller policies / planner) -----------------
  bool started() const { return started_; }
  double now() const { return now_; }
  int64_t iterations() const { return iterations_done_; }
  /// Every registered request finished here or migrated away.
  bool AllServed() const {
    return finished_ + migrated_out_ == slots_.size();
  }
  size_t NumRegistered() const { return slots_.size(); }
  /// Requests finished on THIS instance (migrated-in included, -out not).
  int64_t NumServed() const { return static_cast<int64_t>(finished_); }
  int32_t NumWaiting() const;
  int32_t NumRunning() const;
  int32_t NumUnfinished() const {
    return static_cast<int32_t>(slots_.size() - finished_ - migrated_out_);
  }
  /// Migration candidates in registration order: waiting, not swapped.
  std::vector<RequestId> MigratableWaiting() const;
  /// (TTFT-met, total) over requests finished at time >= `since` — the
  /// SLO-attainment-guard scaling policy's rolling window.
  std::pair<int64_t, int64_t> TtftFinishesSince(double since) const;

 private:
  struct Slot {
    SimRequest sr;
    double available_at = 0.0;
    uint64_t seq = 0;
    bool migrated_out = false;
    /// Trace bookkeeping: when the request joined this instance's queue
    /// (in the trace clock frame) and whether its queue-wait span closed.
    double obs_enqueued_at = 0.0;
    bool obs_first_run = false;
  };

  Status Register(const Request& r, double available_at, bool admit_backend);
  void InsertPending(Slot* slot);

  ExecutionBackend* backend_;
  ServingLoopConfig config_;
  Scheduler* scheduler_ = nullptr;
  SloSpec slo_;
  MetricsCollector metrics_;
  ServingLoopResult result_;
  /// Real-time observer (async mode); null in the deterministic modes.
  const runtime::Clock* wall_clock_ = nullptr;
  WallClockMetrics wall_metrics_;
  std::vector<std::pair<RequestId, double>> recent_finishes_;

  /// Observability (all optional; see AttachObservability). Metric handles
  /// are resolved once at attach so the hot path is pointer-null checks
  /// plus relaxed atomics.
  obs::TraceSink trace_;
  obs::MetricsRegistry* obs_metrics_ = nullptr;
  struct ObsHandles {
    obs::Counter* preempt_scheduler = nullptr;
    obs::Counter* preempt_memory_wall = nullptr;
    obs::Counter* preempt_swap_out = nullptr;
    obs::Counter* preempt_conversion = nullptr;
    obs::Counter* tokens = nullptr;
    obs::Counter* swap_outs = nullptr;
    obs::Counter* swap_ins = nullptr;
    obs::Counter* prefix_hit_tokens = nullptr;
    obs::Gauge* queue_high_water = nullptr;
    obs::Gauge* pool_peak = nullptr;
    obs::HistogramMetric* iteration_seconds = nullptr;
  } obs_;
  /// Timestamp in the trace clock frame (wall when attached, else virtual).
  double ObsNow() const { return wall_clock_ ? wall_clock_->Now() : now_; }

  std::vector<std::unique_ptr<Slot>> slots_;
  std::unordered_map<RequestId, Slot*> index_;
  /// Not-yet-available requests, sorted by (available_at, seq).
  std::deque<Slot*> pending_;
  /// Admitted requests in admission order (the scheduler's queue order).
  std::vector<Slot*> active_;
  /// (finish time, met TTFT) log feeding TtftFinishesSince.
  std::vector<std::pair<double, bool>> finish_log_;

  double now_ = 0.0;
  size_t finished_ = 0;
  size_t migrated_out_ = 0;
  int64_t iterations_done_ = 0;
  int32_t consecutive_idle_ = 0;
  uint64_t next_seq_ = 0;
  bool started_ = false;
  bool finished_run_ = false;
};

class ServingLoop {
 public:
  /// The backend must outlive the loop.
  ServingLoop(ExecutionBackend* backend, const ServingLoopConfig& config);

  /// Serves `trace` to completion under `scheduler` and reports metrics
  /// against `slo`.
  StatusOr<ServingLoopResult> Run(const std::vector<Request>& trace,
                                  Scheduler* scheduler, const SloSpec& slo);

 private:
  ExecutionBackend* backend_;
  ServingLoopConfig config_;
};

}  // namespace aptserve
