#include "serve/inference_backend.h"

#include <chrono>
#include <string>
#include <utility>

#include "common/logging.h"
#include "sim/cluster_spec.h"
#include "sim/model_spec.h"
#include "workload/token_ids.h"

namespace aptserve {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

CostModel MakeRhoCarrier(double rho) {
  // The cost model's only role on this backend is carrying rho to the
  // scheduler's quantification model (paper Eq. 6).
  CostModel cm(ModelSpec::Opt13B(), ClusterSpec::ForModel(ModelSpec::Opt13B()));
  cm.SetRhoOverride(rho);
  return cm;
}

int32_t SwapCapacity(const InferenceBackendOptions& options,
                     int32_t pool_blocks) {
  return options.swap_blocks > 0 ? options.swap_blocks : 4 * pool_blocks;
}

InferenceEngine* CheckNotNull(InferenceEngine* engine) {
  APT_CHECK(engine != nullptr);
  return engine;
}

}  // namespace

InferenceBackend::InferenceBackend(InferenceEngine* engine,
                                   const InferenceBackendOptions& options)
    : engine_(CheckNotNull(engine)),
      options_(options),
      cost_model_(MakeRhoCarrier(options.rho_seconds_per_token)),
      swap_(SwapCapacity(options, engine_->pool().num_blocks())),
      prompt_rng_(options.prompt_seed) {
  if (options.enable_prefix_sharing) engine_->EnablePrefixSharing();
}

InferenceBackend::InferenceBackend(const ModelConfig& model,
                                   uint64_t weight_seed, int32_t num_blocks,
                                   int32_t block_size,
                                   const SamplingParams& sampling,
                                   const InferenceBackendOptions& options)
    : owned_engine_(std::make_unique<InferenceEngine>(
          model, weight_seed, num_blocks, block_size, options.runtime)),
      engine_(owned_engine_.get()),
      options_(options),
      cost_model_(MakeRhoCarrier(options.rho_seconds_per_token)),
      swap_(SwapCapacity(options, num_blocks)),
      prompt_rng_(options.prompt_seed) {
  engine_->SetSampling(sampling, weight_seed ^ 0x5851f42dULL);
  engine_->SetEncodingPolicy(options.cache_encoding);
  if (options.enable_prefix_sharing) engine_->EnablePrefixSharing();
}

Status InferenceBackend::Prepare(const std::vector<SimRequest>& reqs) {
  const ModelConfig& cfg = engine_->model().config();
  // Validate the whole trace before mutating the engine, so a rejected
  // trace leaves a reusable engine behind.
  for (const SimRequest& sr : reqs) {
    if (sr.spec.total_len() + 1 > cfg.max_seq_len) {
      return Status::InvalidArgument(
          "request " + std::to_string(sr.spec.id) + " exceeds model context");
    }
  }
  for (const SimRequest& sr : reqs) {
    APT_RETURN_NOT_OK(Register(sr));
  }
  return Status::OK();
}

Status InferenceBackend::Register(const SimRequest& sr) {
  const ModelConfig& cfg = engine_->model().config();
  // Prompts come from the trace when it carries token content (prefix
  // sharing matches on it). Length-only traces: with sharing enabled,
  // the same order-independent synthesizer the analytic backend uses
  // (so hit accounting stays comparable across backends when their
  // seed/vocab agree); with sharing off, the legacy sequential stream,
  // bit-identical to pre-sharing behaviour. Registration order must match
  // arrival order for that stream to reproduce a whole-shard Prepare.
  std::vector<int32_t> prompt;
  if (sr.spec.has_token_ids()) {
    if (static_cast<int32_t>(sr.spec.token_ids.size()) !=
        sr.spec.prompt_len) {
      return Status::InvalidArgument(
          "request " + std::to_string(sr.spec.id) +
          " token_ids size does not match prompt_len");
    }
    prompt = sr.spec.token_ids;  // AddRequest validates the vocab range
  } else if (options_.enable_prefix_sharing) {
    prompt = DeterministicPromptTokens(sr.spec.id, options_.prompt_seed,
                                       sr.spec.prompt_len, cfg.vocab_size);
  } else {
    prompt.resize(sr.spec.prompt_len);
    for (int32_t& t : prompt) {
      t = static_cast<int32_t>(prompt_rng_.UniformInt(0, cfg.vocab_size - 1));
    }
  }
  return engine_->AddRequest(sr.spec.id, std::move(prompt), CacheType::kKV);
}

Status InferenceBackend::Admit(const SimRequest& sr) {
  const ModelConfig& cfg = engine_->model().config();
  if (sr.spec.total_len() + 1 > cfg.max_seq_len) {
    return Status::InvalidArgument(
        "request " + std::to_string(sr.spec.id) + " exceeds model context");
  }
  return Register(sr);
}

StatusOr<MigrationImage> InferenceBackend::ExportRequest(const SimRequest& sr) {
  if (swap_.Contains(sr.spec.id)) {
    return Status::FailedPrecondition(
        "swapped-out requests migrate cold, not live");
  }
  return engine_->ExportRequest(sr.spec.id);
}

StatusOr<MigrationImport> InferenceBackend::ImportRequest(
    const SimRequest& sr, const MigrationImage& image) {
  const ModelConfig& cfg = engine_->model().config();
  if (sr.spec.total_len() + 1 > cfg.max_seq_len) {
    return Status::InvalidArgument(
        "request " + std::to_string(sr.spec.id) + " exceeds model context");
  }
  return engine_->ImportRequest(sr.spec.id, image);
}

void InferenceBackend::BeginIteration() {
  APT_CHECK_MSG(pending_.empty(),
                "previous iteration left unflushed pending steps");
  iteration_start_ = NowSeconds();
  executed_items_ = 0;
}

Status InferenceBackend::FlushPending() {
  if (pending_.empty()) return Status::OK();
  std::vector<PendingStep> steps = std::move(pending_);
  pending_.clear();
  return engine_->ExecuteSteps(&steps);
}

StatusOr<double> InferenceBackend::EndIteration() {
  // Run the deferred forwards of this iteration's batch — in parallel
  // across the engine's pool when it has one — before the clock is read,
  // so measured latency covers the whole batch.
  APT_RETURN_NOT_OK(FlushPending());
  if (options_.virtual_timing) {
    // Swap-outs of iterations that executed nothing carry forward to the
    // next executed iteration, mirroring the analytic backend's
    // carry_swap_bytes_ accounting.
    const double latency =
        options_.virtual_item_seconds * (executed_items_ + carry_items_);
    carry_items_ = 0;
    return latency;
  }
  return NowSeconds() - iteration_start_;
}

Status InferenceBackend::Release(const SimRequest& sr) {
  // Recompute preemption: the engine keeps token state and discards any
  // host swap copy; mirror the capacity account.
  if (swap_.Contains(sr.spec.id)) {
    APT_RETURN_NOT_OK(swap_.Drop(sr.spec.id));
  }
  return engine_->Preempt(sr.spec.id);
}

Status InferenceBackend::Convert(const SimRequest& sr, CacheType new_type) {
  // Paper §5: a type switch discards the cache (a swapped copy of the old
  // type is invalidated too) and the next prefill rebuilds it.
  if (swap_.Contains(sr.spec.id)) {
    APT_RETURN_NOT_OK(swap_.Drop(sr.spec.id));
  }
  APT_RETURN_NOT_OK(engine_->Preempt(sr.spec.id));
  return engine_->ConvertCacheType(sr.spec.id, new_type);
}

StatusOr<bool> InferenceBackend::TrySwapOut(const SimRequest& sr) {
  const CacheMap* map = engine_->assigner().Find(sr.spec.id);
  APT_CHECK(map != nullptr);
  // Reserve host capacity first; a full swap space falls back to recompute
  // exactly like the analytic backend.
  if (!swap_.SwapOut(sr.spec.id, sr.cache_type, sr.cached_tokens,
                     map->TotalBlocks())
           .ok()) {
    return false;
  }
  Status st = engine_->SwapOut(sr.spec.id);
  if (!st.ok()) {
    APT_RETURN_NOT_OK(swap_.Drop(sr.spec.id));
    return false;
  }
  ++carry_items_;  // the payload copy costs virtual time too
  return true;
}

StatusOr<bool> InferenceBackend::TrySwapIn(const SimRequest& sr) {
  APT_CHECK(swap_.Contains(sr.spec.id));
  Status st = engine_->SwapIn(sr.spec.id);
  if (st.IsOutOfMemory()) return false;  // stays swapped; retried later
  APT_RETURN_NOT_OK(st);
  APT_ASSIGN_OR_RETURN(SwapSpace::Entry entry, swap_.SwapIn(sr.spec.id));
  (void)entry;
  ++executed_items_;  // the payload copy costs real (or virtual) time
  return true;
}

Status InferenceBackend::FlushIfPending(RequestId id) {
  // A scheduler may (pathologically) schedule the same request twice in
  // one plan; serial execution would run the first step before preparing
  // the second, so the deferred path must flush to stay equivalent.
  for (const PendingStep& step : pending_) {
    if (step.id == id) return FlushPending();
  }
  return Status::OK();
}

StatusOr<ExecutionBackend::StepOutcome> InferenceBackend::ExecutePrefillChunk(
    const SimRequest& sr, CacheType cache_type, int32_t chunk) {
  if (!engine_->assigner().Has(sr.spec.id)) {
    // Fresh pass: adopt the scheduler's cache-type choice.
    APT_RETURN_NOT_OK(engine_->ConvertCacheType(sr.spec.id, cache_type));
  }
  APT_RETURN_NOT_OK(FlushIfPending(sr.spec.id));
  auto r = engine_->PreparePrefillChunk(sr.spec.id, chunk);
  if (!r.ok() && r.status().IsOutOfMemory()) return StepOutcome{true, false};
  if (!r.ok()) return r.status();
  ++executed_items_;
  StepOutcome outcome;
  outcome.token = r->completes;
  outcome.computed = r->upto - r->start;
  outcome.prefix_skipped = r->prefix_skipped;
  pending_.push_back(std::move(*r));
  return outcome;
}

StatusOr<ExecutionBackend::StepOutcome> InferenceBackend::ExecuteDecode(
    const SimRequest& sr) {
  APT_RETURN_NOT_OK(FlushIfPending(sr.spec.id));
  auto r = engine_->PrepareDecode(sr.spec.id);
  if (!r.ok() && r.status().IsOutOfMemory()) return StepOutcome{true, false};
  if (!r.ok()) return r.status();
  ++executed_items_;
  pending_.push_back(std::move(*r));
  return StepOutcome{false, true};
}

Status InferenceBackend::OnFinish(const SimRequest& sr) {
  const GenerationState* gs = engine_->Find(sr.spec.id);
  APT_CHECK(gs != nullptr);
  finished_tokens_[sr.spec.id] = gs->tokens;
  if (options_.finished_sink != nullptr) {
    (*options_.finished_sink)[sr.spec.id] = gs->tokens;
  }
  return engine_->RemoveRequest(sr.spec.id);
}

Status InferenceBackend::Finalize() {
  APT_CHECK_MSG(pending_.empty(),
                "run finished with unflushed pending steps");
  APT_CHECK_MSG(swap_.used_blocks() == 0,
                "swap space must drain by the end of the run");
  return Status::OK();
}

}  // namespace aptserve
