// InferenceBackend: the execution backend that drives the *real* mini
// transformer. Where CostModelBackend advances a virtual clock with an
// analytic model, this performs actual prefills and decode steps on an
// InferenceEngine — real float blocks, real hybrid-cache memory — and
// reports measured wall-clock iteration latencies (or a deterministic
// virtual latency for reproducible tests). Swap-based preemption moves the
// real cache payload through the engine's host staging buffer, with a
// SwapSpace capacity account mirroring the simulator's so both backends
// share the same full-swap-space fallback behaviour.
//
// Batch execution (runtime layer): scheduled items are *prepared* (checked
// and allocated) serially in schedule order as the loop applies them, then
// the deferred transformer forwards run concurrently across the engine's
// thread pool when EndIteration flushes the batch. Sampling happens behind
// a serial barrier in schedule order, so token streams, SLO reports and
// scheduler decisions are bit-identical to serial execution at any thread
// count (tests/parallel_determinism_test.cc pins this).
//
// Caveat (DESIGN.md): with a serial runtime a CPU executes batch items one
// by one; with num_threads > 1 the items of an iteration are amortized
// across cores, narrowing the gap to the GPU-style batching the analytic
// CostModel assumes.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/swap_space.h"
#include "common/rng.h"
#include "engine/inference_engine.h"
#include "serve/execution_backend.h"
#include "sim/cost_model.h"

namespace aptserve {

struct InferenceBackendOptions {
  /// Seed for synthesizing prompt tokens from trace prompt lengths.
  uint64_t prompt_seed = 7;
  /// Runtime (thread pool) configuration for the owned-engine constructor;
  /// ignored when borrowing an engine (the engine's own pool is used).
  RuntimeConfig runtime;
  /// Host swap capacity in blocks; <= 0 defaults to 4x the GPU pool.
  int32_t swap_blocks = -1;
  /// Measured rho (paper Eq. 6) carried to the scheduler through the
  /// backend's cost model; 0 disables the hidden-cache decode surcharge.
  double rho_seconds_per_token = 0.0;
  /// When true, iteration latency is `virtual_item_seconds` per executed
  /// item instead of measured wall time — same seeds then give the same
  /// timeline, tokens and TTFT/TBT (used by determinism tests).
  bool virtual_timing = false;
  double virtual_item_seconds = 1e-3;
  /// Enables the engine's prefix index: fresh KV prefills adopt blocks
  /// matched on real prompt content and skip the matched compute. Token
  /// streams are unaffected (causal K/V of equal prefixes are
  /// bit-identical); only latency and memory change.
  bool enable_prefix_sharing = false;
  /// Per-tier block encoding (cache/cache_types.h), applied to the owned
  /// engine at construction: int8 tiers hold and migrate their blocks at
  /// ~kInt8SlotPack x density with bounded quantization error. The default
  /// all-fp32 policy leaves token streams bit-identical to the
  /// pre-quantization backend. Ignored when borrowing an engine (the
  /// engine owner configures it).
  CacheEncodingPolicy cache_encoding;
  /// Optional sink receiving every finished request's full token sequence
  /// (prompt + generated): fleet owners read tokens after the controller
  /// destroys per-instance backends. Borrowed, must outlive the backend,
  /// and must be private to this backend (instances step concurrently).
  std::unordered_map<RequestId, std::vector<int32_t>>* finished_sink = nullptr;
};

class InferenceBackend : public ExecutionBackend {
 public:
  /// Borrows `engine` (must outlive the backend).
  InferenceBackend(InferenceEngine* engine, const InferenceBackendOptions& options);

  /// Owns a freshly built engine (multi-instance fleets build one engine
  /// per instance through this constructor).
  InferenceBackend(const ModelConfig& model, uint64_t weight_seed,
                   int32_t num_blocks, int32_t block_size,
                   const SamplingParams& sampling,
                   const InferenceBackendOptions& options);

  std::string name() const override { return "inference-engine"; }
  Status Prepare(const std::vector<SimRequest>& reqs) override;
  Status Admit(const SimRequest& sr) override;
  StatusOr<MigrationImage> ExportRequest(const SimRequest& sr) override;
  StatusOr<MigrationImport> ImportRequest(const SimRequest& sr,
                                          const MigrationImage& image) override;
  const BlockPool* pool() const override { return &engine_->pool(); }
  const HybridCacheAssigner* assigner() const override {
    return &engine_->assigner();
  }
  const CostModel* cost_model() const override { return &cost_model_; }
  void BeginIteration() override;
  StatusOr<double> EndIteration() override;
  double IdleAdvanceSeconds() const override { return 1e-4; }
  Status Release(const SimRequest& sr) override;
  Status Convert(const SimRequest& sr, CacheType new_type) override;
  StatusOr<bool> TrySwapOut(const SimRequest& sr) override;
  StatusOr<bool> TrySwapIn(const SimRequest& sr) override;
  StatusOr<StepOutcome> ExecutePrefillChunk(const SimRequest& sr,
                                            CacheType cache_type,
                                            int32_t chunk) override;
  StatusOr<StepOutcome> ExecuteDecode(const SimRequest& sr) override;
  Status OnFinish(const SimRequest& sr) override;
  Status Finalize() override;
  int64_t swap_outs() const override { return swap_.total_swap_outs(); }
  int64_t swap_ins() const override { return swap_.total_swap_ins(); }
  const PrefixStats* prefix_stats() const override {
    const PrefixIndex* index = engine_->prefix_index();
    return index ? &index->stats() : nullptr;
  }
  int32_t ReclaimCache(int32_t min_blocks) override {
    PrefixIndex* index = engine_->prefix_index();
    return index ? index->EvictLru(min_blocks) : 0;
  }

  InferenceEngine& engine() { return *engine_; }
  /// Full token sequences (prompt + generated) of finished requests,
  /// captured before the engine drops them. Moves the map out; call once,
  /// after the run.
  std::unordered_map<RequestId, std::vector<int32_t>> TakeFinishedTokens() {
    return std::move(finished_tokens_);
  }

 private:
  /// Prompt synthesis + engine registration for one request (Prepare/Admit).
  Status Register(const SimRequest& sr);
  /// Computes all deferred steps (parallel) and samples in schedule order.
  Status FlushPending();
  /// Flushes early iff `id` already has a deferred step this iteration.
  Status FlushIfPending(RequestId id);

  std::unique_ptr<InferenceEngine> owned_engine_;
  InferenceEngine* engine_;
  InferenceBackendOptions options_;
  /// Carrier for rho; the scheduler's quantification model reads it from
  /// SchedulerInput::cost_model.
  CostModel cost_model_;
  SwapSpace swap_;
  Rng prompt_rng_;
  double iteration_start_ = 0.0;
  int32_t executed_items_ = 0;
  /// Steps prepared this iteration whose compute is deferred to the
  /// EndIteration flush (parallel across the engine's pool).
  std::vector<PendingStep> pending_;
  /// Virtual-timing cost of swap-outs not yet charged to an executed
  /// iteration (the engine-side analogue of carry_swap_bytes_).
  int32_t carry_items_ = 0;
  std::unordered_map<RequestId, std::vector<int32_t>> finished_tokens_;
};

}  // namespace aptserve
