#include "serve/router.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"

namespace aptserve {

const char* RoutePolicyName(RoutePolicy p) {
  switch (p) {
    case RoutePolicy::kRoundRobin:
      return "round-robin";
    case RoutePolicy::kLeastLoaded:
      return "least-loaded";
    case RoutePolicy::kPowerOfTwo:
      return "power-of-two";
    case RoutePolicy::kLeastOutstandingWork:
      return "least-outstanding-work";
    case RoutePolicy::kPrefixAffinity:
      return "prefix-affinity";
  }
  return "?";
}

namespace {

/// Per-instance mirror of a PrefixIndex's *content*: a radix tree over
/// full block_size token chunks of the prompts routed to that instance.
/// Matching follows PrefixIndex::Match's full-block rule, so the router's
/// affinity score approximates the match the instance's real index will
/// report once those prompts have prefilled (approximates, not equals:
/// the real index also COW-matches partial tail blocks, LRU-evicts under
/// pool pressure, and indexes only completed prefills).
///
/// The node count is capped (RouterConfig::affinity_mirror_max_nodes):
/// past the cap Insert evicts the least-recently-touched *leaf* chunks,
/// like PrefixIndex::EvictLru, so a long run's mirror stays bounded while
/// hot shared prefixes (re-touched on every insert through them) survive.
class AffinityMirror {
 public:
  AffinityMirror(int32_t block_size, int64_t max_nodes)
      : block_size_(block_size), max_nodes_(max_nodes) {}

  /// Matched positions: block_size per matched chunk, capped (like index
  /// callers) at prompt_len - 1 so the score never exceeds what a real
  /// adoption could use. `nodes_walked` (optional) accumulates the radix
  /// lookups performed — the decision-cost term; pass null for
  /// observational re-scores so tracing never changes the counters.
  int32_t MatchTokens(const std::vector<int32_t>& tokens,
                      int64_t* nodes_walked = nullptr) const {
    const Node* node = root_.get();
    int32_t matched = 0;
    const int32_t usable = static_cast<int32_t>(tokens.size()) - 1;
    std::vector<int32_t> chunk(block_size_);
    while (matched + block_size_ <= usable) {
      chunk.assign(tokens.begin() + matched,
                   tokens.begin() + matched + block_size_);
      if (nodes_walked != nullptr) ++*nodes_walked;
      auto it = node->children.find(chunk);
      if (it == node->children.end()) break;
      node = it->second.get();
      matched += block_size_;
    }
    return matched;
  }

  struct InsertDelta {
    int64_t created = 0;
    int64_t evicted = 0;
  };

  InsertDelta Insert(const std::vector<int32_t>& tokens) {
    InsertDelta delta;
    Node* node = root_.get();
    const int32_t n = static_cast<int32_t>(tokens.size());
    for (int32_t at = 0; at + block_size_ <= n; at += block_size_) {
      std::vector<int32_t> chunk(tokens.begin() + at,
                                 tokens.begin() + at + block_size_);
      auto it = node->children.find(chunk);
      if (it == node->children.end()) {
        auto child = std::make_unique<Node>();
        child->parent = node;
        it = node->children.emplace(std::move(chunk), std::move(child)).first;
        it->second->self = it;
        ++num_nodes_;
        ++delta.created;
      }
      node = it->second.get();
      Touch(node);
    }
    // Cap after the walk completes so eviction can never invalidate the
    // path the insert is standing on (at tiny caps the freshly inserted
    // tail is itself evictable — correct, just wasteful).
    while (num_nodes_ > max_nodes_ && EvictOldestLeaf()) ++delta.evicted;
    return delta;
  }

  int64_t num_nodes() const { return num_nodes_; }

 private:
  struct Node {
    std::map<std::vector<int32_t>, std::unique_ptr<Node>> children;
    Node* parent = nullptr;
    /// This node's slot in parent->children (std::map iterators are
    /// stable), so eviction erases without re-hashing the chunk key.
    std::map<std::vector<int32_t>, std::unique_ptr<Node>>::iterator self;
    /// Last-touch tick; unique per touch, so LRU order is total and
    /// eviction is deterministic.
    uint64_t touch = 0;
  };

  void Touch(Node* node) {
    if (node->touch != 0) lru_.erase(node->touch);
    node->touch = ++tick_;
    lru_.emplace(node->touch, node);
  }

  /// Evicts the least-recently-touched leaf. Internal nodes become
  /// evictable once their subtrees go (same leaves-first shape as
  /// PrefixIndex::EvictLru).
  bool EvictOldestLeaf() {
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      Node* node = it->second;
      if (!node->children.empty()) continue;
      lru_.erase(it);
      node->parent->children.erase(node->self);  // destroys `node`
      --num_nodes_;
      return true;
    }
    return false;
  }

  int32_t block_size_;
  int64_t max_nodes_;
  int64_t num_nodes_ = 0;
  uint64_t tick_ = 0;
  /// Heap-held so parent pointers into the root survive a mirror move
  /// (RouterState's mirror vector reallocates as an elastic fleet grows).
  std::unique_ptr<Node> root_ = std::make_unique<Node>();
  /// touch tick -> node, ascending = LRU order (the root never enters).
  std::map<uint64_t, Node*> lru_;
};

}  // namespace

/// The incremental routing model: one entry of every per-instance vector
/// per addressable instance. Round-robin uses the caller-provided
/// trace_index (not an internal counter) for bit-compatibility with the
/// batch form.
struct RouterState::Impl {
  int32_t n = 0;
  /// Legacy-policy state: per-instance sliding-window backlog of dispatched
  /// prompt tokens (bit-for-bit the pre-router DispatchTrace bookkeeping).
  std::vector<std::deque<std::pair<TimePoint, int64_t>>> window;
  std::vector<int64_t> backlog;
  Rng rng{0};
  /// Work-model state: when each instance is predicted to drain its queue.
  std::vector<double> busy_until;
  /// Prefix-affinity mirrors (empty unless the policy needs them).
  std::vector<AffinityMirror> mirror;
  /// Scratch for RouteOne's live-instance list (avoids a per-request
  /// allocation on the batch path).
  std::vector<int32_t> live_scratch;
  /// Deterministic decision-cost counters (state examinations, not time).
  RouteCostStats cost;
  /// Observability (Router::AttachTrace): events land on the router track,
  /// stamped by `obs_clock` when set (async mode) else by request arrival.
  obs::TraceSink sink;
  const runtime::Clock* obs_clock = nullptr;
};

RouterState::RouterState() = default;
RouterState::~RouterState() = default;
RouterState::RouterState(RouterState&&) noexcept = default;
RouterState& RouterState::operator=(RouterState&&) noexcept = default;

int32_t RouterState::capacity() const { return impl_ ? impl_->n : 0; }

const RouteCostStats& RouterState::cost_stats() const {
  static const RouteCostStats kEmpty;
  return impl_ ? impl_->cost : kEmpty;
}

Router::Router(const RouterConfig& config, const CostModel* cost_model,
               const OutputLengthPredictor* predictor)
    : config_(config), cost_model_(cost_model), predictor_(predictor) {
  APT_CHECK(config.n_instances >= 1);
  APT_CHECK(config.block_size >= 1);
}

double Router::PredictedOutputLen(const Request& r) const {
  if (predictor_ != nullptr && predictor_->observations() > 0) {
    return predictor_->PredictMean(r.prompt_len, config_.default_output_len);
  }
  return config_.default_output_len;
}

double Router::EstimatedPrefillSeconds(const Request& r) const {
  if (cost_model_ == nullptr) {
    return r.prompt_len * config_.fallback_seconds_per_token;
  }
  BatchWorkload w;
  w.prefill_tokens = r.prompt_len;
  w.prefill_attend_tokens =
      static_cast<int64_t>(r.prompt_len) * (r.prompt_len + 1) / 2;
  return cost_model_->IterationSeconds(w);
}

double Router::EstimatedServiceSeconds(const Request& r) const {
  const double out_len = PredictedOutputLen(r);
  if (cost_model_ == nullptr) {
    return (r.prompt_len + out_len) * config_.fallback_seconds_per_token;
  }
  // One decode iteration at the request's mid-generation context length,
  // times the predicted output length.
  BatchWorkload d;
  d.decode_reqs = 1;
  d.decode_kv_context_tokens =
      r.prompt_len + static_cast<int64_t>(out_len / 2);
  return EstimatedPrefillSeconds(r) +
         out_len * cost_model_->IterationSeconds(d);
}

RouterState Router::MakeState(int32_t max_instances) const {
  RouterState state;
  state.impl_ = std::make_unique<RouterState::Impl>();
  RouterState::Impl& s = *state.impl_;
  s.n = std::max(config_.n_instances, max_instances);
  s.window.resize(s.n);
  s.backlog.assign(s.n, 0);
  s.rng = Rng(config_.dispatch_seed);
  s.busy_until.assign(s.n, 0.0);
  if (config_.policy == RoutePolicy::kPrefixAffinity) {
    s.mirror.reserve(s.n);
    for (int32_t i = 0; i < s.n; ++i) {
      s.mirror.emplace_back(config_.block_size,
                            config_.affinity_mirror_max_nodes);
    }
  }
  return state;
}

void Router::AttachTrace(RouterState* state, obs::TraceSink sink,
                         const runtime::Clock* clock) const {
  APT_CHECK(state != nullptr && state->impl_ != nullptr);
  state->impl_->sink = sink;
  state->impl_->obs_clock = clock;
}

void Router::GrowState(RouterState* state, int32_t n_instances) const {
  APT_CHECK(state != nullptr && state->impl_ != nullptr);
  RouterState::Impl& s = *state->impl_;
  if (n_instances <= s.n) return;
  s.n = n_instances;
  s.window.resize(n_instances);
  s.backlog.resize(n_instances, 0);
  s.busy_until.resize(n_instances, 0.0);
  if (config_.policy == RoutePolicy::kPrefixAffinity) {
    while (static_cast<int32_t>(s.mirror.size()) < n_instances) {
      s.mirror.emplace_back(config_.block_size,
                            config_.affinity_mirror_max_nodes);
    }
  }
  return;
}

int32_t Router::RouteOne(const Request& req, size_t trace_index,
                         const std::vector<uint8_t>& live, RouterState* state,
                         bool* best_effort) const {
  APT_CHECK(state != nullptr && state->impl_ != nullptr);
  RouterState::Impl& s = *state->impl_;
  const int32_t n = s.n;
  APT_CHECK(static_cast<int32_t>(live.size()) == n);
  std::vector<int32_t>& live_ids = s.live_scratch;
  live_ids.clear();
  live_ids.reserve(n);
  for (int32_t i = 0; i < n; ++i) {
    if (live[i]) live_ids.push_back(i);
  }
  return RouteOneLive(req, trace_index, live_ids, state, best_effort);
}

int32_t Router::RouteOneLive(const Request& req, size_t trace_index,
                             const std::vector<int32_t>& live_ids,
                             RouterState* state, bool* best_effort) const {
  APT_CHECK(state != nullptr && state->impl_ != nullptr &&
            best_effort != nullptr);
  RouterState::Impl& s = *state->impl_;
  const int32_t n = s.n;
  const int32_t n_live = static_cast<int32_t>(live_ids.size());
  APT_CHECK_MSG(n_live >= 1, "routing with no live instances");
  APT_CHECK(live_ids.front() >= 0 && live_ids.back() < n);
  *best_effort = false;
  ++s.cost.decisions;

  // Observational only: reads the pre-commit routing state, mutates none
  // of it, so traced and untraced routing are decision-identical.
  const bool tracing = static_cast<bool>(s.sink);
  const double obs_ts =
      s.obs_clock != nullptr ? s.obs_clock->Now() : req.arrival;
  const auto emit_route_decision = [&](int32_t chosen) {
    double score = 0.0;
    switch (config_.policy) {
      case RoutePolicy::kRoundRobin:
        break;
      case RoutePolicy::kLeastLoaded:
      case RoutePolicy::kPowerOfTwo:
        score = static_cast<double>(s.backlog[chosen]);
        break;
      case RoutePolicy::kLeastOutstandingWork:
        score = std::max(0.0, s.busy_until[chosen] - req.arrival);
        break;
      case RoutePolicy::kPrefixAffinity:
        score = req.has_token_ids() && !s.mirror.empty()
                    ? static_cast<double>(
                          s.mirror[chosen].MatchTokens(req.token_ids))
                    : 0.0;
        break;
    }
    s.sink.Instant(obs::TraceOp::kRouteDecision, obs_ts, req.id,
                   static_cast<double>(chosen), score,
                   static_cast<double>(static_cast<int32_t>(config_.policy)));
  };

  // Only maintain the state some consumer actually reads: the token
  // backlog windows feed kLeastLoaded/kPowerOfTwo, the busy-until clocks
  // feed kLeastOutstandingWork, the affinity imbalance cap, and admission.
  const bool need_backlog = config_.policy == RoutePolicy::kLeastLoaded ||
                            config_.policy == RoutePolicy::kPowerOfTwo;
  const bool need_work =
      config_.policy == RoutePolicy::kLeastOutstandingWork ||
      config_.policy == RoutePolicy::kPrefixAffinity ||
      config_.admission != AdmissionMode::kNone;

  const TimePoint now = req.arrival;
  auto outstanding = [&](int32_t i) {
    return std::max(0.0, s.busy_until[i] - now);
  };
  auto least_outstanding = [&] {
    s.cost.instance_probes += n_live;
    int32_t best = live_ids[0];
    for (int32_t k = 1; k < n_live; ++k) {
      const int32_t i = live_ids[k];
      if (outstanding(i) < outstanding(best)) best = i;
    }
    return best;
  };

  if (need_backlog) {
    // Expire the sliding windows of every instance (live or not) so an
    // instance re-entering the live set carries no stale backlog.
    for (int32_t i = 0; i < n; ++i) {
      while (!s.window[i].empty() &&
             s.window[i].front().first < now - config_.load_window_s) {
        s.backlog[i] -= s.window[i].front().second;
        s.window[i].pop_front();
      }
    }
  }

  // 1. Pick the target instance under the policy. A one-instance fleet
  // (or a one-instance live set) skips the policy — and its RNG draws —
  // exactly like the historical single-instance shortcut.
  int32_t inst = live_ids[0];
  if (n_live > 1) {
    switch (config_.policy) {
      case RoutePolicy::kRoundRobin:
        inst = live_ids[trace_index % n_live];
        ++s.cost.instance_probes;
        break;
      case RoutePolicy::kLeastLoaded: {
        s.cost.instance_probes += n_live;
        int32_t best = live_ids[0];
        for (int32_t k = 1; k < n_live; ++k) {
          const int32_t i = live_ids[k];
          if (s.backlog[i] < s.backlog[best]) best = i;
        }
        inst = best;
        break;
      }
      case RoutePolicy::kPowerOfTwo: {
        s.cost.instance_probes += 2;
        const int32_t a =
            static_cast<int32_t>(s.rng.UniformInt(0, n_live - 1));
        int32_t b = static_cast<int32_t>(s.rng.UniformInt(0, n_live - 2));
        if (b >= a) ++b;
        inst = s.backlog[live_ids[a]] <= s.backlog[live_ids[b]]
                   ? live_ids[a]
                   : live_ids[b];
        break;
      }
      case RoutePolicy::kLeastOutstandingWork:
        inst = least_outstanding();
        break;
      case RoutePolicy::kPrefixAffinity: {
        const int32_t fallback = least_outstanding();
        const double min_work = outstanding(fallback);
        int32_t best = -1;
        int32_t best_match = 0;
        if (req.has_token_ids()) {
          for (int32_t k = 0; k < n_live; ++k) {
            const int32_t i = live_ids[k];
            ++s.cost.instance_probes;
            if (outstanding(i) - min_work >
                config_.affinity_max_imbalance_s) {
              continue;  // over the load-imbalance cap
            }
            const int32_t m = s.mirror[i].MatchTokens(
                req.token_ids, &s.cost.mirror_nodes_walked);
            if (m > best_match) {
              best_match = m;
              best = i;
            }
          }
        }
        inst = best_match > 0 ? best : fallback;
        break;
      }
    }
  } else {
    ++s.cost.instance_probes;
  }

  // 2. Admission against the effective TTFT deadline: queue wait plus
  // the request's own prefill time. A miss on the policy's choice first
  // spills to the least-outstanding instance — a request is only turned
  // away when NO live instance can meet its deadline.
  if (config_.admission != AdmissionMode::kNone) {
    const double ttft_bound =
        req.slo_ttft_s >= 0 ? req.slo_ttft_s : config_.default_slo.ttft_s;
    const double prefill_s = EstimatedPrefillSeconds(req);
    const double deadline = config_.admission_slack * ttft_bound;
    if (outstanding(inst) + prefill_s > deadline) {
      const int32_t spill = least_outstanding();
      if (outstanding(spill) + prefill_s <= deadline) {
        inst = spill;
      } else if (config_.admission == AdmissionMode::kReject) {
        if (tracing) {
          emit_route_decision(inst);
          s.sink.Instant(obs::TraceOp::kAdmission, obs_ts, req.id,
                         /*verdict=*/1.0, outstanding(inst) + prefill_s,
                         deadline);
        }
        return RouteDecision::kRejected;  // never enters any routing state
      } else {
        *best_effort = true;
      }
    }
    if (tracing) {
      emit_route_decision(inst);
      s.sink.Instant(obs::TraceOp::kAdmission, obs_ts, req.id,
                     *best_effort ? 2.0 : 0.0, outstanding(inst) + prefill_s,
                     deadline);
    }
  } else if (tracing) {
    emit_route_decision(inst);
  }

  // Predicted queue wait as a span on the router track: [decision, start
  // of service on the chosen instance] under the router's work model
  // (zero-length when no work model is maintained). The serving loop
  // emits the *measured* wait as the matching span on the instance track.
  if (tracing) {
    s.sink.Span(obs::TraceOp::kQueueWait, obs_ts, outstanding(inst), req.id,
                static_cast<double>(inst));
  }

  // 3. Commit: every live routing model observes the admitted request.
  if (need_backlog) {
    s.window[inst].emplace_back(now, req.prompt_len);
    s.backlog[inst] += req.prompt_len;
  }
  if (need_work) {
    const double start = std::max(now, s.busy_until[inst]);
    s.busy_until[inst] = start + EstimatedServiceSeconds(req);
  }
  if (!s.mirror.empty() && req.has_token_ids()) {
    const AffinityMirror::InsertDelta delta =
        s.mirror[inst].Insert(req.token_ids);
    s.cost.mirror_nodes += delta.created - delta.evicted;
    s.cost.mirror_node_peak =
        std::max(s.cost.mirror_node_peak, s.cost.mirror_nodes);
    s.cost.mirror_evictions += delta.evicted;
  }
  return inst;
}

RouteDecision Router::Route(const std::vector<Request>& trace) const {
  const int32_t n = config_.n_instances;
  RouteDecision decision;
  decision.assignment.assign(trace.size(), 0);
  decision.best_effort.assign(trace.size(), 0);
  decision.admitted_per_instance.assign(n, 0);

  RouterState state = MakeState();
  const std::vector<uint8_t> live(n, 1);
  for (size_t r = 0; r < trace.size(); ++r) {
    bool best_effort = false;
    const int32_t inst = RouteOne(trace[r], r, live, &state, &best_effort);
    if (inst == RouteDecision::kRejected) {
      decision.assignment[r] = RouteDecision::kRejected;
      ++decision.rejected;
      continue;
    }
    decision.assignment[r] = inst;
    decision.best_effort[r] = best_effort ? 1 : 0;
    ++decision.admitted;
    ++decision.admitted_per_instance[inst];
    if (best_effort) ++decision.deprioritized;
  }
  return decision;
}

}  // namespace aptserve
