#include "serve/router.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"

namespace aptserve {

const char* RoutePolicyName(RoutePolicy p) {
  switch (p) {
    case RoutePolicy::kRoundRobin:
      return "round-robin";
    case RoutePolicy::kLeastLoaded:
      return "least-loaded";
    case RoutePolicy::kPowerOfTwo:
      return "power-of-two";
    case RoutePolicy::kLeastOutstandingWork:
      return "least-outstanding-work";
    case RoutePolicy::kPrefixAffinity:
      return "prefix-affinity";
  }
  return "?";
}

namespace {

/// Per-instance mirror of a PrefixIndex's *content*: a radix tree over
/// full block_size token chunks of the prompts routed to that instance.
/// Matching follows PrefixIndex::Match's full-block rule, so the router's
/// affinity score approximates the match the instance's real index will
/// report once those prompts have prefilled (approximates, not equals:
/// the real index also COW-matches partial tail blocks, LRU-evicts under
/// pool pressure, and indexes only completed prefills).
class AffinityMirror {
 public:
  explicit AffinityMirror(int32_t block_size) : block_size_(block_size) {}

  /// Matched positions: block_size per matched chunk, capped (like index
  /// callers) at prompt_len - 1 so the score never exceeds what a real
  /// adoption could use.
  int32_t MatchTokens(const std::vector<int32_t>& tokens) const {
    const Node* node = &root_;
    int32_t matched = 0;
    const int32_t usable = static_cast<int32_t>(tokens.size()) - 1;
    std::vector<int32_t> chunk(block_size_);
    while (matched + block_size_ <= usable) {
      chunk.assign(tokens.begin() + matched,
                   tokens.begin() + matched + block_size_);
      auto it = node->children.find(chunk);
      if (it == node->children.end()) break;
      node = it->second.get();
      matched += block_size_;
    }
    return matched;
  }

  void Insert(const std::vector<int32_t>& tokens) {
    Node* node = &root_;
    const int32_t n = static_cast<int32_t>(tokens.size());
    for (int32_t at = 0; at + block_size_ <= n; at += block_size_) {
      std::vector<int32_t> chunk(tokens.begin() + at,
                                 tokens.begin() + at + block_size_);
      auto it = node->children.find(chunk);
      if (it == node->children.end()) {
        it = node->children
                 .emplace(std::move(chunk), std::make_unique<Node>())
                 .first;
      }
      node = it->second.get();
    }
  }

 private:
  struct Node {
    std::map<std::vector<int32_t>, std::unique_ptr<Node>> children;
  };
  int32_t block_size_;
  Node root_;
};

}  // namespace

Router::Router(const RouterConfig& config, const CostModel* cost_model,
               const OutputLengthPredictor* predictor)
    : config_(config), cost_model_(cost_model), predictor_(predictor) {
  APT_CHECK(config.n_instances >= 1);
  APT_CHECK(config.block_size >= 1);
}

double Router::PredictedOutputLen(const Request& r) const {
  if (predictor_ != nullptr && predictor_->observations() > 0) {
    return predictor_->PredictMean(r.prompt_len, config_.default_output_len);
  }
  return config_.default_output_len;
}

double Router::EstimatedPrefillSeconds(const Request& r) const {
  if (cost_model_ == nullptr) {
    return r.prompt_len * config_.fallback_seconds_per_token;
  }
  BatchWorkload w;
  w.prefill_tokens = r.prompt_len;
  w.prefill_attend_tokens =
      static_cast<int64_t>(r.prompt_len) * (r.prompt_len + 1) / 2;
  return cost_model_->IterationSeconds(w);
}

double Router::EstimatedServiceSeconds(const Request& r) const {
  const double out_len = PredictedOutputLen(r);
  if (cost_model_ == nullptr) {
    return (r.prompt_len + out_len) * config_.fallback_seconds_per_token;
  }
  // One decode iteration at the request's mid-generation context length,
  // times the predicted output length.
  BatchWorkload d;
  d.decode_reqs = 1;
  d.decode_kv_context_tokens =
      r.prompt_len + static_cast<int64_t>(out_len / 2);
  return EstimatedPrefillSeconds(r) +
         out_len * cost_model_->IterationSeconds(d);
}

RouteDecision Router::Route(const std::vector<Request>& trace) const {
  const int32_t n = config_.n_instances;
  RouteDecision decision;
  decision.assignment.assign(trace.size(), 0);
  decision.best_effort.assign(trace.size(), 0);
  decision.admitted_per_instance.assign(n, 0);

  // Legacy-policy state: per-instance sliding-window backlog of dispatched
  // prompt tokens (bit-for-bit the pre-router DispatchTrace bookkeeping).
  std::vector<std::deque<std::pair<TimePoint, int64_t>>> window(n);
  std::vector<int64_t> backlog(n, 0);
  Rng rng(config_.dispatch_seed);
  // Work-model state: when each instance is predicted to drain its queue.
  std::vector<double> busy_until(n, 0.0);
  // Prefix-affinity mirrors.
  std::vector<AffinityMirror> mirror;
  if (config_.policy == RoutePolicy::kPrefixAffinity) {
    mirror.reserve(n);
    for (int32_t i = 0; i < n; ++i) mirror.emplace_back(config_.block_size);
  }

  // Only maintain the state some consumer actually reads: the token
  // backlog windows feed kLeastLoaded/kPowerOfTwo, the busy-until clocks
  // feed kLeastOutstandingWork, the affinity imbalance cap, and admission.
  const bool need_backlog = config_.policy == RoutePolicy::kLeastLoaded ||
                            config_.policy == RoutePolicy::kPowerOfTwo;
  const bool need_work =
      config_.policy == RoutePolicy::kLeastOutstandingWork ||
      config_.policy == RoutePolicy::kPrefixAffinity ||
      config_.admission != AdmissionMode::kNone;

  auto expire = [&](TimePoint now) {
    for (int32_t i = 0; i < n; ++i) {
      while (!window[i].empty() &&
             window[i].front().first < now - config_.load_window_s) {
        backlog[i] -= window[i].front().second;
        window[i].pop_front();
      }
    }
  };
  auto outstanding = [&](int32_t i, TimePoint now) {
    return std::max(0.0, busy_until[i] - now);
  };
  auto least_outstanding = [&](TimePoint now) {
    int32_t best = 0;
    for (int32_t i = 1; i < n; ++i) {
      if (outstanding(i, now) < outstanding(best, now)) best = i;
    }
    return best;
  };

  for (size_t r = 0; r < trace.size(); ++r) {
    const Request& req = trace[r];
    const TimePoint now = req.arrival;
    if (need_backlog) expire(now);

    // 1. Pick the target instance under the policy.
    int32_t inst = 0;
    if (n == 1) {
      inst = 0;
    } else {
      switch (config_.policy) {
        case RoutePolicy::kRoundRobin:
          inst = static_cast<int32_t>(r % n);
          break;
        case RoutePolicy::kLeastLoaded: {
          int32_t best = 0;
          for (int32_t i = 1; i < n; ++i) {
            if (backlog[i] < backlog[best]) best = i;
          }
          inst = best;
          break;
        }
        case RoutePolicy::kPowerOfTwo: {
          const int32_t a = static_cast<int32_t>(rng.UniformInt(0, n - 1));
          int32_t b = static_cast<int32_t>(rng.UniformInt(0, n - 2));
          if (b >= a) ++b;
          inst = backlog[a] <= backlog[b] ? a : b;
          break;
        }
        case RoutePolicy::kLeastOutstandingWork:
          inst = least_outstanding(now);
          break;
        case RoutePolicy::kPrefixAffinity: {
          const int32_t fallback = least_outstanding(now);
          const double min_work = outstanding(fallback, now);
          int32_t best = -1;
          int32_t best_match = 0;
          if (req.has_token_ids()) {
            for (int32_t i = 0; i < n; ++i) {
              if (outstanding(i, now) - min_work >
                  config_.affinity_max_imbalance_s) {
                continue;  // over the load-imbalance cap
              }
              const int32_t m = mirror[i].MatchTokens(req.token_ids);
              if (m > best_match) {
                best_match = m;
                best = i;
              }
            }
          }
          inst = best_match > 0 ? best : fallback;
          break;
        }
      }
    }

    // 2. Admission against the effective TTFT deadline: queue wait plus
    // the request's own prefill time. A miss on the policy's choice first
    // spills to the least-outstanding instance — a request is only turned
    // away when NO instance can meet its deadline.
    bool admit_best_effort = false;
    if (config_.admission != AdmissionMode::kNone) {
      const double ttft_bound = req.slo_ttft_s >= 0
                                    ? req.slo_ttft_s
                                    : config_.default_slo.ttft_s;
      const double prefill_s = EstimatedPrefillSeconds(req);
      const double deadline = config_.admission_slack * ttft_bound;
      if (outstanding(inst, now) + prefill_s > deadline) {
        const int32_t spill = least_outstanding(now);
        if (outstanding(spill, now) + prefill_s <= deadline) {
          inst = spill;
        } else if (config_.admission == AdmissionMode::kReject) {
          decision.assignment[r] = RouteDecision::kRejected;
          ++decision.rejected;
          continue;  // never enters any routing state
        } else {
          admit_best_effort = true;
          ++decision.deprioritized;
        }
      }
    }

    // 3. Commit: every live routing model observes the admitted request.
    decision.assignment[r] = inst;
    decision.best_effort[r] = admit_best_effort ? 1 : 0;
    ++decision.admitted;
    ++decision.admitted_per_instance[inst];
    if (need_backlog) {
      window[inst].emplace_back(now, req.prompt_len);
      backlog[inst] += req.prompt_len;
    }
    if (need_work) {
      const double start = std::max(now, busy_until[inst]);
      busy_until[inst] = start + EstimatedServiceSeconds(req);
    }
    if (!mirror.empty() && req.has_token_ids()) {
      mirror[inst].Insert(req.token_ids);
    }
  }
  return decision;
}

}  // namespace aptserve
