#include "serve/fleet_controller.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.h"
#include "runtime/thread_pool.h"

namespace aptserve {

namespace {

void AddPrefixStats(const PrefixStats& from, PrefixStats* into) {
  into->lookups += from.lookups;
  into->hits += from.hits;
  into->matched_tokens += from.matched_tokens;
  into->shared_blocks += from.shared_blocks;
  into->cow_matches += from.cow_matches;
  into->inserted_blocks += from.inserted_blocks;
  into->evicted_blocks += from.evicted_blocks;
}

/// One serving instance of the elastic fleet.
struct Instance {
  enum class State { kWarming, kLive, kDraining, kRetired };
  State state = State::kLive;
  int32_t id = 0;
  double add_time = 0.0;
  double live_at = 0.0;
  double retire_time = -1.0;
  std::unique_ptr<Scheduler> scheduler;
  std::unique_ptr<ExecutionBackend> backend;
  std::unique_ptr<ServingLoopState> loop;
  Status status = Status::OK();

  bool Alive() const { return state != State::kRetired; }
  bool Routable() const { return state == State::kLive; }
};

}  // namespace

FleetController::FleetController(const FleetConfig& config,
                                 const Router& router,
                                 const CostModel* migration_cost_model)
    : config_(config),
      router_(router),
      migration_cost_model_(migration_cost_model != nullptr
                                ? migration_cost_model
                                : router.cost_model()) {
  APT_CHECK(router_.config().n_instances >= 1);
  APT_CHECK(config_.min_instances >= 1);
  APT_CHECK(config_.cells.num_cells >= 1);
  APT_CHECK_MSG(config_.cells.num_cells == 1 ||
                    router_.config().n_instances >= config_.cells.num_cells,
                "a hierarchical fleet needs at least one instance per cell");
  APT_CHECK(config_.tick_interval_s > 0.0);
  APT_CHECK(config_.instance_warmup_s >= 0.0);
  APT_CHECK(config_.scale_up_cooldown_s >= 0.0);
  APT_CHECK(config_.scale_down_cooldown_s >= 0.0);
}

FleetController::FleetController(const FleetConfig& config,
                                 const CostModel* cost_model,
                                 const OutputLengthPredictor* predictor)
    : FleetController(config, Router(config.router, cost_model, predictor),
                      cost_model) {}

StatusOr<FleetResult> FleetController::Run(
    const std::vector<Request>& trace, const SchedulerFactory& make_scheduler,
    const BackendFactory& make_backend, const SloSpec& slo) {
  const bool elastic = config_.IsElastic();
  const int32_t initial_n = router_.config().n_instances;
  const int32_t max_n = elastic ? config_.MaxInstances() : initial_n;

  FleetResult out;
  FleetMetrics& fm = out.fleet;
  RouterState rstate = router_.MakeState(max_n);
  std::vector<std::unique_ptr<Instance>> fleet;
  fleet.reserve(max_n);

  // Hierarchical (fleet-of-fleets) topology: the consistent-hash front
  // tier picks a cell, the configured policy routes within it. num_cells
  // == 1 takes the flat path untouched (bit-identical to pre-cell runs).
  const int32_t num_cells = config_.cells.num_cells;
  const bool hierarchical = num_cells > 1;
  CellRouter cell_router(config_.cells, router_.config().block_size);
  fm.num_cells = num_cells;
  std::vector<int32_t> alive_per_cell(num_cells, 0);
  std::vector<std::vector<int32_t>> cell_live_ids(num_cells);

  // Observability is opt-in and purely observational: with config_.trace /
  // config_.metrics null every hook below is a no-op and the run is
  // bit-identical to an uninstrumented build.
  obs::TraceSink ctl_trace;
  std::vector<obs::TraceSink> cell_trace;
  if (config_.trace != nullptr) {
    ctl_trace = config_.trace->MakeSink(obs::kControllerTrack);
    router_.AttachTrace(&rstate, config_.trace->MakeSink(obs::kRouterTrack));
    if (hierarchical) {
      cell_trace.reserve(num_cells);
      for (int32_t c = 0; c < num_cells; ++c) {
        cell_trace.push_back(config_.trace->MakeSink(obs::kCellTrackBase - c));
      }
    }
  }

  const auto record_event = [&](double t, int32_t id,
                                FleetScaleEvent::Kind kind) {
    fm.scale_events.push_back(FleetScaleEvent{t, id, kind});
    if (ctl_trace) {
      ctl_trace.Instant(obs::TraceOp::kScale, t, id,
                        static_cast<double>(static_cast<int>(kind)));
    }
  };

  // Spawns instance fleet.size() at virtual time `t`. A cold spawn only
  // becomes routable after the warmup latency elapses; the initial fleet
  // is born warm (it existed before the trace started).
  const auto spawn = [&](double t, bool cold) -> Status {
    // Ids are lifetime-unique (a retired id is never reused), so over many
    // scale cycles the id space outgrows the alive ceiling; the router
    // state grows with it.
    const int32_t id = static_cast<int32_t>(fleet.size());
    auto inst = std::make_unique<Instance>();
    inst->id = id;
    // Cell assignment: the least-populated (alive) cell, tie to the lowest
    // cell id — the initial fleet round-robins across cells and later
    // spawns refill whichever cell lost an instance.
    int32_t cell = 0;
    for (int32_t c = 1; c < num_cells; ++c) {
      if (alive_per_cell[c] < alive_per_cell[cell]) cell = c;
    }
    fm.instance_cell.push_back(cell);
    ++alive_per_cell[cell];
    inst->scheduler = make_scheduler();
    APT_ASSIGN_OR_RETURN(inst->backend, make_backend(id));
    inst->loop =
        std::make_unique<ServingLoopState>(inst->backend.get(), config_.loop);
    if (config_.trace != nullptr || config_.metrics != nullptr) {
      inst->loop->AttachObservability(
          config_.trace != nullptr ? config_.trace->MakeSink(id)
                                   : obs::TraceSink(),
          config_.metrics, id);
    }
    APT_RETURN_NOT_OK(inst->loop->Start({}, inst->scheduler.get(), slo));
    inst->add_time = t;
    inst->live_at = cold ? t + config_.instance_warmup_s : t;
    inst->state = cold ? Instance::State::kWarming : Instance::State::kLive;
    record_event(t, id, FleetScaleEvent::Kind::kAdd);
    if (cold) {
      ++fm.cold_starts;
    } else {
      record_event(t, id, FleetScaleEvent::Kind::kLive);
    }
    fleet.push_back(std::move(inst));
    router_.GrowState(&rstate, static_cast<int32_t>(fleet.size()));
    return Status::OK();
  };

  for (int32_t i = 0; i < initial_n; ++i) {
    APT_RETURN_NOT_OK(spawn(0.0, /*cold=*/false));
  }

  // Live migration of one waiting request, cache state included. The
  // transfer is priced on post-dedupe bytes; the request becomes
  // schedulable at the destination once the virtual transfer completes.
  const auto migrate = [&](Instance& src, Instance& dst, RequestId id,
                           double t) -> Status {
    APT_ASSIGN_OR_RETURN(MigratedRequest m, src.loop->Extract(id));
    const bool carried_cache = m.image.carries_cache();
    const double base = std::max(t, m.available_at);
    // A transfer that leaves the source's cell rides the slower cross-cell
    // interconnect tier (racks/pods), not the intra-cell fabric.
    const bool cross_cell =
        fm.instance_cell[src.id] != fm.instance_cell[dst.id];
    const auto delay = [&](const MigrationImport& import) {
      return migration_cost_model_ != nullptr
                 ? migration_cost_model_->MigrationSeconds(import.bytes,
                                                           cross_cell)
                 : 0.0;
    };
    APT_ASSIGN_OR_RETURN(const MigrationImport import,
                         dst.loop->Receive(std::move(m), base, delay));
    ++fm.migrations;
    if (carried_cache) ++fm.migrations_with_cache;
    if (cross_cell) {
      ++fm.cross_cell_migrations;
      fm.cross_cell_migration_bytes += import.bytes;
    }
    fm.migration_deduped_tokens += import.deduped_tokens;
    fm.migration_copied_tokens += import.copied_tokens;
    fm.migration_bytes += import.bytes;
    fm.migration_seconds += delay(import);
    return Status::OK();
  };

  // Coolest routable destination, preferring `preferred_cell` so drain
  // evacuations stay on the intra-cell interconnect when any same-cell
  // destination exists (a flat fleet has one cell, so the preference is
  // vacuous and the pick matches the pre-cell controller exactly).
  const auto pick_coolest = [&](const Instance* exclude,
                                int32_t preferred_cell) -> Instance* {
    Instance* best_same = nullptr;
    Instance* best_any = nullptr;
    for (const auto& inst : fleet) {
      if (!inst->Routable() || inst.get() == exclude) continue;
      if (best_any == nullptr ||
          inst->loop->NumWaiting() < best_any->loop->NumWaiting()) {
        best_any = inst.get();
      }
      if (fm.instance_cell[inst->id] == preferred_cell &&
          (best_same == nullptr ||
           inst->loop->NumWaiting() < best_same->loop->NumWaiting())) {
        best_same = inst.get();
      }
    }
    return best_same != nullptr ? best_same : best_any;
  };

  double last_scale_change = -std::numeric_limits<double>::infinity();

  // One controller tick: warmups, scaling-policy votes, the migration
  // planner, drain retirements, and the fleet-size timeline entry.
  const auto tick = [&](double t) -> Status {
    ++fm.ticks;
    for (size_t i = 0; i < fleet.size(); ++i) {
      Instance& inst = *fleet[i];
      if (inst.state == Instance::State::kWarming && t >= inst.live_at) {
        inst.state = Instance::State::kLive;
        record_event(inst.live_at, static_cast<int32_t>(i),
                     FleetScaleEvent::Kind::kLive);
      }
    }
    std::vector<Instance*> live;
    for (const auto& inst : fleet) {
      if (inst->Routable()) live.push_back(inst.get());
    }
    int32_t alive = 0;
    for (const auto& inst : fleet) alive += inst->Alive() ? 1 : 0;

    // Scaling votes.
    if (!config_.scaling.empty() && !live.empty()) {
      int64_t total_waiting = 0;
      double util_sum = 0.0;
      for (Instance* inst : live) {
        total_waiting += inst->loop->NumWaiting();
        util_sum += inst->backend->pool()->utilization();
      }
      const double queue_per_instance =
          static_cast<double>(total_waiting) / live.size();
      const double mean_util = util_sum / live.size();

      bool vote_up = false, vote_down = false, hold = false;
      for (const ScalingRule& rule : config_.scaling) {
        switch (rule.kind) {
          case ScalingRule::Kind::kQueueDepth:
            if (queue_per_instance > rule.queue_high) {
              vote_up = true;
            } else if (queue_per_instance < rule.queue_low) {
              vote_down = true;
            } else {
              hold = true;
            }
            break;
          case ScalingRule::Kind::kTargetUtilization:
            if (mean_util > rule.util_high) {
              vote_up = true;
            } else if (mean_util < rule.util_low) {
              vote_down = true;
            } else {
              hold = true;
            }
            break;
          case ScalingRule::Kind::kSloAttainmentGuard: {
            int64_t met = 0, total = 0;
            for (const auto& inst : fleet) {
              const auto [m, n] =
                  inst->loop->TtftFinishesSince(t - rule.window_s);
              met += m;
              total += n;
            }
            if (total > 0 &&
                static_cast<double>(met) / total < rule.attainment_floor) {
              vote_up = true;
            }
            break;
          }
        }
      }
      if (vote_up && alive < max_n &&
          t - last_scale_change >= config_.scale_up_cooldown_s) {
        APT_RETURN_NOT_OK(spawn(t, /*cold=*/true));
        last_scale_change = t;
        ++alive;
      } else if (!vote_up && vote_down && !hold &&
                 t - last_scale_change >= config_.scale_down_cooldown_s &&
                 static_cast<int32_t>(live.size()) > config_.min_instances) {
        // Drain the live instance with the least unfinished work (tie:
        // the newest — LIFO keeps long-lived instances' caches warm).
        Instance* victim = nullptr;
        int32_t victim_id = -1;
        for (size_t i = 0; i < fleet.size(); ++i) {
          Instance& inst = *fleet[i];
          if (!inst.Routable()) continue;
          if (victim == nullptr ||
              inst.loop->NumUnfinished() <= victim->loop->NumUnfinished()) {
            victim = &inst;
            victim_id = static_cast<int32_t>(i);
          }
        }
        if (victim != nullptr) {
          victim->state = Instance::State::kDraining;
          record_event(t, victim_id, FleetScaleEvent::Kind::kDrainStart);
          last_scale_change = t;
        }
      }
    }

    // Migration planner: evacuate draining instances, then shed queue
    // depth from the hottest live instance to the coolest.
    if (config_.enable_migration) {
      int32_t moved = 0;
      for (auto& src : fleet) {
        if (src->state != Instance::State::kDraining) continue;
        for (RequestId id : src->loop->MigratableWaiting()) {
          if (moved >= config_.max_migrations_per_tick) break;
          Instance* dst =
              pick_coolest(src.get(), fm.instance_cell[src->id]);
          if (dst == nullptr) break;
          APT_RETURN_NOT_OK(migrate(*src, *dst, id, t));
          ++moved;
        }
      }
      while (moved < config_.max_migrations_per_tick) {
        Instance* hottest = nullptr;
        Instance* coolest = nullptr;
        for (const auto& inst : fleet) {
          if (!inst->Routable()) continue;
          if (hottest == nullptr ||
              inst->loop->NumWaiting() > hottest->loop->NumWaiting()) {
            hottest = inst.get();
          }
          if (coolest == nullptr ||
              inst->loop->NumWaiting() < coolest->loop->NumWaiting()) {
            coolest = inst.get();
          }
        }
        if (hottest == nullptr || coolest == nullptr || hottest == coolest ||
            hottest->loop->NumWaiting() - coolest->loop->NumWaiting() <=
                config_.migration_imbalance_threshold) {
          break;
        }
        const auto candidates = hottest->loop->MigratableWaiting();
        if (candidates.empty()) break;
        APT_RETURN_NOT_OK(migrate(*hottest, *coolest, candidates.front(), t));
        ++moved;
      }
    }

    // Retire drained instances.
    for (size_t i = 0; i < fleet.size(); ++i) {
      Instance& inst = *fleet[i];
      if (inst.state == Instance::State::kDraining &&
          inst.loop->AllServed()) {
        inst.state = Instance::State::kRetired;
        // Billing runs to the instance's own last iteration (which may
        // overshoot the tick); the event is logged at the tick that
        // observed the retirement so the scale-event log stays
        // chronological.
        inst.retire_time = std::max(t, inst.loop->now());
        record_event(t, static_cast<int32_t>(i),
                     FleetScaleEvent::Kind::kRetire);
        --alive;
        --alive_per_cell[fm.instance_cell[i]];
      }
    }

    fm.size_timeline.emplace_back(t, alive);
    fm.peak_instances = std::max(fm.peak_instances, alive);
    return Status::OK();
  };

  // Fleet thread pool: instances step independently between barriers.
  const int32_t threads =
      std::min(config_.runtime.ResolvedNumThreads(), max_n);
  std::unique_ptr<runtime::ThreadPool> pool;
  if (threads > 1) {
    RuntimeConfig fleet_runtime = config_.runtime;
    fleet_runtime.num_threads = threads;
    pool = std::make_unique<runtime::ThreadPool>(fleet_runtime);
  }

  const auto step_until = [&](Instance& inst, double t_end) {
    if (!inst.Alive() || !inst.status.ok()) return;
    while (inst.loop->now() < t_end) {
      if (inst.loop->AllServed()) break;  // parked; the cap cannot apply
      if (inst.loop->iterations() >= config_.loop.max_iterations) {
        inst.status = Status::Internal(
            "serving loop hit the iteration cap with " +
            std::to_string(inst.loop->NumUnfinished()) +
            " unfinished requests");
        return;
      }
      auto progress = inst.loop->Step();
      if (!progress.ok()) {
        inst.status = progress.status();
        return;
      }
      if (*progress == ServingLoopState::Progress::kDrained) break;
    }
  };

  size_t next_route = 0;
  int64_t total_rejected = 0;
  int64_t total_deprioritized = 0;
  std::vector<uint8_t> live_mask;
  double window_start = 0.0;

  while (true) {
    const double window_end =
        elastic ? window_start + config_.tick_interval_s
                : std::numeric_limits<double>::infinity();
    if (elastic) APT_RETURN_NOT_OK(tick(window_start));

    // Route every arrival of this window against the live set (constant
    // within the window — scale events only happen at ticks).
    if (next_route < trace.size()) {
      live_mask.assign(rstate.capacity(), 0);
      for (size_t i = 0; i < fleet.size(); ++i) {
        live_mask[i] = fleet[i]->Routable() ? 1 : 0;
      }
      if (hierarchical) {
        // Per-cell live member lists (constant within the window, like the
        // mask): RouteOneLive scans only the chosen cell's members, which
        // is what keeps the per-decision cost independent of fleet width.
        for (auto& ids : cell_live_ids) ids.clear();
        for (size_t i = 0; i < fleet.size(); ++i) {
          if (live_mask[i]) {
            cell_live_ids[fm.instance_cell[i]].push_back(
                static_cast<int32_t>(i));
          }
        }
        for (int32_t c = 0; c < num_cells; ++c) {
          cell_router.SetLive(c, !cell_live_ids[c].empty());
        }
      }
    }
    while (next_route < trace.size() &&
           trace[next_route].arrival < window_end) {
      const Request& req = trace[next_route];
      bool best_effort = false;
      int32_t cell = 0;
      int32_t inst;
      if (hierarchical) {
        cell = cell_router.RouteOne(req, req.arrival);
        inst = router_.RouteOneLive(req, next_route, cell_live_ids[cell],
                                    &rstate, &best_effort);
      } else {
        inst = router_.RouteOne(req, next_route, live_mask, &rstate,
                                &best_effort);
      }
      if (inst == RouteDecision::kRejected) {
        ++total_rejected;
      } else {
        if (hierarchical) {
          if (!cell_trace.empty()) {
            // Pre-commit, so the span/score read the wait this request
            // actually saw, not one inflated by its own service time.
            const double wait = cell_router.Outstanding(cell, req.arrival);
            cell_trace[cell].Span(obs::TraceOp::kQueueWait, req.arrival,
                                  wait, req.id, static_cast<double>(inst));
            cell_trace[cell].Instant(obs::TraceOp::kRouteDecision,
                                     req.arrival, req.id,
                                     static_cast<double>(inst), wait,
                                     static_cast<double>(cell));
          }
          cell_router.Commit(
              cell, req.arrival, router_.EstimatedServiceSeconds(req),
              static_cast<int32_t>(cell_live_ids[cell].size()));
        }
        Request routed = req;
        if (best_effort) {
          routed.best_effort = true;
          ++total_deprioritized;
        }
        APT_RETURN_NOT_OK(fleet[inst]->loop->Inject(routed, routed.arrival));
      }
      ++next_route;
    }

    // Epochs: every instance advances to the window barrier.
    const int32_t n_now = static_cast<int32_t>(fleet.size());
    if (pool != nullptr) {
      pool->ParallelForEach(0, n_now, 1, [&](int64_t i) {
        step_until(*fleet[i], window_end);
      });
    } else {
      for (int32_t i = 0; i < n_now; ++i) {
        step_until(*fleet[i], window_end);
        if (!fleet[i]->status.ok()) break;  // fail fast, as before
      }
    }
    // First failure in instance order, matching the classic runner.
    for (const auto& inst : fleet) {
      if (!inst->status.ok()) return inst->status;
    }

    if (!elastic) break;
    bool done = next_route == trace.size();
    for (const auto& inst : fleet) {
      done = done && inst->loop->AllServed();
    }
    if (done) break;
    window_start = window_end;
    if (fm.ticks > 100'000'000) {
      return Status::Internal("fleet controller exceeded the tick guard");
    }
  }

  // Finalize instances and assemble the fleet result.
  MultiInstanceResult& result = out.serve;
  const int32_t total_instances = static_cast<int32_t>(fleet.size());
  result.per_instance.resize(total_instances);
  result.requests_per_instance.assign(total_instances, 0);
  result.prefill_computed_per_instance.assign(total_instances, 0);
  result.prefill_skipped_per_instance.assign(total_instances, 0);
  result.prefix_per_instance.resize(total_instances);
  result.rejected_requests = total_rejected;
  result.deprioritized_requests = total_deprioritized;

  double fleet_end = 0.0;
  for (const auto& inst : fleet) {
    fleet_end = std::max(fleet_end, inst->loop->now());
  }
  for (int32_t i = 0; i < total_instances; ++i) {
    Instance& inst = *fleet[i];
    // An instance that never saw a request reports all-zeros, exactly like
    // the classic runner's skipped empty shard.
    if (inst.loop->NumRegistered() > 0) {
      APT_ASSIGN_OR_RETURN(const ServingLoopResult r, inst.loop->Finish());
      result.per_instance[i] = r.report;
      result.requests_per_instance[i] =
          static_cast<int32_t>(r.records.size());
      result.prefill_computed_per_instance[i] = r.prefill_tokens_computed;
      result.prefill_skipped_per_instance[i] = r.prefill_tokens_skipped;
      result.prefix_per_instance[i] = r.prefix;
      result.prefill_tokens_computed += r.prefill_tokens_computed;
      result.prefill_tokens_skipped += r.prefill_tokens_skipped;
      result.tokens_generated += r.tokens_generated;
      AddPrefixStats(r.prefix, &result.prefix);
    }
    const double end = inst.retire_time >= 0 ? inst.retire_time : fleet_end;
    fm.instance_seconds += std::max(0.0, end - inst.add_time);
  }
  if (elastic) {
    int32_t alive = 0;
    for (const auto& inst : fleet) alive += inst->Alive() ? 1 : 0;
    fm.size_timeline.emplace_back(fleet_end, alive);
    fm.peak_instances = std::max(fm.peak_instances, alive);
  } else {
    fm.instance_seconds = total_instances * fleet_end;
    fm.peak_instances = total_instances;
    fm.size_timeline.emplace_back(fleet_end, total_instances);
  }

  result.combined =
      MergeReports(result.per_instance, result.requests_per_instance);
  FoldRejectedIntoReport(result.rejected_requests, &result.combined);

  result.route_cost = rstate.cost_stats();
  if (hierarchical) {
    const CellRouteStats& cs = cell_router.stats();
    result.route_cost.cell_probes += cs.cell_probes;
    result.route_cost.cell_hash_routed += cs.hash_routed;
    result.route_cost.cell_fallback_routed += cs.fallback_routed;
  }

  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *config_.metrics;
    const RouteCostStats& rc = result.route_cost;
    reg.GetCounter("aptserve_router_decisions_total")->Inc(rc.decisions);
    reg.GetCounter("aptserve_router_instance_probes_total")
        ->Inc(rc.instance_probes);
    reg.GetCounter("aptserve_router_mirror_nodes_walked_total")
        ->Inc(rc.mirror_nodes_walked);
    reg.GetCounter("aptserve_router_mirror_evictions_total")
        ->Inc(rc.mirror_evictions);
    reg.GetGauge("aptserve_router_mirror_nodes")
        ->Set(static_cast<double>(rc.mirror_nodes));
    reg.GetGauge("aptserve_router_mirror_node_peak")
        ->Set(static_cast<double>(rc.mirror_node_peak));
    reg.GetCounter("aptserve_cell_probes_total")->Inc(rc.cell_probes);
    reg.GetCounter("aptserve_cell_hash_routed_total")
        ->Inc(rc.cell_hash_routed);
    reg.GetCounter("aptserve_cell_fallback_routed_total")
        ->Inc(rc.cell_fallback_routed);
    reg.GetCounter("aptserve_fleet_cross_cell_migrations_total")
        ->Inc(fm.cross_cell_migrations);
    reg.GetCounter("aptserve_fleet_migrations_total")->Inc(fm.migrations);
    reg.GetCounter("aptserve_fleet_migration_bytes_total")
        ->Inc(static_cast<int64_t>(fm.migration_bytes));
    reg.GetCounter("aptserve_fleet_cold_starts_total")->Inc(fm.cold_starts);
    int64_t by_kind[4] = {0, 0, 0, 0};
    for (const FleetScaleEvent& ev : fm.scale_events) {
      ++by_kind[static_cast<int>(ev.kind)];
    }
    reg.GetCounter("aptserve_fleet_scale_events_total", "kind=\"add\"")
        ->Inc(by_kind[0]);
    reg.GetCounter("aptserve_fleet_scale_events_total", "kind=\"live\"")
        ->Inc(by_kind[1]);
    reg.GetCounter("aptserve_fleet_scale_events_total", "kind=\"drain\"")
        ->Inc(by_kind[2]);
    reg.GetCounter("aptserve_fleet_scale_events_total", "kind=\"retire\"")
        ->Inc(by_kind[3]);
    reg.GetGauge("aptserve_fleet_instance_seconds")->Set(fm.instance_seconds);
    reg.GetGauge("aptserve_fleet_peak_instances")
        ->Set(static_cast<double>(fm.peak_instances));
  }
  return out;
}

SloReport MergeReports(const std::vector<SloReport>& reports,
                       const std::vector<int32_t>& request_counts) {
  APT_CHECK(reports.size() == request_counts.size());
  SloReport out;
  int64_t eligible_total = 0;
  double limit_time = 0.0;
  double batch_weighted = 0.0;
  for (size_t i = 0; i < reports.size(); ++i) {
    const SloReport& r = reports[i];
    // Attainment weight: eligible requests. Hand-built reports may not
    // fill best_effort_requests; counts minus best-effort equals eligible
    // for real reports and the raw count otherwise — bit-identical to the
    // pre-SLO-routing merge whenever no best-effort traffic exists.
    const int64_t n = request_counts[i] - r.best_effort_requests;
    eligible_total += n;
    out.slo_attainment += r.slo_attainment * n;
    out.ttft_attainment += r.ttft_attainment * n;
    out.tbt_attainment += r.tbt_attainment * n;
    out.total_serving_time = std::max(out.total_serving_time,
                                      r.total_serving_time);
    limit_time += r.batch_limit_time_ratio * r.total_serving_time;
    out.iterations += r.iterations;
    batch_weighted += r.mean_batch_size * static_cast<double>(r.iterations);
    out.preemptions += r.preemptions;
    out.conversions += r.conversions;
    out.eligible_requests += r.eligible_requests;
    out.slo_met_requests += r.slo_met_requests;
    out.best_effort_requests += r.best_effort_requests;
    out.rejected_requests += r.rejected_requests;
    for (double v : r.ttfts.samples()) out.ttfts.Add(v);
    for (double v : r.p99_tbts.samples()) out.p99_tbts.Add(v);
  }
  if (eligible_total > 0) {
    out.slo_attainment /= eligible_total;
    out.ttft_attainment /= eligible_total;
    out.tbt_attainment /= eligible_total;
  }
  double summed_time = 0.0;
  for (const SloReport& r : reports) summed_time += r.total_serving_time;
  out.batch_limit_time_ratio =
      summed_time > 0 ? limit_time / summed_time : 0.0;
  out.mean_batch_size =
      out.iterations > 0 ? batch_weighted / out.iterations : 0.0;
  out.mean_ttft = out.ttfts.Mean();
  out.p99_ttft = out.ttfts.P99();
  out.goodput_rps = out.total_serving_time > 0
                        ? out.slo_met_requests / out.total_serving_time
                        : 0.0;
  return out;
}

}  // namespace aptserve
