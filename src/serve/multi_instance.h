// Multi-instance serving (the paper's §8 future work: "generalize
// Apt-Serve's designs to the multi-instance scenario"). A dispatcher
// assigns each arriving request to one of N independent ServingLoop
// instances; instances then run to completion and the reports are merged.
//
// The runner is generic over ExecutionBackend: the same dispatch policies
// shard the analytic simulator (CostModelBackend) and the real engine
// (InferenceBackend) — the fleet composes with any backend for free.
//
// With a RuntimeConfig of more than one thread, instances run concurrently
// on a fleet thread pool (one task per instance epoch). Dispatch is
// computed up front from arrivals alone, schedulers/backends are
// constructed serially in instance order (factories may share state), and
// the merge happens behind the ParallelFor join in instance order — so
// every dispatch decision and the merged report are bit-identical to the
// serial runner at any thread count.
//
// The dispatcher sees only what a real front-end would: arrival times and
// prompt lengths. Load estimates use a sliding window of recently assigned
// prompt tokens as the backlog proxy (Llumnix-style least-loaded routing
// without cross-instance migration).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "runtime/runtime_config.h"
#include "serve/execution_backend.h"
#include "serve/serving_loop.h"
#include "sim/metrics.h"
#include "sim/scheduler.h"
#include "workload/request.h"

namespace aptserve {

enum class DispatchPolicy {
  kRoundRobin,
  /// Assign to the instance with the least prompt tokens dispatched within
  /// the trailing window (a backlog proxy).
  kLeastLoaded,
  /// Pick two instances uniformly at random, assign to the less loaded —
  /// the classic power-of-two-choices balancer.
  kPowerOfTwo,
};

const char* DispatchPolicyName(DispatchPolicy p);

struct DispatchConfig {
  int32_t n_instances = 2;
  DispatchPolicy policy = DispatchPolicy::kLeastLoaded;
  /// Sliding window (seconds) over which dispatched prompt tokens count as
  /// backlog.
  double load_window_s = 30.0;
  uint64_t dispatch_seed = 99;
};

/// Assigns each request of `trace` to an instance under `config`.
std::vector<int32_t> DispatchTrace(const std::vector<Request>& trace,
                                   const DispatchConfig& config);

struct MultiInstanceResult {
  SloReport combined;
  std::vector<SloReport> per_instance;
  std::vector<int32_t> requests_per_instance;
};

/// Creates one scheduler per instance (each instance needs its own
/// stateful scheduler object).
using SchedulerFactory = std::function<std::unique_ptr<Scheduler>()>;

/// Creates the execution backend for instance `i` (each instance owns its
/// pool/engine).
using BackendFactory =
    std::function<StatusOr<std::unique_ptr<ExecutionBackend>>(int32_t)>;

class MultiInstanceRunner {
 public:
  MultiInstanceRunner(const DispatchConfig& dispatch,
                      const ServingLoopConfig& loop,
                      const RuntimeConfig& runtime = RuntimeConfig{});

  /// Dispatches `trace` across instances, serves each shard with its own
  /// ServingLoop over a backend from `make_backend`, and merges reports.
  /// Instances run concurrently when the runtime allows; the result is
  /// bit-identical to the serial run.
  StatusOr<MultiInstanceResult> Run(const std::vector<Request>& trace,
                                    const SchedulerFactory& make_scheduler,
                                    const BackendFactory& make_backend,
                                    const SloSpec& slo);

  /// Exposed for tests: the dispatch assignment for a trace.
  std::vector<int32_t> Dispatch(const std::vector<Request>& trace) const;

 private:
  DispatchConfig dispatch_;
  ServingLoopConfig loop_;
  RuntimeConfig runtime_;
};

/// Merges per-instance reports into a fleet-level report: attainment is
/// request-weighted, latency sample sets are unioned, serving time is the
/// parallel maximum, counters are summed.
SloReport MergeReports(const std::vector<SloReport>& reports,
                       const std::vector<int32_t>& request_counts);

}  // namespace aptserve
