// Multi-instance serving (the paper's §8 future work: "generalize
// Apt-Serve's designs to the multi-instance scenario"). The fleet Router
// (serve/router.h) is the single entry point for multi-instance traffic:
// it owns the global arrival queue, admits each request against its SLO,
// and assigns it to one of N independent ServingLoop instances; instances
// then run to completion and the reports are merged.
//
// The runner is generic over ExecutionBackend: the same routing policies
// shard the analytic simulator (CostModelBackend) and the real engine
// (InferenceBackend) — the fleet composes with any backend for free, and
// because routing is backend-independent, the same trace produces the
// same shards (and therefore identical prefix-hit accounting) on both.
//
// With a RuntimeConfig of more than one thread, instances run concurrently
// on a fleet thread pool (one task per instance epoch). Routing is
// computed up front from arrivals alone, schedulers/backends are
// constructed serially in instance order (factories may share state), and
// the merge happens behind the ParallelFor join in instance order — so
// every routing decision and the merged report are bit-identical to the
// serial runner at any thread count.
//
// The router sees only what a real front-end would: arrival times, prompt
// lengths, prompt token ids and per-request SLOs. DispatchPolicy /
// DispatchConfig / DispatchTrace are the pre-router dispatch API, kept as
// thin aliases over the router's legacy policies.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "prefix/prefix_index.h"
#include "runtime/runtime_config.h"
#include "serve/execution_backend.h"
#include "serve/fleet_controller.h"
#include "serve/router.h"
#include "serve/serving_loop.h"
#include "sim/metrics.h"
#include "sim/scheduler.h"
#include "workload/request.h"

namespace aptserve {

/// Pre-router dispatch policies (compatibility aliases; the Router
/// reproduces their assignments bit-for-bit).
enum class DispatchPolicy {
  kRoundRobin,
  /// Assign to the instance with the least prompt tokens dispatched within
  /// the trailing window (a backlog proxy).
  kLeastLoaded,
  /// Pick two instances uniformly at random, assign to the less loaded —
  /// the classic power-of-two-choices balancer.
  kPowerOfTwo,
};

const char* DispatchPolicyName(DispatchPolicy p);

struct DispatchConfig {
  int32_t n_instances = 2;
  DispatchPolicy policy = DispatchPolicy::kLeastLoaded;
  /// Sliding window (seconds) over which dispatched prompt tokens count as
  /// backlog.
  double load_window_s = 30.0;
  uint64_t dispatch_seed = 99;
};

/// The RouterConfig equivalent of a legacy dispatch configuration.
RouterConfig ToRouterConfig(const DispatchConfig& config);

/// Assigns each request of `trace` to an instance under `config`
/// (admission-free routing; kept for existing callers and parity tests).
std::vector<int32_t> DispatchTrace(const std::vector<Request>& trace,
                                   const DispatchConfig& config);

// MultiInstanceResult, SchedulerFactory, BackendFactory and MergeReports
// now live in serve/fleet_controller.h (the runner is a thin static-fleet
// facade over the event-driven FleetController) and are re-exported here
// for existing users.

class MultiInstanceRunner {
 public:
  /// Fleet behind an SLO-aware router (the primary entry point). `cells`
  /// configures the hierarchical fleet-of-fleets front tier; the default
  /// (num_cells = 1) is the flat fleet, bit-identical to runners built
  /// before cells existed.
  MultiInstanceRunner(const Router& router, const ServingLoopConfig& loop,
                      const RuntimeConfig& runtime = RuntimeConfig{},
                      const CellRouterConfig& cells = CellRouterConfig{});

  /// Legacy dispatch-policy fleet; equivalent to a Router over
  /// ToRouterConfig(dispatch) with admission off.
  MultiInstanceRunner(const DispatchConfig& dispatch,
                      const ServingLoopConfig& loop,
                      const RuntimeConfig& runtime = RuntimeConfig{});

  /// Routes `trace` across instances, serves each admitted shard with its
  /// own ServingLoop over a backend from `make_backend`, and merges
  /// reports (rejected requests are folded into the combined attainment).
  /// Instances run concurrently when the runtime allows; the result is
  /// bit-identical to the serial run.
  StatusOr<MultiInstanceResult> Run(const std::vector<Request>& trace,
                                    const SchedulerFactory& make_scheduler,
                                    const BackendFactory& make_backend,
                                    const SloSpec& slo);

  /// The same fleet as a real-time continuously-batching server
  /// (serve/async_serving.h): per-instance worker threads, bounded
  /// arrival queues, wall-clock TTFT/TBT. Token streams are bit-identical
  /// to Run(); only timing differs. Defined in async_serving.cc.
  StatusOr<AsyncServingResult> RunAsync(const std::vector<Request>& trace,
                                        const SchedulerFactory& make_scheduler,
                                        const BackendFactory& make_backend,
                                        const SloSpec& slo,
                                        const AsyncServingConfig& async);

  /// Exposed for tests: the full routing decision for a trace.
  RouteDecision Route(const std::vector<Request>& trace) const {
    return router_.Route(trace);
  }
  /// Legacy accessor: the per-request instance assignment.
  std::vector<int32_t> Dispatch(const std::vector<Request>& trace) const {
    return router_.Route(trace).assignment;
  }

  const Router& router() const { return router_; }

 private:
  Router router_;
  ServingLoopConfig loop_;
  RuntimeConfig runtime_;
  CellRouterConfig cells_;
};

}  // namespace aptserve
