#include "serve/async_serving.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "runtime/bounded_queue.h"
#include "runtime/clock.h"
#include "serve/multi_instance.h"

namespace aptserve {

namespace {

void AddPrefixStats(const PrefixStats& from, PrefixStats* into) {
  into->lookups += from.lookups;
  into->hits += from.hits;
  into->matched_tokens += from.matched_tokens;
  into->shared_blocks += from.shared_blocks;
  into->cow_matches += from.cow_matches;
  into->inserted_blocks += from.inserted_blocks;
  into->evicted_blocks += from.evicted_blocks;
}

/// What travels controller -> worker over an arrival queue: a freshly
/// routed request, or a shed request migrating in with its cache state.
struct AsyncCommand {
  enum class Kind { kInject, kReceive };
  Kind kind = Kind::kInject;
  Request request;            ///< kInject
  double wall_arrival = 0.0;  ///< kInject: wall stamp at release
  MigratedRequest migrated;   ///< kReceive
};

/// What travels worker -> controller over the event queue.
struct AsyncEvent {
  enum class Kind { kFinished, kShed, kError };
  Kind kind = Kind::kFinished;
  int32_t instance = -1;
  RequestId id = -1;          ///< kFinished
  double virtual_time = 0.0;  ///< kFinished: instance-frame finish time
  MigratedRequest migrated;   ///< kShed
  Status error = Status::OK();
};

/// One continuously-batching serving instance: a worker thread that owns
/// the loop state end-to-end (no cross-thread access to the loop, ever —
/// all communication is queue messages and the published depth atomic).
struct AsyncInstance {
  std::unique_ptr<Scheduler> scheduler;
  std::unique_ptr<ExecutionBackend> backend;
  std::unique_ptr<ServingLoopState> loop;
  std::unique_ptr<runtime::BoundedQueue<AsyncCommand>> arrivals;
  std::thread thread;
  /// Waiting-queue depth the worker publishes each iteration — the
  /// controller's shed-target picker reads it without touching the loop.
  std::atomic<int32_t> waiting_depth{0};
};

}  // namespace

StatusOr<AsyncServingResult> RunAsyncFleet(
    const std::vector<Request>& trace, const Router& router,
    const ServingLoopConfig& loop_config, const AsyncServingConfig& async,
    const SchedulerFactory& make_scheduler, const BackendFactory& make_backend,
    const SloSpec& slo, const CostModel* migration_cost_model) {
  const int32_t n = router.config().n_instances;
  APT_CHECK(n >= 1);
  APT_CHECK(async.queue_capacity >= 1);
  APT_CHECK(async.replay_speedup > 0.0);

  runtime::MonotonicClock clock;
  // Sized so worker event pushes can always complete while the controller
  // is momentarily blocked handing a shed request to a full arrival queue
  // (every request finishes exactly once; sheds are drained continuously).
  runtime::BoundedQueue<AsyncEvent> events(2 * trace.size() + 256);

  std::vector<std::unique_ptr<AsyncInstance>> fleet;
  fleet.reserve(n);
  for (int32_t i = 0; i < n; ++i) {
    auto inst = std::make_unique<AsyncInstance>();
    inst->scheduler = make_scheduler();
    APT_ASSIGN_OR_RETURN(inst->backend, make_backend(i));
    inst->loop =
        std::make_unique<ServingLoopState>(inst->backend.get(), loop_config);
    if (async.trace != nullptr || async.metrics != nullptr) {
      inst->loop->AttachObservability(
          async.trace != nullptr ? async.trace->MakeSink(i)
                                 : obs::TraceSink(),
          async.metrics, i);
    }
    APT_RETURN_NOT_OK(inst->loop->Start({}, inst->scheduler.get(), slo));
    inst->loop->AttachWallClock(&clock);
    inst->arrivals = std::make_unique<runtime::BoundedQueue<AsyncCommand>>(
        async.queue_capacity);
    fleet.push_back(std::move(inst));
  }

  std::atomic<bool> abort{false};
  std::atomic<int64_t> routed{0};
  std::atomic<int64_t> rejected{0};
  std::atomic<int64_t> deprioritized{0};
  std::atomic<bool> feeder_done{false};

  const auto close_all = [&] {
    for (auto& inst : fleet) inst->arrivals->Close();
    events.Close();
  };

  // ---- Worker: one instance's continuous batching loop ---------------------
  const auto worker_main = [&](int32_t me) {
    AsyncInstance& self = *fleet[me];
    ServingLoopState& loop = *self.loop;
    const auto fail = [&](Status s) {
      AsyncEvent ev;
      ev.kind = AsyncEvent::Kind::kError;
      ev.instance = me;
      ev.error = std::move(s);
      (void)events.Push(std::move(ev));
    };
    const auto apply = [&](AsyncCommand cmd) -> Status {
      if (cmd.kind == AsyncCommand::Kind::kInject) {
        return loop.Inject(cmd.request, cmd.request.arrival, cmd.wall_arrival);
      }
      // Shed migration in: schedulable at the later of the source-frame
      // availability and this instance's own clock, plus the priced
      // interconnect delay over post-dedupe bytes.
      const double base = std::max(cmd.migrated.available_at, loop.now());
      const auto delay = [&](const MigrationImport& import) {
        return migration_cost_model != nullptr
                   ? migration_cost_model->MigrationSeconds(import.bytes)
                   : 0.0;
      };
      return loop.Receive(std::move(cmd.migrated), base, delay).status();
    };

    while (!abort.load(std::memory_order_acquire)) {
      // 1. Admit everything that arrived since the last iteration — the
      // mid-step Inject seam, no barrier between admission and execution.
      bool applied_any = false;
      for (AsyncCommand& cmd : self.arrivals->DrainNow()) {
        if (Status s = apply(std::move(cmd)); !s.ok()) {
          fail(std::move(s));
          return;
        }
        applied_any = true;
      }

      // 2. Fuse the timelines and run one iteration.
      loop.SyncClock(clock.Now() * async.replay_speedup);
      if (loop.iterations() >= loop_config.max_iterations) {
        fail(Status::Internal("async serving loop hit the iteration cap"));
        return;
      }
      auto progress = loop.Step();
      if (!progress.ok()) {
        fail(progress.status());
        return;
      }
      self.waiting_depth.store(loop.NumWaiting(), std::memory_order_release);

      // 3. Publish completions back over the fabric.
      for (const auto& [id, t] : loop.TakeRecentFinishes()) {
        AsyncEvent ev;
        ev.kind = AsyncEvent::Kind::kFinished;
        ev.instance = me;
        ev.id = id;
        ev.virtual_time = t;
        if (!events.Push(std::move(ev))) return;  // shutting down
      }

      // 4. Queue-depth shedding: overloaded instances export one waiting
      // request (cache included) per iteration; the controller re-routes
      // it to the coolest instance.
      if (async.shed_queue_depth > 0 &&
          loop.NumWaiting() > async.shed_queue_depth) {
        const auto candidates = loop.MigratableWaiting();
        if (!candidates.empty()) {
          // The shed instant precedes Extract so readers see the queue
          // depth that triggered it; Extract itself opens the migration
          // flow arrow that the destination's Receive closes.
          if (loop.trace_sink()) {
            loop.trace_sink().Instant(obs::TraceOp::kShed, clock.Now(),
                                      candidates.front(),
                                      static_cast<double>(loop.NumWaiting()));
          }
          auto m = loop.Extract(candidates.front());
          if (!m.ok()) {
            fail(m.status());
            return;
          }
          AsyncEvent ev;
          ev.kind = AsyncEvent::Kind::kShed;
          ev.instance = me;
          ev.migrated = std::move(*m);
          if (!events.Push(std::move(ev))) return;
        }
      }

      // 5. Park while drained: block on the arrival queue instead of
      // spinning, and exit once the fabric is closed and empty.
      if (*progress == ServingLoopState::Progress::kDrained && !applied_any) {
        auto cmd = self.arrivals->PopFor(std::chrono::nanoseconds(
            static_cast<int64_t>(async.idle_poll_s * 1e9)));
        if (cmd.has_value()) {
          if (Status s = apply(std::move(*cmd)); !s.ok()) {
            fail(std::move(s));
            return;
          }
          continue;
        }
        if (self.arrivals->closed() && self.arrivals->size() == 0 &&
            loop.AllServed()) {
          return;
        }
      }
    }
  };

  // ---- Feeder: real-time trace replay through the router -------------------
  // Incremental RouteOne in arrival order over the all-live static fleet is
  // bit-identical to the virtual mode's routing pass, so each request goes
  // to the same instance in both modes — the routing half of the
  // determinism contract.
  const auto feeder_main = [&] {
    RouterState rstate = router.MakeState(n);
    if (async.trace != nullptr) {
      router.AttachTrace(&rstate, async.trace->MakeSink(obs::kRouterTrack),
                         &clock);
    }
    const std::vector<uint8_t> live(static_cast<size_t>(n), 1);
    for (size_t idx = 0; idx < trace.size(); ++idx) {
      if (abort.load(std::memory_order_acquire)) break;
      const Request& req = trace[idx];
      const double release = req.arrival / async.replay_speedup;
      while (!abort.load(std::memory_order_acquire)) {
        const double lag = release - clock.Now();
        if (lag <= 0) break;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(std::min(lag, 0.001)));
      }
      bool best_effort = false;
      const int32_t inst =
          router.RouteOne(req, idx, live, &rstate, &best_effort);
      if (inst == RouteDecision::kRejected) {
        rejected.fetch_add(1, std::memory_order_acq_rel);
        continue;
      }
      AsyncCommand cmd;
      cmd.kind = AsyncCommand::Kind::kInject;
      cmd.request = req;
      if (best_effort) {
        cmd.request.best_effort = true;
        deprioritized.fetch_add(1, std::memory_order_acq_rel);
      }
      cmd.wall_arrival = clock.Now();
      routed.fetch_add(1, std::memory_order_acq_rel);
      // Blocking push: a full queue is backpressure, not an error. False
      // means the fabric closed under us (abort path).
      if (!fleet[inst]->arrivals->Push(std::move(cmd))) break;
    }
    feeder_done.store(true, std::memory_order_release);
  };

  std::thread feeder(feeder_main);
  for (int32_t i = 0; i < n; ++i) {
    fleet[i]->thread = std::thread(worker_main, i);
  }

  // ---- Controller: drain events until the fleet runs dry -------------------
  Status first_error = Status::OK();
  int64_t finished = 0;
  int64_t shed_migrations = 0;
  std::vector<int64_t> sheds_per_instance(static_cast<size_t>(n), 0);
  while (true) {
    if (feeder_done.load(std::memory_order_acquire) &&
        finished == routed.load(std::memory_order_acquire)) {
      break;
    }
    if (clock.Now() > async.max_wall_seconds) {
      first_error = Status::Internal(
          "async serving exceeded the wall-time valve (" +
          std::to_string(async.max_wall_seconds) + "s)");
      abort.store(true, std::memory_order_release);
      break;
    }
    auto ev = events.PopFor(std::chrono::milliseconds(1));
    if (!ev.has_value()) continue;
    if (ev->kind == AsyncEvent::Kind::kFinished) {
      ++finished;
    } else if (ev->kind == AsyncEvent::Kind::kError) {
      first_error = ev->error;
      abort.store(true, std::memory_order_release);
      break;
    } else {  // kShed: hand the migrant to the coolest instance.
      // Coolest published depth, lowest id on ties; a lone instance
      // receives its own shed back (re-injection, still well-formed).
      int32_t dst = ev->instance;
      int32_t best_depth = std::numeric_limits<int32_t>::max();
      for (int32_t i = 0; i < n; ++i) {
        if (i == ev->instance) continue;
        const int32_t d =
            fleet[i]->waiting_depth.load(std::memory_order_acquire);
        if (d < best_depth) {
          best_depth = d;
          dst = i;
        }
      }
      AsyncCommand cmd;
      cmd.kind = AsyncCommand::Kind::kReceive;
      cmd.migrated = std::move(ev->migrated);
      ++shed_migrations;
      ++sheds_per_instance[ev->instance];
      // Blocking push is deadlock-free: the destination worker drains its
      // arrival queue every iteration and its event pushes cannot fill the
      // (finish-count-sized) event queue.
      if (!fleet[dst]->arrivals->Push(std::move(cmd))) break;
    }
  }
  const double wall_end = clock.Now();

  // Shutdown: close the fabric (wakes blocked pushes and parked workers),
  // then join. On the error path workers exit via the abort flag even with
  // unfinished requests aboard.
  close_all();
  feeder.join();
  for (auto& inst : fleet) inst->thread.join();
  APT_RETURN_NOT_OK(first_error);

  // ---- Finalize (single-threaded again): assemble the fleet result ---------
  AsyncServingResult out;
  MultiInstanceResult& result = out.serve;
  result.per_instance.resize(n);
  result.requests_per_instance.assign(n, 0);
  result.prefill_computed_per_instance.assign(n, 0);
  result.prefill_skipped_per_instance.assign(n, 0);
  result.prefix_per_instance.resize(n);
  result.rejected_requests = rejected.load();
  result.deprioritized_requests = deprioritized.load();
  out.arrival_queue_high_water_per_instance.assign(n, 0);
  out.sheds_per_instance = sheds_per_instance;
  WallClockMetrics wall;
  for (int32_t i = 0; i < n; ++i) {
    AsyncInstance& inst = *fleet[i];
    out.arrival_queue_high_water_per_instance[i] = inst.arrivals->high_water();
    out.arrival_queue_high_water =
        std::max(out.arrival_queue_high_water, inst.arrivals->high_water());
    if (async.metrics != nullptr) {
      const std::string label = "instance=\"" + std::to_string(i) + "\"";
      async.metrics
          ->GetGauge("aptserve_async_arrival_queue_high_water", label)
          ->SetMax(static_cast<double>(inst.arrivals->high_water()));
      async.metrics->GetCounter("aptserve_async_sheds_total", label)
          ->Inc(sheds_per_instance[i]);
    }
    if (inst.loop->NumRegistered() == 0) continue;
    APT_ASSIGN_OR_RETURN(ServingLoopResult r, inst.loop->Finish());
    result.per_instance[i] = r.report;
    result.requests_per_instance[i] = static_cast<int32_t>(r.records.size());
    result.prefill_computed_per_instance[i] = r.prefill_tokens_computed;
    result.prefill_skipped_per_instance[i] = r.prefill_tokens_skipped;
    result.prefix_per_instance[i] = r.prefix;
    result.prefill_tokens_computed += r.prefill_tokens_computed;
    result.prefill_tokens_skipped += r.prefill_tokens_skipped;
    result.tokens_generated += r.tokens_generated;
    AddPrefixStats(r.prefix, &result.prefix);
    wall.Merge(r.wall_metrics);
  }
  result.combined =
      MergeReports(result.per_instance, result.requests_per_instance);
  FoldRejectedIntoReport(result.rejected_requests, &result.combined);
  out.wall = wall.Report();
  out.wall_duration_s = wall_end;
  out.shed_migrations = shed_migrations;
  return out;
}

StatusOr<AsyncServingResult> FleetController::RunAsync(
    const std::vector<Request>& trace, const SchedulerFactory& make_scheduler,
    const BackendFactory& make_backend, const SloSpec& slo,
    const AsyncServingConfig& async) {
  if (config_.IsElastic()) {
    return Status::InvalidArgument(
        "async serving runs a static fleet: scaling rules and planner "
        "migration are virtual-time features (queue shedding is the async "
        "mode's live motion)");
  }
  if (config_.cells.num_cells > 1) {
    return Status::InvalidArgument(
        "async serving does not support hierarchical (num_cells > 1) "
        "fleets yet: the cell front tier runs on the virtual-time routing "
        "path");
  }
  return RunAsyncFleet(trace, router_, config_.loop, async, make_scheduler,
                       make_backend, slo, migration_cost_model_);
}

StatusOr<AsyncServingResult> MultiInstanceRunner::RunAsync(
    const std::vector<Request>& trace, const SchedulerFactory& make_scheduler,
    const BackendFactory& make_backend, const SloSpec& slo,
    const AsyncServingConfig& async) {
  if (cells_.num_cells > 1) {
    return Status::InvalidArgument(
        "async serving does not support hierarchical (num_cells > 1) "
        "fleets yet: the cell front tier runs on the virtual-time routing "
        "path");
  }
  return RunAsyncFleet(trace, router_, loop_, async, make_scheduler,
                       make_backend, slo, router_.cost_model());
}

}  // namespace aptserve
