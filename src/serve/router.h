// Router: the fleet-level serving front-end. It owns the global arrival
// queue — every request entering a multi-instance fleet passes through
// Route() — and decides, per request in arrival order, (a) whether the
// request is admitted against its SLO and (b) which instance serves it.
//
// Policies:
//   - kRoundRobin / kLeastLoaded / kPowerOfTwo: the pre-router dispatch
//     policies, reproduced bit-for-bit (same sliding-window backlog, same
//     RNG draw sequence) so existing fleets behave identically.
//   - kLeastOutstandingWork: routes to the instance with the least
//     *predicted* outstanding work — each routed request contributes its
//     estimated prefill seconds plus predicted-output-length decode
//     seconds (core/length_predictor + the cost model), draining in real
//     time (a per-instance busy-until clock).
//   - kPrefixAffinity: probes a per-instance mirror of the instances'
//     PrefixIndex content (block-granular radix match over routed prompt
//     token ids) and routes to the longest match, capped by a
//     load-imbalance bound; no usable match falls back to least
//     outstanding work. Cross-instance cache locality becomes goodput:
//     turns of one conversation land where their prefix already lives.
//
// Admission control (optional): a request whose predicted TTFT — queue
// wait on the chosen instance plus its own prefill time — exceeds
// `admission_slack` times its effective TTFT deadline is rejected (never
// served; counted into fleet attainment as a miss) or deprioritized
// (served best-effort, excluded from attainment/goodput).
//
// Determinism: Route() is a pure function of (trace, config, cost model,
// predictor state) — a single serial pass with no wall-clock or
// cross-thread input — so fleet results are bit-identical at any thread
// count and across backends, which is what makes the cross-backend
// differential tests possible.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/length_predictor.h"
#include "obs/trace_recorder.h"
#include "runtime/clock.h"
#include "sim/cost_model.h"
#include "sim/metrics.h"
#include "workload/request.h"

namespace aptserve {

enum class RoutePolicy {
  kRoundRobin,
  kLeastLoaded,
  kPowerOfTwo,
  kLeastOutstandingWork,
  kPrefixAffinity,
};

const char* RoutePolicyName(RoutePolicy p);

enum class AdmissionMode {
  kNone,          ///< admit everything (default; pre-router behavior).
  kReject,        ///< turn away requests predicted to miss their deadline.
  kDeprioritize,  ///< serve them best-effort instead (excluded from goodput).
};

struct RouterConfig {
  int32_t n_instances = 2;
  RoutePolicy policy = RoutePolicy::kRoundRobin;

  /// kLeastLoaded / kPowerOfTwo: sliding window (seconds) over which
  /// dispatched prompt tokens count as backlog, and the p2c seed. Must
  /// match the legacy DispatchConfig values for bit-for-bit parity.
  double load_window_s = 30.0;
  uint64_t dispatch_seed = 99;

  /// kLeastOutstandingWork / admission: predicted output length when the
  /// predictor has no signal for a prompt-length bucket (or none is set).
  double default_output_len = 128.0;
  /// Work-estimate fallback when no cost model is provided: seconds per
  /// token of prompt + predicted output (matches the inference backend's
  /// default virtual_item_seconds order of magnitude).
  double fallback_seconds_per_token = 1e-3;

  /// kPrefixAffinity: granularity of the affinity mirror. Match it to the
  /// instances' cache block size so the mirror's full-block score tracks
  /// their PrefixIndex match lengths (the mirror approximates the real
  /// index: it ignores partial-block COW spans, never evicts, and inserts
  /// at route time rather than at prefill completion — a routing score,
  /// not an accounting oracle).
  int32_t block_size = 16;
  /// Load-imbalance cap: an instance is an affinity candidate only while
  /// its outstanding work exceeds the fleet minimum by at most this many
  /// seconds. Keeps a hot shared prefix from funneling the whole trace
  /// onto one instance.
  double affinity_max_imbalance_s = 10.0;
  /// Per-instance cap on affinity-mirror radix nodes. When an Insert would
  /// exceed it the mirror LRU-evicts leaf chunks (oldest last-touch first),
  /// so long runs degrade gracefully instead of growing without bound.
  /// Generous by default: ~256k nodes per instance, each one block chunk.
  int64_t affinity_mirror_max_nodes = int64_t{1} << 18;

  AdmissionMode admission = AdmissionMode::kNone;
  /// Reject/deprioritize when predicted TTFT > slack * effective deadline.
  double admission_slack = 1.0;
  /// Deadlines for requests that carry no per-request SLO.
  SloSpec default_slo{1.0, 1.0};
};

struct RouteDecision {
  static constexpr int32_t kRejected = -1;

  /// Instance per trace index; kRejected for turned-away requests.
  std::vector<int32_t> assignment;
  /// Deprioritized (best-effort) flag per trace index.
  std::vector<uint8_t> best_effort;
  int64_t admitted = 0;
  int64_t rejected = 0;
  int64_t deprioritized = 0;
  std::vector<int32_t> admitted_per_instance;
};

/// Deterministic routing-cost accounting, accumulated across every
/// RouteOne against one RouterState. Counts state *examinations* — not
/// wall time — so the numbers are bit-identical across thread counts and
/// build modes, and regressions show up as counter diffs:
///   - instance_probes: per-instance load/backlog/score reads (each
///     instance examined by a policy scan, p2c sample, or admission spill
///     counts once).
///   - mirror_nodes_walked: affinity-mirror radix nodes visited while
///     scoring candidates (the term that grows with both fleet size and
///     prefix depth under flat kPrefixAffinity).
///   - mirror_nodes / mirror_node_peak / mirror_evictions: resident mirror
///     footprint across all instances and the LRU-cap witness.
/// The hierarchical front tier folds its cell-level counters into the
/// cell_* fields so one struct describes the whole routing path.
struct RouteCostStats {
  int64_t decisions = 0;
  int64_t instance_probes = 0;
  int64_t mirror_nodes_walked = 0;
  int64_t mirror_nodes = 0;
  int64_t mirror_node_peak = 0;
  int64_t mirror_evictions = 0;
  int64_t cell_probes = 0;
  int64_t cell_hash_routed = 0;
  int64_t cell_fallback_routed = 0;

  /// Total examinations per routing decision — the bench's scaling gate.
  double ProbesPerDecision() const {
    return decisions > 0 ? static_cast<double>(instance_probes +
                                               mirror_nodes_walked +
                                               cell_probes) /
                               static_cast<double>(decisions)
                         : 0.0;
  }
};

/// The mutable routing model (backlog windows, busy-until clocks, affinity
/// mirrors, the p2c RNG) held across incremental RouteOne calls. Opaque;
/// created by Router::MakeState. The event-driven FleetController keeps one
/// per run and routes each arrival as it happens against the live instance
/// set; Router::Route is the batch form over an all-live fleet.
class RouterState {
 public:
  RouterState();
  ~RouterState();
  RouterState(RouterState&&) noexcept;
  RouterState& operator=(RouterState&&) noexcept;

  /// Instances this state can route to (fixed at MakeState).
  int32_t capacity() const;

  /// Routing-cost counters accumulated by RouteOne calls against this
  /// state (cell_* fields stay zero; the fleet controller merges the
  /// hierarchical tier's counters in when reporting).
  const RouteCostStats& cost_stats() const;

 private:
  friend class Router;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

class Router {
 public:
  /// `cost_model` (optional, borrowed) prices work estimates for
  /// kLeastOutstandingWork, the affinity imbalance cap, and admission
  /// control; without one, estimates fall back to
  /// fallback_seconds_per_token. `predictor` (optional, borrowed) supplies
  /// expected output lengths; without one, default_output_len is used.
  explicit Router(const RouterConfig& config,
                  const CostModel* cost_model = nullptr,
                  const OutputLengthPredictor* predictor = nullptr);

  /// Routes `trace` (sorted by arrival) in one deterministic pass. All
  /// routing state (backlog windows, busy-until clocks, affinity mirrors,
  /// the p2c RNG) is local to the call, so Route is const and repeatable.
  /// Implemented as MakeState + RouteOne per request over an all-live
  /// fleet, so batch and incremental routing are bit-identical.
  RouteDecision Route(const std::vector<Request>& trace) const;

  /// A fresh routing state for incremental routing, able to address
  /// max(config().n_instances, max_instances) instances (an elastic fleet
  /// sizes it at its scale-up ceiling).
  RouterState MakeState(int32_t max_instances = 0) const;

  /// Grows `state` to address `n_instances` (new instances start with
  /// empty routing models). Instance ids are lifetime-unique in an elastic
  /// fleet — a retired id is never reused — so the state grows past the
  /// alive ceiling over a long run. No-op when already large enough.
  void GrowState(RouterState* state, int32_t n_instances) const;

  /// Routes one request (requests must be fed in arrival order) against
  /// the instances with live[i] != 0, updating `state`'s models exactly as
  /// the batch pass would. `trace_index` drives round-robin. Returns the
  /// chosen instance or RouteDecision::kRejected; `*best_effort` reports an
  /// admission deprioritization. At least one instance must be live.
  int32_t RouteOne(const Request& req, size_t trace_index,
                   const std::vector<uint8_t>& live, RouterState* state,
                   bool* best_effort) const;

  /// RouteOne against an explicit live-instance id list (ascending,
  /// non-empty, ids < state capacity). Bit-identical to the mask form fed
  /// the equivalent mask; the mask form is a thin wrapper over this. The
  /// hierarchical front tier calls this with a cell's member list so the
  /// per-decision cost scales with the cell width, not the fleet width.
  int32_t RouteOneLive(const Request& req, size_t trace_index,
                       const std::vector<int32_t>& live_ids,
                       RouterState* state, bool* best_effort) const;

  /// Attaches a trace sink to `state`: subsequent RouteOne calls emit
  /// route-decision and admission-verdict events on the router track.
  /// Purely observational (no routing state is touched). `clock`
  /// (optional, borrowed) stamps events in wall time — the async feeder
  /// passes its replay clock; null stamps them with each request's arrival
  /// time, the virtual frame the router already routes in.
  void AttachTrace(RouterState* state, obs::TraceSink sink,
                   const runtime::Clock* clock = nullptr) const;

  /// Estimated seconds to serve `r` alone: prefill plus predicted decode.
  /// Exposed for tests of the admission math.
  double EstimatedServiceSeconds(const Request& r) const;
  /// Estimated prefill-only seconds (the TTFT compute term).
  double EstimatedPrefillSeconds(const Request& r) const;

  const RouterConfig& config() const { return config_; }
  /// The cost model pricing this router's work estimates (null when none);
  /// the fleet controller reuses it to price migration transfers.
  const CostModel* cost_model() const { return cost_model_; }

 private:
  double PredictedOutputLen(const Request& r) const;

  RouterConfig config_;
  const CostModel* cost_model_;
  const OutputLengthPredictor* predictor_;
};

}  // namespace aptserve
