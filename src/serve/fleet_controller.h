// FleetController: the event-driven multi-instance serving layer. One
// virtual-time loop interleaves per-instance serving-loop epochs
// (ServingLoopState::Step) with controller ticks; each tick evaluates
// pluggable scaling policies to grow the fleet (cold start with a
// configurable warmup latency) or drain-and-remove instances, and a
// migration planner that moves queued or preempted requests off hot or
// draining instances *with their hybrid KV/hidden cache state*
// (ServingLoopState::Extract/Receive over the backends'
// ExportRequest/ImportRequest — shared prefix blocks re-resolve through the
// destination's PrefixIndex so they dedupe instead of copying, and the
// interconnect transfer is priced by CostModel::MigrationSeconds).
//
// Requests are routed live, at arrival, against the currently-live
// instance set (Router::RouteOne); scale events only happen at tick
// boundaries, so routing within a tick window sees a constant fleet.
//
// Determinism: ticks, routing, scaling, and migration all run serially at
// window barriers; instances only execute their own independent epochs
// between barriers (in parallel on the fleet thread pool when the runtime
// allows). Results are therefore bit-identical at any thread count.
//
// The static fleet is the degenerate case: no scaling rules, no migration.
// It runs as a single infinite window — route everything, run every
// instance to completion — which is operation-for-operation the classic
// MultiInstanceRunner (rebuilt on this controller and pinned by the router
// parity and serving-loop parity suites).
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "core/length_predictor.h"
#include "runtime/runtime_config.h"
#include "serve/cell_router.h"
#include "serve/router.h"
#include "serve/serving_loop.h"
#include "sim/metrics.h"
#include "sim/scheduler.h"
#include "workload/request.h"

namespace aptserve {

/// Creates one scheduler per instance (each instance needs its own
/// stateful scheduler object).
using SchedulerFactory = std::function<std::unique_ptr<Scheduler>()>;

/// Creates the execution backend for instance `i` (each instance owns its
/// pool/engine).
using BackendFactory =
    std::function<StatusOr<std::unique_ptr<ExecutionBackend>>(int32_t)>;

struct MultiInstanceResult {
  SloReport combined;
  std::vector<SloReport> per_instance;
  /// Requests served per instance (== the routed counts for a static
  /// fleet; migration moves them to where they actually finished).
  std::vector<int32_t> requests_per_instance;
  /// Admission outcomes (zero unless the router rejects/deprioritizes).
  int64_t rejected_requests = 0;
  int64_t deprioritized_requests = 0;
  /// Fleet prefill accounting: positions computed vs adopted from the
  /// instances' prefix indexes, summed and per instance.
  int64_t prefill_tokens_computed = 0;
  int64_t prefill_tokens_skipped = 0;
  std::vector<int64_t> prefill_computed_per_instance;
  std::vector<int64_t> prefill_skipped_per_instance;
  /// Prefix-sharing hit accounting, summed and per instance (all zeros
  /// when the backends run without an index).
  PrefixStats prefix;
  std::vector<PrefixStats> prefix_per_instance;
  int64_t tokens_generated = 0;
  /// Deterministic routing decision-cost counters for the whole run
  /// (intra-cell router probes plus, for a hierarchical fleet, the front
  /// tier's cell counters folded into the cell_* fields).
  RouteCostStats route_cost;
};

/// One pluggable scaling policy evaluated every controller tick. Rules
/// combine conservatively: any up-vote wins; the fleet shrinks only when
/// no rule votes up, at least one votes down, and none holds.
struct ScalingRule {
  enum class Kind {
    /// Mean block-pool utilization across live instances.
    kTargetUtilization,
    /// Trailing-window fleet TTFT attainment floor. Up-only — a guard
    /// never votes to shrink, and abstains while the window is empty.
    kSloAttainmentGuard,
    /// Waiting (queued) requests per live instance.
    kQueueDepth,
  };
  Kind kind = Kind::kQueueDepth;
  /// kTargetUtilization thresholds.
  double util_high = 0.85;
  double util_low = 0.30;
  /// kQueueDepth thresholds.
  double queue_high = 8.0;
  double queue_low = 1.0;
  /// kSloAttainmentGuard floor and rolling window.
  double attainment_floor = 0.90;
  double window_s = 30.0;

  static ScalingRule TargetUtilization(double high = 0.85, double low = 0.30) {
    ScalingRule r;
    r.kind = Kind::kTargetUtilization;
    r.util_high = high;
    r.util_low = low;
    return r;
  }
  static ScalingRule QueueDepth(double high = 8.0, double low = 1.0) {
    ScalingRule r;
    r.kind = Kind::kQueueDepth;
    r.queue_high = high;
    r.queue_low = low;
    return r;
  }
  static ScalingRule SloAttainmentGuard(double floor = 0.90,
                                        double window_s = 30.0) {
    ScalingRule r;
    r.kind = Kind::kSloAttainmentGuard;
    r.attainment_floor = floor;
    r.window_s = window_s;
    return r;
  }
};

/// The single home of fleet options (satellite of ISSUE 5: the legacy
/// sim-layer MultiInstanceConfig is now a thin wrapper around this).
struct FleetConfig {
  /// Routing policy, admission control, and the *initial* fleet size
  /// (router.n_instances).
  RouterConfig router;
  ServingLoopConfig loop;
  /// Fleet runtime: instances step concurrently on up to this many threads
  /// between controller barriers (bit-identical to serial).
  RuntimeConfig runtime;

  // ---- Elasticity ----------------------------------------------------------
  int32_t min_instances = 1;
  /// Scale-up ceiling; 0 means router.n_instances (no headroom).
  int32_t max_instances = 0;
  /// Controller tick (virtual seconds) between policy evaluations.
  double tick_interval_s = 1.0;
  /// Cold-start latency: a spawned instance starts serving this much
  /// virtual time after its spawn tick.
  double instance_warmup_s = 0.5;
  /// Empty = never scale (the static fleet).
  std::vector<ScalingRule> scaling;
  /// Minimum virtual time between scaling actions (anti-flapping).
  /// Asymmetric on purpose: growing is cheap to undo, shrinking under
  /// rising load costs SLO misses, so fleets react up fast and down slowly.
  double scale_up_cooldown_s = 2.0;
  double scale_down_cooldown_s = 15.0;

  // ---- Hierarchy (fleet of fleets) -----------------------------------------
  /// Two-level topology: cells.num_cells > 1 partitions the fleet into
  /// cells; a consistent-hash front tier (CellRouter) picks the cell from
  /// the request's leading prefix chunks, then the configured router
  /// policy runs unchanged over that cell's live members. num_cells = 1
  /// (the default) is the flat fleet, bit-identical to a config that
  /// predates cells. Instances are assigned to the least-populated cell
  /// at spawn (initial fleet: round-robin). Planner migrations prefer
  /// same-cell destinations; a forced cross-cell move is priced on the
  /// slower cross-cell interconnect tier.
  CellRouterConfig cells;

  // ---- Migration -----------------------------------------------------------
  /// Enables the migration planner: draining instances evacuate their
  /// queued/preempted requests, and hot instances shed queue depth to cool
  /// ones, cache state travelling along.
  bool enable_migration = false;
  /// Hot-rebalance trigger: (max - min) waiting-queue depth across live
  /// instances must exceed this before a rebalance migration happens.
  double migration_imbalance_threshold = 8.0;
  /// Per-tick cap on planner moves (drain evacuation + rebalance).
  int32_t max_migrations_per_tick = 8;

  // ---- Observability -------------------------------------------------------
  /// Optional, borrowed. When set, the controller emits scale events on
  /// the controller track, routes through a traced router state, and hands
  /// each instance's serving loop a per-instance sink. Purely
  /// observational: null (the default) runs bit-identically to a build
  /// without tracing.
  obs::TraceRecorder* trace = nullptr;
  /// Optional, borrowed. Collects fleet counters (migrations, bytes, cold
  /// starts, scale events by kind) plus the per-instance serving-loop
  /// metrics. Same purely-observational contract as `trace`.
  obs::MetricsRegistry* metrics = nullptr;

  bool IsElastic() const { return !scaling.empty() || enable_migration; }
  int32_t MaxInstances() const {
    return std::max(max_instances, router.n_instances);
  }
};

struct FleetResult {
  MultiInstanceResult serve;
  FleetMetrics fleet;
};

// Async wall-clock serving mode (serve/async_serving.h).
struct AsyncServingConfig;
struct AsyncServingResult;

class FleetController {
 public:
  /// Routes through a copy of `router` (its config().n_instances is the
  /// initial fleet size; config.router is ignored for routing).
  /// `migration_cost_model` prices cache transfers; defaults to the
  /// router's own cost model (instantaneous when neither exists).
  FleetController(const FleetConfig& config, const Router& router,
                  const CostModel* migration_cost_model = nullptr);

  /// Builds the Router from config.router with the given estimators.
  explicit FleetController(const FleetConfig& config,
                           const CostModel* cost_model = nullptr,
                           const OutputLengthPredictor* predictor = nullptr);

  /// Serves `trace` (sorted by arrival) on the elastic fleet. Scheduler
  /// and backend factories run eagerly for every spawned instance —
  /// routing is live, so (unlike the historical shard-and-run runner,
  /// which skipped empty shards) an instance's backend exists before
  /// anyone knows whether traffic will reach it. Factories must therefore
  /// succeed for every instance id up to the scale ceiling.
  StatusOr<FleetResult> Run(const std::vector<Request>& trace,
                            const SchedulerFactory& make_scheduler,
                            const BackendFactory& make_backend,
                            const SloSpec& slo);

  /// Serves `trace` in the async wall-clock mode: a static fleet of
  /// router().config().n_instances continuously-batching worker threads
  /// with real-time arrival replay — see serve/async_serving.h for the
  /// architecture and determinism contract. Token streams are
  /// bit-identical to Run() on a static fleet; only timing differs.
  /// Rejects elastic configs (scaling rules / planner migration): the
  /// async mode's only live motion is queue-depth shedding for now.
  /// Defined in async_serving.cc.
  StatusOr<AsyncServingResult> RunAsync(const std::vector<Request>& trace,
                                        const SchedulerFactory& make_scheduler,
                                        const BackendFactory& make_backend,
                                        const SloSpec& slo,
                                        const AsyncServingConfig& async);

  const Router& router() const { return router_; }
  const FleetConfig& config() const { return config_; }

 private:
  FleetConfig config_;
  Router router_;
  const CostModel* migration_cost_model_;
};

/// Merges per-instance reports into a fleet-level report: attainment is
/// weighted by eligible (non-best-effort) requests, latency sample sets
/// are unioned, serving time is the parallel maximum, counters are summed,
/// goodput is the merged SLO-met count over the fleet serving time.
SloReport MergeReports(const std::vector<SloReport>& reports,
                       const std::vector<int32_t>& request_counts);

}  // namespace aptserve
