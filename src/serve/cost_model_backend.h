// CostModelBackend: the analytic execution backend behind the serving
// simulator. It owns a standalone BlockPool/HybridCacheAssigner/SwapSpace,
// performs cache accounting for every scheduled step, and prices each
// iteration with the roofline CostModel — no real compute. The operation
// sequence (and therefore the virtual timeline) is bit-for-bit identical
// to the pre-refactor Simulator loop; tests/serving_loop_parity_test.cc
// pins that equivalence.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/block_pool.h"
#include "cache/hybrid_assigner.h"
#include "cache/swap_space.h"
#include "prefix/prefix_index.h"
#include "serve/execution_backend.h"
#include "sim/cost_model.h"

namespace aptserve {

class CostModelBackend : public ExecutionBackend {
 public:
  struct Options {
    /// Token positions per cache block.
    int32_t block_size = 16;
    /// Override the pool size (blocks). <= 0 derives it from the cost
    /// model's cluster memory minus weights (Table 2 accounting).
    int32_t pool_blocks_override = -1;
    /// Host swap capacity in blocks; <= 0 defaults to 4x the GPU pool
    /// (vLLM's swap_space default is of that order).
    int32_t swap_blocks = -1;
    /// Prefix sharing over the analytic pool: matched prefill positions
    /// are adopted instead of priced, mirroring the inference engine's
    /// compute skip so both backends agree on what a hit is worth. Off by
    /// default — the operation sequence is then bit-identical to the
    /// pre-sharing backend.
    bool enable_prefix_sharing = false;
    /// Seed/vocabulary for synthesizing token ids of requests that carry
    /// none (workload/token_ids.h). Traces with real token_ids ignore
    /// these. For cross-backend hit-accounting parity on length-only
    /// traces, match InferenceBackendOptions::prompt_seed and the engine's
    /// vocab_size (the defaults match prompt_seed's default).
    uint64_t token_seed = 7;
    int32_t token_vocab = 50272;
    /// Per-tier block encoding (cache/cache_types.h): an int8 tier packs
    /// kInt8SlotPack tokens per pool block (admission and growth inherit
    /// the density through the assigner) and its migration payloads are
    /// priced at int8 transport bytes. Prefix sharing gates itself off
    /// for an int8 KV tier. Default all-fp32 keeps the operation sequence
    /// bit-identical to the pre-quantization backend.
    CacheEncodingPolicy cache_encoding;
  };

  /// Pool blocks the configuration yields (shared with Simulator's
  /// DerivePoolBlocks accessor).
  static StatusOr<int32_t> DerivePoolBlocks(const CostModel& cost_model,
                                            const Options& options);

  static StatusOr<std::unique_ptr<CostModelBackend>> Create(
      const CostModel& cost_model, const Options& options);

  std::string name() const override { return "cost-model"; }
  Status Prepare(const std::vector<SimRequest>& reqs) override;
  Status Admit(const SimRequest& sr) override;
  StatusOr<MigrationImage> ExportRequest(const SimRequest& sr) override;
  StatusOr<MigrationImport> ImportRequest(const SimRequest& sr,
                                          const MigrationImage& image) override;
  const BlockPool* pool() const override { return &pool_; }
  const HybridCacheAssigner* assigner() const override { return &assigner_; }
  const CostModel* cost_model() const override { return &cost_model_; }
  void BeginIteration() override;
  StatusOr<double> EndIteration() override;
  double IdleAdvanceSeconds() const override { return cost_model_.overhead(); }
  Status Release(const SimRequest& sr) override;
  Status Convert(const SimRequest& sr, CacheType new_type) override;
  StatusOr<bool> TrySwapOut(const SimRequest& sr) override;
  StatusOr<bool> TrySwapIn(const SimRequest& sr) override;
  StatusOr<StepOutcome> ExecutePrefillChunk(const SimRequest& sr,
                                            CacheType cache_type,
                                            int32_t chunk) override;
  StatusOr<StepOutcome> ExecuteDecode(const SimRequest& sr) override;
  Status OnFinish(const SimRequest& sr) override;
  Status Finalize() override;
  int64_t swap_outs() const override { return swap_.total_swap_outs(); }
  int64_t swap_ins() const override { return swap_.total_swap_ins(); }
  const PrefixStats* prefix_stats() const override {
    return prefix_index_ ? &prefix_index_->stats() : nullptr;
  }
  int32_t ReclaimCache(int32_t min_blocks) override {
    return prefix_index_ ? prefix_index_->EvictLru(min_blocks) : 0;
  }

  int32_t pool_blocks() const { return pool_.num_blocks(); }
  /// The analytic backend's prefix index; null unless enabled.
  const PrefixIndex* prefix_index() const { return prefix_index_.get(); }

 private:
  CostModelBackend(const CostModel& cost_model, const Options& options,
                   int32_t pool_blocks);

  /// Records the request's prompt token ids (trace-provided or synthesized)
  /// when prefix sharing is on; shared by Prepare and Admit.
  Status RegisterTokenIds(const SimRequest& sr);

  CostModel cost_model_;
  Options options_;
  BlockPool pool_;
  HybridCacheAssigner assigner_;
  SwapSpace swap_;
  /// Declared after pool_ so destruction releases index references first.
  std::unique_ptr<PrefixIndex> prefix_index_;
  /// Prompt token ids per request (trace-provided or synthesized).
  std::unordered_map<RequestId, std::vector<int32_t>> token_ids_;
  /// Requests whose prefill completed this iteration; indexed at
  /// EndIteration so within-iteration hit accounting matches the engine
  /// backend, which also publishes blocks only at its end-of-iteration
  /// flush.
  std::vector<RequestId> pending_inserts_;
  /// Bytes per cache block, for PCIe swap-traffic costing.
  double block_bytes_;
  /// Swap traffic generated between executed iterations is charged to the
  /// next iteration that actually runs.
  double carry_swap_bytes_ = 0.0;
  /// Workload of the iteration currently being applied.
  BatchWorkload workload_;
  double iter_swap_bytes_ = 0.0;
};

}  // namespace aptserve
