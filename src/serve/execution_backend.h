// ExecutionBackend: the seam between the single iteration-level serving
// loop (serve/serving_loop.h) and *how* a scheduled batch actually runs.
// The loop owns admission, planning, preemption/conversion bookkeeping,
// token emission and metrics; a backend owns the memory pool and performs
// the cache mutations and (real or modeled) compute for each step:
//
//   - CostModelBackend  — analytic latencies over a standalone BlockPool
//     (the classic serving simulator).
//   - InferenceBackend  — the real mini-transformer InferenceEngine, timed
//     with the wall clock (the paper's Figure 5 closed loop).
//
// Adding a future backend (async, batched-CPU, GPU) means implementing
// this interface; preemption and swap semantics come from the shared loop
// and are therefore guaranteed identical across backends.
#pragma once

#include <string>
#include <vector>

#include "cache/block_pool.h"
#include "cache/cache_types.h"
#include "cache/hybrid_assigner.h"
#include "cache/migration_image.h"
#include "common/status.h"
#include "prefix/prefix_index.h"
#include "sim/cost_model.h"
#include "sim/sim_request.h"

namespace aptserve {

class ExecutionBackend {
 public:
  /// Result of executing one scheduled item.
  struct StepOutcome {
    /// The step could not allocate cache; nothing was applied. The loop
    /// handles the fallout (memory-wall accounting, decode preemption).
    bool out_of_memory = false;
    /// The step produced a token (every decode; a prefill chunk that
    /// completes its pass).
    bool token = false;
    /// Prefill only: positions this step actually processed. 0 means "the
    /// scheduled chunk" (backends without prefix sharing need not fill it).
    int32_t computed = 0;
    /// Prefill only: positions adopted from the backend's prefix index
    /// instead of being computed. The loop advances the request by
    /// computed + prefix_skipped.
    int32_t prefix_skipped = 0;
  };

  virtual ~ExecutionBackend() = default;

  virtual std::string name() const = 0;

  /// Called once before the loop starts, with the trace's requests sorted
  /// by arrival. Backend-specific validation and registration (e.g. the
  /// inference engine synthesizes prompts here).
  virtual Status Prepare(const std::vector<SimRequest>& reqs) = 0;

  /// Registers one request mid-run (a live-routed arrival in an elastic
  /// fleet). Same validation and registration as one Prepare() entry;
  /// backends must keep per-request registration order-equivalent to a
  /// whole-shard Prepare so static fleets stay bit-identical.
  virtual Status Admit(const SimRequest& sr) {
    (void)sr;
    return Status::Unimplemented(name() + " cannot admit requests mid-run");
  }

  /// Serializes a request for live migration (token state + cache payload,
  /// if any) and removes it from this backend. Shared prefix blocks stay
  /// resident for their remaining owners (BlockPool::ExportBlocks).
  virtual StatusOr<MigrationImage> ExportRequest(const SimRequest& sr) {
    (void)sr;
    return Status::Unimplemented(name() + " cannot export requests");
  }

  /// Registers a migrated-in request and restores its cache, re-resolving
  /// the cached prompt prefix through this backend's PrefixIndex (dedupe).
  /// A pool too full to hold the cache imports the request cold
  /// (cache_restored=false; it re-prefills here).
  virtual StatusOr<MigrationImport> ImportRequest(const SimRequest& sr,
                                                  const MigrationImage& image) {
    (void)sr;
    (void)image;
    return Status::Unimplemented(name() + " cannot import requests");
  }

  /// The unified block pool / cache assigner the scheduler plans against.
  virtual const BlockPool* pool() const = 0;
  virtual const HybridCacheAssigner* assigner() const = 0;
  /// Cost model handed to the scheduler (for the analytic backend, the
  /// model that also produces latencies; for the engine backend, a carrier
  /// for the calibrated rho of paper Eq. 6).
  virtual const CostModel* cost_model() const = 0;

  /// Brackets one planned iteration. BeginIteration runs right after the
  /// scheduler plans — before preemptions — so swap-out work is charged to
  /// the iteration that caused it. EndIteration returns the iteration
  /// latency in seconds (modeled or measured); it is only called when at
  /// least one item was applied.
  virtual void BeginIteration() {}
  virtual StatusOr<double> EndIteration() = 0;

  /// Clock advance applied when an iteration executes nothing.
  virtual double IdleAdvanceSeconds() const = 0;

  /// Frees the request's cache for a recompute preemption (token state is
  /// kept; the request re-prefills later).
  virtual Status Release(const SimRequest& sr) = 0;

  /// Discards the request's cache for a cache-type conversion (paper §5's
  /// discard-and-recompute). The loop updates the mirrored request state.
  virtual Status Convert(const SimRequest& sr, CacheType new_type) = 0;

  /// Attempts a swap-based preemption (PreemptionMode::kSwap). Returns
  /// false when the swap space is full (the loop falls back to recompute).
  virtual StatusOr<bool> TrySwapOut(const SimRequest& sr) = 0;

  /// Attempts to restore a swapped-out request's cache. Returns false when
  /// the pool lacks blocks (the request stays swapped and is retried).
  virtual StatusOr<bool> TrySwapIn(const SimRequest& sr) = 0;

  /// Executes a prefill chunk of `chunk` tokens (> 0, pre-clamped by the
  /// loop to the remaining pass length) using `cache_type` for a fresh
  /// pass. Allocates cache; out_of_memory leaves existing state intact.
  virtual StatusOr<StepOutcome> ExecutePrefillChunk(const SimRequest& sr,
                                                    CacheType cache_type,
                                                    int32_t chunk) = 0;

  /// Executes one decode step (cache grows by one position).
  virtual StatusOr<StepOutcome> ExecuteDecode(const SimRequest& sr) = 0;

  /// The request finished; release/remove its state.
  virtual Status OnFinish(const SimRequest& sr) = 0;

  /// Called after the trace completes (e.g. swap-drain invariants).
  virtual Status Finalize() { return Status::OK(); }

  /// Swap-traffic counters for result reporting.
  virtual int64_t swap_outs() const { return 0; }
  virtual int64_t swap_ins() const { return 0; }

  /// Prefix-sharing hit accounting; null when the backend has no index.
  /// Both backends report through the same PrefixStats struct so "what a
  /// hit is worth" is directly comparable across them.
  virtual const PrefixStats* prefix_stats() const { return nullptr; }

  /// Releases at least `min_blocks` of evictable cached state (prefix-index
  /// LRU leaves) back to the pool if possible; returns blocks freed. The
  /// loop calls this on no-progress iterations so scheduler-side free-block
  /// gates can make headway against a pool full of cold cached prefixes.
  virtual int32_t ReclaimCache(int32_t min_blocks) {
    (void)min_blocks;
    return 0;
  }
};

}  // namespace aptserve
