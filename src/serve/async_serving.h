// Async wall-clock serving: continuous batching without epoch barriers.
//
// The deterministic modes advance the whole fleet on virtual-time window
// barriers (FleetController interleaves per-instance epochs in one loop).
// This mode turns the same machinery into a real server: one long-lived
// worker thread per instance owns that instance's ServingLoopState and
// spins its iteration loop continuously, pulling newly arrived requests
// from a bounded MPSC arrival queue and admitting them mid-run through the
// Inject seam — no barrier anywhere on the hot path. A feeder thread
// replays the trace in real time (scaled by `replay_speedup`), routing
// each request at its wall release instant with the same incremental
// Router::RouteOne the virtual static fleet uses, in the same arrival
// order — so routing decisions are bit-identical across modes. Completions
// and queue-shedding migrations flow back to the controller over the same
// bounded-queue fabric (an MPSC event queue), and cache-carrying
// MigratedRequests hop between workers as queue messages.
//
// Determinism contract (see DESIGN.md "Async serving"): the virtual-time
// mode stays the pinned bit-for-bit reference; the async mode guarantees
// *token-stream identity* — every request's generated token sequence is
// bit-identical to the virtual run of the same trace — while its timing
// (and therefore batch composition) is real and nondeterministic. This
// holds because (a) per-position logits are a pure function of the
// request's own tokens, (b) sampling is counter-based per (seed, request,
// position) with no shared RNG stream, and (c) routing replays the exact
// virtual-mode assignment. The differential test in async_serving_test.cc
// enforces it across seeds, thread counts, and sampling modes.
//
// Wall-clock TTFT/TBT are measured for real against a monotonic Clock
// (runtime/clock.h) threaded through the serving loops' wall seam; the
// result carries log-bucketed latency histograms (p50/p95/p99) and
// sustained-throughput readouts next to the usual virtual-frame report.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "serve/fleet_controller.h"
#include "serve/router.h"
#include "serve/serving_loop.h"
#include "sim/metrics.h"
#include "workload/request.h"

namespace aptserve {

struct AsyncServingConfig {
  /// Per-instance arrival queue capacity; the feeder's Push blocks when an
  /// instance is this far behind (backpressure instead of unbounded RAM).
  size_t queue_capacity = 256;
  /// Trace replay acceleration: a request with virtual arrival t is
  /// released to the router at wall time t / replay_speedup after start.
  /// 1.0 replays in real time; large values stress continuous batching.
  double replay_speedup = 1.0;
  /// When > 0: a worker whose waiting queue exceeds this depth extracts
  /// one migratable request (cache state included) and ships it to the
  /// currently coolest instance over the queue fabric — live load shedding
  /// on the wall-clock path.
  int32_t shed_queue_depth = 0;
  /// How long an idle (drained) worker blocks on its arrival queue before
  /// re-checking for shutdown, in wall seconds.
  double idle_poll_s = 0.0005;
  /// Safety valve: abort when the run exceeds this much wall time.
  double max_wall_seconds = 300.0;

  // ---- Observability -------------------------------------------------------
  /// Optional, borrowed. Workers emit lifecycle events on per-instance
  /// tracks (wall-clock frame), the feeder routes through a traced router
  /// state stamped by the replay clock, and sheds carry flow arrows to
  /// their re-route. Purely observational: token streams are bit-identical
  /// with or without a recorder attached.
  obs::TraceRecorder* trace = nullptr;
  /// Optional, borrowed. Gains per-instance arrival-queue high-water
  /// gauges and shed counters on top of the serving-loop metrics.
  obs::MetricsRegistry* metrics = nullptr;
};

struct AsyncServingResult {
  /// The usual fleet result, assembled from the per-instance serving
  /// loops after shutdown (virtual-frame SLO report, prefix stats, ...).
  MultiInstanceResult serve;
  /// Real-time latency/throughput readout (arrival to token, measured
  /// against the monotonic clock; per-request history survives shedding
  /// migrations).
  WallLatencyReport wall;
  /// Wall seconds from the first request release to full drain.
  double wall_duration_s = 0.0;
  /// Shedding migrations executed over the queue fabric.
  int64_t shed_migrations = 0;
  /// Deepest any instance's arrival queue ever got (backpressure witness).
  size_t arrival_queue_high_water = 0;
  /// Per-instance backpressure witnesses (index = instance id).
  std::vector<size_t> arrival_queue_high_water_per_instance;
  /// Shed migrations originating from each instance.
  std::vector<int64_t> sheds_per_instance;
};

/// Serves `trace` on a static fleet of router.config().n_instances
/// continuously-batching worker threads. Blocks until the last request
/// drains (or the first error). `migration_cost_model` prices the virtual
/// availability delay of shed requests (null = instantaneous, wall cost is
/// real either way).
StatusOr<AsyncServingResult> RunAsyncFleet(
    const std::vector<Request>& trace, const Router& router,
    const ServingLoopConfig& loop_config, const AsyncServingConfig& async,
    const SchedulerFactory& make_scheduler, const BackendFactory& make_backend,
    const SloSpec& slo, const CostModel* migration_cost_model = nullptr);

}  // namespace aptserve
