#include "serve/cost_model_backend.h"

#include <algorithm>

#include "common/logging.h"
#include "workload/token_ids.h"

namespace aptserve {

StatusOr<int32_t> CostModelBackend::DerivePoolBlocks(
    const CostModel& cost_model, const Options& options) {
  if (options.pool_blocks_override > 0) return options.pool_blocks_override;
  APT_ASSIGN_OR_RETURN(double cache_bytes, cost_model.cluster().CacheBytes(
                                               cost_model.model()));
  const double block_bytes =
      options.block_size * cost_model.model().HiddenBytesPerToken();
  const int32_t blocks = static_cast<int32_t>(cache_bytes / block_bytes);
  if (blocks <= 0) return Status::InvalidArgument("no cache memory available");
  return blocks;
}

StatusOr<std::unique_ptr<CostModelBackend>> CostModelBackend::Create(
    const CostModel& cost_model, const Options& options) {
  APT_ASSIGN_OR_RETURN(int32_t pool_blocks,
                       DerivePoolBlocks(cost_model, options));
  return std::unique_ptr<CostModelBackend>(
      new CostModelBackend(cost_model, options, pool_blocks));
}

CostModelBackend::CostModelBackend(const CostModel& cost_model,
                                   const Options& options, int32_t pool_blocks)
    : cost_model_(cost_model),
      options_(options),
      pool_(pool_blocks, options.block_size),
      assigner_(&pool_),
      swap_(options.swap_blocks > 0 ? options.swap_blocks : 4 * pool_blocks),
      block_bytes_(options.block_size *
                   cost_model.model().HiddenBytesPerToken()) {
  assigner_.SetEncodingPolicy(options.cache_encoding);
  if (options.enable_prefix_sharing) {
    prefix_index_ = std::make_unique<PrefixIndex>(&pool_, options.block_size);
    assigner_.SetReclaimer(
        [this](int32_t need) { return prefix_index_->EvictLru(need); });
  }
}

Status CostModelBackend::Prepare(const std::vector<SimRequest>& reqs) {
  // Verify every request can ever fit (hidden cache in an empty pool).
  for (const SimRequest& sr : reqs) {
    const int32_t need =
        assigner_.BlocksNeeded(CacheType::kHidden, sr.spec.total_len());
    if (need > pool_.num_blocks()) {
      return Status::InvalidArgument(
          "request " + std::to_string(sr.spec.id) +
          " cannot fit in the cache pool even with hidden cache");
    }
  }
  for (const SimRequest& sr : reqs) {
    APT_RETURN_NOT_OK(RegisterTokenIds(sr));
  }
  return Status::OK();
}

Status CostModelBackend::RegisterTokenIds(const SimRequest& sr) {
  if (!prefix_index_) return Status::OK();
  // Matching needs token content: use the trace's ids when present,
  // otherwise the deterministic synthesizer (same function every backend
  // uses, so hit accounting is comparable across them).
  if (sr.spec.has_token_ids()) {
    if (static_cast<int32_t>(sr.spec.token_ids.size()) != sr.spec.prompt_len) {
      return Status::InvalidArgument(
          "request " + std::to_string(sr.spec.id) +
          " token_ids size does not match prompt_len");
    }
    token_ids_[sr.spec.id] = sr.spec.token_ids;
  } else {
    token_ids_[sr.spec.id] = DeterministicPromptTokens(
        sr.spec.id, options_.token_seed, sr.spec.prompt_len,
        options_.token_vocab);
  }
  return Status::OK();
}

Status CostModelBackend::Admit(const SimRequest& sr) {
  const int32_t need =
      assigner_.BlocksNeeded(CacheType::kHidden, sr.spec.total_len());
  if (need > pool_.num_blocks()) {
    return Status::InvalidArgument(
        "request " + std::to_string(sr.spec.id) +
        " cannot fit in the cache pool even with hidden cache");
  }
  return RegisterTokenIds(sr);
}

StatusOr<MigrationImage> CostModelBackend::ExportRequest(const SimRequest& sr) {
  const RequestId id = sr.spec.id;
  MigrationImage image;
  auto ids = token_ids_.find(id);
  if (ids != token_ids_.end()) {
    image.tokens = ids->second;
  } else if (sr.spec.has_token_ids()) {
    image.tokens = sr.spec.token_ids;
  }
  image.prompt_len = sr.spec.prompt_len;
  image.cache_type = sr.cache_type;
  if (assigner_.Has(id)) {
    APT_ASSIGN_OR_RETURN(RequestCacheImage cache,
                         assigner_.SerializeRequestCache(id));
    image.cache_type = cache.type;
    image.cached_tokens = cache.num_tokens;
    APT_RETURN_NOT_OK(assigner_.ReleaseExported(id));
  }
  token_ids_.erase(id);
  return image;
}

StatusOr<MigrationImport> CostModelBackend::ImportRequest(
    const SimRequest& sr, const MigrationImage& image) {
  APT_RETURN_NOT_OK(Admit(sr));
  const RequestId id = sr.spec.id;
  if (prefix_index_ &&
      static_cast<int32_t>(image.tokens.size()) >= image.prompt_len &&
      image.prompt_len > 0) {
    // The source's (possibly trace-provided) content wins over a fresh
    // synthesis so matching stays consistent across the migration.
    token_ids_[id].assign(image.tokens.begin(),
                          image.tokens.begin() + image.prompt_len);
  }
  MigrationImport import;
  if (!image.carries_cache()) return import;

  PrefixMatch match;
  if (prefix_index_ && image.cache_type == CacheType::kKV &&
      assigner_.EncodingFor(CacheType::kKV) == BlockEncoding::kFp32) {
    const int32_t limit = std::min(image.prompt_len, image.cached_tokens);
    match = prefix_index_->Match(token_ids_.at(id), limit);
  }
  auto seeded = assigner_.RestoreRequestCache(
      id, RequestCacheImage{image.cache_type, image.cached_tokens}, match);
  if (!seeded.ok()) {
    if (seeded.status().IsOutOfMemory()) {
      return import;  // cold import: the request re-prefills here
    }
    return seeded.status();
  }
  // No payload to copy analytically; just drop the transient COW pin.
  assigner_.ReleaseCowSource(*seeded);
  if (match.hit()) prefix_index_->RecordAdoption(match);
  import.cache_restored = true;
  import.deduped_tokens = match.tokens;
  import.copied_tokens = image.cached_tokens - match.tokens;
  // Int8 tiers (and the quantize-in-transit knob) move codes plus
  // per-vector scale/zero instead of full-width values, so the
  // interconnect term prices ~4x fewer bytes per copied token.
  const double comps = image.cache_type == CacheType::kKV ? 2.0 : 1.0;
  const bool int8_transport =
      assigner_.EncodingFor(image.cache_type) == BlockEncoding::kInt8 ||
      options_.cache_encoding.quantize_migration_payload;
  const double per_token_bytes =
      int8_transport ? comps * cost_model_.model().Int8HiddenBytesPerToken()
                     : comps * block_bytes_ / options_.block_size;
  import.bytes = import.copied_tokens * per_token_bytes;
  return import;
}

void CostModelBackend::BeginIteration() {
  workload_ = BatchWorkload{};
  iter_swap_bytes_ = 0.0;
}

StatusOr<double> CostModelBackend::EndIteration() {
  // Publish blocks of prefills that completed this iteration. Deferred to
  // here — not done inside ExecutePrefillChunk — so a same-iteration
  // sibling cannot match them yet, exactly like the engine backend, whose
  // blocks only exist after its end-of-iteration flush.
  if (prefix_index_) {
    for (RequestId id : pending_inserts_) {
      const CacheMap* map = assigner_.Find(id);
      if (map == nullptr || map->type() != CacheType::kKV ||
          map->encoding() != BlockEncoding::kFp32) {
        continue;
      }
      const auto& tokens = token_ids_.at(id);
      prefix_index_->Insert(tokens, static_cast<int32_t>(tokens.size()),
                            map->blocks(CacheComponent::kKey),
                            map->blocks(CacheComponent::kValue));
    }
    pending_inserts_.clear();
  }
  workload_.swap_bytes = carry_swap_bytes_ + iter_swap_bytes_;
  carry_swap_bytes_ = 0.0;
  return cost_model_.IterationSeconds(workload_);
}

Status CostModelBackend::Release(const SimRequest& sr) {
  return assigner_.Release(sr.spec.id);
}

Status CostModelBackend::Convert(const SimRequest& sr, CacheType new_type) {
  (void)new_type;  // the loop retypes the mirrored request state
  return assigner_.DiscardForConversion(sr.spec.id);
}

StatusOr<bool> CostModelBackend::TrySwapOut(const SimRequest& sr) {
  const CacheMap* map = assigner_.Find(sr.spec.id);
  APT_CHECK(map != nullptr);
  if (!swap_.SwapOut(sr.spec.id, sr.cache_type, sr.cached_tokens,
                     map->TotalBlocks())
           .ok()) {
    return false;  // swap space full: caller falls back to recompute
  }
  carry_swap_bytes_ += map->TotalBlocks() * block_bytes_;
  APT_RETURN_NOT_OK(assigner_.Release(sr.spec.id));
  return true;
}

StatusOr<bool> CostModelBackend::TrySwapIn(const SimRequest& sr) {
  const SwapSpace::Entry* entry = swap_.Find(sr.spec.id);
  APT_CHECK(entry != nullptr);
  const int32_t need = assigner_.BlocksNeeded(entry->type, entry->tokens);
  if (need > pool_.num_free()) return false;
  APT_ASSIGN_OR_RETURN(SwapSpace::Entry e, swap_.SwapIn(sr.spec.id));
  APT_RETURN_NOT_OK(assigner_.CreateFilled(sr.spec.id, e.type, e.tokens));
  iter_swap_bytes_ +=
      assigner_.Find(sr.spec.id)->TotalBlocks() * block_bytes_;
  return true;
}

StatusOr<ExecutionBackend::StepOutcome> CostModelBackend::ExecutePrefillChunk(
    const SimRequest& sr, CacheType cache_type, int32_t chunk) {
  const RequestId id = sr.spec.id;
  // Prefix sharing mirrors the engine exactly: a fresh KV pass matches its
  // prompt (capped at prompt_len and target-1), adopts the shared blocks,
  // and only the remaining positions are priced as prefill work.
  int32_t skipped = 0;
  int32_t computed = chunk;
  Status st;
  PrefixMatch match;
  if (!assigner_.Has(id)) {
    if (prefix_index_ && cache_type == CacheType::kKV &&
        sr.prefill_progress == 0 &&
        assigner_.EncodingFor(CacheType::kKV) == BlockEncoding::kFp32) {
      const int32_t limit =
          std::min(sr.spec.prompt_len, sr.PrefillTarget() - 1);
      match = prefix_index_->Match(token_ids_.at(id), limit);
      if (match.hit()) {
        auto seeded = assigner_.CreateSeeded(id, match);
        if (seeded.ok()) {
          // No payload to copy analytically; just release the COW pin.
          assigner_.ReleaseCowSource(*seeded);
          skipped = match.tokens;
        } else if (!seeded.status().IsOutOfMemory()) {
          return seeded.status();
        }
        // Seeding OOM falls through to the unshared path below.
      }
    }
    if (skipped > 0) {
      computed = std::min(chunk, sr.PrefillTarget() - skipped);
      st = assigner_.Append(id, computed);
      if (!st.ok()) {
        // Restore the pre-call pool state: the seeded map's references
        // (shared and private alike) all release through the map.
        APT_CHECK(assigner_.Release(id).ok());
      } else {
        // Mirrors the engine: the adoption counts only once the whole
        // step succeeded.
        prefix_index_->RecordAdoption(match);
      }
    } else {
      st = assigner_.CreateFilled(id, cache_type, chunk);
    }
  } else {
    st = assigner_.Append(id, chunk);
  }
  if (st.IsOutOfMemory()) return StepOutcome{true, false};
  APT_RETURN_NOT_OK(st);
  workload_.prefill_tokens += computed;
  // Adopted positions still count as attended context for the computed
  // span — attention over a hit prefix is real work, recomputing it isn't.
  const int64_t k = sr.prefill_progress + skipped;
  const int64_t c = computed;
  workload_.prefill_attend_tokens += c * k + c * (c + 1) / 2;
  const bool completes =
      sr.prefill_progress + skipped + computed >= sr.PrefillTarget();
  if (completes && prefix_index_ && cache_type == CacheType::kKV) {
    pending_inserts_.push_back(id);
  }
  return StepOutcome{false, completes, computed, skipped};
}

StatusOr<ExecutionBackend::StepOutcome> CostModelBackend::ExecuteDecode(
    const SimRequest& sr) {
  Status st = assigner_.Append(sr.spec.id, 1);
  if (st.IsOutOfMemory()) return StepOutcome{true, false};
  APT_RETURN_NOT_OK(st);
  ++workload_.decode_reqs;
  // sr.cached_tokens is grown by the loop's emit pass, so here it still
  // holds the pre-growth count == number of past context tokens.
  const int64_t ctx = sr.cached_tokens;
  if (sr.cache_type == CacheType::kHidden) {
    workload_.decode_hidden_context_tokens += ctx;
  } else {
    workload_.decode_kv_context_tokens += ctx;
  }
  return StepOutcome{false, true};
}

Status CostModelBackend::OnFinish(const SimRequest& sr) {
  return assigner_.Release(sr.spec.id);
}

Status CostModelBackend::Finalize() {
  APT_CHECK_MSG(swap_.used_blocks() == 0,
                "swap space must drain by the end of the run");
  return Status::OK();
}

}  // namespace aptserve
