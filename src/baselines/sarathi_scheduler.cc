#include "baselines/sarathi_scheduler.h"

#include <algorithm>

namespace aptserve {

BatchPlan SarathiScheduler::PlanIteration(const SchedulerInput& input) {
  BatchPlan plan;
  int32_t budget = config_.token_budget;
  int32_t free_blocks = input.pool->num_free();

  // All running decodes ride along every iteration (no generation stalls).
  for (const SimRequest* r : input.running) {
    if (static_cast<int32_t>(plan.items.size()) >= config_.max_batch) break;
    if (budget <= 0) break;
    plan.items.push_back({r->spec.id, r->cache_type, 0});
    --budget;
    // Reserve the block a decode step may need to grow its cache, so the
    // coalesced prefill chunks below cannot starve ongoing decodes.
    const int32_t grow =
        input.assigner->BlocksToGrow(r->spec.id, r->cached_tokens + 1);
    free_blocks -= grow;
  }
  free_blocks = std::max(free_blocks, 0);

  // Fill the rest of the budget with fixed-size prefill chunks, FCFS.
  for (const SimRequest* w : input.waiting) {
    if (static_cast<int32_t>(plan.items.size()) >= config_.max_batch) break;
    if (budget <= 0) break;
    const int32_t remaining = w->PrefillTarget() - w->prefill_progress;
    const int32_t chunk = std::min({config_.chunk_size, budget, remaining});
    if (chunk <= 0) continue;
    // Memory needed to extend this request's cache by `chunk` tokens.
    int32_t need;
    if (input.assigner->Has(w->spec.id)) {
      need = input.assigner->BlocksToGrow(w->spec.id,
                                          w->prefill_progress + chunk);
    } else {
      need = input.assigner->BlocksNeeded(CacheType::kKV, chunk);
    }
    if (need > free_blocks) break;  // FCFS: stop at the first non-fit
    plan.items.push_back({w->spec.id, CacheType::kKV, chunk});
    free_blocks -= need;
    budget -= chunk;
  }

  // Deadlock breaker: nothing runnable but partially-prefilled waiting
  // requests hold pool memory — evict the youngest of them (recompute
  // preemption) so the head of the queue can make progress next iteration.
  if (plan.items.empty()) {
    for (auto it = input.waiting.rbegin(); it != input.waiting.rend(); ++it) {
      if (input.assigner->Has((*it)->spec.id)) {
        plan.preempt.push_back({(*it)->spec.id, (*it)->cache_type});
        break;
      }
    }
  }
  return plan;
}

}  // namespace aptserve
