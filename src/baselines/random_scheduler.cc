#include "baselines/random_scheduler.h"

#include <algorithm>

namespace aptserve {

BatchPlan RandomScheduler::PlanIteration(const SchedulerInput& input) {
  BatchPlan plan;
  std::vector<const SimRequest*> shuffled(input.waiting);
  std::shuffle(shuffled.begin(), shuffled.end(), rng_.generator());

  int32_t free_blocks = input.pool->num_free();
  int64_t prefill_tokens = 0;
  for (const SimRequest* w : shuffled) {
    if (static_cast<int32_t>(plan.items.size()) >= config_.max_batch) break;
    const int32_t target = w->PrefillTarget();
    if (prefill_tokens + target > config_.max_prefill_tokens &&
        !plan.items.empty()) {
      break;
    }
    const int32_t need = input.assigner->BlocksNeeded(CacheType::kKV, target);
    if (need > free_blocks) continue;  // skip, do not block
    plan.items.push_back({w->spec.id, CacheType::kKV, target});
    free_blocks -= need;
    prefill_tokens += target;
  }
  if (!plan.items.empty()) return plan;

  for (const SimRequest* r : input.running) {
    if (static_cast<int32_t>(plan.items.size()) >= config_.max_batch) break;
    plan.items.push_back({r->spec.id, r->cache_type, 0});
  }
  return plan;
}

}  // namespace aptserve
