#include "baselines/fcfs_scheduler.h"

namespace aptserve {

BatchPlan FcfsScheduler::PlanIteration(const SchedulerInput& input) {
  BatchPlan plan;
  // Try to compose a prefill iteration first (vLLM prioritizes prefills to
  // grow the decode batch).
  int32_t free_blocks = input.pool->num_free();
  int64_t prefill_tokens = 0;
  for (const SimRequest* w : input.waiting) {
    if (static_cast<int32_t>(plan.items.size()) >= config_.max_batch) break;
    const int32_t target = w->PrefillTarget();
    if (prefill_tokens + target > config_.max_prefill_tokens &&
        !plan.items.empty()) {
      break;
    }
    const int32_t need_kv =
        input.assigner->BlocksNeeded(CacheType::kKV, target);
    if (need_kv <= free_blocks) {
      plan.items.push_back({w->spec.id, CacheType::kKV, target});
      free_blocks -= need_kv;
      prefill_tokens += target;
      continue;
    }
    if (config_.allow_hidden_fallback) {
      const int32_t need_hidden =
          input.assigner->BlocksNeeded(CacheType::kHidden, target);
      if (need_hidden <= free_blocks) {
        plan.items.push_back({w->spec.id, CacheType::kHidden, target});
        free_blocks -= need_hidden;
        prefill_tokens += target;
        continue;
      }
    }
    // Strict FCFS: the head of the queue blocks everyone behind it.
    break;
  }
  if (!plan.items.empty()) return plan;

  // Decode iteration over every running request, oldest first so that the
  // simulator's OOM preemption hits the youngest.
  for (const SimRequest* r : input.running) {
    if (static_cast<int32_t>(plan.items.size()) >= config_.max_batch) break;
    plan.items.push_back({r->spec.id, r->cache_type, 0});
  }
  return plan;
}

}  // namespace aptserve
