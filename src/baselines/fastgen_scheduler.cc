#include "baselines/fastgen_scheduler.h"

#include <algorithm>

namespace aptserve {

BatchPlan FastGenScheduler::PlanIteration(const SchedulerInput& input) {
  BatchPlan plan;
  int32_t budget = config_.token_budget;
  int32_t free_blocks = input.pool->num_free();

  for (const SimRequest* r : input.running) {
    if (static_cast<int32_t>(plan.items.size()) >= config_.max_batch) break;
    if (budget <= 0) break;
    plan.items.push_back({r->spec.id, r->cache_type, 0});
    --budget;
    free_blocks -= input.assigner->BlocksToGrow(r->spec.id,
                                                r->cached_tokens + 1);
  }
  free_blocks = std::max(free_blocks, 0);

  // Dynamic SplitFuse: take whole remaining prompts while they fit in the
  // budget; split only the final prompt to land exactly on the budget.
  for (const SimRequest* w : input.waiting) {
    if (static_cast<int32_t>(plan.items.size()) >= config_.max_batch) break;
    if (budget <= 0) break;
    const int32_t remaining = w->PrefillTarget() - w->prefill_progress;
    const int32_t chunk = std::min(budget, remaining);
    if (chunk <= 0) continue;
    int32_t need;
    if (input.assigner->Has(w->spec.id)) {
      need = input.assigner->BlocksToGrow(w->spec.id,
                                          w->prefill_progress + chunk);
    } else {
      need = input.assigner->BlocksNeeded(CacheType::kKV, chunk);
    }
    if (need > free_blocks) break;
    plan.items.push_back({w->spec.id, CacheType::kKV, chunk});
    free_blocks -= need;
    budget -= chunk;
  }

  // Same deadlock breaker as Sarathi: free memory held by stalled partial
  // prefills when nothing else can run.
  if (plan.items.empty()) {
    for (auto it = input.waiting.rbegin(); it != input.waiting.rend(); ++it) {
      if (input.assigner->Has((*it)->spec.id)) {
        plan.preempt.push_back({(*it)->spec.id, (*it)->cache_type});
        break;
      }
    }
  }
  return plan;
}

}  // namespace aptserve
