// FcfsScheduler: the vLLM-style baseline (paper §6.2). Prefill-prioritized
// iteration-level batching with strict First-Come-First-Serve admission:
// whenever the head of the waiting queue fits in free cache memory, run a
// prefill iteration admitting waiting requests in arrival order until the
// first one that does not fit (head-of-line blocking, the rigidity §3.2
// analyzes); otherwise run a decode iteration over every running request.
// All requests use KV cache, unless `allow_hidden_fallback` is set (the
// Table 5 "FCFS on hybrid cache" variant), in which case a request that
// does not fit as KV is admitted with hidden cache when that fits.
#pragma once

#include "sim/scheduler.h"

namespace aptserve {

struct FcfsConfig {
  /// Max prompt tokens batched into one prefill iteration (vLLM's
  /// max_num_batched_tokens).
  int32_t max_prefill_tokens = 2048;
  int32_t max_batch = 256;
  /// Admit with hidden cache when KV does not fit (rigid-order hybrid).
  bool allow_hidden_fallback = false;
};

class FcfsScheduler : public Scheduler {
 public:
  explicit FcfsScheduler(const FcfsConfig& config = {}) : config_(config) {}

  BatchPlan PlanIteration(const SchedulerInput& input) override;
  std::string name() const override { return "FCFS(vLLM)"; }

 private:
  FcfsConfig config_;
};

}  // namespace aptserve
