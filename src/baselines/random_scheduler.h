// RandomScheduler: the random policy of paper §3.2 (Figure 4). Identical to
// the FCFS baseline except waiting requests are considered in a random
// order, and a request that does not fit is skipped rather than blocking
// the queue. The paper uses this policy to demonstrate that FCFS's rigid
// batch composition is the bottleneck, not admission order per se.
#pragma once

#include "common/rng.h"
#include "sim/scheduler.h"

namespace aptserve {

struct RandomSchedulerConfig {
  int32_t max_prefill_tokens = 2048;
  int32_t max_batch = 256;
  uint64_t seed = 7;
};

class RandomScheduler : public Scheduler {
 public:
  explicit RandomScheduler(const RandomSchedulerConfig& config = {})
      : config_(config), rng_(config.seed) {}

  BatchPlan PlanIteration(const SchedulerInput& input) override;
  std::string name() const override { return "Random"; }

 private:
  RandomSchedulerConfig config_;
  Rng rng_;
};

}  // namespace aptserve
