// FastGenScheduler: the DeepSpeed-FastGen baseline (paper §6.2). Like
// Sarathi-Serve it coalesces prefill chunks with decodes under a token
// budget, but uses Dynamic SplitFuse-style composition: prompts are split
// only when they exceed the remaining budget, which the paper describes as
// "differing in the token composition strategy under the same token
// budget".
#pragma once

#include "sim/scheduler.h"

namespace aptserve {

struct FastGenConfig {
  int32_t token_budget = 512;
  int32_t max_batch = 256;
};

class FastGenScheduler : public Scheduler {
 public:
  explicit FastGenScheduler(const FastGenConfig& config = {})
      : config_(config) {}

  BatchPlan PlanIteration(const SchedulerInput& input) override;
  std::string name() const override { return "DeepSpeed-FastGen"; }

 private:
  FastGenConfig config_;
};

}  // namespace aptserve
