// SarathiScheduler: the Sarathi-Serve baseline (paper §6.2). Chunked
// prefill plus prefill-decode coalesced batching: every iteration carries
// all running decodes and fills the remaining per-iteration token budget
// with fixed-size chunks of waiting prompts in FCFS order. This removes
// generation stalls for decodes at the cost of slower individual prefills.
#pragma once

#include "sim/scheduler.h"

namespace aptserve {

struct SarathiConfig {
  /// Per-iteration token budget shared by decodes (1 token each) and
  /// prefill chunks.
  int32_t token_budget = 512;
  /// Fixed prefill chunk size (Sarathi schedules uniform chunks).
  int32_t chunk_size = 256;
  int32_t max_batch = 256;
};

class SarathiScheduler : public Scheduler {
 public:
  explicit SarathiScheduler(const SarathiConfig& config = {})
      : config_(config) {}

  BatchPlan PlanIteration(const SchedulerInput& input) override;
  std::string name() const override { return "Sarathi-Serve"; }

 private:
  SarathiConfig config_;
};

}  // namespace aptserve
