// Minimal leveled logging with a compile-out-able check macro, in the style
// of the Arrow/RocksDB utility headers.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace aptserve {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. Defaults to kWarning
/// so tests and benches stay quiet unless something is wrong. The first
/// GetLogLevel() call consults APTSERVE_LOG_LEVEL (a name like "debug",
/// "info", "warning", "error", "off", or a digit 0-4) unless SetLogLevel()
/// already ran — an explicit setting always wins over the environment,
/// mirroring APTSERVE_NUM_THREADS (runtime/runtime_config.h).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Parses a log-level name or digit (case-insensitive; "warn" accepted for
/// "warning"). Returns false on anything else, leaving `*out` untouched.
bool ParseLogLevel(const char* text, LogLevel* out);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

[[noreturn]] void FatalCheckFailure(const char* file, int line,
                                    const char* expr, const std::string& msg);

}  // namespace internal
}  // namespace aptserve

#define APT_LOG(level)                                                      \
  ::aptserve::internal::LogMessage(::aptserve::LogLevel::k##level, __FILE__, \
                                   __LINE__)

/// Invariant check, active in all build types. Use for programmer errors
/// where continuing would corrupt state (allocator double-free, index
/// out of range in the block pool, ...).
#define APT_CHECK(expr)                                                        \
  do {                                                                         \
    if (!(expr)) {                                                             \
      ::aptserve::internal::FatalCheckFailure(__FILE__, __LINE__, #expr, "");  \
    }                                                                          \
  } while (0)

#define APT_CHECK_MSG(expr, msg)                                               \
  do {                                                                         \
    if (!(expr)) {                                                             \
      ::aptserve::internal::FatalCheckFailure(__FILE__, __LINE__, #expr, msg); \
    }                                                                          \
  } while (0)
