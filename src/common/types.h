// Shared primitive identifiers.
#pragma once

#include <cstdint>

namespace aptserve {

/// Identifies one serving request across the scheduler, cache and engine.
using RequestId = int64_t;
inline constexpr RequestId kInvalidRequestId = -1;

/// Simulation / wall-clock time in seconds.
using TimePoint = double;
using Duration = double;

}  // namespace aptserve
