#include "common/status.h"

namespace aptserve {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfMemory:
      return "Out of memory";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace aptserve
