#include "common/env.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/logging.h"

namespace aptserve {
namespace env {

namespace {

const char* SkipSpace(const char* p) {
  while (*p != '\0' && std::isspace(static_cast<unsigned char>(*p))) ++p;
  return p;
}

}  // namespace

std::optional<int64_t> ParseInt64(const char* text) {
  if (text == nullptr) return std::nullopt;
  const char* start = SkipSpace(text);
  if (*start == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(start, &end, 10);
  if (end == start || errno == ERANGE) return std::nullopt;
  if (*SkipSpace(end) != '\0') return std::nullopt;  // partial parse ("4x")
  return static_cast<int64_t>(v);
}

std::vector<uint64_t> ParseUint64List(const char* text, bool* had_invalid) {
  if (had_invalid != nullptr) *had_invalid = false;
  std::vector<uint64_t> out;
  if (text == nullptr) return out;
  const std::string s(text);
  size_t at = 0;
  while (at <= s.size()) {
    const size_t comma = s.find(',', at);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    const std::string tok = s.substr(at, end - at);
    const char* start = SkipSpace(tok.c_str());
    if (*start != '\0') {
      errno = 0;
      char* tok_end = nullptr;
      const unsigned long long v = std::strtoull(start, &tok_end, 10);
      if (tok_end == start || errno == ERANGE || *start == '-' ||
          *SkipSpace(tok_end) != '\0') {
        if (had_invalid != nullptr) *had_invalid = true;
      } else {
        out.push_back(static_cast<uint64_t>(v));
      }
    }
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  return out;
}

std::vector<uint64_t> FuzzSeedsFromEnv(std::vector<uint64_t> fallback) {
  const char* text = std::getenv("APTSERVE_FUZZ_SEEDS");
  if (text == nullptr) return fallback;
  bool had_invalid = false;
  std::vector<uint64_t> seeds = ParseUint64List(text, &had_invalid);
  if (had_invalid) {
    static bool warned = false;
    if (!warned) {
      warned = true;
      APT_LOG(Warning) << "APTSERVE_FUZZ_SEEDS=\"" << text
                       << "\" contains malformed seed tokens; using the "
                       << seeds.size() << " valid one(s)";
    }
  }
  return seeds.empty() ? fallback : seeds;
}

}  // namespace env
}  // namespace aptserve
