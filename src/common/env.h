// Strict environment-variable parsing. std::strtol with a null end pointer
// silently accepts partial parses ("4x" -> 4) and cannot distinguish "0"
// from garbage ("four" -> 0), so knobs read through it could be typo'd
// without any signal. These helpers validate the entire token and let
// callers warn on — rather than silently absorb — malformed input.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace aptserve {
namespace env {

/// Parses `text` as a whole-string base-10 integer (optional leading '-',
/// surrounding whitespace allowed). nullopt on empty/partial/overflowing
/// input — callers decide whether that warrants a warning.
std::optional<int64_t> ParseInt64(const char* text);

/// Parses a comma-separated list of unsigned base-10 integers ("1,2,3").
/// Valid tokens are returned in order; empty tokens are skipped; any
/// malformed or overflowing token is dropped and reported through
/// `*had_invalid` (never null-checked away silently).
std::vector<uint64_t> ParseUint64List(const char* text, bool* had_invalid);

/// Reads the APTSERVE_FUZZ_SEEDS seed matrix: a comma-separated list of
/// seeds, falling back to `fallback` when the variable is unset or yields
/// no valid seed. Malformed tokens warn once per process through the
/// logging layer (the fuzz suites previously crashed via std::stoull on
/// garbage and silently truncated partial parses like "4x").
std::vector<uint64_t> FuzzSeedsFromEnv(std::vector<uint64_t> fallback);

}  // namespace env
}  // namespace aptserve
