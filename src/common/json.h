// Strict JSON parsing and deterministic serialization, in the style of the
// Prometheus-text parser (obs/metrics_registry.h): no dependencies, Status
// errors with line/column context, strict enough that malformed input never
// round-trips silently. The sweep harness (bench/sweep/) builds its
// experiment configs, per-run meta.json resume keys and result files on
// this — resume correctness depends on Dump() being byte-deterministic, so
// objects preserve insertion order and numbers render with the same %.17g
// shortest-round-trip rule everywhere.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace aptserve {
namespace json {

/// One JSON document node. Objects keep key insertion order (serialization
/// is deterministic and diffs stay readable); duplicate keys are a parse
/// error. Numbers are doubles — the harness' ints (seeds, counts) are well
/// inside the 2^53 exact range.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool v) {
    JsonValue j;
    j.type_ = Type::kBool;
    j.bool_ = v;
    return j;
  }
  static JsonValue Number(double v) {
    JsonValue j;
    j.type_ = Type::kNumber;
    j.number_ = v;
    return j;
  }
  static JsonValue Int(int64_t v) {
    return Number(static_cast<double>(v));
  }
  static JsonValue String(std::string v) {
    JsonValue j;
    j.type_ = Type::kString;
    j.string_ = std::move(v);
    return j;
  }
  static JsonValue Array() {
    JsonValue j;
    j.type_ = Type::kArray;
    return j;
  }
  static JsonValue Object() {
    JsonValue j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }

  const std::vector<JsonValue>& items() const { return items_; }
  std::vector<JsonValue>& items() { return items_; }
  void Append(JsonValue v) { items_.push_back(std::move(v)); }

  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  /// Pointer to the member value, or null when absent (or not an object).
  const JsonValue* Find(const std::string& key) const;
  /// Inserts or overwrites `key` (insertion order preserved on overwrite).
  void Set(const std::string& key, JsonValue v);

  // -- Typed convenience getters with defaults (config-reading sugar) ------
  double GetNumber(const std::string& key, double fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;

  /// Structural equality (object member *order* is ignored; duplicate keys
  /// cannot occur by construction through Set/parse).
  bool operator==(const JsonValue& other) const;
  bool operator!=(const JsonValue& other) const { return !(*this == other); }

  /// Serializes deterministically. indent < 0: compact one-line form;
  /// indent >= 0: pretty-printed with that many spaces per level. Non-finite
  /// numbers render as null (JSON has no NaN/Inf literal).
  std::string Dump(int indent = -1) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members_;  // kObject
};

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included): `"` and `\` are backslash-escaped, control characters become
/// \uXXXX. Shared with the bench JsonObject writer so keys and values pass
/// through one escaper.
std::string EscapeJsonString(const std::string& s);

/// Parses one complete JSON document. Strict: trailing non-whitespace
/// content, duplicate object keys, unterminated strings/containers, bad
/// escapes, leading '+'/bare '.' numbers and non-JSON literals all fail
/// with InvalidArgument naming the offending line:column.
StatusOr<JsonValue> ParseJson(const std::string& text);

/// Reads and parses `path`; NotFound when the file cannot be opened.
StatusOr<JsonValue> ParseJsonFile(const std::string& path);

}  // namespace json
}  // namespace aptserve
