// Small statistics helpers: streaming mean/variance, exact percentiles over
// collected samples, fixed-bucket histograms and CDF extraction. Used by the
// simulator metrics and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace aptserve {

/// Streaming mean / variance / min / max (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);
  /// Folds another accumulator in (Chan et al. parallel combine; exact).
  void Merge(const RunningStat& other);
  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Collects samples and answers exact quantile queries (sorts lazily).
class SampleSet {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void Reserve(size_t n) { samples_.reserve(n); }
  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// q in [0,1]; linear interpolation between closest ranks. Returns 0 when
  /// empty.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }
  double P99() const { return Quantile(0.99); }
  double Mean() const;
  double Min() const;
  double Max() const;

  const std::vector<double>& samples() const { return samples_; }

  /// Returns (value, cumulative fraction) pairs suitable for plotting a CDF,
  /// downsampled to at most `max_points` points.
  std::vector<std::pair<double, double>> Cdf(size_t max_points = 200) const;

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Log-spaced latency histogram: fixed memory regardless of sample count,
/// with quantile estimates (p50/p95/p99) geometrically interpolated inside
/// the matched bucket. Built for wall-clock serving metrics, where samples
/// stream in from long-running workers and span microseconds to minutes —
/// a SampleSet would grow unboundedly and a fixed-width Histogram cannot
/// resolve both ends. Exact mean/min/max ride along via RunningStat.
/// Buckets cover [min_s, max_s) at `buckets_per_decade` resolution (±~4%
/// quantile error at the default 16); out-of-range samples clamp to
/// underflow/overflow buckets whose quantiles report the range edge.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(double min_s = 1e-6, double max_s = 1e4,
                            int32_t buckets_per_decade = 16);

  void Add(double seconds);
  /// Folds `other`'s samples into this histogram. The two must share
  /// bucket geometry (they do unless constructed with different bounds).
  void Merge(const LatencyHistogram& other);

  size_t count() const { return static_cast<size_t>(stat_.count()); }
  double mean() const { return stat_.mean(); }
  double min() const { return stat_.min(); }
  double max() const { return stat_.max(); }
  double sum() const { return stat_.sum(); }

  /// (upper_bound_seconds, cumulative_count) pairs over the non-empty
  /// buckets with a finite upper edge, in increasing bound order —
  /// Prometheus `le` bucket form. The overflow bucket has no finite edge;
  /// exporters account for it with the implicit `le="+Inf"` = count().
  std::vector<std::pair<double, uint64_t>> CumulativeBuckets() const;

  /// q in [0,1]; 0 when empty. Estimated from bucket counts.
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }

 private:
  size_t BucketIndex(double seconds) const;
  /// Geometric bounds of bucket i (underflow/overflow clamp to the range).
  double BucketLow(size_t i) const;
  double BucketHigh(size_t i) const;

  double min_s_;
  double max_s_;
  double per_decade_;
  std::vector<uint64_t> counts_;  ///< [underflow, buckets..., overflow]
  RunningStat stat_;
};

/// Fixed-width bucket histogram over [lo, hi); out-of-range values clamp to
/// the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  size_t count() const { return total_; }
  const std::vector<size_t>& buckets() const { return counts_; }
  double BucketLow(size_t i) const { return lo_ + i * width_; }
  double BucketHigh(size_t i) const { return lo_ + (i + 1) * width_; }

  /// Renders a compact ASCII sketch, one line per non-empty bucket.
  std::string ToAscii(size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  size_t total_ = 0;
  std::vector<size_t> counts_;
};

}  // namespace aptserve
