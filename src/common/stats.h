// Small statistics helpers: streaming mean/variance, exact percentiles over
// collected samples, fixed-bucket histograms and CDF extraction. Used by the
// simulator metrics and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace aptserve {

/// Streaming mean / variance / min / max (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Collects samples and answers exact quantile queries (sorts lazily).
class SampleSet {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void Reserve(size_t n) { samples_.reserve(n); }
  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// q in [0,1]; linear interpolation between closest ranks. Returns 0 when
  /// empty.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }
  double P99() const { return Quantile(0.99); }
  double Mean() const;
  double Min() const;
  double Max() const;

  const std::vector<double>& samples() const { return samples_; }

  /// Returns (value, cumulative fraction) pairs suitable for plotting a CDF,
  /// downsampled to at most `max_points` points.
  std::vector<std::pair<double, double>> Cdf(size_t max_points = 200) const;

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-width bucket histogram over [lo, hi); out-of-range values clamp to
/// the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  size_t count() const { return total_; }
  const std::vector<size_t>& buckets() const { return counts_; }
  double BucketLow(size_t i) const { return lo_ + i * width_; }
  double BucketHigh(size_t i) const { return lo_ + (i + 1) * width_; }

  /// Renders a compact ASCII sketch, one line per non-empty bucket.
  std::string ToAscii(size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  size_t total_ = 0;
  std::vector<size_t> counts_;
};

}  // namespace aptserve
