// Status / StatusOr: lightweight error propagation in the Arrow/RocksDB
// style. Library code never throws across module boundaries; fallible
// operations return Status (or StatusOr<T>) and callers either handle the
// error or propagate it with APT_RETURN_NOT_OK.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace aptserve {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
};

/// Returns a human-readable name for a StatusCode ("OK", "Invalid argument"...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error result. Cheap to copy in the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// Holds either a value of type T or an error Status.
template <typename T>
class StatusOr {
 public:
  /*implicit*/ StatusOr(T value) : value_(std::move(value)) {}
  /*implicit*/ StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok(). Asserts in debug builds.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace aptserve

/// Propagates a non-OK Status to the caller.
#define APT_RETURN_NOT_OK(expr)                  \
  do {                                           \
    ::aptserve::Status _st = (expr);             \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluates a StatusOr expression; on error returns the Status, otherwise
/// moves the value into `lhs`.
#define APT_ASSIGN_OR_RETURN(lhs, expr)          \
  APT_ASSIGN_OR_RETURN_IMPL_(                    \
      APT_STATUS_CONCAT_(_status_or, __LINE__), lhs, expr)

#define APT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define APT_STATUS_CONCAT_IMPL_(a, b) a##b
#define APT_STATUS_CONCAT_(a, b) APT_STATUS_CONCAT_IMPL_(a, b)
