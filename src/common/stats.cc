#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/logging.h"

namespace aptserve {

void RunningStat::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void SampleSet::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleSet::Mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double SampleSet::Min() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.front();
}

double SampleSet::Max() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.back();
}

std::vector<std::pair<double, double>> SampleSet::Cdf(size_t max_points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || max_points == 0) return out;
  EnsureSorted();
  const size_t n = samples_.size();
  const size_t step = std::max<size_t>(1, n / max_points);
  for (size_t i = 0; i < n; i += step) {
    out.emplace_back(samples_[i],
                     static_cast<double>(i + 1) / static_cast<double>(n));
  }
  if (out.back().first != samples_.back()) {
    out.emplace_back(samples_.back(), 1.0);
  } else {
    out.back().second = 1.0;
  }
  return out;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  APT_CHECK_MSG(hi > lo && buckets > 0, "histogram range/buckets invalid");
}

void Histogram::Add(double x) {
  size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
}

std::string Histogram::ToAscii(size_t max_width) const {
  std::ostringstream os;
  size_t peak = 0;
  for (size_t c : counts_) peak = std::max(peak, c);
  if (peak == 0) return "(empty)\n";
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const size_t bar = std::max<size_t>(1, counts_[i] * max_width / peak);
    os << "[" << BucketLow(i) << ", " << BucketHigh(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace aptserve
