#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/logging.h"

namespace aptserve {

void RunningStat::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel Welford: combine (n, mean, m2) pairs exactly.
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void SampleSet::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleSet::Mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double SampleSet::Min() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.front();
}

double SampleSet::Max() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.back();
}

std::vector<std::pair<double, double>> SampleSet::Cdf(size_t max_points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || max_points == 0) return out;
  EnsureSorted();
  const size_t n = samples_.size();
  const size_t step = std::max<size_t>(1, n / max_points);
  for (size_t i = 0; i < n; i += step) {
    out.emplace_back(samples_[i],
                     static_cast<double>(i + 1) / static_cast<double>(n));
  }
  if (out.back().first != samples_.back()) {
    out.emplace_back(samples_.back(), 1.0);
  } else {
    out.back().second = 1.0;
  }
  return out;
}

LatencyHistogram::LatencyHistogram(double min_s, double max_s,
                                   int32_t buckets_per_decade)
    : min_s_(min_s), max_s_(max_s),
      per_decade_(static_cast<double>(buckets_per_decade)) {
  APT_CHECK_MSG(min_s > 0 && max_s > min_s && buckets_per_decade > 0,
                "latency histogram range/resolution invalid");
  const double decades = std::log10(max_s_ / min_s_);
  const size_t buckets =
      static_cast<size_t>(std::ceil(decades * per_decade_));
  counts_.assign(buckets + 2, 0);  // + underflow and overflow
}

size_t LatencyHistogram::BucketIndex(double seconds) const {
  if (!(seconds >= min_s_)) return 0;  // underflow (covers NaN and <=0 too)
  if (seconds >= max_s_) return counts_.size() - 1;
  const double pos = std::log10(seconds / min_s_) * per_decade_;
  const size_t idx = static_cast<size_t>(pos) + 1;
  return std::min(idx, counts_.size() - 2);
}

double LatencyHistogram::BucketLow(size_t i) const {
  if (i == 0) return 0.0;
  if (i == counts_.size() - 1) return max_s_;
  return min_s_ * std::pow(10.0, static_cast<double>(i - 1) / per_decade_);
}

double LatencyHistogram::BucketHigh(size_t i) const {
  if (i == 0) return min_s_;
  if (i == counts_.size() - 1) return max_s_;
  return min_s_ * std::pow(10.0, static_cast<double>(i) / per_decade_);
}

void LatencyHistogram::Add(double seconds) {
  ++counts_[BucketIndex(seconds)];
  stat_.Add(seconds);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  // max_s_ must be part of the check: ceil() can give two histograms the
  // same bucket count for different upper bounds, which would silently
  // misalign their overflow edges (and every quantile above the smaller
  // max) if only the count were compared.
  APT_CHECK_MSG(counts_.size() == other.counts_.size() &&
                    min_s_ == other.min_s_ && max_s_ == other.max_s_ &&
                    per_decade_ == other.per_decade_,
                "merging latency histograms with different geometry");
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  stat_.Merge(other.stat_);
}

std::vector<std::pair<double, uint64_t>> LatencyHistogram::CumulativeBuckets()
    const {
  std::vector<std::pair<double, uint64_t>> out;
  uint64_t cum = 0;
  // Everything but the overflow bucket has a finite upper edge (the
  // underflow bucket's edge is min_s_); overflow lands in le="+Inf".
  for (size_t i = 0; i + 1 < counts_.size(); ++i) {
    cum += counts_[i];
    if (counts_[i] != 0) out.emplace_back(BucketHigh(i), cum);
  }
  return out;
}

double LatencyHistogram::Quantile(double q) const {
  const size_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  double cum = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= rank) {
      // Geometric interpolation inside the bucket; clamp to exact extremes.
      const double frac =
          (rank - cum) / static_cast<double>(counts_[i]);
      const double lo = std::max(BucketLow(i), stat_.min());
      const double hi = std::min(BucketHigh(i), stat_.max());
      if (lo <= 0.0 || hi <= lo) return std::clamp(hi, stat_.min(), stat_.max());
      return lo * std::pow(hi / lo, frac);
    }
    cum = next;
  }
  return stat_.max();
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  APT_CHECK_MSG(hi > lo && buckets > 0, "histogram range/buckets invalid");
}

void Histogram::Add(double x) {
  size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
}

std::string Histogram::ToAscii(size_t max_width) const {
  std::ostringstream os;
  size_t peak = 0;
  for (size_t c : counts_) peak = std::max(peak, c);
  if (peak == 0) return "(empty)\n";
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const size_t bar = std::max<size_t>(1, counts_[i] * max_width / peak);
    os << "[" << BucketLow(i) << ", " << BucketHigh(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace aptserve
