#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace aptserve {
namespace json {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::Set(const std::string& key, JsonValue v) {
  type_ = Type::kObject;
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

double JsonValue::GetNumber(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->number_value() : fallback;
}

int64_t JsonValue::GetInt(const std::string& key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number()
             ? static_cast<int64_t>(v->number_value())
             : fallback;
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v->bool_value() : fallback;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->string_value() : fallback;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return items_ == other.items_;
    case Type::kObject: {
      if (members_.size() != other.members_.size()) return false;
      for (const auto& [k, v] : members_) {
        const JsonValue* o = other.Find(k);
        if (o == nullptr || !(v == *o)) return false;
      }
      return true;
    }
  }
  return false;
}

std::string EscapeJsonString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char esc[8];
      std::snprintf(esc, sizeof(esc), "\\u%04x", c);
      out += esc;
    } else {
      out += c;
    }
  }
  return out;
}

namespace {

/// Shortest decimal rendering that round-trips a double exactly: try
/// increasing precision until strtod gives the value back. Integral values
/// inside the exact range render without an exponent or decimal point.
std::string RenderNumber(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == static_cast<int64_t>(v) && std::fabs(v) < 9.007199254740992e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? "\n" + std::string(static_cast<size_t>(indent) * (depth + 1), ' ')
             : "";
  const std::string close_pad =
      pretty ? "\n" + std::string(static_cast<size_t>(indent) * depth, ' ') : "";
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      *out += RenderNumber(number_);
      return;
    case Type::kString:
      *out += '"';
      *out += EscapeJsonString(string_);
      *out += '"';
      return;
    case Type::kArray: {
      if (items_.empty()) {
        *out += "[]";
        return;
      }
      *out += '[';
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) *out += pretty ? "," : ", ";
        *out += pad;
        items_[i].DumpTo(out, indent, depth + 1);
      }
      *out += close_pad;
      *out += ']';
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      *out += '{';
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) *out += pretty ? "," : ", ";
        *out += pad;
        *out += '"';
        *out += EscapeJsonString(members_[i].first);
        *out += "\": ";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      *out += close_pad;
      *out += '}';
      return;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue root;
    APT_RETURN_NOT_OK(ParseValue(&root));
    SkipWhitespace();
    if (at_ != text_.size()) {
      return Error("trailing content after JSON document");
    }
    return root;
  }

 private:
  Status Error(const std::string& what) const {
    size_t line = 1, col = 1;
    for (size_t i = 0; i < at_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return Status::InvalidArgument("JSON parse error at " +
                                   std::to_string(line) + ":" +
                                   std::to_string(col) + ": " + what);
  }

  void SkipWhitespace() {
    while (at_ < text_.size() &&
           (text_[at_] == ' ' || text_[at_] == '\t' || text_[at_] == '\n' ||
            text_[at_] == '\r')) {
      ++at_;
    }
  }

  bool ConsumeLiteral(const char* literal) {
    size_t len = 0;
    while (literal[len] != '\0') ++len;
    if (text_.compare(at_, len, literal) == 0) {
      at_ += len;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    if (++depth_ > kMaxDepth) return Error("nesting too deep");
    Status s = ParseValueInner(out);
    --depth_;
    return s;
  }

  Status ParseValueInner(JsonValue* out) {
    if (at_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[at_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"': {
        std::string s;
        APT_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue::String(std::move(s));
        return Status::OK();
      }
      case 't':
        if (ConsumeLiteral("true")) {
          *out = JsonValue::Bool(true);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) {
          *out = JsonValue::Bool(false);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) {
          *out = JsonValue::Null();
          return Status::OK();
        }
        return Error("invalid literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  Status ParseObject(JsonValue* out) {
    ++at_;  // '{'
    *out = JsonValue::Object();
    SkipWhitespace();
    if (at_ < text_.size() && text_[at_] == '}') {
      ++at_;
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      if (at_ >= text_.size() || text_[at_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      APT_RETURN_NOT_OK(ParseString(&key));
      if (out->Find(key) != nullptr) {
        return Error("duplicate object key \"" + key + "\"");
      }
      SkipWhitespace();
      if (at_ >= text_.size() || text_[at_] != ':') {
        return Error("expected ':' after object key");
      }
      ++at_;
      SkipWhitespace();
      JsonValue value;
      APT_RETURN_NOT_OK(ParseValue(&value));
      out->Set(key, std::move(value));
      SkipWhitespace();
      if (at_ >= text_.size()) return Error("unterminated object");
      if (text_[at_] == ',') {
        ++at_;
        continue;
      }
      if (text_[at_] == '}') {
        ++at_;
        return Status::OK();
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out) {
    ++at_;  // '['
    *out = JsonValue::Array();
    SkipWhitespace();
    if (at_ < text_.size() && text_[at_] == ']') {
      ++at_;
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      JsonValue value;
      APT_RETURN_NOT_OK(ParseValue(&value));
      out->Append(std::move(value));
      SkipWhitespace();
      if (at_ >= text_.size()) return Error("unterminated array");
      if (text_[at_] == ',') {
        ++at_;
        continue;
      }
      if (text_[at_] == ']') {
        ++at_;
        return Status::OK();
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++at_;  // opening quote
    out->clear();
    while (at_ < text_.size()) {
      const char c = text_[at_];
      if (c == '"') {
        ++at_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c == '\\') {
        ++at_;
        if (at_ >= text_.size()) return Error("unterminated escape");
        const char esc = text_[at_];
        switch (esc) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'n':
            *out += '\n';
            break;
          case 'r':
            *out += '\r';
            break;
          case 't':
            *out += '\t';
            break;
          case 'u': {
            if (at_ + 4 >= text_.size()) return Error("truncated \\u escape");
            uint32_t code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[at_ + 1 + i];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<uint32_t>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<uint32_t>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<uint32_t>(h - 'A' + 10);
              } else {
                return Error("invalid \\u escape digit");
              }
            }
            at_ += 4;
            // UTF-8 encode (surrogate pairs are passed through as two
            // 3-byte sequences — the writer only emits \u for controls).
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Error("invalid escape character");
        }
        ++at_;
        continue;
      }
      *out += c;
      ++at_;
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = at_;
    if (at_ < text_.size() && text_[at_] == '-') ++at_;
    // Integer part: a single 0, or a nonzero digit run (JSON forbids 012).
    if (at_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[at_]))) {
      return Error("invalid number");
    }
    if (text_[at_] == '0') {
      ++at_;
    } else {
      while (at_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[at_]))) {
        ++at_;
      }
    }
    if (at_ < text_.size() && text_[at_] == '.') {
      ++at_;
      if (at_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[at_]))) {
        return Error("digit expected after decimal point");
      }
      while (at_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[at_]))) {
        ++at_;
      }
    }
    if (at_ < text_.size() && (text_[at_] == 'e' || text_[at_] == 'E')) {
      ++at_;
      if (at_ < text_.size() && (text_[at_] == '+' || text_[at_] == '-')) ++at_;
      if (at_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[at_]))) {
        return Error("digit expected in exponent");
      }
      while (at_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[at_]))) {
        ++at_;
      }
    }
    const std::string token = text_.substr(start, at_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("invalid number");
    *out = JsonValue::Number(v);
    return Status::OK();
  }

  static constexpr int kMaxDepth = 128;

  const std::string& text_;
  size_t at_ = 0;
  int depth_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

StatusOr<JsonValue> ParseJsonFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseJson(buf.str());
}

}  // namespace json
}  // namespace aptserve
