#include "common/logging.h"

#include <atomic>

namespace aptserve {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel() && level != LogLevel::kOff),
      level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << std::endl;
}

void FatalCheckFailure(const char* file, int line, const char* expr,
                       const std::string& msg) {
  std::cerr << "[FATAL " << file << ":" << line << "] check failed: " << expr;
  if (!msg.empty()) std::cerr << " — " << msg;
  std::cerr << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace aptserve
