#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstring>
#include <mutex>

namespace aptserve {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};
/// Consumed by whichever of GetLogLevel (applies APTSERVE_LOG_LEVEL) or
/// SetLogLevel (discards it: an explicit setting wins) runs first.
std::once_flag g_env_once;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

bool ParseLogLevel(const char* text, LogLevel* out) {
  if (text == nullptr || out == nullptr) return false;
  std::string lower;
  for (const char* p = text; *p; ++p) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (lower == "debug" || lower == "0") {
    *out = LogLevel::kDebug;
  } else if (lower == "info" || lower == "1") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn" || lower == "2") {
    *out = LogLevel::kWarning;
  } else if (lower == "error" || lower == "3") {
    *out = LogLevel::kError;
  } else if (lower == "off" || lower == "4") {
    *out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

LogLevel GetLogLevel() {
  std::call_once(g_env_once, [] {
    LogLevel level;
    if (ParseLogLevel(std::getenv("APTSERVE_LOG_LEVEL"), &level)) {
      g_level.store(level, std::memory_order_relaxed);
    }
  });
  return g_level.load(std::memory_order_relaxed);
}

void SetLogLevel(LogLevel level) {
  // Burn the env application so a later first GetLogLevel cannot override
  // this explicit setting.
  std::call_once(g_env_once, [] {});
  g_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel() && level != LogLevel::kOff),
      level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << std::endl;
}

void FatalCheckFailure(const char* file, int line, const char* expr,
                       const std::string& msg) {
  std::cerr << "[FATAL " << file << ":" << line << "] check failed: " << expr;
  if (!msg.empty()) std::cerr << " — " << msg;
  std::cerr << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace aptserve
