// Deterministic seeded RNG used throughout the library so that traces,
// model weights and simulations are reproducible run to run.
#pragma once

#include <cstdint>
#include <random>

namespace aptserve {

/// A thin wrapper over std::mt19937_64 with the distributions the library
/// needs. Every component that draws randomness takes an explicit seed;
/// nothing reads global entropy.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : gen_(seed) {}

  /// Uniform in [0, 1).
  double Uniform() { return unit_(gen_); }

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(gen_);
  }

  /// Standard normal draw.
  double Normal() { return normal_(gen_); }

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Exponential with the given rate (mean 1/rate).
  double Exponential(double rate) {
    std::exponential_distribution<double> d(rate);
    return d(gen_);
  }

  /// Gamma with the given shape and scale.
  double Gamma(double shape, double scale) {
    std::gamma_distribution<double> d(shape, scale);
    return d(gen_);
  }

  /// Log-normal parameterized by the underlying normal's mu/sigma.
  double LogNormal(double mu, double sigma) {
    std::lognormal_distribution<double> d(mu, sigma);
    return d(gen_);
  }

  std::mt19937_64& generator() { return gen_; }

 private:
  std::mt19937_64 gen_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace aptserve
