// Umbrella header: the full public API of the Apt-Serve reproduction.
// Include this to get the engine, cache, scheduling, workload and
// simulation layers in one line; fine-grained headers remain available for
// selective inclusion.
#pragma once

// Common utilities.
#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/types.h"

// Parallel runtime layer (thread pool + config).
#include "runtime/runtime_config.h"
#include "runtime/thread_pool.h"

// Unified hybrid cache (paper §4.3).
#include "cache/block_pool.h"
#include "cache/cache_map.h"
#include "cache/cache_types.h"
#include "cache/hybrid_assigner.h"
#include "cache/swap_space.h"

// Prefix sharing (refcounted COW blocks + radix prefix index).
#include "prefix/prefix_index.h"

// Real mini-transformer inference engine (paper Figure 3 / §6.1).
#include "engine/block_storage.h"
#include "engine/inference_engine.h"
#include "engine/model_config.h"
#include "engine/rho_calibrator.h"
#include "engine/sampling.h"
#include "engine/serving_engine.h"
#include "engine/transformer.h"

// Workloads (paper §6.2).
#include "workload/arrival.h"
#include "workload/length_sampler.h"
#include "workload/request.h"
#include "workload/shared_prefix.h"
#include "workload/token_ids.h"
#include "workload/trace.h"

// The unified serving loop and its execution backends.
#include "serve/cost_model_backend.h"
#include "serve/execution_backend.h"
#include "serve/inference_backend.h"
#include "serve/multi_instance.h"
#include "serve/serving_loop.h"

// Serving simulation substrate.
#include "sim/cluster_spec.h"
#include "sim/cost_model.h"
#include "sim/metrics.h"
#include "sim/model_spec.h"
#include "sim/multi_instance.h"
#include "sim/report_writer.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

// Baseline schedulers (paper §6.2).
#include "baselines/fastgen_scheduler.h"
#include "baselines/fcfs_scheduler.h"
#include "baselines/random_scheduler.h"
#include "baselines/sarathi_scheduler.h"

// The Apt-Serve contribution (paper §4-§5).
#include "core/apt_sarathi_scheduler.h"
#include "core/apt_scheduler.h"
#include "core/greedy_solver.h"
#include "core/length_predictor.h"
#include "core/quantification.h"
#include "core/runtime_tracker.h"
