#include "prefix/prefix_index.h"

#include <algorithm>

#include "common/logging.h"

namespace aptserve {

PrefixIndex::PrefixIndex(BlockPool* pool, int32_t block_size)
    : pool_(pool), block_size_(block_size) {
  APT_CHECK(pool != nullptr);
  APT_CHECK_MSG(block_size > 0, "block size must be positive");
  APT_CHECK_MSG(block_size == pool->block_size(),
                "index block size must match the pool's");
}

PrefixIndex::~PrefixIndex() { Clear(); }

PrefixMatch PrefixIndex::Match(const std::vector<int32_t>& tokens,
                               int32_t max_usable) {
  ++stats_.lookups;
  if (hooks_.lookups != nullptr) hooks_.lookups->Inc();
  PrefixMatch match;
  if (max_usable <= 0) return match;

  // Walk the longest raw path first; the cap is applied afterwards so a
  // match that overruns `max_usable` mid-block becomes the COW case.
  std::vector<Node*> path;
  Node* node = &root_;
  int32_t raw = 0;
  std::vector<int32_t> chunk(block_size_);
  while (raw + block_size_ <= static_cast<int32_t>(tokens.size())) {
    chunk.assign(tokens.begin() + raw, tokens.begin() + raw + block_size_);
    auto it = node->children.find(chunk);
    if (it == node->children.end()) break;
    node = it->second.get();
    path.push_back(node);
    raw += block_size_;
  }
  if (raw == 0) return match;

  const int32_t usable = std::min(raw, max_usable);
  if (usable <= 0) return match;
  // Keep the matched path hot regardless of the cap: the deep prefix was
  // recognized even if the requester cannot use all of it.
  for (Node* n : path) Touch(n);

  const int32_t full = usable / block_size_;
  const int32_t cow = usable % block_size_;
  match.tokens = usable;
  match.k_blocks.reserve(full);
  match.v_blocks.reserve(full);
  for (int32_t i = 0; i < full; ++i) {
    match.k_blocks.push_back(path[i]->k_block);
    match.v_blocks.push_back(path[i]->v_block);
  }
  if (cow > 0) {
    match.cow_src_k = path[full]->k_block;
    match.cow_src_v = path[full]->v_block;
    match.cow_tokens = cow;
  }
  return match;
}

void PrefixIndex::RecordAdoption(const PrefixMatch& match) {
  if (!match.hit()) return;
  ++stats_.hits;
  stats_.matched_tokens += match.tokens;
  stats_.shared_blocks += static_cast<int64_t>(match.k_blocks.size());
  if (match.cow_tokens > 0) ++stats_.cow_matches;
  if (hooks_.hits != nullptr) hooks_.hits->Inc();
  if (hooks_.hit_tokens != nullptr) hooks_.hit_tokens->Inc(match.tokens);
}

int32_t PrefixIndex::Insert(const std::vector<int32_t>& tokens,
                            int32_t num_tokens,
                            const std::vector<BlockId>& k_blocks,
                            const std::vector<BlockId>& v_blocks) {
  const int32_t limit =
      std::min(num_tokens, static_cast<int32_t>(tokens.size()));
  const int32_t max_nodes =
      std::min(static_cast<int32_t>(std::min(k_blocks.size(), v_blocks.size())),
               limit / block_size_);
  Node* node = &root_;
  int32_t created = 0;
  std::vector<int32_t> chunk(block_size_);
  for (int32_t i = 0; i < max_nodes; ++i) {
    chunk.assign(tokens.begin() + static_cast<int64_t>(i) * block_size_,
                 tokens.begin() + static_cast<int64_t>(i + 1) * block_size_);
    auto it = node->children.find(chunk);
    if (it != node->children.end()) {
      // First writer wins: the existing node's payload caches the same
      // token prefix, so re-pointing it at this request's blocks would
      // only churn references for no benefit.
      node = it->second.get();
      Touch(node);
      continue;
    }
    APT_CHECK_MSG(pool_->IsAllocated(k_blocks[i]) &&
                      pool_->IsAllocated(v_blocks[i]),
                  "cannot index a free block");
    auto child = std::make_unique<Node>();
    child->parent = node;
    child->k_block = k_blocks[i];
    child->v_block = v_blocks[i];
    APT_CHECK(pool_->Ref(k_blocks[i]).ok());
    APT_CHECK(pool_->Ref(v_blocks[i]).ok());
    Node* raw = child.get();
    node->children.emplace(chunk, std::move(child));
    node = raw;
    Touch(node);
    ++created;
    ++num_nodes_;
    stats_.inserted_blocks += 2;
    if (hooks_.inserted_blocks != nullptr) hooks_.inserted_blocks->Inc(2);
  }
  return created;
}

void PrefixIndex::CollectEvictableLeaves(Node* node,
                                         std::vector<Node*>* out) const {
  // A leaf is evictable when nothing besides the index owns its blocks; a
  // pinned leaf (matched by a request mid-seeding, or still part of a live
  // cache map) has RefCount > 1 and is skipped, which is exactly the
  // "eviction racing a concurrent match" guarantee.
  for (const auto& [chunk, child] : node->children) {
    (void)chunk;
    if (child->children.empty()) {
      if (pool_->RefCount(child->k_block) == 1 &&
          pool_->RefCount(child->v_block) == 1) {
        out->push_back(child.get());
      }
    } else {
      CollectEvictableLeaves(child.get(), out);
    }
  }
}

int32_t PrefixIndex::EvictLru(int32_t min_blocks) {
  int32_t freed = 0;
  while (freed < min_blocks) {
    // One traversal per wave: collect every currently evictable leaf, then
    // evict in LRU order. Interior nodes exposed by a wave become leaves
    // for the next one, so sustained pressure still peels bottom-up
    // without rescanning the tree per evicted pair.
    std::vector<Node*> wave;
    CollectEvictableLeaves(&root_, &wave);
    if (wave.empty()) break;
    std::sort(wave.begin(), wave.end(), [](const Node* a, const Node* b) {
      return a->last_use < b->last_use;
    });
    for (Node* victim : wave) {
      if (freed >= min_blocks) return freed;
      APT_CHECK(pool_->Free(victim->k_block).ok());
      APT_CHECK(pool_->Free(victim->v_block).ok());
      freed += 2;
      stats_.evicted_blocks += 2;
      if (hooks_.evicted_blocks != nullptr) hooks_.evicted_blocks->Inc(2);
      --num_nodes_;
      Node* parent = victim->parent;
      for (auto it = parent->children.begin(); it != parent->children.end();
           ++it) {
        if (it->second.get() == victim) {
          parent->children.erase(it);
          break;
        }
      }
    }
  }
  return freed;
}

void PrefixIndex::Clear() {
  // Post-order release: children before parents (unique_ptr destruction
  // handles the tree; the pool references need the explicit walk).
  struct Walker {
    BlockPool* pool;
    void Release(Node* node) {
      for (auto& [chunk, child] : node->children) {
        (void)chunk;
        Release(child.get());
        APT_CHECK(pool->Free(child->k_block).ok());
        APT_CHECK(pool->Free(child->v_block).ok());
      }
      node->children.clear();
    }
  };
  Walker{pool_}.Release(&root_);
  num_nodes_ = 0;
}

std::string PrefixIndex::DebugString() const {
  std::string out = "PrefixIndex{nodes=" + std::to_string(num_nodes_) +
                    ", indexed_blocks=" + std::to_string(indexed_blocks()) +
                    ", lookups=" + std::to_string(stats_.lookups) +
                    ", hits=" + std::to_string(stats_.hits) +
                    ", matched_tokens=" + std::to_string(stats_.matched_tokens) +
                    ", shared_blocks=" + std::to_string(stats_.shared_blocks) +
                    ", cow_matches=" + std::to_string(stats_.cow_matches) +
                    ", inserted_blocks=" +
                    std::to_string(stats_.inserted_blocks) +
                    ", evicted_blocks=" +
                    std::to_string(stats_.evicted_blocks) + "}\n  " +
                    pool_->DebugString();
  return out;
}

}  // namespace aptserve
