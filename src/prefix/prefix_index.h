// PrefixIndex: the prefix-sharing subsystem's radix tree over token-id
// block chunks (vLLM automatic-prefix-caching / SGLang RadixAttention on
// the unified pool of paper §4.3).
//
// Each tree edge is one *full* cache block's worth of token ids
// (`block_size` tokens); each node owns the K/V block pair that caches
// exactly those positions for that token prefix. Matching is therefore
// block-granular: a request whose prompt starts with the concatenation of
// the chunks along a root path can adopt those K/V blocks instead of
// recomputing them. Because the transformer is causal, the K/V vectors of
// position i depend only on tokens [0, i], so adopted blocks are
// bit-identical to what the request would have computed itself.
//
// Ownership protocol (refcounted BlockPool):
//   - Insert() takes one reference per indexed block: the index is an
//     owner, so a request releasing its cache never frees indexed blocks.
//   - Match() is a pure lookup; HybridCacheAssigner::CreateSeeded() takes
//     the requester's references *before* any allocation can trigger
//     eviction, so a concurrent eviction (the reclaimer running inside the
//     same seeding's tail allocation) can never free matched blocks.
//   - EvictLru() removes least-recently-used leaves whose blocks have no
//     owner besides the index (RefCount == 1) and returns them to the pool.
//
// Scope: one index per engine/backend instance (the fleet runner builds
// per-instance backends, so no cross-instance sharing exists yet). All
// calls happen on the instance's serial prepare path — the parallel
// runtime's compute threads never touch the index — so no locking is
// needed; the same single-writer argument that covers BlockPool applies.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/block_pool.h"
#include "cache/cache_types.h"
#include "common/status.h"

namespace aptserve {

/// Result of a prefix lookup. `tokens` counts every matched position the
/// requester may reuse; the first `k_blocks.size() * block_size` of them
/// are covered by fully shared blocks, the remaining `cow_tokens` live in
/// the leading slots of the cow source pair, which the requester must
/// copy-on-write into a private tail block (the match ends mid-block, so
/// the requester will keep writing positions the source block does not
/// own — see HybridCacheAssigner::CreateSeeded).
struct PrefixMatch {
  int32_t tokens = 0;  ///< usable matched positions (full blocks + COW span)
  std::vector<BlockId> k_blocks;  ///< fully shared K blocks, in position order
  std::vector<BlockId> v_blocks;  ///< fully shared V blocks, in position order
  BlockId cow_src_k = kInvalidBlock;
  BlockId cow_src_v = kInvalidBlock;
  int32_t cow_tokens = 0;  ///< leading slots of the COW source to copy

  bool hit() const { return tokens > 0; }
};

/// Lifetime counters of one index (mirrored into ServingLoopResult so both
/// execution backends report hit accounting through the same struct).
/// Match() counts only lookups; the adoption counters advance via
/// RecordAdoption() once seeding actually succeeded, so an OOM-failed
/// seeding (or its memory-wall retry) never inflates hits relative to the
/// prefill positions genuinely skipped.
struct PrefixStats {
  int64_t lookups = 0;
  int64_t hits = 0;             ///< successful adoptions
  int64_t matched_tokens = 0;   ///< prefill positions skipped via the index
  int64_t shared_blocks = 0;    ///< full-block adoptions handed to requests
  int64_t cow_matches = 0;      ///< adoptions that ended mid-block
  int64_t inserted_blocks = 0;
  int64_t evicted_blocks = 0;
};

class PrefixIndex {
 public:
  /// Borrows `pool` (must outlive the index); `block_size` must equal the
  /// pool's. Only CacheType::kKV blocks are ever indexed — hidden-cache
  /// maps are per-request by construction (the hybrid scheme re-projects
  /// K/V from request-local hidden states, so there is nothing to share).
  PrefixIndex(BlockPool* pool, int32_t block_size);
  ~PrefixIndex();

  PrefixIndex(const PrefixIndex&) = delete;
  PrefixIndex& operator=(const PrefixIndex&) = delete;

  /// Longest indexed prefix of `tokens`, capped at `max_usable` positions
  /// (callers cap at prompt_len and at target-1 so at least one position
  /// remains to produce logits from). Pure lookup plus an LRU touch of the
  /// matched path; takes no block references and counts only a lookup.
  PrefixMatch Match(const std::vector<int32_t>& tokens, int32_t max_usable);

  /// Advances the adoption counters for a match whose seeding succeeded
  /// (callers invoke this right after HybridCacheAssigner::CreateSeeded
  /// returns OK).
  void RecordAdoption(const PrefixMatch& match);

  /// Indexes the full-block prefix of `tokens`: chunks [i*B, (i+1)*B) for
  /// every i with (i+1)*B <= num_tokens, caching `k_blocks[i]`/`v_blocks[i]`.
  /// Existing nodes are kept (first writer wins — their payload is
  /// identical by the causality argument above); new nodes take one pool
  /// reference per block. Returns the number of newly indexed nodes.
  int32_t Insert(const std::vector<int32_t>& tokens, int32_t num_tokens,
                 const std::vector<BlockId>& k_blocks,
                 const std::vector<BlockId>& v_blocks);

  /// Evicts least-recently-used leaves whose blocks have no owner besides
  /// the index, until at least `min_blocks` blocks were returned to the
  /// pool or nothing evictable remains. Returns blocks freed. Interior
  /// nodes become leaves as their subtrees drain, so repeated pressure
  /// peels the tree bottom-up.
  int32_t EvictLru(int32_t min_blocks);

  /// Drops every node and releases the index's block references.
  void Clear();

  int32_t num_nodes() const { return num_nodes_; }
  /// Blocks currently owned by the index (2 per node: one K, one V).
  int32_t indexed_blocks() const { return 2 * num_nodes_; }
  int32_t block_size() const { return block_size_; }
  const PrefixStats& stats() const { return stats_; }

  /// Live counter handles mirroring PrefixStats increments (optional,
  /// borrowed; any member may stay null). Purely observational — stats()
  /// remains the accounting source of truth.
  struct MetricHooks {
    obs::Counter* lookups = nullptr;
    obs::Counter* hits = nullptr;
    obs::Counter* hit_tokens = nullptr;
    obs::Counter* inserted_blocks = nullptr;
    obs::Counter* evicted_blocks = nullptr;
  };
  void AttachMetrics(const MetricHooks& hooks) { hooks_ = hooks; }

  /// Multi-line dump: node count, stats, and the pool's refcount summary.
  std::string DebugString() const;

 private:
  struct Node {
    /// Children keyed by their full token chunk. std::map keeps traversal
    /// deterministic (lexicographic) independent of insertion order.
    std::map<std::vector<int32_t>, std::unique_ptr<Node>> children;
    Node* parent = nullptr;
    BlockId k_block = kInvalidBlock;
    BlockId v_block = kInvalidBlock;
    /// Logical LRU clock value of the last Match/Insert touching this node.
    uint64_t last_use = 0;
  };

  void Touch(Node* node) { node->last_use = ++clock_; }
  /// Appends every currently evictable leaf under `node` to `out`.
  void CollectEvictableLeaves(Node* node, std::vector<Node*>* out) const;

  BlockPool* pool_;
  int32_t block_size_;
  Node root_;
  int32_t num_nodes_ = 0;
  uint64_t clock_ = 0;
  PrefixStats stats_;
  MetricHooks hooks_;
};

}  // namespace aptserve
