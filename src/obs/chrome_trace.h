// Chrome trace_event JSON exporter + validator for TraceRecorder events.
//
// The emitted JSON loads directly in chrome://tracing and Perfetto: one
// thread track per instance (tids = instance ids) plus "router" and
// "controller" tracks, spans as "X" complete events, instants as "i", and
// flow arrows ("s"/"f" pairs sharing an id) linking migration export ->
// import and shed -> re-route across instance tracks. Timestamps convert
// from the recorder's seconds (virtual or wall — one frame per run) to the
// microseconds the format requires.
//
// ValidateChromeTrace re-parses the JSON with a self-contained parser (no
// third-party deps) and checks the structural contract CI relies on:
// well-formed JSON, required keys per event, per-track monotonic
// timestamps, and every flow-begin matched by a flow-end at a later-or-
// equal timestamp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace_event.h"

namespace aptserve::obs {

/// Structural summary returned by the validator (and used as CI gates).
struct ChromeTraceStats {
  int64_t events = 0;       ///< non-metadata trace events
  int64_t tracks = 0;       ///< distinct (pid, tid) pairs
  int64_t flow_begins = 0;  ///< "s" phase events
  int64_t flow_ends = 0;    ///< "f" phase events
  int64_t matched_flows = 0;  ///< flow ids with both halves present
  int64_t scale_events = 0;   ///< events named "scale"
  /// "queue_wait" complete ("X") events. Queue wait is a *duration*: the
  /// validator rejects a "queue_wait" instant (the paired-instant encoding
  /// this span replaced), so a regression to instants fails validation.
  int64_t queue_wait_spans = 0;
};

/// Renders events as a `{"traceEvents": [...]}` JSON document. Events are
/// sorted per track by timestamp (stable), so the output is deterministic
/// for a deterministic event sequence and per-track timestamps are
/// monotonic by construction.
std::string ExportChromeTrace(std::vector<TraceEvent> events);

/// ExportChromeTrace + write to `path`.
Status WriteChromeTrace(std::vector<TraceEvent> events,
                        const std::string& path);

/// Parses `json` and checks the structural contract described above.
StatusOr<ChromeTraceStats> ValidateChromeTrace(const std::string& json);

}  // namespace aptserve::obs
