// MetricsRegistry: named counters, gauges and latency histograms with a
// Prometheus-text-exposition exporter.
//
// Layers resolve metric handles ONCE on a setup path (GetCounter takes a
// registry mutex and may allocate) and then update through the returned
// stable pointer — counters/gauges are single relaxed atomics, so the hot
// path stays allocation-free and TSan-clean at any thread count. Histograms
// wrap the log-bucketed stats.h LatencyHistogram behind a mutex; they sit
// on per-iteration paths, not per-token ones.
//
// Export order is deterministic (std::map over name, then label set), so
// two identical runs produce byte-identical text — snapshots diff cleanly.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/status.h"

namespace aptserve::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Inc(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Last-write-wins scalar with max/add combiners (CAS loops — safe to call
/// from worker threads).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  void SetMax(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void Add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Mutex-guarded LatencyHistogram (the underlying rings are fixed-size, so
/// Observe never allocates).
class HistogramMetric {
 public:
  explicit HistogramMetric(double min_s = 1e-6, double max_s = 1e4,
                           int32_t buckets_per_decade = 16)
      : h_(min_s, max_s, buckets_per_decade) {}

  void Observe(double v) {
    std::lock_guard<std::mutex> lock(mu_);
    h_.Add(v);
  }
  /// Consistent copy for quantile/bucket reads.
  LatencyHistogram Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return h_;
  }

 private:
  mutable std::mutex mu_;
  LatencyHistogram h_;
};

/// One parsed exposition sample: `name{labels} value` (labels may be "",
/// and includes the synthetic `le` label on histogram bucket lines).
struct PromSample {
  std::string name;
  std::string labels;
  double value = 0.0;
};

class MetricsRegistry {
 public:
  /// `labels` is the raw label body without braces, e.g.
  /// `instance="0",reason="swap_out"` — empty for an unlabelled series.
  /// Returns a pointer stable for the registry's lifetime; repeated calls
  /// with the same (name, labels) return the same object.
  Counter* GetCounter(const std::string& name,
                      const std::string& labels = "");
  Gauge* GetGauge(const std::string& name, const std::string& labels = "");
  HistogramMetric* GetHistogram(const std::string& name,
                                const std::string& labels = "");

  /// Prometheus text exposition: `# TYPE` comment per metric family, then
  /// one `name{labels} value` line per series (histograms expand to
  /// cumulative `_bucket{le=...}` lines plus `_sum` and `_count`).
  std::string ExportPrometheus() const;

 private:
  using Key = std::pair<std::string, std::string>;  // (name, labels)

  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<HistogramMetric>> histograms_;
};

/// Parses text in the exposition format back into samples (comment and
/// blank lines skipped). Strict enough for round-trip tests and CI
/// validation: malformed lines fail with InvalidArgument.
StatusOr<std::vector<PromSample>> ParsePrometheusText(
    const std::string& text);

}  // namespace aptserve::obs
