#include "obs/trace_recorder.h"

namespace aptserve::obs {

namespace internal {

TraceShard::TraceShard(size_t capacity, int32_t track)
    : ring_(capacity == 0 ? 1 : capacity), track_(track) {}

void TraceShard::Emit(const TraceEvent& e) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_[head_] = e;
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) {
    ++size_;
  } else {
    ++dropped_;  // wrapped: overwrote the oldest event
  }
  ++emitted_;
}

}  // namespace internal

#if !defined(APTSERVE_NO_TRACING)

void TraceSink::Emit(TraceEvent e) const {
  if (shard_ == nullptr) return;
  e.track = track_;
  shard_->Emit(e);
}

void TraceSink::Instant(TraceOp op, double ts, int64_t id, double a0,
                        double a1, double a2) const {
  if (shard_ == nullptr) return;
  TraceEvent e;
  e.op = op;
  e.kind = EventKind::kInstant;
  e.track = track_;
  e.id = id;
  e.ts = ts;
  e.a0 = a0;
  e.a1 = a1;
  e.a2 = a2;
  shard_->Emit(e);
}

void TraceSink::Span(TraceOp op, double ts, double dur, int64_t id, double a0,
                     double a1) const {
  if (shard_ == nullptr) return;
  TraceEvent e;
  e.op = op;
  e.kind = EventKind::kSpan;
  e.track = track_;
  e.id = id;
  e.ts = ts;
  e.dur = dur < 0 ? 0 : dur;
  e.a0 = a0;
  e.a1 = a1;
  shard_->Emit(e);
}

uint64_t TraceSink::FlowBegin(TraceOp op, double ts, int64_t id,
                              double a0) const {
  if (shard_ == nullptr) return 0;
  TraceEvent e;
  e.op = op;
  e.kind = EventKind::kFlowBegin;
  e.track = track_;
  e.id = id;
  e.flow = recorder_->NextFlowId();
  e.ts = ts;
  e.a0 = a0;
  shard_->Emit(e);
  return e.flow;
}

void TraceSink::FlowEnd(TraceOp op, double ts, int64_t id, uint64_t flow,
                        double a0, double a1) const {
  if (shard_ == nullptr) return;
  TraceEvent e;
  e.op = op;
  e.kind = flow == 0 ? EventKind::kInstant : EventKind::kFlowEnd;
  e.track = track_;
  e.id = id;
  e.flow = flow;
  e.ts = ts;
  e.a0 = a0;
  e.a1 = a1;
  shard_->Emit(e);
}

#endif  // !APTSERVE_NO_TRACING

TraceRecorder::TraceRecorder(size_t shard_capacity)
    : shard_capacity_(shard_capacity) {}

TraceSink TraceRecorder::MakeSink(int32_t track) {
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(
      std::make_unique<internal::TraceShard>(shard_capacity_, track));
  return TraceSink(this, shards_.back().get(), track);
}

std::vector<TraceEvent> TraceRecorder::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu_);
    const size_t cap = shard->ring_.size();
    // Oldest live event sits `size_` slots behind the write head.
    size_t pos = (shard->head_ + cap - shard->size_) % cap;
    for (size_t i = 0; i < shard->size_; ++i) {
      out.push_back(shard->ring_[pos]);
      pos = (pos + 1) % cap;
    }
    shard->size_ = 0;
    shard->head_ = 0;
  }
  return out;
}

uint64_t TraceRecorder::TotalEmitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu_);
    total += shard->emitted_;
  }
  return total;
}

uint64_t TraceRecorder::TotalDropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu_);
    total += shard->dropped_;
  }
  return total;
}

const char* TraceOpName(TraceOp op) {
  switch (op) {
    case TraceOp::kArrival:
      return "arrival";
    case TraceOp::kRouteDecision:
      return "route_decision";
    case TraceOp::kAdmission:
      return "admission";
    case TraceOp::kQueueWait:
      return "queue_wait";
    case TraceOp::kPrefill:
      return "prefill";
    case TraceOp::kDecodeStep:
      return "decode_step";
    case TraceOp::kIteration:
      return "iteration";
    case TraceOp::kPreempt:
      return "preempt";
    case TraceOp::kSwapIn:
      return "swap_in";
    case TraceOp::kMigrationExport:
      return "migration_export";
    case TraceOp::kMigrationImport:
      return "migration_import";
    case TraceOp::kShed:
      return "shed";
    case TraceOp::kCompletion:
      return "completion";
    case TraceOp::kScale:
      return "scale";
  }
  return "unknown";
}

const char* TraceOpArgName(TraceOp op, int32_t slot) {
  switch (op) {
    case TraceOp::kArrival:
      return nullptr;
    case TraceOp::kRouteDecision:
      switch (slot) {
        case 0: return "instance";
        case 1: return "score";
        case 2: return "policy";
      }
      return nullptr;
    case TraceOp::kAdmission:
      switch (slot) {
        case 0: return "verdict";
        case 1: return "predicted_ttft_s";
        case 2: return "deadline_s";
      }
      return nullptr;
    case TraceOp::kQueueWait:
      // a0: on router/cell tracks, the chosen instance of the predicted
      // wait; instance-track (measured) spans leave it 0.
      return slot == 0 ? "instance" : nullptr;
    case TraceOp::kPrefill:
      return slot == 0 ? "positions" : nullptr;
    case TraceOp::kDecodeStep:
      return slot == 0 ? "tokens" : nullptr;
    case TraceOp::kIteration:
      switch (slot) {
        case 0: return "batch";
        case 1: return "decodes";
      }
      return nullptr;
    case TraceOp::kPreempt:
      return slot == 0 ? "reason" : nullptr;
    case TraceOp::kSwapIn:
      return nullptr;
    case TraceOp::kMigrationExport:
      return slot == 0 ? "cached_tokens" : nullptr;
    case TraceOp::kMigrationImport:
      switch (slot) {
        case 0: return "cache_restored";
        case 1: return "copied_tokens";
      }
      return nullptr;
    case TraceOp::kShed:
      return slot == 0 ? "queue_depth" : nullptr;
    case TraceOp::kCompletion:
      switch (slot) {
        case 0: return "ttft_s";
        case 1: return "e2e_s";
      }
      return nullptr;
    case TraceOp::kScale:
      return slot == 0 ? "kind" : nullptr;
  }
  return nullptr;
}

}  // namespace aptserve::obs
