// TraceRecorder: sharded ring buffers for request-lifecycle events.
//
// Design constraints, in order:
//   1. Purely observational — attaching a recorder must not perturb
//      scheduling, token streams, or the virtual timeline (same contract as
//      ServingLoopState::AttachWallClock).
//   2. Zero allocation on the hot path — each shard preallocates a ring at
//      acquire time; Emit is a struct copy under a per-shard mutex that is
//      uncontended in steady state (one shard per instance/worker thread).
//   3. TSan-clean under the async serving mode — shards are mutex-guarded,
//      flow ids come from one atomic counter, Flush locks shard by shard.
//   4. Compiled-to-nothing when disabled — build with
//      -DAPTSERVE_NO_TRACING and every TraceSink method is an empty inline;
//      at runtime a default-constructed (null) sink costs one branch.
//
// Determinism: under the virtual-time FleetController sinks are created and
// flow ids drawn on the serial controller path, and each instance emits only
// from its own serial Step loop, so Flush() returns a bit-identical event
// sequence at any engine/fleet thread count. The async mode promises only
// token-stream identity; its wall timestamps and interleavings are real.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/trace_event.h"

namespace aptserve::obs {

class TraceRecorder;

namespace internal {

/// One preallocated event ring. When full it overwrites the oldest event
/// (keeping the most recent window) and counts the overwritten ones.
class TraceShard {
 public:
  TraceShard(size_t capacity, int32_t track);

  void Emit(const TraceEvent& e);

  int32_t track() const { return track_; }

 private:
  friend class aptserve::obs::TraceRecorder;

  std::mutex mu_;
  std::vector<TraceEvent> ring_;  // fixed capacity, preallocated
  size_t head_ = 0;               // next write slot
  size_t size_ = 0;               // live events in the ring
  uint64_t emitted_ = 0;
  uint64_t dropped_ = 0;  // overwritten by ring wrap
  const int32_t track_;
};

}  // namespace internal

/// A borrowed, copyable handle onto one recorder shard. Default-constructed
/// sinks are "off": every method is a null check and a return. Layers store
/// a TraceSink by value and never touch the recorder directly.
class TraceSink {
 public:
  TraceSink() = default;

#if defined(APTSERVE_NO_TRACING)
  explicit operator bool() const { return false; }
  void Emit(const TraceEvent&) const {}
  void Instant(TraceOp, double, int64_t, double = 0, double = 0,
               double = 0) const {}
  void Span(TraceOp, double, double, int64_t, double = 0, double = 0) const {}
  uint64_t FlowBegin(TraceOp, double, int64_t, double = 0) const { return 0; }
  void FlowEnd(TraceOp, double, int64_t, uint64_t, double = 0,
               double = 0) const {}
#else
  explicit operator bool() const { return shard_ != nullptr; }

  void Emit(TraceEvent e) const;

  void Instant(TraceOp op, double ts, int64_t id, double a0 = 0,
               double a1 = 0, double a2 = 0) const;
  void Span(TraceOp op, double ts, double dur, int64_t id, double a0 = 0,
            double a1 = 0) const;
  /// Emits a flow-begin event and returns its flow id (0 when the sink is
  /// off — pass it along unchanged; FlowEnd ignores id 0).
  uint64_t FlowBegin(TraceOp op, double ts, int64_t id, double a0 = 0) const;
  /// Terminates `flow` (from a FlowBegin, possibly on another sink). A zero
  /// flow id downgrades the event to an instant so unmatched imports still
  /// show on the timeline.
  void FlowEnd(TraceOp op, double ts, int64_t id, uint64_t flow,
               double a0 = 0, double a1 = 0) const;
#endif

  int32_t track() const { return track_; }

 private:
  friend class TraceRecorder;
  TraceSink(TraceRecorder* recorder, internal::TraceShard* shard,
            int32_t track)
      : recorder_(recorder), shard_(shard), track_(track) {}

  TraceRecorder* recorder_ = nullptr;
  internal::TraceShard* shard_ = nullptr;
  int32_t track_ = 0;
};

class TraceRecorder {
 public:
  /// `shard_capacity`: events retained per shard before the ring starts
  /// overwriting its oldest entries.
  explicit TraceRecorder(size_t shard_capacity = size_t{1} << 14);

  /// Creates a shard for `track` and returns a sink bound to it. Not a
  /// hot-path call — the serial setup paths (controller spawn, feeder
  /// start) acquire sinks once and hand them to the layers.
  TraceSink MakeSink(int32_t track);

  /// Next nonzero flow id (atomic; shared across all sinks so an arrow's
  /// two halves agree).
  uint64_t NextFlowId() {
    return next_flow_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Drains every shard, in shard-creation order, each shard's events in
  /// emission order. Ring-dropped events are gone; TotalDropped() says how
  /// many.
  std::vector<TraceEvent> Flush();

  uint64_t TotalEmitted() const;
  uint64_t TotalDropped() const;

 private:
  mutable std::mutex mu_;  // guards shards_ (vector growth only)
  std::vector<std::unique_ptr<internal::TraceShard>> shards_;
  std::atomic<uint64_t> next_flow_{0};
  const size_t shard_capacity_;
};

}  // namespace aptserve::obs
