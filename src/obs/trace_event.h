// Typed request-lifecycle trace events. One fixed-size POD per event so the
// hot-path emit is a struct copy into a preallocated ring — no allocation,
// no string formatting; names and arg labels are resolved only at export
// time (obs/chrome_trace.h).
//
// Timestamp frame: events carry whatever clock the emitting layer runs on —
// virtual seconds under the simulator/FleetController, monotonic wall
// seconds under RunAsync. Exporters never mix frames because a recorder is
// only ever attached to one run.
#pragma once

#include <cstdint>

namespace aptserve::obs {

// Tracks identify the timeline an event renders on. Instance tracks are the
// non-negative instance ids; fleet-level layers get reserved negative ids.
constexpr int32_t kRouterTrack = -1;      ///< Router::RouteOne decisions
constexpr int32_t kControllerTrack = -2;  ///< FleetController scaling ticks
/// Hierarchical front-tier tracks: cell c renders on kCellTrackBase - c
/// (-16, -17, ...). The gap below kControllerTrack leaves room for more
/// reserved fleet-level tracks without renumbering cells.
constexpr int32_t kCellTrackBase = -16;

/// What kind of timeline mark an event is.
enum class EventKind : uint8_t {
  kInstant,    ///< point event at `ts`
  kSpan,       ///< interval [ts, ts + dur]
  kFlowBegin,  ///< point event starting a cross-track arrow (`flow` id)
  kFlowEnd,    ///< point event terminating the matching kFlowBegin
};

/// The request-lifecycle taxonomy. Args a0/a1/a2 are op-specific; see
/// TraceOpArgName for the labels used at export time.
enum class TraceOp : uint8_t {
  kArrival,          ///< request registered with an instance's loop
  kRouteDecision,    ///< router chose an instance (a0=instance, a1=score,
                     ///< a2=policy)
  kAdmission,        ///< admission verdict (a0: 0=admit,1=reject,
                     ///< 2=best_effort; a1=predicted TTFT; a2=deadline)
  kQueueWait,        ///< span: enqueue -> first prefill chunk scheduled
  kPrefill,          ///< span: one chunked-prefill execution (a0=positions)
  kDecodeStep,       ///< instant: one generated token (a0=tokens so far)
  kIteration,        ///< span: one batch iteration (a0=batch, a1=decodes)
  kPreempt,          ///< instant (a0 reason: 0=scheduler, 1=memory_wall,
                     ///< 2=swap_out, 3=conversion)
  kSwapIn,           ///< instant: swapped cache restored to the pool
  kMigrationExport,  ///< flow begin: request extracted (a0=cached tokens)
  kMigrationImport,  ///< flow end: request received (a0=cache restored 0/1,
                     ///< a1=copied tokens)
  kShed,             ///< instant: async worker shed a queued request
                     ///< (a0=queue depth at shed)
  kCompletion,       ///< instant: final token (a0=ttft, a1=e2e seconds)
  kScale,            ///< instant on the controller track (id=instance,
                     ///< a0 kind: 0=add, 1=live, 2=drain, 3=retire)
};

struct TraceEvent {
  TraceOp op = TraceOp::kArrival;
  EventKind kind = EventKind::kInstant;
  int32_t track = 0;
  int64_t id = -1;    ///< request id (instance id for kScale)
  uint64_t flow = 0;  ///< nonzero links a kFlowBegin to its kFlowEnd
  double ts = 0.0;    ///< seconds in the run's clock frame
  double dur = 0.0;   ///< kSpan only
  double a0 = 0.0;
  double a1 = 0.0;
  double a2 = 0.0;
};

/// Stable lower_snake_case name ("route_decision", "migration_export", ...).
const char* TraceOpName(TraceOp op);

/// Label of argument slot `slot` (0..2) for `op`; nullptr when the slot is
/// unused (the exporter then omits it from the args object).
const char* TraceOpArgName(TraceOp op, int32_t slot);

}  // namespace aptserve::obs
