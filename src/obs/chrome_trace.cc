#include "obs/chrome_trace.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <utility>

#include "obs/trace_recorder.h"

namespace aptserve::obs {

namespace {

// ---- Export ----------------------------------------------------------------

// chrome://tracing wants small non-negative tids; instance tracks use their
// ids directly and the reserved negative tracks map above any plausible
// fleet size.
int64_t TrackTid(int32_t track) {
  if (track >= 0) return track;
  return 10000 - static_cast<int64_t>(track);  // router=10001, controller=10002
}

std::string TrackName(int32_t track) {
  if (track == kRouterTrack) return "router";
  if (track == kControllerTrack) return "controller";
  if (track <= kCellTrackBase) {
    return "cell " + std::to_string(kCellTrackBase - track);
  }
  if (track < 0) return "track" + std::to_string(track);
  return "instance " + std::to_string(track);
}

std::string JsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

void AppendArgs(const TraceEvent& e, std::string* out) {
  *out += "\"args\":{\"req\":" + std::to_string(e.id);
  const double args[3] = {e.a0, e.a1, e.a2};
  for (int32_t slot = 0; slot < 3; ++slot) {
    const char* label = TraceOpArgName(e.op, slot);
    if (label == nullptr) continue;
    *out += ",\"";
    *out += label;
    *out += "\":";
    *out += JsonNumber(args[slot]);
  }
  *out += '}';
}

void AppendCommon(const TraceEvent& e, const char* ph, const char* cat,
                  std::string* out) {
  *out += "{\"name\":\"";
  *out += TraceOpName(e.op);
  *out += "\",\"cat\":\"";
  *out += cat;
  *out += "\",\"ph\":\"";
  *out += ph;
  *out += "\",\"ts\":";
  *out += JsonNumber(e.ts * 1e6);
  *out += ",\"pid\":1,\"tid\":";
  *out += std::to_string(TrackTid(e.track));
}

}  // namespace

std::string ExportChromeTrace(std::vector<TraceEvent> events) {
  // Stable per-track timestamp order: equal stamps keep emission order, and
  // per-track monotonicity becomes a construction property (queue-wait
  // spans legitimately *start* in the past relative to their emit point).
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.track != b.track) return a.track < b.track;
                     return a.ts < b.ts;
                   });

  std::map<int32_t, bool> tracks;
  for (const TraceEvent& e : events) tracks[e.track] = true;

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  sep();
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"aptserve\"}}";
  for (const auto& [track, unused] : tracks) {
    (void)unused;
    sep();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(TrackTid(track)) + ",\"args\":{\"name\":\"" +
           TrackName(track) + "\"}}";
  }

  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case EventKind::kSpan:
        sep();
        AppendCommon(e, "X", "lifecycle", &out);
        out += ",\"dur\":" + JsonNumber(e.dur * 1e6) + ",";
        AppendArgs(e, &out);
        out += '}';
        break;
      case EventKind::kInstant:
        sep();
        AppendCommon(e, "i", "lifecycle", &out);
        out += ",\"s\":\"t\",";
        AppendArgs(e, &out);
        out += '}';
        break;
      case EventKind::kFlowBegin:
        // A visible instant plus the flow-start half of the arrow.
        sep();
        AppendCommon(e, "i", "lifecycle", &out);
        out += ",\"s\":\"t\",";
        AppendArgs(e, &out);
        out += '}';
        sep();
        AppendCommon(e, "s", "flow", &out);
        out += ",\"id\":" + std::to_string(e.flow) + '}';
        break;
      case EventKind::kFlowEnd:
        sep();
        AppendCommon(e, "i", "lifecycle", &out);
        out += ",\"s\":\"t\",";
        AppendArgs(e, &out);
        out += '}';
        sep();
        AppendCommon(e, "f", "flow", &out);
        out += ",\"bp\":\"e\",\"id\":" + std::to_string(e.flow) + '}';
        break;
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status WriteChromeTrace(std::vector<TraceEvent> events,
                        const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open trace file: " + path);
  out << ExportChromeTrace(std::move(events));
  out.close();
  if (!out) return Status::Internal("short write to trace file: " + path);
  return Status::OK();
}

// ---- Minimal JSON parser ---------------------------------------------------
// Self-contained recursive-descent parser for the validator: the repo takes
// no third-party JSON dependency, and the subset the exporter emits
// (objects, arrays, strings with simple escapes, numbers, bools, null) is
// small enough to parse exactly.

namespace {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  bool Is(Type t) const { return type == t; }
  const JsonValue* Find(const std::string& key) const {
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue v;
    APT_RETURN_NOT_OK(ParseValue(&v));
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return v;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str);
    }
    if (c == 't' || c == 'f') return ParseKeyword(out);
    if (c == 'n') return ParseKeyword(out);
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      APT_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue v;
      APT_RETURN_NOT_OK(ParseValue(&v));
      out->obj.emplace(std::move(key), std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue v;
      APT_RETURN_NOT_OK(ParseValue(&v));
      out->arr.push_back(std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("dangling escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            // The exporter never emits \u escapes; accept and keep them
            // opaque so foreign traces still validate structurally.
            if (pos_ + 4 > text_.size()) return Fail("short \\u escape");
            *out += '?';
            pos_ += 4;
            break;
          }
          default:
            return Fail("bad escape");
        }
      } else {
        *out += c;
      }
    }
    return Fail("unterminated string");
  }

  Status ParseKeyword(JsonValue* out) {
    auto match = [&](const char* kw) {
      const size_t n = std::string(kw).size();
      if (text_.compare(pos_, n, kw) == 0) {
        pos_ += n;
        return true;
      }
      return false;
    };
    if (match("true")) {
      out->type = JsonValue::Type::kBool;
      out->b = true;
      return Status::OK();
    }
    if (match("false")) {
      out->type = JsonValue::Type::kBool;
      out->b = false;
      return Status::OK();
    }
    if (match("null")) {
      out->type = JsonValue::Type::kNull;
      return Status::OK();
    }
    return Fail("bad keyword");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected value");
    char* end = nullptr;
    const std::string tok = text_.substr(start, pos_ - start);
    out->num = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0') return Fail("bad number: " + tok);
    out->type = JsonValue::Type::kNumber;
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

// ---- Validation ------------------------------------------------------------

StatusOr<ChromeTraceStats> ValidateChromeTrace(const std::string& json) {
  JsonParser parser(json);
  auto root_or = parser.Parse();
  APT_RETURN_NOT_OK(root_or.status());
  const JsonValue& root = *root_or;
  if (!root.Is(JsonValue::Type::kObject)) {
    return Status::InvalidArgument("trace root is not an object");
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || !events->Is(JsonValue::Type::kArray)) {
    return Status::InvalidArgument("missing traceEvents array");
  }

  ChromeTraceStats stats;
  std::map<std::pair<int64_t, int64_t>, double> last_ts;  // (pid,tid) -> ts
  struct FlowHalves {
    int64_t begins = 0;
    int64_t ends = 0;
    double begin_ts = 0.0;
    double end_ts = 0.0;
  };
  std::map<int64_t, FlowHalves> flows;

  int64_t index = -1;
  for (const JsonValue& e : events->arr) {
    ++index;
    const std::string at = "traceEvents[" + std::to_string(index) + "]";
    if (!e.Is(JsonValue::Type::kObject)) {
      return Status::InvalidArgument(at + " is not an object");
    }
    const JsonValue* ph = e.Find("ph");
    const JsonValue* name = e.Find("name");
    const JsonValue* pid = e.Find("pid");
    const JsonValue* tid = e.Find("tid");
    if (ph == nullptr || !ph->Is(JsonValue::Type::kString) ||
        ph->str.empty()) {
      return Status::InvalidArgument(at + ": missing ph");
    }
    if (name == nullptr || !name->Is(JsonValue::Type::kString)) {
      return Status::InvalidArgument(at + ": missing name");
    }
    if (pid == nullptr || !pid->Is(JsonValue::Type::kNumber) ||
        tid == nullptr || !tid->Is(JsonValue::Type::kNumber)) {
      return Status::InvalidArgument(at + ": missing pid/tid");
    }
    if (ph->str == "M") continue;  // metadata: no timestamp contract

    const JsonValue* ts = e.Find("ts");
    if (ts == nullptr || !ts->Is(JsonValue::Type::kNumber)) {
      return Status::InvalidArgument(at + ": missing ts");
    }
    ++stats.events;

    const std::pair<int64_t, int64_t> track{
        static_cast<int64_t>(pid->num), static_cast<int64_t>(tid->num)};
    auto [it, inserted] = last_ts.emplace(track, ts->num);
    if (inserted) ++stats.tracks;
    if (!inserted) {
      if (ts->num < it->second) {
        return Status::InvalidArgument(
            at + ": non-monotonic ts on track tid=" +
            std::to_string(track.second) + " (" + std::to_string(ts->num) +
            " after " + std::to_string(it->second) + ")");
      }
      it->second = ts->num;
    }

    if (ph->str == "X") {
      const JsonValue* dur = e.Find("dur");
      if (dur == nullptr || !dur->Is(JsonValue::Type::kNumber) ||
          dur->num < 0) {
        return Status::InvalidArgument(at + ": complete event without dur");
      }
      if (name->str == "queue_wait") ++stats.queue_wait_spans;
    } else if (ph->str == "s" || ph->str == "f") {
      const JsonValue* id = e.Find("id");
      if (id == nullptr || !id->Is(JsonValue::Type::kNumber)) {
        return Status::InvalidArgument(at + ": flow event without id");
      }
      FlowHalves& half = flows[static_cast<int64_t>(id->num)];
      if (ph->str == "s") {
        ++half.begins;
        half.begin_ts = ts->num;
        ++stats.flow_begins;
      } else {
        ++half.ends;
        half.end_ts = ts->num;
        ++stats.flow_ends;
      }
    } else if (ph->str == "i") {
      if (name->str == "scale") ++stats.scale_events;
      if (name->str == "queue_wait") {
        return Status::InvalidArgument(
            at + ": queue_wait must be a span (X), not an instant — the "
                 "paired-instant encoding was retired");
      }
    }
  }

  for (const auto& [id, half] : flows) {
    if (half.begins != 1 || half.ends != 1) {
      return Status::InvalidArgument(
          "flow id " + std::to_string(id) + " has " +
          std::to_string(half.begins) + " begins and " +
          std::to_string(half.ends) + " ends (want exactly 1 of each)");
    }
    if (half.end_ts < half.begin_ts) {
      return Status::InvalidArgument("flow id " + std::to_string(id) +
                                     " ends before it begins");
    }
    ++stats.matched_flows;
  }
  return stats;
}

}  // namespace aptserve::obs
