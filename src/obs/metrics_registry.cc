#include "obs/metrics_registry.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace aptserve::obs {

namespace {

// %.17g round-trips any double through strtod exactly, so export -> parse
// -> compare is lossless in the tests.
std::string FormatValue(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string SeriesLine(const std::string& name, const std::string& labels,
                       const std::string& value) {
  std::string line = name;
  if (!labels.empty()) {
    line += '{';
    line += labels;
    line += '}';
  }
  line += ' ';
  line += value;
  line += '\n';
  return line;
}

std::string WithLabel(const std::string& labels, const std::string& extra) {
  if (labels.empty()) return extra;
  return labels + "," + extra;
}

}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[{name, labels}];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[{name, labels}];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name,
                                               const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[{name, labels}];
  if (!slot) slot = std::make_unique<HistogramMetric>();
  return slot.get();
}

std::string MetricsRegistry::ExportPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  const std::string* family = nullptr;

  for (const auto& [key, counter] : counters_) {
    if (family == nullptr || *family != key.first) {
      out += "# TYPE " + key.first + " counter\n";
      family = &key.first;
    }
    out += SeriesLine(key.first, key.second,
                      FormatValue(static_cast<double>(counter->value())));
  }
  family = nullptr;
  for (const auto& [key, gauge] : gauges_) {
    if (family == nullptr || *family != key.first) {
      out += "# TYPE " + key.first + " gauge\n";
      family = &key.first;
    }
    out += SeriesLine(key.first, key.second, FormatValue(gauge->value()));
  }
  family = nullptr;
  for (const auto& [key, histo] : histograms_) {
    if (family == nullptr || *family != key.first) {
      out += "# TYPE " + key.first + " histogram\n";
      family = &key.first;
    }
    const LatencyHistogram snap = histo->Snapshot();
    for (const auto& [upper, cum] : snap.CumulativeBuckets()) {
      out += SeriesLine(
          key.first + "_bucket",
          WithLabel(key.second, "le=\"" + FormatValue(upper) + "\""),
          FormatValue(static_cast<double>(cum)));
    }
    out += SeriesLine(key.first + "_bucket",
                      WithLabel(key.second, "le=\"+Inf\""),
                      FormatValue(static_cast<double>(snap.count())));
    out += SeriesLine(key.first + "_sum", key.second, FormatValue(snap.sum()));
    out += SeriesLine(key.first + "_count", key.second,
                      FormatValue(static_cast<double>(snap.count())));
  }
  return out;
}

StatusOr<std::vector<PromSample>> ParsePrometheusText(
    const std::string& text) {
  std::vector<PromSample> samples;
  std::istringstream in(text);
  std::string line;
  int32_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Trim trailing CR and surrounding whitespace.
    size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    size_t end = line.find_last_not_of(" \t\r");
    line = line.substr(begin, end - begin + 1);
    if (line.empty() || line[0] == '#') continue;

    const size_t space = line.find_last_of(" \t");
    if (space == std::string::npos) {
      return Status::InvalidArgument("prometheus line " +
                                     std::to_string(lineno) +
                                     ": no value separator: " + line);
    }
    const std::string value_str = line.substr(space + 1);
    char* parse_end = nullptr;
    const double value = std::strtod(value_str.c_str(), &parse_end);
    if (parse_end == value_str.c_str() || *parse_end != '\0') {
      return Status::InvalidArgument("prometheus line " +
                                     std::to_string(lineno) +
                                     ": bad value: " + value_str);
    }

    std::string metric = line.substr(0, space);
    const size_t ws = metric.find_last_not_of(" \t");
    metric = metric.substr(0, ws + 1);

    PromSample s;
    s.value = value;
    const size_t brace = metric.find('{');
    if (brace == std::string::npos) {
      s.name = metric;
    } else {
      if (metric.back() != '}') {
        return Status::InvalidArgument("prometheus line " +
                                       std::to_string(lineno) +
                                       ": unterminated labels: " + metric);
      }
      s.name = metric.substr(0, brace);
      s.labels = metric.substr(brace + 1, metric.size() - brace - 2);
    }
    if (s.name.empty()) {
      return Status::InvalidArgument("prometheus line " +
                                     std::to_string(lineno) +
                                     ": empty metric name");
    }
    samples.push_back(std::move(s));
  }
  return samples;
}

}  // namespace aptserve::obs
