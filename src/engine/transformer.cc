#include "engine/transformer.h"

#include <cmath>
#include <cstring>

#include "engine/ops.h"
#include "runtime/thread_pool.h"

namespace aptserve {

TransformerModel::TransformerModel(ModelWeights weights)
    : weights_(std::move(weights)) {
  Status st = weights_.config.Validate();
  APT_CHECK_MSG(st.ok(), st.ToString());
}

void TransformerModel::Activation(float* x, int32_t n) const {
  if (weights_.config.use_relu) {
    ops::Relu(x, n);
  } else {
    ops::Gelu(x, n);
  }
}

void TransformerModel::Attention(const float* q, const float* keys,
                                 const float* values, int32_t n_ctx,
                                 float* out, runtime::ThreadPool* pool) const {
  const ModelConfig& cfg = weights_.config;
  const int32_t hd = cfg.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
  // Heads are independent and own disjoint slices of `out`.
  runtime::ParallelFor(
      pool, 0, cfg.n_heads, 1, [&](int64_t h_lo, int64_t h_hi) {
        std::vector<float> scores(n_ctx);
        for (int64_t h = h_lo; h < h_hi; ++h) {
          const int32_t off = static_cast<int32_t>(h) * hd;
          for (int32_t j = 0; j < n_ctx; ++j) {
            scores[j] =
                ops::Dot(q + off,
                         keys + static_cast<int64_t>(j) * cfg.d_model + off,
                         hd) *
                scale;
          }
          ops::Softmax(scores.data(), n_ctx);
          float* o = out + off;
          std::fill(o, o + hd, 0.0f);
          for (int32_t j = 0; j < n_ctx; ++j) {
            const float* v =
                values + static_cast<int64_t>(j) * cfg.d_model + off;
            const float a = scores[j];
            for (int32_t k = 0; k < hd; ++k) o[k] += a * v[k];
          }
        }
      });
}

StatusOr<std::vector<float>> TransformerModel::ForwardFull(
    const std::vector<int32_t>& tokens, runtime::ThreadPool* pool) const {
  const ModelConfig& cfg = weights_.config;
  const int32_t n = static_cast<int32_t>(tokens.size());
  if (n == 0) return Status::InvalidArgument("empty token sequence");
  if (n > cfg.max_seq_len) {
    return Status::InvalidArgument("sequence exceeds max_seq_len");
  }
  const int32_t d = cfg.d_model;

  // X holds the current layer's inputs for all positions.
  Tensor x({n, d});
  for (int32_t i = 0; i < n; ++i) {
    const int32_t t = tokens[i];
    if (t < 0 || t >= cfg.vocab_size) {
      return Status::InvalidArgument("token id out of vocabulary");
    }
    std::memcpy(x.Row(i), weights_.token_embedding.Row(t), sizeof(float) * d);
    ops::AddInPlace(x.Row(i), weights_.position_embedding.Row(i), d);
  }

  Tensor keys({n, d}), values({n, d}), normed({n, d});
  for (const LayerWeights& lw : weights_.layers) {
    // Pass 1: K/V for every position from the layer input — one batched
    // LayerNorm shared by both projections, then one blocked GEMM each.
    ops::LayerNormBatch(x.data(), lw.ln1_gain.data(), lw.ln1_bias.data(),
                        normed.data(), n, d, pool);
    ops::MatMat(lw.wk.data(), normed.data(), keys.data(), n, d, d, pool);
    ops::MatMat(lw.wv.data(), normed.data(), values.data(), n, d, d, pool);
    // Pass 2: causal attention + FFN per position. Positions are
    // independent given the K/V of pass 1 (position i reads keys[0..i]).
    runtime::ParallelFor(pool, 0, n, 1, [&](int64_t lo, int64_t hi) {
      std::vector<float> ln(d), q(d), attn(d), proj(d), ff(cfg.d_ff), ffo(d);
      for (int64_t i = lo; i < hi; ++i) {
        const int32_t pos = static_cast<int32_t>(i);
        ops::LayerNorm(x.Row(pos), lw.ln1_gain.data(), lw.ln1_bias.data(),
                       ln.data(), d);
        ops::MatVec(lw.wq.data(), ln.data(), q.data(), d, d);
        Attention(q.data(), keys.data(), values.data(), pos + 1, attn.data());
        ops::MatVec(lw.wo.data(), attn.data(), proj.data(), d, d);
        ops::AddInPlace(x.Row(pos), proj.data(), d);

        ops::LayerNorm(x.Row(pos), lw.ln2_gain.data(), lw.ln2_bias.data(),
                       ln.data(), d);
        ops::MatVec(lw.w1.data(), ln.data(), ff.data(), cfg.d_ff, d);
        Activation(ff.data(), cfg.d_ff);
        ops::MatVec(lw.w2.data(), ff.data(), ffo.data(), d, cfg.d_ff);
        ops::AddInPlace(x.Row(pos), ffo.data(), d);
      }
    });
  }

  std::vector<float> ln(d);
  ops::LayerNorm(x.Row(n - 1), weights_.final_ln_gain.data(),
                 weights_.final_ln_bias.data(), ln.data(), d);
  std::vector<float> logits(cfg.vocab_size);
  ops::MatVecBlocked(weights_.token_embedding.data(), ln.data(), logits.data(),
                     cfg.vocab_size, d, pool);
  return logits;
}

Status TransformerModel::CachedStep(int32_t token, int32_t pos,
                                    const CacheMap& map, BlockStorage* storage,
                                    std::vector<float>* logits,
                                    runtime::ThreadPool* pool) const {
  const ModelConfig& cfg = weights_.config;
  const int32_t d = cfg.d_model;
  if (token < 0 || token >= cfg.vocab_size) {
    return Status::InvalidArgument("token id out of vocabulary");
  }
  if (pos < 0 || pos >= cfg.max_seq_len) {
    return Status::InvalidArgument("position exceeds max_seq_len");
  }
  if (map.num_tokens() <= pos) {
    return Status::FailedPrecondition(
        "cache map does not cover the current position; allocate first");
  }
  APT_CHECK(storage != nullptr && logits != nullptr);

  const int32_t n_ctx = pos + 1;
  std::vector<float> x(d), ln(d), q(d), k(d), v(d), attn(d), proj(d);
  std::vector<float> ff(cfg.d_ff), ffo(d);
  // Contiguous K/V covering [0, n_ctx) — gathered (KV path) or recomputed
  // (hidden path) each layer.
  std::vector<float> keys(static_cast<int64_t>(n_ctx) * d);
  std::vector<float> values(static_cast<int64_t>(n_ctx) * d);

  std::memcpy(x.data(), weights_.token_embedding.Row(token),
              sizeof(float) * d);
  ops::AddInPlace(x.data(), weights_.position_embedding.Row(pos), d);

  for (int32_t l = 0; l < cfg.n_layers; ++l) {
    const LayerWeights& lw = weights_.layers[l];
    ops::LayerNorm(x.data(), lw.ln1_gain.data(), lw.ln1_bias.data(), ln.data(),
                   d);
    ops::MatVec(lw.wq.data(), ln.data(), q.data(), d, d);
    ops::MatVec(lw.wk.data(), ln.data(), k.data(), d, d);
    ops::MatVec(lw.wv.data(), ln.data(), v.data(), d, d);

    if (map.type() == CacheType::kKV) {
      // Figure 3a: past K/V come straight from cache.
      if (pos > 0) {
        storage->Gather(map, CacheComponent::kKey, l, pos, keys.data());
        storage->Gather(map, CacheComponent::kValue, l, pos, values.data());
      }
      storage->WriteVector(map, CacheComponent::kKey, l, pos, k.data());
      storage->WriteVector(map, CacheComponent::kValue, l, pos, v.data());
    } else {
      // Figure 3b: past layer inputs come from the hidden cache; K/V are
      // re-projected on the fly (the extra linear-complexity work). Past
      // positions are independent — this is the decode path's dominant
      // cost and parallelizes across the pool.
      storage->WriteVector(map, CacheComponent::kHidden, l, pos, x.data());
      runtime::ParallelFor(pool, 0, pos, 8, [&](int64_t lo, int64_t hi) {
        std::vector<float> past_x(d), past_ln(d);
        for (int64_t j = lo; j < hi; ++j) {
          storage->ReadVector(map, CacheComponent::kHidden, l,
                              static_cast<int32_t>(j), past_x.data());
          ops::LayerNorm(past_x.data(), lw.ln1_gain.data(), lw.ln1_bias.data(),
                         past_ln.data(), d);
          ops::MatVec(lw.wk.data(), past_ln.data(), keys.data() + j * d, d, d);
          ops::MatVec(lw.wv.data(), past_ln.data(), values.data() + j * d, d,
                      d);
        }
      });
    }
    std::memcpy(keys.data() + static_cast<int64_t>(pos) * d, k.data(),
                sizeof(float) * d);
    std::memcpy(values.data() + static_cast<int64_t>(pos) * d, v.data(),
                sizeof(float) * d);

    Attention(q.data(), keys.data(), values.data(), n_ctx, attn.data(), pool);
    ops::MatVec(lw.wo.data(), attn.data(), proj.data(), d, d);
    ops::AddInPlace(x.data(), proj.data(), d);

    ops::LayerNorm(x.data(), lw.ln2_gain.data(), lw.ln2_bias.data(), ln.data(),
                   d);
    ops::MatVec(lw.w1.data(), ln.data(), ff.data(), cfg.d_ff, d);
    Activation(ff.data(), cfg.d_ff);
    ops::MatVec(lw.w2.data(), ff.data(), ffo.data(), d, cfg.d_ff);
    ops::AddInPlace(x.data(), ffo.data(), d);
  }

  ops::LayerNorm(x.data(), weights_.final_ln_gain.data(),
                 weights_.final_ln_bias.data(), ln.data(), d);
  logits->assign(cfg.vocab_size, 0.0f);
  ops::MatVecBlocked(weights_.token_embedding.data(), ln.data(),
                     logits->data(), cfg.vocab_size, d, pool);
  return Status::OK();
}

Status TransformerModel::PrefillCached(const std::vector<int32_t>& tokens,
                                       int32_t start_pos, const CacheMap& map,
                                       BlockStorage* storage,
                                       std::vector<float>* logits,
                                       runtime::ThreadPool* pool) const {
  const ModelConfig& cfg = weights_.config;
  const int32_t d = cfg.d_model;
  const int32_t n = static_cast<int32_t>(tokens.size());
  if (n == 0) return Status::InvalidArgument("empty token sequence");
  if (n > cfg.max_seq_len) {
    return Status::InvalidArgument("sequence exceeds max_seq_len");
  }
  if (start_pos < 0 || start_pos >= n) {
    return Status::InvalidArgument("start_pos out of range");
  }
  if (map.num_tokens() < n) {
    return Status::FailedPrecondition(
        "cache map does not cover the chunk; allocate first");
  }
  APT_CHECK(storage != nullptr && logits != nullptr);
  const int32_t c = n - start_pos;  // new positions this pass

  // Layer inputs for the new positions.
  Tensor x({c, d});
  for (int32_t i = 0; i < c; ++i) {
    const int32_t t = tokens[start_pos + i];
    if (t < 0 || t >= cfg.vocab_size) {
      return Status::InvalidArgument("token id out of vocabulary");
    }
    std::memcpy(x.Row(i), weights_.token_embedding.Row(t), sizeof(float) * d);
    ops::AddInPlace(x.Row(i), weights_.position_embedding.Row(start_pos + i),
                    d);
  }

  Tensor keys({n, d}), values({n, d}), normed({c, d});
  for (int32_t l = 0; l < cfg.n_layers; ++l) {
    const LayerWeights& lw = weights_.layers[l];
    // K/V for the already-cached prefix: one gather (KV) or one
    // re-projection sweep (hidden) per layer for the whole chunk.
    if (start_pos > 0) {
      if (map.type() == CacheType::kKV) {
        storage->Gather(map, CacheComponent::kKey, l, start_pos, keys.data());
        storage->Gather(map, CacheComponent::kValue, l, start_pos,
                        values.data());
      } else {
        runtime::ParallelFor(pool, 0, start_pos, 8,
                             [&](int64_t lo, int64_t hi) {
          std::vector<float> past_x(d), past_ln(d);
          for (int64_t j = lo; j < hi; ++j) {
            storage->ReadVector(map, CacheComponent::kHidden, l,
                                static_cast<int32_t>(j), past_x.data());
            ops::LayerNorm(past_x.data(), lw.ln1_gain.data(),
                           lw.ln1_bias.data(), past_ln.data(), d);
            ops::MatVec(lw.wk.data(), past_ln.data(),
                        keys.Row(static_cast<int32_t>(j)), d, d);
            ops::MatVec(lw.wv.data(), past_ln.data(),
                        values.Row(static_cast<int32_t>(j)), d, d);
          }
        });
      }
    }
    // K/V for the new positions from the (pre-attention) layer inputs —
    // one batched LayerNorm over the chunk shared by both projections,
    // then one blocked GEMM each.
    ops::LayerNormBatch(x.data(), lw.ln1_gain.data(), lw.ln1_bias.data(),
                        normed.data(), c, d, pool);
    ops::MatMat(lw.wk.data(), normed.data(), keys.Row(start_pos), c, d, d,
                pool);
    ops::MatMat(lw.wv.data(), normed.data(), values.Row(start_pos), c, d, d,
                pool);
    // This layer's cache writes (block-slot memcpys; serial).
    for (int32_t i = 0; i < c; ++i) {
      const int32_t pos = start_pos + i;
      if (map.type() == CacheType::kKV) {
        storage->WriteVector(map, CacheComponent::kKey, l, pos, keys.Row(pos));
        storage->WriteVector(map, CacheComponent::kValue, l, pos,
                             values.Row(pos));
      } else {
        storage->WriteVector(map, CacheComponent::kHidden, l, pos, x.Row(i));
      }
    }
    // Causal attention + FFN for each new position; independent given the
    // fully-written K/V above.
    runtime::ParallelFor(pool, 0, c, 1, [&](int64_t lo, int64_t hi) {
      std::vector<float> ln(d), q(d), attn(d), proj(d), ff(cfg.d_ff), ffo(d);
      for (int64_t i = lo; i < hi; ++i) {
        const int32_t row = static_cast<int32_t>(i);
        const int32_t pos = start_pos + row;
        ops::LayerNorm(x.Row(row), lw.ln1_gain.data(), lw.ln1_bias.data(),
                       ln.data(), d);
        ops::MatVec(lw.wq.data(), ln.data(), q.data(), d, d);
        Attention(q.data(), keys.data(), values.data(), pos + 1, attn.data());
        ops::MatVec(lw.wo.data(), attn.data(), proj.data(), d, d);
        ops::AddInPlace(x.Row(row), proj.data(), d);

        ops::LayerNorm(x.Row(row), lw.ln2_gain.data(), lw.ln2_bias.data(),
                       ln.data(), d);
        ops::MatVec(lw.w1.data(), ln.data(), ff.data(), cfg.d_ff, d);
        Activation(ff.data(), cfg.d_ff);
        ops::MatVec(lw.w2.data(), ff.data(), ffo.data(), d, cfg.d_ff);
        ops::AddInPlace(x.Row(row), ffo.data(), d);
      }
    });
  }

  std::vector<float> ln(d);
  ops::LayerNorm(x.Row(c - 1), weights_.final_ln_gain.data(),
                 weights_.final_ln_bias.data(), ln.data(), d);
  logits->assign(cfg.vocab_size, 0.0f);
  ops::MatVecBlocked(weights_.token_embedding.data(), ln.data(),
                     logits->data(), cfg.vocab_size, d, pool);
  return Status::OK();
}

}  // namespace aptserve
