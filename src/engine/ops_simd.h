// Internal SIMD primitive tier behind the ops.h dispatch (engine/ops.cc is
// the only intended includer besides tests/benches that want to introspect
// the active path). One translation unit (ops_simd.cc) is compiled with the
// vector ISA flags the build detected (-mavx2 -mfma on x86, NEON is
// baseline on aarch64); everything else in the library keeps the default
// flags, so compiler auto-contraction can never change the pinned scalar
// reference kernels.
//
// Determinism contract: every primitive's result is a pure function of its
// inputs and lengths — the lane structure (accumulator count, tail order)
// is fixed, never data- or thread-dependent — so dispatched kernels stay
// bit-identical across thread counts and run-to-run, exactly like the
// scalar tier. Reduction primitives (Dot, LayerNorm) use a different
// summation order than the scalar reference and therefore agree only to
// bounded ulp; elementwise primitives (AddInPlace, ScaleInPlace, Relu,
// Axpy) use one multiply/add per element in scalar order and are
// bit-identical to the reference. Transcendental kernels (Softmax, Gelu)
// replace libm exp/tanh with a vector polynomial (Cephes-style range
// reduction) and agree with the scalar reference only to a documented
// bound (~1e-5 relative); their scalar tails replay the vector lanes'
// exact arithmetic (fmaf + the same polynomial), so every element's
// result is independent of where the lane boundary falls — tiled callers
// (FusedMatMatAct) stay bit-identical to the untiled dispatch.
#pragma once

#include <cstdint>

namespace aptserve {
namespace ops {
namespace simd {

/// True when this build carries a vector ISA (and APT_FORCE_SCALAR is off).
bool Available();

/// "avx2+fma", "neon", or "scalar".
const char* IsaName();

/// SIMD lanes in floats: 8 (AVX2), 4 (NEON), 1 (scalar stub).
int32_t WidthFloats();

/// Vectorized dot product, 4-accumulator main loop + vector + scalar tails.
/// Bounded-ulp vs the scalar reference (reduction order differs).
float Dot(const float* a, const float* b, int32_t n);

/// Vectorized LayerNorm (eps = 1e-5, same formula as the scalar kernel).
/// Bounded-ulp vs the reference: mean/variance reductions are vectorized.
void LayerNorm(const float* x, const float* gain, const float* bias,
               float* out, int32_t n);

/// y[i] += row[i] * xr — the MatVecTransposed inner step. One multiply and
/// one add per element (no FMA), so bit-identical to the scalar reference.
void Axpy(const float* row, float xr, float* y, int32_t n);

/// Elementwise kernels, bit-identical to the scalar reference.
void AddInPlace(float* x, const float* y, int32_t n);
void ScaleInPlace(float* x, float s, int32_t n);
void Relu(float* x, int32_t n);

/// Vectorized numerically-stable softmax (max-subtract, polynomial exp,
/// normalize). Bounded agreement vs the scalar reference (the vector exp
/// is a degree-6 polynomial, ~2 ulp, and the sum reduction is lane-major);
/// deterministic: the lane structure is a fixed function of n.
void Softmax(float* x, int32_t n);

/// Vectorized tanh-form GELU (same constants as the scalar kernel; tanh
/// evaluated as (e-1)/(e+1) with e = polynomial exp(2z)). Bounded
/// agreement vs the scalar reference, and elementwise offset-invariant:
/// the scalar tail replays the vector arithmetic exactly, so Gelu(x+k, m)
/// over subranges is bit-identical to one full-range call.
void Gelu(float* x, int32_t n);

}  // namespace simd
}  // namespace ops
}  // namespace aptserve
