#include "engine/ops.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "engine/ops_simd.h"
#include "runtime/thread_pool.h"

namespace aptserve {
namespace ops {

namespace {

/// W rows per cache tile: a tile of kRowTile x cols fp32 weights is
/// streamed once and reused across every batch row it multiplies.
constexpr int32_t kRowTile = 32;

/// Resolved once: the ops_simd.cc translation unit either carries a vector
/// backend or returns false, fixed at build time.
const bool kUseSimd = simd::Available();

inline float GeluScalar(float v) {
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  return 0.5f * v * (1.0f + std::tanh(kC * (v + 0.044715f * v * v * v)));
}

}  // namespace

const char* ActiveIsa() { return simd::IsaName(); }

int32_t VectorWidthFloats() { return simd::WidthFloats(); }

// ---- Pinned scalar reference kernels --------------------------------------

namespace scalar {

void MatVec(const float* w, const float* x, float* y, int32_t rows,
            int32_t cols) {
  for (int32_t r = 0; r < rows; ++r) {
    const float* row = w + static_cast<int64_t>(r) * cols;
    float acc = 0.0f;
    for (int32_t c = 0; c < cols; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

void MatVecTransposed(const float* w, const float* x, float* y, int32_t rows,
                      int32_t cols) {
  for (int32_t c = 0; c < cols; ++c) y[c] = 0.0f;
  for (int32_t r = 0; r < rows; ++r) {
    const float* row = w + static_cast<int64_t>(r) * cols;
    const float xr = x[r];
    for (int32_t c = 0; c < cols; ++c) y[c] += row[c] * xr;
  }
}

void AddInPlace(float* x, const float* y, int32_t n) {
  for (int32_t i = 0; i < n; ++i) x[i] += y[i];
}

void ScaleInPlace(float* x, float s, int32_t n) {
  for (int32_t i = 0; i < n; ++i) x[i] *= s;
}

float Dot(const float* a, const float* b, int32_t n) {
  float acc = 0.0f;
  for (int32_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void Softmax(float* x, int32_t n) {
  if (n <= 0) return;
  float mx = x[0];
  for (int32_t i = 1; i < n; ++i) mx = std::max(mx, x[i]);
  float sum = 0.0f;
  for (int32_t i = 0; i < n; ++i) {
    x[i] = std::exp(x[i] - mx);
    sum += x[i];
  }
  const float inv = 1.0f / sum;
  for (int32_t i = 0; i < n; ++i) x[i] *= inv;
}

void LayerNorm(const float* x, const float* gain, const float* bias,
               float* out, int32_t n) {
  constexpr float kEps = 1e-5f;
  float mean = 0.0f;
  for (int32_t i = 0; i < n; ++i) mean += x[i];
  mean /= static_cast<float>(n);
  float var = 0.0f;
  for (int32_t i = 0; i < n; ++i) {
    const float d = x[i] - mean;
    var += d * d;
  }
  var /= static_cast<float>(n);
  const float inv = 1.0f / std::sqrt(var + kEps);
  for (int32_t i = 0; i < n; ++i) {
    out[i] = (x[i] - mean) * inv * gain[i] + bias[i];
  }
}

void Gelu(float* x, int32_t n) {
  for (int32_t i = 0; i < n; ++i) x[i] = GeluScalar(x[i]);
}

void Relu(float* x, int32_t n) {
  for (int32_t i = 0; i < n; ++i) x[i] = std::max(0.0f, x[i]);
}

int32_t ArgMax(const float* x, int32_t n) {
  int32_t best = 0;
  for (int32_t i = 1; i < n; ++i) {
    if (x[i] > x[best]) best = i;
  }
  return best;
}

}  // namespace scalar

// ---- Dispatched entry points ----------------------------------------------
//
// Every MatVec/MatMat output element funnels through ops::Dot and every
// normalized row through ops::LayerNorm, so the unblocked and blocked tiers
// stay bit-identical to each other on both ISA legs.

float Dot(const float* a, const float* b, int32_t n) {
  return kUseSimd ? simd::Dot(a, b, n) : scalar::Dot(a, b, n);
}

void MatVec(const float* w, const float* x, float* y, int32_t rows,
            int32_t cols) {
  for (int32_t r = 0; r < rows; ++r) {
    y[r] = Dot(w + static_cast<int64_t>(r) * cols, x, cols);
  }
}

void MatVecTransposed(const float* w, const float* x, float* y, int32_t rows,
                      int32_t cols) {
  if (!kUseSimd) {
    scalar::MatVecTransposed(w, x, y, rows, cols);
    return;
  }
  // simd::Axpy is bit-identical to the scalar per-row update (one multiply
  // and one add per element), so this path matches the reference exactly.
  for (int32_t c = 0; c < cols; ++c) y[c] = 0.0f;
  for (int32_t r = 0; r < rows; ++r) {
    simd::Axpy(w + static_cast<int64_t>(r) * cols, x[r], y, cols);
  }
}

void AddInPlace(float* x, const float* y, int32_t n) {
  if (kUseSimd) {
    simd::AddInPlace(x, y, n);
  } else {
    scalar::AddInPlace(x, y, n);
  }
}

void ScaleInPlace(float* x, float s, int32_t n) {
  if (kUseSimd) {
    simd::ScaleInPlace(x, s, n);
  } else {
    scalar::ScaleInPlace(x, s, n);
  }
}

void Softmax(float* x, int32_t n) {
  if (kUseSimd) {
    simd::Softmax(x, n);
  } else {
    scalar::Softmax(x, n);
  }
}

void LayerNorm(const float* x, const float* gain, const float* bias,
               float* out, int32_t n) {
  if (kUseSimd) {
    simd::LayerNorm(x, gain, bias, out, n);
  } else {
    scalar::LayerNorm(x, gain, bias, out, n);
  }
}

void Gelu(float* x, int32_t n) {
  if (kUseSimd) {
    simd::Gelu(x, n);
  } else {
    scalar::Gelu(x, n);
  }
}

void Relu(float* x, int32_t n) {
  if (kUseSimd) {
    simd::Relu(x, n);
  } else {
    scalar::Relu(x, n);
  }
}

int32_t ArgMax(const float* x, int32_t n) { return scalar::ArgMax(x, n); }

// ---- Blocked / batched kernels (parallel runtime tier) --------------------

namespace {

enum class PostAct { kNone, kRelu, kGelu };

/// The blocked core: y_b[r] = act(dot(w_r, x_b)) over the sub-rectangle
/// [b_lo, b_hi) x [r_lo, r_hi). The inner dot is the dispatched ops::Dot —
/// the same accumulation order as the unblocked MatVec — so every output
/// element is bit-identical to it no matter how the rectangle is split
/// across threads.
inline void MatMatTile(const float* w, const float* x, float* y, int32_t rows,
                       int32_t cols, int32_t b_lo, int32_t b_hi, int32_t r_lo,
                       int32_t r_hi, PostAct act) {
  for (int32_t r0 = r_lo; r0 < r_hi; r0 += kRowTile) {
    const int32_t r1 = std::min(r0 + kRowTile, r_hi);
    for (int32_t b = b_lo; b < b_hi; ++b) {
      const float* xb = x + static_cast<int64_t>(b) * cols;
      float* yb = y + static_cast<int64_t>(b) * rows;
      for (int32_t r = r0; r < r1; ++r) {
        yb[r] = Dot(w + static_cast<int64_t>(r) * cols, xb, cols);
      }
      if (act == PostAct::kRelu) {
        for (int32_t r = r0; r < r1; ++r) yb[r] = std::max(0.0f, yb[r]);
      } else if (act == PostAct::kGelu) {
        // The dispatched Gelu is elementwise offset-invariant (its scalar
        // tail replays the vector lanes exactly), so applying it per tile
        // sub-range is bit-identical to one unfused full-range call no
        // matter where the tile boundaries fall.
        Gelu(yb + r0, r1 - r0);
      }
    }
  }
}

void MatMatImpl(const float* w, const float* x, float* y, int32_t batch,
                int32_t rows, int32_t cols, PostAct act,
                runtime::ThreadPool* pool) {
  if (batch <= 0 || rows <= 0) return;
  if (pool == nullptr || pool->num_threads() <= 1) {
    MatMatTile(w, x, y, rows, cols, 0, batch, 0, rows, act);
    return;
  }
  if (batch >= 2 * pool->num_threads()) {
    // Plenty of batch rows: split the batch, each task sweeps all W tiles.
    pool->ParallelFor(0, batch, 1, [&](int64_t lo, int64_t hi) {
      MatMatTile(w, x, y, rows, cols, static_cast<int32_t>(lo),
                 static_cast<int32_t>(hi), 0, rows, act);
    });
  } else {
    // Few batch rows (decode / logits): split the W rows instead.
    pool->ParallelFor(0, rows, kRowTile, [&](int64_t lo, int64_t hi) {
      MatMatTile(w, x, y, rows, cols, 0, batch, static_cast<int32_t>(lo),
                 static_cast<int32_t>(hi), act);
    });
  }
}

}  // namespace

void MatMat(const float* w, const float* x, float* y, int32_t batch,
            int32_t rows, int32_t cols, runtime::ThreadPool* pool) {
  MatMatImpl(w, x, y, batch, rows, cols, PostAct::kNone, pool);
}

void MatVecBlocked(const float* w, const float* x, float* y, int32_t rows,
                   int32_t cols, runtime::ThreadPool* pool) {
  MatMatImpl(w, x, y, 1, rows, cols, PostAct::kNone, pool);
}

void LayerNormBatch(const float* x, const float* gain, const float* bias,
                    float* out, int32_t batch, int32_t n,
                    runtime::ThreadPool* pool) {
  runtime::ParallelFor(pool, 0, batch, 4, [&](int64_t lo, int64_t hi) {
    for (int64_t b = lo; b < hi; ++b) {
      LayerNorm(x + b * n, gain, bias, out + b * n, n);
    }
  });
}

void FusedLayerNormMatMat(const float* x, const float* gain,
                          const float* bias, const float* w, float* y,
                          int32_t batch, int32_t rows, int32_t cols,
                          runtime::ThreadPool* pool) {
  if (pool != nullptr && pool->num_threads() > 1 &&
      batch < 2 * pool->num_threads() && rows >= 4 * kRowTile) {
    // Few batch rows but a tall W (e.g. logits): normalize once, then let
    // the GEMM parallelize over W rows.
    std::vector<float> normed(static_cast<size_t>(batch) * cols);
    LayerNormBatch(x, gain, bias, normed.data(), batch, cols, pool);
    MatMat(w, normed.data(), y, batch, rows, cols, pool);
    return;
  }
  runtime::ParallelFor(pool, 0, batch, 1, [&](int64_t lo, int64_t hi) {
    std::vector<float> ln(cols);
    for (int64_t b = lo; b < hi; ++b) {
      LayerNorm(x + b * cols, gain, bias, ln.data(), cols);
      MatMatTile(w, ln.data(), y + b * rows, rows, cols, 0, 1, 0, rows,
                 PostAct::kNone);
    }
  });
}

void FusedMatMatAct(const float* w, const float* x, float* y, int32_t batch,
                    int32_t rows, int32_t cols, bool use_relu,
                    runtime::ThreadPool* pool) {
  MatMatImpl(w, x, y, batch, rows, cols,
             use_relu ? PostAct::kRelu : PostAct::kGelu, pool);
}

}  // namespace ops
}  // namespace aptserve
