#include "engine/ops.h"

#include <algorithm>
#include <cmath>

namespace aptserve {
namespace ops {

void MatVec(const float* w, const float* x, float* y, int32_t rows,
            int32_t cols) {
  for (int32_t r = 0; r < rows; ++r) {
    const float* row = w + static_cast<int64_t>(r) * cols;
    float acc = 0.0f;
    for (int32_t c = 0; c < cols; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

void MatVecTransposed(const float* w, const float* x, float* y, int32_t rows,
                      int32_t cols) {
  for (int32_t c = 0; c < cols; ++c) y[c] = 0.0f;
  for (int32_t r = 0; r < rows; ++r) {
    const float* row = w + static_cast<int64_t>(r) * cols;
    const float xr = x[r];
    for (int32_t c = 0; c < cols; ++c) y[c] += row[c] * xr;
  }
}

void AddInPlace(float* x, const float* y, int32_t n) {
  for (int32_t i = 0; i < n; ++i) x[i] += y[i];
}

void ScaleInPlace(float* x, float s, int32_t n) {
  for (int32_t i = 0; i < n; ++i) x[i] *= s;
}

float Dot(const float* a, const float* b, int32_t n) {
  float acc = 0.0f;
  for (int32_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void Softmax(float* x, int32_t n) {
  if (n <= 0) return;
  float mx = x[0];
  for (int32_t i = 1; i < n; ++i) mx = std::max(mx, x[i]);
  float sum = 0.0f;
  for (int32_t i = 0; i < n; ++i) {
    x[i] = std::exp(x[i] - mx);
    sum += x[i];
  }
  const float inv = 1.0f / sum;
  for (int32_t i = 0; i < n; ++i) x[i] *= inv;
}

void LayerNorm(const float* x, const float* gain, const float* bias,
               float* out, int32_t n) {
  constexpr float kEps = 1e-5f;
  float mean = 0.0f;
  for (int32_t i = 0; i < n; ++i) mean += x[i];
  mean /= static_cast<float>(n);
  float var = 0.0f;
  for (int32_t i = 0; i < n; ++i) {
    const float d = x[i] - mean;
    var += d * d;
  }
  var /= static_cast<float>(n);
  const float inv = 1.0f / std::sqrt(var + kEps);
  for (int32_t i = 0; i < n; ++i) {
    out[i] = (x[i] - mean) * inv * gain[i] + bias[i];
  }
}

void Gelu(float* x, int32_t n) {
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  for (int32_t i = 0; i < n; ++i) {
    const float v = x[i];
    x[i] = 0.5f * v * (1.0f + std::tanh(kC * (v + 0.044715f * v * v * v)));
  }
}

void Relu(float* x, int32_t n) {
  for (int32_t i = 0; i < n; ++i) x[i] = std::max(0.0f, x[i]);
}

int32_t ArgMax(const float* x, int32_t n) {
  int32_t best = 0;
  for (int32_t i = 1; i < n; ++i) {
    if (x[i] > x[best]) best = i;
  }
  return best;
}

}  // namespace ops
}  // namespace aptserve
