// Token sampling strategies for the inference engine: greedy (argmax),
// temperature, top-k and top-p (nucleus). All draws are deterministic given
// the caller's seeded Rng.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace aptserve {

struct SamplingParams {
  enum class Kind { kGreedy, kTemperature, kTopK, kTopP };
  Kind kind = Kind::kGreedy;
  /// Softmax temperature for the stochastic kinds; must be > 0.
  double temperature = 1.0;
  /// Number of highest-probability tokens kept (kTopK).
  int32_t top_k = 40;
  /// Cumulative probability mass kept (kTopP), in (0, 1].
  double top_p = 0.9;

  static SamplingParams Greedy() { return SamplingParams{}; }
  static SamplingParams Temperature(double t) {
    SamplingParams p;
    p.kind = Kind::kTemperature;
    p.temperature = t;
    return p;
  }
  static SamplingParams TopK(int32_t k, double t = 1.0) {
    SamplingParams p;
    p.kind = Kind::kTopK;
    p.top_k = k;
    p.temperature = t;
    return p;
  }
  static SamplingParams TopP(double top_p, double t = 1.0) {
    SamplingParams p;
    p.kind = Kind::kTopP;
    p.top_p = top_p;
    p.temperature = t;
    return p;
  }
};

/// Draws the next token from `logits` under `params`. `rng` may be null for
/// kGreedy and must be non-null otherwise.
StatusOr<int32_t> SampleToken(const std::vector<float>& logits,
                              const SamplingParams& params, Rng* rng);

}  // namespace aptserve
