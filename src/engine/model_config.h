// Architecture hyperparameters for the mini decoder-only transformer.
#pragma once

#include <cstdint>

#include "common/status.h"

namespace aptserve {

/// Decoder-only transformer configuration (paper §2.1). The engine is a
/// laptop-scale stand-in for OPT-class models; the *structure* (pre-LN
/// attention + FFN blocks, per-layer K/V or hidden caching) matches the
/// paper's Figure 3 exactly.
struct ModelConfig {
  int32_t vocab_size = 256;
  int32_t d_model = 64;
  int32_t n_heads = 4;
  int32_t n_layers = 4;
  int32_t d_ff = 256;
  int32_t max_seq_len = 512;
  /// Use ReLU (OPT-style) rather than GELU in the FFN.
  bool use_relu = true;

  int32_t head_dim() const { return d_model / n_heads; }

  Status Validate() const {
    if (vocab_size <= 0 || d_model <= 0 || n_heads <= 0 || n_layers <= 0 ||
        d_ff <= 0 || max_seq_len <= 0) {
      return Status::InvalidArgument("model dimensions must be positive");
    }
    if (d_model % n_heads != 0) {
      return Status::InvalidArgument("d_model must be divisible by n_heads");
    }
    return Status::OK();
  }

  /// A tiny config for fast unit tests.
  static ModelConfig Tiny() {
    ModelConfig c;
    c.vocab_size = 64;
    c.d_model = 32;
    c.n_heads = 2;
    c.n_layers = 2;
    c.d_ff = 64;
    c.max_seq_len = 128;
    return c;
  }

  /// A slightly larger config for calibration benchmarks.
  static ModelConfig Small() {
    ModelConfig c;
    c.vocab_size = 512;
    c.d_model = 128;
    c.n_heads = 4;
    c.n_layers = 6;
    c.d_ff = 512;
    c.max_seq_len = 1024;
    return c;
  }
};

}  // namespace aptserve
