// TransformerModel: the decoder-only transformer of paper §2.1 with three
// inference paths:
//   1. ForwardFull      — no cache, recompute everything (reference oracle);
//   2. CachedStep (KV)  — Figure 3a: read cached K/V, O(1) projections;
//   3. CachedStep (Hid) — Figure 3b: read cached layer inputs x_j^l, rebuild
//      K/V with on-the-fly projections (the extra O(n) linear work whose
//      cost the scheduler models as rho * m_i).
// All three produce identical logits for the same token history — the
// correctness invariant behind the hybrid cache (tested extensively).
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache_map.h"
#include "common/status.h"
#include "engine/block_storage.h"
#include "engine/model_weights.h"

namespace aptserve {

namespace runtime {
class ThreadPool;
}  // namespace runtime

// All forward paths accept an optional runtime::ThreadPool. Parallel
// execution is bit-identical to serial: the batched kernels preserve the
// scalar accumulation order per output element, and positions/heads only
// read state that was fully written before the parallel region. A null
// pool (the default) is the exact pre-runtime serial code path.
class TransformerModel {
 public:
  explicit TransformerModel(ModelWeights weights);

  const ModelConfig& config() const { return weights_.config; }
  const ModelWeights& weights() const { return weights_; }

  /// Reference path: processes `tokens` from scratch with no cache and
  /// returns the next-token logits ([vocab]) at the last position.
  StatusOr<std::vector<float>> ForwardFull(
      const std::vector<int32_t>& tokens,
      runtime::ThreadPool* pool = nullptr) const;

  /// Processes the token at 0-based position `pos` for a request whose
  /// previous `pos` positions are already cached in `map`/`storage`, writes
  /// this position's cache entries, and returns the logits at `pos`.
  ///
  /// The map must already cover position `pos` (the hybrid cache assigner
  /// allocates blocks before the engine runs). Used for both prefill (loop
  /// over prompt positions) and decode (one position per iteration).
  Status CachedStep(int32_t token, int32_t pos, const CacheMap& map,
                    BlockStorage* storage, std::vector<float>* logits,
                    runtime::ThreadPool* pool = nullptr) const;

  /// Batched (chunked) prefill: processes positions [start_pos,
  /// tokens.size()) in one pass, assuming [0, start_pos) are already cached
  /// in `map`, writing each new position's cache entries, and returning the
  /// logits at the final position. Equivalent to looping CachedStep but
  /// amortizes the per-position cache gathering (one gather / hidden
  /// re-projection per layer instead of one per position) — the engine
  /// analogue of a fused prefill kernel, and the substrate for chunked
  /// prefill (Sarathi-style schedulers schedule start_pos > 0 chunks).
  Status PrefillCached(const std::vector<int32_t>& tokens, int32_t start_pos,
                       const CacheMap& map, BlockStorage* storage,
                       std::vector<float>* logits,
                       runtime::ThreadPool* pool = nullptr) const;

 private:
  /// Computes multi-head causal attention for the current position given
  /// contiguous K/V buffers covering positions [0, n_ctx). q has d_model
  /// floats; out receives d_model floats (pre-Wo). Optionally parallel over
  /// heads (each head owns a disjoint slice of `out`).
  void Attention(const float* q, const float* keys, const float* values,
                 int32_t n_ctx, float* out,
                 runtime::ThreadPool* pool = nullptr) const;

  void Activation(float* x, int32_t n) const;

  ModelWeights weights_;
};

}  // namespace aptserve
