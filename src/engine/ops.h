// Dense kernels for the mini transformer. All functions operate on raw fp32
// spans; shapes are passed explicitly and validated by callers. Matrices are
// row-major.
//
// Two kernel tiers live here:
//   * scalar reference kernels (MatVec, LayerNorm, ...) — the pinned
//     ground truth, single-threaded, naive loops;
//   * blocked/batched kernels (MatMat, MatVecBlocked, LayerNormBatch and
//     the fused passes) — cache-tiled over weight rows and optionally
//     parallel over an aptserve::runtime::ThreadPool. Every blocked kernel
//     accumulates each output element in exactly the scalar order, so its
//     results are bit-identical to the reference at any thread count
//     (pinned by tests/parallel_ops_test.cc).
#pragma once

#include <cstdint>

namespace aptserve {

namespace runtime {
class ThreadPool;
}  // namespace runtime

namespace ops {

/// y = W x, where W is [rows, cols] row-major and x has `cols` elements.
void MatVec(const float* w, const float* x, float* y, int32_t rows,
            int32_t cols);

/// y = W^T x, where W is [rows, cols] row-major and x has `rows` elements;
/// y gets `cols` elements. Used for the tied output projection (E^T h).
void MatVecTransposed(const float* w, const float* x, float* y, int32_t rows,
                      int32_t cols);

/// x += y elementwise.
void AddInPlace(float* x, const float* y, int32_t n);

/// x *= s elementwise.
void ScaleInPlace(float* x, float s, int32_t n);

float Dot(const float* a, const float* b, int32_t n);

/// In-place numerically-stable softmax over n elements.
void Softmax(float* x, int32_t n);

/// out = LayerNorm(x) * gain + bias, eps = 1e-5.
void LayerNorm(const float* x, const float* gain, const float* bias,
               float* out, int32_t n);

/// In-place tanh-approximation GELU.
void Gelu(float* x, int32_t n);

/// In-place ReLU (the paper's Eq. 4 uses a generic activation; OPT uses
/// ReLU).
void Relu(float* x, int32_t n);

/// Index of the maximum element (first on ties).
int32_t ArgMax(const float* x, int32_t n);

// ---- Blocked / batched kernels (parallel runtime tier) --------------------

/// Batched MatVec: Y = X W^T, i.e. y_b = W x_b for each of the `batch` rows
/// of X ([batch, cols] row-major); Y is [batch, rows]. Tiles of W rows are
/// streamed once and reused across the whole batch (cache blocking), and
/// the work is split over `pool` when given. Bit-identical to looping
/// MatVec over the batch.
void MatMat(const float* w, const float* x, float* y, int32_t batch,
            int32_t rows, int32_t cols, runtime::ThreadPool* pool = nullptr);

/// Row-blocked MatVec (batch-1 MatMat): same contract as MatVec, optionally
/// parallel over row tiles. Bit-identical to MatVec.
void MatVecBlocked(const float* w, const float* x, float* y, int32_t rows,
                   int32_t cols, runtime::ThreadPool* pool = nullptr);

/// Row-wise LayerNorm over a [batch, n] matrix: out_b = LayerNorm(x_b) *
/// gain + bias. Bit-identical to calling LayerNorm per row.
void LayerNormBatch(const float* x, const float* gain, const float* bias,
                    float* out, int32_t batch, int32_t n,
                    runtime::ThreadPool* pool = nullptr);

/// Fused LayerNorm + batched MatVec: y_b = W LayerNorm(x_b). The normalized
/// row never materializes outside a per-task scratch buffer. Bit-identical
/// to LayerNorm followed by MatVec per row.
void FusedLayerNormMatMat(const float* x, const float* gain,
                          const float* bias, const float* w, float* y,
                          int32_t batch, int32_t rows, int32_t cols,
                          runtime::ThreadPool* pool = nullptr);

/// Fused batched MatVec + activation: y_b = act(W x_b) with act = ReLU or
/// tanh-GELU, applied to each output tile while it is cache-hot.
/// Bit-identical to MatMat followed by Relu/Gelu.
void FusedMatMatAct(const float* w, const float* x, float* y, int32_t batch,
                    int32_t rows, int32_t cols, bool use_relu,
                    runtime::ThreadPool* pool = nullptr);

}  // namespace ops
}  // namespace aptserve
