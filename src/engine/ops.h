// Dense kernels for the mini transformer. All functions operate on raw fp32
// spans; shapes are passed explicitly and validated by callers. Matrices are
// row-major.
//
// Three kernel tiers live here:
//   * pinned scalar reference kernels (ops::scalar::*) — the ground truth,
//     single-threaded, naive loops, never vectorized (this translation unit
//     is built without vector flags, so compiler FP contraction cannot
//     change them);
//   * dispatched entry points (ops::MatVec, ops::LayerNorm, ...) — route to
//     the SIMD backend (engine/ops_simd.h: AVX2+FMA on x86, NEON on
//     aarch64) when the build carries one, else to the scalar reference.
//     Elementwise kernels are bit-identical to the reference either way;
//     reduction kernels (Dot, LayerNorm) agree to bounded ulp when the
//     vector path is active (reduction order differs) and are still a pure
//     function of their inputs — bit-identical across thread counts and
//     run-to-run. ops::ActiveIsa() reports which path runs so benches can
//     stamp it;
//   * blocked/batched kernels (MatMat, MatVecBlocked, LayerNormBatch and
//     the fused passes) — cache-tiled over weight rows and optionally
//     parallel over an aptserve::runtime::ThreadPool. Every blocked kernel
//     accumulates each output element through the same dispatched Dot /
//     LayerNorm primitives as the unblocked entry points, so its results
//     are bit-identical to them at any thread count (pinned by
//     tests/parallel_ops_test.cc) on both ISA legs.
#pragma once

#include <cstdint>

namespace aptserve {

namespace runtime {
class ThreadPool;
}  // namespace runtime

namespace ops {

/// Vector backend the dispatched kernels actually use at runtime:
/// "avx2+fma", "neon", or "scalar". Benches stamp this into snapshots.
const char* ActiveIsa();

/// SIMD lanes (in floats) of the active backend: 8 (AVX2), 4 (NEON), or 1.
int32_t VectorWidthFloats();

/// y = W x, where W is [rows, cols] row-major and x has `cols` elements.
void MatVec(const float* w, const float* x, float* y, int32_t rows,
            int32_t cols);

/// y = W^T x, where W is [rows, cols] row-major and x has `rows` elements;
/// y gets `cols` elements. Used for the tied output projection (E^T h).
void MatVecTransposed(const float* w, const float* x, float* y, int32_t rows,
                      int32_t cols);

/// x += y elementwise.
void AddInPlace(float* x, const float* y, int32_t n);

/// x *= s elementwise.
void ScaleInPlace(float* x, float s, int32_t n);

float Dot(const float* a, const float* b, int32_t n);

/// In-place numerically-stable softmax over n elements.
void Softmax(float* x, int32_t n);

/// out = LayerNorm(x) * gain + bias, eps = 1e-5.
void LayerNorm(const float* x, const float* gain, const float* bias,
               float* out, int32_t n);

/// In-place tanh-approximation GELU.
void Gelu(float* x, int32_t n);

/// In-place ReLU (the paper's Eq. 4 uses a generic activation; OPT uses
/// ReLU).
void Relu(float* x, int32_t n);

/// Index of the maximum element (first on ties).
int32_t ArgMax(const float* x, int32_t n);

// ---- Pinned scalar reference kernels --------------------------------------
//
// The golden tier: naive single-threaded loops, identical to the pre-SIMD
// kernels. SIMD agreement tests (tests/simd_ops_test.cc) compare the
// dispatched entry points against these — exact where the dispatched kernel
// preserves the scalar accumulation order, bounded-ulp where a vector
// reduction reorders it.
namespace scalar {

void MatVec(const float* w, const float* x, float* y, int32_t rows,
            int32_t cols);
void MatVecTransposed(const float* w, const float* x, float* y, int32_t rows,
                      int32_t cols);
void AddInPlace(float* x, const float* y, int32_t n);
void ScaleInPlace(float* x, float s, int32_t n);
float Dot(const float* a, const float* b, int32_t n);
void Softmax(float* x, int32_t n);
void LayerNorm(const float* x, const float* gain, const float* bias,
               float* out, int32_t n);
void Gelu(float* x, int32_t n);
void Relu(float* x, int32_t n);
int32_t ArgMax(const float* x, int32_t n);

}  // namespace scalar

// ---- Blocked / batched kernels (parallel runtime tier) --------------------

/// Batched MatVec: Y = X W^T, i.e. y_b = W x_b for each of the `batch` rows
/// of X ([batch, cols] row-major); Y is [batch, rows]. Tiles of W rows are
/// streamed once and reused across the whole batch (cache blocking), and
/// the work is split over `pool` when given. Bit-identical to looping
/// MatVec over the batch.
void MatMat(const float* w, const float* x, float* y, int32_t batch,
            int32_t rows, int32_t cols, runtime::ThreadPool* pool = nullptr);

/// Row-blocked MatVec (batch-1 MatMat): same contract as MatVec, optionally
/// parallel over row tiles. Bit-identical to MatVec.
void MatVecBlocked(const float* w, const float* x, float* y, int32_t rows,
                   int32_t cols, runtime::ThreadPool* pool = nullptr);

/// Row-wise LayerNorm over a [batch, n] matrix: out_b = LayerNorm(x_b) *
/// gain + bias. Bit-identical to calling LayerNorm per row.
void LayerNormBatch(const float* x, const float* gain, const float* bias,
                    float* out, int32_t batch, int32_t n,
                    runtime::ThreadPool* pool = nullptr);

/// Fused LayerNorm + batched MatVec: y_b = W LayerNorm(x_b). The normalized
/// row never materializes outside a per-task scratch buffer. Bit-identical
/// to LayerNorm followed by MatVec per row.
void FusedLayerNormMatMat(const float* x, const float* gain,
                          const float* bias, const float* w, float* y,
                          int32_t batch, int32_t rows, int32_t cols,
                          runtime::ThreadPool* pool = nullptr);

/// Fused batched MatVec + activation: y_b = act(W x_b) with act = ReLU or
/// tanh-GELU, applied to each output tile while it is cache-hot.
/// Bit-identical to MatMat followed by Relu/Gelu.
void FusedMatMatAct(const float* w, const float* x, float* y, int32_t batch,
                    int32_t rows, int32_t cols, bool use_relu,
                    runtime::ThreadPool* pool = nullptr);

}  // namespace ops
}  // namespace aptserve
