// Dense kernels for the mini transformer. All functions operate on raw fp32
// spans; shapes are passed explicitly and validated by callers. Matrices are
// row-major.
#pragma once

#include <cstdint>

namespace aptserve {
namespace ops {

/// y = W x, where W is [rows, cols] row-major and x has `cols` elements.
void MatVec(const float* w, const float* x, float* y, int32_t rows,
            int32_t cols);

/// y = W^T x, where W is [rows, cols] row-major and x has `rows` elements;
/// y gets `cols` elements. Used for the tied output projection (E^T h).
void MatVecTransposed(const float* w, const float* x, float* y, int32_t rows,
                      int32_t cols);

/// x += y elementwise.
void AddInPlace(float* x, const float* y, int32_t n);

/// x *= s elementwise.
void ScaleInPlace(float* x, float s, int32_t n);

float Dot(const float* a, const float* b, int32_t n);

/// In-place numerically-stable softmax over n elements.
void Softmax(float* x, int32_t n);

/// out = LayerNorm(x) * gain + bias, eps = 1e-5.
void LayerNorm(const float* x, const float* gain, const float* bias,
               float* out, int32_t n);

/// In-place tanh-approximation GELU.
void Gelu(float* x, int32_t n);

/// In-place ReLU (the paper's Eq. 4 uses a generic activation; OPT uses
/// ReLU).
void Relu(float* x, int32_t n);

/// Index of the maximum element (first on ties).
int32_t ArgMax(const float* x, int32_t n);

}  // namespace ops
}  // namespace aptserve
