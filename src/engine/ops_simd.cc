// SIMD primitives (see ops_simd.h for the dispatch and determinism
// contract). This file is the only translation unit built with the vector
// ISA flags; the #if ladder picks exactly one backend:
//   * AVX2+FMA (x86): 8-lane vectors, fused multiply-add in reductions;
//   * NEON (aarch64): 4-lane vectors, vfmaq in reductions;
//   * scalar stubs otherwise (Available() == false; ops.cc then routes
//     every call to the pinned scalar reference kernels).
#include "engine/ops_simd.h"

#include <algorithm>
#include <cmath>

#if !defined(APT_FORCE_SCALAR) && defined(__AVX2__) && defined(__FMA__)
#define APTSERVE_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(APT_FORCE_SCALAR) && defined(__aarch64__) && \
    defined(__ARM_NEON)
#define APTSERVE_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace aptserve {
namespace ops {
namespace simd {

#if defined(APTSERVE_SIMD_AVX2)

bool Available() { return true; }
const char* IsaName() { return "avx2+fma"; }
int32_t WidthFloats() { return 8; }

namespace {

/// Fixed horizontal-sum sequence: (lo+hi) 4-lane, then pairwise. The order
/// is part of the determinism contract — never data-dependent.
inline float HSum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

}  // namespace

float Dot(const float* a, const float* b, int32_t n) {
  // 4 independent accumulators (32 floats/iteration) for FMA-latency ILP,
  // combined in a fixed tree, then an 8-wide tail, then a scalar tail.
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
  int32_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                           _mm256_loadu_ps(b + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                           _mm256_loadu_ps(b + i + 24), acc3);
  }
  __m256 acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1),
                             _mm256_add_ps(acc2, acc3));
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                          acc);
  }
  float sum = HSum(acc);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

void LayerNorm(const float* x, const float* gain, const float* bias,
               float* out, int32_t n) {
  constexpr float kEps = 1e-5f;
  // Mean.
  __m256 s0 = _mm256_setzero_ps(), s1 = _mm256_setzero_ps();
  int32_t i = 0;
  for (; i + 16 <= n; i += 16) {
    s0 = _mm256_add_ps(s0, _mm256_loadu_ps(x + i));
    s1 = _mm256_add_ps(s1, _mm256_loadu_ps(x + i + 8));
  }
  __m256 s = _mm256_add_ps(s0, s1);
  for (; i + 8 <= n; i += 8) s = _mm256_add_ps(s, _mm256_loadu_ps(x + i));
  float sum = HSum(s);
  for (; i < n; ++i) sum += x[i];
  const float mean = sum / static_cast<float>(n);

  // Variance.
  const __m256 vmean = _mm256_set1_ps(mean);
  __m256 v0 = _mm256_setzero_ps(), v1 = _mm256_setzero_ps();
  i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(x + i), vmean);
    const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(x + i + 8), vmean);
    v0 = _mm256_fmadd_ps(d0, d0, v0);
    v1 = _mm256_fmadd_ps(d1, d1, v1);
  }
  __m256 v = _mm256_add_ps(v0, v1);
  for (; i + 8 <= n; i += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(x + i), vmean);
    v = _mm256_fmadd_ps(d, d, v);
  }
  float var = HSum(v);
  for (; i < n; ++i) {
    const float d = x[i] - mean;
    var += d * d;
  }
  var /= static_cast<float>(n);
  const float inv = 1.0f / std::sqrt(var + kEps);

  // Normalize: out = (x - mean) * inv * gain + bias.
  const __m256 vinv = _mm256_set1_ps(inv);
  i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 t = _mm256_mul_ps(
        _mm256_sub_ps(_mm256_loadu_ps(x + i), vmean), vinv);
    _mm256_storeu_ps(
        out + i,
        _mm256_add_ps(_mm256_mul_ps(t, _mm256_loadu_ps(gain + i)),
                      _mm256_loadu_ps(bias + i)));
  }
  for (; i < n; ++i) out[i] = (x[i] - mean) * inv * gain[i] + bias[i];
}

void Axpy(const float* row, float xr, float* y, int32_t n) {
  // mul + add (not fmadd): each y[i] sees the same two roundings as the
  // scalar reference, so the kernel is bit-identical.
  const __m256 vx = _mm256_set1_ps(xr);
  int32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i,
                     _mm256_add_ps(_mm256_mul_ps(_mm256_loadu_ps(row + i), vx),
                                   _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] += row[i] * xr;
}

void AddInPlace(float* x, const float* y, int32_t n) {
  int32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        x + i, _mm256_add_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) x[i] += y[i];
}

void ScaleInPlace(float* x, float s, int32_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  int32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), vs));
  }
  for (; i < n; ++i) x[i] *= s;
}

void Relu(float* x, int32_t n) {
  const __m256 zero = _mm256_setzero_ps();
  int32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
  }
  for (; i < n; ++i) x[i] = std::max(0.0f, x[i]);
}

#elif defined(APTSERVE_SIMD_NEON)

bool Available() { return true; }
const char* IsaName() { return "neon"; }
int32_t WidthFloats() { return 4; }

float Dot(const float* a, const float* b, int32_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.0f), acc1 = vdupq_n_f32(0.0f);
  float32x4_t acc2 = vdupq_n_f32(0.0f), acc3 = vdupq_n_f32(0.0f);
  int32_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
    acc2 = vfmaq_f32(acc2, vld1q_f32(a + i + 8), vld1q_f32(b + i + 8));
    acc3 = vfmaq_f32(acc3, vld1q_f32(a + i + 12), vld1q_f32(b + i + 12));
  }
  float32x4_t acc = vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3));
  for (; i + 4 <= n; i += 4) {
    acc = vfmaq_f32(acc, vld1q_f32(a + i), vld1q_f32(b + i));
  }
  float sum = vaddvq_f32(acc);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

void LayerNorm(const float* x, const float* gain, const float* bias,
               float* out, int32_t n) {
  constexpr float kEps = 1e-5f;
  float32x4_t s = vdupq_n_f32(0.0f);
  int32_t i = 0;
  for (; i + 4 <= n; i += 4) s = vaddq_f32(s, vld1q_f32(x + i));
  float sum = vaddvq_f32(s);
  for (; i < n; ++i) sum += x[i];
  const float mean = sum / static_cast<float>(n);

  const float32x4_t vmean = vdupq_n_f32(mean);
  float32x4_t v = vdupq_n_f32(0.0f);
  i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t d = vsubq_f32(vld1q_f32(x + i), vmean);
    v = vfmaq_f32(v, d, d);
  }
  float var = vaddvq_f32(v);
  for (; i < n; ++i) {
    const float d = x[i] - mean;
    var += d * d;
  }
  var /= static_cast<float>(n);
  const float inv = 1.0f / std::sqrt(var + kEps);

  const float32x4_t vinv = vdupq_n_f32(inv);
  i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t t =
        vmulq_f32(vsubq_f32(vld1q_f32(x + i), vmean), vinv);
    vst1q_f32(out + i,
              vaddq_f32(vmulq_f32(t, vld1q_f32(gain + i)),
                        vld1q_f32(bias + i)));
  }
  for (; i < n; ++i) out[i] = (x[i] - mean) * inv * gain[i] + bias[i];
}

void Axpy(const float* row, float xr, float* y, int32_t n) {
  const float32x4_t vx = vdupq_n_f32(xr);
  int32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i,
              vaddq_f32(vmulq_f32(vld1q_f32(row + i), vx), vld1q_f32(y + i)));
  }
  for (; i < n; ++i) y[i] += row[i] * xr;
}

void AddInPlace(float* x, const float* y, int32_t n) {
  int32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(x + i, vaddq_f32(vld1q_f32(x + i), vld1q_f32(y + i)));
  }
  for (; i < n; ++i) x[i] += y[i];
}

void ScaleInPlace(float* x, float s, int32_t n) {
  const float32x4_t vs = vdupq_n_f32(s);
  int32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(x + i, vmulq_f32(vld1q_f32(x + i), vs));
  }
  for (; i < n; ++i) x[i] *= s;
}

void Relu(float* x, int32_t n) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  int32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(x + i, vmaxq_f32(vld1q_f32(x + i), zero));
  }
  for (; i < n; ++i) x[i] = std::max(0.0f, x[i]);
}

#else  // scalar stubs: ops.cc routes everything to the reference kernels.

bool Available() { return false; }
const char* IsaName() { return "scalar"; }
int32_t WidthFloats() { return 1; }

float Dot(const float*, const float*, int32_t) { return 0.0f; }
void LayerNorm(const float*, const float*, const float*, float*, int32_t) {}
void Axpy(const float*, float, float*, int32_t) {}
void AddInPlace(float*, const float*, int32_t) {}
void ScaleInPlace(float*, float, int32_t) {}
void Relu(float*, int32_t) {}

#endif

}  // namespace simd
}  // namespace ops
}  // namespace aptserve
