// SIMD primitives (see ops_simd.h for the dispatch and determinism
// contract). This file is the only translation unit built with the vector
// ISA flags; the #if ladder picks exactly one backend:
//   * AVX2+FMA (x86): 8-lane vectors, fused multiply-add in reductions;
//   * NEON (aarch64): 4-lane vectors, vfmaq in reductions;
//   * scalar stubs otherwise (Available() == false; ops.cc then routes
//     every call to the pinned scalar reference kernels).
#include "engine/ops_simd.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#if !defined(APT_FORCE_SCALAR) && defined(__AVX2__) && defined(__FMA__)
#define APTSERVE_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(APT_FORCE_SCALAR) && defined(__aarch64__) && \
    defined(__ARM_NEON)
#define APTSERVE_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace aptserve {
namespace ops {
namespace simd {

#if defined(APTSERVE_SIMD_AVX2) || defined(APTSERVE_SIMD_NEON)

namespace {

// Cephes-style single-precision exp: clamp, split x = n*ln2 + r with the
// hi/lo ln2 pair, degree-6 polynomial on r, scale by 2^n through the
// exponent bits. ~2 ulp over the clamped range. The clamp keeps
// n + 127 inside [1, 254] so the bit-built 2^n is always a normal float
// (no inf, no denormal-exponent underflow).
constexpr float kExpLo = -87.33654f;
constexpr float kExpHi = 88.0f;
constexpr float kLog2e = 1.44269504088896341f;
constexpr float kLn2Hi = 0.693359375f;
constexpr float kLn2Lo = -2.12194440e-4f;
constexpr float kExpC0 = 1.9875691500e-4f;
constexpr float kExpC1 = 1.3981999507e-3f;
constexpr float kExpC2 = 8.3334519073e-3f;
constexpr float kExpC3 = 4.1665795894e-2f;
constexpr float kExpC4 = 1.6666665459e-1f;
constexpr float kExpC5 = 5.0000001201e-1f;

/// One exp lane in scalar code, operation-for-operation the vector kernel
/// (fmaf is the single-rounding FMA the vector uses), so tail elements get
/// bit-identical results to vector-lane elements. That offset invariance
/// is what lets tiled callers apply Gelu per sub-range and still match the
/// full-range dispatch exactly.
inline float ExpLane(float x) {
  x = std::min(std::max(x, kExpLo), kExpHi);
  const float n = std::nearbyintf(x * kLog2e);
  float r = std::fmaf(n, -kLn2Hi, x);
  r = std::fmaf(n, -kLn2Lo, r);
  float p = kExpC0;
  p = std::fmaf(p, r, kExpC1);
  p = std::fmaf(p, r, kExpC2);
  p = std::fmaf(p, r, kExpC3);
  p = std::fmaf(p, r, kExpC4);
  p = std::fmaf(p, r, kExpC5);
  p = std::fmaf(p, r * r, r + 1.0f);
  const uint32_t bits = static_cast<uint32_t>(static_cast<int32_t>(n) + 127)
                        << 23;
  float scale;
  std::memcpy(&scale, &bits, sizeof(scale));
  return p * scale;
}

/// tanh(z) = (e - 1) / (e + 1) with e = exp(2z); the exp clamp saturates
/// the ratio to ±1 for large |z|. Scalar replica of the vector kernel.
inline float TanhLane(float z) {
  const float e = ExpLane(z + z);
  return (e - 1.0f) / (e + 1.0f);
}

constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluA = 0.044715f;

/// One GELU lane, mirroring the vector arithmetic exactly (same rounding
/// sequence: v*v, kA*v2, fma, scale by kC; then 0.5*v times 1+tanh).
inline float GeluLane(float v) {
  const float inner = kGeluC * std::fmaf(kGeluA * (v * v), v, v);
  return (0.5f * v) * (1.0f + TanhLane(inner));
}

}  // namespace

#endif  // vector leg shared helpers

#if defined(APTSERVE_SIMD_AVX2)

bool Available() { return true; }
const char* IsaName() { return "avx2+fma"; }
int32_t WidthFloats() { return 8; }

namespace {

/// Fixed horizontal-sum sequence: (lo+hi) 4-lane, then pairwise. The order
/// is part of the determinism contract — never data-dependent.
inline float HSum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

}  // namespace

float Dot(const float* a, const float* b, int32_t n) {
  // 4 independent accumulators (32 floats/iteration) for FMA-latency ILP,
  // combined in a fixed tree, then an 8-wide tail, then a scalar tail.
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
  int32_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                           _mm256_loadu_ps(b + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                           _mm256_loadu_ps(b + i + 24), acc3);
  }
  __m256 acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1),
                             _mm256_add_ps(acc2, acc3));
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                          acc);
  }
  float sum = HSum(acc);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

void LayerNorm(const float* x, const float* gain, const float* bias,
               float* out, int32_t n) {
  constexpr float kEps = 1e-5f;
  // Mean.
  __m256 s0 = _mm256_setzero_ps(), s1 = _mm256_setzero_ps();
  int32_t i = 0;
  for (; i + 16 <= n; i += 16) {
    s0 = _mm256_add_ps(s0, _mm256_loadu_ps(x + i));
    s1 = _mm256_add_ps(s1, _mm256_loadu_ps(x + i + 8));
  }
  __m256 s = _mm256_add_ps(s0, s1);
  for (; i + 8 <= n; i += 8) s = _mm256_add_ps(s, _mm256_loadu_ps(x + i));
  float sum = HSum(s);
  for (; i < n; ++i) sum += x[i];
  const float mean = sum / static_cast<float>(n);

  // Variance.
  const __m256 vmean = _mm256_set1_ps(mean);
  __m256 v0 = _mm256_setzero_ps(), v1 = _mm256_setzero_ps();
  i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(x + i), vmean);
    const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(x + i + 8), vmean);
    v0 = _mm256_fmadd_ps(d0, d0, v0);
    v1 = _mm256_fmadd_ps(d1, d1, v1);
  }
  __m256 v = _mm256_add_ps(v0, v1);
  for (; i + 8 <= n; i += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(x + i), vmean);
    v = _mm256_fmadd_ps(d, d, v);
  }
  float var = HSum(v);
  for (; i < n; ++i) {
    const float d = x[i] - mean;
    var += d * d;
  }
  var /= static_cast<float>(n);
  const float inv = 1.0f / std::sqrt(var + kEps);

  // Normalize: out = (x - mean) * inv * gain + bias.
  const __m256 vinv = _mm256_set1_ps(inv);
  i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 t = _mm256_mul_ps(
        _mm256_sub_ps(_mm256_loadu_ps(x + i), vmean), vinv);
    _mm256_storeu_ps(
        out + i,
        _mm256_add_ps(_mm256_mul_ps(t, _mm256_loadu_ps(gain + i)),
                      _mm256_loadu_ps(bias + i)));
  }
  for (; i < n; ++i) out[i] = (x[i] - mean) * inv * gain[i] + bias[i];
}

void Axpy(const float* row, float xr, float* y, int32_t n) {
  // mul + add (not fmadd): each y[i] sees the same two roundings as the
  // scalar reference, so the kernel is bit-identical.
  const __m256 vx = _mm256_set1_ps(xr);
  int32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i,
                     _mm256_add_ps(_mm256_mul_ps(_mm256_loadu_ps(row + i), vx),
                                   _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] += row[i] * xr;
}

void AddInPlace(float* x, const float* y, int32_t n) {
  int32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        x + i, _mm256_add_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) x[i] += y[i];
}

void ScaleInPlace(float* x, float s, int32_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  int32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), vs));
  }
  for (; i < n; ++i) x[i] *= s;
}

void Relu(float* x, int32_t n) {
  const __m256 zero = _mm256_setzero_ps();
  int32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
  }
  for (; i < n; ++i) x[i] = std::max(0.0f, x[i]);
}

namespace {

/// 8-lane exp; per-lane identical to ExpLane (same FMA/rounding sequence).
inline __m256 Exp8(__m256 x) {
  x = _mm256_min_ps(_mm256_max_ps(x, _mm256_set1_ps(kExpLo)),
                    _mm256_set1_ps(kExpHi));
  const __m256 n = _mm256_round_ps(
      _mm256_mul_ps(x, _mm256_set1_ps(kLog2e)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256 r = _mm256_fnmadd_ps(n, _mm256_set1_ps(kLn2Hi), x);
  r = _mm256_fnmadd_ps(n, _mm256_set1_ps(kLn2Lo), r);
  __m256 p = _mm256_set1_ps(kExpC0);
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpC1));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpC2));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpC3));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpC4));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpC5));
  p = _mm256_fmadd_ps(p, _mm256_mul_ps(r, r),
                      _mm256_add_ps(r, _mm256_set1_ps(1.0f)));
  __m256i ni = _mm256_cvtps_epi32(n);
  ni = _mm256_slli_epi32(_mm256_add_epi32(ni, _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(p, _mm256_castsi256_ps(ni));
}

inline __m256 Tanh8(__m256 z) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 e = Exp8(_mm256_add_ps(z, z));
  return _mm256_div_ps(_mm256_sub_ps(e, one), _mm256_add_ps(e, one));
}

/// Fixed horizontal-max sequence (max is exact in any order; the fixed
/// shuffle order just keeps the codepath deterministic).
inline float HMax(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 m = _mm_max_ps(lo, hi);
  m = _mm_max_ps(m, _mm_movehl_ps(m, m));
  m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
  return _mm_cvtss_f32(m);
}

}  // namespace

void Softmax(float* x, int32_t n) {
  if (n <= 0) return;
  __m256 vmax = _mm256_set1_ps(x[0]);
  int32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(x + i));
  }
  float mx = HMax(vmax);
  for (; i < n; ++i) mx = std::max(mx, x[i]);

  const __m256 vmx = _mm256_set1_ps(mx);
  __m256 vsum = _mm256_setzero_ps();
  i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 e = Exp8(_mm256_sub_ps(_mm256_loadu_ps(x + i), vmx));
    _mm256_storeu_ps(x + i, e);
    vsum = _mm256_add_ps(vsum, e);
  }
  float sum = HSum(vsum);
  for (; i < n; ++i) {
    x[i] = ExpLane(x[i] - mx);
    sum += x[i];
  }
  ScaleInPlace(x, 1.0f / sum, n);
}

void Gelu(float* x, int32_t n) {
  const __m256 vc = _mm256_set1_ps(kGeluC);
  const __m256 va = _mm256_set1_ps(kGeluA);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 one = _mm256_set1_ps(1.0f);
  int32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 inner = _mm256_mul_ps(
        vc, _mm256_fmadd_ps(_mm256_mul_ps(va, _mm256_mul_ps(v, v)), v, v));
    const __m256 t = Tanh8(inner);
    _mm256_storeu_ps(
        x + i, _mm256_mul_ps(_mm256_mul_ps(half, v), _mm256_add_ps(one, t)));
  }
  for (; i < n; ++i) x[i] = GeluLane(x[i]);
}

#elif defined(APTSERVE_SIMD_NEON)

bool Available() { return true; }
const char* IsaName() { return "neon"; }
int32_t WidthFloats() { return 4; }

float Dot(const float* a, const float* b, int32_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.0f), acc1 = vdupq_n_f32(0.0f);
  float32x4_t acc2 = vdupq_n_f32(0.0f), acc3 = vdupq_n_f32(0.0f);
  int32_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
    acc2 = vfmaq_f32(acc2, vld1q_f32(a + i + 8), vld1q_f32(b + i + 8));
    acc3 = vfmaq_f32(acc3, vld1q_f32(a + i + 12), vld1q_f32(b + i + 12));
  }
  float32x4_t acc = vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3));
  for (; i + 4 <= n; i += 4) {
    acc = vfmaq_f32(acc, vld1q_f32(a + i), vld1q_f32(b + i));
  }
  float sum = vaddvq_f32(acc);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

void LayerNorm(const float* x, const float* gain, const float* bias,
               float* out, int32_t n) {
  constexpr float kEps = 1e-5f;
  float32x4_t s = vdupq_n_f32(0.0f);
  int32_t i = 0;
  for (; i + 4 <= n; i += 4) s = vaddq_f32(s, vld1q_f32(x + i));
  float sum = vaddvq_f32(s);
  for (; i < n; ++i) sum += x[i];
  const float mean = sum / static_cast<float>(n);

  const float32x4_t vmean = vdupq_n_f32(mean);
  float32x4_t v = vdupq_n_f32(0.0f);
  i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t d = vsubq_f32(vld1q_f32(x + i), vmean);
    v = vfmaq_f32(v, d, d);
  }
  float var = vaddvq_f32(v);
  for (; i < n; ++i) {
    const float d = x[i] - mean;
    var += d * d;
  }
  var /= static_cast<float>(n);
  const float inv = 1.0f / std::sqrt(var + kEps);

  const float32x4_t vinv = vdupq_n_f32(inv);
  i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t t =
        vmulq_f32(vsubq_f32(vld1q_f32(x + i), vmean), vinv);
    vst1q_f32(out + i,
              vaddq_f32(vmulq_f32(t, vld1q_f32(gain + i)),
                        vld1q_f32(bias + i)));
  }
  for (; i < n; ++i) out[i] = (x[i] - mean) * inv * gain[i] + bias[i];
}

void Axpy(const float* row, float xr, float* y, int32_t n) {
  const float32x4_t vx = vdupq_n_f32(xr);
  int32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i,
              vaddq_f32(vmulq_f32(vld1q_f32(row + i), vx), vld1q_f32(y + i)));
  }
  for (; i < n; ++i) y[i] += row[i] * xr;
}

void AddInPlace(float* x, const float* y, int32_t n) {
  int32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(x + i, vaddq_f32(vld1q_f32(x + i), vld1q_f32(y + i)));
  }
  for (; i < n; ++i) x[i] += y[i];
}

void ScaleInPlace(float* x, float s, int32_t n) {
  const float32x4_t vs = vdupq_n_f32(s);
  int32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(x + i, vmulq_f32(vld1q_f32(x + i), vs));
  }
  for (; i < n; ++i) x[i] *= s;
}

void Relu(float* x, int32_t n) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  int32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(x + i, vmaxq_f32(vld1q_f32(x + i), zero));
  }
  for (; i < n; ++i) x[i] = std::max(0.0f, x[i]);
}

namespace {

/// 4-lane exp; per-lane identical to ExpLane (vfmaq/vfmsq are the same
/// single-rounding FMA as fmaf, vrndnq is round-to-nearest-even).
inline float32x4_t Exp4(float32x4_t x) {
  x = vminq_f32(vmaxq_f32(x, vdupq_n_f32(kExpLo)), vdupq_n_f32(kExpHi));
  const float32x4_t n = vrndnq_f32(vmulq_f32(x, vdupq_n_f32(kLog2e)));
  float32x4_t r = vfmsq_f32(x, n, vdupq_n_f32(kLn2Hi));
  r = vfmsq_f32(r, n, vdupq_n_f32(kLn2Lo));
  float32x4_t p = vdupq_n_f32(kExpC0);
  p = vfmaq_f32(vdupq_n_f32(kExpC1), p, r);
  p = vfmaq_f32(vdupq_n_f32(kExpC2), p, r);
  p = vfmaq_f32(vdupq_n_f32(kExpC3), p, r);
  p = vfmaq_f32(vdupq_n_f32(kExpC4), p, r);
  p = vfmaq_f32(vdupq_n_f32(kExpC5), p, r);
  p = vfmaq_f32(vaddq_f32(r, vdupq_n_f32(1.0f)), p, vmulq_f32(r, r));
  int32x4_t ni = vcvtq_s32_f32(n);  // n is integral after vrndnq
  ni = vshlq_n_s32(vaddq_s32(ni, vdupq_n_s32(127)), 23);
  return vmulq_f32(p, vreinterpretq_f32_s32(ni));
}

inline float32x4_t Tanh4(float32x4_t z) {
  const float32x4_t one = vdupq_n_f32(1.0f);
  const float32x4_t e = Exp4(vaddq_f32(z, z));
  return vdivq_f32(vsubq_f32(e, one), vaddq_f32(e, one));
}

}  // namespace

void Softmax(float* x, int32_t n) {
  if (n <= 0) return;
  float32x4_t vmax = vdupq_n_f32(x[0]);
  int32_t i = 0;
  for (; i + 4 <= n; i += 4) vmax = vmaxq_f32(vmax, vld1q_f32(x + i));
  float mx = vmaxvq_f32(vmax);
  for (; i < n; ++i) mx = std::max(mx, x[i]);

  const float32x4_t vmx = vdupq_n_f32(mx);
  float32x4_t vsum = vdupq_n_f32(0.0f);
  i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t e = Exp4(vsubq_f32(vld1q_f32(x + i), vmx));
    vst1q_f32(x + i, e);
    vsum = vaddq_f32(vsum, e);
  }
  float sum = vaddvq_f32(vsum);
  for (; i < n; ++i) {
    x[i] = ExpLane(x[i] - mx);
    sum += x[i];
  }
  ScaleInPlace(x, 1.0f / sum, n);
}

void Gelu(float* x, int32_t n) {
  const float32x4_t vc = vdupq_n_f32(kGeluC);
  const float32x4_t va = vdupq_n_f32(kGeluA);
  const float32x4_t half = vdupq_n_f32(0.5f);
  const float32x4_t one = vdupq_n_f32(1.0f);
  int32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t v = vld1q_f32(x + i);
    const float32x4_t inner =
        vmulq_f32(vc, vfmaq_f32(v, vmulq_f32(va, vmulq_f32(v, v)), v));
    const float32x4_t t = Tanh4(inner);
    vst1q_f32(x + i, vmulq_f32(vmulq_f32(half, v), vaddq_f32(one, t)));
  }
  for (; i < n; ++i) x[i] = GeluLane(x[i]);
}

#else  // scalar stubs: ops.cc routes everything to the reference kernels.

bool Available() { return false; }
const char* IsaName() { return "scalar"; }
int32_t WidthFloats() { return 1; }

float Dot(const float*, const float*, int32_t) { return 0.0f; }
void LayerNorm(const float*, const float*, const float*, float*, int32_t) {}
void Axpy(const float*, float, float*, int32_t) {}
void AddInPlace(float*, const float*, int32_t) {}
void ScaleInPlace(float*, float, int32_t) {}
void Relu(float*, int32_t) {}
void Softmax(float*, int32_t) {}
void Gelu(float*, int32_t) {}

#endif

}  // namespace simd
}  // namespace ops
}  // namespace aptserve
