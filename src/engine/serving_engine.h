// ServingEngine: end-to-end serving on the *real* mini transformer. Where
// the Simulator advances a virtual clock with an analytic cost model, this
// drives the actual InferenceEngine — real prefills, real decode steps,
// real hybrid-cache memory — under any Scheduler, timing each iteration
// with the wall clock and scoring TTFT/TBT SLO attainment against trace
// arrival times on the resulting virtual timeline.
//
// This closes the loop of the paper's Figure 5 at laptop scale: the
// scheduler's rho comes from a real calibration pass (Eq. 6) rather than an
// analytic estimate, cache-type decisions move real float blocks, and
// preemptions recompute real prefills.
//
// Caveat (documented in DESIGN.md): a CPU executes batch items serially, so
// absolute latencies are not GPU-like; the iteration-level batching
// semantics, memory behaviour and scheduler decision points are identical.
#pragma once

#include <vector>

#include "engine/inference_engine.h"
#include "engine/rho_calibrator.h"
#include "sim/metrics.h"
#include "sim/scheduler.h"
#include "workload/request.h"

namespace aptserve {

struct ServingEngineConfig {
  ModelConfig model = ModelConfig::Tiny();
  uint64_t weight_seed = 42;
  uint64_t prompt_seed = 7;
  int32_t num_blocks = 256;
  int32_t block_size = 8;
  SloSpec slo{1.0, 1.0};
  SamplingParams sampling;  ///< greedy by default (deterministic output).
  /// Calibrate rho on the engine before serving (the paper's ~30 s offline
  /// pass); when false an analytic fallback is used.
  bool calibrate_rho = true;
  int64_t max_iterations = 2'000'000;
};

struct ServingEngineResult {
  SloReport report;
  /// Total measured compute seconds (the virtual timeline's length).
  double compute_seconds = 0.0;
  int64_t tokens_generated = 0;
  double rho_seconds_per_token = 0.0;
  int64_t preemptions = 0;
};

class ServingEngine {
 public:
  explicit ServingEngine(const ServingEngineConfig& config);

  /// Serves `trace` to completion under `scheduler`. Request prompts are
  /// synthesized (seeded) with the trace's prompt lengths; a request
  /// finishes after `output_len` generated tokens. Every request must
  /// satisfy total_len + 1 <= model.max_seq_len.
  StatusOr<ServingEngineResult> Serve(const std::vector<Request>& trace,
                                      Scheduler* scheduler);

  InferenceEngine& engine() { return engine_; }

 private:
  ServingEngineConfig config_;
  InferenceEngine engine_;
};

}  // namespace aptserve
