// ServingEngine: end-to-end serving on the *real* mini transformer. A thin
// facade over the shared ServingLoop (serve/serving_loop.h) running on an
// InferenceBackend: where the Simulator advances a virtual clock with an
// analytic cost model, this drives the actual InferenceEngine — real
// prefills, real decode steps, real hybrid-cache memory — under any
// Scheduler, timing each iteration with the wall clock and scoring
// TTFT/TBT SLO attainment against trace arrival times on the resulting
// virtual timeline.
//
// This closes the loop of the paper's Figure 5 at laptop scale: the
// scheduler's rho comes from a real calibration pass (Eq. 6) rather than an
// analytic estimate, cache-type decisions move real float blocks, and
// preemptions recompute real prefills (or swap real payload bytes through
// host memory under PreemptionMode::kSwap).
//
// Caveat (documented in DESIGN.md): a CPU executes batch items serially, so
// absolute latencies are not GPU-like; the iteration-level batching
// semantics, memory behaviour and scheduler decision points are identical.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "engine/inference_engine.h"
#include "engine/rho_calibrator.h"
#include "serve/serving_loop.h"
#include "sim/metrics.h"
#include "sim/scheduler.h"
#include "workload/request.h"

namespace aptserve {

struct ServingEngineConfig {
  ModelConfig model = ModelConfig::Tiny();
  uint64_t weight_seed = 42;
  uint64_t prompt_seed = 7;
  int32_t num_blocks = 256;
  int32_t block_size = 8;
  /// Parallel runtime for kernels and batch execution. The default is
  /// serial (effective num_threads = 1 unless APTSERVE_NUM_THREADS is
  /// set). Given a fixed rho (calibrate_rho = false), token streams and
  /// virtual-timing reports stay bit-identical across thread counts —
  /// only wall-clock latency changes. With calibrate_rho = true the rho
  /// fed to the scheduler is wall-clock-measured (on an engine with this
  /// same runtime), so scheduling decisions can differ run to run exactly
  /// as they always did under measured timing.
  RuntimeConfig runtime;
  SloSpec slo{1.0, 1.0};
  SamplingParams sampling;  ///< greedy by default (deterministic output).
  /// Calibrate rho on the engine before serving (the paper's ~30 s offline
  /// pass); when false an analytic fallback is used.
  bool calibrate_rho = true;
  int64_t max_iterations = 2'000'000;
  /// Hard cap on scheduled items per iteration (unbounded by default: a
  /// serial CPU backend gains nothing from capping the batch).
  int32_t max_batch_size = INT32_MAX;
  /// How preempted requests' caches are evicted. kSwap moves the real
  /// payload through the engine's host staging buffer, with the same
  /// full-swap-space and type-conversion fallbacks as the simulator.
  PreemptionMode preemption_mode = PreemptionMode::kRecompute;
  /// Host swap capacity in blocks; <= 0 defaults to 4x the GPU pool.
  int32_t swap_blocks = -1;
  /// Deterministic virtual timing: iteration latency becomes a fixed cost
  /// per executed item instead of measured wall time, making the full
  /// timeline (TTFT/TBT, scheduler decisions) reproducible across runs.
  bool virtual_timing = false;
  double virtual_item_seconds = 1e-3;
  /// Prefix sharing on the engine: fresh KV prefills adopt cached blocks
  /// matched on prompt content and skip the matched compute. Tokens are
  /// bit-identical either way; only latency and memory change.
  bool enable_prefix_sharing = false;
};

struct ServingEngineResult {
  SloReport report;
  /// Total measured compute seconds (the virtual timeline's length).
  double compute_seconds = 0.0;
  int64_t tokens_generated = 0;
  double rho_seconds_per_token = 0.0;
  int64_t preemptions = 0;
  int64_t swap_outs = 0;
  int64_t swap_ins = 0;
  /// Prefill positions computed vs. adopted from the prefix index.
  int64_t prefill_tokens_computed = 0;
  int64_t prefill_tokens_skipped = 0;
  /// Prefix-sharing hit accounting (all zeros when sharing is off).
  PrefixStats prefix;
  /// Full token sequences (prompt + generated) of every finished request.
  std::unordered_map<RequestId, std::vector<int32_t>> tokens;
};

class ServingEngine {
 public:
  explicit ServingEngine(const ServingEngineConfig& config);

  /// Serves `trace` to completion under `scheduler`. Request prompts are
  /// synthesized (seeded) with the trace's prompt lengths; a request
  /// finishes after `output_len` generated tokens. Every request must
  /// satisfy total_len + 1 <= model.max_seq_len.
  StatusOr<ServingEngineResult> Serve(const std::vector<Request>& trace,
                                      Scheduler* scheduler);

  InferenceEngine& engine() { return engine_; }

 private:
  ServingEngineConfig config_;
  InferenceEngine engine_;
};

}  // namespace aptserve
