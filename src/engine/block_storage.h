// BlockStorage: the payload arena behind the unified block pool. Each block
// holds `block_size` token slots × `n_layers` × `dim` fp32 values, i.e. one
// cache component (K, V or hidden) for a span of token positions across all
// layers — exactly the block granularity of paper §4.3.
//
// Gather/Scatter are the CPU analogue of the paper's fused CUDA kernel for
// block-wise cache I/O: they stream fragmented blocks into contiguous
// buffers for attention (and back), hiding the physical fragmentation from
// the compute kernels.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache_map.h"
#include "cache/cache_types.h"
#include "common/logging.h"

namespace aptserve {

class BlockStorage {
 public:
  BlockStorage(int32_t num_blocks, int32_t block_size, int32_t n_layers,
               int32_t dim);

  int32_t dim() const { return dim_; }
  int32_t n_layers() const { return n_layers_; }
  int32_t block_size() const { return block_size_; }

  /// Mutable pointer to the `dim`-float vector at (block, layer, slot).
  float* Slot(BlockId block, int32_t layer, int32_t slot);
  const float* Slot(BlockId block, int32_t layer, int32_t slot) const;

  /// Writes `vec` (dim floats) as the cached vector for token position `pos`
  /// of `component` at `layer`, resolving the physical block via `map`.
  void WriteVector(const CacheMap& map, CacheComponent component,
                   int32_t layer, int32_t pos, const float* vec);

  /// Copies cached vectors for positions [0, n) of `component` at `layer`
  /// into `out` (n*dim floats, contiguous rows). Blocked gather.
  void Gather(const CacheMap& map, CacheComponent component, int32_t layer,
              int32_t n, float* out) const;

  /// Reads a single cached vector into `out` (dim floats).
  void ReadVector(const CacheMap& map, CacheComponent component, int32_t layer,
                  int32_t pos, float* out) const;

  /// Copies the first `slots` token slots of `src` into `dst` across every
  /// layer — the copy-on-write step of prefix sharing: a request adopting a
  /// partially matched tail block duplicates the shared payload into a
  /// private block before writing its own positions after it.
  void CopyBlockPrefix(BlockId src, BlockId dst, int32_t slots);

 private:
  int64_t Offset(BlockId block, int32_t layer, int32_t slot) const {
    APT_CHECK(block >= 0 && block < num_blocks_);
    APT_CHECK(layer >= 0 && layer < n_layers_);
    APT_CHECK(slot >= 0 && slot < block_size_);
    return ((static_cast<int64_t>(block) * n_layers_ + layer) * block_size_ +
            slot) *
           dim_;
  }

  int32_t num_blocks_;
  int32_t block_size_;
  int32_t n_layers_;
  int32_t dim_;
  std::vector<float> data_;
};

}  // namespace aptserve
