// BlockStorage: the payload arena behind the unified block pool. Each block
// holds `block_size` token slots × `n_layers` × `dim` fp32 values, i.e. one
// cache component (K, V or hidden) for a span of token positions across all
// layers — exactly the block granularity of paper §4.3.
//
// Gather/Scatter are the CPU analogue of the paper's fused CUDA kernel for
// block-wise cache I/O: they stream fragmented blocks into contiguous
// buffers for attention (and back), hiding the physical fragmentation from
// the compute kernels.
//
// Int8-encoded maps reinterpret the same arena bytes as uint8 codes: a
// block's `block_size * dim` floats hold `kInt8SlotPack * block_size` token
// slots of `dim` codes each, with a per-(block, layer, slot) scale/zero
// pair in lazily allocated side arrays (block-local metadata — freeing a
// block through the pool needs no bookkeeping here, exactly like the fp32
// payload). Reads dequantize into the caller's fp32 buffer, so transformer
// kernels never see the encoding.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache_map.h"
#include "cache/cache_types.h"
#include "cache/quantization.h"
#include "common/logging.h"

namespace aptserve {

class BlockStorage {
 public:
  BlockStorage(int32_t num_blocks, int32_t block_size, int32_t n_layers,
               int32_t dim);

  int32_t dim() const { return dim_; }
  int32_t n_layers() const { return n_layers_; }
  int32_t block_size() const { return block_size_; }

  /// Mutable pointer to the `dim`-float vector at (block, layer, slot).
  float* Slot(BlockId block, int32_t layer, int32_t slot);
  const float* Slot(BlockId block, int32_t layer, int32_t slot) const;

  /// Writes `vec` (dim floats) as the cached vector for token position `pos`
  /// of `component` at `layer`, resolving the physical block via `map`.
  /// Quantizes in place for int8-encoded maps.
  void WriteVector(const CacheMap& map, CacheComponent component,
                   int32_t layer, int32_t pos, const float* vec);

  /// Copies cached vectors for positions [0, n) of `component` at `layer`
  /// into `out` (n*dim floats, contiguous rows). Blocked gather; int8 maps
  /// dequantize per vector.
  void Gather(const CacheMap& map, CacheComponent component, int32_t layer,
              int32_t n, float* out) const;

  /// Reads a single cached vector into `out` (dim floats), dequantizing
  /// for int8-encoded maps.
  void ReadVector(const CacheMap& map, CacheComponent component, int32_t layer,
                  int32_t pos, float* out) const;

  /// Copies the first `slots` token slots of `src` into `dst` across every
  /// layer — the copy-on-write step of prefix sharing: a request adopting a
  /// partially matched tail block duplicates the shared payload into a
  /// private block before writing its own positions after it. Fp32 blocks
  /// only (prefix sharing is gated off for int8 KV tiers).
  void CopyBlockPrefix(BlockId src, BlockId dst, int32_t slots);

  // ---- Raw int8 transport (migration) --------------------------------------
  // Exact code-level access for moving int8 blocks between pools without a
  // dequantize/requantize round-trip.

  /// Reads position `pos`'s raw codes (dim bytes) and quant params from an
  /// int8-encoded map.
  void ReadQuantized(const CacheMap& map, CacheComponent component,
                     int32_t layer, int32_t pos, uint8_t* codes,
                     QuantParams* params) const;

  /// Writes raw codes + params for position `pos` of an int8-encoded map.
  void WriteQuantized(const CacheMap& map, CacheComponent component,
                      int32_t layer, int32_t pos, const uint8_t* codes,
                      const QuantParams& params);

 private:
  int64_t Offset(BlockId block, int32_t layer, int32_t slot) const {
    APT_CHECK(block >= 0 && block < num_blocks_);
    APT_CHECK(layer >= 0 && layer < n_layers_);
    APT_CHECK(slot >= 0 && slot < block_size_);
    return ((static_cast<int64_t>(block) * n_layers_ + layer) * block_size_ +
            slot) *
           dim_;
  }

  /// Byte offset of an int8 slot's codes in the (aliased) arena. The int8
  /// layer stride is block_size_ * kInt8SlotPack slots × dim_ bytes — the
  /// same bytes as the fp32 layer stride (block_size_ × dim_ floats).
  int64_t QuantOffsetBytes(BlockId block, int32_t layer, int32_t slot) const {
    APT_CHECK(block >= 0 && block < num_blocks_);
    APT_CHECK(layer >= 0 && layer < n_layers_);
    APT_CHECK(slot >= 0 && slot < block_size_ * kInt8SlotPack);
    return ((static_cast<int64_t>(block) * n_layers_ + layer) * block_size_ *
                kInt8SlotPack +
            slot) *
           dim_;
  }

  /// Index into the quant-param side arrays for (block, layer, slot).
  int64_t QuantParamIndex(BlockId block, int32_t layer, int32_t slot) const {
    return (static_cast<int64_t>(block) * n_layers_ + layer) * block_size_ *
               kInt8SlotPack +
           slot;
  }

  const uint8_t* QuantCodes(BlockId block, int32_t layer, int32_t slot) const;
  uint8_t* QuantCodes(BlockId block, int32_t layer, int32_t slot);
  /// Allocates the scale/zero side arrays on first quantized write.
  void EnsureQuantParams();

  int32_t num_blocks_;
  int32_t block_size_;
  int32_t n_layers_;
  int32_t dim_;
  std::vector<float> data_;
  /// Per-(block, layer, int8-slot) quantization params; empty until the
  /// first quantized write so fp32-only runs pay nothing.
  std::vector<float> qscale_;
  std::vector<float> qzero_;
};

}  // namespace aptserve
