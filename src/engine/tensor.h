// A minimal dense fp32 tensor. The inference engine's hot loops operate on
// raw float spans (see ops.h); Tensor provides shape-checked storage and is
// the unit of data exchanged across public engine APIs and tests.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <vector>

#include "common/logging.h"

namespace aptserve {

class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(std::vector<int32_t> shape) : shape_(std::move(shape)) {
    data_.assign(NumElements(), 0.0f);
  }

  Tensor(std::vector<int32_t> shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    APT_CHECK_MSG(static_cast<int64_t>(data_.size()) == NumElements(),
                  "tensor data size does not match shape");
  }

  const std::vector<int32_t>& shape() const { return shape_; }
  int32_t dim(size_t i) const {
    APT_CHECK(i < shape_.size());
    return shape_[i];
  }
  size_t rank() const { return shape_.size(); }

  int64_t NumElements() const {
    int64_t n = 1;
    for (int32_t d : shape_) n *= d;
    return n;
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(int64_t i) {
    APT_CHECK(i >= 0 && i < NumElements());
    return data_[i];
  }
  float at(int64_t i) const {
    APT_CHECK(i >= 0 && i < NumElements());
    return data_[i];
  }

  /// Pointer to row `r` of a rank-2 tensor.
  float* Row(int32_t r) {
    APT_CHECK(rank() == 2 && r >= 0 && r < shape_[0]);
    return data_.data() + static_cast<int64_t>(r) * shape_[1];
  }
  const float* Row(int32_t r) const {
    APT_CHECK(rank() == 2 && r >= 0 && r < shape_[0]);
    return data_.data() + static_cast<int64_t>(r) * shape_[1];
  }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  std::vector<int32_t> shape_;
  std::vector<float> data_;
};

}  // namespace aptserve
