// Randomly initialized, seeded transformer weights. The reproduction has no
// pretrained checkpoints available offline; correctness claims (KV path ==
// hidden path == full recompute) hold for arbitrary weights, so seeded
// random weights exercise the same code paths a real checkpoint would.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/model_config.h"
#include "engine/tensor.h"

namespace aptserve {

/// One transformer layer's parameters (paper Eqs. 1–4, pre-LN).
struct LayerWeights {
  Tensor wq, wk, wv, wo;      ///< [d_model, d_model]
  Tensor w1;                  ///< [d_ff, d_model]
  Tensor w2;                  ///< [d_model, d_ff]
  Tensor ln1_gain, ln1_bias;  ///< [d_model]
  Tensor ln2_gain, ln2_bias;  ///< [d_model]
};

struct ModelWeights {
  ModelConfig config;
  Tensor token_embedding;     ///< [vocab, d_model]; also the tied output head.
  Tensor position_embedding;  ///< [max_seq_len, d_model]
  Tensor final_ln_gain, final_ln_bias;  ///< [d_model]
  std::vector<LayerWeights> layers;

  /// Builds weights with scaled-normal initialization from `seed`.
  static ModelWeights Random(const ModelConfig& config, uint64_t seed);

  /// Approximate parameter count (for cost accounting in benchmarks).
  int64_t NumParameters() const;
};

}  // namespace aptserve
