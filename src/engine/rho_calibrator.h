// RhoCalibrator: measures the extra per-token cost of hidden-cache decoding
// relative to KV-cache decoding and fits the linear model t_i = rho * m_i of
// paper Eq. 6. The paper runs this as a ~30 s offline pass before serving;
// here it runs on the mini engine and feeds the scheduler's quantification
// model with a measured (not assumed) rho.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "engine/model_config.h"
#include "runtime/runtime_config.h"

namespace aptserve {

struct RhoCalibrationResult {
  /// Fitted slope: extra seconds of decode latency per cached token when a
  /// request uses hidden cache instead of KV cache.
  double rho_seconds_per_token = 0.0;
  /// R^2 of the through-origin linear fit (Eq. 6 claims the extra cost is
  /// well approximated as linear in sequence length).
  double r_squared = 0.0;
  /// Raw measurements: (context_length, kv_seconds, hidden_seconds).
  struct Point {
    int32_t context_len;
    double kv_seconds;
    double hidden_seconds;
  };
  std::vector<Point> points;
};

/// Runs decode steps at each context length in `context_lens` with both
/// cache types (averaging `reps` timed repetitions) and fits rho.
/// `runtime` must match the serving engine's runtime so the measured rho
/// reflects the speed of the engine it will schedule.
StatusOr<RhoCalibrationResult> CalibrateRho(
    const ModelConfig& config, uint64_t seed,
    const std::vector<int32_t>& context_lens, int32_t reps = 3,
    const RuntimeConfig& runtime = RuntimeConfig{});

}  // namespace aptserve
