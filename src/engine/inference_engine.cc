#include "engine/inference_engine.h"

#include <algorithm>

#include "cache/quantization.h"
#include "engine/ops.h"

namespace aptserve {

InferenceEngine::InferenceEngine(const ModelConfig& config, uint64_t seed,
                                 int32_t num_blocks, int32_t block_size,
                                 const RuntimeConfig& runtime)
    : model_(ModelWeights::Random(config, seed)),
      pool_(num_blocks, block_size),
      storage_(num_blocks, block_size, config.n_layers, config.d_model),
      assigner_(&pool_) {
  if (runtime.ResolvedNumThreads() > 1) {
    thread_pool_ = std::make_unique<runtime::ThreadPool>(runtime);
  }
}

void InferenceEngine::SetSampling(const SamplingParams& params,
                                  uint64_t sample_seed) {
  sampling_ = params;
  sample_seed_ = sample_seed;
}

void InferenceEngine::SetEncodingPolicy(const CacheEncodingPolicy& policy) {
  assigner_.SetEncodingPolicy(policy);
}

void InferenceEngine::EnablePrefixSharing() {
  if (prefix_index_ != nullptr) return;
  prefix_index_ = std::make_unique<PrefixIndex>(&pool_, pool_.block_size());
  assigner_.SetReclaimer(
      [this](int32_t need) { return prefix_index_->EvictLru(need); });
  WirePrefixIndexMetrics();
}

void InferenceEngine::AttachMetrics(obs::MetricsRegistry* registry,
                                    const std::string& labels) {
  obs_registry_ = registry;
  obs_labels_ = labels;
  if (registry == nullptr) {
    obs_decode_prepared_ = nullptr;
    obs_prefill_prepared_ = nullptr;
    obs_steps_computed_ = nullptr;
    obs_steps_finished_ = nullptr;
    pool_.AttachMetrics(nullptr, nullptr);
    if (prefix_index_ != nullptr) {
      prefix_index_->AttachMetrics(PrefixIndex::MetricHooks{});
    }
    return;
  }
  const auto with = [&](const std::string& extra) {
    return labels.empty() ? extra : labels + "," + extra;
  };
  obs_decode_prepared_ = registry->GetCounter(
      "aptserve_engine_steps_prepared_total", with("kind=\"decode\""));
  obs_prefill_prepared_ = registry->GetCounter(
      "aptserve_engine_steps_prepared_total", with("kind=\"prefill\""));
  obs_steps_computed_ =
      registry->GetCounter("aptserve_engine_steps_computed_total", labels);
  obs_steps_finished_ =
      registry->GetCounter("aptserve_engine_steps_finished_total", labels);
  // The pool gauges carry the encoding policy as labels: the unified pool
  // has no per-block tier, so "occupancy by tier" means "this engine's
  // pool, whose caches encode kv/hidden at these tiers".
  const CacheEncodingPolicy& policy = assigner_.encoding_policy();
  const std::string tiers =
      with(std::string("kv=\"") + BlockEncodingName(policy.kv) +
           "\",hidden=\"" + BlockEncodingName(policy.hidden) + "\"");
  pool_.AttachMetrics(
      registry->GetGauge("aptserve_engine_pool_blocks", tiers),
      registry->GetGauge("aptserve_engine_pool_blocks_peak", tiers));
  WirePrefixIndexMetrics();
}

void InferenceEngine::WirePrefixIndexMetrics() {
  if (obs_registry_ == nullptr || prefix_index_ == nullptr) return;
  PrefixIndex::MetricHooks hooks;
  hooks.lookups = obs_registry_->GetCounter(
      "aptserve_prefix_index_lookups_total", obs_labels_);
  hooks.hits = obs_registry_->GetCounter("aptserve_prefix_index_hits_total",
                                         obs_labels_);
  hooks.hit_tokens = obs_registry_->GetCounter(
      "aptserve_prefix_index_hit_tokens_total", obs_labels_);
  hooks.inserted_blocks = obs_registry_->GetCounter(
      "aptserve_prefix_index_inserted_blocks_total", obs_labels_);
  hooks.evicted_blocks = obs_registry_->GetCounter(
      "aptserve_prefix_index_evicted_blocks_total", obs_labels_);
  prefix_index_->AttachMetrics(hooks);
}

namespace {

/// splitmix64 finalizer over (seed, request, position): the counter-based
/// per-draw seed that makes every sampled token a pure function of the
/// request — no shared stream exists to couple requests through batch
/// composition, chunking, preemption, migration, or serving mode.
uint64_t DrawSeed(uint64_t seed, RequestId id, size_t position) {
  uint64_t x = seed;
  x ^= 0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(id) + 1);
  x ^= 0xBF58476D1CE4E5B9ULL * (static_cast<uint64_t>(position) + 1);
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

StatusOr<int32_t> InferenceEngine::SampleNext(
    RequestId id, const GenerationState& gs, const std::vector<float>& logits) {
  if (sampling_.kind == SamplingParams::Kind::kGreedy) {
    return SampleToken(logits, sampling_, nullptr);
  }
  // The draw position is the absolute token index being produced, so a
  // resumed or migrated request continues exactly the stream it would have
  // produced uninterrupted.
  Rng draw_rng(DrawSeed(sample_seed_, id, gs.tokens.size()));
  return SampleToken(logits, sampling_, &draw_rng);
}

Status InferenceEngine::AddRequest(RequestId id, std::vector<int32_t> prompt,
                                   CacheType cache_type) {
  if (requests_.count(id)) {
    return Status::AlreadyExists("request " + std::to_string(id) +
                                 " already registered");
  }
  if (prompt.empty()) return Status::InvalidArgument("empty prompt");
  for (int32_t t : prompt) {
    if (t < 0 || t >= model_.config().vocab_size) {
      return Status::InvalidArgument("prompt token out of vocabulary");
    }
  }
  GenerationState gs;
  gs.prompt_len = static_cast<int32_t>(prompt.size());
  gs.tokens = std::move(prompt);
  gs.cache_type = cache_type;
  requests_.emplace(id, std::move(gs));
  return Status::OK();
}

StatusOr<PendingStep> InferenceEngine::PreparePrefillChunk(
    RequestId id, int32_t max_tokens) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return Status::NotFound("unknown request");
  GenerationState& gs = it->second;
  if (swapped_.count(id)) {
    return Status::FailedPrecondition(
        "request is swapped out; SwapIn() before continuing");
  }
  if (gs.in_decode) {
    return Status::FailedPrecondition("request already prefilled");
  }
  if (max_tokens <= 0) {
    return Status::InvalidArgument("chunk must be positive");
  }
  const int32_t target = gs.PrefillTarget();
  if (target > model_.config().max_seq_len) {
    return Status::InvalidArgument("sequence exceeds max_seq_len");
  }

  // Prefix sharing: a fresh KV pass first tries to adopt cached blocks for
  // its prompt. The match is capped at prompt_len (generated tokens are
  // request-private) and at target-1 (at least one position must be
  // processed to produce the logits the pass samples from). Causality
  // makes adopted K/V bit-identical to recomputation, so tokens are
  // unchanged — only the prefill work shrinks.
  const bool fresh = !assigner_.Has(id);
  int32_t skipped = 0;
  PrefixMatch match;
  if (fresh && prefix_index_ != nullptr &&
      gs.cache_type == CacheType::kKV && gs.cached_tokens == 0 &&
      assigner_.EncodingFor(CacheType::kKV) == BlockEncoding::kFp32) {
    const int32_t limit = std::min(gs.prompt_len, target - 1);
    match = prefix_index_->Match(gs.tokens, limit);
    if (match.hit()) {
      auto seeded = assigner_.CreateSeeded(id, match);
      if (seeded.ok()) {
        if (seeded->tokens > 0) {
          // Copy-on-write: duplicate the partially matched tail block's
          // payload into the private tail before this pass writes the
          // remaining positions of that block.
          storage_.CopyBlockPrefix(seeded->src_k, seeded->dst_k,
                                   seeded->tokens);
          storage_.CopyBlockPrefix(seeded->src_v, seeded->dst_v,
                                   seeded->tokens);
        }
        assigner_.ReleaseCowSource(*seeded);
        gs.cached_tokens = match.tokens;
        skipped = match.tokens;
      } else if (!seeded.status().IsOutOfMemory()) {
        return seeded.status();
      }
      // Seeding OOM falls through to the unshared path, whose own
      // allocation surfaces the memory pressure normally.
    }
  }

  const int32_t upto = std::min(target, gs.cached_tokens + max_tokens);
  const int32_t new_tokens = upto - gs.cached_tokens;
  APT_CHECK(new_tokens > 0);

  // Allocate blocks for the chunk; on failure nothing changes (a fresh
  // request's partial allocation is rolled back by CreateFilled itself; a
  // seeded map is released wholesale, restoring the pre-call pool state).
  Status alloc_st;
  if (!assigner_.Has(id)) {
    alloc_st = assigner_.CreateFilled(id, gs.cache_type, upto);
  } else {
    alloc_st = assigner_.Append(id, new_tokens);
  }
  if (!alloc_st.ok()) {
    if (skipped > 0) {
      APT_CHECK(assigner_.Release(id).ok());
      gs.cached_tokens = 0;
    }
    return alloc_st;
  }
  // Count the adoption only now, with the whole prepare succeeded: a
  // rolled-back seeding must not inflate hits relative to the prefill
  // positions genuinely skipped.
  if (skipped > 0) prefix_index_->RecordAdoption(match);
  if (obs_prefill_prepared_ != nullptr) obs_prefill_prepared_->Inc();
  PendingStep step;
  step.id = id;
  step.is_decode = false;
  step.prefill_tokens.assign(gs.tokens.begin(), gs.tokens.begin() + upto);
  step.start = gs.cached_tokens;
  step.upto = upto;
  step.fresh = fresh;
  step.completes = upto >= target;
  step.prefix_skipped = skipped;
  return step;
}

StatusOr<std::optional<int32_t>> InferenceEngine::PrefillChunk(
    RequestId id, int32_t max_tokens) {
  APT_ASSIGN_OR_RETURN(PendingStep step, PreparePrefillChunk(id, max_tokens));
  ComputeStep(&step);
  return FinishStep(&step);
}

StatusOr<int32_t> InferenceEngine::Prefill(RequestId id) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return Status::NotFound("unknown request");
  const int32_t remaining =
      it->second.PrefillTarget() - it->second.cached_tokens;
  if (remaining <= 0 && it->second.in_decode) {
    return Status::FailedPrecondition("request already prefilled");
  }
  APT_ASSIGN_OR_RETURN(std::optional<int32_t> token,
                       PrefillChunk(id, std::max(remaining, 1)));
  APT_CHECK_MSG(token.has_value(), "full prefill must complete the pass");
  return *token;
}

StatusOr<PendingStep> InferenceEngine::PrepareDecode(RequestId id) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return Status::NotFound("unknown request");
  GenerationState& gs = it->second;
  if (!gs.in_decode) {
    return Status::FailedPrecondition("request needs a prefill first");
  }
  const int32_t pos = gs.cached_tokens;
  APT_CHECK(pos < static_cast<int32_t>(gs.tokens.size()));
  if (pos >= model_.config().max_seq_len) {
    return Status::InvalidArgument("sequence reached max_seq_len");
  }
  APT_RETURN_NOT_OK(assigner_.Append(id, 1));
  if (obs_decode_prepared_ != nullptr) obs_decode_prepared_->Inc();
  PendingStep step;
  step.id = id;
  step.is_decode = true;
  step.pos = pos;
  step.token = gs.tokens[pos];
  return step;
}

StatusOr<int32_t> InferenceEngine::DecodeStep(RequestId id) {
  APT_ASSIGN_OR_RETURN(PendingStep step, PrepareDecode(id));
  ComputeStep(&step);
  APT_ASSIGN_OR_RETURN(std::optional<int32_t> next, FinishStep(&step));
  APT_CHECK(next.has_value());
  return *next;
}

void InferenceEngine::ComputeStep(PendingStep* step) {
  APT_CHECK(step != nullptr && !step->computed);
  const CacheMap* map = assigner_.Find(step->id);
  if (map == nullptr) {
    step->compute_status =
        Status::Internal("pending step lost its cache map before compute");
  } else if (step->is_decode) {
    step->compute_status =
        model_.CachedStep(step->token, step->pos, *map, &storage_,
                          &step->logits, thread_pool_.get());
  } else {
    step->compute_status =
        model_.PrefillCached(step->prefill_tokens, step->start, *map,
                             &storage_, &step->logits, thread_pool_.get());
  }
  step->computed = true;
  if (obs_steps_computed_ != nullptr) obs_steps_computed_->Inc();
}

StatusOr<std::optional<int32_t>> InferenceEngine::FinishStep(
    PendingStep* step) {
  APT_CHECK(step != nullptr && step->computed);
  if (obs_steps_finished_ != nullptr) obs_steps_finished_->Inc();
  auto it = requests_.find(step->id);
  APT_CHECK_MSG(it != requests_.end(),
                "pending step finished for a removed request");
  GenerationState& gs = it->second;
  if (!step->compute_status.ok()) {
    if (!step->is_decode && step->fresh) {
      (void)assigner_.Release(step->id);
      gs.cached_tokens = 0;  // a seeded prepare advanced it
    }
    return step->compute_status;
  }
  if (step->is_decode) {
    gs.cached_tokens = step->pos + 1;
  } else {
    gs.cached_tokens = step->upto;
    if (!step->completes) return std::optional<int32_t>{};  // more chunks
    gs.in_decode = true;
    if (prefix_index_ != nullptr && gs.cache_type == CacheType::kKV &&
        assigner_.EncodingFor(CacheType::kKV) == BlockEncoding::kFp32) {
      // Index the completed pass's full prompt blocks so later requests
      // (and this request's own re-prefills) can adopt them. Generated
      // positions stay private: only chunks fully inside the prompt are
      // shareable content.
      const CacheMap* map = assigner_.Find(step->id);
      APT_CHECK(map != nullptr);
      prefix_index_->Insert(gs.tokens, gs.prompt_len,
                            map->blocks(CacheComponent::kKey),
                            map->blocks(CacheComponent::kValue));
    }
  }
  APT_ASSIGN_OR_RETURN(const int32_t next,
                       SampleNext(step->id, gs, step->logits));
  gs.tokens.push_back(next);
  return std::optional<int32_t>{next};
}

Status InferenceEngine::ExecuteSteps(std::vector<PendingStep>* steps) {
  APT_CHECK(steps != nullptr);
  const int64_t n = static_cast<int64_t>(steps->size());
  // Items of an iteration are independent given the block pool: each step
  // reads/writes only its own request's blocks and the immutable weights,
  // so the forwards run concurrently and stay bit-identical. Item-level
  // fan-out only pays once it can occupy the pool — nested ParallelFor
  // runs inline, so a 2-item batch on an 8-thread pool would strand 6
  // threads; below that point each step runs with full intra-op
  // parallelism instead. Both paths are bit-identical.
  if (thread_pool_ != nullptr && n >= thread_pool_->num_threads()) {
    thread_pool_->ParallelFor(0, n, 1, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) ComputeStep(&(*steps)[i]);
    });
  } else {
    for (PendingStep& step : *steps) ComputeStep(&step);
  }
  // Serial finish barrier, in preparation order: state mutations (cache
  // advance, prefix-index inserts) replay exactly as in serial execution.
  // Sampling itself is counter-based per request, so it is order-free.
  for (PendingStep& step : *steps) {
    auto finished = FinishStep(&step);
    if (!finished.ok()) return finished.status();
  }
  return Status::OK();
}

Status InferenceEngine::ConvertCacheType(RequestId id, CacheType new_type) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return Status::NotFound("unknown request");
  GenerationState& gs = it->second;
  if (gs.cache_type == new_type) return Status::OK();
  gs.cache_type = new_type;
  if (assigner_.Has(id)) {
    // Paper §5: a type switch discards the cache; the next Prefill() rebuilds
    // it from the prompt plus all generated tokens so far (footnote 2).
    APT_RETURN_NOT_OK(assigner_.DiscardForConversion(id));
  }
  // A host-side swap copy holds the old type; it is invalidated too.
  swapped_.erase(id);
  gs.cached_tokens = 0;
  gs.in_decode = false;
  return Status::OK();
}

Status InferenceEngine::Preempt(RequestId id) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return Status::NotFound("unknown request");
  GenerationState& gs = it->second;
  if (assigner_.Has(id)) {
    APT_RETURN_NOT_OK(assigner_.Release(id));
  }
  swapped_.erase(id);  // recompute preemption discards any swap copy
  gs.cached_tokens = 0;
  gs.in_decode = false;
  return Status::OK();
}

Status InferenceEngine::SwapOut(RequestId id) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return Status::NotFound("unknown request");
  if (swapped_.count(id)) {
    return Status::AlreadyExists("request already swapped out");
  }
  GenerationState& gs = it->second;
  const CacheMap* map = assigner_.Find(id);
  if (map == nullptr || gs.cached_tokens == 0) {
    return Status::FailedPrecondition("request holds no cache to swap");
  }
  const int32_t d = model_.config().d_model;
  const int32_t layers = model_.config().n_layers;
  SwappedCache host;
  host.type = gs.cache_type;
  host.tokens = gs.cached_tokens;
  host.was_in_decode = gs.in_decode;
  const auto components = map->Components();
  host.data.resize(static_cast<int64_t>(components.size()) * layers *
                   host.tokens * d);
  int64_t cursor = 0;
  for (CacheComponent c : components) {
    for (int32_t l = 0; l < layers; ++l) {
      storage_.Gather(*map, c, l, host.tokens, host.data.data() + cursor);
      cursor += static_cast<int64_t>(host.tokens) * d;
    }
  }
  APT_RETURN_NOT_OK(assigner_.Release(id));
  gs.cached_tokens = 0;
  gs.in_decode = false;
  swapped_.emplace(id, std::move(host));
  return Status::OK();
}

Status InferenceEngine::SwapIn(RequestId id) {
  auto req_it = requests_.find(id);
  if (req_it == requests_.end()) return Status::NotFound("unknown request");
  auto swap_it = swapped_.find(id);
  if (swap_it == swapped_.end()) {
    return Status::FailedPrecondition("request is not swapped out");
  }
  const SwappedCache& host = swap_it->second;
  APT_RETURN_NOT_OK(assigner_.CreateFilled(id, host.type, host.tokens));
  const CacheMap* map = assigner_.Find(id);
  const int32_t d = model_.config().d_model;
  const int32_t layers = model_.config().n_layers;
  int64_t cursor = 0;
  for (CacheComponent c : map->Components()) {
    for (int32_t l = 0; l < layers; ++l) {
      for (int32_t pos = 0; pos < host.tokens; ++pos) {
        storage_.WriteVector(*map, c, l, pos,
                             host.data.data() + cursor +
                                 static_cast<int64_t>(pos) * d);
      }
      cursor += static_cast<int64_t>(host.tokens) * d;
    }
  }
  GenerationState& gs = req_it->second;
  gs.cache_type = host.type;
  gs.cached_tokens = host.tokens;
  gs.in_decode = host.was_in_decode;
  swapped_.erase(swap_it);
  return Status::OK();
}

StatusOr<MigrationImage> InferenceEngine::ExportRequest(RequestId id) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return Status::NotFound("unknown request");
  if (swapped_.count(id)) {
    return Status::FailedPrecondition(
        "request is swapped out; it must migrate cold");
  }
  GenerationState& gs = it->second;
  MigrationImage image;
  image.tokens = gs.tokens;
  image.prompt_len = gs.prompt_len;
  image.cache_type = gs.cache_type;
  image.cached_tokens = gs.cached_tokens;
  if (gs.cached_tokens > 0) {
    const CacheMap* map = assigner_.Find(id);
    APT_CHECK_MSG(map != nullptr, "cached tokens without a cache map");
    const int32_t d = model_.config().d_model;
    const int32_t layers = model_.config().n_layers;
    const auto components = map->Components();
    const int64_t vectors = static_cast<int64_t>(components.size()) * layers *
                            gs.cached_tokens;
    // Int8 blocks always travel as raw codes (exact, ~4x fewer bytes);
    // fp32 blocks quantize in transit only when the policy opts in.
    const bool int8_transport =
        map->encoding() == BlockEncoding::kInt8 ||
        assigner_.encoding_policy().quantize_migration_payload;
    if (int8_transport) {
      image.payload_encoding = BlockEncoding::kInt8;
      image.qpayload.resize(vectors * d);
      image.qscale.resize(vectors);
      image.qzero.resize(vectors);
      std::vector<float> row(d);
      int64_t v = 0;
      for (CacheComponent c : components) {
        for (int32_t l = 0; l < layers; ++l) {
          for (int32_t pos = 0; pos < gs.cached_tokens; ++pos, ++v) {
            uint8_t* codes = image.qpayload.data() + v * d;
            QuantParams p;
            if (map->encoding() == BlockEncoding::kInt8) {
              storage_.ReadQuantized(*map, c, l, pos, codes, &p);
            } else {
              storage_.ReadVector(*map, c, l, pos, row.data());
              p = ComputeQuantParams(row.data(), d);
              QuantizeVector(row.data(), d, p, codes);
            }
            image.qscale[v] = p.scale;
            image.qzero[v] = p.zero;
          }
        }
      }
    } else {
      image.payload.resize(vectors * d);
      int64_t cursor = 0;
      for (CacheComponent c : components) {
        for (int32_t l = 0; l < layers; ++l) {
          storage_.Gather(*map, c, l, gs.cached_tokens,
                          image.payload.data() + cursor);
          cursor += static_cast<int64_t>(gs.cached_tokens) * d;
        }
      }
    }
    APT_RETURN_NOT_OK(assigner_.ReleaseExported(id));
  }
  requests_.erase(it);
  return image;
}

StatusOr<MigrationImport> InferenceEngine::ImportRequest(
    RequestId id, const MigrationImage& image) {
  if (requests_.count(id)) {
    return Status::AlreadyExists("request " + std::to_string(id) +
                                 " already registered");
  }
  if (image.tokens.empty() || image.prompt_len <= 0 ||
      image.prompt_len > static_cast<int32_t>(image.tokens.size())) {
    return Status::InvalidArgument("malformed migration image");
  }
  if (image.cached_tokens > static_cast<int32_t>(image.tokens.size())) {
    return Status::InvalidArgument("image caches more than its tokens");
  }
  GenerationState gs;
  gs.tokens = image.tokens;
  gs.prompt_len = image.prompt_len;
  gs.cache_type = image.cache_type;
  requests_.emplace(id, gs);

  MigrationImport import;
  if (image.cached_tokens == 0) return import;

  // Re-resolve the cached prompt prefix through this engine's index so
  // already-resident shared blocks dedupe instead of crossing the
  // interconnect. Generated positions (beyond prompt_len) are private and
  // always transfer.
  PrefixMatch match;
  if (prefix_index_ != nullptr && image.cache_type == CacheType::kKV &&
      assigner_.EncodingFor(CacheType::kKV) == BlockEncoding::kFp32) {
    const int32_t limit = std::min(image.prompt_len, image.cached_tokens);
    match = prefix_index_->Match(image.tokens, limit);
  }
  auto seeded = assigner_.RestoreRequestCache(
      id, RequestCacheImage{image.cache_type, image.cached_tokens}, match);
  if (!seeded.ok()) {
    if (seeded.status().IsOutOfMemory()) {
      return import;  // cold import: the request re-prefills here
    }
    requests_.erase(id);
    return seeded.status();
  }
  if (seeded->tokens > 0) {
    // Mid-block COW tail: duplicate the shared tail block's payload locally
    // before the transferred positions (and later prefill writes) land
    // after it.
    storage_.CopyBlockPrefix(seeded->src_k, seeded->dst_k, seeded->tokens);
    storage_.CopyBlockPrefix(seeded->src_v, seeded->dst_v, seeded->tokens);
  }
  assigner_.ReleaseCowSource(*seeded);
  if (match.hit()) prefix_index_->RecordAdoption(match);

  // Scatter the transferred span [match.tokens, cached) from the payload.
  const CacheMap* map = assigner_.Find(id);
  APT_CHECK(map != nullptr);
  const int32_t d = model_.config().d_model;
  const int32_t layers = model_.config().n_layers;
  const auto components = map->Components();
  const int64_t vectors = static_cast<int64_t>(components.size()) * layers *
                          image.cached_tokens;
  if (image.payload_encoding == BlockEncoding::kInt8) {
    APT_CHECK(static_cast<int64_t>(image.qpayload.size()) == vectors * d);
    APT_CHECK(static_cast<int64_t>(image.qscale.size()) == vectors &&
              static_cast<int64_t>(image.qzero.size()) == vectors);
  } else {
    APT_CHECK(static_cast<int64_t>(image.payload.size()) == vectors * d);
  }
  std::vector<float> row(d);
  int64_t base = 0;  // vector index of (component, layer, pos=0)
  for (CacheComponent c : components) {
    for (int32_t l = 0; l < layers; ++l) {
      for (int32_t pos = match.tokens; pos < image.cached_tokens; ++pos) {
        const int64_t v = base + pos;
        if (image.payload_encoding == BlockEncoding::kInt8) {
          const uint8_t* codes = image.qpayload.data() + v * d;
          const QuantParams p{image.qscale[v], image.qzero[v]};
          if (map->encoding() == BlockEncoding::kInt8) {
            // Raw code transport between int8 tiers: bit-exact handoff.
            storage_.WriteQuantized(*map, c, l, pos, codes, p);
          } else {
            DequantizeVector(codes, d, p, row.data());
            storage_.WriteVector(*map, c, l, pos, row.data());
          }
        } else {
          // WriteVector quantizes in place when this tier is int8.
          storage_.WriteVector(*map, c, l, pos,
                               image.payload.data() + v * d);
        }
      }
      base += image.cached_tokens;
    }
  }
  auto& state = requests_.at(id);
  state.cached_tokens = image.cached_tokens;
  import.cache_restored = true;
  import.deduped_tokens = match.tokens;
  import.copied_tokens = image.cached_tokens - match.tokens;
  import.bytes = static_cast<double>(import.copied_tokens) *
                 static_cast<double>(components.size()) * layers *
                 image.BytesPerVector(d);
  return import;
}

Status InferenceEngine::RemoveRequest(RequestId id) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return Status::NotFound("unknown request");
  if (assigner_.Has(id)) APT_RETURN_NOT_OK(assigner_.Release(id));
  swapped_.erase(id);
  requests_.erase(it);
  return Status::OK();
}

StatusOr<std::vector<int32_t>> InferenceEngine::Generate(
    RequestId id, int32_t max_new_tokens, int32_t eos_token) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return Status::NotFound("unknown request");
  int32_t produced = 0;
  if (!it->second.in_decode) {
    APT_ASSIGN_OR_RETURN(int32_t first, Prefill(id));
    ++produced;
    if (first == eos_token) return it->second.tokens;
  }
  while (produced < max_new_tokens) {
    if (static_cast<int32_t>(it->second.tokens.size()) >=
        model_.config().max_seq_len) {
      break;
    }
    APT_ASSIGN_OR_RETURN(int32_t next, DecodeStep(id));
    ++produced;
    if (next == eos_token) break;
  }
  return it->second.tokens;
}

const GenerationState* InferenceEngine::Find(RequestId id) const {
  auto it = requests_.find(id);
  return it == requests_.end() ? nullptr : &it->second;
}

}  // namespace aptserve
