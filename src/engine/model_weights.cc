#include "engine/model_weights.h"

#include <cmath>

#include "common/rng.h"

namespace aptserve {

namespace {

Tensor RandomMatrix(Rng* rng, int32_t rows, int32_t cols, float scale) {
  Tensor t({rows, cols});
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    t.at(i) = static_cast<float>(rng->Normal()) * scale;
  }
  return t;
}

Tensor Ones(int32_t n) {
  Tensor t({n});
  t.Fill(1.0f);
  return t;
}

Tensor Zeros(int32_t n) { return Tensor({n}); }

}  // namespace

ModelWeights ModelWeights::Random(const ModelConfig& config, uint64_t seed) {
  Rng rng(seed);
  ModelWeights w;
  w.config = config;
  const float emb_scale = 0.05f;
  const float proj_scale =
      1.0f / std::sqrt(static_cast<float>(config.d_model));
  const float ff_scale = 1.0f / std::sqrt(static_cast<float>(config.d_ff));

  w.token_embedding =
      RandomMatrix(&rng, config.vocab_size, config.d_model, emb_scale);
  w.position_embedding =
      RandomMatrix(&rng, config.max_seq_len, config.d_model, emb_scale);
  w.final_ln_gain = Ones(config.d_model);
  w.final_ln_bias = Zeros(config.d_model);

  w.layers.reserve(config.n_layers);
  for (int32_t l = 0; l < config.n_layers; ++l) {
    LayerWeights lw;
    lw.wq = RandomMatrix(&rng, config.d_model, config.d_model, proj_scale);
    lw.wk = RandomMatrix(&rng, config.d_model, config.d_model, proj_scale);
    lw.wv = RandomMatrix(&rng, config.d_model, config.d_model, proj_scale);
    lw.wo = RandomMatrix(&rng, config.d_model, config.d_model, proj_scale);
    lw.w1 = RandomMatrix(&rng, config.d_ff, config.d_model, proj_scale);
    lw.w2 = RandomMatrix(&rng, config.d_model, config.d_ff, ff_scale);
    lw.ln1_gain = Ones(config.d_model);
    lw.ln1_bias = Zeros(config.d_model);
    lw.ln2_gain = Ones(config.d_model);
    lw.ln2_bias = Zeros(config.d_model);
    w.layers.push_back(std::move(lw));
  }
  return w;
}

int64_t ModelWeights::NumParameters() const {
  const int64_t d = config.d_model;
  const int64_t dff = config.d_ff;
  int64_t per_layer = 4 * d * d + 2 * d * dff + 4 * d;
  return config.n_layers * per_layer +
         static_cast<int64_t>(config.vocab_size) * d +
         static_cast<int64_t>(config.max_seq_len) * d + 2 * d;
}

}  // namespace aptserve
