#include "engine/serving_engine.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "serve/inference_backend.h"

namespace aptserve {

ServingEngine::ServingEngine(const ServingEngineConfig& config)
    : config_(config),
      engine_(config.model, config.weight_seed, config.num_blocks,
              config.block_size, config.runtime) {
  engine_.SetSampling(config.sampling, config.weight_seed ^ 0x5851f42dULL);
}

StatusOr<ServingEngineResult> ServingEngine::Serve(
    const std::vector<Request>& trace, Scheduler* scheduler) {
  // rho for the scheduler's quantification model: measured on this engine
  // (the paper's offline profiling) and carried to the scheduler through
  // the backend's cost model.
  double rho = 0.0;
  if (config_.calibrate_rho) {
    const int32_t c1 = std::min(16, config_.model.max_seq_len / 4);
    const int32_t c2 = std::min(48, config_.model.max_seq_len / 2);
    APT_ASSIGN_OR_RETURN(RhoCalibrationResult calib,
                         CalibrateRho(config_.model, config_.weight_seed,
                                      {c1, c2}, 2, config_.runtime));
    rho = calib.rho_seconds_per_token;
  }

  InferenceBackendOptions options;
  options.prompt_seed = config_.prompt_seed;
  options.swap_blocks = config_.swap_blocks;
  options.rho_seconds_per_token = rho;
  options.virtual_timing = config_.virtual_timing;
  options.virtual_item_seconds = config_.virtual_item_seconds;
  options.enable_prefix_sharing = config_.enable_prefix_sharing;
  InferenceBackend backend(&engine_, options);

  ServingLoopConfig loop_config;
  loop_config.max_batch_size = config_.max_batch_size;
  loop_config.max_iterations = config_.max_iterations;
  loop_config.preemption_mode = config_.preemption_mode;
  ServingLoop loop(&backend, loop_config);
  APT_ASSIGN_OR_RETURN(ServingLoopResult r,
                       loop.Run(trace, scheduler, config_.slo));

  ServingEngineResult result;
  result.report = std::move(r.report);
  result.compute_seconds = r.compute_seconds;
  result.tokens_generated = r.tokens_generated;
  result.rho_seconds_per_token = rho;
  result.preemptions = result.report.preemptions;
  result.swap_outs = r.swap_outs;
  result.swap_ins = r.swap_ins;
  result.prefill_tokens_computed = r.prefill_tokens_computed;
  result.prefill_tokens_skipped = r.prefill_tokens_skipped;
  result.prefix = r.prefix;
  result.tokens = backend.TakeFinishedTokens();
  return result;
}

}  // namespace aptserve
