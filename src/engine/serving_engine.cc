#include "engine/serving_engine.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "common/logging.h"
#include "sim/cost_model.h"

namespace aptserve {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ServingEngine::ServingEngine(const ServingEngineConfig& config)
    : config_(config),
      engine_(config.model, config.weight_seed, config.num_blocks,
              config.block_size) {
  engine_.SetSampling(config.sampling, config.weight_seed ^ 0x5851f42dULL);
}

StatusOr<ServingEngineResult> ServingEngine::Serve(
    const std::vector<Request>& trace, Scheduler* scheduler) {
  APT_CHECK(scheduler != nullptr);

  // rho for the scheduler's quantification model: measured on this engine
  // (the paper's offline profiling), attached to a cost model whose only
  // role here is carrying rho.
  double rho = 0.0;
  if (config_.calibrate_rho) {
    const int32_t c1 = std::min(16, config_.model.max_seq_len / 4);
    const int32_t c2 = std::min(48, config_.model.max_seq_len / 2);
    APT_ASSIGN_OR_RETURN(RhoCalibrationResult calib,
                         CalibrateRho(config_.model, config_.weight_seed,
                                      {c1, c2}, 2));
    rho = calib.rho_seconds_per_token;
  }
  CostModel cost_model(ModelSpec::Opt13B(),
                       ClusterSpec::ForModel(ModelSpec::Opt13B()));
  cost_model.SetRhoOverride(rho);

  // Mirror state consumed by the Scheduler interface.
  std::vector<SimRequest> reqs;
  reqs.reserve(trace.size());
  MetricsCollector metrics;
  Rng prompt_rng(config_.prompt_seed);
  std::unordered_map<RequestId, size_t> index;
  for (const Request& r : trace) {
    if (r.prompt_len <= 0 || r.output_len <= 0) {
      return Status::InvalidArgument("request lengths must be positive");
    }
    if (r.total_len() + 1 > config_.model.max_seq_len) {
      return Status::InvalidArgument(
          "request " + std::to_string(r.id) + " exceeds model context");
    }
    SimRequest sr;
    sr.spec = r;
    reqs.push_back(sr);
    metrics.RegisterRequest(r);
  }
  std::sort(reqs.begin(), reqs.end(),
            [](const SimRequest& a, const SimRequest& b) {
              return a.spec.arrival < b.spec.arrival;
            });
  for (size_t i = 0; i < reqs.size(); ++i) {
    index[reqs[i].spec.id] = i;
    std::vector<int32_t> prompt(reqs[i].spec.prompt_len);
    for (int32_t& t : prompt) {
      t = static_cast<int32_t>(
          prompt_rng.UniformInt(0, config_.model.vocab_size - 1));
    }
    APT_RETURN_NOT_OK(engine_.AddRequest(reqs[i].spec.id, std::move(prompt),
                                         CacheType::kKV));
  }

  ServingEngineResult result;
  result.rho_seconds_per_token = rho;
  TimePoint now = 0.0;  // virtual clock: accumulated measured compute
  size_t next_arrival = 0;
  size_t finished = 0;
  int32_t consecutive_idle = 0;

  for (int64_t iter = 0; iter < config_.max_iterations; ++iter) {
    if (finished == reqs.size()) break;
    while (next_arrival < reqs.size() &&
           reqs[next_arrival].spec.arrival <= now) {
      ++next_arrival;
    }
    SchedulerInput input;
    input.now = now;
    input.pool = &engine_.pool();
    input.assigner = &engine_.assigner();
    input.cost_model = &cost_model;
    for (size_t i = 0; i < next_arrival; ++i) {
      SimRequest& sr = reqs[i];
      if (sr.phase == RequestPhase::kWaiting) {
        input.waiting.push_back(&sr);
      } else if (sr.phase == RequestPhase::kRunning) {
        input.running.push_back(&sr);
      }
    }
    if (input.waiting.empty() && input.running.empty()) {
      if (next_arrival < reqs.size()) {
        now = std::max(now, reqs[next_arrival].spec.arrival);
        continue;
      }
      break;
    }

    BatchPlan plan = scheduler->PlanIteration(input);

    // Preemptions.
    for (const PreemptionItem& p : plan.preempt) {
      auto it = index.find(p.id);
      if (it == index.end()) return Status::Internal("preempt unknown id");
      SimRequest& sr = reqs[it->second];
      APT_RETURN_NOT_OK(engine_.Preempt(p.id));
      APT_RETURN_NOT_OK(engine_.ConvertCacheType(p.id, p.resume_cache_type));
      if (p.resume_cache_type != sr.cache_type) metrics.OnConversion();
      sr.phase = RequestPhase::kWaiting;
      sr.cache_type = p.resume_cache_type;
      sr.cached_tokens = 0;
      sr.prefill_progress = 0;
      ++sr.preemptions;
      ++result.preemptions;
      metrics.OnPreemption();
    }

    // Execute the batch on the real engine, timing the whole iteration.
    struct Emitted {
      SimRequest* req;
      bool token = false;
    };
    std::vector<Emitted> executed;
    bool memory_wall = false;
    const double t0 = NowSeconds();
    for (const ScheduledItem& item : plan.items) {
      auto it = index.find(item.id);
      if (it == index.end()) return Status::Internal("schedule unknown id");
      SimRequest& sr = reqs[it->second];
      if (item.prefill_chunk > 0) {
        if (sr.phase != RequestPhase::kWaiting) {
          return Status::Internal("prefill for non-waiting request");
        }
        if (!engine_.assigner().Has(item.id)) {
          // Fresh pass: adopt the scheduler's cache-type choice.
          const CacheType prev = sr.cache_type;
          APT_RETURN_NOT_OK(
              engine_.ConvertCacheType(item.id, item.cache_type));
          sr.cache_type = item.cache_type;
          if (sr.has_first_token && prev != item.cache_type) {
            metrics.OnConversion();
          }
        }
        auto r = engine_.PrefillChunk(item.id, item.prefill_chunk);
        if (!r.ok() && r.status().IsOutOfMemory()) {
          memory_wall = true;
          continue;
        }
        if (!r.ok()) return r.status();
        const GenerationState* gs = engine_.Find(item.id);
        sr.cached_tokens = gs->cached_tokens;
        sr.prefill_progress = gs->cached_tokens;
        if (r->has_value()) {
          sr.phase = RequestPhase::kRunning;
          ++sr.generated;
          executed.push_back({&sr, true});
        } else {
          executed.push_back({&sr, false});
        }
      } else {
        if (sr.phase != RequestPhase::kRunning) {
          return Status::Internal("decode for non-running request");
        }
        auto r = engine_.DecodeStep(item.id);
        if (!r.ok() && r.status().IsOutOfMemory()) {
          // Recompute preemption, vLLM-style.
          APT_RETURN_NOT_OK(engine_.Preempt(item.id));
          sr.phase = RequestPhase::kWaiting;
          sr.cached_tokens = 0;
          sr.prefill_progress = 0;
          ++sr.preemptions;
          ++result.preemptions;
          metrics.OnPreemption();
          memory_wall = true;
          continue;
        }
        if (!r.ok()) return r.status();
        sr.cached_tokens = engine_.Find(item.id)->cached_tokens;
        ++sr.generated;
        executed.push_back({&sr, true});
      }
    }
    const double elapsed = NowSeconds() - t0;

    if (executed.empty()) {
      ++consecutive_idle;
      if (consecutive_idle > 1000) {
        return Status::Internal("scheduler made no progress");
      }
      if (next_arrival < reqs.size()) {
        now = std::max(now + 1e-4, reqs[next_arrival].spec.arrival);
      } else {
        now += 1e-4;
      }
      continue;
    }
    consecutive_idle = 0;
    now += elapsed;
    result.compute_seconds += elapsed;

    for (const Emitted& e : executed) {
      if (!e.token) continue;
      SimRequest& sr = *e.req;
      metrics.OnToken(sr.spec.id, now);
      ++result.tokens_generated;
      sr.has_first_token = true;
      sr.last_token_time = now;
      if (sr.generated >= sr.spec.output_len) {
        sr.phase = RequestPhase::kFinished;
        metrics.OnFinish(sr.spec.id, now);
        APT_RETURN_NOT_OK(engine_.RemoveRequest(sr.spec.id));
        ++finished;
      }
    }
    metrics.OnIteration(elapsed, static_cast<int32_t>(executed.size()),
                        memory_wall);
  }

  if (finished != reqs.size()) {
    return Status::Internal("serving hit the iteration cap with " +
                            std::to_string(reqs.size() - finished) +
                            " unfinished requests");
  }
  result.report = metrics.Report(config_.slo);
  return result;
}

}  // namespace aptserve
