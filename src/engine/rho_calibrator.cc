#include "engine/rho_calibrator.h"

#include <chrono>

#include "common/rng.h"
#include "engine/inference_engine.h"

namespace aptserve {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Time one decode step at context length `ctx` with the given cache type.
StatusOr<double> TimeDecodeStep(InferenceEngine* engine, RequestId id,
                                CacheType type, int32_t ctx, Rng* rng,
                                int32_t reps) {
  std::vector<int32_t> prompt(ctx);
  for (int32_t& t : prompt) {
    t = static_cast<int32_t>(
        rng->UniformInt(0, engine->model().config().vocab_size - 1));
  }
  APT_RETURN_NOT_OK(engine->AddRequest(id, prompt, type));
  auto first = engine->Prefill(id);
  if (!first.ok()) return first.status();
  double total = 0.0;
  for (int32_t r = 0; r < reps; ++r) {
    const double t0 = NowSeconds();
    auto next = engine->DecodeStep(id);
    const double t1 = NowSeconds();
    if (!next.ok()) return next.status();
    total += t1 - t0;
  }
  APT_RETURN_NOT_OK(engine->RemoveRequest(id));
  return total / reps;
}

}  // namespace

StatusOr<RhoCalibrationResult> CalibrateRho(
    const ModelConfig& config, uint64_t seed,
    const std::vector<int32_t>& context_lens, int32_t reps,
    const RuntimeConfig& runtime) {
  if (context_lens.empty()) {
    return Status::InvalidArgument("need at least one context length");
  }
  int32_t max_ctx = 0;
  for (int32_t c : context_lens) {
    if (c < 1) return Status::InvalidArgument("context length must be >= 1");
    max_ctx = std::max(max_ctx, c);
  }
  if (max_ctx + reps + 1 > config.max_seq_len) {
    return Status::InvalidArgument("context lengths exceed max_seq_len");
  }
  const int32_t block_size = 16;
  const int32_t blocks_needed =
      2 * ((max_ctx + reps + block_size) / block_size + 1);
  InferenceEngine engine(config, seed, blocks_needed, block_size, runtime);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);

  RhoCalibrationResult result;
  RequestId next_id = 1;
  for (int32_t ctx : context_lens) {
    APT_ASSIGN_OR_RETURN(
        double kv_s, TimeDecodeStep(&engine, next_id++, CacheType::kKV, ctx,
                                    &rng, reps));
    APT_ASSIGN_OR_RETURN(
        double hid_s, TimeDecodeStep(&engine, next_id++, CacheType::kHidden,
                                     ctx, &rng, reps));
    result.points.push_back({ctx, kv_s, hid_s});
  }

  // Least-squares fit through the origin: extra(n) ~= rho * n.
  double sxy = 0.0, sxx = 0.0;
  for (const auto& p : result.points) {
    const double extra = std::max(0.0, p.hidden_seconds - p.kv_seconds);
    sxy += static_cast<double>(p.context_len) * extra;
    sxx += static_cast<double>(p.context_len) * p.context_len;
  }
  result.rho_seconds_per_token = sxx > 0 ? sxy / sxx : 0.0;

  // R^2 against the through-origin fit.
  double ss_res = 0.0, ss_tot = 0.0, mean = 0.0;
  for (const auto& p : result.points) {
    mean += std::max(0.0, p.hidden_seconds - p.kv_seconds);
  }
  mean /= static_cast<double>(result.points.size());
  for (const auto& p : result.points) {
    const double extra = std::max(0.0, p.hidden_seconds - p.kv_seconds);
    const double fit = result.rho_seconds_per_token * p.context_len;
    ss_res += (extra - fit) * (extra - fit);
    ss_tot += (extra - mean) * (extra - mean);
  }
  result.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return result;
}

}  // namespace aptserve
