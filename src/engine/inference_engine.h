// InferenceEngine: multi-request generation over the unified block pool.
// This is the executable core of the paper's inference engine (Figure 5,
// right half): per-request hybrid cache, block allocation through the
// assigner, full and chunked prefill passes, decode iterations, cache-type
// conversion via discard + re-prefill (paper §5), and preemption/resume.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/block_pool.h"
#include "cache/hybrid_assigner.h"
#include "cache/migration_image.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "engine/block_storage.h"
#include "engine/sampling.h"
#include "engine/transformer.h"
#include "obs/metrics_registry.h"
#include "prefix/prefix_index.h"
#include "runtime/runtime_config.h"
#include "runtime/thread_pool.h"

namespace aptserve {

/// Per-request generation state tracked by the engine.
struct GenerationState {
  std::vector<int32_t> tokens;  ///< prompt followed by generated tokens.
  int32_t prompt_len = 0;
  CacheType cache_type = CacheType::kKV;
  /// Number of leading positions of `tokens` whose cache entries exist.
  int32_t cached_tokens = 0;
  /// True once the current prefill pass completed and the request is in the
  /// decode phase (cleared by preemption/conversion).
  bool in_decode = false;
  int32_t generated() const {
    return static_cast<int32_t>(tokens.size()) - prompt_len;
  }
  /// Positions the current prefill pass must cover (prompt plus any tokens
  /// generated before a preemption — paper footnote 2).
  int32_t PrefillTarget() const {
    return static_cast<int32_t>(tokens.size());
  }
};

/// A prepared-but-not-yet-computed engine step. Preparation (validation
/// plus block allocation) runs serially in schedule order — it is what
/// determines out-of-memory behaviour — while the deferred transformer
/// forward is free to run on any thread: distinct steps touch disjoint
/// cache blocks and only share the (immutable) weights. FinishStep then
/// samples each request from its own counter-based RNG (seeded on
/// (sample_seed, request, position)), so token streams are bit-identical
/// to serial execution at any thread count and any batch composition.
struct PendingStep {
  RequestId id = -1;
  bool is_decode = false;
  /// Decode: the position processed and its input token.
  int32_t pos = 0;
  int32_t token = -1;
  /// Prefill: tokens [0, upto), the first new position, the chunk end,
  /// whether this pass created the cache, and whether it completes prefill.
  std::vector<int32_t> prefill_tokens;
  int32_t start = 0;
  int32_t upto = 0;
  bool fresh = false;
  bool completes = false;
  /// Positions seeded from the prefix index instead of being computed
  /// (prefill only; the pass starts after them).
  int32_t prefix_skipped = 0;
  /// Filled by ComputeStep.
  std::vector<float> logits;
  Status compute_status = Status::OK();
  bool computed = false;
};

class InferenceEngine {
 public:
  /// Builds a model with seeded random weights and a unified pool of
  /// `num_blocks` blocks of `block_size` token positions each. `runtime`
  /// sizes the engine's thread pool (default: serial; see RuntimeConfig).
  InferenceEngine(const ModelConfig& config, uint64_t seed, int32_t num_blocks,
                  int32_t block_size,
                  const RuntimeConfig& runtime = RuntimeConfig{});

  /// Sets the sampling strategy for generated tokens (default: greedy).
  void SetSampling(const SamplingParams& params, uint64_t sample_seed = 1);

  /// Selects the per-tier block encoding for caches created from now on
  /// (call before requests hold cache; existing maps keep their encoding).
  /// An int8 tier holds and migrates its blocks at ~kInt8SlotPack x density
  /// with bounded quantization error; the default all-fp32 policy leaves
  /// token streams bit-identical to the pre-quantization engine. Prefix
  /// sharing disables itself for an int8 KV tier (shared blocks must be
  /// exact across adopters).
  void SetEncodingPolicy(const CacheEncodingPolicy& policy);
  const CacheEncodingPolicy& encoding_policy() const {
    return assigner_.encoding_policy();
  }

  /// Turns on prefix sharing: a per-engine PrefixIndex over the pool. From
  /// then on a fresh KV prefill pass first matches its prompt against the
  /// index (adopting shared blocks, copy-on-writing a partially matched
  /// tail) and every completed KV prefill indexes its full prompt blocks.
  /// The assigner's allocations gain the index's LRU eviction as a
  /// last-resort reclaimer. Idempotent; cannot be turned off (tokens are
  /// unaffected either way — sharing only skips recomputation).
  void EnablePrefixSharing();

  /// The engine's prefix index; null until EnablePrefixSharing().
  PrefixIndex* prefix_index() { return prefix_index_.get(); }
  const PrefixIndex* prefix_index() const { return prefix_index_.get(); }

  /// Attaches live engine-level metrics to `registry` (borrowed; must
  /// outlive the engine). `labels` is the Prometheus label set stamped on
  /// every handle (e.g. `instance="0"`). Wires step counters on the
  /// Prepare/Compute/Finish phases, pool occupancy gauges labeled with the
  /// current encoding policy's tiers, and — once prefix sharing is on —
  /// the index's hit/insert/evict counters. Distinct metric names from the
  /// serving-loop pulls (`aptserve_engine_*` / `aptserve_prefix_index_*`)
  /// so engine-level and loop-level accounting never double-count. Purely
  /// observational: token streams are unaffected.
  void AttachMetrics(obs::MetricsRegistry* registry,
                     const std::string& labels);

  /// Registers a request with its prompt; no compute or memory yet.
  Status AddRequest(RequestId id, std::vector<int32_t> prompt,
                    CacheType cache_type);

  /// Runs (the remainder of) the prefill phase in one batched pass:
  /// allocates cache for all un-cached tokens, processes them, samples the
  /// next token (appended to the request) and returns it. Also used to
  /// resume preempted/converted requests, in which case the pass covers the
  /// prompt plus previously generated tokens.
  StatusOr<int32_t> Prefill(RequestId id);

  /// Chunked prefill (Sarathi-style): processes up to `max_tokens` pending
  /// prefill positions. Returns the sampled first token when the pass
  /// completes, std::nullopt when more chunks remain.
  StatusOr<std::optional<int32_t>> PrefillChunk(RequestId id,
                                                int32_t max_tokens);

  /// Runs one decode iteration for the request: extends the cache by one
  /// position, processes the latest token, appends and returns the next.
  StatusOr<int32_t> DecodeStep(RequestId id);

  // ---- Batched execution (parallel runtime) --------------------------------
  // PrefillChunk/DecodeStep are compositions of the three phases below, so
  // the serial and batched paths share one implementation. A batch executor
  // (serve/inference_backend.h) prepares steps in schedule order, computes
  // them concurrently, and finishes them in order.

  /// Validates and allocates one decode step without computing it.
  StatusOr<PendingStep> PrepareDecode(RequestId id);

  /// Validates and allocates (the next chunk of) a prefill pass without
  /// computing it. Identical checks and allocation to PrefillChunk.
  StatusOr<PendingStep> PreparePrefillChunk(RequestId id, int32_t max_tokens);

  /// Runs the deferred transformer forward for a prepared step. Safe to
  /// call concurrently for distinct steps (disjoint cache blocks, shared
  /// immutable weights). Errors land in `step->compute_status`.
  void ComputeStep(PendingStep* step);

  /// Applies a computed step to the request state: advances the cached
  /// token count and — for decodes and completing prefills — samples the
  /// next token from the request's counter-based RNG (a pure function of
  /// (sample_seed, request id, position): independent of batch composition,
  /// chunking, migration, and serving mode). Must be called in the same
  /// order steps were prepared to reproduce serial token streams.
  StatusOr<std::optional<int32_t>> FinishStep(PendingStep* step);

  /// Computes `steps` (in parallel across the runtime pool when the engine
  /// has one) and finishes them in order. Bit-identical to executing the
  /// steps one by one.
  Status ExecuteSteps(std::vector<PendingStep>* steps);

  /// Switches the request's cache type: discards the existing cache; the
  /// caller must run Prefill() again to rebuild it (mirrors the paper's
  /// recompute-on-switch policy). No-op Status::OK if already `new_type`.
  Status ConvertCacheType(RequestId id, CacheType new_type);

  /// Releases the request's cache but keeps its token state so it can be
  /// resumed later with Prefill() (scheduler preemption).
  Status Preempt(RequestId id);

  /// Swap-based preemption (vLLM's alternative to recompute): copies the
  /// request's cached vectors to a host-side staging buffer and frees its
  /// GPU blocks. The request cannot decode until SwapIn().
  Status SwapOut(RequestId id);

  /// Restores a swapped-out request's cache to GPU blocks bit-identically;
  /// generation resumes exactly where it stopped (no recompute).
  /// OutOfMemory when the pool lacks blocks (the swap copy is kept).
  Status SwapIn(RequestId id);

  bool IsSwappedOut(RequestId id) const { return swapped_.count(id) > 0; }

  /// Drops the request and frees its cache.
  Status RemoveRequest(RequestId id);

  // ---- Live migration (fleet cache-state handoff) --------------------------

  /// Serializes the request for migration to another engine instance: full
  /// token state plus — when the request holds cache — the cached vectors
  /// gathered through BlockStorage (same layout as the swap staging
  /// buffer). The request is removed from this engine; its blocks release
  /// through BlockPool::ExportBlocks, so prefix-shared blocks stay resident
  /// for their remaining owners. FailedPrecondition for swapped-out
  /// requests (swap-in first, or migrate them cold after a release).
  StatusOr<MigrationImage> ExportRequest(RequestId id);

  /// Registers a migrated-in request and restores its cache. The prompt
  /// prefix of the cached span is first re-resolved against this engine's
  /// PrefixIndex: matched blocks are adopted (dedupe — the content is
  /// bit-identical by causality when the fleet replicates weights), a
  /// mid-block tail is copy-on-written locally, and only the rest is
  /// scattered from the image's payload. If the pool cannot hold the cache
  /// even after reclaim, the request imports cold (cache_restored=false)
  /// and re-prefills here — the migration analogue of a recompute
  /// preemption.
  StatusOr<MigrationImport> ImportRequest(RequestId id,
                                          const MigrationImage& image);

  /// Convenience: generate up to `max_new_tokens` tokens (prefill if needed
  /// then decode steps), stopping early on `eos_token` (pass -1 to disable).
  /// Returns the full token sequence.
  StatusOr<std::vector<int32_t>> Generate(RequestId id, int32_t max_new_tokens,
                                          int32_t eos_token = -1);

  const GenerationState* Find(RequestId id) const;
  const TransformerModel& model() const { return model_; }
  BlockPool& pool() { return pool_; }
  HybridCacheAssigner& assigner() { return assigner_; }
  BlockStorage& storage() { return storage_; }
  /// The engine's runtime pool; null when configured serial.
  runtime::ThreadPool* thread_pool() { return thread_pool_.get(); }

 private:
  StatusOr<int32_t> SampleNext(RequestId id, const GenerationState& gs,
                               const std::vector<float>& logits);

  /// Resolves the prefix index's counter handles against obs_registry_
  /// (no-op when either side is absent).
  void WirePrefixIndexMetrics();

  /// Host-side copy of a swapped-out request's cache.
  struct SwappedCache {
    CacheType type = CacheType::kKV;
    int32_t tokens = 0;
    bool was_in_decode = false;
    /// Layout: [component][layer][pos][d_model], components in the order
    /// CacheMap::Components() returns for `type`.
    std::vector<float> data;
  };

  TransformerModel model_;
  BlockPool pool_;
  BlockStorage storage_;
  HybridCacheAssigner assigner_;
  /// Declared after pool_ so destruction releases index references first.
  std::unique_ptr<PrefixIndex> prefix_index_;
  std::unique_ptr<runtime::ThreadPool> thread_pool_;
  std::unordered_map<RequestId, GenerationState> requests_;
  std::unordered_map<RequestId, SwappedCache> swapped_;
  SamplingParams sampling_;
  uint64_t sample_seed_ = 1;

  /// AttachMetrics handles (null = detached). Kept with the registry and
  /// label set so EnablePrefixSharing can wire the index it creates later.
  obs::MetricsRegistry* obs_registry_ = nullptr;
  std::string obs_labels_;
  obs::Counter* obs_decode_prepared_ = nullptr;
  obs::Counter* obs_prefill_prepared_ = nullptr;
  obs::Counter* obs_steps_computed_ = nullptr;
  obs::Counter* obs_steps_finished_ = nullptr;
};

}  // namespace aptserve
