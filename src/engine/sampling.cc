#include "engine/sampling.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "engine/ops.h"

namespace aptserve {

namespace {

/// Softmax with temperature over the given (index, logit) pairs, in place.
void SoftmaxWithTemperature(std::vector<std::pair<int32_t, float>>* entries,
                            double temperature) {
  float mx = entries->front().second;
  for (const auto& [i, v] : *entries) mx = std::max(mx, v);
  double sum = 0.0;
  for (auto& [i, v] : *entries) {
    v = static_cast<float>(std::exp((v - mx) / temperature));
    sum += v;
  }
  for (auto& [i, v] : *entries) v = static_cast<float>(v / sum);
}

int32_t DrawFrom(const std::vector<std::pair<int32_t, float>>& probs,
                 Rng* rng) {
  double u = rng->Uniform();
  for (const auto& [idx, p] : probs) {
    u -= p;
    if (u <= 0) return idx;
  }
  return probs.back().first;  // numerical slack
}

}  // namespace

StatusOr<int32_t> SampleToken(const std::vector<float>& logits,
                              const SamplingParams& params, Rng* rng) {
  if (logits.empty()) return Status::InvalidArgument("empty logits");
  if (params.kind == SamplingParams::Kind::kGreedy) {
    return ops::ArgMax(logits.data(), static_cast<int32_t>(logits.size()));
  }
  if (rng == nullptr) {
    return Status::InvalidArgument("stochastic sampling needs an Rng");
  }
  if (params.temperature <= 0) {
    return Status::InvalidArgument("temperature must be > 0");
  }

  std::vector<std::pair<int32_t, float>> entries;
  entries.reserve(logits.size());
  for (int32_t i = 0; i < static_cast<int32_t>(logits.size()); ++i) {
    entries.emplace_back(i, logits[i]);
  }

  switch (params.kind) {
    case SamplingParams::Kind::kTemperature:
      SoftmaxWithTemperature(&entries, params.temperature);
      return DrawFrom(entries, rng);
    case SamplingParams::Kind::kTopK: {
      if (params.top_k < 1) {
        return Status::InvalidArgument("top_k must be >= 1");
      }
      const size_t k =
          std::min<size_t>(params.top_k, entries.size());
      std::partial_sort(entries.begin(), entries.begin() + k, entries.end(),
                        [](const auto& a, const auto& b) {
                          return a.second > b.second;
                        });
      entries.resize(k);
      SoftmaxWithTemperature(&entries, params.temperature);
      return DrawFrom(entries, rng);
    }
    case SamplingParams::Kind::kTopP: {
      if (params.top_p <= 0 || params.top_p > 1) {
        return Status::InvalidArgument("top_p must be in (0, 1]");
      }
      std::sort(entries.begin(), entries.end(),
                [](const auto& a, const auto& b) {
                  return a.second > b.second;
                });
      SoftmaxWithTemperature(&entries, params.temperature);
      double mass = 0.0;
      size_t keep = 0;
      while (keep < entries.size() && mass < params.top_p) {
        mass += entries[keep].second;
        ++keep;
      }
      entries.resize(std::max<size_t>(keep, 1));
      // Renormalize the kept mass.
      double sum = 0;
      for (const auto& [i, p] : entries) sum += p;
      for (auto& [i, p] : entries) p = static_cast<float>(p / sum);
      return DrawFrom(entries, rng);
    }
    case SamplingParams::Kind::kGreedy:
      break;  // handled above
  }
  return Status::Internal("unreachable sampling kind");
}

}  // namespace aptserve
