#include "engine/block_storage.h"

#include <cstring>

namespace aptserve {

BlockStorage::BlockStorage(int32_t num_blocks, int32_t block_size,
                           int32_t n_layers, int32_t dim)
    : num_blocks_(num_blocks), block_size_(block_size), n_layers_(n_layers),
      dim_(dim) {
  APT_CHECK(num_blocks >= 0 && block_size > 0 && n_layers > 0 && dim > 0);
  data_.assign(static_cast<int64_t>(num_blocks) * block_size * n_layers * dim,
               0.0f);
}

float* BlockStorage::Slot(BlockId block, int32_t layer, int32_t slot) {
  return data_.data() + Offset(block, layer, slot);
}

const float* BlockStorage::Slot(BlockId block, int32_t layer,
                                int32_t slot) const {
  return data_.data() + Offset(block, layer, slot);
}

void BlockStorage::WriteVector(const CacheMap& map, CacheComponent component,
                               int32_t layer, int32_t pos, const float* vec) {
  const BlockSlot s = map.Slot(component, pos);
  std::memcpy(Slot(s.block, layer, s.offset), vec, sizeof(float) * dim_);
}

void BlockStorage::Gather(const CacheMap& map, CacheComponent component,
                          int32_t layer, int32_t n, float* out) const {
  // Walk block by block so each memcpy covers a full contiguous run of
  // slots, the same access pattern the paper's fused kernel parallelizes.
  const auto& blocks = map.blocks(component);
  int32_t pos = 0;
  size_t bi = 0;
  while (pos < n) {
    APT_CHECK_MSG(bi < blocks.size(), "gather past allocated blocks");
    const int32_t run = std::min(block_size_, n - pos);
    std::memcpy(out + static_cast<int64_t>(pos) * dim_,
                Slot(blocks[bi], layer, 0),
                sizeof(float) * static_cast<int64_t>(run) * dim_);
    pos += run;
    ++bi;
  }
}

void BlockStorage::ReadVector(const CacheMap& map, CacheComponent component,
                              int32_t layer, int32_t pos, float* out) const {
  const BlockSlot s = map.Slot(component, pos);
  std::memcpy(out, Slot(s.block, layer, s.offset), sizeof(float) * dim_);
}

void BlockStorage::CopyBlockPrefix(BlockId src, BlockId dst, int32_t slots) {
  APT_CHECK(slots > 0 && slots <= block_size_);
  APT_CHECK(src != dst);
  // Slots of one (block, layer) are contiguous, so each layer is one run.
  for (int32_t l = 0; l < n_layers_; ++l) {
    std::memcpy(Slot(dst, l, 0), Slot(src, l, 0),
                sizeof(float) * static_cast<int64_t>(slots) * dim_);
  }
}

}  // namespace aptserve
