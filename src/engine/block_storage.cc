#include "engine/block_storage.h"

#include <cstring>

namespace aptserve {

BlockStorage::BlockStorage(int32_t num_blocks, int32_t block_size,
                           int32_t n_layers, int32_t dim)
    : num_blocks_(num_blocks), block_size_(block_size), n_layers_(n_layers),
      dim_(dim) {
  APT_CHECK(num_blocks >= 0 && block_size > 0 && n_layers > 0 && dim > 0);
  data_.assign(static_cast<int64_t>(num_blocks) * block_size * n_layers * dim,
               0.0f);
}

float* BlockStorage::Slot(BlockId block, int32_t layer, int32_t slot) {
  return data_.data() + Offset(block, layer, slot);
}

const float* BlockStorage::Slot(BlockId block, int32_t layer,
                                int32_t slot) const {
  return data_.data() + Offset(block, layer, slot);
}

const uint8_t* BlockStorage::QuantCodes(BlockId block, int32_t layer,
                                        int32_t slot) const {
  // Char-type aliasing of the float arena is well-defined; an int8 block's
  // codes occupy exactly the bytes its fp32 payload would.
  return reinterpret_cast<const uint8_t*>(data_.data()) +
         QuantOffsetBytes(block, layer, slot);
}

uint8_t* BlockStorage::QuantCodes(BlockId block, int32_t layer,
                                  int32_t slot) {
  return reinterpret_cast<uint8_t*>(data_.data()) +
         QuantOffsetBytes(block, layer, slot);
}

void BlockStorage::EnsureQuantParams() {
  if (!qscale_.empty()) return;
  const int64_t n = static_cast<int64_t>(num_blocks_) * n_layers_ *
                    block_size_ * kInt8SlotPack;
  qscale_.assign(n, 0.0f);
  qzero_.assign(n, 0.0f);
}

void BlockStorage::WriteVector(const CacheMap& map, CacheComponent component,
                               int32_t layer, int32_t pos, const float* vec) {
  const BlockSlot s = map.Slot(component, pos);
  if (map.encoding() == BlockEncoding::kInt8) {
    EnsureQuantParams();
    const QuantParams p = ComputeQuantParams(vec, dim_);
    QuantizeVector(vec, dim_, p, QuantCodes(s.block, layer, s.offset));
    const int64_t qi = QuantParamIndex(s.block, layer, s.offset);
    qscale_[qi] = p.scale;
    qzero_[qi] = p.zero;
    return;
  }
  std::memcpy(Slot(s.block, layer, s.offset), vec, sizeof(float) * dim_);
}

void BlockStorage::Gather(const CacheMap& map, CacheComponent component,
                          int32_t layer, int32_t n, float* out) const {
  if (map.encoding() == BlockEncoding::kInt8) {
    for (int32_t pos = 0; pos < n; ++pos) {
      ReadVector(map, component, layer, pos,
                 out + static_cast<int64_t>(pos) * dim_);
    }
    return;
  }
  // Walk block by block so each memcpy covers a full contiguous run of
  // slots, the same access pattern the paper's fused kernel parallelizes.
  const auto& blocks = map.blocks(component);
  const int32_t slots = map.block_size();
  int32_t pos = 0;
  size_t bi = 0;
  while (pos < n) {
    APT_CHECK_MSG(bi < blocks.size(), "gather past allocated blocks");
    const int32_t run = std::min(slots, n - pos);
    std::memcpy(out + static_cast<int64_t>(pos) * dim_,
                Slot(blocks[bi], layer, 0),
                sizeof(float) * static_cast<int64_t>(run) * dim_);
    pos += run;
    ++bi;
  }
}

void BlockStorage::ReadVector(const CacheMap& map, CacheComponent component,
                              int32_t layer, int32_t pos, float* out) const {
  const BlockSlot s = map.Slot(component, pos);
  if (map.encoding() == BlockEncoding::kInt8) {
    QuantParams p;
    if (!qscale_.empty()) {
      const int64_t qi = QuantParamIndex(s.block, layer, s.offset);
      p.scale = qscale_[qi];
      p.zero = qzero_[qi];
    }
    DequantizeVector(QuantCodes(s.block, layer, s.offset), dim_, p, out);
    return;
  }
  std::memcpy(out, Slot(s.block, layer, s.offset), sizeof(float) * dim_);
}

void BlockStorage::CopyBlockPrefix(BlockId src, BlockId dst, int32_t slots) {
  APT_CHECK(slots > 0 && slots <= block_size_);
  APT_CHECK(src != dst);
  // Slots of one (block, layer) are contiguous, so each layer is one run.
  for (int32_t l = 0; l < n_layers_; ++l) {
    std::memcpy(Slot(dst, l, 0), Slot(src, l, 0),
                sizeof(float) * static_cast<int64_t>(slots) * dim_);
  }
}

void BlockStorage::ReadQuantized(const CacheMap& map, CacheComponent component,
                                 int32_t layer, int32_t pos, uint8_t* codes,
                                 QuantParams* params) const {
  APT_CHECK(map.encoding() == BlockEncoding::kInt8);
  const BlockSlot s = map.Slot(component, pos);
  std::memcpy(codes, QuantCodes(s.block, layer, s.offset), dim_);
  *params = QuantParams{};
  if (!qscale_.empty()) {
    const int64_t qi = QuantParamIndex(s.block, layer, s.offset);
    params->scale = qscale_[qi];
    params->zero = qzero_[qi];
  }
}

void BlockStorage::WriteQuantized(const CacheMap& map,
                                  CacheComponent component, int32_t layer,
                                  int32_t pos, const uint8_t* codes,
                                  const QuantParams& params) {
  APT_CHECK(map.encoding() == BlockEncoding::kInt8);
  EnsureQuantParams();
  const BlockSlot s = map.Slot(component, pos);
  std::memcpy(QuantCodes(s.block, layer, s.offset), codes, dim_);
  const int64_t qi = QuantParamIndex(s.block, layer, s.offset);
  qscale_[qi] = params.scale;
  qzero_[qi] = params.zero;
}

}  // namespace aptserve
