// AptSarathiScheduler ("Apt-Serve-S", paper §6.7): Apt-Serve's hybrid cache
// and value-based request composition layered on Sarathi-Serve's chunked
// prefill + prefill/decode coalesced batching. The iteration-type decision
// disappears (every iteration is mixed); the scheduling problem reduces to
// choosing the request composition and cache types under the token budget
// and the memory constraint.
#pragma once

#include "core/greedy_solver.h"
#include "sim/scheduler.h"

namespace aptserve {

struct AptSarathiConfig {
  SloSpec slo;
  double violation_decay = 0.0;
  int32_t token_budget = 512;
  int32_t max_batch = 256;
};

class AptSarathiScheduler : public Scheduler {
 public:
  explicit AptSarathiScheduler(const AptSarathiConfig& config)
      : config_(config) {}

  BatchPlan PlanIteration(const SchedulerInput& input) override;
  std::string name() const override { return "Apt-Serve-S"; }

 private:
  AptSarathiConfig config_;
};

}  // namespace aptserve
