#include "core/greedy_solver.h"

#include <algorithm>

#include "common/logging.h"

namespace aptserve {

namespace {

struct MarginalStep {
  size_t cand = 0;
  /// Step kinds: 0 = direct KV (0 -> m), 1 = hidden (0 -> m/2),
  /// 2 = upgrade hidden -> KV (m/2 -> m; requires kind 1 taken first).
  int kind = 0;
  double gain = 0.0;
  int32_t delta_blocks = 0;
  double theta = 0.0;  ///< gain per block.
};

}  // namespace

GreedySolution GreedySolver::Solve(
    const std::vector<CandidateInfo>& candidates,
    int32_t capacity_blocks) const {
  GreedySolution sol;
  sol.decisions.assign(candidates.size(), ScheduleDecision{});
  if (candidates.empty() || capacity_blocks <= 0) return sol;

  std::vector<MarginalStep> steps;
  steps.reserve(candidates.size() * 2);
  for (size_t i = 0; i < candidates.size(); ++i) {
    const CandidateInfo& c = candidates[i];
    APT_CHECK_MSG(c.m_blocks >= 0, "negative memory requirement");
    if (c.m_blocks == 0) continue;  // nothing to allocate; skip defensively
    const double p = model_->EffectivePending(c);
    if (p <= 0.0) continue;
    const int32_t half = std::max(1, c.m_blocks / 2);
    if (c.type_fixed) {
      const bool hidden = c.current_type == CacheType::kHidden;
      const double gain = model_->Value(c, hidden);
      if (gain <= 0.0) continue;
      const int32_t w = hidden ? half : c.m_blocks;
      steps.push_back({i, hidden ? 1 : 0, gain, w, gain / w});
      continue;
    }
    if (model_->HiddenProfitable(c)) {
      const double v_hidden = model_->Value(c, /*hidden=*/true);
      MarginalStep a{i, 1, v_hidden, half, v_hidden / half};
      const double upgrade_gain = p - v_hidden;  // N*rho*m
      MarginalStep b{i, 2, upgrade_gain, c.m_blocks - half,
                     upgrade_gain / std::max(1, c.m_blocks - half)};
      steps.push_back(a);
      steps.push_back(b);
    } else {
      MarginalStep s{i, 0, p, c.m_blocks, p / c.m_blocks};
      steps.push_back(s);
    }
  }

  std::sort(steps.begin(), steps.end(),
            [](const MarginalStep& a, const MarginalStep& b) {
              if (a.theta != b.theta) return a.theta > b.theta;
              return a.cand < b.cand;  // deterministic tie-break
            });

  // Greedy pass by density.
  std::vector<int> taken_kind(candidates.size(), -1);
  int32_t remaining = capacity_blocks;
  double greedy_value = 0.0;
  for (const MarginalStep& s : steps) {
    if (s.delta_blocks > remaining) continue;
    if (s.kind == 2) {
      // Upgrade requires the hidden step already taken.
      if (taken_kind[s.cand] != 1) continue;
      taken_kind[s.cand] = 0;  // now a full-KV schedule
    } else {
      if (taken_kind[s.cand] != -1) continue;
      taken_kind[s.cand] = s.kind;
    }
    remaining -= s.delta_blocks;
    greedy_value += s.gain;
  }

  // Factor-2 guard: the best single feasible schedule may beat the greedy
  // fill when a high-value item was blocked by earlier fractional picks.
  double best_single = 0.0;
  size_t best_idx = candidates.size();
  bool best_hidden = false;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const CandidateInfo& c = candidates[i];
    if (c.m_blocks == 0) continue;
    const double p = model_->EffectivePending(c);
    if (p <= 0.0) continue;
    const int32_t half = std::max(1, c.m_blocks / 2);
    const bool kv_allowed =
        !c.type_fixed || c.current_type == CacheType::kKV;
    const bool hidden_allowed =
        !c.type_fixed || c.current_type == CacheType::kHidden;
    if (kv_allowed && c.m_blocks <= capacity_blocks && p > best_single) {
      best_single = p;
      best_idx = i;
      best_hidden = false;
    }
    const double vh = model_->Value(c, /*hidden=*/true);
    if (hidden_allowed && half <= capacity_blocks && vh > best_single) {
      best_single = vh;
      best_idx = i;
      best_hidden = true;
    }
  }

  if (best_single > greedy_value && best_idx < candidates.size()) {
    sol.decisions[best_idx].selected = true;
    sol.decisions[best_idx].use_hidden = best_hidden;
    sol.total_value = best_single;
    sol.used_blocks = best_hidden
                          ? std::max(1, candidates[best_idx].m_blocks / 2)
                          : candidates[best_idx].m_blocks;
    return sol;
  }

  sol.total_value = greedy_value;
  sol.used_blocks = capacity_blocks - remaining;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (taken_kind[i] == -1) continue;
    sol.decisions[i].selected = true;
    sol.decisions[i].use_hidden = (taken_kind[i] == 1);
  }
  return sol;
}

GreedySolution SolveExact(const QuantificationModel& model,
                          const std::vector<CandidateInfo>& candidates,
                          int32_t capacity_blocks) {
  GreedySolution sol;
  sol.decisions.assign(candidates.size(), ScheduleDecision{});
  if (candidates.empty() || capacity_blocks <= 0) return sol;

  const size_t n = candidates.size();
  const int32_t cap = capacity_blocks;
  // dp[i][w]: best value using candidates [0, i) within weight w.
  // choice[i][w]: 0 skip, 1 hidden, 2 kv.
  std::vector<std::vector<double>> dp(n + 1,
                                      std::vector<double>(cap + 1, 0.0));
  std::vector<std::vector<int8_t>> choice(
      n + 1, std::vector<int8_t>(cap + 1, 0));
  for (size_t i = 1; i <= n; ++i) {
    const CandidateInfo& c = candidates[i - 1];
    const double p = model.EffectivePending(c);
    const double vh = model.Value(c, /*hidden=*/true);
    const int32_t wk = c.m_blocks;
    const int32_t wh = std::max(1, c.m_blocks / 2);
    for (int32_t w = 0; w <= cap; ++w) {
      double best = dp[i - 1][w];
      int8_t ch = 0;
      if (c.m_blocks > 0 && p > 0.0) {
        if (wh <= w && vh > 0.0 && dp[i - 1][w - wh] + vh > best) {
          best = dp[i - 1][w - wh] + vh;
          ch = 1;
        }
        if (wk <= w && dp[i - 1][w - wk] + p > best) {
          best = dp[i - 1][w - wk] + p;
          ch = 2;
        }
      }
      dp[i][w] = best;
      choice[i][w] = ch;
    }
  }
  sol.total_value = dp[n][cap];
  int32_t w = cap;
  for (size_t i = n; i >= 1; --i) {
    const int8_t ch = choice[i][w];
    if (ch == 0) continue;
    const CandidateInfo& c = candidates[i - 1];
    sol.decisions[i - 1].selected = true;
    sol.decisions[i - 1].use_hidden = (ch == 1);
    const int32_t used =
        ch == 1 ? std::max(1, c.m_blocks / 2) : c.m_blocks;
    sol.used_blocks += used;
    w -= used;
  }
  return sol;
}

}  // namespace aptserve
