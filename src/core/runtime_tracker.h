// Runtime information tracking (paper §4.2): converts the simulator's
// per-request state into the candidate tuples (p_i, m_i, violated) that the
// quantification model consumes each iteration.
#pragma once

#include <algorithm>

#include "cache/hybrid_assigner.h"
#include "core/quantification.h"
#include "sim/metrics.h"
#include "sim/sim_request.h"

namespace aptserve {

/// Builds the tracked runtime info for one candidate request at `now`.
/// m_i is always the KV-cache footprint of the request's current sequence
/// (plus one token of decode growth for running requests), per §4.2.
inline CandidateInfo BuildCandidate(const SimRequest& sr, TimePoint now,
                                    const HybridCacheAssigner& assigner,
                                    const SloSpec& slo) {
  CandidateInfo c;
  c.id = sr.spec.id;
  // Floor the pending time at a small positive value: a request that
  // received a token at exactly `now` has p_i == 0, but evicting it would
  // be absurd — in a real system wall-clock always advances between the
  // token and the next scheduling pass. The floor keeps every candidate
  // selectable while preserving the value ordering.
  c.pending_s = std::max(sr.PendingTime(now), 1e-4);
  const bool running = sr.phase == RequestPhase::kRunning;
  const int32_t tokens =
      running ? sr.cached_tokens + 1 : sr.PrefillTarget();
  c.m_tokens = tokens;
  c.m_blocks = assigner.BlocksNeeded(CacheType::kKV, tokens);
  c.current_type = sr.cache_type;
  // SLO-aware fallback trigger: a request still waiting for its first token
  // is judged against the TTFT SLO; one mid-decode against the TBT SLO.
  const double bound = sr.has_first_token ? slo.tbt_p99_s : slo.ttft_s;
  c.slo_violated = c.pending_s > bound;
  return c;
}

}  // namespace aptserve
