// AptScheduler: the paper's adaptive runtime scheduling mechanism (§5) on
// the hybrid cache. Each iteration it
//   1. decides the iteration type by comparing the cumulative pending time
//      of the waiting queue W against the running queue R;
//   2. solves the hybrid-cache-based scheduling problem (Definition 1) over
//      the chosen candidate set with the greedy 2-approximation;
//   3. emits the batch: selected waiting requests prefill with their
//      assigned cache type; selected running requests decode; running
//      requests selected with a different cache type are converted (cache
//      discarded, requeued for re-prefill); unselected running requests are
//      preempted so the chosen composition fits the memory constraint.
#pragma once

#include <unordered_map>
#include <utility>

#include "core/greedy_solver.h"
#include "core/length_predictor.h"
#include "sim/scheduler.h"

namespace aptserve {

struct AptConfig {
  SloSpec slo;
  /// 0 => violated requests demoted to epsilon (paper default); in (0,1] =>
  /// decay factor (Apt-Serve* of §6.6, e.g. 0.4).
  double violation_decay = 0.0;
  /// Disable hidden cache entirely (the Table 4 "KV Cache" ablation).
  bool enable_hidden = true;
  int32_t max_batch = 256;
  /// Cap on new tokens processed per prefill iteration (vLLM's
  /// max_num_batched_tokens). Without it a backlog drains as one enormous
  /// prefill that stalls every running decode past its TBT SLO.
  int32_t max_prefill_tokens = 2048;
  /// Fraction of the pool kept free at admission (vLLM's watermark) to
  /// absorb decode growth without immediate evictions.
  double admission_watermark = 0.0;
  /// Prediction-based extension (paper §7 future work, after S^3 [34] and
  /// learning-to-rank [27]): learn output lengths online from completed
  /// requests and account for each candidate's *predicted* final memory at
  /// admission, instead of only the memory used so far. Reduces
  /// admit-then-evict churn under long-output workloads.
  bool enable_prediction = false;
  /// Quantile of the learned output-length distribution used for the
  /// memory estimate (higher = more conservative admission).
  double prediction_quantile = 0.5;
};

class AptScheduler : public Scheduler {
 public:
  explicit AptScheduler(const AptConfig& config) : config_(config) {}

  BatchPlan PlanIteration(const SchedulerInput& input) override;
  std::string name() const override {
    return config_.enable_hidden ? "Apt-Serve" : "Apt-Serve(KV-only)";
  }

  const AptConfig& config() const { return config_; }
  const OutputLengthPredictor& predictor() const { return predictor_; }

 private:
  QuantificationConfig MakeQuantConfig(const SchedulerInput& input) const;
  BatchPlan PlanPrefill(const SchedulerInput& input,
                        const GreedySolver& solver) const;
  BatchPlan PlanDecode(const SchedulerInput& input,
                       const GreedySolver& solver) const;
  /// Learns output lengths from requests that left the system since the
  /// previous iteration.
  void UpdatePredictor(const SchedulerInput& input);

  AptConfig config_;
  OutputLengthPredictor predictor_;
  /// Last observed (prompt_len, generated) of every live request, used to
  /// detect completions (a request absent from both queues finished).
  std::unordered_map<RequestId, std::pair<int32_t, int32_t>> live_;
};

}  // namespace aptserve
