#include "core/apt_sarathi_scheduler.h"

#include <algorithm>
#include <numeric>

#include "core/runtime_tracker.h"

namespace aptserve {

BatchPlan AptSarathiScheduler::PlanIteration(const SchedulerInput& input) {
  BatchPlan plan;
  if (input.waiting.empty() && input.running.empty()) return plan;

  QuantificationConfig qc;
  qc.rho_seconds_per_token = input.cost_model->RhoSecondsPerToken();
  qc.num_requests_in_system =
      static_cast<int32_t>(input.waiting.size() + input.running.size());
  qc.violation_decay = config_.violation_decay;
  const QuantificationModel quant(qc);
  const GreedySolver solver(&quant);

  int32_t budget = config_.token_budget;
  int32_t free_blocks = input.pool->num_free();

  // Decode side: all running requests ride along unless their collective
  // growth does not fit, in which case the greedy selects who keeps memory
  // (same Definition 1 machinery as the base scheduler).
  int32_t growth_needed = 0;
  for (const SimRequest* r : input.running) {
    growth_needed +=
        input.assigner->BlocksToGrow(r->spec.id, r->cached_tokens + 1);
  }
  std::vector<const SimRequest*> decoding;
  if (growth_needed <= free_blocks || input.running.empty()) {
    decoding.assign(input.running.begin(), input.running.end());
    free_blocks -= growth_needed;
  } else {
    std::vector<CandidateInfo> cands;
    cands.reserve(input.running.size());
    for (const SimRequest* r : input.running) {
      cands.push_back(
          BuildCandidate(*r, input.now, *input.assigner, config_.slo));
    }
    const GreedySolution sol =
        solver.Solve(cands, input.pool->num_blocks());
    for (size_t i = 0; i < input.running.size(); ++i) {
      const SimRequest* r = input.running[i];
      const ScheduleDecision& d = sol.decisions[i];
      const CacheType want =
          d.use_hidden ? CacheType::kHidden : CacheType::kKV;
      if (d.selected && want == r->cache_type) {
        decoding.push_back(r);
      } else if (d.selected) {
        plan.preempt.push_back({r->spec.id, want});
        free_blocks += r->cache_type == CacheType::kKV
                           ? input.assigner->BlocksNeeded(CacheType::kKV,
                                                          r->cached_tokens)
                           : input.assigner->BlocksNeeded(CacheType::kHidden,
                                                          r->cached_tokens);
      } else {
        plan.preempt.push_back({r->spec.id, r->cache_type});
        free_blocks += r->cache_type == CacheType::kKV
                           ? input.assigner->BlocksNeeded(CacheType::kKV,
                                                          r->cached_tokens)
                           : input.assigner->BlocksNeeded(CacheType::kHidden,
                                                          r->cached_tokens);
      }
    }
    for (const SimRequest* r : decoding) {
      free_blocks -=
          input.assigner->BlocksToGrow(r->spec.id, r->cached_tokens + 1);
    }
    free_blocks = std::max(free_blocks, 0);
  }
  for (const SimRequest* r : decoding) {
    if (static_cast<int32_t>(plan.items.size()) >= config_.max_batch) break;
    if (budget <= 0) break;
    plan.items.push_back({r->spec.id, r->cache_type, 0});
    --budget;
  }

  if (budget <= 0 || input.waiting.empty()) return plan;

  // Prefill side: greedy value/density selection over the waiting queue
  // with hidden-cache assignment, then chunk the winners into the leftover
  // budget in density order.
  std::vector<CandidateInfo> wcands;
  wcands.reserve(input.waiting.size());
  for (const SimRequest* w : input.waiting) {
    wcands.push_back(
        BuildCandidate(*w, input.now, *input.assigner, config_.slo));
  }
  const GreedySolution wsol = solver.Solve(wcands, free_blocks);

  // Order selected waiting requests by value density, highest first.
  std::vector<size_t> order;
  for (size_t i = 0; i < wcands.size(); ++i) {
    if (wsol.decisions[i].selected) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const double da =
        quant.EffectivePending(wcands[a]) / std::max(1, wcands[a].m_blocks);
    const double db =
        quant.EffectivePending(wcands[b]) / std::max(1, wcands[b].m_blocks);
    return da > db;
  });

  for (size_t idx : order) {
    if (static_cast<int32_t>(plan.items.size()) >= config_.max_batch) break;
    if (budget <= 0) break;
    const SimRequest* w = input.waiting[idx];
    const int32_t remaining = w->PrefillTarget() - w->prefill_progress;
    const int32_t chunk = std::min(budget, remaining);
    if (chunk <= 0) continue;
    // Mid-pass chunked requests must keep their existing cache type; fresh
    // requests take the solver's assignment.
    const CacheType type = input.assigner->Has(w->spec.id)
                               ? w->cache_type
                               : (wsol.decisions[idx].use_hidden
                                      ? CacheType::kHidden
                                      : CacheType::kKV);
    plan.items.push_back({w->spec.id, type, chunk});
    budget -= chunk;
  }

  // Deadlock breaker (same as the Sarathi baseline): if nothing is
  // runnable while partially-prefilled waiting requests hold pool memory,
  // evict the lowest-value one so progress resumes.
  if (plan.items.empty() && plan.preempt.empty()) {
    const SimRequest* victim = nullptr;
    double victim_density = 0.0;
    for (size_t i = 0; i < input.waiting.size(); ++i) {
      const SimRequest* w = input.waiting[i];
      if (!input.assigner->Has(w->spec.id)) continue;
      const double density = quant.EffectivePending(wcands[i]) /
                             std::max(1, wcands[i].m_blocks);
      if (victim == nullptr || density < victim_density) {
        victim = w;
        victim_density = density;
      }
    }
    if (victim != nullptr) {
      plan.preempt.push_back({victim->spec.id, victim->cache_type});
    }
  }
  return plan;
}

}  // namespace aptserve
