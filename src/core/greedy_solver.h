// GreedySolver: the 2-approximation for the hybrid-cache-based scheduling
// problem (paper Definition 1 and §5). Each candidate request contributes
// marginal steps:
//   - hidden profitable (p >= 2*N*rho*m): step A 0 -> m/2 with gain
//     p - N*rho*m (hidden schedule), then step B m/2 -> m with gain
//     N*rho*m (upgrade to KV);
//   - otherwise: one direct step 0 -> m with gain p (KV schedule).
// Steps are consumed in decreasing marginal-gain density theta; the final
// answer is the better of the greedy fill and the best single feasible
// schedule, the classic density-greedy guard that yields the factor-2
// approximation bound (verified empirically against the exact DP solver in
// the property tests).
#pragma once

#include <vector>

#include "core/quantification.h"

namespace aptserve {

/// Per-candidate decision (alpha_i, beta_i) of Definition 1.
struct ScheduleDecision {
  bool selected = false;     ///< alpha_i
  bool use_hidden = false;   ///< beta_i
};

struct GreedySolution {
  std::vector<ScheduleDecision> decisions;  ///< parallel to the input.
  double total_value = 0.0;
  int32_t used_blocks = 0;
};

class GreedySolver {
 public:
  explicit GreedySolver(const QuantificationModel* model) : model_(model) {}

  /// Solves Definition 1 over `candidates` with memory budget
  /// `capacity_blocks`. m_blocks must be even (KV blocks come in K+V pairs).
  GreedySolution Solve(const std::vector<CandidateInfo>& candidates,
                       int32_t capacity_blocks) const;

 private:
  const QuantificationModel* model_;
};

/// Exact solver via dynamic programming over the block budget: each
/// candidate picks one of {skip, hidden (w = m/2, v = p - N*rho*m),
/// KV (w = m, v = p)}. Exponentially safer reference for small instances;
/// used by tests to validate the greedy's 2-approximation bound.
GreedySolution SolveExact(const QuantificationModel& model,
                          const std::vector<CandidateInfo>& candidates,
                          int32_t capacity_blocks);

}  // namespace aptserve
