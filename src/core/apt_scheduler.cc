#include "core/apt_scheduler.h"

#include <algorithm>

#include "core/runtime_tracker.h"

namespace aptserve {

QuantificationConfig AptScheduler::MakeQuantConfig(
    const SchedulerInput& input) const {
  QuantificationConfig qc;
  // Disabling hidden cache is modeled as an unaffordable penalty, which
  // makes the solver collapse to the pure 0-1 knapsack special case the
  // paper uses in its NP-hardness argument.
  qc.rho_seconds_per_token = config_.enable_hidden
                                 ? input.cost_model->RhoSecondsPerToken()
                                 : 1e18;
  qc.num_requests_in_system =
      static_cast<int32_t>(input.waiting.size() + input.running.size());
  qc.violation_decay = config_.violation_decay;
  return qc;
}

void AptScheduler::UpdatePredictor(const SchedulerInput& input) {
  std::unordered_map<RequestId, std::pair<int32_t, int32_t>> current;
  for (const SimRequest* sr : input.waiting) {
    current[sr->spec.id] = {sr->spec.prompt_len, sr->generated};
  }
  for (const SimRequest* sr : input.running) {
    current[sr->spec.id] = {sr->spec.prompt_len, sr->generated};
  }
  for (const auto& [id, pg] : live_) {
    if (!current.count(id)) {
      // Left the system since last iteration => finished with pg.second
      // output tokens.
      predictor_.Observe(pg.first, pg.second);
    }
  }
  live_ = std::move(current);
}

BatchPlan AptScheduler::PlanIteration(const SchedulerInput& input) {
  BatchPlan plan;
  if (config_.enable_prediction) UpdatePredictor(input);
  if (input.waiting.empty() && input.running.empty()) return plan;

  // Stage 1: iteration type by cumulative pending time (urgency) of the two
  // queues.
  double waiting_pending = 0.0, running_pending = 0.0;
  for (const SimRequest* w : input.waiting) {
    waiting_pending += w->PendingTime(input.now);
  }
  for (const SimRequest* r : input.running) {
    running_pending += r->PendingTime(input.now);
  }
  bool prefill_iter;
  if (input.running.empty()) {
    prefill_iter = true;
  } else if (input.waiting.empty()) {
    prefill_iter = false;
  } else {
    prefill_iter = waiting_pending > running_pending;
  }

  const QuantificationModel quant(MakeQuantConfig(input));
  const GreedySolver solver(&quant);

  if (prefill_iter) {
    plan = PlanPrefill(input, solver);
    // A prefill iteration that cannot place any request (memory wall) must
    // fall back to decoding: decode frees memory by finishing requests,
    // whereas repeating the empty prefill would deadlock the system.
    if (!plan.items.empty() || input.running.empty()) return plan;
  }
  return PlanDecode(input, solver);
}

BatchPlan AptScheduler::PlanPrefill(const SchedulerInput& input,
                                    const GreedySolver& solver) const {
  BatchPlan plan;
  std::vector<CandidateInfo> candidates;
  candidates.reserve(input.waiting.size());
  for (const SimRequest* sr : input.waiting) {
    CandidateInfo c =
        BuildCandidate(*sr, input.now, *input.assigner, config_.slo);
    if (config_.enable_prediction) {
      // Account for the memory the request is *predicted* to reach, not
      // just its current size: m_i covers the prompt plus the expected
      // remaining output.
      const double predicted_out = predictor_.PredictQuantile(
          sr->spec.prompt_len, config_.prediction_quantile);
      const int32_t remaining = std::max(
          0, static_cast<int32_t>(predicted_out) - sr->generated);
      c.m_tokens += remaining;
      c.m_blocks =
          input.assigner->BlocksNeeded(CacheType::kKV, c.m_tokens);
    }
    candidates.push_back(c);
  }
  // M_e for prefill iterations: the pool minus what running requests hold,
  // less a small watermark (as in vLLM) so ongoing decode growth does not
  // immediately force evictions after an aggressive admission.
  const int32_t watermark =
      static_cast<int32_t>(config_.admission_watermark *
                           input.pool->num_blocks());
  const int32_t capacity =
      std::max(0, input.pool->num_free() - watermark);
  const GreedySolution sol = solver.Solve(candidates, capacity);
  int32_t batched = 0;
  int64_t prefill_tokens = 0;
  for (size_t i = 0; i < input.waiting.size(); ++i) {
    const SimRequest* sr = input.waiting[i];
    const ScheduleDecision& d = sol.decisions[i];
    if (!d.selected || batched >= config_.max_batch) continue;
    const int32_t chunk = sr->PrefillTarget() - sr->prefill_progress;
    // Token budget per prefill iteration; always admit at least one request
    // so oversized single prompts still run.
    if (batched > 0 && prefill_tokens + chunk > config_.max_prefill_tokens) {
      continue;
    }
    prefill_tokens += chunk;
    // A partially prefilled request must keep its existing cache type; a
    // fresh or fully-preempted one takes the solver's assignment.
    const CacheType want =
        d.use_hidden ? CacheType::kHidden : CacheType::kKV;
    const CacheType type =
        input.assigner->Has(sr->spec.id) ? sr->cache_type : want;
    plan.items.push_back(
        {sr->spec.id, type, sr->PrefillTarget() - sr->prefill_progress});
    ++batched;
  }
  return plan;
}

BatchPlan AptScheduler::PlanDecode(const SchedulerInput& input,
                                   const GreedySolver& solver) const {
  BatchPlan plan;
  // Fast path: if this iteration's cache growth fits in the free blocks,
  // every running request decodes — evicting earlier than physically
  // necessary wastes a full re-prefill on a request that may well finish
  // (and free its memory) on its own.
  int32_t growth = 0;
  for (const SimRequest* sr : input.running) {
    growth += input.assigner->BlocksToGrow(sr->spec.id,
                                           sr->cached_tokens + 1);
  }
  if (growth <= input.pool->num_free()) {
    int32_t batched = 0;
    for (const SimRequest* sr : input.running) {
      if (batched >= config_.max_batch) break;
      plan.items.push_back({sr->spec.id, sr->cache_type, 0});
      ++batched;
    }
    return plan;
  }

  std::vector<CandidateInfo> candidates;
  candidates.reserve(input.running.size());
  for (const SimRequest* sr : input.running) {
    CandidateInfo c =
        BuildCandidate(*sr, input.now, *input.assigner, config_.slo);
    // In-place type switches are off the table for running requests (see
    // below); the solver weighs each by its actual current footprint.
    c.type_fixed = true;
    candidates.push_back(c);
  }
  // M_e for decode iterations: the whole pool — the solver decides who
  // keeps memory (Definition 1).
  const GreedySolution sol =
      solver.Solve(candidates, input.pool->num_blocks());
  int32_t batched = 0;
  for (size_t i = 0; i < input.running.size(); ++i) {
    const SimRequest* sr = input.running[i];
    const ScheduleDecision& d = sol.decisions[i];
    if (d.selected) {
      // Selected requests keep their memory and decode with their current
      // cache type. The solver's beta decision is not applied in place:
      // switching types mid-flight costs a full discard-and-re-prefill
      // (paper §5), which dwarfs the per-iteration gain the value model
      // prices. Type reassignment instead happens for free at the next
      // (re-)prefill of evicted or newly arriving requests — the paper's
      // "assign hidden cache for certain subsequent requests directly from
      // the outset" path.
      if (batched < config_.max_batch) {
        plan.items.push_back({sr->spec.id, sr->cache_type, 0});
        ++batched;
      }
      // Over the batch cap: keep the cache (it was counted against the
      // memory constraint) and stall one iteration.
    } else {
      // Not selected: evict so the chosen composition satisfies Eq. 7. The
      // resume prefill re-decides the cache type (an eviction resumed as
      // hidden is the paper's "reassign hidden cache usage in place of KV
      // cache usage for some ongoing requests", with the recompute cost
      // already sunk in the preemption).
      plan.preempt.push_back({sr->spec.id, sr->cache_type});
    }
  }
  return plan;
}

}  // namespace aptserve
