// QuantificationModel: paper §4.2. Turns tracked runtime information
// (pending time p_i, max memory requirement m_i) into the scheduling value
//   g_i = p_i - beta_i * (|W| + |R|) * rho * m_i          (Eq. 5-6)
// with the SLO-aware fallback: requests that have already violated their
// SLO get demoted (value replaced by a near-zero constant, or multiplied by
// a decay factor in the Apt-Serve* variant of §6.6).
#pragma once

#include <cstdint>

#include "cache/cache_types.h"
#include "common/types.h"
#include "sim/metrics.h"

namespace aptserve {

/// One candidate request's tracked runtime information at an iteration.
struct CandidateInfo {
  RequestId id = kInvalidRequestId;
  /// Pending time p_i in seconds (time since arrival if no token yet, else
  /// time since the last emitted token).
  double pending_s = 0.0;
  /// Maximum memory requirement m_i in pool blocks — the KV-cache size of
  /// the request's current sequence (hidden = half of this).
  int32_t m_blocks = 0;
  /// Sequence length in tokens (the linear cost model t_i = rho * len).
  int32_t m_tokens = 0;
  /// Whether the request has already violated its latency SLO.
  bool slo_violated = false;
  /// Cache type currently held (running requests) or requested (waiting).
  CacheType current_type = CacheType::kKV;
  /// When true the solver may only schedule the request with current_type
  /// (used for decode iterations, where a type switch would require a
  /// discard-and-re-prefill and is therefore not an in-place option):
  /// weight is the current type's footprint, beta is fixed.
  bool type_fixed = false;
};

struct QuantificationConfig {
  /// rho: extra iteration seconds per cached token of hidden-cache usage
  /// (Eq. 6), from CostModel::RhoSecondsPerToken() or the engine's
  /// RhoCalibrator.
  double rho_seconds_per_token = 0.0;
  /// |W| + |R|: the penalty scaling factor of Eq. 5 (hidden-cache slowdown
  /// is perceived by every request in the system).
  int32_t num_requests_in_system = 1;
  /// 0 => demote violated requests to `epsilon` (the paper's default);
  /// in (0,1] => multiply their value by this factor (Apt-Serve*, §6.6).
  double violation_decay = 0.0;
  double epsilon = 1e-6;
};

class QuantificationModel {
 public:
  explicit QuantificationModel(const QuantificationConfig& config)
      : config_(config) {}

  /// Effective pending value after the SLO-aware fallback.
  double EffectivePending(const CandidateInfo& c) const {
    if (!c.slo_violated) return c.pending_s;
    if (config_.violation_decay > 0.0) {
      return c.pending_s * config_.violation_decay;
    }
    return config_.epsilon;
  }

  /// Scheduling value g_i for the given hidden-cache decision (Eq. 5).
  double Value(const CandidateInfo& c, bool hidden) const {
    const double p = EffectivePending(c);
    if (!hidden) return p;
    return p - HiddenPenalty(c);
  }

  /// The Eq. 5 penalty term beta*(|W|+|R|)*rho*m_i.
  double HiddenPenalty(const CandidateInfo& c) const {
    return static_cast<double>(config_.num_requests_in_system) *
           config_.rho_seconds_per_token * static_cast<double>(c.m_tokens);
  }

  /// Paper §5: hidden-cache usage is avoided for request i when the
  /// marginal gain of the half-memory step is below that of the direct
  /// full-memory KV step, which reduces to p_i < 2*(|W|+|R|)*rho*m_i.
  bool HiddenProfitable(const CandidateInfo& c) const {
    return EffectivePending(c) >= 2.0 * HiddenPenalty(c);
  }

  const QuantificationConfig& config() const { return config_; }

 private:
  QuantificationConfig config_;
};

}  // namespace aptserve
