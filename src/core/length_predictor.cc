#include "core/length_predictor.h"

#include <algorithm>

#include "common/logging.h"

namespace aptserve {

OutputLengthPredictor::OutputLengthPredictor(int32_t max_prompt_len,
                                             int32_t buckets)
    : max_prompt_len_(max_prompt_len), bucket_samples_(buckets) {
  APT_CHECK(max_prompt_len > 0 && buckets > 0);
}

int32_t OutputLengthPredictor::BucketOf(int32_t prompt_len) const {
  const int32_t n = static_cast<int32_t>(bucket_samples_.size());
  const int32_t idx =
      static_cast<int32_t>(static_cast<int64_t>(std::max(prompt_len, 0)) * n /
                           max_prompt_len_);
  return std::clamp(idx, 0, n - 1);
}

void OutputLengthPredictor::Observe(int32_t prompt_len, int32_t output_len) {
  bucket_samples_[BucketOf(prompt_len)].Add(output_len);
  global_.Add(output_len);
  ++total_;
}

double OutputLengthPredictor::PredictMean(int32_t prompt_len,
                                          double default_len) const {
  const SampleSet& bucket = bucket_samples_[BucketOf(prompt_len)];
  // Require a handful of observations before trusting a bucket.
  if (bucket.count() >= 5) return bucket.Mean();
  if (global_.count() >= 5) return global_.Mean();
  return default_len;
}

double OutputLengthPredictor::PredictQuantile(int32_t prompt_len, double q,
                                              double default_len) const {
  const SampleSet& bucket = bucket_samples_[BucketOf(prompt_len)];
  if (bucket.count() >= 10) return bucket.Quantile(q);
  if (global_.count() >= 10) return global_.Quantile(q);
  return default_len;
}

}  // namespace aptserve
