// OutputLengthPredictor: the paper's §7 points at S^3 [34] and
// learning-to-rank [27] as prediction-based extensions that could feed the
// scheduler expected output lengths. This implements the simplest useful
// member of that family — an online quantile/mean estimator over completed
// requests, bucketed by prompt length — and a predictive variant of the
// Apt scheduler that uses it to account for *future* memory growth in m_i
// (the base scheduler only sees memory used "so far").
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"

namespace aptserve {

class OutputLengthPredictor {
 public:
  /// `buckets` prompt-length buckets spanning [0, max_prompt_len).
  explicit OutputLengthPredictor(int32_t max_prompt_len = 2048,
                                 int32_t buckets = 8);

  /// Records a completed request's observed output length.
  void Observe(int32_t prompt_len, int32_t output_len);

  /// Predicted output length for a prompt of the given length: the bucket
  /// mean, falling back to the global mean, falling back to `default_len`.
  double PredictMean(int32_t prompt_len, double default_len = 128.0) const;

  /// Conservative prediction: the bucket's q-quantile (memory planning
  /// wants an upper-ish estimate). Falls back like PredictMean.
  double PredictQuantile(int32_t prompt_len, double q,
                         double default_len = 128.0) const;

  int64_t observations() const { return total_; }

 private:
  int32_t BucketOf(int32_t prompt_len) const;

  int32_t max_prompt_len_;
  std::vector<SampleSet> bucket_samples_;
  SampleSet global_;
  int64_t total_ = 0;
};

}  // namespace aptserve
