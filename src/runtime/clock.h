#pragma once

#include <chrono>

namespace aptserve::runtime {

/// Time source seam for the serving layer. The simulator's virtual clock is
/// the pinned deterministic reference: it advances only when the serving
/// loop says so, so every run of a trace replays identically. The monotonic
/// clock reads the host's steady clock and drives the async wall-clock
/// serving mode, where latency is measured for real. Both report seconds as
/// double from an arbitrary epoch — only differences are meaningful.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in seconds. Thread-safe for MonotonicClock; VirtualClock
  /// may only be advanced from one thread at a time.
  virtual double Now() const = 0;
  /// True when Now() reflects real elapsed time on this host.
  virtual bool is_wall() const = 0;
};

/// Deterministic clock owned by its driver: reads return whatever the
/// driver last set. This is the reference mode — a trace replayed under a
/// VirtualClock produces bit-identical schedules, tokens, and metrics.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(double start = 0.0) : now_(start) {}
  double Now() const override { return now_; }
  bool is_wall() const override { return false; }
  /// Moves time forward (monotone; backwards moves are clamped to now).
  void AdvanceTo(double t) {
    if (t > now_) now_ = t;
  }

 private:
  double now_ = 0.0;
};

/// Real time from std::chrono::steady_clock, rebased so the first reading
/// after construction is ~0. Thread-safe (the epoch is immutable).
class MonotonicClock final : public Clock {
 public:
  MonotonicClock() : epoch_(std::chrono::steady_clock::now()) {}
  double Now() const override {
    const auto dt = std::chrono::steady_clock::now() - epoch_;
    return std::chrono::duration<double>(dt).count();
  }
  bool is_wall() const override { return true; }

 private:
  const std::chrono::steady_clock::time_point epoch_;
};

}  // namespace aptserve::runtime
