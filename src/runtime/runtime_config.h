// RuntimeConfig: the knobs of the shared parallel runtime layer. Every
// facade (Simulator, ServingEngine, MultiInstanceSimulator) carries one and
// threads it down to the ThreadPool that kernels, the engine's batch
// executor, and the multi-instance fleet run on.
#pragma once

#include <cstdint>
#include <string>

namespace aptserve {
namespace runtime {

struct RuntimeConfig {
  /// Worker threads available to ParallelFor (including the calling
  /// thread). Semantics:
  ///   * 0 (the default) — resolve from the APTSERVE_NUM_THREADS
  ///     environment variable; when unset, 1. Existing callers therefore
  ///     see exactly the serial behavior they always had, while CI can
  ///     re-run the whole suite under threads without touching tests.
  ///   * 1 — serial execution, no pool is created.
  ///   * > 1 — a pool with that many participants.
  ///   * < 0 — std::thread::hardware_concurrency().
  int32_t num_threads = 0;

  /// Determinism contract flag. Everything the runtime ships today is
  /// bit-stable at any thread count regardless of this flag (kernels keep
  /// the scalar accumulation order per output element; the engine samples
  /// tokens behind a serial barrier; the fleet merges behind an epoch
  /// barrier). What the flag pins is the *schedule*: true (default) uses a
  /// static contiguous split of the index range so the thread→chunk mapping
  /// is reproducible run to run (useful under TSan and when bisecting);
  /// false lets the pool claim chunks dynamically (work stealing), which
  /// load-balances better when iteration costs are skewed.
  bool deterministic = true;

  /// The thread count after applying the resolution rules above; >= 1.
  int32_t ResolvedNumThreads() const;

  /// One-line description of the resolved runtime, including the kernel
  /// backend the ops dispatch layer selected at build time, e.g.
  /// "threads=4 isa=avx2+fma width=8". Benches stamp this into snapshots.
  std::string Describe() const;
};

}  // namespace runtime

using runtime::RuntimeConfig;

}  // namespace aptserve
