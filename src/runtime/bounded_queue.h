#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace aptserve::runtime {

/// Bounded multi-producer single/multi-consumer blocking queue — the fabric
/// between the async serving controller and its per-instance workers.
/// Push blocks when the queue is at capacity (backpressure toward the
/// arrival feeder), Pop blocks until an item or Close() arrives. Close()
/// wakes everyone: producers fail fast, consumers drain what is left and
/// then see std::nullopt. All operations are linearizable under one mutex —
/// this queue carries requests (milliseconds apart), not tokens, so a lock
/// beats a lock-free ring on simplicity and TSan-provability.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. Returns false (item dropped) once closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: false when full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (items_.size() > high_water_) high_water_ = items_.size();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    return PopLocked(&lock);
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    return PopLocked(&lock);
  }

  /// Pop with a deadline: std::nullopt on timeout or closed-and-drained.
  std::optional<T> PopFor(std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, timeout,
                        [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    return PopLocked(&lock);
  }

  /// Removes every queued item at once (closed or not). Cheaper than a
  /// TryPop loop for a worker that injects a whole arrival burst mid-step.
  std::vector<T> DrainNow() {
    std::vector<T> out;
    {
      std::lock_guard<std::mutex> lock(mu_);
      out.reserve(items_.size());
      while (!items_.empty()) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
      }
    }
    not_full_.notify_all();
    return out;
  }

  /// Marks the queue closed and wakes all waiters. Items already queued
  /// remain poppable; further pushes fail. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Deepest the queue has ever been — the backpressure witness that a
  /// bounded queue actually bounded something.
  size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

  size_t capacity() const { return capacity_; }

 private:
  std::optional<T> PopLocked(std::unique_lock<std::mutex>* lock) {
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock->unlock();
    not_full_.notify_one();
    return item;
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  size_t high_water_ = 0;
};

}  // namespace aptserve::runtime
