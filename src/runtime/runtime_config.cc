#include "runtime/runtime_config.h"

#include <cstdlib>
#include <thread>

#include "common/env.h"
#include "common/logging.h"
#include "engine/ops.h"

namespace aptserve {
namespace runtime {

int32_t RuntimeConfig::ResolvedNumThreads() const {
  int32_t n = num_threads;
  if (n == 0) {
    if (const char* text = std::getenv("APTSERVE_NUM_THREADS")) {
      // Strict whole-token parse: strtol with a null end pointer used to
      // absorb "four" as 0 (→ unset) and "4x" as 4 without any signal.
      if (auto parsed = env::ParseInt64(text)) {
        n = static_cast<int32_t>(*parsed);
      } else {
        static bool warned = false;
        if (!warned) {
          warned = true;
          APT_LOG(Warning) << "ignoring unparseable APTSERVE_NUM_THREADS=\""
                           << text << "\" (want an integer); running serial";
        }
      }
    }
    if (n == 0) n = 1;
  }
  if (n < 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n = hw > 0 ? static_cast<int32_t>(hw) : 1;
  }
  return n < 1 ? 1 : n;
}

std::string RuntimeConfig::Describe() const {
  return "threads=" + std::to_string(ResolvedNumThreads()) +
         " isa=" + ops::ActiveIsa() +
         " width=" + std::to_string(ops::VectorWidthFloats());
}

}  // namespace runtime
}  // namespace aptserve
