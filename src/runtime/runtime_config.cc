#include "runtime/runtime_config.h"

#include <cstdlib>
#include <thread>

#include "engine/ops.h"

namespace aptserve {
namespace runtime {

int32_t RuntimeConfig::ResolvedNumThreads() const {
  int32_t n = num_threads;
  if (n == 0) {
    if (const char* env = std::getenv("APTSERVE_NUM_THREADS")) {
      n = static_cast<int32_t>(std::strtol(env, nullptr, 10));
    }
    if (n == 0) n = 1;
  }
  if (n < 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n = hw > 0 ? static_cast<int32_t>(hw) : 1;
  }
  return n < 1 ? 1 : n;
}

std::string RuntimeConfig::Describe() const {
  return "threads=" + std::to_string(ResolvedNumThreads()) +
         " isa=" + ops::ActiveIsa() +
         " width=" + std::to_string(ops::VectorWidthFloats());
}

}  // namespace runtime
}  // namespace aptserve
