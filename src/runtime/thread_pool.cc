#include "runtime/thread_pool.h"

#include <algorithm>

namespace aptserve {
namespace runtime {

namespace {
/// The pool the current thread is executing a chunk for; nested
/// ParallelFor calls on the same pool run inline.
thread_local ThreadPool* tls_current_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(const RuntimeConfig& config)
    : num_threads_(config.ResolvedNumThreads()),
      deterministic_(config.deterministic) {
  workers_.reserve(num_threads_ - 1);
  for (int32_t i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunOneChunk(Job* job, int64_t chunk_index) {
  if (!job->aborted.load(std::memory_order_relaxed)) {
    const int64_t lo = job->begin + chunk_index * job->chunk;
    const int64_t hi = std::min<int64_t>(lo + job->chunk, job->end);
    try {
      (*job->body)(lo, hi);
    } catch (...) {
      {
        std::lock_guard<std::mutex> el(job->error_mutex);
        if (!job->error) job->error = std::current_exception();
      }
      job->aborted.store(true, std::memory_order_release);
    }
  }
  const int64_t done =
      job->chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (done == job->num_chunks) {
    // Empty critical section: pairs the state change with the caller's
    // predicate re-check so the wakeup cannot be missed.
    std::lock_guard<std::mutex> lk(mutex_);
    cv_done_.notify_all();
  }
}

void ThreadPool::RunChunks(Job* job, int32_t participant) {
  if (job->is_static) {
    // Static contiguous split: participant p owns chunk p. Reproducible
    // thread->range mapping; at most num_threads() chunks exist.
    if (participant < job->num_chunks) RunOneChunk(job, participant);
    return;
  }
  for (;;) {
    const int64_t c = job->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job->num_chunks) return;
    RunOneChunk(job, c);
  }
}

void ThreadPool::WorkerLoop(int32_t worker_index) {
  uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_work_.wait(lk, [&] {
        return stop_ || (current_ != nullptr && job_seq_ != seen);
      });
      if (stop_) return;
      job = current_;
      seen = job_seq_;
      ++job_refs_;
    }
    tls_current_pool = this;
    RunChunks(job, worker_index + 1);
    tls_current_pool = nullptr;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (--job_refs_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const RangeBody& body) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  // Inline when serial, nested on this pool, or too small to split.
  if (workers_.empty() || tls_current_pool == this || n <= grain) {
    body(begin, end);
    return;
  }

  std::lock_guard<std::mutex> submit(submit_mutex_);
  Job job;
  job.begin = begin;
  job.end = end;
  job.body = &body;
  job.is_static = deterministic_;
  if (job.is_static) {
    int64_t pieces = n / grain;
    if (pieces < 1) pieces = 1;
    if (pieces > num_threads_) pieces = num_threads_;
    job.num_chunks = pieces;
    job.chunk = (n + pieces - 1) / pieces;
  } else {
    job.chunk = grain;
    job.num_chunks = (n + grain - 1) / grain;
  }

  {
    std::lock_guard<std::mutex> lk(mutex_);
    current_ = &job;
    ++job_seq_;
  }
  cv_work_.notify_all();

  // The caller is participant 0 and always has work under the static split.
  ThreadPool* prev = tls_current_pool;
  tls_current_pool = this;
  RunChunks(&job, 0);
  tls_current_pool = prev;

  {
    std::unique_lock<std::mutex> lk(mutex_);
    cv_done_.wait(lk, [&] {
      return job.chunks_done.load(std::memory_order_acquire) ==
                 job.num_chunks &&
             job_refs_ == 0;
    });
    current_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

void ThreadPool::ParallelForEach(int64_t begin, int64_t end, int64_t grain,
                                 const std::function<void(int64_t)>& fn) {
  ParallelFor(begin, end, grain, [&fn](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace runtime
}  // namespace aptserve
