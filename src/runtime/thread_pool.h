// ThreadPool: the fork-join parallel-execution primitive of the runtime
// layer, a ParallelFor over an index range. Kernels (engine/ops), the
// engine's batch executor and the multi-instance fleet all run on it. The
// async serving mode (serve/async_serving.h) additionally runs long-lived
// per-instance worker threads that communicate over BoundedQueue
// (runtime/bounded_queue.h); each such worker drives its own engine, whose
// intra-op parallelism still comes from this pool.
//
// Design points:
//   * The calling thread participates, so a pool of N threads spawns N-1
//     workers and ParallelFor never context-switches for small ranges.
//   * Nested ParallelFor calls from inside a chunk run inline on the
//     calling thread — intra-op parallelism composes with item-level
//     parallelism without deadlock or oversubscription.
//   * Exceptions thrown by the body are captured and the first one is
//     rethrown on the calling thread after the join; remaining chunks are
//     skipped (counted, not executed). The pool stays usable.
//   * RuntimeConfig::deterministic selects a static contiguous split
//     (reproducible thread→chunk mapping) versus dynamic chunk claiming
//     (better load balance for skewed iteration costs). Outputs are
//     bit-identical either way for independent iterations.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/runtime_config.h"

namespace aptserve {
namespace runtime {

class ThreadPool {
 public:
  explicit ThreadPool(const RuntimeConfig& config = RuntimeConfig{});
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Participants (workers + the calling thread); >= 1.
  int32_t num_threads() const { return num_threads_; }
  bool deterministic() const { return deterministic_; }

  /// Range body: invoked with a half-open sub-range [lo, hi) of the index
  /// space. Bodies loop over their sub-range themselves, so there is no
  /// per-index std::function dispatch on the hot path.
  using RangeBody = std::function<void(int64_t lo, int64_t hi)>;

  /// Runs `body` over [begin, end), split into chunks of at least `grain`
  /// indices, and blocks until every index has been covered. The calling
  /// thread participates. begin >= end is a no-op. Concurrent top-level
  /// calls from different threads are serialized (one job at a time);
  /// nested calls from inside a chunk run inline.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const RangeBody& body);

  /// Per-index convenience wrapper over ParallelFor.
  void ParallelForEach(int64_t begin, int64_t end, int64_t grain,
                       const std::function<void(int64_t)>& fn);

 private:
  struct Job {
    int64_t begin = 0;
    int64_t chunk = 1;          ///< indices per chunk
    int64_t num_chunks = 0;
    const RangeBody* body = nullptr;
    std::atomic<int64_t> next{0};        ///< dynamic claiming cursor
    std::atomic<int64_t> chunks_done{0};
    std::atomic<bool> aborted{false};
    std::mutex error_mutex;
    std::exception_ptr error;
    bool is_static = true;
    int64_t end = 0;  ///< exclusive range end (last chunk may be short)
  };

  void WorkerLoop(int32_t worker_index);
  /// Executes the chunks assigned to `participant` (0 = caller).
  void RunChunks(Job* job, int32_t participant);
  void RunOneChunk(Job* job, int64_t chunk_index);

  int32_t num_threads_;
  bool deterministic_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  Job* current_ = nullptr;
  uint64_t job_seq_ = 0;
  int32_t job_refs_ = 0;  ///< workers currently holding current_
  bool stop_ = false;

  /// Serializes top-level ParallelFor submissions.
  std::mutex submit_mutex_;
};

/// Helper for code taking an optional pool: runs `body` over [begin, end)
/// on `pool` when it is non-null and has workers, inline otherwise.
inline void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                        int64_t grain, const ThreadPool::RangeBody& body) {
  if (end <= begin) return;
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(begin, end, grain, body);
  } else {
    body(begin, end);
  }
}

}  // namespace runtime
}  // namespace aptserve
