// Extending the library: writing your own scheduler.
//
// The Scheduler interface is the seam the whole system is built around —
// this example implements SJF (shortest-prompt-first) admission with
// KV-only caching in ~40 lines, plugs it into the simulator, and races it
// against FCFS and Apt-Serve. Use this as the template for experimenting
// with new policies on the same substrate the paper's evaluation uses.
//
// Build & run:  ./build/examples/custom_scheduler
#include <algorithm>
#include <cstdio>

#include "baselines/fcfs_scheduler.h"
#include "core/apt_scheduler.h"
#include "sim/simulator.h"
#include "workload/trace.h"

using namespace aptserve;

namespace {

/// Shortest-Job-First admission: prefer the waiting requests with the
/// smallest prompts (cheap prefills, small caches). Decodes run for all.
class SjfScheduler : public Scheduler {
 public:
  BatchPlan PlanIteration(const SchedulerInput& input) override {
    BatchPlan plan;
    std::vector<const SimRequest*> waiting(input.waiting);
    std::sort(waiting.begin(), waiting.end(),
              [](const SimRequest* a, const SimRequest* b) {
                return a->PrefillTarget() < b->PrefillTarget();
              });
    int32_t free_blocks = input.pool->num_free();
    int64_t tokens = 0;
    for (const SimRequest* w : waiting) {
      const int32_t target = w->PrefillTarget();
      if (tokens + target > 2048 && !plan.items.empty()) break;
      const int32_t need =
          input.assigner->BlocksNeeded(CacheType::kKV, target);
      if (need > free_blocks) continue;
      plan.items.push_back({w->spec.id, CacheType::kKV, target});
      free_blocks -= need;
      tokens += target;
    }
    if (!plan.items.empty()) return plan;
    for (const SimRequest* r : input.running) {
      plan.items.push_back({r->spec.id, r->cache_type, 0});
    }
    return plan;
  }
  std::string name() const override { return "SJF"; }
};

}  // namespace

int main() {
  const SloSpec slo{1.0, 1.0};
  const ModelSpec model = ModelSpec::Opt13B();
  CostModel cost(model, ClusterSpec::ForModel(model));

  TraceConfig tc;
  tc.profile = DatasetProfile::ShareGpt();
  tc.num_requests = 400;
  tc.rate_per_sec = 4.0;
  tc.seed = 8;
  auto trace = BuildTrace(tc);
  if (!trace.ok()) return 1;

  FcfsScheduler fcfs;
  SjfScheduler sjf;
  AptConfig ac;
  ac.slo = slo;
  AptScheduler apt(ac);

  std::printf("Custom scheduler demo (ShareGPT @ 4 req/s, OPT-13B)\n");
  for (Scheduler* sched :
       {static_cast<Scheduler*>(&fcfs), static_cast<Scheduler*>(&sjf),
        static_cast<Scheduler*>(&apt)}) {
    Simulator sim(cost, SimulatorConfig{});
    auto result = sim.Run(*trace, sched, slo);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", sched->name().c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("[%-10s] SLO=%5.1f%% TTFT=%5.1f%% TBT=%5.1f%%\n",
                sched->name().c_str(),
                100 * result->report.slo_attainment,
                100 * result->report.ttft_attainment,
                100 * result->report.tbt_attainment);
  }
  std::printf("\nSJF beats FCFS (smaller head-of-line cost) but lacks the "
              "hybrid cache and the\npending-time value model; Apt-Serve "
              "wins on both axes.\n");
  return 0;
}
