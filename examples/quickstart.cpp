// Quickstart: the two halves of the library in ~80 lines.
//
//   1. The *inference engine* — a real (CPU, fp32) decoder-only transformer
//      with the paper's hybrid cache: generate with KV cache, generate with
//      hidden cache, observe identical tokens at half the cache memory.
//   2. The *serving simulator* — serve a small ShareGPT-like trace under
//      vLLM-style FCFS and under Apt-Serve, and compare SLO attainment.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "baselines/fcfs_scheduler.h"
#include "core/apt_scheduler.h"
#include "engine/inference_engine.h"
#include "sim/simulator.h"
#include "workload/trace.h"

using namespace aptserve;

int main() {
  // ---- Part 1: hybrid cache on the real mini transformer ----
  const ModelConfig cfg = ModelConfig::Small();
  std::vector<int32_t> prompt = {11, 42, 7, 99, 23, 5, 81, 64};

  InferenceEngine kv_engine(cfg, /*seed=*/2025, /*num_blocks=*/256,
                            /*block_size=*/16);
  InferenceEngine hidden_engine(cfg, 2025, 256, 16);
  (void)kv_engine.AddRequest(1, prompt, CacheType::kKV);
  (void)hidden_engine.AddRequest(1, prompt, CacheType::kHidden);

  auto kv_out = kv_engine.Generate(1, /*max_new_tokens=*/16);
  auto hidden_out = hidden_engine.Generate(1, 16);
  if (!kv_out.ok() || !hidden_out.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }
  std::printf("KV-cache tokens    :");
  for (int32_t t : *kv_out) std::printf(" %d", t);
  std::printf("\nhidden-cache tokens:");
  for (int32_t t : *hidden_out) std::printf(" %d", t);
  std::printf("\nidentical: %s\n", *kv_out == *hidden_out ? "yes" : "NO");
  std::printf("cache blocks used — KV: %d, hidden: %d (half the memory, "
              "same tokens)\n\n",
              kv_engine.pool().num_allocated(),
              hidden_engine.pool().num_allocated());

  // ---- Part 2: serving simulation, FCFS vs Apt-Serve ----
  TraceConfig tc;
  tc.profile = DatasetProfile::ShareGpt();
  tc.num_requests = 300;
  tc.rate_per_sec = 5.0;  // well past vLLM's knee
  tc.seed = 1;
  auto trace = BuildTrace(tc);
  if (!trace.ok()) return 1;

  const SloSpec slo{1.0, 1.0};  // TTFT 1s, per-request P99 TBT 1s
  const ModelSpec model = ModelSpec::Opt13B();
  CostModel cost(model, ClusterSpec::ForModel(model));

  FcfsScheduler fcfs;
  AptConfig ac;
  ac.slo = slo;
  AptScheduler apt(ac);

  for (Scheduler* sched : {static_cast<Scheduler*>(&fcfs),
                           static_cast<Scheduler*>(&apt)}) {
    Simulator sim(cost, SimulatorConfig{});
    auto result = sim.Run(*trace, sched, slo);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", sched->name().c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    const SloReport& rep = result->report;
    std::printf("[%-18s] SLO=%5.1f%%  TTFT=%5.1f%%  TBT=%5.1f%%  "
                "mean TTFT=%.2fs  preemptions=%ld\n",
                sched->name().c_str(), 100 * rep.slo_attainment,
                100 * rep.ttft_attainment, 100 * rep.tbt_attainment,
                rep.mean_ttft, rep.preemptions);
  }
  std::printf("\nApt-Serve's hybrid cache + adaptive scheduling sustains the "
              "rate that collapses FCFS.\n");
  return 0;
}
