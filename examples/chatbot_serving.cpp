// Chatbot serving scenario (the paper's ShareGPT workload): find each
// system's effective throughput — the highest request rate it sustains at
// 90% SLO attainment — by sweeping rates, then print the winner's margin.
// This is the paper's headline metric (§6.3) on the chatbot workload.
//
// Build & run:  ./build/examples/chatbot_serving
#include <cstdio>
#include <memory>

#include "baselines/fcfs_scheduler.h"
#include "baselines/sarathi_scheduler.h"
#include "core/apt_scheduler.h"
#include "sim/simulator.h"
#include "workload/trace.h"

using namespace aptserve;

namespace {

double AttainmentAt(double rate, Scheduler* sched, const SloSpec& slo) {
  TraceConfig tc;
  tc.profile = DatasetProfile::ShareGpt();
  tc.num_requests = 400;
  tc.rate_per_sec = rate;
  tc.seed = 99;
  auto trace = BuildTrace(tc);
  if (!trace.ok()) return 0.0;
  const ModelSpec model = ModelSpec::Opt13B();
  CostModel cost(model, ClusterSpec::ForModel(model));
  Simulator sim(cost, SimulatorConfig{});
  auto result = sim.Run(*trace, sched, slo);
  return result.ok() ? result->report.slo_attainment : 0.0;
}

/// Bisects the 90%-attainment knee between lo and hi req/s.
double FindEffectiveThroughput(const std::string& kind, const SloSpec& slo) {
  double lo = 0.25, hi = 16.0;
  for (int iter = 0; iter < 7; ++iter) {
    const double mid = 0.5 * (lo + hi);
    std::unique_ptr<Scheduler> sched;
    if (kind == "vLLM") {
      sched = std::make_unique<FcfsScheduler>();
    } else if (kind == "Sarathi") {
      sched = std::make_unique<SarathiScheduler>();
    } else {
      AptConfig c;
      c.slo = slo;
      sched = std::make_unique<AptScheduler>(c);
    }
    if (AttainmentAt(mid, sched.get(), slo) >= 0.9) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

int main() {
  const SloSpec slo{1.0, 1.0};
  std::printf("Chatbot serving (ShareGPT, OPT-13B, 1x A100-40G)\n");
  std::printf("Effective throughput = max rate with >= 90%% of requests "
              "meeting TTFT<=1s and P99 TBT<=1s\n\n");
  double vllm = 0;
  for (const char* kind : {"vLLM", "Sarathi", "Apt"}) {
    const double t = FindEffectiveThroughput(kind, slo);
    if (std::string(kind) == "vLLM") vllm = t;
    std::printf("%-8s effective throughput: %5.2f req/s", kind, t);
    if (std::string(kind) != "vLLM" && vllm > 0) {
      std::printf("   (%.1fx vLLM)", t / vllm);
    }
    std::printf("\n");
  }
  return 0;
}
