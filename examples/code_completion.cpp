// Code-completion scenario (the paper's HumanEval workload): short prompts,
// short completions, tight SLOs (TTFT 0.5s, P99 TBT 0.5s). This regime
// favors chunked-prefill coalescing (Sarathi/FastGen); the example shows
// Apt-Serve-S — Apt's hybrid cache and value-based composition layered on
// Sarathi's coalesced batching (§6.7) — taking the best of both.
//
// Build & run:  ./build/examples/code_completion
#include <cstdio>
#include <memory>

#include "baselines/fcfs_scheduler.h"
#include "baselines/sarathi_scheduler.h"
#include "core/apt_sarathi_scheduler.h"
#include "core/apt_scheduler.h"
#include "sim/simulator.h"
#include "workload/trace.h"

using namespace aptserve;

int main() {
  const SloSpec slo{0.5, 0.5};
  const ModelSpec model = ModelSpec::Opt13B();
  CostModel cost(model, ClusterSpec::ForModel(model));

  std::printf("Code completion serving (HumanEval, OPT-13B)\n");
  std::printf("%10s %10s %12s %10s %10s\n", "rate(r/s)", "vLLM", "Sarathi",
              "Apt", "Apt-S");
  for (double rate : {4.0, 6.0, 8.0, 10.0, 14.0}) {
    TraceConfig tc;
    tc.profile = DatasetProfile::HumanEval();
    tc.num_requests = 400;
    tc.rate_per_sec = rate;
    tc.seed = 3;
    auto trace = BuildTrace(tc);
    if (!trace.ok()) return 1;

    std::printf("%10.1f", rate);
    for (int k = 0; k < 4; ++k) {
      std::unique_ptr<Scheduler> sched;
      switch (k) {
        case 0:
          sched = std::make_unique<FcfsScheduler>();
          break;
        case 1:
          sched = std::make_unique<SarathiScheduler>();
          break;
        case 2: {
          AptConfig c;
          c.slo = slo;
          sched = std::make_unique<AptScheduler>(c);
          break;
        }
        default: {
          AptSarathiConfig c;
          c.slo = slo;
          sched = std::make_unique<AptSarathiScheduler>(c);
        }
      }
      Simulator sim(cost, SimulatorConfig{});
      auto result = sim.Run(*trace, sched.get(), slo);
      if (!result.ok()) return 1;
      std::printf(" %10.1f", 100 * result->report.slo_attainment);
    }
    std::printf("\n");
  }
  std::printf("\nShort outputs mean short cache lifetimes, so coalesced "
              "batching already helps;\nApt-Serve-S adds hybrid-cache "
              "admission and value-based composition on top.\n");
  return 0;
}
