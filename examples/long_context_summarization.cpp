// Summarization scenario (the paper's LongBench workload): long prompts
// under bursty traffic. Demonstrates how the hybrid cache absorbs bursts
// that overflow a KV-only pool: we sweep burstiness (Gamma CV) at a fixed
// mean rate and compare Apt-Serve with and without the hidden cache,
// plus vLLM — the Table 4 / Figure 9 story as a runnable scenario.
//
// Build & run:  ./build/examples/long_context_summarization
#include <cstdio>

#include "baselines/fcfs_scheduler.h"
#include "core/apt_scheduler.h"
#include "sim/simulator.h"
#include "workload/trace.h"

using namespace aptserve;

namespace {

SloReport Serve(double cv, Scheduler* sched, const SloSpec& slo) {
  TraceConfig tc;
  tc.profile = DatasetProfile::LongBench();
  tc.num_requests = 300;
  tc.rate_per_sec = 1.5;
  tc.cv = cv;
  tc.seed = 5;
  auto trace = BuildTrace(tc);
  const ModelSpec model = ModelSpec::Opt13B();
  CostModel cost(model, ClusterSpec::ForModel(model));
  Simulator sim(cost, SimulatorConfig{});
  auto result = sim.Run(*trace, sched, slo);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return result->report;
}

}  // namespace

int main() {
  const SloSpec slo{4.0, 1.0};  // long prompts get a relaxed TTFT SLO
  std::printf("Long-context summarization (LongBench, OPT-13B, 1.5 req/s)\n");
  std::printf("%6s %14s %16s %12s\n", "CV", "vLLM SLO(%)",
              "Apt KV-only(%)", "Apt hybrid(%)");
  for (double cv : {1.0, 3.0, 5.0, 10.0}) {
    FcfsScheduler vllm;
    AptConfig kv_cfg;
    kv_cfg.slo = slo;
    kv_cfg.enable_hidden = false;
    AptScheduler kv_only(kv_cfg);
    AptConfig hy_cfg;
    hy_cfg.slo = slo;
    AptScheduler hybrid(hy_cfg);
    const double v = 100 * Serve(cv, &vllm, slo).slo_attainment;
    const double k = 100 * Serve(cv, &kv_only, slo).slo_attainment;
    const double h = 100 * Serve(cv, &hybrid, slo).slo_attainment;
    std::printf("%6.0f %14.1f %16.1f %12.1f\n", cv, v, k, h);
  }
  std::printf("\nBurstier arrivals (higher CV) hit the memory wall harder; "
              "the hidden cache's 2x\nadmission capacity absorbs the bursts "
              "that collapse KV-only serving.\n");
  return 0;
}
