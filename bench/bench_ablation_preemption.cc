// Ablation (DESIGN.md): preemption mode — vLLM's recompute (used by the
// paper's experiments) vs swap to host memory over PCIe. Recompute burns
// GPU FLOPs proportional to context length; swap burns PCIe bandwidth
// proportional to cache bytes. The crossover depends on context length and
// preemption frequency.
#include "bench/bench_util.h"
#include "sim/simulator.h"

using namespace aptserve;
using namespace aptserve::bench;

namespace {

struct Row {
  SloReport rep;
  int64_t swaps = 0;
  int64_t prefills = 0;
};

Row RunMode(const DatasetProfile& profile, double rate, const SloSpec& slo,
            PreemptionMode mode) {
  TraceConfig tc;
  tc.profile = profile;
  tc.num_requests = 500;
  tc.rate_per_sec = rate;
  tc.cv = 5.0;  // bursty: preemption actually happens
  tc.seed = 71;
  auto trace = BuildTrace(tc);
  if (!trace.ok()) std::abort();
  AptConfig ac;
  ac.slo = slo;
  AptScheduler sched(ac);
  const ModelSpec model = ModelSpec::Opt13B();
  CostModel cm(model, ClusterSpec::ForModel(model));
  SimulatorConfig sc;
  sc.preemption_mode = mode;
  Simulator sim(cm, sc);
  auto result = sim.Run(*trace, &sched, slo);
  if (!result.ok()) std::abort();
  return Row{result->report, result->swap_ins, result->prefill_iterations};
}

}  // namespace

int main() {
  std::printf("=== Ablation: preemption mode, recompute vs swap "
              "(Apt-Serve, OPT-13B, CV=5) ===\n");
  std::printf("%-10s %6s | %12s %12s | %12s %12s %8s\n", "dataset", "rate",
              "recomp SLO%", "swap SLO%", "recomp pref", "swap pref",
              "swaps");
  struct Case {
    DatasetProfile profile;
    double rate;
    SloSpec slo;
  };
  for (const Case& c :
       {Case{DatasetProfile::ShareGpt(), 4.0, SloSpec{1.0, 1.0}},
        Case{DatasetProfile::ShareGpt(), 8.0, SloSpec{1.0, 1.0}},
        Case{DatasetProfile::LongBench(), 1.5, SloSpec{4.0, 1.0}},
        Case{DatasetProfile::LongBench(), 3.0, SloSpec{4.0, 1.0}}}) {
    const Row rec =
        RunMode(c.profile, c.rate, c.slo, PreemptionMode::kRecompute);
    const Row swp = RunMode(c.profile, c.rate, c.slo, PreemptionMode::kSwap);
    std::printf("%-10s %6.1f | %12.1f %12.1f | %12ld %12ld %8ld\n",
                c.profile.name.c_str(), c.rate, 100 * rec.rep.slo_attainment,
                100 * swp.rep.slo_attainment, rec.prefills, swp.prefills,
                swp.swaps);
    std::fflush(stdout);
  }
  std::printf("\nMeasured finding (see EXPERIMENTS.md): although swap "
              "eliminates most recompute\nprefills, it *hurts* Apt-Serve's "
              "attainment — the recompute path is exactly where\nthe "
              "scheduler converts evicted requests to hidden cache for "
              "free (half-memory\nresume), while a swap-in demands the full "
              "original footprint back. Recompute\npreemption composes "
              "better with the hybrid cache, supporting the paper's choice."
              "\n");
  return 0;
}
