// Figure 11 reproduction (generalization, §6.7): vLLM vs Sarathi-Serve vs
// Apt-Serve vs Apt-Serve-S (Apt's hybrid cache + value-based composition on
// Sarathi's chunked-prefill coalesced batching) on OPT-13B across the three
// datasets under the Table 3 SLOs.
#include "bench/bench_util.h"

using namespace aptserve;
using namespace aptserve::bench;

int main() {
  struct Case {
    DatasetProfile profile;
    SloSpec slo;
    std::vector<double> rates;
  };
  const std::vector<Case> cases = {
      {DatasetProfile::ShareGpt(), SloSpec{1.0, 1.0},
       {1, 2, 3, 4, 6, 8, 10}},
      {DatasetProfile::HumanEval(), SloSpec{0.5, 0.5},
       {2, 4, 6, 8, 10, 14, 18}},
      {DatasetProfile::LongBench(), SloSpec{4.0, 1.0},
       {0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0}},
  };
  const std::vector<std::string> systems = {"vLLM", "Sarathi", "Apt",
                                            "Apt-S"};
  for (const Case& c : cases) {
    RunSpec spec;
    spec.profile = c.profile;
    spec.slo = c.slo;
    spec.num_requests = 500;
    const std::string title = "Figure 11: " + c.profile.name + " / OPT-13B";
    PrintRateSweep(title.c_str(), spec, c.rates, systems);
  }
  std::printf("\nExpected shape (paper): Apt-Serve-S >= Apt-Serve >= "
              "Sarathi-Serve >= vLLM, showing\nthe hybrid-cache + adaptive "
              "composition stack on top of chunked-prefill coalescing.\n");
  return 0;
}
