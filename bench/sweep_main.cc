// sweep: config-driven experiment harness (bench/sweep/). One invocation
// runs all three stages: expand + execute the matrix (bounded concurrency,
// resumable), aggregate finished runs into runs.csv, and render the static
// HTML report.
//
//   sweep --config bench/experiments/smoke.json --jobs 2 --resume
//   sweep --config bench/experiments/paper_table.json --dry_run
//
// Exit status: 0 when every planned cell succeeded (or was skipped by
// --resume), 1 on harness errors or any failed cell.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/sweep/collect.h"
#include "bench/sweep/config.h"
#include "bench/sweep/report.h"
#include "bench/sweep/runner.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --config <file.json> [options]\n"
      "  --config <path>    experiment config (required)\n"
      "  --jobs <n>         cells in flight at once (overrides config)\n"
      "  --out_root <dir>   output root (overrides config)\n"
      "  --resume           skip cells whose meta.json matches and whose\n"
      "                     result.json exists\n"
      "  --dry_run          print the expanded plan, execute nothing\n"
      "  --fail_fast        stop launching cells after the first failure\n"
      "  --quiet            suppress per-cell progress lines\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using aptserve::sweep::SweepOptions;
  std::string config_path;
  SweepOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--config") {
      config_path = next();
    } else if (arg == "--jobs") {
      options.jobs_override = std::atoi(next());
    } else if (arg == "--out_root") {
      options.out_root_override = next();
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--dry_run") {
      options.dry_run = true;
    } else if (arg == "--fail_fast") {
      options.fail_fast = true;
    } else if (arg == "--quiet") {
      options.verbose = false;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
      return 1;
    }
  }
  if (config_path.empty()) {
    Usage(argv[0]);
    return 1;
  }

  auto config = aptserve::sweep::LoadSweepConfigFile(config_path);
  if (!config.ok()) {
    std::fprintf(stderr, "sweep: %s\n", config.status().ToString().c_str());
    return 1;
  }
  auto run = aptserve::sweep::RunSweep(*config, options);
  if (!run.ok()) {
    std::fprintf(stderr, "sweep: %s\n", run.status().ToString().c_str());
    return 1;
  }
  if (options.dry_run) return 0;

  auto runs = aptserve::sweep::CollectAndWriteCsv(run->exp_dir);
  if (!runs.ok()) {
    std::fprintf(stderr, "collect: %s\n", runs.status().ToString().c_str());
    return 1;
  }
  const auto report_status =
      aptserve::sweep::WriteReport(config->name, *runs, run->exp_dir);
  if (!report_status.ok()) {
    std::fprintf(stderr, "report: %s\n",
                 report_status.ToString().c_str());
    return 1;
  }
  std::printf("sweep: wrote %s/aggregate/runs.csv and %s/report/index.html\n",
              run->exp_dir.c_str(), run->exp_dir.c_str());
  return run->failed == 0 ? 0 : 1;
}
