// Figure 4 reproduction: (a) FCFS vs Random SLO attainment across rates;
// (b)/(c) per-request TTFT and P99-TBT latency profiles at 3.4 req/s (the
// paper's scatter plots show FCFS's clustered TTFT violations vs Random's
// dispersed ones; here we print the distribution summaries).
#include <algorithm>
#include <filesystem>

#include "bench/bench_util.h"
#include "sim/report_writer.h"

using namespace aptserve;
using namespace aptserve::bench;

namespace {

void PerRequestDetail(const RunSpec& spec, const std::string& system) {
  const SimulationResult result = RunOnceFull(spec, system);
  const SloReport& rep = result.report;
  std::printf("--- %s at %.1f req/s ---\n", system.c_str(), spec.rate);
  std::printf("TTFT: mean=%.2fs p50=%.2fs p99=%.2fs  |  per-request P99 TBT:"
              " p50=%.3fs p99=%.3fs  |  SLO=%.1f%%\n",
              rep.mean_ttft, rep.ttfts.Quantile(0.5), rep.ttfts.P99(),
              rep.p99_tbts.Quantile(0.5), rep.p99_tbts.P99(),
              100 * rep.slo_attainment);
  // The paper's Figures 4b/4c are per-request scatters over arrival order;
  // export the raw rows for external plotting.
  std::error_code ec;
  std::filesystem::create_directories("bench_output", ec);
  if (!ec) {
    (void)WriteFile("bench_output/fig04_" + system + "_requests.csv",
                    [&](std::ostream* out) {
                      WriteRequestRecordsCsv(result.records, spec.slo, out);
                    });
  }

  // Convoy metric: TTFT violations under FCFS cluster in consecutive runs
  // (paper §3.2); report the longest violation run over arrival order.
  std::vector<const RequestRecord*> rows;
  for (const auto& [id, rec] : result.records) rows.push_back(&rec);
  std::sort(rows.begin(), rows.end(),
            [](const RequestRecord* a, const RequestRecord* b) {
              return a->spec.id < b->spec.id;
            });
  int longest = 0, current = 0;
  for (const RequestRecord* rec : rows) {
    current = rec->MeetsTtft(spec.slo) ? 0 : current + 1;
    longest = std::max(longest, current);
  }
  std::printf("longest consecutive TTFT-violation run: %d requests\n",
              longest);
}

}  // namespace

int main() {
  RunSpec spec;
  spec.num_requests = 500;

  PrintRateSweep("Figure 4a: FCFS vs Random SLO attainment (%)"
                 " (ShareGPT, OPT-13B)",
                 spec, {1.0, 1.5, 2.0, 2.5, 3.0, 3.4, 4.0, 5.0},
                 {"vLLM", "Random"});

  std::printf("\n=== Figure 4b/4c: per-request latency profile at 3.4 "
              "req/s ===\n");
  spec.rate = 3.4;
  PerRequestDetail(spec, "vLLM");
  PerRequestDetail(spec, "Random");
  std::printf("\nExpected shape (paper): Random >= FCFS at every rate; FCFS "
              "shows much heavier TTFT tails (convoyed violations).\n");
  return 0;
}
