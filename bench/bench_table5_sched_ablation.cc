// Table 5 reproduction: Apt-Serve with FCFS scheduling vs its adaptive
// scheduling (hybrid cache available in both), across rates and burstiness
// on ShareGPT and LongBench with OPT-13B.
#include "bench/bench_util.h"

using namespace aptserve;
using namespace aptserve::bench;

int main() {
  struct Grid {
    DatasetProfile profile;
    std::vector<double> rates;
    SloSpec slo;
  };
  const std::vector<Grid> grids = {
      {DatasetProfile::ShareGpt(), {3.0, 6.0}, SloSpec{1.0, 1.0}},
      {DatasetProfile::LongBench(), {1.5, 3.0}, SloSpec{4.0, 1.0}},
  };

  std::printf("=== Table 5: SLO attainment (%%) of Apt-Serve, FCFS vs "
              "adaptive scheduling (OPT-13B) ===\n");
  std::printf("%-10s %6s %4s %12s %12s\n", "dataset", "rate", "CV", "FCFS",
              "Adaptive");
  for (const Grid& g : grids) {
    for (double rate : g.rates) {
      for (double cv : {1.0, 5.0, 10.0}) {
        RunSpec spec;
        spec.profile = g.profile;
        spec.rate = rate;
        spec.cv = cv;
        spec.slo = g.slo;
        spec.num_requests = 500;
        // "FCFS" keeps the hybrid cache (rigid order, hidden fallback).
        const double fcfs =
            100 * RunOnce(spec, "FCFS-hybrid").slo_attainment;
        const double adaptive = 100 * RunOnce(spec, "Apt").slo_attainment;
        std::printf("%-10s %6.1f %4.0f %12.1f %12.1f\n",
                    g.profile.name.c_str(), rate, cv, fcfs, adaptive);
        std::fflush(stdout);
      }
    }
  }
  std::printf("\nExpected shape (paper): FCFS collapses (often under 30%%) "
              "while adaptive scheduling\nsustains high attainment on the "
              "same hybrid cache.\n");
  return 0;
}
