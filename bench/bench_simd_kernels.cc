// Micro-bench of the SIMD kernel dispatch (engine/ops.h): GFLOP/s of each
// dispatched kernel against the pinned scalar reference (ops::scalar) at
// transformer-shaped sizes. The "isa" field stamps which vector backend the
// build resolved (ops::ActiveIsa()); when it is "scalar" — forced via
// -DAPT_FORCE_SCALAR=ON or an unsupported host — the snapshot says so
// honestly (vector_active=false, speedups ~1x) instead of pretending a
// vector win.
//
// Results land in BENCH_bench_simd_kernels.json (committed copy under
// bench/results/ tracks the perf trajectory across PRs).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "engine/ops.h"

using namespace aptserve;

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Defeats dead-code elimination of the benched kernels.
volatile float g_sink = 0.0f;

/// Runs `fn` repeatedly until ~`min_seconds` of wall clock accumulates and
/// returns seconds per call.
double TimePerCall(const std::function<void()>& fn,
                   double min_seconds = 0.15) {
  fn();  // warm-up (page in buffers, settle dispatch)
  int64_t calls = 1;
  for (;;) {
    const double start = NowSeconds();
    for (int64_t i = 0; i < calls; ++i) fn();
    const double elapsed = NowSeconds() - start;
    if (elapsed >= min_seconds) return elapsed / static_cast<double>(calls);
    calls = elapsed <= 0.0 ? calls * 8
                           : static_cast<int64_t>(
                                 calls * (1.2 * min_seconds / elapsed)) +
                                 1;
  }
}

struct KernelResult {
  std::string kernel;
  double flops_per_call = 0.0;
  double dispatch_s = 0.0;
  double scalar_s = 0.0;

  double Gflops(double seconds) const {
    return seconds > 0 ? flops_per_call / seconds / 1e9 : 0.0;
  }
  double Speedup() const {
    return dispatch_s > 0 ? scalar_s / dispatch_s : 0.0;
  }
};

void Record(const KernelResult& r) {
  std::printf("  %-22s %8.2f GF/s dispatch  %8.2f GF/s scalar  %5.2fx\n",
              r.kernel.c_str(), r.Gflops(r.dispatch_s), r.Gflops(r.scalar_s),
              r.Speedup());
  bench::JsonObject e;
  e.Str("kernel", r.kernel)
      .Str("isa", ops::ActiveIsa())
      .Num("flops_per_call", r.flops_per_call)
      .Num("dispatch_gflops", r.Gflops(r.dispatch_s))
      .Num("scalar_gflops", r.Gflops(r.scalar_s))
      .Num("speedup_vs_scalar", r.Speedup());
  bench::BenchJson::Instance().AddEntry(std::move(e));
}

}  // namespace

int main() {
  const std::string isa = ops::ActiveIsa();
  const bool vector_active = isa != "scalar";
  std::printf("bench_simd_kernels: isa=%s width=%d floats\n", isa.c_str(),
              ops::VectorWidthFloats());
  bench::BenchJson::Instance().config()
      .Str("isa", isa)
      .Int("vector_width_floats", ops::VectorWidthFloats())
      .Bool("vector_active", vector_active);

  // Transformer-shaped operands: d_model-by-d_ff projections over a
  // prefill-sized batch (the MatMat path every forward pass funnels into).
  const int32_t batch = 32, rows = 512, cols = 512;
  Rng rng(123);
  auto rand_vec = [&](int64_t n) {
    std::vector<float> v(static_cast<size_t>(n));
    for (float& x : v) x = static_cast<float>(rng.Normal());
    return v;
  };
  const std::vector<float> w = rand_vec(static_cast<int64_t>(rows) * cols);
  const std::vector<float> x = rand_vec(static_cast<int64_t>(batch) * cols);
  const std::vector<float> gain = rand_vec(cols);
  const std::vector<float> bias = rand_vec(cols);
  std::vector<float> y(static_cast<size_t>(batch) *
                       std::max(rows, cols));

  std::vector<KernelResult> results;

  {
    KernelResult r;
    r.kernel = "Dot";
    r.flops_per_call = 2.0 * cols;
    r.dispatch_s = TimePerCall(
        [&] { g_sink = ops::Dot(w.data(), x.data(), cols); });
    r.scalar_s = TimePerCall(
        [&] { g_sink = ops::scalar::Dot(w.data(), x.data(), cols); });
    results.push_back(r);
  }
  {
    KernelResult r;
    r.kernel = "MatVec";
    r.flops_per_call = 2.0 * rows * cols;
    r.dispatch_s = TimePerCall(
        [&] { ops::MatVec(w.data(), x.data(), y.data(), rows, cols); });
    r.scalar_s = TimePerCall([&] {
      ops::scalar::MatVec(w.data(), x.data(), y.data(), rows, cols);
    });
    results.push_back(r);
  }
  {
    KernelResult r;
    r.kernel = "MatVecTransposed";
    r.flops_per_call = 2.0 * rows * cols;
    r.dispatch_s = TimePerCall([&] {
      ops::MatVecTransposed(w.data(), x.data(), y.data(), rows, cols);
    });
    r.scalar_s = TimePerCall([&] {
      ops::scalar::MatVecTransposed(w.data(), x.data(), y.data(), rows, cols);
    });
    results.push_back(r);
  }
  {
    KernelResult r;
    r.kernel = "MatMat";
    r.flops_per_call = 2.0 * batch * rows * cols;
    r.dispatch_s = TimePerCall([&] {
      ops::MatMat(w.data(), x.data(), y.data(), batch, rows, cols);
    });
    // Scalar reference for the blocked kernel: the per-row loop it is
    // contractually bit-identical to, on the reference tier.
    r.scalar_s = TimePerCall([&] {
      for (int32_t b = 0; b < batch; ++b) {
        ops::scalar::MatVec(w.data(), x.data() + b * cols,
                            y.data() + b * rows, rows, cols);
      }
    });
    results.push_back(r);
  }
  {
    KernelResult r;
    r.kernel = "LayerNorm";
    // ~9 flops/element: two reduction passes plus normalize.
    r.flops_per_call = 9.0 * cols;
    r.dispatch_s = TimePerCall([&] {
      ops::LayerNorm(x.data(), gain.data(), bias.data(), y.data(), cols);
    });
    r.scalar_s = TimePerCall([&] {
      ops::scalar::LayerNorm(x.data(), gain.data(), bias.data(), y.data(),
                             cols);
    });
    results.push_back(r);
  }
  {
    KernelResult r;
    r.kernel = "LayerNormBatch";
    r.flops_per_call = 9.0 * batch * cols;
    r.dispatch_s = TimePerCall([&] {
      ops::LayerNormBatch(x.data(), gain.data(), bias.data(), y.data(), batch,
                          cols);
    });
    r.scalar_s = TimePerCall([&] {
      for (int32_t b = 0; b < batch; ++b) {
        ops::scalar::LayerNorm(x.data() + b * cols, gain.data(), bias.data(),
                               y.data() + b * cols, cols);
      }
    });
    results.push_back(r);
  }
  {
    KernelResult r;
    r.kernel = "FusedLayerNormMatMat";
    r.flops_per_call = (2.0 * rows + 9.0) * batch * cols;
    r.dispatch_s = TimePerCall([&] {
      ops::FusedLayerNormMatMat(x.data(), gain.data(), bias.data(), w.data(),
                                y.data(), batch, rows, cols);
    });
    std::vector<float> norm(static_cast<size_t>(cols));
    r.scalar_s = TimePerCall([&] {
      for (int32_t b = 0; b < batch; ++b) {
        ops::scalar::LayerNorm(x.data() + b * cols, gain.data(), bias.data(),
                               norm.data(), cols);
        ops::scalar::MatVec(w.data(), norm.data(), y.data() + b * rows, rows,
                            cols);
      }
    });
    results.push_back(r);
  }
  {
    KernelResult r;
    r.kernel = "FusedMatMatAct";
    r.flops_per_call = (2.0 * cols + 1.0) * batch * rows;
    r.dispatch_s = TimePerCall([&] {
      ops::FusedMatMatAct(w.data(), x.data(), y.data(), batch, rows, cols,
                          /*use_relu=*/true);
    });
    r.scalar_s = TimePerCall([&] {
      for (int32_t b = 0; b < batch; ++b) {
        ops::scalar::MatVec(w.data(), x.data() + b * cols, y.data() + b * rows,
                            rows, cols);
        ops::scalar::Relu(y.data() + b * rows, rows);
      }
    });
    results.push_back(r);
  }

  for (const KernelResult& r : results) Record(r);
  if (!vector_active) {
    std::printf("  (scalar dispatch: speedups are honesty-stamped ~1x)\n");
  }
  return 0;
}
