// Table 6 reproduction: wall-clock execution time of Apt-Serve's greedy
// scheduling algorithm against the number of candidate requests (50 to
// 1600). Unlike the simulation benches this measures the real algorithm
// implementation with google-benchmark.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/greedy_solver.h"

namespace aptserve {
namespace {

std::vector<CandidateInfo> MakeCandidates(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<CandidateInfo> cands;
  cands.reserve(n);
  for (int i = 0; i < n; ++i) {
    CandidateInfo c;
    c.id = i;
    c.pending_s = rng.Uniform(0.001, 10.0);
    c.m_tokens = static_cast<int32_t>(rng.UniformInt(16, 2048));
    c.m_blocks = 2 * ((c.m_tokens + 15) / 16);
    c.slo_violated = rng.Uniform() < 0.1;
    cands.push_back(c);
  }
  return cands;
}

void BM_GreedyScheduling(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  QuantificationConfig qc;
  qc.rho_seconds_per_token = 2.4e-5;  // OPT-13B analytic rho
  qc.num_requests_in_system = n;
  QuantificationModel model(qc);
  GreedySolver solver(&model);
  const auto cands = MakeCandidates(n, 42);
  // Capacity comparable to an A100-40G pool (~1500 blocks).
  const int32_t capacity = 1526;
  for (auto _ : state) {
    auto sol = solver.Solve(cands, capacity);
    benchmark::DoNotOptimize(sol.total_value);
  }
  state.SetLabel("Table 6 row: " + std::to_string(n) + " candidates");
}

BENCHMARK(BM_GreedyScheduling)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Arg(800)
    ->Arg(1600)
    ->Unit(benchmark::kMillisecond);

// The exact DP oracle, for contrast (exponentially heavier in capacity).
void BM_ExactScheduling(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  QuantificationConfig qc;
  qc.rho_seconds_per_token = 2.4e-5;
  qc.num_requests_in_system = n;
  QuantificationModel model(qc);
  const auto cands = MakeCandidates(n, 42);
  for (auto _ : state) {
    auto sol = SolveExact(model, cands, 1526);
    benchmark::DoNotOptimize(sol.total_value);
  }
}

BENCHMARK(BM_ExactScheduling)->Arg(50)->Arg(100)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace aptserve

BENCHMARK_MAIN();
