// Fleet-of-fleets scaling gate: the hierarchical front tier's reason to
// exist, measured. Two parts:
//
//   Part A (routing cost): a 100k+-request multi-group shared-prefix trace
//   is routed — routing only, no serving — across fleets of 8..128
//   instances, flat kPrefixAffinity vs the two-level CellRouter +
//   intra-cell affinity at a fixed cell width of 8. The readout is
//   RouteCostStats::ProbesPerDecision(): deterministic state examinations
//   per routing decision (instance probes + mirror radix nodes walked +
//   cell-summary probes), not wall time, so the numbers are bit-stable
//   across machines and build modes.
//
//   Part B (routing quality): the same workload shape served end-to-end at
//   64 instances on the cost-model backend with prefix sharing enabled —
//   round-robin vs flat affinity vs hierarchical (8 cells of 8). The
//   hierarchy must keep prefix locality: hashing a conversation's leading
//   chunk pins its turns (and its group's siblings) to one cell, where the
//   intra-cell mirrors finish the job.
//
// Hard checks gating the exit code (the PR's acceptance criteria):
//   1. Hierarchical probes/decision grows <= 1.5x from 8 to 128 instances
//      (the front tier is O(1) in fleet width; only the fixed-width cell
//      term remains).
//   2. Flat probes/decision grows >= 8x over the same range (the per-
//      decision cost scales with fleet width, i.e. fleet-wide routing work
//      grows superlinearly) — the regression the hierarchy removes.
//   3. Cell-stats conservation on every hierarchical run:
//      hash_routed + fallback_routed == decisions == requests.
//   4. Hierarchical routing achieves >= 1.4x prefill-token reduction vs
//      round-robin at 64 instances.
// `--smoke` runs a small grid for CI: machinery + conservation checks
// only, scaling-ratio gates skipped (they need the full fleet range).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/fcfs_scheduler.h"
#include "bench/bench_util.h"
#include "serve/cell_router.h"
#include "serve/cost_model_backend.h"
#include "serve/multi_instance.h"
#include "serve/router.h"
#include "workload/shared_prefix.h"

namespace aptserve {
namespace {

constexpr int32_t kBlockSize = 16;
constexpr int32_t kCellWidth = 8;
constexpr int32_t kPoolBlocks = 512;
constexpr int32_t kVocab = 50272;

struct TraceShape {
  int32_t groups = 0;  ///< distinct prefix groups (independent system prompts)
  int32_t conversations = 0;  ///< conversations per group
  int32_t turns = 0;
  int32_t tokens_per_turn = 0;
  int32_t system_prompt_len = 0;
  int32_t output_len_mean = 4;
};

// Union of `groups` shared-prefix traces with distinct seeds (so distinct
// system prompts — each group is its own affinity universe), interleaved
// by a small per-group arrival offset, merged by arrival and re-id'd.
// A single SharedPrefixConfig generates ONE global system prompt; routing
// over many instances only differentiates policies when there are many
// groups to spread.
std::vector<Request> MakeMultiGroupTrace(const TraceShape& shape) {
  std::vector<Request> all;
  for (int32_t g = 0; g < shape.groups; ++g) {
    SharedPrefixConfig cfg;
    cfg.system_prompt_len = shape.system_prompt_len;
    cfg.num_conversations = shape.conversations;
    cfg.turns_per_conversation = shape.turns;
    cfg.tokens_per_turn = shape.tokens_per_turn;
    cfg.output_len_mean = shape.output_len_mean;
    // Per-group timing jitter: with uniform staggers the merged arrival
    // order is group-cyclic and round-robin accidentally pins each group
    // to one instance, which would flatter the baseline.
    cfg.think_time_s = 2.0 + 0.037 * (g % 13);
    cfg.conversation_stagger_s = 0.25 + 0.013 * (g % 7);
    cfg.vocab_size = kVocab;
    cfg.seed = 1000 + static_cast<uint64_t>(g) * 7919;
    auto trace = BuildSharedPrefixTrace(cfg);
    if (!trace.ok()) {
      std::fprintf(stderr, "trace(group %d): %s\n", g,
                   trace.status().ToString().c_str());
      std::abort();
    }
    const double offset = 0.017 * g;
    all.reserve(all.size() + trace->size());
    for (Request& r : *trace) {
      r.arrival += offset;
      all.push_back(std::move(r));
    }
  }
  std::stable_sort(
      all.begin(), all.end(),
      [](const Request& a, const Request& b) { return a.arrival < b.arrival; });
  for (size_t i = 0; i < all.size(); ++i) all[i].id = static_cast<RequestId>(i);
  return all;
}

RouterConfig AffinityConfig(int32_t n) {
  RouterConfig rc;
  rc.n_instances = n;
  rc.policy = RoutePolicy::kPrefixAffinity;
  rc.block_size = kBlockSize;
  return rc;
}

struct ProbeRun {
  RouteCostStats cost;    // cell_* folded in for hierarchical runs
  CellRouteStats cells;   // zero for flat runs
  double ppd = 0.0;
};

ProbeRun RouteFlat(const std::vector<Request>& trace, const CostModel& cm,
                   int32_t n) {
  const Router router(AffinityConfig(n), &cm);
  RouterState state = router.MakeState();
  const std::vector<uint8_t> live(n, 1);
  bool best_effort = false;
  for (size_t i = 0; i < trace.size(); ++i) {
    router.RouteOne(trace[i], i, live, &state, &best_effort);
  }
  ProbeRun out;
  out.cost = state.cost_stats();
  out.ppd = out.cost.ProbesPerDecision();
  return out;
}

ProbeRun RouteHier(const std::vector<Request>& trace, const CostModel& cm,
                   int32_t n) {
  const int32_t num_cells = std::max(1, n / kCellWidth);
  const Router router(AffinityConfig(n), &cm);
  CellRouterConfig cc;
  cc.num_cells = num_cells;
  CellRouter cells(cc, kBlockSize);
  RouterState state = router.MakeState();
  // Same instance->cell map the fleet controller's least-populated spawn
  // assignment produces for an initial all-at-once fleet.
  std::vector<std::vector<int32_t>> members(num_cells);
  for (int32_t i = 0; i < n; ++i) members[i % num_cells].push_back(i);
  bool best_effort = false;
  for (size_t i = 0; i < trace.size(); ++i) {
    const Request& req = trace[i];
    const int32_t cell = cells.RouteOne(req, req.arrival);
    router.RouteOneLive(req, i, members[cell], &state, &best_effort);
    cells.Commit(cell, req.arrival, router.EstimatedServiceSeconds(req),
                 static_cast<int32_t>(members[cell].size()));
  }
  ProbeRun out;
  out.cost = state.cost_stats();
  out.cells = cells.stats();
  out.cost.cell_probes = out.cells.cell_probes;
  out.cost.cell_hash_routed = out.cells.hash_routed;
  out.cost.cell_fallback_routed = out.cells.fallback_routed;
  out.ppd = out.cost.ProbesPerDecision();
  return out;
}

void RecordProbe(const std::string& mode, int32_t instances,
                 int32_t num_cells, size_t requests, const ProbeRun& r,
                 double growth_vs_smallest) {
  bench::JsonObject e;
  e.Str("part", "probe_cost")
      .Str("mode", mode)
      .Int("instances", instances)
      .Int("num_cells", num_cells)
      .Int("requests", static_cast<int64_t>(requests))
      .Int("decisions", r.cost.decisions)
      .Int("instance_probes", r.cost.instance_probes)
      .Int("mirror_nodes_walked", r.cost.mirror_nodes_walked)
      .Int("cell_probes", r.cost.cell_probes)
      .Int("cell_hash_routed", r.cost.cell_hash_routed)
      .Int("cell_fallback_routed", r.cost.cell_fallback_routed)
      .Int("mirror_node_peak", r.cost.mirror_node_peak)
      .Int("mirror_evictions", r.cost.mirror_evictions)
      .Num("probes_per_decision", r.ppd)
      .Num("growth_vs_smallest", growth_vs_smallest);
  bench::BenchJson::Instance().AddEntry(std::move(e));
}

MultiInstanceResult Serve(const std::vector<Request>& trace,
                          const CostModel& cm, RoutePolicy policy,
                          int32_t instances, int32_t num_cells) {
  RouterConfig rc;
  rc.n_instances = instances;
  rc.policy = policy;
  rc.block_size = kBlockSize;
  CellRouterConfig cc;
  cc.num_cells = num_cells;
  MultiInstanceRunner runner(Router(rc, &cm), ServingLoopConfig{},
                             RuntimeConfig{}, cc);
  BackendFactory make_backend =
      [&cm](int32_t) -> StatusOr<std::unique_ptr<ExecutionBackend>> {
    CostModelBackend::Options o;
    o.block_size = kBlockSize;
    o.pool_blocks_override = kPoolBlocks;
    o.enable_prefix_sharing = true;
    o.token_vocab = kVocab;
    APT_ASSIGN_OR_RETURN(std::unique_ptr<CostModelBackend> backend,
                         CostModelBackend::Create(cm, o));
    return std::unique_ptr<ExecutionBackend>(std::move(backend));
  };
  auto result = runner.Run(
      trace, [] { return std::make_unique<FcfsScheduler>(); }, make_backend,
      SloSpec{10.0, 10.0});
  if (!result.ok()) {
    std::fprintf(stderr, "serve(%s, cells=%d): %s\n", RoutePolicyName(policy),
                 num_cells, result.status().ToString().c_str());
    std::abort();
  }
  return *result;
}

void RecordServe(const std::string& mode, int32_t instances,
                 int32_t num_cells, const MultiInstanceResult& r,
                 double reduction) {
  bench::JsonObject e;
  e.Str("part", "serving")
      .Str("mode", mode)
      .Int("instances", instances)
      .Int("num_cells", num_cells)
      .Int("prefill_tokens_computed", r.prefill_tokens_computed)
      .Int("prefill_tokens_skipped", r.prefill_tokens_skipped)
      .Num("prefill_reduction_vs_rr", reduction)
      .Num("mean_ttft_s", r.combined.mean_ttft)
      .Num("goodput_rps", r.combined.goodput_rps)
      .Int("prefix_hits", r.prefix.hits)
      .Int("prefix_matched_tokens", r.prefix.matched_tokens)
      .Num("route_probes_per_decision", r.route_cost.ProbesPerDecision());
  bench::BenchJson::Instance().AddEntry(std::move(e));
}

}  // namespace
}  // namespace aptserve

int main(int argc, char** argv) {
  using namespace aptserve;
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  // Part A trace: 128 groups x 40 conversations x 20 turns = 102,400
  // requests in full mode.
  TraceShape probe_shape;
  probe_shape.groups = smoke ? 8 : 128;
  probe_shape.conversations = smoke ? 4 : 40;
  probe_shape.turns = smoke ? 4 : 20;
  probe_shape.tokens_per_turn = 16;
  probe_shape.system_prompt_len = 32;
  probe_shape.output_len_mean = 4;
  const std::vector<int32_t> fleet_sizes =
      smoke ? std::vector<int32_t>{8, 16}
            : std::vector<int32_t>{8, 16, 32, 64, 128};

  bench::BenchJson::Instance().config()
      .Str("mode", smoke ? "smoke" : "full")
      .Int("block_size", kBlockSize)
      .Int("cell_width", kCellWidth)
      .Int("probe_groups", probe_shape.groups)
      .Int("probe_requests",
           static_cast<int64_t>(probe_shape.groups) * probe_shape.conversations *
               probe_shape.turns)
      .Str("cost_model", "OPT-13B");

  const ModelSpec m = ModelSpec::Opt13B();
  const CostModel cm(m, ClusterSpec::ForModel(m));

  std::printf("=== Part A: probes/decision, flat vs hierarchical ===\n");
  const auto probe_trace = MakeMultiGroupTrace(probe_shape);
  std::printf("trace: %zu requests, %d prefix groups\n\n", probe_trace.size(),
              probe_shape.groups);
  std::printf("%-14s %5s %6s | %10s %8s | %12s %12s %10s\n", "mode", "inst",
              "cells", "probes/dec", "growth", "inst_probes", "mirror_walk",
              "cell_prb");

  bool conservation_ok = true;
  double flat_first = 0.0, flat_last = 0.0;
  double hier_first = 0.0, hier_last = 0.0;
  for (int32_t n : fleet_sizes) {
    const ProbeRun flat = RouteFlat(probe_trace, cm, n);
    const ProbeRun hier = RouteHier(probe_trace, cm, n);
    const int32_t num_cells = std::max(1, n / kCellWidth);
    if (n == fleet_sizes.front()) {
      flat_first = flat.ppd;
      hier_first = hier.ppd;
    }
    flat_last = flat.ppd;
    hier_last = hier.ppd;
    const double flat_growth = flat_first > 0 ? flat.ppd / flat_first : 0.0;
    const double hier_growth = hier_first > 0 ? hier.ppd / hier_first : 0.0;
    RecordProbe("flat", n, 1, probe_trace.size(), flat, flat_growth);
    RecordProbe("hierarchical", n, num_cells, probe_trace.size(), hier,
                hier_growth);
    std::printf("%-14s %5d %6d | %10.2f %7.2fx | %12lld %12lld %10lld\n",
                "flat", n, 1, flat.ppd, flat_growth,
                static_cast<long long>(flat.cost.instance_probes),
                static_cast<long long>(flat.cost.mirror_nodes_walked),
                static_cast<long long>(flat.cost.cell_probes));
    std::printf("%-14s %5d %6d | %10.2f %7.2fx | %12lld %12lld %10lld\n",
                "hierarchical", n, num_cells, hier.ppd, hier_growth,
                static_cast<long long>(hier.cost.instance_probes),
                static_cast<long long>(hier.cost.mirror_nodes_walked),
                static_cast<long long>(hier.cost.cell_probes));
    // Check 3: cell-stats conservation.
    const auto& cs = hier.cells;
    if (cs.hash_routed + cs.fallback_routed != cs.decisions ||
        cs.decisions != static_cast<int64_t>(probe_trace.size())) {
      conservation_ok = false;
      std::printf("  !! cell-stats conservation broken at inst=%d: "
                  "%lld + %lld != %lld (requests %zu)\n",
                  n, static_cast<long long>(cs.hash_routed),
                  static_cast<long long>(cs.fallback_routed),
                  static_cast<long long>(cs.decisions), probe_trace.size());
    }
  }

  const double hier_ratio = hier_first > 0 ? hier_last / hier_first : 0.0;
  const double flat_ratio = flat_first > 0 ? flat_last / flat_first : 0.0;
  std::printf("\nprobes/decision growth %d->%d: hierarchical %.2fx, "
              "flat %.2fx\n",
              fleet_sizes.front(), fleet_sizes.back(), hier_ratio, flat_ratio);

  // Part B: serve at 64 instances (8 cells of 8); smoke: 8 instances
  // (2 cells of 4).
  TraceShape serve_shape;
  serve_shape.groups = smoke ? 8 : 64;
  serve_shape.conversations = smoke ? 4 : 10;
  serve_shape.turns = smoke ? 4 : 6;
  serve_shape.tokens_per_turn = smoke ? 16 : 24;
  serve_shape.system_prompt_len = smoke ? 32 : 48;
  serve_shape.output_len_mean = 6;
  const int32_t serve_instances = smoke ? 8 : 64;
  const int32_t serve_cells = smoke ? 2 : 8;

  std::printf("\n=== Part B: served prefill tokens at %d instances ===\n",
              serve_instances);
  const auto serve_trace = MakeMultiGroupTrace(serve_shape);
  std::printf("trace: %zu requests, %d prefix groups\n\n", serve_trace.size(),
              serve_shape.groups);

  const MultiInstanceResult rr =
      Serve(serve_trace, cm, RoutePolicy::kRoundRobin, serve_instances, 1);
  const MultiInstanceResult flat_aff =
      Serve(serve_trace, cm, RoutePolicy::kPrefixAffinity, serve_instances, 1);
  const MultiInstanceResult hier_aff = Serve(
      serve_trace, cm, RoutePolicy::kPrefixAffinity, serve_instances,
      serve_cells);

  const auto reduction = [&rr](const MultiInstanceResult& r) {
    return r.prefill_tokens_computed > 0
               ? static_cast<double>(rr.prefill_tokens_computed) /
                     static_cast<double>(r.prefill_tokens_computed)
               : 0.0;
  };
  const double red_flat = reduction(flat_aff);
  const double red_hier = reduction(hier_aff);
  RecordServe("round-robin", serve_instances, 1, rr, 1.0);
  RecordServe("flat-affinity", serve_instances, 1, flat_aff, red_flat);
  RecordServe("hier-affinity", serve_instances, serve_cells, hier_aff,
              red_hier);
  std::printf("%-14s %6s | %10s %10s %8s | %10s %9s\n", "mode", "cells",
              "pf_comp", "pf_skip", "redux", "mean_ttft", "probes/dec");
  for (const auto& [name, cells, r, red] :
       {std::make_tuple("round-robin", 1, &rr, 1.0),
        std::make_tuple("flat-affinity", 1, &flat_aff, red_flat),
        std::make_tuple("hier-affinity", static_cast<int>(serve_cells),
                        &hier_aff, red_hier)}) {
    std::printf("%-14s %6d | %10lld %10lld %7.2fx | %10.5f %9.2f\n", name,
                cells, static_cast<long long>(r->prefill_tokens_computed),
                static_cast<long long>(r->prefill_tokens_skipped), red,
                r->combined.mean_ttft, r->route_cost.ProbesPerDecision());
  }

  // Gates.
  bool ok = conservation_ok;
  if (!smoke) {
    if (hier_ratio > 1.5) {
      ok = false;
      std::printf("!! hierarchical probes/decision growth %.2fx > 1.5x\n",
                  hier_ratio);
    }
    if (flat_ratio < 8.0) {
      ok = false;
      std::printf("!! flat probes/decision growth %.2fx < 8x — the flat "
                  "baseline is no longer superlinear?\n",
                  flat_ratio);
    }
    if (red_hier < 1.4) {
      ok = false;
      std::printf("!! hierarchical prefill reduction %.2fx < 1.4x vs "
                  "round-robin\n",
                  red_hier);
    }
  } else {
    // Smoke: machinery only — the hierarchy must still probe less than the
    // flat scan at the largest smoke fleet.
    if (hier_last >= flat_last) {
      ok = false;
      std::printf("!! smoke: hierarchical probes/decision %.2f >= flat %.2f "
                  "at inst=%d\n",
                  hier_last, flat_last, fleet_sizes.back());
    }
  }
  bench::BenchJson::Instance().config()
      .Num("hier_growth_ratio", hier_ratio)
      .Num("flat_growth_ratio", flat_ratio)
      .Num("hier_prefill_reduction_vs_rr", red_hier)
      .Int("gates_ok", ok ? 1 : 0);
  std::printf("\nall gates: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
