// Figure 1 reproduction: serving ShareGPT requests with vLLM (OPT-13B,
// single A100): overall / TTFT / TBT SLO attainment against request rate.
// The paper's observation: the overall collapse tracks the TTFT curve while
// TBT attainment stays high.
#include "bench/bench_util.h"

using namespace aptserve;
using namespace aptserve::bench;

int main() {
  RunSpec spec;
  spec.num_requests = 500;  // the paper samples 500 requests for Fig. 1/2
  std::printf("=== Figure 1: vLLM SLO attainment vs request rate "
              "(ShareGPT, OPT-13B, TTFT=1s, P99 TBT=1s) ===\n");
  std::printf("%10s %12s %12s %12s\n", "rate(r/s)", "SLO(%)", "TTFT(%)",
              "TBT(%)");
  for (double rate : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.0}) {
    spec.rate = rate;
    const SloReport rep = RunOnce(spec, "vLLM");
    std::printf("%10.1f %12.1f %12.1f %12.1f\n", rate,
                100 * rep.slo_attainment, 100 * rep.ttft_attainment,
                100 * rep.tbt_attainment);
    std::fflush(stdout);
  }
  std::printf("\nExpected shape (paper): overall attainment collapses with "
              "rate, driven by TTFT;\nTBT attainment remains largely "
              "unaffected.\n");
  return 0;
}
