// Prefix-sharing sweep: hit-rate (conversation fan-out) x prefix-length
// grid over the shared-prefix workload, run with sharing off and on, on
// BOTH execution backends:
//   - the analytic CostModelBackend (Simulator, Opt-13B roofline), where
//     skipped prefill positions are priced out of the iteration, and
//   - the real InferenceBackend (ServingEngine, Tiny model, measured wall
//     clock), where they are genuinely not computed.
// Reported per cell: prefill tokens computed/skipped (the reduction
// factor), mean TTFT, request throughput, hits, and blocks saved through
// sharing. The same trace drives both backends, and the final parity table
// checks that their hit accounting is identical — both backends must agree
// on what a hit is worth.
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/fcfs_scheduler.h"
#include "bench/bench_util.h"
#include "engine/serving_engine.h"
#include "workload/shared_prefix.h"

namespace aptserve {
namespace {

constexpr int32_t kBlockSize = 4;
constexpr int32_t kPoolBlocks = 512;

struct CellResult {
  double mean_ttft = 0.0;
  double throughput = 0.0;
  int64_t computed = 0;
  int64_t skipped = 0;
  PrefixStats prefix;
};

std::vector<Request> MakeTrace(int32_t prefix_len, int32_t fan_out) {
  SharedPrefixConfig cfg;
  cfg.system_prompt_len = prefix_len;
  cfg.num_conversations = fan_out;
  cfg.turns_per_conversation = 3;
  cfg.tokens_per_turn = 8;
  cfg.output_len_mean = 6;
  cfg.think_time_s = 2.0;
  cfg.conversation_stagger_s = 0.25;
  cfg.vocab_size = ModelConfig::Tiny().vocab_size;
  auto trace = BuildSharedPrefixTrace(cfg);
  if (!trace.ok()) {
    std::fprintf(stderr, "trace: %s\n", trace.status().ToString().c_str());
    std::abort();
  }
  return *trace;
}

CellResult RunCostModel(const std::vector<Request>& trace, bool sharing) {
  const ModelSpec m = ModelSpec::Opt13B();
  CostModel cm(m, ClusterSpec::ForModel(m));
  SimulatorConfig cfg;
  cfg.block_size = kBlockSize;
  cfg.pool_blocks_override = kPoolBlocks;
  cfg.enable_prefix_sharing = sharing;
  Simulator sim(cm, cfg);
  FcfsScheduler sched;
  auto r = sim.Run(trace, &sched, SloSpec{10.0, 10.0});
  if (!r.ok()) {
    std::fprintf(stderr, "sim: %s\n", r.status().ToString().c_str());
    std::abort();
  }
  CellResult out;
  out.mean_ttft = r->report.mean_ttft;
  out.throughput = r->report.total_serving_time > 0
                       ? trace.size() / r->report.total_serving_time
                       : 0.0;
  out.computed = r->prefill_tokens_computed;
  out.skipped = r->prefill_tokens_skipped;
  out.prefix = r->prefix;
  return out;
}

CellResult RunEngine(const std::vector<Request>& trace, bool sharing) {
  ServingEngineConfig cfg;
  cfg.model = ModelConfig::Tiny();
  cfg.num_blocks = kPoolBlocks;
  cfg.block_size = kBlockSize;
  cfg.slo = SloSpec{10.0, 10.0};
  cfg.calibrate_rho = false;
  cfg.enable_prefix_sharing = sharing;
  ServingEngine serving(cfg);
  FcfsScheduler sched;
  auto r = serving.Serve(trace, &sched);
  if (!r.ok()) {
    std::fprintf(stderr, "engine: %s\n", r.status().ToString().c_str());
    std::abort();
  }
  CellResult out;
  out.mean_ttft = r->report.mean_ttft;
  out.throughput = r->report.total_serving_time > 0
                       ? trace.size() / r->report.total_serving_time
                       : 0.0;
  out.computed = r->prefill_tokens_computed;
  out.skipped = r->prefill_tokens_skipped;
  out.prefix = r->prefix;
  return out;
}

void Record(const std::string& backend, int32_t prefix_len, int32_t fan_out,
            bool sharing, const CellResult& r, double reduction) {
  bench::JsonObject e;
  e.Str("backend", backend)
      .Int("prefix_len", prefix_len)
      .Int("fan_out", fan_out)
      .Int("sharing", sharing ? 1 : 0)
      .Num("mean_ttft_s", r.mean_ttft)
      .Num("requests_per_sec", r.throughput)
      .Int("prefill_tokens_computed", r.computed)
      .Int("prefill_tokens_skipped", r.skipped)
      .Num("prefill_reduction_x", reduction)
      .Int("lookups", r.prefix.lookups)
      .Int("hits", r.prefix.hits)
      .Int("matched_tokens", r.prefix.matched_tokens)
      .Int("blocks_saved", r.prefix.shared_blocks)
      .Int("cow_matches", r.prefix.cow_matches)
      .Int("evicted_blocks", r.prefix.evicted_blocks);
  bench::BenchJson::Instance().AddEntry(std::move(e));
}

}  // namespace
}  // namespace aptserve

int main() {
  using namespace aptserve;

  bench::BenchJson::Instance().config().Int("block_size", kBlockSize)
      .Int("pool_blocks", kPoolBlocks)
      .Str("scheduler", "FCFS")
      .Str("cost_model", "OPT-13B")
      .Str("engine_model", "Tiny");

  const std::vector<int32_t> prefix_lens = {32, 64};
  const std::vector<int32_t> fan_outs = {2, 6};

  std::printf("=== Prefix sharing: hit-rate x prefix-length sweep ===\n");
  std::printf("%-16s %7s %7s | %11s %11s %8s | %8s %8s | %5s %7s %6s\n",
              "backend", "prefix", "fanout", "ttft_off", "ttft_on",
              "pf_redux", "pf_off", "pf_on", "hits", "matched", "saved");

  bool parity_ok = true;
  bool reduction_ok = true;
  PrefixStats cost_stats, engine_stats;
  for (int32_t prefix_len : prefix_lens) {
    for (int32_t fan_out : fan_outs) {
      const auto trace = MakeTrace(prefix_len, fan_out);
      for (const std::string& backend : {std::string("cost-model"),
                                         std::string("inference-engine")}) {
        const bool is_engine = backend == "inference-engine";
        const CellResult off =
            is_engine ? RunEngine(trace, false) : RunCostModel(trace, false);
        const CellResult on =
            is_engine ? RunEngine(trace, true) : RunCostModel(trace, true);
        const double reduction =
            on.computed > 0 ? static_cast<double>(off.computed) / on.computed
                            : 0.0;
        Record(backend, prefix_len, fan_out, false, off, 1.0);
        Record(backend, prefix_len, fan_out, true, on, reduction);
        std::printf(
            "%-16s %7d %7d | %11.6f %11.6f %7.2fx | %8lld %8lld | %5lld %7lld "
            "%6lld\n",
            backend.c_str(), prefix_len, fan_out, off.mean_ttft, on.mean_ttft,
            reduction, static_cast<long long>(off.computed),
            static_cast<long long>(on.computed),
            static_cast<long long>(on.prefix.hits),
            static_cast<long long>(on.prefix.matched_tokens),
            static_cast<long long>(on.prefix.shared_blocks));
        if (on.mean_ttft >= off.mean_ttft) {
          std::printf("  !! mean TTFT did not improve on %s\n",
                      backend.c_str());
        }
        // The acceptance cell: >=50%% overlap (the larger grid corner).
        if (prefix_len == 64 && fan_out == 6 && reduction < 1.5) {
          reduction_ok = false;
        }
        (is_engine ? engine_stats : cost_stats) = on.prefix;
      }
      if (cost_stats.hits != engine_stats.hits ||
          cost_stats.matched_tokens != engine_stats.matched_tokens ||
          cost_stats.shared_blocks != engine_stats.shared_blocks ||
          cost_stats.cow_matches != engine_stats.cow_matches) {
        parity_ok = false;
        std::printf("  !! hit accounting diverged between backends\n");
      }
    }
  }
  std::printf("\nhit accounting identical across backends: %s\n",
              parity_ok ? "yes" : "NO");
  std::printf(">=1.5x prefill-token reduction at the >=50%% overlap cell: %s\n",
              reduction_ok ? "yes" : "NO");
  bench::BenchJson::Instance().config().Int("parity_ok", parity_ok ? 1 : 0);
  return parity_ok && reduction_ok ? 0 : 1;
}
