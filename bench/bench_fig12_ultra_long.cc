// Table 7 + Figure 12 reproduction (ultra-long context, §6.7): sampled
// trace statistics for WikiText / Arxiv / BookCorpus, then vLLM vs
// Apt-Serve SLO attainment with LLaMA3-8B-Instruct262K and Yi-6B-200K on
// 1 / 2 / 4 GPUs respectively (TTFT SLO 10 s, P99 TBT SLO 1 s).
#include "bench/bench_util.h"

using namespace aptserve;
using namespace aptserve::bench;

namespace {

struct UltraCase {
  DatasetProfile profile;
  int32_t n_gpus;
  int32_t max_total_len;
  std::vector<double> rates;
};

SloReport RunUltra(const UltraCase& c, const ModelSpec& model, double rate,
                   const std::string& system) {
  TraceConfig tc;
  tc.profile = c.profile;
  tc.num_requests = 200;
  tc.rate_per_sec = rate;
  tc.seed = 404;
  tc.max_total_len = c.max_total_len;
  auto trace = BuildTrace(tc);
  if (!trace.ok()) std::abort();
  const SloSpec slo{10.0, 1.0};
  auto sched = MakeScheduler(system, slo);
  ClusterSpec cluster;
  cluster.n_gpus = c.n_gpus;
  CostModel cm(model, cluster);
  SimulatorConfig sc;
  sc.block_size = 32;  // larger blocks keep pool metadata manageable
  Simulator sim(cm, sc);
  auto result = sim.Run(*trace, sched.get(), slo);
  if (!result.ok()) {
    std::fprintf(stderr, "sim(%s/%s): %s\n", c.profile.name.c_str(),
                 system.c_str(), result.status().ToString().c_str());
    std::abort();
  }
  return result->report;
}

void PrintTable7Row(const DatasetProfile& profile, int32_t cap) {
  TraceConfig tc;
  tc.profile = profile;
  tc.num_requests = 1000;
  tc.rate_per_sec = 1.0;
  tc.seed = 77;
  tc.max_total_len = cap;
  auto trace = BuildTrace(tc);
  if (!trace.ok()) std::abort();
  const TraceStats s = ComputeTraceStats(*trace);
  std::printf("%-12s | in  max=%-6.0f med=%-6.0f mean=%-6.0f | out "
              "max=%-5.0f med=%-5.0f mean=%-5.0f\n",
              profile.name.c_str(), s.input_max, s.input_median,
              s.input_mean, s.output_max, s.output_median, s.output_mean);
}

}  // namespace

int main() {
  std::printf("=== Table 7: ultra-long dataset statistics (sampled) ===\n");
  PrintTable7Row(DatasetProfile::WikiText(), 3000);
  PrintTable7Row(DatasetProfile::Arxiv(), 30000);
  PrintTable7Row(DatasetProfile::BookCorpus(), 24100);
  std::printf("(paper: WikiText 1840/871/914 in, 992/552/521 out; Arxiv "
              "19600/6853/7812, 9754/226/420;\n BookCorpus 23706/14781/"
              "16944, 299/221/185)\n");

  const std::vector<UltraCase> cases = {
      {DatasetProfile::WikiText(), 1, 3000, {0.5, 1.0, 1.5, 2.0, 3.0}},
      {DatasetProfile::Arxiv(), 2, 30000, {0.1, 0.2, 0.3, 0.4, 0.6}},
      {DatasetProfile::BookCorpus(), 4, 24100, {0.1, 0.25, 0.5, 0.75}},
  };
  for (const ModelSpec& model :
       {ModelSpec::Llama3_8B_262K(), ModelSpec::Yi6B_200K()}) {
    std::printf("\n=== Figure 12: %s (TTFT SLO 10s, P99 TBT SLO 1s) ===\n",
                model.name.c_str());
    for (const UltraCase& c : cases) {
      std::printf("--- %s (%d GPU%s) ---\n", c.profile.name.c_str(),
                  c.n_gpus, c.n_gpus > 1 ? "s" : "");
      std::printf("%10s %12s %12s\n", "rate(r/s)", "vLLM", "Apt");
      for (double rate : c.rates) {
        const double v = 100 * RunUltra(c, model, rate, "vLLM").slo_attainment;
        const double a = 100 * RunUltra(c, model, rate, "Apt").slo_attainment;
        std::printf("%10.2f %12.1f %12.1f\n", rate, v, a);
        std::fflush(stdout);
      }
    }
  }
  std::printf("\nExpected shape (paper): Apt-Serve > vLLM, driven by TTFT; "
              "TBT attainment is hard for\nboth at ultra-long context "
              "(prefill/decode interference), especially BookCorpus.\n");
  return 0;
}
