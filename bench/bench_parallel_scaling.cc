// Thread-scaling of the parallel runtime: sweeps threads x batch size for
// prefill and decode iterations on the real engine, reporting wall-clock
// speedup over the serial (1-thread) baseline. Prefill batches exercise
// intra-op parallelism (positions/heads/W-rows); decode batches exercise
// item-level parallelism through InferenceEngine::ExecuteSteps. Token
// streams are asserted bit-identical to the serial run at every sweep
// point — speed changes, results do not.
//
// Results land in BENCH_bench_parallel_scaling.json (the committed copy
// under bench/results/ tracks the perf trajectory across PRs; it records
// the hardware_concurrency of the machine that produced it, since
// wall-clock speedup is bounded by physical cores).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "engine/inference_engine.h"

using namespace aptserve;

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ModelConfig BenchModel() {
  // Bigger than Tiny so one iteration is real work, small enough that the
  // serial baseline stays in seconds.
  ModelConfig cfg = ModelConfig::Tiny();
  cfg.d_model = 128;
  cfg.n_heads = 4;
  cfg.n_layers = 4;
  cfg.d_ff = 512;
  cfg.vocab_size = 4096;
  cfg.max_seq_len = 512;
  return cfg;
}

struct PhaseResult {
  double seconds = 0.0;
  int64_t tokens = 0;
  std::vector<std::vector<int32_t>> streams;  ///< per-request final tokens
};

constexpr int32_t kPromptLen = 96;
constexpr int32_t kDecodeIters = 12;

/// Runs one engine instance: batched prefill of `batch` requests, then
/// kDecodeIters lockstep decode iterations, timing each phase.
void RunEngine(int32_t num_threads, int32_t batch, PhaseResult* prefill,
               PhaseResult* decode) {
  const ModelConfig cfg = BenchModel();
  RuntimeConfig rt;
  rt.num_threads = num_threads;
  // Pool sized for batch * (prompt + decodes), two components for the KV
  // requests: block_size 16.
  const int32_t blocks =
      batch * 2 * ((kPromptLen + kDecodeIters + 15) / 16 + 1) + 16;
  InferenceEngine engine(cfg, /*seed=*/2025, blocks, /*block_size=*/16, rt);
  Rng prompt_rng(11);
  for (int32_t id = 0; id < batch; ++id) {
    std::vector<int32_t> prompt(kPromptLen);
    for (int32_t& t : prompt) {
      t = static_cast<int32_t>(prompt_rng.UniformInt(0, cfg.vocab_size - 1));
    }
    const CacheType type = id % 2 == 0 ? CacheType::kKV : CacheType::kHidden;
    Status st = engine.AddRequest(id, std::move(prompt), type);
    if (!st.ok()) {
      std::fprintf(stderr, "AddRequest: %s\n", st.ToString().c_str());
      std::abort();
    }
  }

  auto run_batch = [&](bool is_decode) {
    std::vector<PendingStep> steps;
    steps.reserve(batch);
    for (int32_t id = 0; id < batch; ++id) {
      auto s = is_decode ? engine.PrepareDecode(id)
                         : engine.PreparePrefillChunk(id, kPromptLen);
      if (!s.ok()) {
        std::fprintf(stderr, "prepare: %s\n", s.status().ToString().c_str());
        std::abort();
      }
      steps.push_back(std::move(*s));
    }
    Status st = engine.ExecuteSteps(&steps);
    if (!st.ok()) {
      std::fprintf(stderr, "execute: %s\n", st.ToString().c_str());
      std::abort();
    }
  };

  double t0 = NowSeconds();
  run_batch(/*is_decode=*/false);
  prefill->seconds = NowSeconds() - t0;
  prefill->tokens = static_cast<int64_t>(batch) * kPromptLen;

  t0 = NowSeconds();
  for (int32_t iter = 0; iter < kDecodeIters; ++iter) {
    run_batch(/*is_decode=*/true);
  }
  decode->seconds = NowSeconds() - t0;
  decode->tokens = static_cast<int64_t>(batch) * kDecodeIters;

  for (int32_t id = 0; id < batch; ++id) {
    decode->streams.push_back(engine.Find(id)->tokens);
  }
}

}  // namespace

int main() {
  const std::vector<int32_t> thread_counts = {1, 2, 4, 8};
  const std::vector<int32_t> batches = {1, 4, 8, 16};
  const unsigned hw = std::thread::hardware_concurrency();
  // The ≥2x-at-4-threads ROADMAP target is only observable with ≥4
  // physical cores; on smaller containers speedup legitimately sits near
  // 1.0, and the snapshot must say so instead of looking like a miss.
  const bool multicore = hw >= 4;
  if (!multicore) {
    std::fprintf(stderr,
                 "WARNING: hardware_concurrency=%u < 4 — thread-scaling "
                 "speedups are not observable on this machine; the JSON "
                 "snapshot records \"multicore\": false. Re-run on >=4 "
                 "physical cores for real gains.\n",
                 hw);
  }

  bench::BenchJson::Instance().SetName("bench_parallel_scaling");
  {
    const ModelConfig cfg = BenchModel();
    bench::BenchJson::Instance()
        .config()
        .Int("hardware_concurrency", hw)
        .Bool("multicore", multicore)
        .Int("d_model", cfg.d_model)
        .Int("n_layers", cfg.n_layers)
        .Int("d_ff", cfg.d_ff)
        .Int("vocab_size", cfg.vocab_size)
        .Int("prompt_len", kPromptLen)
        .Int("decode_iters", kDecodeIters);
  }

  std::printf("=== Parallel runtime scaling: threads x batch on the real "
              "engine (hardware_concurrency=%u) ===\n", hw);
  std::printf("%7s %6s | %12s %12s %8s | %12s %12s %8s\n", "threads",
              "batch", "prefill(s)", "ptok/s", "speedup", "decode(s)",
              "dtok/s", "speedup");

  for (int32_t batch : batches) {
    PhaseResult base_prefill, base_decode;
    for (int32_t threads : thread_counts) {
      PhaseResult prefill, decode;
      RunEngine(threads, batch, &prefill, &decode);
      if (threads == 1) {
        base_prefill = prefill;
        base_decode = decode;
      } else if (decode.streams != base_decode.streams) {
        // The determinism contract, enforced where the speed is measured.
        std::fprintf(stderr,
                     "FATAL: token streams diverged at threads=%d batch=%d\n",
                     threads, batch);
        return 1;
      }
      const double prefill_speedup = prefill.seconds > 0
                                         ? base_prefill.seconds /
                                               prefill.seconds
                                         : 0.0;
      const double decode_speedup =
          decode.seconds > 0 ? base_decode.seconds / decode.seconds : 0.0;
      std::printf("%7d %6d | %12.4f %12.0f %8.2f | %12.4f %12.0f %8.2f\n",
                  threads, batch, prefill.seconds,
                  prefill.tokens / prefill.seconds, prefill_speedup,
                  decode.seconds, decode.tokens / decode.seconds,
                  decode_speedup);
      std::fflush(stdout);

      bench::JsonObject e;
      e.Int("threads", threads)
          .Int("batch", batch)
          .Num("prefill_seconds", prefill.seconds)
          .Num("prefill_tokens_per_sec", prefill.tokens / prefill.seconds)
          .Num("prefill_speedup_vs_serial", prefill_speedup)
          .Num("decode_seconds", decode.seconds)
          .Num("decode_tokens_per_sec", decode.tokens / decode.seconds)
          .Num("decode_speedup_vs_serial", decode_speedup)
          .Str("tokens_bit_identical_to_serial", "true");
      bench::BenchJson::Instance().AddEntry(std::move(e));
    }
  }

  std::printf("\nSpeedup is wall-clock vs the 1-thread run of the same "
              "batch; bounded above by\nhardware_concurrency. Token streams "
              "are verified bit-identical at every point.\n");
  return 0;
}
