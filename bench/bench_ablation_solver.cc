// Ablation (DESIGN.md): solver quality and the SLO-aware fallback.
//   (a) greedy vs exact-DP solution value on serving-scale instances — the
//       empirical gap behind the theoretical factor-2 bound;
//   (b) a sweep of the violation handling: epsilon demotion (paper
//       default), decay factors, and no fallback at all — quantifying the
//       §6.6 attainment-vs-tail tradeoff.
#include "bench/bench_util.h"
#include "core/greedy_solver.h"

using namespace aptserve;
using namespace aptserve::bench;

namespace {

void SolverQuality() {
  std::printf("=== Ablation (a): greedy vs exact solution value ===\n");
  std::printf("%8s %10s %14s %14s %10s\n", "n", "capacity", "greedy",
              "exact", "ratio");
  Rng rng(1234);
  for (int n : {10, 50, 100, 200}) {
    QuantificationConfig qc;
    qc.rho_seconds_per_token = 2.4e-5;
    qc.num_requests_in_system = n;
    QuantificationModel model(qc);
    GreedySolver solver(&model);
    std::vector<CandidateInfo> cands;
    for (int i = 0; i < n; ++i) {
      CandidateInfo c;
      c.id = i;
      c.pending_s = rng.Uniform(0.01, 8.0);
      c.m_tokens = static_cast<int32_t>(rng.UniformInt(32, 1600));
      c.m_blocks = 2 * ((c.m_tokens + 15) / 16);
      cands.push_back(c);
    }
    const int32_t cap = 1526 / 2;  // force contention
    const auto greedy = solver.Solve(cands, cap);
    const auto exact = SolveExact(model, cands, cap);
    std::printf("%8d %10d %14.3f %14.3f %10.4f\n", n, cap,
                greedy.total_value, exact.total_value,
                exact.total_value > 0 ? greedy.total_value / exact.total_value
                                      : 1.0);
  }
  std::printf("(theory guarantees ratio >= 0.5; in practice the greedy is "
              "near-optimal)\n\n");
}

void FallbackSweep() {
  std::printf("=== Ablation (b): SLO-aware fallback policy "
              "(ShareGPT @ 6 req/s, OPT-13B) ===\n");
  std::printf("%12s %10s %12s %12s\n", "policy", "SLO(%)", "p99 TTFT(s)",
              "max TTFT(s)");
  struct Policy {
    const char* name;
    double decay;  // 0 => epsilon; 1.0 => fallback disabled
  };
  for (const Policy& p :
       {Policy{"epsilon", 0.0}, Policy{"decay=0.2", 0.2},
        Policy{"decay=0.4", 0.4}, Policy{"decay=0.7", 0.7},
        Policy{"disabled", 1.0}}) {
    RunSpec spec;
    spec.rate = 6.0;
    spec.num_requests = 500;
    AptConfig c;
    c.slo = spec.slo;
    c.violation_decay = p.decay;
    AptScheduler sched(c);
    TraceConfig tc;
    tc.profile = spec.profile;
    tc.num_requests = spec.num_requests;
    tc.rate_per_sec = spec.rate;
    tc.seed = spec.seed;
    auto trace = BuildTrace(tc);
    if (!trace.ok()) return;
    CostModel cm(spec.model, ClusterSpec::ForModel(spec.model));
    Simulator sim(cm, SimulatorConfig{});
    auto result = sim.Run(*trace, &sched, spec.slo);
    if (!result.ok()) return;
    const SloReport& rep = result->report;
    std::printf("%12s %10.1f %12.2f %12.2f\n", p.name,
                100 * rep.slo_attainment, rep.p99_ttft, rep.ttfts.Max());
    std::fflush(stdout);
  }
  std::printf("(the paper's §6.6 tradeoff: aggressive demotion maximizes "
              "attainment at the cost of a\nstarved tail; decay factors "
              "trade a little attainment for much lighter tails)\n");
}

}  // namespace

int main() {
  SolverQuality();
  FallbackSweep();
  return 0;
}
