// Figure 7 reproduction: input and output length distributions of the
// sampled ShareGPT / HumanEval / LongBench serving traces (1000 requests
// each, as in §6.2), printed as summary stats plus ASCII histograms.
#include "bench/bench_util.h"
#include "common/stats.h"

using namespace aptserve;
using namespace aptserve::bench;

namespace {

void Describe(const DatasetProfile& profile) {
  TraceConfig tc;
  tc.profile = profile;
  tc.num_requests = 1000;
  tc.rate_per_sec = 1.0;
  tc.seed = 7;
  auto trace = BuildTrace(tc);
  if (!trace.ok()) std::abort();
  const TraceStats s = ComputeTraceStats(*trace);
  std::printf("\n--- %s (1000 sampled requests) ---\n", profile.name.c_str());
  std::printf("input : max=%-6.0f median=%-6.0f mean=%-6.0f\n", s.input_max,
              s.input_median, s.input_mean);
  std::printf("output: max=%-6.0f median=%-6.0f mean=%-6.0f\n", s.output_max,
              s.output_median, s.output_mean);

  Histogram in_h(0, 2048, 16), out_h(0, 1024, 16);
  for (const Request& r : *trace) {
    in_h.Add(r.prompt_len);
    out_h.Add(r.output_len);
  }
  std::printf("input length histogram:\n%s", in_h.ToAscii(40).c_str());
  std::printf("output length histogram:\n%s", out_h.ToAscii(40).c_str());
}

}  // namespace

int main() {
  std::printf("=== Figure 7: sampled trace length distributions ===\n");
  Describe(DatasetProfile::ShareGpt());
  Describe(DatasetProfile::HumanEval());
  Describe(DatasetProfile::LongBench());
  std::printf("\nExpected shape (paper): LongBench has by far the longest "
              "inputs; ShareGPT the longest\nand most variable outputs; "
              "HumanEval short and tight on both axes.\n");
  return 0;
}
