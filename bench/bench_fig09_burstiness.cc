// Figure 9 reproduction: robustness to bursty arrivals. Gamma arrival
// processes with CV in {1, 5, 10} at fixed mean rates (3.8 req/s ShareGPT,
// 9.0 HumanEval, 1.5 LongBench on OPT-13B), comparing vLLM, Sarathi-Serve
// and Apt-Serve.
#include "bench/bench_util.h"

using namespace aptserve;
using namespace aptserve::bench;

int main() {
  struct Case {
    DatasetProfile profile;
    double rate;
    SloSpec slo;
  };
  const std::vector<Case> cases = {
      {DatasetProfile::ShareGpt(), 3.8, SloSpec{1.0, 1.0}},
      {DatasetProfile::HumanEval(), 9.0, SloSpec{0.5, 0.5}},
      {DatasetProfile::LongBench(), 1.5, SloSpec{4.0, 1.0}},
  };
  const std::vector<std::string> systems = {"vLLM", "Sarathi", "Apt"};

  std::printf("=== Figure 9: SLO attainment (%%) under bursty arrivals "
              "(OPT-13B) ===\n");
  for (const Case& c : cases) {
    std::printf("\n--- %s @ %.1f req/s ---\n", c.profile.name.c_str(),
                c.rate);
    std::printf("%6s", "CV");
    for (const auto& s : systems) std::printf(" %12s", s.c_str());
    std::printf("\n");
    for (double cv : {1.0, 5.0, 10.0}) {
      RunSpec spec;
      spec.profile = c.profile;
      spec.rate = c.rate;
      spec.cv = cv;
      spec.slo = c.slo;
      spec.num_requests = 500;
      std::printf("%6.0f", cv);
      for (const auto& s : systems) {
        std::printf(" %12.1f", 100 * RunOnce(spec, s).slo_attainment);
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  std::printf("\nExpected shape (paper): attainment declines with CV for "
              "all systems; Apt-Serve\ndegrades most gracefully, widening "
              "the gap at high burstiness (up to ~7.5x).\n");
  return 0;
}
