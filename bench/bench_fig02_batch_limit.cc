// Figure 2 reproduction: (a) SLO attainment and the fraction of serving
// time spent at the batch-size limit, vs request rate; (b) TTFT/TBT
// attainment split at two rates around the knee.
#include "bench/bench_util.h"

using namespace aptserve;
using namespace aptserve::bench;

int main() {
  RunSpec spec;
  spec.num_requests = 500;

  std::printf("=== Figure 2a: attainment and time at batch-size limit "
              "(vLLM, ShareGPT, OPT-13B) ===\n");
  std::printf("%10s %12s %22s\n", "rate(r/s)", "SLO(%)", "time@limit(%)");
  for (double rate : {1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}) {
    spec.rate = rate;
    const SloReport rep = RunOnce(spec, "vLLM");
    std::printf("%10.1f %12.1f %22.1f\n", rate, 100 * rep.slo_attainment,
                100 * rep.batch_limit_time_ratio);
    std::fflush(stdout);
  }

  std::printf("\n=== Figure 2b: attainment split at the knee ===\n");
  std::printf("%10s %12s %12s %12s\n", "rate(r/s)", "SLO(%)", "TTFT(%)",
              "TBT(%)");
  for (double rate : {2.6, 3.0}) {
    spec.rate = rate;
    const SloReport rep = RunOnce(spec, "vLLM");
    std::printf("%10.1f %12.1f %12.1f %12.1f\n", rate,
                100 * rep.slo_attainment, 100 * rep.ttft_attainment,
                100 * rep.tbt_attainment);
  }
  std::printf("\nExpected shape (paper): time-at-limit grows past 60-80%% as "
              "the rate rises;\nSLO loss at the higher rate is almost "
              "entirely TTFT.\n");
  return 0;
}
