// Int8-quantized cache tiers at equal pool bytes: how many requests the
// unified pool admits under each encoding policy, and what live migration
// costs on the interconnect once payloads travel as int8 codes.
//
// Two probes:
//   1. Admission: a fixed ShareGPT-length request stream is admitted into
//      an identical BlockPool under fp32 / int8-hidden / all-int8 policies
//      until the first OutOfMemory. Same bytes, ~4x the tokens per int8
//      block, so the quantized tiers must admit strictly more requests.
//   2. Fleet migration: the bench_fleet_elasticity diurnal workload on an
//      elastic fleet with live migration, under fp32, int8-transit (fp32
//      tiers, quantized payloads on the wire — same migration pattern as
//      fp32) and all-int8 policies. The readout is post-dedupe migration
//      bytes per copied token (the CostModel's interconnect input) and SLO
//      attainment. All-int8 typically stops migrating altogether: the 4x
//      capacity headroom removes the imbalance that triggers it.
//
// Gates (enforced, exit 1): all-int8 admits >= 2x the fp32 requests;
// int8-transit shrinks migration bytes per copied token >= 1.8x (the
// analytic cache baseline is fp16, so int8 codes halve the wire bytes; 4x
// holds only against the engine's fp32 blocks); no quantized policy
// regresses SLO attainment.
//
// Results land in BENCH_bench_quantized_capacity.json (committed snapshot
// under bench/results/).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/sarathi_scheduler.h"
#include "bench/bench_util.h"
#include "cache/block_pool.h"
#include "cache/hybrid_assigner.h"
#include "serve/cost_model_backend.h"
#include "serve/fleet_controller.h"
#include "workload/arrival.h"

using namespace aptserve;

namespace {

CacheEncodingPolicy MakePolicy(const std::string& name) {
  CacheEncodingPolicy p;
  if (name == "int8-hidden") {
    p.hidden = BlockEncoding::kInt8;
  } else if (name == "all-int8") {
    p.kv = BlockEncoding::kInt8;
    p.hidden = BlockEncoding::kInt8;
  } else if (name == "int8-transit") {
    // Fp32 tiers, int8 on the wire only: same admission capacity (and so
    // the same migration pattern) as fp32, isolating the transport delta.
    p.quantize_migration_payload = true;
  }
  return p;
}

struct AdmissionResult {
  int32_t admitted = 0;
  int64_t tokens = 0;
  double utilization = 0.0;
};

/// Admits the same request stream (alternating KV / hidden, ShareGPT
/// prompt lengths) until the pool rejects one.
AdmissionResult AdmitUntilFull(const std::string& policy,
                               const std::vector<int32_t>& lengths) {
  BlockPool pool(/*num_blocks=*/1024, /*block_size=*/16);
  HybridCacheAssigner assigner(&pool);
  assigner.SetEncodingPolicy(MakePolicy(policy));
  AdmissionResult r;
  for (size_t i = 0; i < lengths.size(); ++i) {
    const CacheType type =
        i % 2 == 0 ? CacheType::kKV : CacheType::kHidden;
    if (!assigner.CreateFilled(static_cast<RequestId>(i), type, lengths[i])
             .ok()) {
      break;
    }
    ++r.admitted;
    r.tokens += lengths[i];
  }
  r.utilization = pool.utilization();
  return r;
}

/// The bench_fleet_elasticity diurnal day, reused verbatim so the
/// migration-bytes delta is measured on the same traffic shape.
StatusOr<std::vector<Request>> BuildDiurnalTrace(int32_t n, uint64_t seed) {
  Rng rng(seed);
  DiurnalProfile profile;
  profile.base_rate = 1.0;
  profile.peak_rate = 8.0;
  profile.period_s = 600.0;
  FlashCrowd crowd;
  crowd.start_s = 380.0;
  crowd.duration_s = 40.0;
  crowd.multiplier = 1.6;
  APT_ASSIGN_OR_RETURN(std::vector<TimePoint> arrivals,
                       DiurnalArrivals(profile, {crowd}, /*cv=*/1.0, n, &rng));
  const DatasetProfile lengths = DatasetProfile::ShareGpt();
  std::vector<Request> trace;
  trace.reserve(n);
  for (int32_t i = 0; i < n; ++i) {
    Request r;
    r.id = i;
    r.arrival = arrivals[i];
    r.prompt_len = std::min(lengths.input.Sample(&rng), 2047);
    r.output_len =
        std::max(1, std::min(lengths.output.Sample(&rng), 2048 - r.prompt_len));
    trace.push_back(r);
  }
  return trace;
}

struct FleetRow {
  std::string policy;
  FleetResult result;
};

StatusOr<FleetResult> RunElasticFleet(const CostModel& cm,
                                      const std::vector<Request>& trace,
                                      const SloSpec& slo,
                                      const CacheEncodingPolicy& encoding) {
  const auto make_scheduler = [] {
    return std::make_unique<SarathiScheduler>(SarathiConfig{});
  };
  const auto make_backend =
      [&](int32_t) -> StatusOr<std::unique_ptr<ExecutionBackend>> {
    CostModelBackend::Options opts;
    opts.cache_encoding = encoding;
    APT_ASSIGN_OR_RETURN(std::unique_ptr<CostModelBackend> backend,
                         CostModelBackend::Create(cm, opts));
    return std::unique_ptr<ExecutionBackend>(std::move(backend));
  };
  FleetConfig cfg;
  cfg.router.n_instances = 1;
  cfg.router.policy = RoutePolicy::kLeastOutstandingWork;
  cfg.min_instances = 1;
  cfg.max_instances = 4;
  cfg.tick_interval_s = 2.0;
  cfg.instance_warmup_s = 5.0;
  cfg.scale_up_cooldown_s = 4.0;
  cfg.scale_down_cooldown_s = 45.0;
  cfg.scaling = {ScalingRule::QueueDepth(/*high=*/1.0, /*low=*/0.1),
                 ScalingRule::TargetUtilization(/*high=*/0.75, /*low=*/0.30),
                 ScalingRule::SloAttainmentGuard(/*floor=*/0.97,
                                                 /*window_s=*/40.0)};
  cfg.enable_migration = true;
  cfg.migration_imbalance_threshold = 4.0;
  cfg.max_migrations_per_tick = 16;
  FleetController controller(cfg, &cm);
  return controller.Run(trace, make_scheduler, make_backend, slo);
}

}  // namespace

int main() {
  bench::BenchJson::Instance().SetName("bench_quantized_capacity");
  bench::BenchJson::Instance()
      .config()
      .Int("admission_pool_blocks", 1024)
      .Int("admission_block_size", 16)
      .Int("fleet_requests", 1500)
      .Str("fleet_scheduler", "Sarathi");

  // ---- Probe 1: admission at equal pool bytes -----------------------------
  Rng rng(77);
  const DatasetProfile lengths = DatasetProfile::ShareGpt();
  std::vector<int32_t> prompt_lens(4096);
  for (int32_t& n : prompt_lens) {
    n = std::max(1, std::min(lengths.input.Sample(&rng), 2047));
  }

  std::printf("=== Admission at equal pool bytes (1024 blocks x 16) ===\n");
  std::printf("%14s %10s %12s %12s\n", "policy", "admitted", "tokens",
              "pool-util");
  AdmissionResult fp32_adm;
  AdmissionResult int8_adm;
  for (const char* policy : {"fp32", "int8-hidden", "all-int8"}) {
    const AdmissionResult r = AdmitUntilFull(policy, prompt_lens);
    std::printf("%14s %10d %12lld %12.3f\n", policy, r.admitted,
                static_cast<long long>(r.tokens), r.utilization);
    bench::JsonObject e;
    e.Str("probe", "admission")
        .Str("policy", policy)
        .Int("admitted_requests", r.admitted)
        .Int("admitted_tokens", r.tokens)
        .Num("pool_utilization", r.utilization);
    bench::BenchJson::Instance().AddEntry(std::move(e));
    if (std::string(policy) == "fp32") fp32_adm = r;
    if (std::string(policy) == "all-int8") int8_adm = r;
  }

  // ---- Probe 2: migration bytes on the diurnal fleet ----------------------
  const SloSpec slo{5.0, 5.0};
  const ModelSpec model = ModelSpec::Opt13B();
  const CostModel cm(model, ClusterSpec::ForModel(model));
  auto trace_or = BuildDiurnalTrace(/*n=*/1500, /*seed=*/2026);
  if (!trace_or.ok()) {
    std::fprintf(stderr, "trace: %s\n", trace_or.status().ToString().c_str());
    return 1;
  }

  std::printf("\n=== Elastic fleet with live migration (diurnal day) ===\n");
  std::printf("%10s %9s %9s %7s %10s %14s %12s\n", "policy", "SLO(%)",
              "goodput", "migr", "copied-tok", "migr-bytes", "bytes/token");
  std::vector<FleetRow> rows;
  for (const char* policy : {"fp32", "int8-transit", "all-int8"}) {
    auto r = RunElasticFleet(cm, *trace_or, slo, MakePolicy(policy));
    if (!r.ok()) {
      std::fprintf(stderr, "%s: %s\n", policy, r.status().ToString().c_str());
      return 1;
    }
    const SloReport& rep = r->serve.combined;
    const FleetMetrics& fm = r->fleet;
    const double bytes_per_token =
        fm.migration_copied_tokens > 0
            ? fm.migration_bytes / fm.migration_copied_tokens
            : 0.0;
    std::printf("%10s %9.2f %9.3f %7lld %10lld %14.3g %12.1f\n", policy,
                100 * rep.slo_attainment, rep.goodput_rps,
                static_cast<long long>(fm.migrations),
                static_cast<long long>(fm.migration_copied_tokens),
                fm.migration_bytes, bytes_per_token);
    bench::JsonObject e;
    e.Str("probe", "fleet-migration")
        .Str("policy", policy)
        .Num("slo_attainment", rep.slo_attainment)
        .Num("goodput_rps", rep.goodput_rps)
        .Int("migrations", fm.migrations)
        .Int("migrations_with_cache", fm.migrations_with_cache)
        .Int("migration_deduped_tokens", fm.migration_deduped_tokens)
        .Int("migration_copied_tokens", fm.migration_copied_tokens)
        .Num("migration_bytes", fm.migration_bytes)
        .Num("migration_bytes_per_copied_token", bytes_per_token)
        .Num("migration_seconds", fm.migration_seconds)
        .Num("instance_seconds", fm.instance_seconds);
    bench::BenchJson::Instance().AddEntry(std::move(e));
    rows.push_back({policy, std::move(*r)});
  }

  // ---- Gates --------------------------------------------------------------
  bool ok = true;
  if (int8_adm.admitted < 2 * fp32_adm.admitted) {
    std::fprintf(stderr,
                 "GATE FAILED: all-int8 admitted %d < 2x fp32's %d\n",
                 int8_adm.admitted, fp32_adm.admitted);
    ok = false;
  }
  // Transport delta: int8-transit keeps fp32 capacity, so it migrates the
  // same traffic; only the wire encoding differs. The analytic baseline is
  // fp16 cache bytes (ModelSpec::bytes_per_value), so int8 codes halve the
  // per-token transport (the 4x figure is vs the engine's fp32 blocks).
  const FleetMetrics& fp32_fm = rows[0].result.fleet;
  const FleetMetrics& transit_fm = rows[1].result.fleet;
  const double fp32_bpt = fp32_fm.migration_copied_tokens > 0
                              ? fp32_fm.migration_bytes /
                                    fp32_fm.migration_copied_tokens
                              : 0.0;
  const double transit_bpt = transit_fm.migration_copied_tokens > 0
                                 ? transit_fm.migration_bytes /
                                       transit_fm.migration_copied_tokens
                                 : 0.0;
  if (fp32_fm.migration_copied_tokens == 0 ||
      transit_fm.migration_copied_tokens == 0) {
    std::fprintf(stderr,
                 "GATE FAILED: migration probe moved no cache (fp32 %lld, "
                 "int8-transit %lld copied tokens)\n",
                 static_cast<long long>(fp32_fm.migration_copied_tokens),
                 static_cast<long long>(transit_fm.migration_copied_tokens));
    ok = false;
  } else if (transit_bpt * 1.8 > fp32_bpt) {
    std::fprintf(stderr,
                 "GATE FAILED: int8-transit migration bytes/token %.1f not "
                 ">=1.8x below fp32's %.1f\n",
                 transit_bpt, fp32_bpt);
    ok = false;
  }
  const double fp32_slo = rows[0].result.serve.combined.slo_attainment;
  for (size_t i = 1; i < rows.size(); ++i) {
    const double slo_i = rows[i].result.serve.combined.slo_attainment;
    if (slo_i + 1e-9 < fp32_slo) {
      std::fprintf(stderr,
                   "GATE FAILED: %s SLO attainment %.4f below fp32's %.4f\n",
                   rows[i].policy.c_str(), slo_i, fp32_slo);
      ok = false;
    }
  }
  const double int8_slo = rows[2].result.serve.combined.slo_attainment;
  std::printf("\nAll-int8: %.1fx admissions at equal pool bytes, SLO %+.2f "
              "points; int8 transport moves %.1fx fewer bytes per copied "
              "token.\n",
              fp32_adm.admitted > 0
                  ? static_cast<double>(int8_adm.admitted) / fp32_adm.admitted
                  : 0.0,
              100 * (int8_slo - fp32_slo),
              transit_bpt > 0 ? fp32_bpt / transit_bpt : 0.0);
  return ok ? 0 : 1;
}
