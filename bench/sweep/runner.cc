#include "bench/sweep/runner.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "baselines/fastgen_scheduler.h"
#include "baselines/fcfs_scheduler.h"
#include "baselines/random_scheduler.h"
#include "baselines/sarathi_scheduler.h"
#include "bench/sweep/fs_util.h"
#include "core/apt_sarathi_scheduler.h"
#include "core/apt_scheduler.h"
#include "runtime/runtime_config.h"
#include "runtime/thread_pool.h"
#include "serve/cost_model_backend.h"
#include "serve/multi_instance.h"
#include "serve/router.h"
#include "sim/cluster_spec.h"
#include "sim/cost_model.h"
#include "sim/model_spec.h"
#include "sim/report_writer.h"
#include "workload/length_sampler.h"
#include "workload/shared_prefix.h"
#include "workload/trace.h"

namespace aptserve {
namespace sweep {

namespace {

StatusOr<RoutePolicy> ParseRoutePolicy(const std::string& name) {
  if (name == "round-robin") return RoutePolicy::kRoundRobin;
  if (name == "least-loaded") return RoutePolicy::kLeastLoaded;
  if (name == "power-of-two") return RoutePolicy::kPowerOfTwo;
  if (name == "least-outstanding-work")
    return RoutePolicy::kLeastOutstandingWork;
  if (name == "prefix-affinity") return RoutePolicy::kPrefixAffinity;
  return Status::InvalidArgument("unknown router policy: " + name);
}

StatusOr<AdmissionMode> ParseAdmissionMode(const std::string& name) {
  if (name == "none") return AdmissionMode::kNone;
  if (name == "reject") return AdmissionMode::kReject;
  if (name == "deprioritize") return AdmissionMode::kDeprioritize;
  return Status::InvalidArgument("unknown admission mode: " + name);
}

StatusOr<std::vector<Request>> BuildCellTrace(const RunCell& cell) {
  if (cell.params.workload == "poisson") {
    APT_ASSIGN_OR_RETURN(DatasetProfile profile,
                         DatasetProfile::ByName(cell.params.profile));
    TraceConfig tc;
    tc.profile = profile;
    tc.num_requests = cell.params.num_requests;
    tc.rate_per_sec = cell.rate;
    tc.cv = cell.params.cv;
    tc.seed = cell.seed;
    tc.max_total_len = cell.params.max_total_len;
    return BuildTrace(tc);
  }
  // shared-prefix: the rate axis is conversation starts per second.
  SharedPrefixConfig sp;
  sp.system_prompt_len = cell.params.system_prompt_len;
  sp.num_conversations = cell.params.fan_out;
  sp.turns_per_conversation = cell.params.turns_per_conversation;
  sp.tokens_per_turn = cell.params.tokens_per_turn;
  sp.output_len_mean = cell.params.output_len_mean;
  sp.think_time_s = cell.params.think_time_s;
  sp.conversation_stagger_s = 1.0 / cell.rate;
  sp.seed = cell.seed;
  return BuildSharedPrefixTrace(sp);
}

json::JsonValue CdfJson(const SampleSet& samples, size_t max_points) {
  json::JsonValue arr = json::JsonValue::Array();
  for (const auto& [value, fraction] : samples.Cdf(max_points)) {
    json::JsonValue point = json::JsonValue::Array();
    point.Append(json::JsonValue::Number(value));
    point.Append(json::JsonValue::Number(fraction));
    arr.Append(std::move(point));
  }
  return arr;
}

json::JsonValue ResultJson(const RunCell& cell, size_t trace_size,
                           const MultiInstanceResult& r) {
  const SloReport& c = r.combined;
  json::JsonValue o = json::JsonValue::Object();
  o.Set("requests", json::JsonValue::Int(static_cast<int64_t>(trace_size)));
  o.Set("slo_attainment", json::JsonValue::Number(c.slo_attainment));
  o.Set("ttft_attainment", json::JsonValue::Number(c.ttft_attainment));
  o.Set("tbt_attainment", json::JsonValue::Number(c.tbt_attainment));
  o.Set("goodput_rps", json::JsonValue::Number(c.goodput_rps));
  o.Set("mean_ttft_s", json::JsonValue::Number(c.mean_ttft));
  o.Set("p99_ttft_s", json::JsonValue::Number(c.p99_ttft));
  o.Set("jain_fairness_ttft", json::JsonValue::Number(c.jain_fairness_ttft));
  o.Set("total_serving_time_s",
        json::JsonValue::Number(c.total_serving_time));
  o.Set("iterations", json::JsonValue::Int(c.iterations));
  o.Set("mean_batch_size", json::JsonValue::Number(c.mean_batch_size));
  o.Set("batch_limit_time_ratio",
        json::JsonValue::Number(c.batch_limit_time_ratio));
  o.Set("preemptions", json::JsonValue::Int(c.preemptions));
  o.Set("conversions", json::JsonValue::Int(c.conversions));
  o.Set("rejected", json::JsonValue::Int(r.rejected_requests));
  o.Set("deprioritized", json::JsonValue::Int(r.deprioritized_requests));
  o.Set("prefill_tokens_computed",
        json::JsonValue::Int(r.prefill_tokens_computed));
  o.Set("prefill_tokens_skipped",
        json::JsonValue::Int(r.prefill_tokens_skipped));
  o.Set("prefix_hits", json::JsonValue::Int(r.prefix.hits));
  o.Set("prefix_matched_tokens",
        json::JsonValue::Int(r.prefix.matched_tokens));
  o.Set("tokens_generated", json::JsonValue::Int(r.tokens_generated));
  // Routing decision-cost accounting (deterministic counters; the
  // route_probe_count column in runs.csv is the regression watchdog).
  o.Set("route_probe_count",
        json::JsonValue::Int(r.route_cost.instance_probes +
                             r.route_cost.mirror_nodes_walked +
                             r.route_cost.cell_probes));
  o.Set("route_decisions", json::JsonValue::Int(r.route_cost.decisions));
  o.Set("route_mirror_nodes_peak",
        json::JsonValue::Int(r.route_cost.mirror_node_peak));
  o.Set("route_mirror_evictions",
        json::JsonValue::Int(r.route_cost.mirror_evictions));
  json::JsonValue per_instance = json::JsonValue::Array();
  for (const int32_t n : r.requests_per_instance) {
    per_instance.Append(json::JsonValue::Int(n));
  }
  o.Set("requests_per_instance", std::move(per_instance));
  // Bounded-size CDF for the report's TTFT plot (seconds, cum. fraction).
  o.Set("ttft_cdf", CdfJson(c.ttfts, 64));
  (void)cell;
  return o;
}

json::JsonValue MetaJson(const RunCell& cell) {
  json::JsonValue env = json::JsonValue::Object();
  env.Set("runtime", json::JsonValue::String(RuntimeConfig{}.Describe()));
  env.Set("harness_version", json::JsonValue::Int(1));
  json::JsonValue meta = json::JsonValue::Object();
  meta.Set("cell", cell.Key());
  meta.Set("environment", std::move(env));
  return meta;
}

/// True iff the cell already ran to completion with exactly this resolved
/// config: meta.json's "cell" subtree equals Key() (order-insensitive
/// object equality) and result.json parses. The environment stamp is
/// deliberately excluded — rerunning on another host must not invalidate
/// finished cells.
bool CellIsCurrent(const RunCell& cell, const std::string& run_dir) {
  auto meta = json::ParseJsonFile(run_dir + "/meta.json");
  if (!meta.ok()) return false;
  const json::JsonValue* recorded = meta->Find("cell");
  if (recorded == nullptr || !(*recorded == cell.Key())) return false;
  return json::ParseJsonFile(run_dir + "/result.json").ok();
}

Status WriteJsonFile(const std::string& path, const json::JsonValue& value) {
  return WriteFile(path, [&value](std::ostream* out) {
    *out << value.Dump(2) << "\n";
  });
}

}  // namespace

StatusOr<std::unique_ptr<Scheduler>> MakeSchedulerByName(
    const std::string& kind, const SloSpec& slo) {
  if (kind == "vLLM") return std::unique_ptr<Scheduler>(
      std::make_unique<FcfsScheduler>());
  if (kind == "Random")
    return std::unique_ptr<Scheduler>(std::make_unique<RandomScheduler>());
  if (kind == "Sarathi")
    return std::unique_ptr<Scheduler>(std::make_unique<SarathiScheduler>());
  if (kind == "FastGen")
    return std::unique_ptr<Scheduler>(std::make_unique<FastGenScheduler>());
  if (kind == "FCFS-hybrid") {
    FcfsConfig c;
    c.allow_hidden_fallback = true;
    return std::unique_ptr<Scheduler>(std::make_unique<FcfsScheduler>(c));
  }
  if (kind == "Apt" || kind == "Apt*" || kind == "Apt-KVonly") {
    AptConfig c;
    c.slo = slo;
    if (kind == "Apt*") c.violation_decay = 0.4;
    if (kind == "Apt-KVonly") c.enable_hidden = false;
    return std::unique_ptr<Scheduler>(std::make_unique<AptScheduler>(c));
  }
  if (kind == "Apt-S") {
    AptSarathiConfig c;
    c.slo = slo;
    return std::unique_ptr<Scheduler>(
        std::make_unique<AptSarathiScheduler>(c));
  }
  return Status::InvalidArgument("unknown scheduler kind: " + kind);
}

StatusOr<json::JsonValue> ExecuteCell(const RunCell& cell) {
  APT_ASSIGN_OR_RETURN(std::vector<Request> trace, BuildCellTrace(cell));
  APT_ASSIGN_OR_RETURN(ModelSpec model, ModelSpec::ByName(cell.params.model));
  const CostModel cost_model(model, ClusterSpec::ForModel(model));
  const SloSpec slo{cell.params.slo_ttft_s, cell.params.slo_tbt_p99_s};

  RouterConfig rc;
  rc.n_instances = cell.params.n_instances;
  APT_ASSIGN_OR_RETURN(rc.policy, ParseRoutePolicy(cell.router_policy));
  APT_ASSIGN_OR_RETURN(rc.admission, ParseAdmissionMode(cell.admission));
  rc.admission_slack = cell.params.admission_slack;
  rc.block_size = cell.params.block_size;
  rc.default_slo = slo;
  const Router router(rc, &cost_model);

  // Validate the scheduler name once up front; the per-instance factory
  // then can't fail (SchedulerFactory has no error channel).
  APT_RETURN_NOT_OK(MakeSchedulerByName(cell.scheduler, slo).status());
  const std::string scheduler_kind = cell.scheduler;
  SchedulerFactory make_scheduler = [scheduler_kind, slo]() {
    auto sched = MakeSchedulerByName(scheduler_kind, slo);
    return std::move(sched).value();
  };

  CostModelBackend::Options backend_options;
  backend_options.block_size = cell.params.block_size;
  backend_options.pool_blocks_override = cell.params.pool_blocks;
  backend_options.enable_prefix_sharing = cell.prefix_sharing;
  BackendFactory make_backend =
      [&cost_model, backend_options](
          int32_t) -> StatusOr<std::unique_ptr<ExecutionBackend>> {
    APT_ASSIGN_OR_RETURN(std::unique_ptr<CostModelBackend> backend,
                         CostModelBackend::Create(cost_model, backend_options));
    return std::unique_ptr<ExecutionBackend>(std::move(backend));
  };

  // Each cell runs its fleet serially: sweep-level parallelism comes from
  // running many cells at once, and nested pools would oversubscribe.
  RuntimeConfig serial;
  serial.num_threads = 1;
  CellRouterConfig cells;
  cells.num_cells = cell.params.num_cells;
  MultiInstanceRunner runner(router, ServingLoopConfig{}, serial, cells);
  APT_ASSIGN_OR_RETURN(MultiInstanceResult result,
                       runner.Run(trace, make_scheduler, make_backend, slo));
  return ResultJson(cell, trace.size(), result);
}

StatusOr<SweepRunResult> RunSweep(const SweepConfig& config,
                                  const SweepOptions& options) {
  SweepConfig effective = config;
  if (!options.out_root_override.empty()) {
    effective.out_root = options.out_root_override;
  }
  if (options.jobs_override > 0) effective.jobs = options.jobs_override;

  APT_ASSIGN_OR_RETURN(std::vector<RunCell> cells, ExpandMatrix(effective));

  SweepRunResult summary;
  summary.exp_dir = effective.ExperimentDir();
  summary.planned = static_cast<int64_t>(cells.size());
  summary.outcomes.resize(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    summary.outcomes[i].run_id = cells[i].run_id;
  }

  if (options.dry_run) {
    std::printf("sweep %s: %zu cells -> %s\n", effective.name.c_str(),
                cells.size(), summary.exp_dir.c_str());
    for (const RunCell& cell : cells) {
      std::printf("  %s\n", cell.run_id.c_str());
    }
    std::printf("sweep: executed 0 skipped 0 failed 0 of %zu cells (dry run)\n",
                cells.size());
    return summary;
  }

  const std::string runs_dir = summary.exp_dir + "/runs";
  APT_RETURN_NOT_OK(MakeDirs(runs_dir));

  std::mutex io_mutex;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> executed{0}, skipped{0}, failed{0};

  const auto run_cell = [&](int64_t index) {
    CellOutcome& outcome = summary.outcomes[static_cast<size_t>(index)];
    if (stop.load(std::memory_order_relaxed)) return;  // fail-fast: kNotRun
    const RunCell& cell = cells[static_cast<size_t>(index)];
    const std::string run_dir = runs_dir + "/" + cell.run_id;

    if (options.resume && CellIsCurrent(cell, run_dir)) {
      outcome.state = CellOutcome::State::kSkipped;
      skipped.fetch_add(1, std::memory_order_relaxed);
      if (options.verbose) {
        std::lock_guard<std::mutex> lock(io_mutex);
        std::fprintf(stderr, "[sweep] skip %s (up to date)\n",
                     cell.run_id.c_str());
      }
      return;
    }

    const auto started = std::chrono::steady_clock::now();
    Status status = MakeDirs(run_dir);
    if (status.ok()) {
      // meta.json first: a cell that dies mid-run leaves meta without
      // result, which CellIsCurrent treats as stale.
      status = WriteJsonFile(run_dir + "/meta.json", MetaJson(cell));
    }
    if (status.ok()) {
      auto result = ExecuteCell(cell);
      status = result.ok() ? WriteJsonFile(run_dir + "/result.json", *result)
                           : result.status();
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();

    if (status.ok()) {
      outcome.state = CellOutcome::State::kRan;
      executed.fetch_add(1, std::memory_order_relaxed);
    } else {
      outcome.state = CellOutcome::State::kFailed;
      outcome.error = status.ToString();
      failed.fetch_add(1, std::memory_order_relaxed);
      if (options.fail_fast) stop.store(true, std::memory_order_relaxed);
    }
    if (options.verbose || !status.ok()) {
      std::lock_guard<std::mutex> lock(io_mutex);
      std::fprintf(stderr, "[sweep] %s %s (%.2fs)%s%s\n",
                   status.ok() ? "ran " : "FAIL", cell.run_id.c_str(), elapsed,
                   status.ok() ? "" : ": ",
                   status.ok() ? "" : status.ToString().c_str());
    }
  };

  RuntimeConfig pool_config;
  pool_config.num_threads = effective.jobs;
  // Cells have wildly different durations; dynamic chunk claiming keeps
  // every job slot busy (run order is not part of any result).
  pool_config.deterministic = false;
  runtime::ThreadPool pool(pool_config);
  pool.ParallelForEach(0, static_cast<int64_t>(cells.size()), /*grain=*/1,
                       [&](int64_t i) { run_cell(i); });

  summary.executed = executed.load();
  summary.skipped = skipped.load();
  summary.failed = failed.load();
  std::printf("sweep: executed %lld skipped %lld failed %lld of %zu cells\n",
              static_cast<long long>(summary.executed),
              static_cast<long long>(summary.skipped),
              static_cast<long long>(summary.failed), cells.size());
  return summary;
}

}  // namespace sweep
}  // namespace aptserve
