#include "bench/sweep/collect.h"

#include <cstdio>

#include "bench/sweep/fs_util.h"
#include "sim/report_writer.h"

namespace aptserve {
namespace sweep {

namespace {

// CSV cell rendering matching report_writer's conventions: %.10g numbers,
// raw strings (run ids and axis names are sanitized slugs, never quoted).
void Number(std::ostream* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  *out << buf;
}

}  // namespace

StatusOr<std::vector<CollectedRun>> CollectRuns(const std::string& exp_dir) {
  const std::string runs_dir = exp_dir + "/runs";
  APT_ASSIGN_OR_RETURN(std::vector<std::string> names, ListSubdirs(runs_dir));
  std::vector<CollectedRun> runs;
  runs.reserve(names.size());
  for (const std::string& name : names) {
    const std::string run_dir = runs_dir + "/" + name;
    auto meta = json::ParseJsonFile(run_dir + "/meta.json");
    auto result = json::ParseJsonFile(run_dir + "/result.json");
    const json::JsonValue* cell = meta.ok() ? meta->Find("cell") : nullptr;
    if (!meta.ok() || !result.ok() || cell == nullptr) {
      std::fprintf(stderr, "[collect] skipping %s (incomplete run)\n",
                   run_dir.c_str());
      continue;
    }
    CollectedRun run;
    run.run_id = name;
    run.cell = *cell;
    run.result = std::move(*result);
    runs.push_back(std::move(run));
  }
  return runs;
}

const char* RunsCsvHeader() {
  return "run_id,ablation,scheduler,router_policy,admission,prefix_sharing,"
         "workload,profile,model,n_instances,num_cells,rate,seed,requests,"
         "slo_attainment,ttft_attainment,tbt_attainment,goodput_rps,"
         "mean_ttft_s,p99_ttft_s,total_serving_time_s,iterations,"
         "mean_batch_size,preemptions,conversions,rejected,deprioritized,"
         "prefill_tokens_computed,prefill_tokens_skipped,prefix_hits,"
         "prefix_matched_tokens,tokens_generated,route_probe_count";
}

void WriteRunsCsv(const std::vector<CollectedRun>& runs, std::ostream* out) {
  *out << RunsCsvHeader() << "\n";
  for (const CollectedRun& run : runs) {
    const json::JsonValue& cell = run.cell;
    const json::JsonValue& result = run.result;
    const json::JsonValue params =
        cell.Find("params") != nullptr ? *cell.Find("params")
                                       : json::JsonValue::Object();
    *out << run.run_id << ',' << cell.GetString("ablation", "") << ','
         << cell.GetString("scheduler", "") << ','
         << cell.GetString("router_policy", "") << ','
         << cell.GetString("admission", "") << ','
         << (cell.GetBool("prefix_sharing", false) ? 1 : 0) << ','
         << params.GetString("workload", "") << ','
         << params.GetString("profile", "") << ','
         << params.GetString("model", "") << ','
         << params.GetInt("n_instances", 0) << ','
         << params.GetInt("num_cells", 1) << ',';
    Number(out, cell.GetNumber("rate", 0.0));
    *out << ',' << cell.GetInt("seed", 0) << ','
         << result.GetInt("requests", 0) << ',';
    Number(out, result.GetNumber("slo_attainment", 0.0));
    *out << ',';
    Number(out, result.GetNumber("ttft_attainment", 0.0));
    *out << ',';
    Number(out, result.GetNumber("tbt_attainment", 0.0));
    *out << ',';
    Number(out, result.GetNumber("goodput_rps", 0.0));
    *out << ',';
    Number(out, result.GetNumber("mean_ttft_s", 0.0));
    *out << ',';
    Number(out, result.GetNumber("p99_ttft_s", 0.0));
    *out << ',';
    Number(out, result.GetNumber("total_serving_time_s", 0.0));
    *out << ',' << result.GetInt("iterations", 0) << ',';
    Number(out, result.GetNumber("mean_batch_size", 0.0));
    *out << ',' << result.GetInt("preemptions", 0) << ','
         << result.GetInt("conversions", 0) << ','
         << result.GetInt("rejected", 0) << ','
         << result.GetInt("deprioritized", 0) << ','
         << result.GetInt("prefill_tokens_computed", 0) << ','
         << result.GetInt("prefill_tokens_skipped", 0) << ','
         << result.GetInt("prefix_hits", 0) << ','
         << result.GetInt("prefix_matched_tokens", 0) << ','
         << result.GetInt("tokens_generated", 0) << ','
         << result.GetInt("route_probe_count", 0) << "\n";
  }
}

StatusOr<std::vector<CollectedRun>> CollectAndWriteCsv(
    const std::string& exp_dir) {
  APT_ASSIGN_OR_RETURN(std::vector<CollectedRun> runs, CollectRuns(exp_dir));
  APT_RETURN_NOT_OK(MakeDirs(exp_dir + "/aggregate"));
  APT_RETURN_NOT_OK(WriteFile(exp_dir + "/aggregate/runs.csv",
                              [&runs](std::ostream* out) {
                                WriteRunsCsv(runs, out);
                              }));
  return runs;
}

}  // namespace sweep
}  // namespace aptserve
