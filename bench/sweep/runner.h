// Sweep execution: runs every expanded RunCell in-process through the
// Router + MultiInstanceRunner + CostModelBackend stack, with bounded
// concurrency on the runtime ThreadPool. Each cell owns one directory
// under <exp_dir>/runs/<run_id>/ holding meta.json (the resolved cell plus
// the environment stamp) and result.json (the metrics readout). --resume
// skips a cell iff its meta.json "cell" subtree equals the freshly
// expanded cell AND result.json parses — so editing any knob reruns
// exactly the cells it touches, and a crashed cell (meta written, result
// missing) reruns too.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/sweep/config.h"
#include "common/json.h"
#include "common/status.h"
#include "sim/metrics.h"
#include "sim/scheduler.h"

namespace aptserve {
namespace sweep {

struct SweepOptions {
  /// > 0 overrides the config's jobs (cells in flight at once).
  int32_t jobs_override = 0;
  bool resume = false;
  /// Print the expanded plan (one line per cell) and execute nothing.
  bool dry_run = false;
  /// Stop launching new cells after the first failure.
  bool fail_fast = false;
  /// Non-empty overrides the config's out_root.
  std::string out_root_override;
  /// Per-cell progress lines on stderr.
  bool verbose = true;
};

struct CellOutcome {
  enum class State { kRan, kSkipped, kFailed, kNotRun };
  std::string run_id;
  State state = State::kNotRun;
  std::string error;  ///< set for kFailed
};

struct SweepRunResult {
  std::string exp_dir;
  int64_t planned = 0;
  int64_t executed = 0;
  int64_t skipped = 0;  ///< resume hits
  int64_t failed = 0;
  /// Per-cell outcomes in plan order.
  std::vector<CellOutcome> outcomes;
};

/// Expands the matrix and executes (or, with dry_run, prints) it.
/// Individual cell failures are recorded, not propagated — the returned
/// Status is only for harness-level errors (bad config, unwritable
/// output). Prints the machine-checkable summary line
/// "sweep: executed E skipped S failed F of N cells" at the end.
StatusOr<SweepRunResult> RunSweep(const SweepConfig& config,
                                  const SweepOptions& options);

/// Executes one cell in-process and returns its result document. Exposed
/// for sweep_test so cell metrics can be checked without a directory tree.
StatusOr<json::JsonValue> ExecuteCell(const RunCell& cell);

/// Status-returning scheduler factory over the bench-suite names
/// (bench_util's MakeScheduler aborts on unknown kinds; config-driven
/// sweeps need a graceful error instead).
StatusOr<std::unique_ptr<Scheduler>> MakeSchedulerByName(
    const std::string& kind, const SloSpec& slo);

}  // namespace sweep
}  // namespace aptserve
