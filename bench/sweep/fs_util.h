// Minimal POSIX filesystem helpers shared by the sweep stages (the repo
// builds without <filesystem> elsewhere; keep that property).
#pragma once

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace aptserve {
namespace sweep {

inline bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

inline bool IsDirectory(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

/// mkdir -p: creates every missing component of `path`.
inline Status MakeDirs(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("MakeDirs: empty path");
  std::string prefix;
  size_t pos = 0;
  while (pos <= path.size()) {
    const size_t next = path.find('/', pos);
    prefix = next == std::string::npos ? path : path.substr(0, next);
    pos = next == std::string::npos ? path.size() + 1 : next + 1;
    if (prefix.empty()) continue;  // leading '/'
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Internal("mkdir " + prefix + ": " +
                              std::strerror(errno));
    }
  }
  if (!IsDirectory(path)) {
    return Status::Internal("MakeDirs: " + path + " is not a directory");
  }
  return Status::OK();
}

/// Sorted names of the subdirectories of `dir` (deterministic iteration
/// order regardless of the filesystem's).
inline StatusOr<std::vector<std::string>> ListSubdirs(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::NotFound("opendir " + dir + ": " + std::strerror(errno));
  }
  std::vector<std::string> names;
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    if (IsDirectory(dir + "/" + name)) names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace sweep
}  // namespace aptserve
