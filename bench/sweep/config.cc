#include "bench/sweep/config.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "serve/router.h"
#include "sim/model_spec.h"
#include "workload/length_sampler.h"

namespace aptserve {
namespace sweep {

namespace {

// The matrix axes accept the human-readable names the bench binaries
// already use; validate them here so a typo fails at parse time, before
// any cell has run.
const std::set<std::string>& KnownSchedulers() {
  static const std::set<std::string> kNames = {
      "vLLM",  "Random", "Sarathi",    "FastGen", "FCFS-hybrid",
      "Apt",   "Apt*",   "Apt-KVonly", "Apt-S"};
  return kNames;
}

const std::set<std::string>& KnownRouterPolicies() {
  static const std::set<std::string> kNames = {
      "round-robin", "least-loaded", "power-of-two",
      "least-outstanding-work", "prefix-affinity"};
  return kNames;
}

const std::set<std::string>& KnownAdmissionModes() {
  static const std::set<std::string> kNames = {"none", "reject",
                                               "deprioritize"};
  return kNames;
}

Status UnknownKey(const char* where, const std::string& key) {
  return Status::InvalidArgument(std::string("sweep config: unknown key \"") +
                                 key + "\" in " + where);
}

Status ExpectType(const char* where, const std::string& key, bool ok,
                  const char* want) {
  if (ok) return Status::OK();
  return Status::InvalidArgument(std::string("sweep config: ") + where + "." +
                                 key + " must be " + want);
}

// Applies one key of an override/base object onto `params`; strict about
// both key names and value types.
Status ApplyParamKey(const char* where, const std::string& key,
                     const json::JsonValue& v, CellParams* params) {
  const auto str = [&](std::string* out) -> Status {
    APT_RETURN_NOT_OK(ExpectType(where, key, v.is_string(), "a string"));
    *out = v.string_value();
    return Status::OK();
  };
  const auto num = [&](double* out) -> Status {
    APT_RETURN_NOT_OK(ExpectType(where, key, v.is_number(), "a number"));
    *out = v.number_value();
    return Status::OK();
  };
  const auto i32 = [&](int32_t* out) -> Status {
    APT_RETURN_NOT_OK(ExpectType(where, key, v.is_number(), "a number"));
    const double d = v.number_value();
    if (d != std::floor(d)) {
      return Status::InvalidArgument(std::string("sweep config: ") + where +
                                     "." + key + " must be an integer");
    }
    *out = static_cast<int32_t>(d);
    return Status::OK();
  };

  if (key == "workload") return str(&params->workload);
  if (key == "profile") return str(&params->profile);
  if (key == "model") return str(&params->model);
  if (key == "num_requests") return i32(&params->num_requests);
  if (key == "cv") return num(&params->cv);
  if (key == "max_total_len") return i32(&params->max_total_len);
  if (key == "slo_ttft_s") return num(&params->slo_ttft_s);
  if (key == "slo_tbt_p99_s") return num(&params->slo_tbt_p99_s);
  if (key == "n_instances") return i32(&params->n_instances);
  if (key == "num_cells") return i32(&params->num_cells);
  if (key == "block_size") return i32(&params->block_size);
  if (key == "pool_blocks") return i32(&params->pool_blocks);
  if (key == "admission_slack") return num(&params->admission_slack);
  if (key == "fan_out") return i32(&params->fan_out);
  if (key == "turns_per_conversation")
    return i32(&params->turns_per_conversation);
  if (key == "tokens_per_turn") return i32(&params->tokens_per_turn);
  if (key == "system_prompt_len") return i32(&params->system_prompt_len);
  if (key == "output_len_mean") return i32(&params->output_len_mean);
  if (key == "think_time_s") return num(&params->think_time_s);
  return UnknownKey(where, key);
}

Status ValidateParams(const CellParams& p) {
  if (p.workload != "poisson" && p.workload != "shared-prefix") {
    return Status::InvalidArgument(
        "sweep config: workload must be \"poisson\" or \"shared-prefix\", got "
        "\"" +
        p.workload + "\"");
  }
  APT_RETURN_NOT_OK(DatasetProfile::ByName(p.profile).status());
  APT_RETURN_NOT_OK(ModelSpec::ByName(p.model).status());
  if (p.n_instances < 1) {
    return Status::InvalidArgument("sweep config: n_instances must be >= 1");
  }
  if (p.num_requests < 1) {
    return Status::InvalidArgument("sweep config: num_requests must be >= 1");
  }
  if (p.block_size < 1) {
    return Status::InvalidArgument("sweep config: block_size must be >= 1");
  }
  return Status::OK();
}

template <typename T, typename Fn>
Status ParseAxis(const json::JsonValue& matrix, const char* key,
                 std::vector<T>* out, Fn element) {
  const json::JsonValue* axis = matrix.Find(key);
  if (axis == nullptr) return Status::OK();  // keep the default
  if (!axis->is_array() || axis->items().empty()) {
    return Status::InvalidArgument(std::string("sweep config: matrix.") + key +
                                   " must be a non-empty array");
  }
  out->clear();
  for (const json::JsonValue& item : axis->items()) {
    T value;
    APT_RETURN_NOT_OK(element(item, &value));
    out->push_back(value);
  }
  return Status::OK();
}

Status ParseMatrix(const json::JsonValue& m, SweepMatrix* matrix) {
  for (const auto& [key, value] : m.members()) {
    if (key != "schedulers" && key != "router_policies" &&
        key != "admission" && key != "prefix_sharing" && key != "seeds" &&
        key != "rates") {
      return UnknownKey("matrix", key);
    }
    (void)value;
  }
  const auto name_in = [](const std::set<std::string>& known,
                          const char* what) {
    const std::set<std::string>* known_ptr = &known;
    return [known_ptr, what](const json::JsonValue& v, std::string* out) {
      if (!v.is_string() || known_ptr->count(v.string_value()) == 0) {
        return Status::InvalidArgument(
            std::string("sweep config: unknown ") + what + " \"" +
            (v.is_string() ? v.string_value() : v.Dump()) + "\"");
      }
      *out = v.string_value();
      return Status::OK();
    };
  };
  APT_RETURN_NOT_OK(ParseAxis(m, "schedulers", &matrix->schedulers,
                              name_in(KnownSchedulers(), "scheduler")));
  APT_RETURN_NOT_OK(ParseAxis(m, "router_policies", &matrix->router_policies,
                              name_in(KnownRouterPolicies(), "router policy")));
  APT_RETURN_NOT_OK(ParseAxis(m, "admission", &matrix->admission,
                              name_in(KnownAdmissionModes(), "admission mode")));
  APT_RETURN_NOT_OK(ParseAxis(
      m, "prefix_sharing", &matrix->prefix_sharing,
      [](const json::JsonValue& v, bool* out) {
        if (!v.is_bool()) {
          return Status::InvalidArgument(
              "sweep config: matrix.prefix_sharing entries must be booleans");
        }
        *out = v.bool_value();
        return Status::OK();
      }));
  APT_RETURN_NOT_OK(ParseAxis(
      m, "seeds", &matrix->seeds, [](const json::JsonValue& v, uint64_t* out) {
        if (!v.is_number() || v.number_value() < 0 ||
            v.number_value() != std::floor(v.number_value())) {
          return Status::InvalidArgument(
              "sweep config: matrix.seeds entries must be non-negative "
              "integers");
        }
        *out = static_cast<uint64_t>(v.number_value());
        return Status::OK();
      }));
  APT_RETURN_NOT_OK(ParseAxis(
      m, "rates", &matrix->rates, [](const json::JsonValue& v, double* out) {
        if (!v.is_number() || v.number_value() <= 0) {
          return Status::InvalidArgument(
              "sweep config: matrix.rates entries must be positive numbers");
        }
        *out = v.number_value();
        return Status::OK();
      }));
  return Status::OK();
}

// %g rendering of a rate for the run id ("1.5" / "0.25" / "12").
std::string RateSlug(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", rate);
  return buf;
}

}  // namespace

json::JsonValue CellParams::ToJson() const {
  json::JsonValue o = json::JsonValue::Object();
  o.Set("workload", json::JsonValue::String(workload));
  o.Set("profile", json::JsonValue::String(profile));
  o.Set("model", json::JsonValue::String(model));
  o.Set("num_requests", json::JsonValue::Int(num_requests));
  o.Set("cv", json::JsonValue::Number(cv));
  o.Set("max_total_len", json::JsonValue::Int(max_total_len));
  o.Set("slo_ttft_s", json::JsonValue::Number(slo_ttft_s));
  o.Set("slo_tbt_p99_s", json::JsonValue::Number(slo_tbt_p99_s));
  o.Set("n_instances", json::JsonValue::Int(n_instances));
  o.Set("num_cells", json::JsonValue::Int(num_cells));
  o.Set("block_size", json::JsonValue::Int(block_size));
  o.Set("pool_blocks", json::JsonValue::Int(pool_blocks));
  o.Set("admission_slack", json::JsonValue::Number(admission_slack));
  o.Set("fan_out", json::JsonValue::Int(fan_out));
  o.Set("turns_per_conversation", json::JsonValue::Int(turns_per_conversation));
  o.Set("tokens_per_turn", json::JsonValue::Int(tokens_per_turn));
  o.Set("system_prompt_len", json::JsonValue::Int(system_prompt_len));
  o.Set("output_len_mean", json::JsonValue::Int(output_len_mean));
  o.Set("think_time_s", json::JsonValue::Number(think_time_s));
  return o;
}

json::JsonValue RunCell::Key() const {
  json::JsonValue o = json::JsonValue::Object();
  o.Set("ablation", json::JsonValue::String(ablation));
  o.Set("scheduler", json::JsonValue::String(scheduler));
  o.Set("router_policy", json::JsonValue::String(router_policy));
  o.Set("admission", json::JsonValue::String(admission));
  o.Set("prefix_sharing", json::JsonValue::Bool(prefix_sharing));
  o.Set("rate", json::JsonValue::Number(rate));
  o.Set("seed", json::JsonValue::Int(static_cast<int64_t>(seed)));
  o.Set("params", params.ToJson());
  return o;
}

std::string SanitizeSlug(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
    out.push_back(keep ? c : '_');
  }
  if (out.empty()) out = "_";
  return out;
}

StatusOr<CellParams> ApplyOverrides(const CellParams& base,
                                    const json::JsonValue& overrides) {
  if (!overrides.is_object()) {
    return Status::InvalidArgument(
        "sweep config: ablation overrides must be an object");
  }
  CellParams params = base;
  for (const auto& [key, value] : overrides.members()) {
    APT_RETURN_NOT_OK(ApplyParamKey("overrides", key, value, &params));
  }
  APT_RETURN_NOT_OK(ValidateParams(params));
  return params;
}

StatusOr<SweepConfig> ParseSweepConfig(const json::JsonValue& root) {
  if (!root.is_object()) {
    return Status::InvalidArgument("sweep config: document must be an object");
  }
  SweepConfig config;
  for (const auto& [key, value] : root.members()) {
    if (key == "name") {
      APT_RETURN_NOT_OK(ExpectType("config", key, value.is_string(),
                                   "a string"));
      config.name = value.string_value();
    } else if (key == "out_root") {
      APT_RETURN_NOT_OK(ExpectType("config", key, value.is_string(),
                                   "a string"));
      config.out_root = value.string_value();
    } else if (key == "jobs") {
      APT_RETURN_NOT_OK(ExpectType("config", key, value.is_number(),
                                   "a number"));
      config.jobs = static_cast<int32_t>(value.number_value());
    } else if (key == "base") {
      APT_RETURN_NOT_OK(ExpectType("config", key, value.is_object(),
                                   "an object"));
      for (const auto& [pkey, pvalue] : value.members()) {
        APT_RETURN_NOT_OK(ApplyParamKey("base", pkey, pvalue, &config.base));
      }
    } else if (key == "matrix") {
      APT_RETURN_NOT_OK(ExpectType("config", key, value.is_object(),
                                   "an object"));
      APT_RETURN_NOT_OK(ParseMatrix(value, &config.matrix));
    } else if (key == "ablations") {
      APT_RETURN_NOT_OK(ExpectType("config", key, value.is_array(),
                                   "an array"));
      for (const json::JsonValue& entry : value.items()) {
        if (!entry.is_object()) {
          return Status::InvalidArgument(
              "sweep config: ablations entries must be objects");
        }
        Ablation ablation;
        ablation.overrides = json::JsonValue::Object();
        for (const auto& [akey, avalue] : entry.members()) {
          if (akey == "name") {
            APT_RETURN_NOT_OK(ExpectType("ablation", akey, avalue.is_string(),
                                         "a string"));
            ablation.name = avalue.string_value();
          } else if (akey == "overrides") {
            APT_RETURN_NOT_OK(ExpectType("ablation", akey, avalue.is_object(),
                                         "an object"));
            ablation.overrides = avalue;
          } else {
            return UnknownKey("ablation", akey);
          }
        }
        if (ablation.name.empty()) {
          return Status::InvalidArgument(
              "sweep config: every ablation needs a non-empty name");
        }
        config.ablations.push_back(std::move(ablation));
      }
    } else {
      return UnknownKey("config", key);
    }
  }
  if (config.name.empty() || config.out_root.empty()) {
    return Status::InvalidArgument(
        "sweep config: name and out_root must be non-empty");
  }
  if (config.jobs < 1) {
    return Status::InvalidArgument("sweep config: jobs must be >= 1");
  }
  APT_RETURN_NOT_OK(ValidateParams(config.base));
  if (config.ablations.empty()) {
    Ablation baseline;
    baseline.name = "baseline";
    baseline.overrides = json::JsonValue::Object();
    config.ablations.push_back(std::move(baseline));
  }
  // Every ablation must resolve cleanly against the base before any cell
  // runs (ApplyOverrides revalidates, so a bad override fails here).
  for (const Ablation& ablation : config.ablations) {
    APT_RETURN_NOT_OK(
        ApplyOverrides(config.base, ablation.overrides).status());
  }
  return config;
}

StatusOr<SweepConfig> LoadSweepConfigFile(const std::string& path) {
  APT_ASSIGN_OR_RETURN(json::JsonValue root, json::ParseJsonFile(path));
  auto config = ParseSweepConfig(root);
  if (!config.ok()) {
    return Status(config.status().code(),
                  path + ": " + config.status().message());
  }
  return config;
}

StatusOr<std::vector<RunCell>> ExpandMatrix(const SweepConfig& config) {
  // Programmatically-built configs may leave ablations empty; behave like
  // the parser and expand a single no-override baseline.
  std::vector<Ablation> ablations = config.ablations;
  if (ablations.empty()) {
    Ablation baseline;
    baseline.name = "baseline";
    baseline.overrides = json::JsonValue::Object();
    ablations.push_back(std::move(baseline));
  }
  std::vector<RunCell> cells;
  std::set<std::string> seen_ids;
  for (const Ablation& ablation : ablations) {
    APT_ASSIGN_OR_RETURN(CellParams params,
                         ApplyOverrides(config.base, ablation.overrides));
    for (const std::string& scheduler : config.matrix.schedulers) {
      for (const std::string& policy : config.matrix.router_policies) {
        for (const std::string& admission : config.matrix.admission) {
          for (const bool sharing : config.matrix.prefix_sharing) {
            for (const double rate : config.matrix.rates) {
              for (const uint64_t seed : config.matrix.seeds) {
                RunCell cell;
                cell.ablation = ablation.name;
                cell.scheduler = scheduler;
                cell.router_policy = policy;
                cell.admission = admission;
                cell.prefix_sharing = sharing;
                cell.rate = rate;
                cell.seed = seed;
                cell.params = params;
                cell.run_id = SanitizeSlug(
                    ablation.name + "__" + scheduler + "__" + policy +
                    "__adm-" + admission + "__px-" + (sharing ? "on" : "off") +
                    "__r" + RateSlug(rate) + "__s" + std::to_string(seed));
                if (!seen_ids.insert(cell.run_id).second) {
                  return Status::InvalidArgument(
                      "sweep config: duplicate run id \"" + cell.run_id +
                      "\" (ablation names must be unique after "
                      "sanitization)");
                }
                cells.push_back(std::move(cell));
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

}  // namespace sweep
}  // namespace aptserve
