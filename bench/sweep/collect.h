// Collect stage: walks <exp_dir>/runs/<run_id>/{meta,result}.json and
// flattens every finished cell into one runs.csv row (the same
// header-then-rows CSV shape as sim/report_writer). Directories without a
// parseable meta+result pair are skipped with a warning — a crashed cell
// must not poison the aggregate.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace aptserve {
namespace sweep {

struct CollectedRun {
  std::string run_id;
  json::JsonValue cell;    ///< meta.json "cell" subtree
  json::JsonValue result;  ///< result.json document
};

/// All finished runs under `exp_dir`, sorted by run id. NotFound when the
/// runs/ directory doesn't exist.
StatusOr<std::vector<CollectedRun>> CollectRuns(const std::string& exp_dir);

/// The runs.csv column header (shared with sweep_test's conservation
/// check).
const char* RunsCsvHeader();

void WriteRunsCsv(const std::vector<CollectedRun>& runs, std::ostream* out);

/// Collects and writes <exp_dir>/aggregate/runs.csv; returns the rows for
/// the report stage.
StatusOr<std::vector<CollectedRun>> CollectAndWriteCsv(
    const std::string& exp_dir);

}  // namespace sweep
}  // namespace aptserve
