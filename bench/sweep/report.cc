#include "bench/sweep/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "bench/sweep/fs_util.h"
#include "sim/report_writer.h"

namespace aptserve {
namespace sweep {

namespace {

// ---- small rendering helpers -----------------------------------------------

std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

std::string HtmlEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

// Qualitative palette (Okabe-Ito, distinguishable in print and for common
// color-vision deficiencies), cycled when there are more series.
const char* SeriesColor(size_t i) {
  static const char* kPalette[] = {"#0072B2", "#D55E00", "#009E73",
                                   "#CC79A7", "#E69F00", "#56B4E9",
                                   "#F0E442", "#000000"};
  return kPalette[i % (sizeof(kPalette) / sizeof(kPalette[0]))];
}

// ---- series grouping -------------------------------------------------------

// A series is one line of the rate plots: all non-seed, non-rate axes.
// Axes with a single distinct value across the experiment are dropped
// from the label so smoke sweeps read "Apt" rather than
// "baseline/Apt/round-robin/none/px-off".
struct SeriesKey {
  std::string ablation, scheduler, policy, admission;
  bool prefix_sharing = false;
  bool operator<(const SeriesKey& o) const {
    return std::tie(ablation, scheduler, policy, admission, prefix_sharing) <
           std::tie(o.ablation, o.scheduler, o.policy, o.admission,
                    o.prefix_sharing);
  }
};

SeriesKey KeyOf(const CollectedRun& run) {
  SeriesKey key;
  key.ablation = run.cell.GetString("ablation", "");
  key.scheduler = run.cell.GetString("scheduler", "");
  key.policy = run.cell.GetString("router_policy", "");
  key.admission = run.cell.GetString("admission", "");
  key.prefix_sharing = run.cell.GetBool("prefix_sharing", false);
  return key;
}

struct SeriesData {
  std::string label;
  /// rate -> mean slo_attainment over seeds.
  std::map<double, double> attainment_by_rate;
  /// TTFT CDF of the first (lowest-seed) run at the highest rate.
  std::vector<std::pair<double, double>> ttft_cdf;
};

std::string SeriesLabel(const SeriesKey& key,
                        const std::set<std::string>& ablations,
                        const std::set<std::string>& schedulers,
                        const std::set<std::string>& policies,
                        const std::set<std::string>& admissions,
                        bool sharing_varies) {
  std::vector<std::string> parts;
  if (ablations.size() > 1) parts.push_back(key.ablation);
  if (schedulers.size() > 1 || parts.empty()) parts.push_back(key.scheduler);
  if (policies.size() > 1) parts.push_back(key.policy);
  if (admissions.size() > 1) parts.push_back("adm:" + key.admission);
  if (sharing_varies)
    parts.push_back(key.prefix_sharing ? "px-on" : "px-off");
  std::string label;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) label += " / ";
    label += parts[i];
  }
  return label;
}

// ---- SVG line plot ---------------------------------------------------------

struct PlotSeries {
  std::string label;
  std::vector<std::pair<double, double>> points;  ///< sorted by x
};

/// Hand-rolled line chart: fixed viewport, 5 ticks per axis, legend on the
/// right. Self-contained SVG (inline styling only).
std::string SvgLinePlot(const std::string& title, const std::string& x_label,
                        const std::string& y_label,
                        const std::vector<PlotSeries>& series) {
  const double kW = 640, kH = 360;
  const double kL = 64, kR = 200, kT = 36, kB = 48;  // margins
  double x_min = 0, x_max = 1, y_min = 0, y_max = 1;
  bool first = true;
  for (const PlotSeries& s : series) {
    for (const auto& [x, y] : s.points) {
      if (first) {
        x_min = x_max = x;
        y_min = y_max = y;
        first = false;
      }
      x_min = std::min(x_min, x);
      x_max = std::max(x_max, x);
      y_min = std::min(y_min, y);
      y_max = std::max(y_max, y);
    }
  }
  if (x_max <= x_min) x_max = x_min + 1;
  if (y_max <= y_min) y_max = y_min + 1;
  const auto px = [&](double x) {
    return kL + (x - x_min) / (x_max - x_min) * (kW - kL - kR);
  };
  const auto py = [&](double y) {
    return kH - kB - (y - y_min) / (y_max - y_min) * (kH - kT - kB);
  };

  std::ostringstream svg;
  svg << "<svg viewBox=\"0 0 " << kW << ' ' << kH
      << "\" xmlns=\"http://www.w3.org/2000/svg\" role=\"img\" "
         "style=\"max-width:56rem;font-family:sans-serif\">\n";
  svg << "<text x=\"" << kL << "\" y=\"20\" font-size=\"14\" "
         "font-weight=\"bold\">"
      << HtmlEscape(title) << "</text>\n";
  // Axes frame and ticks.
  svg << "<rect x=\"" << kL << "\" y=\"" << kT << "\" width=\""
      << (kW - kL - kR) << "\" height=\"" << (kH - kT - kB)
      << "\" fill=\"none\" stroke=\"#999\"/>\n";
  for (int i = 0; i <= 4; ++i) {
    const double fx = x_min + (x_max - x_min) * i / 4.0;
    const double fy = y_min + (y_max - y_min) * i / 4.0;
    svg << "<line x1=\"" << px(fx) << "\" y1=\"" << (kH - kB) << "\" x2=\""
        << px(fx) << "\" y2=\"" << (kH - kB + 4) << "\" stroke=\"#999\"/>"
        << "<text x=\"" << px(fx) << "\" y=\"" << (kH - kB + 18)
        << "\" font-size=\"11\" text-anchor=\"middle\">" << Fmt(fx)
        << "</text>\n";
    svg << "<line x1=\"" << (kL - 4) << "\" y1=\"" << py(fy) << "\" x2=\""
        << kL << "\" y2=\"" << py(fy) << "\" stroke=\"#999\"/>"
        << "<text x=\"" << (kL - 8) << "\" y=\"" << (py(fy) + 4)
        << "\" font-size=\"11\" text-anchor=\"end\">" << Fmt(fy)
        << "</text>\n";
  }
  svg << "<text x=\"" << (kL + (kW - kL - kR) / 2) << "\" y=\"" << (kH - 10)
      << "\" font-size=\"12\" text-anchor=\"middle\">" << HtmlEscape(x_label)
      << "</text>\n";
  svg << "<text x=\"16\" y=\"" << (kT + (kH - kT - kB) / 2)
      << "\" font-size=\"12\" text-anchor=\"middle\" transform=\"rotate(-90 "
         "16 "
      << (kT + (kH - kT - kB) / 2) << ")\">" << HtmlEscape(y_label)
      << "</text>\n";
  // Series polylines + legend.
  for (size_t i = 0; i < series.size(); ++i) {
    const PlotSeries& s = series[i];
    if (!s.points.empty()) {
      svg << "<polyline fill=\"none\" stroke=\"" << SeriesColor(i)
          << "\" stroke-width=\"2\" points=\"";
      for (const auto& [x, y] : s.points) {
        svg << px(x) << ',' << py(y) << ' ';
      }
      svg << "\"/>\n";
      for (const auto& [x, y] : s.points) {
        svg << "<circle cx=\"" << px(x) << "\" cy=\"" << py(y)
            << "\" r=\"2.5\" fill=\"" << SeriesColor(i) << "\"/>\n";
      }
    }
    const double ly = kT + 16 + 18 * static_cast<double>(i);
    svg << "<line x1=\"" << (kW - kR + 12) << "\" y1=\"" << ly << "\" x2=\""
        << (kW - kR + 36) << "\" y2=\"" << ly << "\" stroke=\""
        << SeriesColor(i) << "\" stroke-width=\"2\"/>"
        << "<text x=\"" << (kW - kR + 42) << "\" y=\"" << (ly + 4)
        << "\" font-size=\"11\">" << HtmlEscape(s.label) << "</text>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

// ---- tables ----------------------------------------------------------------

void AttainmentTable(std::ostringstream* html,
                     const std::map<SeriesKey, SeriesData>& series,
                     const std::set<double>& rates) {
  *html << "<h2>SLO attainment by series and rate</h2>\n<table>\n<tr>"
           "<th>series</th>";
  for (const double rate : rates) {
    *html << "<th>rate " << Fmt(rate) << "</th>";
  }
  *html << "</tr>\n";
  for (const auto& [key, data] : series) {
    *html << "<tr><td>" << HtmlEscape(data.label) << "</td>";
    for (const double rate : rates) {
      const auto it = data.attainment_by_rate.find(rate);
      *html << "<td>"
            << (it == data.attainment_by_rate.end() ? std::string("&mdash;")
                                                    : Fmt(it->second))
            << "</td>";
    }
    *html << "</tr>\n";
  }
  *html << "</table>\n";
}

void RunsTable(std::ostringstream* html,
               const std::vector<CollectedRun>& runs) {
  *html << "<h2>All runs</h2>\n<table>\n"
           "<tr><th>run</th><th>rate</th><th>seed</th><th>attain</th>"
           "<th>ttft attain</th><th>tbt attain</th><th>goodput r/s</th>"
           "<th>mean ttft s</th><th>p99 ttft s</th><th>rejected</th>"
           "<th>prefix hits</th></tr>\n";
  for (const CollectedRun& run : runs) {
    *html << "<tr><td>" << HtmlEscape(run.run_id) << "</td><td>"
          << Fmt(run.cell.GetNumber("rate", 0)) << "</td><td>"
          << run.cell.GetInt("seed", 0) << "</td><td>"
          << Fmt(run.result.GetNumber("slo_attainment", 0)) << "</td><td>"
          << Fmt(run.result.GetNumber("ttft_attainment", 0)) << "</td><td>"
          << Fmt(run.result.GetNumber("tbt_attainment", 0)) << "</td><td>"
          << Fmt(run.result.GetNumber("goodput_rps", 0)) << "</td><td>"
          << Fmt(run.result.GetNumber("mean_ttft_s", 0)) << "</td><td>"
          << Fmt(run.result.GetNumber("p99_ttft_s", 0)) << "</td><td>"
          << run.result.GetInt("rejected", 0) << "</td><td>"
          << run.result.GetInt("prefix_hits", 0) << "</td></tr>\n";
  }
  *html << "</table>\n";
}

}  // namespace

std::string RenderReportHtml(const std::string& experiment_name,
                             const std::vector<CollectedRun>& runs) {
  // Distinct axis values (for label minimization) and rates.
  std::set<std::string> ablations, schedulers, policies, admissions;
  std::set<double> rates;
  std::set<bool> sharing;
  for (const CollectedRun& run : runs) {
    const SeriesKey key = KeyOf(run);
    ablations.insert(key.ablation);
    schedulers.insert(key.scheduler);
    policies.insert(key.policy);
    admissions.insert(key.admission);
    sharing.insert(key.prefix_sharing);
    rates.insert(run.cell.GetNumber("rate", 0.0));
  }
  const double top_rate = rates.empty() ? 0.0 : *rates.rbegin();

  // Group into series; average attainment over seeds per (series, rate).
  std::map<SeriesKey, SeriesData> series;
  std::map<std::pair<SeriesKey, double>, std::pair<double, int>> sums;
  std::map<SeriesKey, int64_t> cdf_seed;
  for (const CollectedRun& run : runs) {
    const SeriesKey key = KeyOf(run);
    SeriesData& data = series[key];
    if (data.label.empty()) {
      data.label = SeriesLabel(key, ablations, schedulers, policies,
                               admissions, sharing.size() > 1);
    }
    const double rate = run.cell.GetNumber("rate", 0.0);
    auto& [sum, count] = sums[{key, rate}];
    sum += run.result.GetNumber("slo_attainment", 0.0);
    ++count;
    // One representative CDF per series at the stress (highest) rate: the
    // lowest seed wins, so reruns pick the same replica every time.
    if (rate == top_rate) {
      const int64_t seed = run.cell.GetInt("seed", 0);
      const auto it = cdf_seed.find(key);
      if (it == cdf_seed.end() || seed < it->second) {
        cdf_seed[key] = seed;
        data.ttft_cdf.clear();
        if (const json::JsonValue* cdf = run.result.Find("ttft_cdf")) {
          for (const json::JsonValue& point : cdf->items()) {
            if (point.is_array() && point.items().size() == 2) {
              data.ttft_cdf.emplace_back(point.items()[0].number_value(),
                                         point.items()[1].number_value());
            }
          }
        }
      }
    }
  }
  for (auto& [series_rate, sum_count] : sums) {
    series[series_rate.first].attainment_by_rate[series_rate.second] =
        sum_count.first / sum_count.second;
  }

  std::vector<PlotSeries> attainment_plot, cdf_plot;
  for (const auto& [key, data] : series) {
    PlotSeries a;
    a.label = data.label;
    for (const auto& [rate, attainment] : data.attainment_by_rate) {
      a.points.emplace_back(rate, attainment);
    }
    attainment_plot.push_back(std::move(a));
    PlotSeries c;
    c.label = data.label;
    c.points = data.ttft_cdf;
    cdf_plot.push_back(std::move(c));
  }

  std::ostringstream html;
  html << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
          "<meta charset=\"utf-8\">\n<title>sweep: "
       << HtmlEscape(experiment_name)
       << "</title>\n<style>\n"
          "body{font-family:sans-serif;margin:2rem;max-width:64rem}\n"
          "table{border-collapse:collapse;margin:1rem 0}\n"
          "td,th{border:1px solid #ccc;padding:0.3rem 0.6rem;"
          "font-size:0.85rem;text-align:right}\n"
          "th{background:#f2f2f2}\ntd:first-child,th:first-child"
          "{text-align:left}\n"
          "</style>\n</head>\n<body>\n";
  html << "<h1>Experiment: " << HtmlEscape(experiment_name) << "</h1>\n";
  html << "<p>" << runs.size() << " runs, " << series.size() << " series, "
       << rates.size() << " rates.</p>\n";
  html << SvgLinePlot("SLO attainment vs. request rate", "rate (req/s)",
                      "SLO attainment", attainment_plot);
  html << SvgLinePlot("TTFT CDF at rate " + Fmt(top_rate), "TTFT (s)",
                      "fraction of requests", cdf_plot);
  AttainmentTable(&html, series, rates);
  RunsTable(&html, runs);
  html << "</body>\n</html>\n";
  return html.str();
}

Status WriteReport(const std::string& experiment_name,
                   const std::vector<CollectedRun>& runs,
                   const std::string& exp_dir) {
  APT_RETURN_NOT_OK(MakeDirs(exp_dir + "/report"));
  const std::string html = RenderReportHtml(experiment_name, runs);
  return WriteFile(exp_dir + "/report/index.html",
                   [&html](std::ostream* out) { *out << html; });
}

}  // namespace sweep
}  // namespace aptserve
