// Experiment-sweep configuration: a JSON file describes one experiment as
// a Cartesian matrix (scheduler x router policy x admission mode x
// prefix-sharing x rate x seed) with named ablations that override base
// parameters, in the cascade sweep/collect/report shape. The config layer
// owns parsing (strict: unknown keys are errors, so a typo'd knob cannot
// silently run the wrong experiment), matrix expansion into RunCells with
// deterministic run ids, and the canonical resolved-cell JSON that keys
// --resume: a run directory is skipped iff its meta.json "cell" subtree
// equals the freshly-expanded cell, so any config change reruns exactly
// the cells it affects.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace aptserve {
namespace sweep {

/// Fully-resolved per-cell parameters: the config's "base" object after
/// applying an ablation's overrides. Everything here is part of the
/// resume key.
struct CellParams {
  /// "poisson" (length-sampled trace at the cell's rate) or
  /// "shared-prefix" (conversation fan-out; the rate axis maps to
  /// conversation starts per second).
  std::string workload = "poisson";
  std::string profile = "ShareGPT";  ///< DatasetProfile::ByName
  std::string model = "OPT-13B";     ///< ModelSpec::ByName
  int32_t num_requests = 200;        ///< poisson workload size
  double cv = 1.0;
  int32_t max_total_len = 2048;
  double slo_ttft_s = 1.0;
  double slo_tbt_p99_s = 1.0;
  // Fleet shape.
  int32_t n_instances = 2;
  /// Hierarchical fleet-of-fleets: cells in the two-level topology
  /// (1 = flat fleet; >1 consistent-hashes prefixes onto cells).
  int32_t num_cells = 1;
  int32_t block_size = 16;
  /// Block-pool size per instance; <= 0 derives from the cost model.
  int32_t pool_blocks = -1;
  double admission_slack = 1.0;
  // Shared-prefix workload knobs (ignored for poisson).
  int32_t fan_out = 8;
  int32_t turns_per_conversation = 4;
  int32_t tokens_per_turn = 32;
  int32_t system_prompt_len = 64;
  int32_t output_len_mean = 16;
  double think_time_s = 2.0;

  /// Canonical JSON rendering (fixed member order) — the params part of
  /// the resume key.
  json::JsonValue ToJson() const;
};

/// One named ablation: `overrides` is an object patching CellParams
/// fields (strictly validated against the known keys).
struct Ablation {
  std::string name;
  json::JsonValue overrides;  ///< object; may be empty
};

/// The Cartesian axes. Every combination of one element per axis (times
/// each ablation) is one run cell.
struct SweepMatrix {
  std::vector<std::string> schedulers{"Apt"};
  std::vector<std::string> router_policies{"round-robin"};
  std::vector<std::string> admission{"none"};
  std::vector<bool> prefix_sharing{false};
  std::vector<uint64_t> seeds{2025};
  std::vector<double> rates{1.0};
};

struct SweepConfig {
  std::string name = "default";
  std::string out_root = "sweep_runs";
  int32_t jobs = 1;
  CellParams base;
  SweepMatrix matrix;
  /// Defaults to a single no-override "baseline" entry.
  std::vector<Ablation> ablations;

  /// <out_root>/<name> — the experiment directory all stages share.
  std::string ExperimentDir() const { return out_root + "/" + name; }
};

/// One expanded cell of the matrix.
struct RunCell {
  std::string ablation;
  std::string scheduler;
  std::string router_policy;
  std::string admission;
  bool prefix_sharing = false;
  double rate = 0.0;
  uint64_t seed = 0;
  CellParams params;   ///< base + ablation overrides
  std::string run_id;  ///< deterministic directory slug, unique per cell

  /// The canonical resolved-cell object (axes + params) that meta.json
  /// records and --resume compares against.
  json::JsonValue Key() const;
};

/// Strict parse of a sweep config document (unknown keys anywhere are
/// InvalidArgument). Scheduler / policy / admission / profile / model
/// names are validated here so a bad matrix fails before any cell runs.
StatusOr<SweepConfig> ParseSweepConfig(const json::JsonValue& root);
StatusOr<SweepConfig> LoadSweepConfigFile(const std::string& path);

/// Applies an ablation's override object to `base` (strict keys).
StatusOr<CellParams> ApplyOverrides(const CellParams& base,
                                    const json::JsonValue& overrides);

/// Expands the full Cartesian product in deterministic order (ablation,
/// scheduler, policy, admission, prefix-sharing, rate, seed — outermost
/// first). Fails on duplicate run ids (e.g. two ablations with one name).
StatusOr<std::vector<RunCell>> ExpandMatrix(const SweepConfig& config);

/// Filesystem-safe slug: [A-Za-z0-9._-] kept, everything else '_'.
std::string SanitizeSlug(const std::string& raw);

}  // namespace sweep
}  // namespace aptserve
