// Report stage: renders the collected runs as one static, self-contained
// HTML page (no external assets, viewable from file://): an
// attainment-vs-rate line plot and a TTFT-CDF plot as inline SVG, plus
// paper-style tables (attainment by series x rate, and the full per-run
// table). Series are the distinct non-seed axis combinations; seed
// replicas average into one point.
#pragma once

#include <string>
#include <vector>

#include "bench/sweep/collect.h"
#include "common/status.h"

namespace aptserve {
namespace sweep {

/// The full page as a string (pure; tested without touching disk).
std::string RenderReportHtml(const std::string& experiment_name,
                             const std::vector<CollectedRun>& runs);

/// Renders and writes <exp_dir>/report/index.html.
Status WriteReport(const std::string& experiment_name,
                   const std::vector<CollectedRun>& runs,
                   const std::string& exp_dir);

}  // namespace sweep
}  // namespace aptserve
