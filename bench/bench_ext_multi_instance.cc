// Extension bench (paper §8 future work): multi-instance serving. Sweeps
// fleet sizes and dispatch policies with vLLM-style FCFS vs Apt-Serve per
// instance, reporting fleet-level SLO attainment.
#include "bench/bench_util.h"
#include "sim/multi_instance.h"

using namespace aptserve;
using namespace aptserve::bench;

int main() {
  const SloSpec slo{1.0, 1.0};
  const ModelSpec model = ModelSpec::Opt13B();
  CostModel cm(model, ClusterSpec::ForModel(model));

  TraceConfig tc;
  tc.profile = DatasetProfile::ShareGpt();
  tc.num_requests = 600;
  tc.seed = 55;

  std::printf("=== Extension: multi-instance serving (ShareGPT, OPT-13B "
              "per instance) ===\n");
  std::printf("%10s %6s %14s %12s %12s\n", "rate(r/s)", "N", "dispatch",
              "vLLM(%)", "Apt(%)");
  for (double rate : {6.0, 12.0}) {
    tc.rate_per_sec = rate;
    auto trace = BuildTrace(tc);
    if (!trace.ok()) return 1;
    for (int32_t n : {1, 2, 4}) {
      for (RoutePolicy policy :
           {RoutePolicy::kRoundRobin, RoutePolicy::kLeastLoaded,
            RoutePolicy::kPowerOfTwo}) {
        if (n == 1 && policy != RoutePolicy::kRoundRobin) continue;
        MultiInstanceConfig mc;
        mc.fleet.router.n_instances = n;
        mc.fleet.router.policy = policy;
        MultiInstanceSimulator mi(cm, mc);
        auto rf = mi.Run(*trace,
                         [] { return std::make_unique<FcfsScheduler>(); },
                         slo);
        auto ra = mi.Run(*trace,
                         [&] {
                           AptConfig c;
                           c.slo = slo;
                           return std::make_unique<AptScheduler>(c);
                         },
                         slo);
        if (!rf.ok() || !ra.ok()) return 1;
        std::printf("%10.1f %6d %14s %12.1f %12.1f\n", rate, n,
                    RoutePolicyName(policy),
                    100 * rf->combined.slo_attainment,
                    100 * ra->combined.slo_attainment);
        std::fflush(stdout);
      }
    }
  }
  std::printf("\nExpected shape: attainment scales with fleet size; "
              "least-loaded/power-of-two beat\nround-robin under skewed "
              "prompt lengths; Apt per instance dominates FCFS per "
              "instance at\nevery fleet size.\n");
  return 0;
}
