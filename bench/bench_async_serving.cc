// Async wall-clock serving vs the epoch-barrier fleet: the same trace, the
// same two real-engine instances, served (a) by the virtual-time
// MultiInstanceRunner (every instance stepped to completion behind the
// merge barrier) and (b) by the continuously-batching async mode (worker
// threads, bounded arrival queues, mid-step injection, real-time replay).
// Token streams are asserted bit-identical between the modes — the
// determinism contract enforced exactly where the speed is measured — and
// the snapshot records wall TTFT/TBT/e2e percentiles, sustained
// throughput, per-instance arrival-queue high-water marks and shed
// counts, a live-shedding row (shed_queue_depth=1 under a tight batch
// cap), and an epoch-barrier comparison row.
//
// Results land in BENCH_bench_async_serving.json. Like
// bench_parallel_scaling, the snapshot stamps hardware_concurrency and
// "multicore": wall-clock latency percentiles on a <4-core container have
// workers time-sharing one core and must not be read as serving capacity.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "serve/async_serving.h"
#include "serve/inference_backend.h"
#include "serve/multi_instance.h"
#include "sim/report_writer.h"

using namespace aptserve;

namespace {

using TokenMap = std::unordered_map<RequestId, std::vector<int32_t>>;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int32_t kInstances = 2;
constexpr int32_t kRequests = 48;
constexpr double kArrivalSpacing = 0.02;  // virtual seconds

std::vector<Request> BenchTrace() {
  Rng rng(77);
  std::vector<Request> trace;
  trace.reserve(kRequests);
  for (int32_t i = 0; i < kRequests; ++i) {
    Request r;
    r.id = i;
    r.prompt_len = static_cast<int32_t>(rng.UniformInt(8, 24));
    r.output_len = static_cast<int32_t>(rng.UniformInt(4, 12));
    r.arrival = kArrivalSpacing * i;
    trace.push_back(r);
  }
  return trace;
}

/// `uniform_weights` gives every instance the same weight seed — required
/// for the shedding row, where a request may finish on a different
/// instance than the one the virtual reference ran it on.
BackendFactory EngineFactory(std::vector<TokenMap>* sinks,
                             bool uniform_weights = false) {
  return [sinks, uniform_weights](
             int32_t i) -> StatusOr<std::unique_ptr<ExecutionBackend>> {
    InferenceBackendOptions options;
    options.virtual_timing = true;
    options.finished_sink = &(*sinks)[static_cast<size_t>(i)];
    return std::unique_ptr<ExecutionBackend>(std::make_unique<InferenceBackend>(
        ModelConfig::Tiny(), /*weight_seed=*/uniform_weights ? 9 : 9 + i,
        /*num_blocks=*/192,
        /*block_size=*/8, SamplingParams::TopK(8, 0.9), options));
  };
}

SchedulerFactory Fcfs() {
  return [] { return std::make_unique<FcfsScheduler>(); };
}

MultiInstanceRunner MakeRunner(int32_t max_batch_size = INT32_MAX) {
  DispatchConfig dispatch;
  dispatch.n_instances = kInstances;
  dispatch.policy = DispatchPolicy::kRoundRobin;
  ServingLoopConfig loop;
  loop.max_batch_size = max_batch_size;
  return MultiInstanceRunner(dispatch, loop);
}

TokenMap Flatten(std::vector<TokenMap> sinks) {
  TokenMap all;
  for (TokenMap& m : sinks) {
    for (auto& [id, toks] : m) all[id] = std::move(toks);
  }
  return all;
}

/// The determinism contract, enforced where the speed is measured: every
/// finished token stream must match the virtual reference bit-for-bit.
bool TokensMatch(const TokenMap& want, const TokenMap& got,
                 const char* label) {
  if (want.size() != got.size()) {
    std::fprintf(stderr, "FATAL: %s: %zu vs %zu finished requests\n", label,
                 want.size(), got.size());
    return false;
  }
  for (const auto& [id, toks] : want) {
    auto it = got.find(id);
    if (it == got.end() || it->second != toks) {
      std::fprintf(stderr,
                   "FATAL: %s: token stream diverged from the virtual "
                   "reference at request %d\n",
                   label, static_cast<int32_t>(id));
      return false;
    }
  }
  return true;
}

/// Per-instance backpressure/shed witnesses into a JSON row
/// (arrival_queue_high_water_i0, sheds_i0, ...).
void AddPerInstanceWitnesses(const AsyncServingResult& live,
                             bench::JsonObject* e) {
  for (size_t i = 0; i < live.arrival_queue_high_water_per_instance.size();
       ++i) {
    e->Int("arrival_queue_high_water_i" + std::to_string(i),
           static_cast<int64_t>(live.arrival_queue_high_water_per_instance[i]));
  }
  for (size_t i = 0; i < live.sheds_per_instance.size(); ++i) {
    e->Int("sheds_i" + std::to_string(i), live.sheds_per_instance[i]);
  }
}

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  const bool multicore = hw >= 4;
  if (!multicore) {
    std::fprintf(stderr,
                 "WARNING: hardware_concurrency=%u < 4 — the async fleet's "
                 "worker threads time-share cores here, so wall latency "
                 "percentiles understate real serving capacity; the JSON "
                 "snapshot records \"multicore\": false.\n",
                 hw);
  }

  bench::BenchJson::Instance().SetName("bench_async_serving");
  bench::BenchJson::Instance()
      .config()
      .Int("hardware_concurrency", hw)
      .Bool("multicore", multicore)
      .Int("instances", kInstances)
      .Int("requests", kRequests)
      .Num("arrival_spacing_s", kArrivalSpacing);

  const auto trace = BenchTrace();
  const SloSpec slo{5.0, 5.0};

  // ---- Epoch-barrier reference: virtual-time fleet ------------------------
  std::vector<TokenMap> virt_sinks(kInstances);
  MultiInstanceRunner runner = MakeRunner();
  double t0 = NowSeconds();
  auto virt = runner.Run(trace, Fcfs(), EngineFactory(&virt_sinks), slo);
  const double virt_wall = NowSeconds() - t0;
  if (!virt.ok()) {
    std::fprintf(stderr, "virtual run: %s\n", virt.status().ToString().c_str());
    return 1;
  }

  // ---- Async wall-clock mode ----------------------------------------------
  for (const double speedup : {100.0, 400.0}) {
    AsyncServingConfig async;
    async.replay_speedup = speedup;
    async.max_wall_seconds = 120.0;
    std::vector<TokenMap> async_sinks(kInstances);
    MultiInstanceRunner arunner = MakeRunner();
    t0 = NowSeconds();
    auto live = arunner.RunAsync(trace, Fcfs(), EngineFactory(&async_sinks),
                                 slo, async);
    const double async_wall = NowSeconds() - t0;
    if (!live.ok()) {
      std::fprintf(stderr, "async run: %s\n", live.status().ToString().c_str());
      return 1;
    }

    if (!TokensMatch(Flatten(virt_sinks), Flatten(std::move(async_sinks)),
                     "async")) {
      return 1;
    }

    const WallLatencyReport& wall = live->wall;
    std::printf(
        "=== Async serving @ replay_speedup=%.0f (hw=%u%s) ===\n"
        "  requests=%lld tokens=%lld wall=%.3fs sustained=%.0f tok/s\n"
        "  TTFT  p50=%.4fs p95=%.4fs p99=%.4fs\n"
        "  TBT   p50=%.4fs p95=%.4fs p99=%.4fs\n"
        "  e2e   p50=%.4fs p95=%.4fs p99=%.4fs\n"
        "  shed_migrations=%lld queue_high_water=%zu\n"
        "  epoch-barrier reference: wall=%.3fs (batch-everything virtual "
        "run)\n"
        "  token streams: bit-identical to the virtual reference\n",
        speedup, hw, multicore ? "" : ", single-core: do not read as capacity",
        static_cast<long long>(wall.requests),
        static_cast<long long>(wall.tokens), live->wall_duration_s,
        wall.throughput_tok_s, wall.ttft.P50(), wall.ttft.P95(),
        wall.ttft.P99(), wall.tbt.P50(), wall.tbt.P95(), wall.tbt.P99(),
        wall.e2e.P50(), wall.e2e.P95(), wall.e2e.P99(),
        static_cast<long long>(live->shed_migrations),
        live->arrival_queue_high_water, virt_wall);

    std::ostringstream csv;
    WriteWallLatencyCsv({{"async", wall}}, &csv);
    std::printf("%s\n", csv.str().c_str());

    bench::JsonObject e;
    e.Str("mode", "async")
        .Num("replay_speedup", speedup)
        .Int("requests", wall.requests)
        .Int("tokens", wall.tokens)
        .Num("wall_seconds", async_wall)
        .Num("serving_wall_seconds", live->wall_duration_s)
        .Num("sustained_tok_per_s", wall.throughput_tok_s)
        .Num("ttft_p50_s", wall.ttft.P50())
        .Num("ttft_p95_s", wall.ttft.P95())
        .Num("ttft_p99_s", wall.ttft.P99())
        .Num("tbt_p50_s", wall.tbt.P50())
        .Num("tbt_p95_s", wall.tbt.P95())
        .Num("tbt_p99_s", wall.tbt.P99())
        .Num("e2e_p50_s", wall.e2e.P50())
        .Num("e2e_p99_s", wall.e2e.P99())
        .Int("shed_migrations", live->shed_migrations)
        .Int("arrival_queue_high_water",
             static_cast<int64_t>(live->arrival_queue_high_water))
        .Str("tokens_bit_identical_to_virtual", "true");
    AddPerInstanceWitnesses(*live, &e);
    bench::BenchJson::Instance().AddEntry(std::move(e));
  }

  // ---- Live shedding row ----------------------------------------------------
  // shed_queue_depth > 0 makes overloaded workers export waiting requests
  // (cache state included) to the coolest instance over the queue fabric.
  // A small batch cap plus fast replay keeps the waiting queues deep so
  // the shed path actually fires. Instances share one weight seed here:
  // a shed request finishes on a different instance than the virtual run
  // routed it to, and the token-identity assertion must still hold.
  {
    constexpr int32_t kShedBatchCap = 4;
    constexpr double kShedSpeedup = 400.0;

    std::vector<TokenMap> ref_sinks(kInstances);
    MultiInstanceRunner ref_runner = MakeRunner(kShedBatchCap);
    auto ref = ref_runner.Run(trace, Fcfs(),
                              EngineFactory(&ref_sinks, /*uniform=*/true), slo);
    if (!ref.ok()) {
      std::fprintf(stderr, "shed reference: %s\n",
                   ref.status().ToString().c_str());
      return 1;
    }

    AsyncServingConfig async;
    async.replay_speedup = kShedSpeedup;
    async.max_wall_seconds = 120.0;
    async.shed_queue_depth = 1;  // shed on any queue depth over one
    std::vector<TokenMap> shed_sinks(kInstances);
    MultiInstanceRunner srunner = MakeRunner(kShedBatchCap);
    t0 = NowSeconds();
    auto live = srunner.RunAsync(
        trace, Fcfs(), EngineFactory(&shed_sinks, /*uniform=*/true), slo,
        async);
    const double shed_wall = NowSeconds() - t0;
    if (!live.ok()) {
      std::fprintf(stderr, "shed run: %s\n", live.status().ToString().c_str());
      return 1;
    }
    if (!TokensMatch(Flatten(std::move(ref_sinks)),
                     Flatten(std::move(shed_sinks)), "async_shed")) {
      return 1;
    }

    std::printf(
        "=== Async shedding @ replay_speedup=%.0f, batch cap %d, "
        "shed_queue_depth=1 ===\n"
        "  shed_migrations=%lld queue_high_water=%zu wall=%.3fs\n",
        kShedSpeedup, kShedBatchCap,
        static_cast<long long>(live->shed_migrations),
        live->arrival_queue_high_water, shed_wall);
    for (size_t i = 0; i < live->sheds_per_instance.size(); ++i) {
      std::printf("  instance %zu: sheds=%lld arrival_queue_high_water=%zu\n",
                  i, static_cast<long long>(live->sheds_per_instance[i]),
                  live->arrival_queue_high_water_per_instance[i]);
    }
    std::printf("  token streams: bit-identical to the (shed-free) virtual "
                "reference\n\n");

    bench::JsonObject e;
    e.Str("mode", "async_shed")
        .Num("replay_speedup", kShedSpeedup)
        .Int("max_batch_size", kShedBatchCap)
        .Int("shed_queue_depth", 1)
        .Int("requests", live->wall.requests)
        .Int("tokens", live->wall.tokens)
        .Num("wall_seconds", shed_wall)
        .Num("sustained_tok_per_s", live->wall.throughput_tok_s)
        .Int("shed_migrations", live->shed_migrations)
        .Int("arrival_queue_high_water",
             static_cast<int64_t>(live->arrival_queue_high_water))
        .Str("tokens_bit_identical_to_virtual", "true");
    AddPerInstanceWitnesses(*live, &e);
    bench::BenchJson::Instance().AddEntry(std::move(e));
  }

  // Epoch-barrier comparison row: the virtual fleet has no wall TTFT (its
  // latencies are virtual-frame), so the row records wall run time and
  // virtual-frame percentiles for side-by-side reading.
  bench::JsonObject e;
  e.Str("mode", "epoch_barrier_virtual")
      .Int("requests", static_cast<int64_t>(trace.size()))
      .Int("tokens", virt->tokens_generated)
      .Num("wall_seconds", virt_wall)
      .Num("virtual_ttft_p50_s", virt->combined.ttfts.Quantile(0.5))
      .Num("virtual_ttft_p99_s", virt->combined.ttfts.P99())
      .Num("slo_attainment", virt->combined.slo_attainment);
  bench::BenchJson::Instance().AddEntry(std::move(e));

  std::printf(
      "Async mode admits requests mid-step through the Inject seam (no "
      "epoch barrier);\nthe virtual mode remains the pinned bit-for-bit "
      "reference for token streams.\n");
  return 0;
}
