// Figure 10 reproduction: TTFT and per-request P99 TBT CDFs under FCFS,
// Apt-Serve's scheduling, and Apt-Serve's scheduling* (decay factor 0.4) at
// ShareGPT 6.0 / HumanEval 9.0 / LongBench 2.0 req/s on OPT-13B.
#include <filesystem>

#include "bench/bench_util.h"
#include "sim/report_writer.h"

using namespace aptserve;
using namespace aptserve::bench;

namespace {

void PrintCdf(const char* label, const SampleSet& samples) {
  std::printf("%s CDF (value_s:fraction):", label);
  for (const auto& [v, f] : samples.Cdf(8)) std::printf(" %.2f:%.2f", v, f);
  std::printf("\n");
}

/// Best-effort CSV export of the full CDFs for external plotting.
void ExportCdf(const std::string& name, const SampleSet& ttfts,
               const SampleSet& tbts) {
  std::error_code ec;
  std::filesystem::create_directories("bench_output", ec);
  if (ec) return;
  (void)WriteFile("bench_output/fig10_" + name + "_ttft_cdf.csv",
                  [&](std::ostream* out) { WriteCdfCsv(ttfts, out); });
  (void)WriteFile("bench_output/fig10_" + name + "_p99tbt_cdf.csv",
                  [&](std::ostream* out) { WriteCdfCsv(tbts, out); });
}

}  // namespace

int main() {
  struct Case {
    DatasetProfile profile;
    double rate;
    SloSpec slo;
  };
  const std::vector<Case> cases = {
      {DatasetProfile::ShareGpt(), 6.0, SloSpec{1.0, 1.0}},
      {DatasetProfile::HumanEval(), 9.0, SloSpec{0.5, 0.5}},
      {DatasetProfile::LongBench(), 2.0, SloSpec{4.0, 1.0}},
  };
  const std::vector<std::string> systems = {"FCFS-hybrid", "Apt", "Apt*"};

  std::printf("=== Figure 10: request latency distributions (OPT-13B) ===\n");
  for (const Case& c : cases) {
    std::printf("\n--- %s @ %.1f req/s ---\n", c.profile.name.c_str(),
                c.rate);
    for (const auto& s : systems) {
      RunSpec spec;
      spec.profile = c.profile;
      spec.rate = c.rate;
      spec.slo = c.slo;
      spec.num_requests = 500;
      const SloReport rep = RunOnce(spec, s);
      std::printf("[%s] SLO=%.1f%% TTFT p50/p99=%.2f/%.2fs  "
                  "P99TBT p50/p99=%.3f/%.3fs\n",
                  s.c_str(), 100 * rep.slo_attainment,
                  rep.ttfts.Quantile(0.5), rep.ttfts.P99(),
                  rep.p99_tbts.Quantile(0.5), rep.p99_tbts.P99());
      PrintCdf("  TTFT", rep.ttfts);
      PrintCdf("  P99TBT", rep.p99_tbts);
      ExportCdf(c.profile.name + "_" + s, rep.ttfts, rep.p99_tbts);
      std::fflush(stdout);
    }
  }
  std::printf("\n(full CDFs exported to bench_output/fig10_*.csv)\n");
  std::printf("\nExpected shape (paper): Apt's scheduling meets SLOs for "
              ">90%% of requests but shows\na starved tail (~10%%); the "
              "decay-0.4 variant (Apt*) trims that tail at a small\n"
              "attainment cost; FCFS is far worse on both.\n");
  return 0;
}
