// Fleet-routing sweep: routing policy x instance-count x shared-prefix
// fan-out over the conversation workload, run on BOTH execution backends
// (cost-model fleet and real-engine fleet, prefix sharing enabled).
//
// Reported per cell: prefill tokens computed/skipped, the prefill
// reduction factor vs round-robin on the same cell, mean TTFT, goodput,
// SLO attainment, prefix hits and the per-instance request spread.
//
// Two hard checks gate the exit code (the PR's acceptance criteria):
//   1. PrefixStats identical across backends on every grid cell — routing
//      is backend-independent, so the shards (and what each instance's
//      index earns on them) must be too.
//   2. Prefix-affinity routing achieves >= 1.5x prefill-token reduction
//      vs round-robin on every cell of the sweep's conversation workload.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "baselines/fcfs_scheduler.h"
#include "bench/bench_util.h"
#include "serve/cost_model_backend.h"
#include "serve/inference_backend.h"
#include "serve/multi_instance.h"
#include "serve/router.h"
#include "workload/shared_prefix.h"

namespace aptserve {
namespace {

constexpr int32_t kBlockSize = 4;
constexpr int32_t kPoolBlocks = 512;

std::vector<Request> MakeTrace(int32_t fan_out) {
  SharedPrefixConfig cfg;
  cfg.system_prompt_len = 16;
  cfg.num_conversations = fan_out;
  cfg.turns_per_conversation = 5;
  cfg.tokens_per_turn = 20;
  cfg.output_len_mean = 6;
  cfg.think_time_s = 2.0;
  cfg.conversation_stagger_s = 0.25;
  cfg.vocab_size = ModelConfig::Tiny().vocab_size;
  auto trace = BuildSharedPrefixTrace(cfg);
  if (!trace.ok()) {
    std::fprintf(stderr, "trace: %s\n", trace.status().ToString().c_str());
    std::abort();
  }
  return *trace;
}

MultiInstanceResult RunFleet(const std::vector<Request>& trace,
                             const CostModel& cm, RoutePolicy policy,
                             int32_t instances, bool engine_backend) {
  RouterConfig rc;
  rc.n_instances = instances;
  rc.policy = policy;
  rc.block_size = kBlockSize;
  MultiInstanceRunner runner(Router(rc, &cm), ServingLoopConfig{});
  BackendFactory make_backend;
  if (engine_backend) {
    make_backend =
        [](int32_t) -> StatusOr<std::unique_ptr<ExecutionBackend>> {
      InferenceBackendOptions o;
      o.virtual_timing = true;
      o.enable_prefix_sharing = true;
      return std::unique_ptr<ExecutionBackend>(
          std::make_unique<InferenceBackend>(
              ModelConfig::Tiny(), /*weight_seed=*/42, kPoolBlocks,
              kBlockSize, SamplingParams{}, o));
    };
  } else {
    make_backend =
        [&cm](int32_t) -> StatusOr<std::unique_ptr<ExecutionBackend>> {
      CostModelBackend::Options o;
      o.block_size = kBlockSize;
      o.pool_blocks_override = kPoolBlocks;
      o.enable_prefix_sharing = true;
      o.token_vocab = ModelConfig::Tiny().vocab_size;
      APT_ASSIGN_OR_RETURN(std::unique_ptr<CostModelBackend> backend,
                           CostModelBackend::Create(cm, o));
      return std::unique_ptr<ExecutionBackend>(std::move(backend));
    };
  }
  auto result = runner.Run(
      trace, [] { return std::make_unique<FcfsScheduler>(); }, make_backend,
      SloSpec{10.0, 10.0});
  if (!result.ok()) {
    std::fprintf(stderr, "fleet(%s): %s\n", RoutePolicyName(policy),
                 result.status().ToString().c_str());
    std::abort();
  }
  return *result;
}

void Record(const std::string& backend, RoutePolicy policy,
            int32_t instances, int32_t fan_out,
            const MultiInstanceResult& r, double reduction) {
  std::string spread;
  for (size_t i = 0; i < r.requests_per_instance.size(); ++i) {
    if (i > 0) spread += "/";
    spread += std::to_string(r.requests_per_instance[i]);
  }
  bench::JsonObject e;
  e.Str("backend", backend)
      .Str("policy", RoutePolicyName(policy))
      .Int("instances", instances)
      .Int("fan_out", fan_out)
      .Int("prefill_tokens_computed", r.prefill_tokens_computed)
      .Int("prefill_tokens_skipped", r.prefill_tokens_skipped)
      .Num("prefill_reduction_vs_rr", reduction)
      .Num("mean_ttft_s", r.combined.mean_ttft)
      .Num("goodput_rps", r.combined.goodput_rps)
      .Num("slo_attainment", r.combined.slo_attainment)
      .Int("prefix_hits", r.prefix.hits)
      .Int("prefix_matched_tokens", r.prefix.matched_tokens)
      .Str("requests_per_instance", spread);
  bench::BenchJson::Instance().AddEntry(std::move(e));
}

bool SamePrefixStats(const PrefixStats& a, const PrefixStats& b) {
  return a.lookups == b.lookups && a.hits == b.hits &&
         a.matched_tokens == b.matched_tokens &&
         a.shared_blocks == b.shared_blocks &&
         a.cow_matches == b.cow_matches;
}

}  // namespace
}  // namespace aptserve

int main() {
  using namespace aptserve;

  bench::BenchJson::Instance().config()
      .Int("block_size", kBlockSize)
      .Int("pool_blocks", kPoolBlocks)
      .Str("scheduler", "FCFS")
      .Str("cost_model", "OPT-13B")
      .Str("engine_model", "Tiny")
      .Int("turns_per_conversation", 5)
      .Int("tokens_per_turn", 20)
      .Int("system_prompt_len", 16);

  const ModelSpec m = ModelSpec::Opt13B();
  const CostModel cm(m, ClusterSpec::ForModel(m));

  const std::vector<RoutePolicy> policies = {
      RoutePolicy::kRoundRobin, RoutePolicy::kLeastOutstandingWork,
      RoutePolicy::kPrefixAffinity};
  const std::vector<int32_t> instance_counts = {2, 4};
  const std::vector<int32_t> fan_outs = {5, 7};

  std::printf("=== Fleet routing: policy x instances x fan-out sweep ===\n");
  std::printf("%-16s %-22s %4s %6s | %8s %8s %8s | %9s %9s | %s\n",
              "backend", "policy", "inst", "fanout", "pf_comp", "pf_skip",
              "redux", "mean_ttft", "goodput", "spread");

  bool parity_ok = true;
  bool reduction_ok = true;
  for (int32_t instances : instance_counts) {
    for (int32_t fan_out : fan_outs) {
      const auto trace = MakeTrace(fan_out);
      // Per-policy results for both backends on this cell.
      std::map<int, std::pair<MultiInstanceResult, MultiInstanceResult>>
          results;
      int64_t rr_computed_cost = 0;
      for (RoutePolicy policy : policies) {
        MultiInstanceResult cost =
            RunFleet(trace, cm, policy, instances, /*engine_backend=*/false);
        MultiInstanceResult engine =
            RunFleet(trace, cm, policy, instances, /*engine_backend=*/true);
        if (policy == RoutePolicy::kRoundRobin) {
          rr_computed_cost = cost.prefill_tokens_computed;
        }
        // Check 1: identical PrefixStats across backends, fleet-wide and
        // per instance.
        bool cell_parity =
            SamePrefixStats(cost.prefix, engine.prefix) &&
            cost.prefill_tokens_skipped == engine.prefill_tokens_skipped &&
            cost.requests_per_instance == engine.requests_per_instance;
        for (int32_t i = 0; cell_parity && i < instances; ++i) {
          cell_parity = SamePrefixStats(cost.prefix_per_instance[i],
                                        engine.prefix_per_instance[i]);
        }
        if (!cell_parity) {
          parity_ok = false;
          std::printf("  !! PrefixStats diverged across backends: %s inst=%d "
                      "fanout=%d\n",
                      RoutePolicyName(policy), instances, fan_out);
        }
        const double reduction =
            cost.prefill_tokens_computed > 0
                ? static_cast<double>(rr_computed_cost) /
                      cost.prefill_tokens_computed
                : 0.0;
        Record("cost-model", policy, instances, fan_out, cost, reduction);
        Record("inference-engine", policy, instances, fan_out, engine,
               reduction);
        for (const auto& [name, r] :
             {std::make_pair(std::string("cost-model"), &cost),
              std::make_pair(std::string("inference-engine"), &engine)}) {
          std::string spread;
          for (size_t i = 0; i < r->requests_per_instance.size(); ++i) {
            if (i > 0) spread += "/";
            spread += std::to_string(r->requests_per_instance[i]);
          }
          std::printf(
              "%-16s %-22s %4d %6d | %8lld %8lld %7.2fx | %9.5f %9.3f | %s\n",
              name.c_str(), RoutePolicyName(policy), instances, fan_out,
              static_cast<long long>(r->prefill_tokens_computed),
              static_cast<long long>(r->prefill_tokens_skipped), reduction,
              r->combined.mean_ttft, r->combined.goodput_rps,
              spread.c_str());
        }
        // Check 2: affinity beats round-robin by >= 1.5x on every cell.
        if (policy == RoutePolicy::kPrefixAffinity && reduction < 1.5) {
          reduction_ok = false;
          std::printf("  !! affinity reduction %.2fx < 1.5x at inst=%d "
                      "fanout=%d\n",
                      reduction, instances, fan_out);
        }
      }
      (void)results;
    }
  }

  std::printf("\nPrefixStats identical across backends on every cell: %s\n",
              parity_ok ? "yes" : "NO");
  std::printf("prefix-affinity >=1.5x prefill reduction vs round-robin on "
              "every cell: %s\n",
              reduction_ok ? "yes" : "NO");
  bench::BenchJson::Instance().config()
      .Int("parity_ok", parity_ok ? 1 : 0)
      .Int("reduction_ok", reduction_ok ? 1 : 0);
  return parity_ok && reduction_ok ? 0 : 1;
}
