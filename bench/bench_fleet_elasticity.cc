// Fleet elasticity under diurnal traffic: a static fleet sized for peak
// load versus the event-driven FleetController scaling between
// min_instances and the same peak size (cold-start warmup included), with
// live request migration draining instances on the way down.
//
// The readout is the operator's bill versus the users' experience:
// instance-seconds consumed, SLO attainment, and goodput. Gates (enforced,
// exit 1): the elastic fleet must use >=20% fewer instance-seconds than the
// peak-sized static fleet at equal-or-better SLO attainment.
//
// Results land in BENCH_bench_fleet_elasticity.json (committed snapshot
// under bench/results/).
// Set APTSERVE_TRACE_JSON=<path> to run the elastic fleet with the
// request-lifecycle tracer attached: the run writes a Chrome trace_event
// JSON there (chrome://tracing / Perfetto loadable), a Prometheus text
// snapshot next to it (<path>.prom), and gates (exit 1) on the validator:
// well-formed JSON, monotonic per-track timestamps, every migration flow
// arrow matched, and at least one scale event present.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/sarathi_scheduler.h"
#include "bench/bench_util.h"
#include "obs/chrome_trace.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "serve/cost_model_backend.h"
#include "serve/fleet_controller.h"
#include "workload/arrival.h"

using namespace aptserve;

namespace {

constexpr int32_t kPeakInstances = 4;
constexpr double kTickS = 2.0;
constexpr double kWarmupS = 5.0;

/// Diurnal day: trough ~1 rps (one OPT-13B instance is comfortable), peak
/// ~8 rps (needs the whole 4-instance fleet at the paper's ~2.6 rps knee),
/// plus one flash crowd on the evening shoulder.
StatusOr<std::vector<Request>> BuildDiurnalTrace(int32_t n, uint64_t seed) {
  Rng rng(seed);
  DiurnalProfile profile;
  profile.base_rate = 1.0;
  profile.peak_rate = 8.0;
  profile.period_s = 600.0;
  FlashCrowd crowd;
  crowd.start_s = 380.0;
  crowd.duration_s = 40.0;
  crowd.multiplier = 1.6;
  APT_ASSIGN_OR_RETURN(std::vector<TimePoint> arrivals,
                       DiurnalArrivals(profile, {crowd}, /*cv=*/1.0, n, &rng));
  const DatasetProfile lengths = DatasetProfile::ShareGpt();
  std::vector<Request> trace;
  trace.reserve(n);
  for (int32_t i = 0; i < n; ++i) {
    Request r;
    r.id = i;
    r.arrival = arrivals[i];
    r.prompt_len = std::min(lengths.input.Sample(&rng), 2047);
    r.output_len =
        std::max(1, std::min(lengths.output.Sample(&rng), 2048 - r.prompt_len));
    trace.push_back(r);
  }
  return trace;
}

struct RunRow {
  const char* label;
  FleetResult result;
};

}  // namespace

int main() {
  const SloSpec slo{5.0, 5.0};
  const ModelSpec model = ModelSpec::Opt13B();
  const CostModel cm(model, ClusterSpec::ForModel(model));
  // Chunked prefill (Sarathi) keeps mid-pass requests in the waiting
  // queue, so drain migrations genuinely carry partial cache state.
  const auto make_scheduler = [] {
    return std::make_unique<SarathiScheduler>(SarathiConfig{});
  };
  const auto make_backend =
      [&](int32_t) -> StatusOr<std::unique_ptr<ExecutionBackend>> {
    APT_ASSIGN_OR_RETURN(
        std::unique_ptr<CostModelBackend> backend,
        CostModelBackend::Create(cm, CostModelBackend::Options{}));
    return std::unique_ptr<ExecutionBackend>(std::move(backend));
  };

  auto trace_or = BuildDiurnalTrace(/*n=*/2500, /*seed=*/2026);
  if (!trace_or.ok()) {
    std::fprintf(stderr, "trace: %s\n", trace_or.status().ToString().c_str());
    return 1;
  }
  const std::vector<Request>& trace = *trace_or;

  bench::BenchJson::Instance().SetName("bench_fleet_elasticity");
  bench::BenchJson::Instance()
      .config()
      .Int("requests", static_cast<int64_t>(trace.size()))
      .Num("diurnal_base_rps", 1.0)
      .Num("diurnal_peak_rps", 8.0)
      .Num("period_s", 600.0)
      .Int("peak_instances", kPeakInstances)
      .Num("tick_interval_s", kTickS)
      .Num("instance_warmup_s", kWarmupS)
      .Num("slo_ttft_s", slo.ttft_s);

  const char* trace_path = std::getenv("APTSERVE_TRACE_JSON");
  obs::TraceRecorder trace_recorder(/*shard_capacity=*/size_t{1} << 18);
  obs::MetricsRegistry metrics;

  std::vector<RunRow> rows;
  {
    // Static fleet sized for peak: the capacity an operator must hold all
    // day to survive the evening.
    FleetConfig cfg;
    cfg.router.n_instances = kPeakInstances;
    cfg.router.policy = RoutePolicy::kLeastOutstandingWork;
    FleetController controller(cfg, &cm);
    auto r = controller.Run(trace, make_scheduler, make_backend, slo);
    if (!r.ok()) {
      std::fprintf(stderr, "static: %s\n", r.status().ToString().c_str());
      return 1;
    }
    rows.push_back({"static-peak", std::move(*r)});
  }
  {
    // Elastic fleet: starts at the trough size, grows on queue depth and
    // the SLO guard, drains (migrating queued requests away) when quiet.
    FleetConfig cfg;
    cfg.router.n_instances = 1;
    cfg.router.policy = RoutePolicy::kLeastOutstandingWork;
    cfg.min_instances = 1;
    cfg.max_instances = kPeakInstances;
    cfg.tick_interval_s = kTickS;
    cfg.instance_warmup_s = kWarmupS;
    cfg.scale_up_cooldown_s = 4.0;
    cfg.scale_down_cooldown_s = 45.0;
    cfg.scaling = {ScalingRule::QueueDepth(/*high=*/1.0, /*low=*/0.1),
                   ScalingRule::TargetUtilization(/*high=*/0.75, /*low=*/0.30),
                   ScalingRule::SloAttainmentGuard(/*floor=*/0.97,
                                                   /*window_s=*/40.0)};
    cfg.enable_migration = true;
    cfg.migration_imbalance_threshold = 4.0;
    cfg.max_migrations_per_tick = 16;
    if (trace_path != nullptr) {
      cfg.trace = &trace_recorder;
      cfg.metrics = &metrics;
    }
    FleetController controller(cfg, &cm);
    auto r = controller.Run(trace, make_scheduler, make_backend, slo);
    if (!r.ok()) {
      std::fprintf(stderr, "elastic: %s\n", r.status().ToString().c_str());
      return 1;
    }
    rows.push_back({"elastic", std::move(*r)});
  }

  std::printf("=== Fleet elasticity: diurnal ShareGPT day on OPT-13B "
              "instances ===\n");
  std::printf("%12s %9s %9s %12s %8s %8s %7s %7s %7s\n", "fleet", "SLO(%)",
              "goodput", "inst-sec", "peak-N", "colds", "migr", "w/cache",
              "dedup%");
  for (const RunRow& row : rows) {
    const SloReport& rep = row.result.serve.combined;
    const FleetMetrics& fm = row.result.fleet;
    const int64_t moved_tokens =
        fm.migration_deduped_tokens + fm.migration_copied_tokens;
    std::printf("%12s %9.2f %9.3f %12.1f %8d %8d %7lld %7lld %7.1f\n",
                row.label, 100 * rep.slo_attainment, rep.goodput_rps,
                fm.instance_seconds, fm.peak_instances, fm.cold_starts,
                static_cast<long long>(fm.migrations),
                static_cast<long long>(fm.migrations_with_cache),
                moved_tokens > 0
                    ? 100.0 * fm.migration_deduped_tokens / moved_tokens
                    : 0.0);

    bench::JsonObject e;
    e.Str("fleet", row.label)
        .Num("slo_attainment", rep.slo_attainment)
        .Num("goodput_rps", rep.goodput_rps)
        .Num("instance_seconds", fm.instance_seconds)
        .Int("peak_instances", fm.peak_instances)
        .Int("cold_starts", fm.cold_starts)
        .Int("scale_events", static_cast<int64_t>(fm.scale_events.size()))
        .Int("migrations", fm.migrations)
        .Int("migrations_with_cache", fm.migrations_with_cache)
        .Int("migration_deduped_tokens", fm.migration_deduped_tokens)
        .Int("migration_copied_tokens", fm.migration_copied_tokens)
        .Num("migration_bytes", fm.migration_bytes)
        .Num("migration_seconds", fm.migration_seconds)
        .Num("total_serving_time", rep.total_serving_time)
        .Num("mean_ttft_s", rep.mean_ttft)
        .Int("rejected", row.result.serve.rejected_requests);
    bench::BenchJson::Instance().AddEntry(std::move(e));
  }

  const SloReport& s = rows[0].result.serve.combined;
  const SloReport& e = rows[1].result.serve.combined;
  const double static_is = rows[0].result.fleet.instance_seconds;
  const double elastic_is = rows[1].result.fleet.instance_seconds;
  const double saving = 1.0 - elastic_is / static_is;
  std::printf("\nElastic fleet: %.1f%% fewer instance-seconds, SLO "
              "attainment %+.2f points vs static-for-peak.\n", 100 * saving,
              100 * (e.slo_attainment - s.slo_attainment));

  bool ok = true;
  if (saving < 0.20) {
    std::fprintf(stderr, "GATE FAILED: instance-second saving %.1f%% < 20%%\n",
                 100 * saving);
    ok = false;
  }
  if (e.slo_attainment + 1e-9 < s.slo_attainment) {
    std::fprintf(stderr,
                 "GATE FAILED: elastic attainment %.4f below static %.4f\n",
                 e.slo_attainment, s.slo_attainment);
    ok = false;
  }

  if (trace_path != nullptr) {
    Status wrote = obs::WriteChromeTrace(trace_recorder.Flush(), trace_path);
    if (!wrote.ok()) {
      std::fprintf(stderr, "trace write: %s\n", wrote.ToString().c_str());
      return 1;
    }
    std::ifstream in(trace_path);
    const std::string json((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    auto stats = obs::ValidateChromeTrace(json);
    if (!stats.ok()) {
      std::fprintf(stderr, "GATE FAILED: trace validation: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf("\nTrace: %lld events on %lld tracks, %lld migration flow "
                "arrows (%lld matched), %lld scale events -> %s\n",
                static_cast<long long>(stats->events),
                static_cast<long long>(stats->tracks),
                static_cast<long long>(stats->flow_begins),
                static_cast<long long>(stats->matched_flows),
                static_cast<long long>(stats->scale_events), trace_path);
    if (stats->matched_flows < 1) {
      std::fprintf(stderr,
                   "GATE FAILED: expected >=1 matched migration flow arrow\n");
      ok = false;
    }
    if (stats->scale_events < 1) {
      std::fprintf(stderr, "GATE FAILED: expected >=1 scale event\n");
      ok = false;
    }
    const std::string prom_path = std::string(trace_path) + ".prom";
    std::ofstream prom(prom_path);
    prom << metrics.ExportPrometheus();
    if (!prom) {
      std::fprintf(stderr, "prom write failed: %s\n", prom_path.c_str());
      return 1;
    }
  }
  return ok ? 0 : 1;
}
