// Observability overhead on the async wall-clock path: the same trace and
// two-instance real-engine fleet served three ways — (a) tracing off,
// (b) the TraceRecorder's per-thread sharded ring buffers plus the
// MetricsRegistry attached (the always-on production configuration), and
// (c) recorder attached plus a full Chrome trace_event JSON export and
// Prometheus text exposition after drain (the debugging configuration).
//
// Readout: sustained tokens/sec per mode, best of 3 interleaved runs.
// Gate (enforced, exit 1): ring-buffer-on throughput must be within 5% of
// tracing-off — the "zero-cost enough to leave on" budget the hooks were
// designed against. The export mode is reported, not gated: serialising
// the event log is explicitly off the hot path.
//
// Results land in BENCH_bench_trace_overhead.json. Like
// bench_async_serving, the snapshot stamps hardware_concurrency and
// "multicore": on a <4-core container the worker threads time-share one
// core, so absolute tok/s is not serving capacity — but the off/on *ratio*
// the gate checks is still meaningful, both modes pay the same tax.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "obs/chrome_trace.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "serve/async_serving.h"
#include "serve/inference_backend.h"
#include "serve/multi_instance.h"

using namespace aptserve;

namespace {

using TokenMap = std::unordered_map<RequestId, std::vector<int32_t>>;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int32_t kInstances = 2;
constexpr int32_t kRequests = 192;
constexpr double kArrivalSpacing = 0.01;  // virtual seconds
constexpr double kReplaySpeedup = 800.0;
constexpr int kRepeats = 3;

enum class Mode { kOff, kRecorder, kFullExport };

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kOff:
      return "off";
    case Mode::kRecorder:
      return "recorder";
    case Mode::kFullExport:
      return "full_export";
  }
  return "?";
}

std::vector<Request> BenchTrace() {
  Rng rng(131);
  std::vector<Request> trace;
  trace.reserve(kRequests);
  for (int32_t i = 0; i < kRequests; ++i) {
    Request r;
    r.id = i;
    r.prompt_len = static_cast<int32_t>(rng.UniformInt(8, 24));
    r.output_len = static_cast<int32_t>(rng.UniformInt(8, 16));
    r.arrival = kArrivalSpacing * i;
    trace.push_back(r);
  }
  return trace;
}

BackendFactory EngineFactory(std::vector<TokenMap>* sinks) {
  return [sinks](int32_t i) -> StatusOr<std::unique_ptr<ExecutionBackend>> {
    InferenceBackendOptions options;
    options.virtual_timing = true;
    options.finished_sink = &(*sinks)[static_cast<size_t>(i)];
    return std::unique_ptr<ExecutionBackend>(std::make_unique<InferenceBackend>(
        ModelConfig::Tiny(), /*weight_seed=*/9 + i, /*num_blocks=*/192,
        /*block_size=*/8, SamplingParams::TopK(8, 0.9), options));
  };
}

SchedulerFactory Fcfs() {
  return [] { return std::make_unique<FcfsScheduler>(); };
}

struct RunResult {
  double tok_s = 0.0;          ///< sustained serving throughput
  double serve_wall_s = 0.0;   ///< release-to-drain wall time
  double export_wall_s = 0.0;  ///< Chrome JSON + Prometheus text (mode c)
  int64_t tokens = 0;
  uint64_t events_emitted = 0;
  uint64_t events_dropped = 0;
  size_t export_bytes = 0;
};

StatusOr<RunResult> RunOnce(Mode mode, const std::vector<Request>& trace) {
  obs::TraceRecorder recorder;  // default shard capacity: the bounded ring
  obs::MetricsRegistry metrics;

  AsyncServingConfig async;
  async.replay_speedup = kReplaySpeedup;
  async.max_wall_seconds = 120.0;
  if (mode != Mode::kOff) {
    async.trace = &recorder;
    async.metrics = &metrics;
  }

  DispatchConfig dispatch;
  dispatch.n_instances = kInstances;
  dispatch.policy = DispatchPolicy::kRoundRobin;
  ServingLoopConfig loop;
  loop.max_batch_size = INT32_MAX;
  MultiInstanceRunner runner(dispatch, loop);

  std::vector<TokenMap> sinks(kInstances);
  APT_ASSIGN_OR_RETURN(
      AsyncServingResult live,
      runner.RunAsync(trace, Fcfs(), EngineFactory(&sinks), SloSpec{5.0, 5.0},
                      async));

  RunResult out;
  out.tok_s = live.wall.throughput_tok_s;
  out.serve_wall_s = live.wall_duration_s;
  out.tokens = live.wall.tokens;
  if (mode != Mode::kOff) {
    out.events_emitted = recorder.TotalEmitted();
    out.events_dropped = recorder.TotalDropped();
  }
  if (mode == Mode::kFullExport) {
    const double t0 = NowSeconds();
    const std::string json = obs::ExportChromeTrace(recorder.Flush());
    const std::string prom = metrics.ExportPrometheus();
    out.export_wall_s = NowSeconds() - t0;
    out.export_bytes = json.size() + prom.size();
  }
  return out;
}

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  const bool multicore = hw >= 4;
  if (!multicore) {
    std::fprintf(stderr,
                 "WARNING: hardware_concurrency=%u < 4 — absolute tok/s here "
                 "is core-starved, read only the off/on ratio; the JSON "
                 "snapshot records \"multicore\": false.\n",
                 hw);
  }

  bench::BenchJson::Instance().SetName("bench_trace_overhead");
  bench::BenchJson::Instance()
      .config()
      .Int("hardware_concurrency", hw)
      .Bool("multicore", multicore)
      .Int("instances", kInstances)
      .Int("requests", kRequests)
      .Num("replay_speedup", kReplaySpeedup)
      .Int("repeats_best_of", kRepeats)
      .Num("overhead_gate", 0.05);

  const auto trace = BenchTrace();
  const Mode modes[] = {Mode::kOff, Mode::kRecorder, Mode::kFullExport};

  // Interleaved best-of-N: round-robin over the modes so machine noise
  // (another process, frequency drift) lands on all three equally.
  RunResult best[3];
  for (int rep = 0; rep < kRepeats; ++rep) {
    for (int m = 0; m < 3; ++m) {
      auto r = RunOnce(modes[m], trace);
      if (!r.ok()) {
        std::fprintf(stderr, "%s run: %s\n", ModeName(modes[m]),
                     r.status().ToString().c_str());
        return 1;
      }
      if (r->tok_s > best[m].tok_s) best[m] = *r;
    }
  }

  std::printf("=== Trace overhead on the async path (best of %d, hw=%u%s) "
              "===\n",
              kRepeats, hw,
              multicore ? "" : ", single-core: ratios only");
  std::printf("%12s %12s %10s %10s %10s %12s\n", "mode", "tok/s", "wall(s)",
              "events", "dropped", "export");
  for (int m = 0; m < 3; ++m) {
    const RunResult& r = best[m];
    std::printf("%12s %12.0f %10.4f %10llu %10llu %9.4fs/%zuB\n",
                ModeName(modes[m]), r.tok_s, r.serve_wall_s,
                static_cast<unsigned long long>(r.events_emitted),
                static_cast<unsigned long long>(r.events_dropped),
                r.export_wall_s, r.export_bytes);

    bench::JsonObject e;
    e.Str("mode", ModeName(modes[m]))
        .Num("sustained_tok_per_s", r.tok_s)
        .Num("serve_wall_seconds", r.serve_wall_s)
        .Int("tokens", r.tokens)
        .Int("events_emitted", static_cast<int64_t>(r.events_emitted))
        .Int("events_dropped", static_cast<int64_t>(r.events_dropped))
        .Num("export_seconds", r.export_wall_s)
        .Int("export_bytes", static_cast<int64_t>(r.export_bytes));
    bench::BenchJson::Instance().AddEntry(std::move(e));
  }

  const double off = best[0].tok_s;
  const double on = best[1].tok_s;
  const double overhead = off > 0.0 ? 1.0 - on / off : 0.0;
  std::printf("\nRing-buffer tracing overhead: %.2f%% of tokens/sec "
              "(gate: <=5%%)\n", 100.0 * overhead);

  bench::JsonObject summary;
  summary.Str("mode", "summary")
      .Num("recorder_overhead_fraction", overhead)
      .Bool("overhead_within_gate", overhead <= 0.05);
  bench::BenchJson::Instance().AddEntry(std::move(summary));

  if (overhead > 0.05) {
    std::fprintf(stderr,
                 "GATE FAILED: ring-buffer tracing costs %.2f%% of tokens/sec "
                 "(budget 5%%)\n",
                 100.0 * overhead);
    return 1;
  }
  return 0;
}
