// Engine microbenchmarks (paper §3.1 / Eq. 6 grounding): decode-step cost
// of KV vs hidden cache on the real mini transformer, the measured rho
// (extra seconds per cached token) and the linearity of the extra cost —
// the executable analogue of the paper's ~30 s offline profiling pass.
#include <benchmark/benchmark.h>

#include "engine/inference_engine.h"
#include "engine/rho_calibrator.h"

namespace aptserve {
namespace {

void RunDecodeBench(benchmark::State& state, CacheType type) {
  const ModelConfig cfg = ModelConfig::Small();
  const int32_t ctx = static_cast<int32_t>(state.range(0));
  InferenceEngine engine(cfg, 42, /*num_blocks=*/512, /*block_size=*/16);
  std::vector<int32_t> prompt(ctx);
  for (int32_t i = 0; i < ctx; ++i) prompt[i] = (i * 131) % cfg.vocab_size;
  if (!engine.AddRequest(1, prompt, type).ok()) state.SkipWithError("add");
  if (!engine.Prefill(1).ok()) state.SkipWithError("prefill");
  // Let the context drift within [ctx, ctx + 64), resetting periodically so
  // the measured cost stays representative of the nominal context length.
  int32_t steps = 0;
  for (auto _ : state) {
    auto r = engine.DecodeStep(1);
    if (!r.ok()) {
      state.SkipWithError("decode");
      break;
    }
    benchmark::DoNotOptimize(*r);
    if (++steps == 64) {
      state.PauseTiming();
      steps = 0;
      if (!engine.RemoveRequest(1).ok() ||
          !engine.AddRequest(1, prompt, type).ok() ||
          !engine.Prefill(1).ok()) {
        state.SkipWithError("reset");
        state.ResumeTiming();
        break;
      }
      state.ResumeTiming();
    }
  }
}

void BM_DecodeKv(benchmark::State& state) {
  RunDecodeBench(state, CacheType::kKV);
}
void BM_DecodeHidden(benchmark::State& state) {
  RunDecodeBench(state, CacheType::kHidden);
}

BENCHMARK(BM_DecodeKv)->Arg(32)->Arg(128)->Arg(512)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_DecodeHidden)->Arg(32)->Arg(128)->Arg(512)->Unit(
    benchmark::kMicrosecond);

void BM_PrefillKv(benchmark::State& state) {
  const ModelConfig cfg = ModelConfig::Small();
  const int32_t n = static_cast<int32_t>(state.range(0));
  std::vector<int32_t> prompt(n);
  for (int32_t i = 0; i < n; ++i) prompt[i] = (i * 67) % cfg.vocab_size;
  InferenceEngine engine(cfg, 42, 512, 16);
  RequestId id = 0;
  for (auto _ : state) {
    if (!engine.AddRequest(++id, prompt, CacheType::kKV).ok()) break;
    auto r = engine.Prefill(id);
    benchmark::DoNotOptimize(r.ok());
    state.PauseTiming();
    (void)engine.RemoveRequest(id);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_PrefillKv)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aptserve

int main(int argc, char** argv) {
  // Before the microbenchmarks, print the measured rho fit (Eq. 6).
  auto calib = aptserve::CalibrateRho(aptserve::ModelConfig::Small(), 42,
                                      {16, 32, 64, 128, 256}, 3);
  if (calib.ok()) {
    std::printf("=== Measured hidden-cache extra cost (mini engine, "
                "Eq. 6 calibration) ===\n");
    std::printf("%8s %14s %14s %14s\n", "context", "kv_ms", "hidden_ms",
                "extra_ms");
    for (const auto& p : calib->points) {
      std::printf("%8d %14.3f %14.3f %14.3f\n", p.context_len,
                  1e3 * p.kv_seconds, 1e3 * p.hidden_seconds,
                  1e3 * (p.hidden_seconds - p.kv_seconds));
    }
    std::printf("fitted rho = %.3f us/token (R^2 = %.3f) — the paper models "
                "this cost as linear\nin context length; R^2 near 1 "
                "validates Eq. 6's linear approximation.\n\n",
                1e6 * calib->rho_seconds_per_token, calib->r_squared);
  } else {
    std::fprintf(stderr, "rho calibration failed: %s\n",
                 calib.status().ToString().c_str());
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
