// Shared harness for the per-figure/table reproduction benches: scheduler
// factory, single-run wrapper, rate sweeps, paper-style table printing, and
// machine-readable JSON result emission (one BENCH_<name>.json per bench)
// so the perf trajectory is tracked across PRs.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/fastgen_scheduler.h"
#include "baselines/fcfs_scheduler.h"
#include "baselines/random_scheduler.h"
#include "baselines/sarathi_scheduler.h"
#include "common/json.h"
#include "core/apt_sarathi_scheduler.h"
#include "core/apt_scheduler.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace aptserve {
namespace bench {

// ---- Machine-readable results ---------------------------------------------
// Every RunOnce/RunOnceFull call is recorded automatically; benches with
// custom drivers add entries by hand. At process exit the collected rows
// are written as JSON to $APTSERVE_BENCH_JSON_DIR (default: the working
// directory) as BENCH_<name>.json, <name> defaulting to the executable
// name. Schema:
//   { "bench": "...", "config": {k: v, ...},
//     "entries": [ {k: v, ...}, ... ] }

/// One JSON object rendered as an ordered list of pre-encoded key/value
/// pairs (numbers raw, strings quoted).
class JsonObject {
 public:
  JsonObject& Num(const std::string& key, double value) {
    if (!std::isfinite(value)) {
      // JSON has no NaN/Inf literal; null keeps the file parseable.
      fields_.emplace_back(key, "null");
      return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    fields_.emplace_back(key, buf);
    return *this;
  }
  JsonObject& Int(const std::string& key, int64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonObject& Bool(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
    return *this;
  }
  JsonObject& Str(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + json::EscapeJsonString(value) + "\"");
    return *this;
  }
  std::string Render() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      // Keys pass through the same escaper as string values: sweep-driven
      // benches stamp arbitrary ablation names into config keys, and one
      // quote in a key must not make the whole snapshot unparseable.
      out += "\"" + json::EscapeJsonString(fields_[i].first) + "\": " +
             fields_[i].second;
    }
    out += "}";
    return out;
  }
  bool empty() const { return fields_.empty(); }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Process-wide result sink; flushed to BENCH_<name>.json at exit.
class BenchJson {
 public:
  static BenchJson& Instance() {
    static BenchJson instance;
    return instance;
  }

  /// Overrides the file stem (default: the executable name).
  void SetName(const std::string& name) { name_ = name; }
  JsonObject& config() { return config_; }
  void AddEntry(JsonObject entry) { entries_.push_back(std::move(entry)); }

  void Write() {
    if (entries_.empty() || written_) return;
    const char* dir = std::getenv("APTSERVE_BENCH_JSON_DIR");
    const std::string path =
        std::string(dir ? dir : ".") + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) return;  // result emission must never fail a bench
    out << "{\n  \"bench\": \"" << name_ << "\",\n  \"config\": "
        << config_.Render() << ",\n  \"entries\": [";
    for (size_t i = 0; i < entries_.size(); ++i) {
      out << (i > 0 ? ",\n    " : "\n    ") << entries_[i].Render();
    }
    out << "\n  ]\n}\n";
    written_ = true;
    std::fprintf(stderr, "[bench_json] wrote %s (%zu entries)\n",
                 path.c_str(), entries_.size());
  }

  ~BenchJson() { Write(); }

 private:
  BenchJson() : name_(ExecutableName()) {}

  static std::string ExecutableName() {
    // argv[0] from /proc (not truncated like /proc/self/comm).
    std::ifstream cmdline("/proc/self/cmdline");
    std::string argv0;
    if (cmdline && std::getline(cmdline, argv0, '\0') && !argv0.empty()) {
      const size_t slash = argv0.find_last_of('/');
      return slash == std::string::npos ? argv0 : argv0.substr(slash + 1);
    }
    return "bench";
  }

  std::string name_;
  JsonObject config_;
  std::vector<JsonObject> entries_;
  bool written_ = false;
};

/// Records one simulated run (offered load, config, attainment and latency
/// percentiles) into the bench's JSON sink.
inline void RecordReport(const std::string& scheduler, double rate, double cv,
                         int32_t num_requests, const std::string& profile,
                         const std::string& model, double slo_ttft_s,
                         double slo_tbt_p99_s, const SloReport& r) {
  JsonObject e;
  e.Str("scheduler", scheduler)
      .Num("rate_per_sec", rate)
      .Num("cv", cv)
      .Int("num_requests", num_requests)
      .Str("profile", profile)
      .Str("model", model)
      .Num("slo_ttft_s", slo_ttft_s)
      .Num("slo_tbt_p99_s", slo_tbt_p99_s)
      .Num("slo_attainment", r.slo_attainment)
      .Num("ttft_attainment", r.ttft_attainment)
      .Num("tbt_attainment", r.tbt_attainment)
      .Num("mean_ttft_s", r.mean_ttft)
      .Num("p99_ttft_s", r.p99_ttft)
      .Num("total_serving_time_s", r.total_serving_time)
      .Num("requests_per_sec",
           r.total_serving_time > 0 ? num_requests / r.total_serving_time
                                    : 0.0)
      .Int("iterations", r.iterations)
      .Num("mean_batch_size", r.mean_batch_size)
      .Num("batch_limit_time_ratio", r.batch_limit_time_ratio)
      .Int("preemptions", r.preemptions)
      .Int("conversions", r.conversions);
  BenchJson::Instance().AddEntry(std::move(e));
}

/// Named scheduler factory used by every bench.
inline std::unique_ptr<Scheduler> MakeScheduler(const std::string& kind,
                                                const SloSpec& slo) {
  if (kind == "vLLM") return std::make_unique<FcfsScheduler>();
  if (kind == "Random") return std::make_unique<RandomScheduler>();
  if (kind == "Sarathi") return std::make_unique<SarathiScheduler>();
  if (kind == "FastGen") return std::make_unique<FastGenScheduler>();
  if (kind == "FCFS-hybrid") {
    FcfsConfig c;
    c.allow_hidden_fallback = true;
    return std::make_unique<FcfsScheduler>(c);
  }
  if (kind == "Apt") {
    AptConfig c;
    c.slo = slo;
    return std::make_unique<AptScheduler>(c);
  }
  if (kind == "Apt*") {
    AptConfig c;
    c.slo = slo;
    c.violation_decay = 0.4;
    return std::make_unique<AptScheduler>(c);
  }
  if (kind == "Apt-KVonly") {
    AptConfig c;
    c.slo = slo;
    c.enable_hidden = false;
    return std::make_unique<AptScheduler>(c);
  }
  if (kind == "Apt-S") {
    AptSarathiConfig c;
    c.slo = slo;
    return std::make_unique<AptSarathiScheduler>(c);
  }
  std::fprintf(stderr, "unknown scheduler kind: %s\n", kind.c_str());
  std::abort();
}

struct RunSpec {
  DatasetProfile profile = DatasetProfile::ShareGpt();
  ModelSpec model = ModelSpec::Opt13B();
  double rate = 1.0;
  double cv = 1.0;
  int32_t num_requests = 500;
  uint64_t seed = 2025;
  SloSpec slo{1.0, 1.0};
  int32_t max_total_len = 2048;
};

inline SloReport RunOnce(const RunSpec& spec, const std::string& scheduler) {
  TraceConfig tc;
  tc.profile = spec.profile;
  tc.num_requests = spec.num_requests;
  tc.rate_per_sec = spec.rate;
  tc.cv = spec.cv;
  tc.seed = spec.seed;
  tc.max_total_len = spec.max_total_len;
  auto trace = BuildTrace(tc);
  if (!trace.ok()) {
    std::fprintf(stderr, "trace: %s\n", trace.status().ToString().c_str());
    std::abort();
  }
  auto sched = MakeScheduler(scheduler, spec.slo);
  CostModel cm(spec.model, ClusterSpec::ForModel(spec.model));
  Simulator sim(cm, SimulatorConfig{});
  auto result = sim.Run(*trace, sched.get(), spec.slo);
  if (!result.ok()) {
    std::fprintf(stderr, "sim(%s): %s\n", scheduler.c_str(),
                 result.status().ToString().c_str());
    std::abort();
  }
  RecordReport(scheduler, spec.rate, spec.cv, spec.num_requests,
               spec.profile.name, spec.model.name, spec.slo.ttft_s,
               spec.slo.tbt_p99_s, result->report);
  return result->report;
}

/// Full simulation result (for benches that need more than the report).
inline SimulationResult RunOnceFull(const RunSpec& spec,
                                    const std::string& scheduler) {
  TraceConfig tc;
  tc.profile = spec.profile;
  tc.num_requests = spec.num_requests;
  tc.rate_per_sec = spec.rate;
  tc.cv = spec.cv;
  tc.seed = spec.seed;
  tc.max_total_len = spec.max_total_len;
  auto trace = BuildTrace(tc);
  if (!trace.ok()) std::abort();
  auto sched = MakeScheduler(scheduler, spec.slo);
  CostModel cm(spec.model, ClusterSpec::ForModel(spec.model));
  Simulator sim(cm, SimulatorConfig{});
  auto result = sim.Run(*trace, sched.get(), spec.slo);
  if (!result.ok()) {
    std::fprintf(stderr, "sim(%s): %s\n", scheduler.c_str(),
                 result.status().ToString().c_str());
    std::abort();
  }
  RecordReport(scheduler, spec.rate, spec.cv, spec.num_requests,
               spec.profile.name, spec.model.name, spec.slo.ttft_s,
               spec.slo.tbt_p99_s, result->report);
  return std::move(*result);
}

/// Prints an SLO-attainment-vs-rate table, one row per rate, one column per
/// system (the shape of the paper's line plots).
inline void PrintRateSweep(const char* title, const RunSpec& base,
                           const std::vector<double>& rates,
                           const std::vector<std::string>& systems) {
  std::printf("\n=== %s ===\n", title);
  std::printf("dataset=%s model=%s SLO(TTFT=%.1fs, P99 TBT=%.1fs), n=%d\n",
              base.profile.name.c_str(), base.model.name.c_str(),
              base.slo.ttft_s, base.slo.tbt_p99_s, base.num_requests);
  std::printf("%10s", "rate(r/s)");
  for (const auto& s : systems) std::printf(" %12s", s.c_str());
  std::printf("\n");
  for (double rate : rates) {
    RunSpec spec = base;
    spec.rate = rate;
    std::printf("%10.2f", rate);
    for (const auto& s : systems) {
      std::printf(" %12.1f", 100.0 * RunOnce(spec, s).slo_attainment);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
}

/// Highest rate in `rates` for which `passes(rate)` holds; 0 when none
/// does. `rates` need not be sorted — the max is over the passing set, not
/// the last passing element in iteration order (a previous version got
/// this wrong and returned whichever passing rate it visited last).
inline double HighestPassingRate(const std::vector<double>& rates,
                                 const std::function<bool(double)>& passes) {
  double best = 0.0;
  for (double rate : rates) {
    if (passes(rate)) best = std::max(best, rate);
  }
  return best;
}

/// Highest rate in `rates` whose attainment is >= threshold (the paper's
/// "effective throughput" readout).
inline double EffectiveThroughput(const RunSpec& base,
                                  const std::string& system,
                                  const std::vector<double>& rates,
                                  double threshold) {
  return HighestPassingRate(rates, [&](double rate) {
    RunSpec spec = base;
    spec.rate = rate;
    return RunOnce(spec, system).slo_attainment >= threshold;
  });
}

}  // namespace bench
}  // namespace aptserve
