// Shared harness for the per-figure/table reproduction benches: scheduler
// factory, single-run wrapper, rate sweeps, and paper-style table printing.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/fastgen_scheduler.h"
#include "baselines/fcfs_scheduler.h"
#include "baselines/random_scheduler.h"
#include "baselines/sarathi_scheduler.h"
#include "core/apt_sarathi_scheduler.h"
#include "core/apt_scheduler.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace aptserve {
namespace bench {

/// Named scheduler factory used by every bench.
inline std::unique_ptr<Scheduler> MakeScheduler(const std::string& kind,
                                                const SloSpec& slo) {
  if (kind == "vLLM") return std::make_unique<FcfsScheduler>();
  if (kind == "Random") return std::make_unique<RandomScheduler>();
  if (kind == "Sarathi") return std::make_unique<SarathiScheduler>();
  if (kind == "FastGen") return std::make_unique<FastGenScheduler>();
  if (kind == "FCFS-hybrid") {
    FcfsConfig c;
    c.allow_hidden_fallback = true;
    return std::make_unique<FcfsScheduler>(c);
  }
  if (kind == "Apt") {
    AptConfig c;
    c.slo = slo;
    return std::make_unique<AptScheduler>(c);
  }
  if (kind == "Apt*") {
    AptConfig c;
    c.slo = slo;
    c.violation_decay = 0.4;
    return std::make_unique<AptScheduler>(c);
  }
  if (kind == "Apt-KVonly") {
    AptConfig c;
    c.slo = slo;
    c.enable_hidden = false;
    return std::make_unique<AptScheduler>(c);
  }
  if (kind == "Apt-S") {
    AptSarathiConfig c;
    c.slo = slo;
    return std::make_unique<AptSarathiScheduler>(c);
  }
  std::fprintf(stderr, "unknown scheduler kind: %s\n", kind.c_str());
  std::abort();
}

struct RunSpec {
  DatasetProfile profile = DatasetProfile::ShareGpt();
  ModelSpec model = ModelSpec::Opt13B();
  double rate = 1.0;
  double cv = 1.0;
  int32_t num_requests = 500;
  uint64_t seed = 2025;
  SloSpec slo{1.0, 1.0};
  int32_t max_total_len = 2048;
};

inline SloReport RunOnce(const RunSpec& spec, const std::string& scheduler) {
  TraceConfig tc;
  tc.profile = spec.profile;
  tc.num_requests = spec.num_requests;
  tc.rate_per_sec = spec.rate;
  tc.cv = spec.cv;
  tc.seed = spec.seed;
  tc.max_total_len = spec.max_total_len;
  auto trace = BuildTrace(tc);
  if (!trace.ok()) {
    std::fprintf(stderr, "trace: %s\n", trace.status().ToString().c_str());
    std::abort();
  }
  auto sched = MakeScheduler(scheduler, spec.slo);
  CostModel cm(spec.model, ClusterSpec::ForModel(spec.model));
  Simulator sim(cm, SimulatorConfig{});
  auto result = sim.Run(*trace, sched.get(), spec.slo);
  if (!result.ok()) {
    std::fprintf(stderr, "sim(%s): %s\n", scheduler.c_str(),
                 result.status().ToString().c_str());
    std::abort();
  }
  return result->report;
}

/// Full simulation result (for benches that need more than the report).
inline SimulationResult RunOnceFull(const RunSpec& spec,
                                    const std::string& scheduler) {
  TraceConfig tc;
  tc.profile = spec.profile;
  tc.num_requests = spec.num_requests;
  tc.rate_per_sec = spec.rate;
  tc.cv = spec.cv;
  tc.seed = spec.seed;
  tc.max_total_len = spec.max_total_len;
  auto trace = BuildTrace(tc);
  if (!trace.ok()) std::abort();
  auto sched = MakeScheduler(scheduler, spec.slo);
  CostModel cm(spec.model, ClusterSpec::ForModel(spec.model));
  Simulator sim(cm, SimulatorConfig{});
  auto result = sim.Run(*trace, sched.get(), spec.slo);
  if (!result.ok()) {
    std::fprintf(stderr, "sim(%s): %s\n", scheduler.c_str(),
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(*result);
}

/// Prints an SLO-attainment-vs-rate table, one row per rate, one column per
/// system (the shape of the paper's line plots).
inline void PrintRateSweep(const char* title, const RunSpec& base,
                           const std::vector<double>& rates,
                           const std::vector<std::string>& systems) {
  std::printf("\n=== %s ===\n", title);
  std::printf("dataset=%s model=%s SLO(TTFT=%.1fs, P99 TBT=%.1fs), n=%d\n",
              base.profile.name.c_str(), base.model.name.c_str(),
              base.slo.ttft_s, base.slo.tbt_p99_s, base.num_requests);
  std::printf("%10s", "rate(r/s)");
  for (const auto& s : systems) std::printf(" %12s", s.c_str());
  std::printf("\n");
  for (double rate : rates) {
    RunSpec spec = base;
    spec.rate = rate;
    std::printf("%10.2f", rate);
    for (const auto& s : systems) {
      std::printf(" %12.1f", 100.0 * RunOnce(spec, s).slo_attainment);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
}

/// Highest rate in `rates` whose attainment is >= threshold (the paper's
/// "effective throughput" readout).
inline double EffectiveThroughput(const RunSpec& base,
                                  const std::string& system,
                                  const std::vector<double>& rates,
                                  double threshold) {
  double best = 0.0;
  for (double rate : rates) {
    RunSpec spec = base;
    spec.rate = rate;
    if (RunOnce(spec, system).slo_attainment >= threshold) best = rate;
  }
  return best;
}

}  // namespace bench
}  // namespace aptserve
